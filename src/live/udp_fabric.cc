#include "src/live/udp_fabric.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/packet/wire.h"
#include "src/util/logging.h"

namespace snap {

namespace {
// Largest frame we expect: headers + a 5kB-MTU payload, with slack.
constexpr size_t kMaxFrameBytes = 16 * 1024;
}  // namespace

UdpFabric::UdpFabric(int num_hosts) : UdpFabric(num_hosts, Options()) {}

UdpFabric::UdpFabric(int num_hosts, Options options)
    : num_hosts_(num_hosts), options_(std::move(options)) {
  SNAP_CHECK_GT(num_hosts, 0);
  fds_.resize(num_hosts, -1);
  ports_.resize(num_hosts, 0);
  nics_.resize(num_hosts, nullptr);
  executors_.resize(num_hosts, nullptr);
  for (int i = 0; i < num_hosts; ++i) {
    delivered_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    dropped_send_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    dropped_decode_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

UdpFabric::~UdpFabric() {
  for (int fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

Status UdpFabric::Init() {
  for (int h = 0; h < num_hosts_; ++h) {
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
      return InternalError(std::string("socket: ") + strerror(errno));
    }
    fds_[h] = fd;
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      return InternalError(std::string("fcntl: ") + strerror(errno));
    }
    if (options_.socket_buffer_bytes > 0) {
      // Best-effort: the kernel clamps to its limits.
      int bytes = options_.socket_buffer_bytes;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    if (::inet_pton(AF_INET, options_.address.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("bad address: " + options_.address);
    }
    uint16_t want =
        options_.base_port == 0
            ? 0
            : static_cast<uint16_t>(options_.base_port + h);
    addr.sin_port = htons(want);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return InternalError(std::string("bind: ") + strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return InternalError(std::string("getsockname: ") + strerror(errno));
    }
    ports_[h] = ntohs(bound.sin_port);
  }
  return OkStatus();
}

void UdpFabric::AddHost(int host_id, Nic* nic, LiveExecutor* executor) {
  SNAP_CHECK_GE(host_id, 0);
  SNAP_CHECK_LT(host_id, num_hosts_);
  SNAP_CHECK(fds_[host_id] >= 0) << "AddHost before Init";
  SNAP_CHECK(nics_[host_id] == nullptr) << "host registered twice";
  nics_[host_id] = nic;
  executors_[host_id] = executor;
}

void UdpFabric::Route(PacketPtr packet, SimTime wire_time) {
  (void)wire_time;
  int dst = packet->dst_host;
  int src = packet->src_host;
  if (dst < 0 || dst >= num_hosts_ || src < 0 || src >= num_hosts_) {
    dropped_bad_address_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Reused per engine thread: encoding allocates nothing at steady state.
  thread_local std::vector<uint8_t> frame;
  Status encoded = EncodeWireFrame(*packet, &frame);
  if (!encoded.ok()) {
    dropped_send_[src]->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  sockaddr_in to{};
  to.sin_family = AF_INET;
  ::inet_pton(AF_INET, options_.address.c_str(), &to.sin_addr);
  to.sin_port = htons(ports_[dst]);
  ssize_t sent = ::sendto(fds_[src], frame.data(), frame.size(), 0,
                          reinterpret_cast<sockaddr*>(&to), sizeof(to));
  if (sent < 0) {
    // EAGAIN/ENOBUFS: the socket buffer is the congested egress port.
    dropped_send_[src]->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // In-process peers get their doorbell rung; remote peers rely on the
  // receiver's bounded park.
  if (executors_[dst] != nullptr) {
    executors_[dst]->Wake();
  }
}

int UdpFabric::DrainTo(int dst_host) {
  int delivered = 0;
  Nic* nic = nics_[dst_host];
  int fd = fds_[dst_host];
  uint8_t buf[kMaxFrameBytes];
  for (int i = 0; i < options_.recv_batch; ++i) {
    ssize_t n = ::recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);
    if (n < 0) {
      break;  // EAGAIN: drained
    }
    StatusOr<PacketPtr> decoded = DecodeWireFrame(buf, static_cast<size_t>(n));
    if (!decoded.ok()) {
      dropped_decode_[dst_host]->fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    nic->DeliverFromWire(std::move(*decoded));
    ++delivered;
  }
  if (delivered > 0) {
    delivered_[dst_host]->fetch_add(delivered, std::memory_order_relaxed);
  }
  return delivered;
}

UdpFabric::Stats UdpFabric::GetStats() const {
  Stats s;
  for (int i = 0; i < num_hosts_; ++i) {
    s.delivered += delivered_[i]->load(std::memory_order_relaxed);
    s.dropped_send += dropped_send_[i]->load(std::memory_order_relaxed);
    s.dropped_decode += dropped_decode_[i]->load(std::memory_order_relaxed);
  }
  s.dropped_bad_address =
      dropped_bad_address_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace snap
