#include "src/live/udp_fabric.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "src/util/logging.h"

namespace snap {

namespace {
// Largest frame we expect: headers + a 5kB-MTU payload, with slack.
constexpr size_t kMaxFrameBytes = 16 * 1024;

bool SameEndpoint(const sockaddr_in& a, const sockaddr_in& b) {
  return a.sin_addr.s_addr == b.sin_addr.s_addr && a.sin_port == b.sin_port;
}
}  // namespace

UdpFabric::UdpFabric(int num_hosts) : UdpFabric(num_hosts, Options()) {}

UdpFabric::UdpFabric(int num_hosts, Options options)
    : num_hosts_(num_hosts), options_(std::move(options)) {
  SNAP_CHECK_GT(num_hosts, 0);
  local_.assign(num_hosts, options_.local_hosts.empty());
  for (int h : options_.local_hosts) {
    SNAP_CHECK_GE(h, 0);
    SNAP_CHECK_LT(h, num_hosts);
    local_[h] = true;
  }
  for (int h = 0; h < num_hosts; ++h) {
    if (local_[h] && first_local_ < 0) {
      first_local_ = h;
    }
  }
  SNAP_CHECK_GE(first_local_, 0) << "no local hosts";
  fds_.resize(num_hosts, -1);
  ports_.resize(num_hosts, 0);
  peers_.resize(num_hosts);
  nics_.resize(num_hosts, nullptr);
  executors_.resize(num_hosts, nullptr);
  for (int i = 0; i < num_hosts; ++i) {
    delivered_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    dropped_send_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    dropped_decode_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

UdpFabric::~UdpFabric() {
  for (int fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  if (dir_fd_ >= 0) {
    ::close(dir_fd_);
  }
}

Status UdpFabric::BindLocalSockets() {
  for (int h = 0; h < num_hosts_; ++h) {
    if (!local_[h]) {
      continue;
    }
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
      return InternalError(std::string("socket: ") + strerror(errno));
    }
    fds_[h] = fd;
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      return InternalError(std::string("fcntl: ") + strerror(errno));
    }
    if (options_.socket_buffer_bytes > 0) {
      // Best-effort: the kernel clamps to its limits.
      int bytes = options_.socket_buffer_bytes;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    if (::inet_pton(AF_INET, options_.address.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("bad address: " + options_.address);
    }
    uint16_t want =
        options_.base_port == 0
            ? 0
            : static_cast<uint16_t>(options_.base_port + h);
    addr.sin_port = htons(want);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return InternalError(std::string("bind: ") + strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return InternalError(std::string("getsockname: ") + strerror(errno));
    }
    ports_[h] = ntohs(bound.sin_port);
    peers_[h].addr = bound;
    // bind() on INADDR_ANY-ish addresses still reports the bound address;
    // use the configured address for self-sends.
    ::inet_pton(AF_INET, options_.address.c_str(), &peers_[h].addr.sin_addr);
    peers_[h].addr.sin_family = AF_INET;
    peers_[h].addr.sin_port = htons(ports_[h]);
    peers_[h].wire_min = options_.wire_min;
    peers_[h].wire_max = options_.wire_max;
    peers_[h].known = true;
  }
  return OkStatus();
}

std::vector<ControlEntry> UdpFabric::LocalEntries() const {
  std::vector<ControlEntry> entries;
  for (int h = 0; h < num_hosts_; ++h) {
    if (!local_[h]) {
      continue;
    }
    ControlEntry e;
    e.host_id = h;
    e.ipv4_be = peers_[h].addr.sin_addr.s_addr;
    e.port = ports_[h];
    e.wire_min = options_.wire_min;
    e.wire_max = options_.wire_max;
    entries.push_back(e);
  }
  return entries;
}

void UdpFabric::AdoptTable(const ControlFrame& table) {
  for (const ControlEntry& e : table.entries) {
    if (e.host_id < 0 || e.host_id >= num_hosts_ || local_[e.host_id]) {
      continue;  // own endpoints are authoritative locally
    }
    Peer& p = peers_[e.host_id];
    p.addr.sin_family = AF_INET;
    p.addr.sin_addr.s_addr = e.ipv4_be;
    p.addr.sin_port = htons(e.port);
    p.wire_min = e.wire_min;
    p.wire_max = e.wire_max;
    p.known = true;
    ports_[e.host_id] = e.port;
  }
}

void UdpFabric::SendAck(int fd, const sockaddr_in& to) {
  ControlFrame ack;
  ack.type = ControlFrameType::kTableAck;
  ack.sender = first_local_;
  std::vector<uint8_t> buf;
  if (EncodeControlFrame(ack, &buf).ok()) {
    ::sendto(fd, buf.data(), buf.size(), 0,
             reinterpret_cast<const sockaddr*>(&to), sizeof(to));
    control_frames_.fetch_add(1, std::memory_order_relaxed);
  }
}

void UdpFabric::DirectoryLoop() {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.rendezvous_timeout_ms);
  const auto interval =
      std::chrono::milliseconds(options_.announce_interval_ms);

  std::vector<ControlEntry> table(static_cast<size_t>(num_hosts_));
  std::vector<bool> have(static_cast<size_t>(num_hosts_), false);
  // One endpoint per announcing member process; all must ack the table.
  std::vector<sockaddr_in> members;
  std::vector<bool> acked;
  uint8_t buf[kMaxFrameBytes];
  auto next_send = Clock::now();

  while (Clock::now() < deadline) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t n = ::recvfrom(dir_fd_, buf, sizeof(buf), 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n > 0) {
      StatusOr<ControlFrame> frame =
          DecodeControlFrame(buf, static_cast<size_t>(n));
      if (frame.ok()) {
        control_frames_.fetch_add(1, std::memory_order_relaxed);
        if (frame->type == ControlFrameType::kAnnounce) {
          for (const ControlEntry& e : frame->entries) {
            if (e.host_id >= 0 && e.host_id < num_hosts_) {
              table[static_cast<size_t>(e.host_id)] = e;
              have[static_cast<size_t>(e.host_id)] = true;
            }
          }
          bool seen = false;
          for (const sockaddr_in& m : members) {
            seen = seen || SameEndpoint(m, from);
          }
          if (!seen) {
            members.push_back(from);
            acked.push_back(false);
          }
        } else if (frame->type == ControlFrameType::kTableAck) {
          for (size_t m = 0; m < members.size(); ++m) {
            if (SameEndpoint(members[m], from)) {
              acked[m] = true;
            }
          }
        }
      }
      continue;  // keep draining before sleeping
    }
    bool complete = true;
    for (bool h : have) {
      complete = complete && h;
    }
    if (complete) {
      bool all_acked = true;
      for (bool a : acked) {
        all_acked = all_acked && a;
      }
      if (all_acked && !members.empty()) {
        return;
      }
      if (Clock::now() >= next_send) {
        next_send = Clock::now() + interval;
        ControlFrame reply;
        reply.type = ControlFrameType::kTable;
        reply.sender = -1;
        reply.entries = table;
        std::vector<uint8_t> out;
        if (EncodeControlFrame(reply, &out).ok()) {
          for (size_t m = 0; m < members.size(); ++m) {
            if (acked[m]) {
              continue;
            }
            ::sendto(dir_fd_, out.data(), out.size(), 0,
                     reinterpret_cast<sockaddr*>(&members[m]),
                     sizeof(members[m]));
            control_frames_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Status UdpFabric::Rendezvous() {
  using Clock = std::chrono::steady_clock;
  dir_addr_ = sockaddr_in{};
  dir_addr_.sin_family = AF_INET;
  dir_addr_.sin_port = htons(options_.directory_port);
  if (::inet_pton(AF_INET, options_.directory_address.c_str(),
                  &dir_addr_.sin_addr) != 1) {
    return InvalidArgumentError("bad directory address: " +
                                options_.directory_address);
  }

  std::thread directory;
  if (options_.directory_server) {
    dir_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (dir_fd_ < 0) {
      return InternalError(std::string("directory socket: ") +
                           strerror(errno));
    }
    int flags = ::fcntl(dir_fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(dir_fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
      return InternalError(std::string("directory fcntl: ") +
                           strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = INADDR_ANY;
    addr.sin_port = htons(options_.directory_port);
    if (::bind(dir_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return InternalError(std::string("directory bind: ") + strerror(errno));
    }
    directory = std::thread([this] { DirectoryLoop(); });
  }

  // Member side: announce on the first local data socket until the table
  // arrives (the directory replies to this socket's endpoint).
  const int fd = fds_[first_local_];
  ControlFrame announce;
  announce.type = ControlFrameType::kAnnounce;
  announce.sender = first_local_;
  announce.entries = LocalEntries();
  std::vector<uint8_t> announce_buf;
  Status encoded = EncodeControlFrame(announce, &announce_buf);
  if (!encoded.ok()) {
    if (directory.joinable()) {
      directory.join();
    }
    return encoded;
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.rendezvous_timeout_ms);
  const auto interval =
      std::chrono::milliseconds(options_.announce_interval_ms);
  auto next_announce = Clock::now();
  uint8_t buf[kMaxFrameBytes];
  bool got_table = false;
  while (!got_table && Clock::now() < deadline) {
    if (Clock::now() >= next_announce) {
      next_announce = Clock::now() + interval;
      ::sendto(fd, announce_buf.data(), announce_buf.size(), 0,
               reinterpret_cast<sockaddr*>(&dir_addr_), sizeof(dir_addr_));
      control_frames_.fetch_add(1, std::memory_order_relaxed);
    }
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t n = ::recvfrom(fd, buf, sizeof(buf), 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n > 0) {
      if (!IsControlFrame(buf, static_cast<size_t>(n))) {
        continue;  // a fast peer's data frame; the engine drains it later
      }
      StatusOr<ControlFrame> frame =
          DecodeControlFrame(buf, static_cast<size_t>(n));
      if (frame.ok() && frame->type == ControlFrameType::kTable) {
        control_frames_.fetch_add(1, std::memory_order_relaxed);
        AdoptTable(*frame);
        SendAck(fd, from);
        got_table = true;
      }
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (directory.joinable()) {
    directory.join();
  }
  if (!got_table) {
    return DeadlineExceededError("rendezvous: no table from directory");
  }
  for (int h = 0; h < num_hosts_; ++h) {
    if (!peers_[h].known) {
      return InternalError("rendezvous: incomplete table (host " +
                           std::to_string(h) + ")");
    }
  }
  return OkStatus();
}

Status UdpFabric::Init() {
  Status bound = BindLocalSockets();
  if (!bound.ok()) {
    return bound;
  }
  bool all_local = true;
  for (int h = 0; h < num_hosts_; ++h) {
    all_local = all_local && local_[h];
  }
  if (options_.directory_port == 0) {
    if (!all_local) {
      return InvalidArgumentError(
          "remote hosts configured but no directory_port");
    }
    return OkStatus();
  }
  return Rendezvous();
}

void UdpFabric::AddHost(int host_id, Nic* nic, LiveExecutor* executor) {
  SNAP_CHECK_GE(host_id, 0);
  SNAP_CHECK_LT(host_id, num_hosts_);
  SNAP_CHECK(local_[host_id]) << "AddHost on remote host " << host_id;
  SNAP_CHECK(fds_[host_id] >= 0) << "AddHost before Init";
  SNAP_CHECK(nics_[host_id] == nullptr) << "host registered twice";
  nics_[host_id] = nic;
  executors_[host_id] = executor;
}

void UdpFabric::Route(PacketPtr packet, SimTime wire_time) {
  (void)wire_time;
  int dst = packet->dst_host;
  int src = packet->src_host;
  if (dst < 0 || dst >= num_hosts_ || src < 0 || src >= num_hosts_ ||
      !local_[src] || !peers_[dst].known) {
    dropped_bad_address_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Reused per engine thread: encoding allocates nothing at steady state.
  thread_local std::vector<uint8_t> frame;
  Status encoded = EncodeWireFrame(*packet, &frame);
  if (!encoded.ok()) {
    dropped_send_[src]->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ssize_t sent =
      ::sendto(fds_[src], frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&peers_[dst].addr),
               sizeof(peers_[dst].addr));
  if (sent < 0) {
    // EAGAIN/ENOBUFS: the socket buffer is the congested egress port.
    dropped_send_[src]->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // In-process peers get their doorbell rung; remote peers rely on the
  // receiver's bounded park.
  if (executors_[dst] != nullptr) {
    executors_[dst]->Wake();
  }
}

int UdpFabric::DrainTo(int dst_host) {
  int delivered = 0;
  Nic* nic = nics_[dst_host];
  int fd = fds_[dst_host];
  uint8_t buf[kMaxFrameBytes];
  for (int i = 0; i < options_.recv_batch; ++i) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t n = ::recvfrom(fd, buf, sizeof(buf), 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      break;  // EAGAIN: drained
    }
    if (IsControlFrame(buf, static_cast<size_t>(n))) {
      // A TABLE resend after our ack was lost: re-ack so the directory
      // can finish. Anything else on the control plane is stale here.
      StatusOr<ControlFrame> frame =
          DecodeControlFrame(buf, static_cast<size_t>(n));
      if (frame.ok() && frame->type == ControlFrameType::kTable) {
        control_frames_.fetch_add(1, std::memory_order_relaxed);
        SendAck(fd, from);
      }
      continue;
    }
    StatusOr<PacketPtr> decoded = DecodeWireFrame(buf, static_cast<size_t>(n));
    if (!decoded.ok()) {
      dropped_decode_[dst_host]->fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    nic->DeliverFromWire(std::move(*decoded));
    ++delivered;
  }
  if (delivered > 0) {
    delivered_[dst_host]->fetch_add(delivered, std::memory_order_relaxed);
  }
  return delivered;
}

UdpFabric::Stats UdpFabric::GetStats() const {
  Stats s;
  for (int i = 0; i < num_hosts_; ++i) {
    s.delivered += delivered_[i]->load(std::memory_order_relaxed);
    s.dropped_send += dropped_send_[i]->load(std::memory_order_relaxed);
    s.dropped_decode += dropped_decode_[i]->load(std::memory_order_relaxed);
  }
  s.dropped_bad_address =
      dropped_bad_address_.load(std::memory_order_relaxed);
  s.control_frames = control_frames_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace snap
