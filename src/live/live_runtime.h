// LiveRuntime: assembles a rack of live hosts — per-host LiveExecutor +
// Nic + PonyEngine over a shared fabric (loopback rings or UDP sockets) —
// and runs them on real OS threads.
//
// This is the "one codebase, simulated and real" endpoint (ROADMAP item
// 2): the engines, NIC model, QoS elements and telemetry are the exact
// objects the simulator drives; only the substrate underneath differs.
// Apps attach PonyClients and talk to engines over the same SPSC
// command/completion rings, now genuinely concurrent.
//
// Phases and their threading rules:
//  1. Construction + client/stream setup: single-threaded. Everything that
//     mutates engine maps — CreateClient, CreateStream on the client,
//     QoS enablement, tracing — happens here.
//  2. Start()..Stop(): engine threads run. Apps may only submit commands,
//     poll completions/messages, and read the clock.
//  3. After Stop(): single-threaded again; stats, telemetry merges and
//     trace extraction are exact.
#ifndef SRC_LIVE_LIVE_RUNTIME_H_
#define SRC_LIVE_LIVE_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "src/live/live_executor.h"
#include "src/live/live_scheduler.h"
#include "src/live/loopback_fabric.h"
#include "src/live/udp_fabric.h"
#include "src/net/nic.h"
#include "src/pony/client.h"
#include "src/pony/pony_engine.h"
#include "src/qos/tenant.h"
#include "src/sim/model_params.h"
#include "src/stats/telemetry.h"
#include "src/stats/trace.h"
#include "src/util/status.h"

namespace snap {

class LiveRuntime;

// One live machine: an executor thread hosting one Pony engine on one NIC.
class LiveHost {
 public:
  LiveExecutor* executor() { return executor_.get(); }
  Nic* nic() { return nic_.get(); }
  PonyEngine* engine() { return engine_.get(); }
  int host_id() const { return host_id_; }

  // Application bootstrap (setup phase only): command/completion rings
  // shared with the engine. Client ids follow the sim's global-uniqueness
  // scheme so stream ids never collide across hosts.
  std::unique_ptr<PonyClient> CreateClient(const std::string& app_name);

 private:
  friend class LiveRuntime;
  LiveHost() = default;

  int host_id_ = -1;
  AppParams app_params_;
  uint64_t next_client_id_ = 1;
  std::unique_ptr<LiveExecutor> executor_;
  std::unique_ptr<Nic> nic_;
  std::unique_ptr<PonyEngine> engine_;
  std::unique_ptr<TraceRecorder> tracer_;
};

class LiveRuntime {
 public:
  enum class FabricKind { kLoopback, kUdp };

  struct Options {
    int num_hosts = 2;
    // Hosts this process owns (cross-process UDP runs). Empty = all.
    // Remote hosts get no executor/engine here — host(i) returns nullptr
    // for them — but their engine addresses resolve through the
    // rendezvous-fed PonyDirectory. UDP fabric only.
    std::vector<int> local_hosts;
    FabricKind fabric = FabricKind::kLoopback;
    NicParams nic;
    PonyParams pony;
    TimelyParams timely;
    AppParams app;
    LiveExecutor::Options executor;
    LoopbackFabric::Options loopback;
    UdpFabric::Options udp;
    // How executors map onto worker threads (Section 2.4 made live).
    // Default: dedicated mode, one worker per host — the PR 9 behavior.
    // spin_before_park/max_park are taken from `executor` above.
    LiveScheduler::Options scheduler;
    // Pin worker i to core (pin_base_core + i).
    bool pin_threads = false;
    int pin_base_core = 0;
    uint64_t seed = 1;
  };

  explicit LiveRuntime(const Options& options);
  ~LiveRuntime();

  // Binds sockets (UDP) and wires poll hooks. Call once before Start().
  Status Init();

  // Host i, or nullptr when host i lives in another process.
  LiveHost* host(int i) { return hosts_[i].get(); }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  PonyDirectory* directory() { return &directory_; }
  // The engine scheduler (placement stats, rebalance decisions,
  // ProfileJson). Setup-phase config like EnableProfileDump goes through
  // here too.
  LiveScheduler* scheduler() { return scheduler_.get(); }

  // Setup phase: enables DRR flow scheduling on every engine and WFQ TX
  // on every NIC. `tenants` must outlive the runtime.
  void EnableQos(const qos::TenantRegistry* tenants);
  // Setup phase: arms fixed-memory series sampling on every host's
  // registry; the executors self-pace samples off the wall clock.
  void EnableSeriesSampling(SimDuration bucket_width, int max_buckets = 64);
  // Setup phase: attaches one flight recorder per host (wall-clock
  // timestamps on the shared runtime epoch).
  void EnableTracing();

  void Start();
  void Stop();  // idempotent; joins all engine threads

  // Monotonic nanoseconds since the runtime epoch — the same timeline the
  // executors and trace events use. Thread-safe.
  SimTime NowNs() const { return MonotonicTimeNs() - epoch_ns_; }
  // The epoch itself (raw CLOCK_MONOTONIC ns). Processes of one machine
  // share the clock, so publishing this lets a multi-process merger
  // re-base per-node trace timestamps onto one timeline.
  int64_t epoch_ns() const { return epoch_ns_; }

  // Post-Stop(): folds every host's registry into `out` (counters summed,
  // histograms merged, gauges snapshotted).
  void MergeTelemetry(Telemetry* out) const;

  // Post-Stop(): one deterministic trace — events of all hosts interleaved
  // by timestamp (shared epoch makes them comparable), host tracks offset
  // by kHostTrackStride like the sharded sim's merge.
  static constexpr int kHostTrackStride = 100000;
  std::unique_ptr<TraceRecorder> MergedTrace() const;

  struct FabricStats {
    int64_t delivered = 0;
    int64_t dropped = 0;
  };
  FabricStats GetFabricStats() const;

 private:
  Options options_;
  int64_t epoch_ns_;
  PonyDirectory directory_;
  std::unique_ptr<LoopbackFabric> loopback_;
  std::unique_ptr<UdpFabric> udp_;
  std::vector<std::unique_ptr<LiveHost>> hosts_;
  std::unique_ptr<LiveScheduler> scheduler_;
  // sched_hosts_[i]: host id of the scheduler's executor i (local hosts
  // only, in host order) — labels the placement counters.
  std::vector<int> sched_hosts_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace snap

#endif  // SRC_LIVE_LIVE_RUNTIME_H_
