#include "src/live/live_executor.h"

#include <algorithm>
#include <chrono>

#include "src/stats/trace.h"
#include "src/util/logging.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace snap {

int64_t MonotonicTimeNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PinThreadToCore(int core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  // Best-effort: a container may expose fewer cores than requested; the
  // thread still runs correctly unpinned.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

LiveExecutor::LiveExecutor(uint64_t seed, int64_t epoch_ns, Options options)
    : Substrate(seed), options_(std::move(options)), epoch_ns_(epoch_ns) {
  set_now(MonotonicTimeNs() - epoch_ns_);
}

LiveExecutor::~LiveExecutor() { Stop(); }

void LiveExecutor::AddEngine(Engine* engine) {
  SNAP_CHECK(!running()) << "AddEngine after Start";
  engines_.push_back(engine);
  engine->SetWakeHook([this] { Wake(); });
}

void LiveExecutor::SetPollHook(std::function<int()> hook) {
  SNAP_CHECK(!running()) << "SetPollHook after Start";
  poll_hook_ = std::move(hook);
}

EventHandle LiveExecutor::ScheduleAt(SimTime when, EventQueue::Callback cb) {
  // Late deadlines are normal on a wall clock; clamp instead of CHECK.
  SimTime at = std::max(when, now());
  return events_.ScheduleAt(at, std::move(cb));
}

void LiveExecutor::Start() {
  SNAP_CHECK(!running()) << "executor already started";
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
}

void LiveExecutor::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_seq_cst);
  // Ring both bells: Wake() targets wherever wake_target_ points, which
  // under a scheduler is a worker's doorbell, but the standalone loop
  // parks on doorbell_ specifically.
  Wake();
  doorbell_.Ring();
  thread_.join();
}

void LiveExecutor::Wake() {
  wakes_.fetch_add(1, std::memory_order_relaxed);
  wake_target_.load(std::memory_order_acquire)->Ring();
}

void LiveExecutor::SetWakeTarget(Doorbell* target) {
  wake_target_.store(target != nullptr ? target : &doorbell_,
                     std::memory_order_release);
}

void LiveExecutor::MarkRunning(bool running) {
  externally_running_.store(running, std::memory_order_release);
}

int LiveExecutor::RunDueTimers(SimTime now) {
  int fired = 0;
  SimTime when = 0;
  EventQueue::Callback cb;
  while (!events_.empty() && events_.NextEventTime() <= now) {
    if (!events_.PopNext(&when, &cb)) {
      break;
    }
    // Unlike the simulator, callbacks observe now() == the loop's clock
    // read, which may be later than their deadline (late timers fire on
    // the iteration that discovers them).
    cb();
    ++fired;
  }
  timer_fires_.fetch_add(fired, std::memory_order_relaxed);
  return fired;
}

int64_t LiveExecutor::NextTimerDelayNs() {
  if (events_.empty()) {
    return -1;
  }
  // Fresh clock read: a bound computed from a pass-top "now" would
  // overstate the delay by the duration of the pass and oversleep the
  // deadline (the PR 10 park-bound fix).
  int64_t delay = events_.NextEventTime() - (MonotonicTimeNs() - epoch_ns_);
  return std::max<int64_t>(delay, 0);
}

int LiveExecutor::RunPass() {
  SimTime now = MonotonicTimeNs() - epoch_ns_;
  set_now(now);
  loop_iterations_.fetch_add(1, std::memory_order_relaxed);

  int work = RunDueTimers(now);
  if (poll_hook_) {
    work += poll_hook_();
  }
  SimDuration max_delay = 0;
  for (Engine* engine : engines_) {
    if (engine->RunMailbox() > 0) {
      ++work;
    }
    Engine::PollResult r = engine->Poll(now, options_.poll_budget);
    work += r.work_items;
    max_delay = std::max(max_delay, engine->QueueingDelay(now));
  }
  queue_delay_ns_.store(max_delay, std::memory_order_relaxed);
  telemetry().MaybeSampleSeries(now);

  if (work > 0) {
    work_items_.fetch_add(work, std::memory_order_relaxed);
    busy_ns_.fetch_add(MonotonicTimeNs() - epoch_ns_ - now,
                       std::memory_order_relaxed);
  }
  return work;
}

void LiveExecutor::Run() {
  if (options_.cpu_affinity >= 0) {
    PinThreadToCore(options_.cpu_affinity);
  }
  SimTime last_work = MonotonicTimeNs() - epoch_ns_;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Consume the doorbell before polling: anything rung after this point
    // triggers another full pass instead of being absorbed by this one.
    doorbell_.Consume();

    int work = RunPass();
    SimTime after = now();
    if (work > 0) {
      last_work = after;
      continue;
    }
    if (after - last_work < options_.spin_before_park) {
      continue;  // busy-poll window: lowest wake latency
    }
    // Park, bounded by the nearest timer (fresh clock) and max_park.
    int64_t bound = options_.max_park;
    int64_t timer_delay = NextTimerDelayNs();
    if (timer_delay >= 0) {
      bound = std::min(bound, timer_delay);
    }
    if (bound <= 0 || doorbell_.pending() ||
        stop_.load(std::memory_order_relaxed)) {
      continue;
    }
    parks_.fetch_add(1, std::memory_order_relaxed);
    if (tracer() != nullptr) {
      tracer()->Instant(now(), TraceRecorder::kSchedTrack, "exec_park",
                        "live_sched", TraceArgInt("bound_ns", bound));
    }
    bool rung = doorbell_.WaitFor(bound);
    if (tracer() != nullptr) {
      tracer()->Instant(MonotonicTimeNs() - epoch_ns_,
                        TraceRecorder::kSchedTrack, "exec_wake", "live_sched",
                        TraceArgInt("rung", rung ? 1 : 0));
    }
  }
}

LiveExecutor::Stats LiveExecutor::GetStats() const {
  Stats s;
  s.loop_iterations = loop_iterations_.load(std::memory_order_relaxed);
  s.work_items = work_items_.load(std::memory_order_relaxed);
  s.timer_fires = timer_fires_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakes = wakes_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace snap
