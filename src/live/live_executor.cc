#include "src/live/live_executor.h"

#include <chrono>

#include "src/util/logging.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace snap {

int64_t MonotonicTimeNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

void PinToCore(int core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  // Best-effort: a container may expose fewer cores than requested; the
  // thread still runs correctly unpinned.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

LiveExecutor::LiveExecutor(uint64_t seed, int64_t epoch_ns, Options options)
    : Substrate(seed), options_(std::move(options)), epoch_ns_(epoch_ns) {
  set_now(MonotonicTimeNs() - epoch_ns_);
}

LiveExecutor::~LiveExecutor() { Stop(); }

void LiveExecutor::AddEngine(Engine* engine) {
  SNAP_CHECK(!running()) << "AddEngine after Start";
  engines_.push_back(engine);
  engine->SetWakeHook([this] { Wake(); });
}

void LiveExecutor::SetPollHook(std::function<int()> hook) {
  SNAP_CHECK(!running()) << "SetPollHook after Start";
  poll_hook_ = std::move(hook);
}

EventHandle LiveExecutor::ScheduleAt(SimTime when, EventQueue::Callback cb) {
  // Late deadlines are normal on a wall clock; clamp instead of CHECK.
  SimTime at = std::max(when, now());
  return events_.ScheduleAt(at, std::move(cb));
}

void LiveExecutor::Start() {
  SNAP_CHECK(!running()) << "executor already started";
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
}

void LiveExecutor::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_seq_cst);
  Wake();
  thread_.join();
}

void LiveExecutor::Wake() {
  wakes_.fetch_add(1, std::memory_order_relaxed);
  wake_pending_.store(true, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst)) {
    // Empty critical section: serialize with the thread entering wait so
    // the notify cannot land between its predicate check and the wait.
    { std::lock_guard<std::mutex> lock(park_mutex_); }
    park_cv_.notify_one();
  }
}

int LiveExecutor::RunDueTimers(SimTime now) {
  int fired = 0;
  SimTime when = 0;
  EventQueue::Callback cb;
  while (!events_.empty() && events_.NextEventTime() <= now) {
    if (!events_.PopNext(&when, &cb)) {
      break;
    }
    // Unlike the simulator, callbacks observe now() == the loop's clock
    // read, which may be later than their deadline (late timers fire on
    // the iteration that discovers them).
    cb();
    ++fired;
  }
  timer_fires_.fetch_add(fired, std::memory_order_relaxed);
  return fired;
}

void LiveExecutor::Park(SimTime now) {
  parks_.fetch_add(1, std::memory_order_relaxed);
  SimDuration wait = options_.max_park;
  if (!events_.empty()) {
    wait = std::min(wait, events_.NextEventTime() - now);
  }
  if (wait <= 0) {
    return;
  }
  std::unique_lock<std::mutex> lock(park_mutex_);
  parked_.store(true, std::memory_order_seq_cst);
  park_cv_.wait_for(lock, std::chrono::nanoseconds(wait), [this] {
    return wake_pending_.load(std::memory_order_seq_cst) ||
           stop_.load(std::memory_order_relaxed);
  });
  parked_.store(false, std::memory_order_seq_cst);
}

void LiveExecutor::Run() {
  if (options_.cpu_affinity >= 0) {
    PinToCore(options_.cpu_affinity);
  }
  SimTime last_work = MonotonicTimeNs() - epoch_ns_;
  while (!stop_.load(std::memory_order_relaxed)) {
    SimTime now = MonotonicTimeNs() - epoch_ns_;
    set_now(now);
    loop_iterations_.fetch_add(1, std::memory_order_relaxed);
    // Consume the doorbell before polling: anything rung after this point
    // triggers another full pass instead of being absorbed by this one.
    wake_pending_.store(false, std::memory_order_seq_cst);

    int64_t work = RunDueTimers(now);
    if (poll_hook_) {
      work += poll_hook_();
    }
    for (Engine* engine : engines_) {
      if (engine->RunMailbox() > 0) {
        ++work;
      }
      Engine::PollResult r = engine->Poll(now, options_.poll_budget);
      work += r.work_items;
    }
    telemetry().MaybeSampleSeries(now);

    if (work > 0) {
      work_items_.fetch_add(work, std::memory_order_relaxed);
      last_work = now;
      continue;
    }
    if (now - last_work < options_.spin_before_park) {
      continue;  // busy-poll window: lowest wake latency
    }
    Park(now);
  }
}

LiveExecutor::Stats LiveExecutor::GetStats() const {
  Stats s;
  s.loop_iterations = loop_iterations_.load(std::memory_order_relaxed);
  s.work_items = work_items_.load(std::memory_order_relaxed);
  s.timer_fires = timer_fires_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakes = wakes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace snap
