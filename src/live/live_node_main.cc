// live_node: one process of a cross-process live rack. Each node owns a
// subset of the rack's hosts (--local-hosts), rendezvouses peer endpoints
// through the directory (--directory; exactly one node passes
// --serve-directory), and runs the ring workload: every host ping-pongs
// with its successor ((h+1) % N) and echoes for its predecessor — so a
// two-node run exercises every cross-process edge in both directions.
//
// One PonyClient per host carries both roles. Incoming messages demux by
// the MSB of the 8-byte sequence number leading the payload: clear = a
// ping from the predecessor (echo it back with the MSB set), set = an
// echo of our own ping (bytes 8..16 carry our send timestamp -> RTT).
// Remote senders' stream ids are unbound at the receiving engine, so
// delivery rides the default-sink path; the tag makes the single message
// queue unambiguous.
//
// Exit status is the CI contract: 0 iff every local host finished its
// pings, echoed every predecessor ping, and saw zero transport errors
// before the deadline. Optional artifacts: merged telemetry snapshot,
// merged Chrome trace, live scheduler profile (written periodically while
// running — the snaptop.py --live-profile feed — and exactly at Stop).
//
// Usage (two processes, host 0 serving the directory on port P):
//   live_node --num-hosts 2 --local-hosts 0 --directory 127.0.0.1:P
//             --serve-directory --mode spreading
//   live_node --num-hosts 2 --local-hosts 1 --directory 127.0.0.1:P
//             --mode spreading
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/live/live_runtime.h"
#include "src/snap/engine_group.h"
#include "src/util/doorbell.h"

namespace snap {
namespace {

constexpr uint64_t kEchoTag = 1ULL << 63;

struct NodeOptions {
  int num_hosts = 2;
  std::vector<int> local_hosts;  // empty = all
  LiveRuntime::FabricKind fabric = LiveRuntime::FabricKind::kUdp;
  std::string directory_address = "127.0.0.1";
  uint16_t directory_port = 0;
  bool serve_directory = false;
  SchedulingMode mode = SchedulingMode::kDedicatedCores;
  int iterations = 2000;
  int64_t message_bytes = 64;
  int window = 4;
  bool blocking = false;
  int64_t deadline_sec = 120;
  // After the local apps finish, keep the engines running this long so
  // peer nodes' final retransmits still find a live acker.
  int64_t linger_ms = 300;
  const char* json_path = nullptr;
  const char* telemetry_path = nullptr;
  const char* trace_path = nullptr;
  const char* profile_path = nullptr;
  int profile_interval_ms = 100;
};

struct HostResult {
  int host = -1;
  int64_t pings_sent = 0;
  int64_t pongs_received = 0;   // completed RPCs
  int64_t echoes_sent = 0;      // predecessor pings echoed back
  int64_t pings_received = 0;
  int64_t send_completions = 0;
  int64_t send_errors = 0;
  int64_t submit_backpressure = 0;
  int64_t poll_passes = 0;
  int64_t waits = 0;
  // Send completions still outstanding when the tail drain gave up. Not
  // a failure: the ring's pong counts are the end-to-end delivery gate,
  // and a peer that finishes first may exit before acking our last echo.
  int64_t completions_missing = 0;
  bool timed_out = false;
  std::vector<int64_t> rtt_ns;
};

CpuCostSink* Sink() {
  thread_local CpuCostSink sink;
  return &sink;
}

// Drains send completions into `r`; returns whether any arrived.
bool DrainCompletions(PonyClient* client, HostResult* r) {
  bool any = false;
  while (auto done = client->PollCompletion(Sink())) {
    any = true;
    r->send_completions++;
    if (done->status != PonyOpStatus::kOk) {
      r->send_errors++;
    }
  }
  return any;
}

// The ring workload for one host: `iterations` tagged pings to the
// successor with up to `window` in flight, echoing every predecessor
// ping as it arrives. Runs until both directions complete and the send
// completions drain, or the deadline passes.
HostResult RunRingHost(PonyClient* client, uint64_t ping_stream,
                       PonyAddress succ, uint64_t echo_stream,
                       PonyAddress pred, const NodeOptions& opts,
                       Doorbell* doorbell) {
  constexpr int64_t kBlockSliceNs = 1'000'000;
  HostResult r;
  const int64_t deadline =
      MonotonicTimeNs() + opts.deadline_sec * 1'000'000'000;
  int64_t in_flight = 0;
  std::vector<uint8_t> payload(static_cast<size_t>(opts.message_bytes),
                               0xa5);
  auto expired = [&] { return MonotonicTimeNs() > deadline; };
  auto done = [&] {
    return r.pongs_received >= opts.iterations &&
           r.echoes_sent >= opts.iterations;
  };
  while (!done()) {
    if (expired()) {
      r.timed_out = true;
      break;
    }
    if (doorbell != nullptr) {
      doorbell->Consume();
    }
    r.poll_passes++;
    bool progress = false;
    // Keep the closed-loop ping window to the successor full.
    while (in_flight < opts.window && r.pings_sent < opts.iterations) {
      uint64_t seq = static_cast<uint64_t>(r.pings_sent);
      int64_t now = MonotonicTimeNs();
      std::memcpy(payload.data(), &seq, sizeof(seq));
      std::memcpy(payload.data() + 8, &now, sizeof(now));
      if (client->SendMessage(succ, ping_stream, opts.message_bytes,
                              payload, Sink()) == 0) {
        r.submit_backpressure++;
        break;  // command ring full; poll before retrying
      }
      r.pings_sent++;
      in_flight++;
      progress = true;
    }
    while (auto msg = client->PollMessage(Sink())) {
      progress = true;
      uint64_t seq = 0;
      if (msg->data.size() >= 16) {
        std::memcpy(&seq, msg->data.data(), sizeof(seq));
      }
      if ((seq & kEchoTag) != 0) {
        // Our ping, echoed back by the successor.
        r.pongs_received++;
        in_flight--;
        int64_t sent_at = 0;
        std::memcpy(&sent_at, msg->data.data() + 8, sizeof(sent_at));
        r.rtt_ns.push_back(MonotonicTimeNs() - sent_at);
        continue;
      }
      // A predecessor ping: tag it and send it back, preserving the
      // timestamp; retry through ring backpressure.
      r.pings_received++;
      std::vector<uint8_t> echo = std::move(msg->data);
      seq |= kEchoTag;
      std::memcpy(echo.data(), &seq, sizeof(seq));
      int64_t len = msg->length;
      while (client->SendMessage(pred, echo_stream, len, echo, Sink()) ==
             0) {
        r.submit_backpressure++;
        if (expired()) {
          r.timed_out = true;
          return r;
        }
        DrainCompletions(client, &r);
      }
      r.echoes_sent++;
    }
    if (DrainCompletions(client, &r)) {
      progress = true;
    }
    if (!progress && doorbell != nullptr && !doorbell->pending()) {
      r.waits++;
      doorbell->WaitFor(kBlockSliceNs);
    }
  }
  // Tail: drain remaining send completions, bounded by the linger budget
  // — after this window a peer may have exited and the ack is gone.
  const int64_t tail_deadline = std::min(
      deadline, MonotonicTimeNs() + opts.linger_ms * 1'000'000);
  while (r.send_completions < r.pings_sent + r.echoes_sent &&
         MonotonicTimeNs() < tail_deadline) {
    if (doorbell != nullptr) {
      doorbell->Consume();
    }
    r.poll_passes++;
    if (!DrainCompletions(client, &r) && doorbell != nullptr &&
        !doorbell->pending()) {
      r.waits++;
      doorbell->WaitFor(kBlockSliceNs);
    }
  }
  r.completions_missing =
      r.pings_sent + r.echoes_sent - r.send_completions;
  return r;
}

double PercentileUs(std::vector<int64_t> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(
      p / 100.0 * static_cast<double>(values.size() - 1));
  return static_cast<double>(values[idx]) / 1000.0;
}

std::vector<int> ParseHostList(const char* arg) {
  std::vector<int> hosts;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    long value = std::strtol(p, &end, 10);
    if (end == p) {
      std::fprintf(stderr, "bad --local-hosts list: %s\n", arg);
      std::exit(2);
    }
    hosts.push_back(static_cast<int>(value));
    p = (*end == ',') ? end + 1 : end;
  }
  return hosts;
}

bool ParseEndpoint(const char* arg, std::string* address, uint16_t* port) {
  const char* colon = std::strrchr(arg, ':');
  if (colon == nullptr || colon == arg) {
    return false;
  }
  *address = std::string(arg, colon - arg);
  long value = std::strtol(colon + 1, nullptr, 10);
  if (value <= 0 || value > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--num-hosts N] [--local-hosts 0,1,..] "
      "[--fabric loopback|udp] [--directory ADDR:PORT] [--serve-directory] "
      "[--mode dedicated|spreading|compacting] [--iterations I] "
      "[--bytes B] [--window W] [--blocking] [--deadline-sec S] "
      "[--linger-ms MS] "
      "[--json PATH] [--telemetry-out PATH] [--trace-out PATH] "
      "[--profile-out PATH] [--profile-interval-ms MS]\n",
      argv0);
  return 2;
}

int Main(int argc, char** argv) {
  NodeOptions opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--num-hosts") == 0) {
      opts.num_hosts = std::atoi(next("--num-hosts"));
    } else if (std::strcmp(argv[i], "--local-hosts") == 0) {
      opts.local_hosts = ParseHostList(next("--local-hosts"));
    } else if (std::strcmp(argv[i], "--fabric") == 0) {
      const char* value = next("--fabric");
      if (std::strcmp(value, "loopback") == 0) {
        opts.fabric = LiveRuntime::FabricKind::kLoopback;
      } else if (std::strcmp(value, "udp") == 0) {
        opts.fabric = LiveRuntime::FabricKind::kUdp;
      } else {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--directory") == 0) {
      if (!ParseEndpoint(next("--directory"), &opts.directory_address,
                         &opts.directory_port)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--serve-directory") == 0) {
      opts.serve_directory = true;
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      if (!SchedulingModeFromString(next("--mode"), &opts.mode)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      opts.iterations = std::atoi(next("--iterations"));
    } else if (std::strcmp(argv[i], "--bytes") == 0) {
      opts.message_bytes = std::atoll(next("--bytes"));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      opts.window = std::atoi(next("--window"));
    } else if (std::strcmp(argv[i], "--blocking") == 0) {
      opts.blocking = true;
    } else if (std::strcmp(argv[i], "--deadline-sec") == 0) {
      opts.deadline_sec = std::atoll(next("--deadline-sec"));
    } else if (std::strcmp(argv[i], "--linger-ms") == 0) {
      opts.linger_ms = std::atoll(next("--linger-ms"));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opts.json_path = next("--json");
    } else if (std::strcmp(argv[i], "--telemetry-out") == 0) {
      opts.telemetry_path = next("--telemetry-out");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      opts.trace_path = next("--trace-out");
    } else if (std::strcmp(argv[i], "--profile-out") == 0) {
      opts.profile_path = next("--profile-out");
    } else if (std::strcmp(argv[i], "--profile-interval-ms") == 0) {
      opts.profile_interval_ms = std::atoi(next("--profile-interval-ms"));
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.num_hosts < 2 || opts.message_bytes < 16 || opts.window < 1 ||
      opts.iterations < 1) {
    return Usage(argv[0]);
  }

  LiveRuntime::Options runtime_opts;
  runtime_opts.num_hosts = opts.num_hosts;
  runtime_opts.local_hosts = opts.local_hosts;
  runtime_opts.fabric = opts.fabric;
  runtime_opts.scheduler.mode = opts.mode;
  runtime_opts.udp.directory_address = opts.directory_address;
  runtime_opts.udp.directory_port = opts.directory_port;
  runtime_opts.udp.directory_server = opts.serve_directory;
  LiveRuntime runtime(runtime_opts);
  if (opts.trace_path != nullptr) {
    runtime.EnableTracing();
  }
  if (opts.profile_path != nullptr) {
    runtime.scheduler()->EnableProfileDump(opts.profile_path,
                                           opts.profile_interval_ms);
  }

  Status init = runtime.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "init failed: %s\n",
                 std::string(init.message()).c_str());
    return 1;
  }

  // Setup phase: one client + its two ring streams per local host.
  struct HostApp {
    int host;
    std::unique_ptr<PonyClient> client;
    std::unique_ptr<Doorbell> doorbell;
    uint64_t ping_stream;
    uint64_t echo_stream;
    PonyAddress succ;
    PonyAddress pred;
    HostResult result;
  };
  std::vector<HostApp> apps;
  for (int h = 0; h < runtime.num_hosts(); ++h) {
    LiveHost* host = runtime.host(h);
    if (host == nullptr) {
      continue;  // remote host: some other node runs it
    }
    HostApp app;
    app.host = h;
    app.client = host->CreateClient("ring-h" + std::to_string(h));
    int succ = (h + 1) % opts.num_hosts;
    int pred = (h + opts.num_hosts - 1) % opts.num_hosts;
    // Engine ids are host + 1 by construction, so remote addresses need
    // no coordination.
    app.succ = PonyAddress{succ, static_cast<uint32_t>(succ + 1)};
    app.pred = PonyAddress{pred, static_cast<uint32_t>(pred + 1)};
    app.ping_stream = app.client->CreateStream(app.succ);
    app.echo_stream = app.client->CreateStream(app.pred);
    if (opts.blocking) {
      app.doorbell = std::make_unique<Doorbell>();
      app.client->BindDoorbell(app.doorbell.get());
    }
    apps.push_back(std::move(app));
  }

  runtime.Start();
  int64_t t0 = MonotonicTimeNs();
  std::vector<std::thread> threads;
  threads.reserve(apps.size());
  for (HostApp& app : apps) {
    threads.emplace_back([&app, &opts] {
      app.result = RunRingHost(app.client.get(), app.ping_stream, app.succ,
                               app.echo_stream, app.pred, opts,
                               app.doorbell.get());
      app.result.host = app.host;
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  int64_t t1 = MonotonicTimeNs();
  // Keep the engines acking for peers whose tail drain is still running.
  if (opts.fabric == LiveRuntime::FabricKind::kUdp &&
      !opts.local_hosts.empty()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts.linger_ms));
  }
  runtime.Stop();

  bool ok = true;
  for (const HostApp& app : apps) {
    const HostResult& r = app.result;
    bool host_ok = !r.timed_out && r.pongs_received == opts.iterations &&
                   r.echoes_sent == opts.iterations && r.send_errors == 0;
    ok = ok && host_ok;
    std::printf(
        "host %d %s  pings %lld/%d  echoes %lld  p50 %7.1fus  "
        "p99 %7.1fus  polls %lld  waits %lld\n",
        r.host, host_ok ? "ok  " : "FAIL",
        static_cast<long long>(r.pongs_received), opts.iterations,
        static_cast<long long>(r.echoes_sent), PercentileUs(r.rtt_ns, 50),
        PercentileUs(r.rtt_ns, 99), static_cast<long long>(r.poll_passes),
        static_cast<long long>(r.waits));
  }
  LiveRuntime::FabricStats fabric = runtime.GetFabricStats();
  double wall_sec = static_cast<double>(t1 - t0) / 1e9;
  std::printf("%s: mode=%s blocking=%d wall %.3fs fabric delivered %lld "
              "dropped %lld migrations %lld\n",
              ok ? "ring complete" : "RING FAILED",
              SchedulingModeName(opts.mode), opts.blocking ? 1 : 0,
              wall_sec, static_cast<long long>(fabric.delivered),
              static_cast<long long>(fabric.dropped),
              static_cast<long long>(runtime.scheduler()->migrations()));

  if (opts.telemetry_path != nullptr) {
    Telemetry merged;
    runtime.MergeTelemetry(&merged);
    std::FILE* f = std::fopen(opts.telemetry_path, "w");
    if (f != nullptr) {
      std::string json = merged.SnapshotJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  if (opts.trace_path != nullptr) {
    runtime.MergedTrace()->WriteJson(opts.trace_path);
  }

  if (opts.json_path != nullptr) {
    std::FILE* f = std::fopen(opts.json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"ok\": %s,\n", ok ? "true" : "false");
    std::fprintf(f, "  \"num_hosts\": %d,\n", opts.num_hosts);
    std::fprintf(f, "  \"epoch_ns\": %lld,\n",
                 static_cast<long long>(runtime.epoch_ns()));
    std::fprintf(f, "  \"mode\": \"%s\",\n", SchedulingModeName(opts.mode));
    std::fprintf(f, "  \"blocking\": %s,\n",
                 opts.blocking ? "true" : "false");
    std::fprintf(f, "  \"iterations\": %d,\n", opts.iterations);
    std::fprintf(f, "  \"wall_sec\": %.6f,\n", wall_sec);
    std::fprintf(f, "  \"fabric_delivered\": %lld,\n",
                 static_cast<long long>(fabric.delivered));
    std::fprintf(f, "  \"fabric_dropped\": %lld,\n",
                 static_cast<long long>(fabric.dropped));
    std::fprintf(f, "  \"sched_workers\": %d,\n",
                 runtime.scheduler()->num_workers());
    std::fprintf(f, "  \"sched_migrations\": %lld,\n",
                 static_cast<long long>(runtime.scheduler()->migrations()));
    std::fprintf(f, "  \"hosts\": {\n");
    for (size_t i = 0; i < apps.size(); ++i) {
      const HostResult& r = apps[i].result;
      std::fprintf(f, "    \"%d\": {\n", r.host);
      std::fprintf(f, "      \"pongs_received\": %lld,\n",
                   static_cast<long long>(r.pongs_received));
      std::fprintf(f, "      \"echoes_sent\": %lld,\n",
                   static_cast<long long>(r.echoes_sent));
      std::fprintf(f, "      \"send_errors\": %lld,\n",
                   static_cast<long long>(r.send_errors));
      std::fprintf(f, "      \"poll_passes\": %lld,\n",
                   static_cast<long long>(r.poll_passes));
      std::fprintf(f, "      \"waits\": %lld,\n",
                   static_cast<long long>(r.waits));
      std::fprintf(f, "      \"completions_missing\": %lld,\n",
                   static_cast<long long>(r.completions_missing));
      std::fprintf(f, "      \"p50_rtt_us\": %.2f,\n",
                   PercentileUs(r.rtt_ns, 50));
      std::fprintf(f, "      \"p99_rtt_us\": %.2f,\n",
                   PercentileUs(r.rtt_ns, 99));
      std::fprintf(f, "      \"timed_out\": %s\n",
                   r.timed_out ? "true" : "false");
      std::fprintf(f, "    }%s\n", i + 1 == apps.size() ? "" : ",");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace snap

int main(int argc, char** argv) { return snap::Main(argc, argv); }
