// UdpFabric: live fabric over real UDP sockets — one socket per host NIC,
// real Pony Express frames on the wire (src/packet/wire.h full-frame
// codec).
//
// Each local host binds its own non-blocking datagram socket; Route()
// encodes the packet and sendto()s it from the source host's engine
// thread, and the destination's poll hook recvfrom()s in batches,
// decodes, and hands packets to its NIC.
//
// Cross-process/machine operation: a fabric may own only a subset of the
// rack's hosts (`local_hosts`), with every other host living in another
// process. Peer endpoints are learned through a port-rendezvous handshake
// against a directory (one process serves it, `directory_server`):
//
//   member    -> directory   ANNOUNCE {my hosts: ip, port, wire range}
//   directory -> members     TABLE    {all hosts}   (once complete)
//   member    -> directory   TABLE_ACK              (directory resends
//                                                    until all ack)
//
// Control frames (kControlFrameMagic, versioned independently of data
// frames) share the member's first data socket, so no extra ports are
// needed; a stray TABLE resend arriving after rendezvous is re-acked from
// the receive path. The announced wire-version range is how remote
// engines advertise versions out-of-band (Section 3.1) — the runtime
// registers them in the PonyDirectory so flow creation negotiates against
// real peer limits before the first data frame.
//
// UDP is allowed to drop, duplicate, and reorder — exactly the lossy
// fabric contract Pony Express is built against, so no reliability shim
// sits between the socket and the transport. A send that fails with
// EAGAIN (full socket buffer) counts as a fabric drop for the same
// reason. Peers in other processes cannot ring a parked executor's
// doorbell; the bounded max_park covers that gap.
#ifndef SRC_LIVE_UDP_FABRIC_H_
#define SRC_LIVE_UDP_FABRIC_H_

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/live/live_executor.h"
#include "src/net/egress.h"
#include "src/net/nic.h"
#include "src/packet/wire.h"
#include "src/util/status.h"

namespace snap {

class UdpFabric : public PacketEgress {
 public:
  struct Options {
    // Local address to bind every host socket on (and the address
    // announced to the directory — set an externally routable IP for
    // multi-machine runs).
    std::string address = "127.0.0.1";
    // First port; host h binds base_port + h. 0 lets the kernel pick free
    // ports (single-process runs, no port conflicts across CI jobs).
    uint16_t base_port = 0;
    // Datagrams drained per DrainTo call (bounds time in the poll hook).
    int recv_batch = 64;
    // Socket buffer request (0 keeps the kernel default).
    int socket_buffer_bytes = 1 << 20;

    // --- Cross-process rendezvous (all optional) ---
    // Hosts this process owns. Empty = all hosts (single-process legacy).
    std::vector<int> local_hosts;
    // Directory endpoint. directory_port == 0 disables rendezvous (then
    // every host must be local).
    std::string directory_address = "127.0.0.1";
    uint16_t directory_port = 0;
    // Exactly one process of the group serves the directory.
    bool directory_server = false;
    int rendezvous_timeout_ms = 10000;
    int announce_interval_ms = 50;
    // Wire-version range announced for this process's hosts.
    uint16_t wire_min = kPonyWireVersionMin;
    uint16_t wire_max = kPonyWireVersionMax;
  };

  explicit UdpFabric(int num_hosts);
  UdpFabric(int num_hosts, Options options);
  ~UdpFabric() override;

  // Binds local sockets and, when a directory is configured, runs the
  // blocking rendezvous until every host's endpoint is known (or the
  // timeout fails the Init). Must succeed before AddHost/Start.
  Status Init();

  // Setup-thread-only, after Init(). Local hosts only.
  void AddHost(int host_id, Nic* nic, LiveExecutor* executor);

  // PacketEgress; called on the source host's engine thread.
  void Route(PacketPtr packet, SimTime wire_time) override;

  // Drains up to recv_batch datagrams for `dst_host` into its NIC; called
  // from that host's executor thread. Returns packets delivered.
  int DrainTo(int dst_host);

  int num_hosts() const { return num_hosts_; }
  bool IsLocal(int host) const { return local_[host]; }
  // Port host `h` is bound to (after Init); for remote hosts this is the
  // rendezvous-learned peer port.
  uint16_t port(int host) const { return ports_[host]; }
  // Advertised wire-version range of `host` (rendezvous-learned for
  // remote hosts; this process's own range for local ones).
  uint16_t peer_wire_min(int host) const { return peers_[host].wire_min; }
  uint16_t peer_wire_max(int host) const { return peers_[host].wire_max; }

  struct Stats {
    int64_t delivered = 0;
    int64_t dropped_send = 0;    // sendto failed (buffer full etc.)
    int64_t dropped_decode = 0;  // undecodable / stray datagram
    int64_t dropped_bad_address = 0;
    int64_t control_frames = 0;  // rendezvous traffic (both directions)
  };
  Stats GetStats() const;

 private:
  struct Peer {
    sockaddr_in addr{};
    uint16_t wire_min = kPonyWireVersionMin;
    uint16_t wire_max = kPonyWireVersionMax;
    bool known = false;
  };

  Status BindLocalSockets();
  Status Rendezvous();
  void DirectoryLoop();
  std::vector<ControlEntry> LocalEntries() const;
  void AdoptTable(const ControlFrame& table);
  void SendAck(int fd, const sockaddr_in& to);

  int num_hosts_;
  Options options_;
  std::vector<bool> local_;
  int first_local_ = -1;
  std::vector<int> fds_;
  std::vector<uint16_t> ports_;
  std::vector<Peer> peers_;
  std::vector<Nic*> nics_;
  std::vector<LiveExecutor*> executors_;
  int dir_fd_ = -1;
  sockaddr_in dir_addr_{};
  std::vector<std::unique_ptr<std::atomic<int64_t>>> delivered_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> dropped_send_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> dropped_decode_;
  std::atomic<int64_t> dropped_bad_address_{0};
  std::atomic<int64_t> control_frames_{0};
};

}  // namespace snap

#endif  // SRC_LIVE_UDP_FABRIC_H_
