// UdpFabric: live fabric over real UDP sockets — one socket per host NIC,
// real Pony Express frames on the wire (src/packet/wire.h full-frame
// codec).
//
// Each host binds its own non-blocking datagram socket; Route() encodes
// the packet and sendto()s it from the source host's engine thread, and
// the destination's poll hook recvfrom()s in batches, decodes, and hands
// packets to its NIC. Within one process this exercises the kernel's
// loopback path; the address table is plain (address, port) pairs, so the
// same code spans processes or machines once peers agree on ports.
//
// UDP is allowed to drop, duplicate, and reorder — exactly the lossy
// fabric contract Pony Express is built against, so no reliability shim
// sits between the socket and the transport. A send that fails with
// EAGAIN (full socket buffer) counts as a fabric drop for the same
// reason. Peers in other processes cannot ring a parked executor's
// doorbell; LiveExecutor's bounded max_park covers that gap.
#ifndef SRC_LIVE_UDP_FABRIC_H_
#define SRC_LIVE_UDP_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/live/live_executor.h"
#include "src/net/egress.h"
#include "src/net/nic.h"
#include "src/util/status.h"

namespace snap {

class UdpFabric : public PacketEgress {
 public:
  struct Options {
    // Local address to bind every host socket on.
    std::string address = "127.0.0.1";
    // First port; host h binds base_port + h. 0 lets the kernel pick free
    // ports (single-process runs, no port conflicts across CI jobs).
    uint16_t base_port = 0;
    // Datagrams drained per DrainTo call (bounds time in the poll hook).
    int recv_batch = 64;
    // Socket buffer request (0 keeps the kernel default).
    int socket_buffer_bytes = 1 << 20;
  };

  explicit UdpFabric(int num_hosts);
  UdpFabric(int num_hosts, Options options);
  ~UdpFabric() override;

  // Creates and binds all sockets; must succeed before AddHost/Start.
  Status Init();

  // Setup-thread-only, after Init().
  void AddHost(int host_id, Nic* nic, LiveExecutor* executor);

  // PacketEgress; called on the source host's engine thread.
  void Route(PacketPtr packet, SimTime wire_time) override;

  // Drains up to recv_batch datagrams for `dst_host` into its NIC; called
  // from that host's executor thread. Returns packets delivered.
  int DrainTo(int dst_host);

  int num_hosts() const { return num_hosts_; }
  // Port host `h` is bound to (after Init); useful when base_port was 0.
  uint16_t port(int host) const { return ports_[host]; }

  struct Stats {
    int64_t delivered = 0;
    int64_t dropped_send = 0;    // sendto failed (buffer full etc.)
    int64_t dropped_decode = 0;  // undecodable / stray datagram
    int64_t dropped_bad_address = 0;
  };
  Stats GetStats() const;

 private:
  int num_hosts_;
  Options options_;
  std::vector<int> fds_;
  std::vector<uint16_t> ports_;
  std::vector<Nic*> nics_;
  std::vector<LiveExecutor*> executors_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> delivered_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> dropped_send_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> dropped_decode_;
  std::atomic<int64_t> dropped_bad_address_{0};
};

}  // namespace snap

#endif  // SRC_LIVE_UDP_FABRIC_H_
