#include "src/live/live_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "src/util/logging.h"

namespace snap {

LiveScheduler::LiveScheduler(int64_t epoch_ns, Options options)
    : options_(std::move(options)), epoch_ns_(epoch_ns) {}

LiveScheduler::~LiveScheduler() { Stop(); }

int LiveScheduler::AddExecutor(LiveExecutor* executor) {
  SNAP_CHECK(!started_) << "AddExecutor after Start";
  executors_.push_back(executor);
  return static_cast<int>(executors_.size()) - 1;
}

void LiveScheduler::EnableTracing() {
  SNAP_CHECK(!started_) << "EnableTracing is setup-phase only";
  tracing_ = true;
}

void LiveScheduler::EnableProfileDump(const std::string& path,
                                      int interval_ms) {
  SNAP_CHECK(!started_) << "EnableProfileDump is setup-phase only";
  profile_path_ = path;
  profile_interval_ms_ = interval_ms;
}

int LiveScheduler::InitialWorkerFor(int exec_index) const {
  switch (options_.mode) {
    case SchedulingMode::kDedicatedCores:
      return exec_index % static_cast<int>(workers_.size());
    case SchedulingMode::kSpreadingEngines:
      return exec_index;
    case SchedulingMode::kCompactingEngines:
      return 0;  // everything starts compacted on the primary
  }
  return 0;
}

void LiveScheduler::Start() {
  SNAP_CHECK(!started_) << "scheduler already started";
  const int n = static_cast<int>(executors_.size());
  SNAP_CHECK(n > 0) << "no executors";
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);

  int num_workers = n;
  switch (options_.mode) {
    case SchedulingMode::kDedicatedCores:
      if (options_.dedicated_workers > 0) {
        num_workers = options_.dedicated_workers;
      } else if (!options_.cores.empty()) {
        num_workers = static_cast<int>(options_.cores.size());
      }
      num_workers = std::min(num_workers, n);
      break;
    case SchedulingMode::kSpreadingEngines:
      num_workers = n;
      break;
    case SchedulingMode::kCompactingEngines:
      num_workers = std::max(1, options_.max_workers);
      break;
  }

  // Build every worker before any thread starts: doorbell addresses must
  // be stable for SetWakeTarget and cross-worker handoffs.
  workers_.clear();
  for (int w = 0; w < num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->index = w;
    for (int e = 0; e < n; ++e) {
      worker->passes_by_exec.push_back(
          std::make_unique<std::atomic<int64_t>>(0));
    }
    if (tracing_) {
      worker->tracer = std::make_unique<TraceRecorder>();
    }
    workers_.push_back(std::move(worker));
  }

  owner_.clear();
  target_.assign(n, 0);
  calm_ticks_.assign(n, 0);
  for (int e = 0; e < n; ++e) {
    int w = InitialWorkerFor(e);
    target_[e] = w;
    owner_.push_back(std::make_unique<std::atomic<int>>(w));
    workers_[w]->local.push_back(executors_[e]);
    workers_[w]->local_index.push_back(e);
    executors_[e]->SetWakeTarget(&workers_[w]->doorbell);
    executors_[e]->MarkRunning(true);
  }

  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(w); });
  }
  if (options_.mode == SchedulingMode::kCompactingEngines ||
      (!profile_path_.empty() && profile_interval_ms_ > 0)) {
    control_thread_ = std::thread([this] { ControlLoop(); });
  }
}

void LiveScheduler::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& worker : workers_) {
    worker->doorbell.Ring();
  }
  control_doorbell_.Ring();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  if (control_thread_.joinable()) {
    control_thread_.join();
  }
  for (LiveExecutor* exec : executors_) {
    exec->SetWakeTarget(nullptr);
    exec->MarkRunning(false);
  }
  if (!profile_path_.empty()) {
    std::ofstream out(profile_path_);
    out << ProfileJson() << "\n";
  }
}

void LiveScheduler::DrainMailbox(Worker* w) {
  std::vector<Arrival> incoming;
  std::vector<Move> moves;
  {
    std::lock_guard<std::mutex> lock(w->mu);
    incoming.swap(w->incoming);
    moves.swap(w->moves);
    w->commands_pending.store(false, std::memory_order_release);
  }
  for (const Arrival& a : incoming) {
    w->local.push_back(a.exec);
    w->local_index.push_back(a.exec_index);
    w->migrations_in.fetch_add(1, std::memory_order_relaxed);
    // Arrival publication: the rebalancer sees owner == target and may
    // issue the next move for this executor.
    owner_[a.exec_index]->store(w->index, std::memory_order_release);
  }
  for (const Move& m : moves) {
    // The rebalancer only sends a move to the current owner, and never a
    // second one before the first lands, so the executor must be local.
    size_t i = 0;
    while (i < w->local.size() && w->local_index[i] != m.exec_index) {
      ++i;
    }
    SNAP_CHECK(i < w->local.size()) << "move for non-local executor";
    w->local.erase(w->local.begin() + static_cast<long>(i));
    w->local_index.erase(w->local_index.begin() + static_cast<long>(i));

    Worker* dest = workers_[m.to_worker].get();
    // Future Wake()s ring the destination; a wake already bound for this
    // worker is covered by its bounded park.
    m.exec->SetWakeTarget(&dest->doorbell);
    migrations_.fetch_add(1, std::memory_order_relaxed);
    if (w->tracer != nullptr) {
      w->tracer->Instant(
          MonotonicTimeNs() - epoch_ns_, TraceRecorder::kSchedTrack,
          "engine_migrate", "live_sched",
          "{\"exec\":" + std::to_string(m.exec_index) +
              ",\"from\":" + std::to_string(w->index) +
              ",\"to\":" + std::to_string(m.to_worker) + "}");
    }
    {
      std::lock_guard<std::mutex> lock(dest->mu);
      dest->incoming.push_back(Arrival{m.exec, m.exec_index});
      dest->commands_pending.store(true, std::memory_order_release);
    }
    dest->doorbell.Ring();
  }
}

void LiveScheduler::WorkerLoop(Worker* w) {
  if (options_.pin_threads) {
    int core = options_.pin_base_core + w->index;
    if (!options_.cores.empty()) {
      core = options_.cores[static_cast<size_t>(w->index) %
                            options_.cores.size()];
    }
    PinThreadToCore(core);
  }
  const int64_t spin_ns =
      options_.mode == SchedulingMode::kSpreadingEngines
          ? 0
          : options_.spin_before_park_ns;
  int64_t last_work = MonotonicTimeNs() - epoch_ns_;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Consume before draining/polling: anything rung after this point
    // triggers another full pass instead of being absorbed by this one.
    w->doorbell.Consume();
    if (w->commands_pending.load(std::memory_order_acquire)) {
      DrainMailbox(w);
    }
    w->passes.fetch_add(1, std::memory_order_relaxed);
    const int64_t t0 = MonotonicTimeNs() - epoch_ns_;
    int work = 0;
    for (size_t i = 0; i < w->local.size(); ++i) {
      work += w->local[i]->RunPass();
      w->passes_by_exec[static_cast<size_t>(w->local_index[i])]->fetch_add(
          1, std::memory_order_relaxed);
    }
    const int64_t t1 = MonotonicTimeNs() - epoch_ns_;
    if (work > 0) {
      w->work_items.fetch_add(work, std::memory_order_relaxed);
      w->busy_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
      last_work = t1;
      continue;
    }
    if (t1 - last_work < spin_ns) {
      continue;  // dedicated/compacting busy-poll window
    }
    int64_t bound = options_.max_park_ns;
    for (LiveExecutor* exec : w->local) {
      int64_t delay = exec->NextTimerDelayNs();
      if (delay >= 0) {
        bound = std::min(bound, delay);
      }
    }
    if (bound <= 0 || w->doorbell.pending() ||
        stop_.load(std::memory_order_relaxed)) {
      continue;
    }
    w->parks.fetch_add(1, std::memory_order_relaxed);
    if (w->tracer != nullptr) {
      w->tracer->Instant(t1, TraceRecorder::kSchedTrack, "exec_park",
                         "live_sched", TraceArgInt("bound_ns", bound));
    }
    const int64_t p0 = MonotonicTimeNs() - epoch_ns_;
    bool rung = w->doorbell.WaitFor(bound);
    const int64_t p1 = MonotonicTimeNs() - epoch_ns_;
    w->park_ns.fetch_add(p1 - p0, std::memory_order_relaxed);
    if (w->tracer != nullptr) {
      w->tracer->Instant(p1, TraceRecorder::kSchedTrack, "exec_wake",
                         "live_sched", TraceArgInt("rung", rung ? 1 : 0));
    }
  }
}

void LiveScheduler::RequestMove(int exec_index, int from_worker,
                                int to_worker, Decision::Kind kind,
                                int64_t observed_delay_ns) {
  target_[exec_index] = to_worker;
  decisions_.push_back(Decision{kind, exec_index, from_worker, to_worker,
                                observed_delay_ns,
                                MonotonicTimeNs() - epoch_ns_});
  Worker* from = workers_[from_worker].get();
  {
    std::lock_guard<std::mutex> lock(from->mu);
    from->moves.push_back(
        Move{executors_[exec_index], exec_index, to_worker});
    from->commands_pending.store(true, std::memory_order_release);
  }
  from->doorbell.Ring();
}

void LiveScheduler::ControlLoop() {
  const int n = static_cast<int>(executors_.size());
  const int num_workers = static_cast<int>(workers_.size());
  const bool rebalance =
      options_.mode == SchedulingMode::kCompactingEngines && num_workers > 1;
  int64_t tick_ns = options_.rebalance_interval_ns;
  if (!profile_path_.empty() && profile_interval_ms_ > 0) {
    tick_ns = std::min(tick_ns, int64_t{profile_interval_ms_} * 1'000'000);
  }
  int64_t next_profile =
      MonotonicTimeNs() + int64_t{profile_interval_ms_} * 1'000'000;
  while (!stop_.load(std::memory_order_relaxed)) {
    control_doorbell_.Consume();
    control_doorbell_.WaitFor(tick_ns);
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    if (rebalance) {
      // Per-target executor counts: the rebalancer's own view of the
      // placement (in-flight moves count at their destination).
      std::vector<int> load(static_cast<size_t>(num_workers), 0);
      for (int e = 0; e < n; ++e) {
        ++load[static_cast<size_t>(target_[e])];
      }
      for (int e = 0; e < n; ++e) {
        const int own = owner_[static_cast<size_t>(e)]->load(
            std::memory_order_acquire);
        if (own != target_[e]) {
          continue;  // move in flight; let it land first
        }
        const int64_t delay = executors_[static_cast<size_t>(e)]
                                  ->queue_delay_ns();
        if (delay > options_.compacting_slo_ns) {
          calm_ticks_[static_cast<size_t>(e)] = 0;
          if (load[static_cast<size_t>(own)] < 2) {
            continue;  // already alone on its worker: nothing to shed
          }
          // Scale out: move the overloaded executor to the emptiest
          // other worker.
          int to = -1;
          for (int cand = 0; cand < num_workers; ++cand) {
            if (cand == own) {
              continue;
            }
            if (to < 0 ||
                load[static_cast<size_t>(cand)] <
                    load[static_cast<size_t>(to)]) {
              to = cand;
            }
          }
          if (to >= 0 && load[static_cast<size_t>(to)] <
                             load[static_cast<size_t>(own)]) {
            --load[static_cast<size_t>(own)];
            ++load[static_cast<size_t>(to)];
            RequestMove(e, own, to, Decision::kScaleOut, delay);
          }
        } else {
          if (own == 0) {
            continue;  // already on the primary
          }
          if (++calm_ticks_[static_cast<size_t>(e)] >=
              options_.compact_after_samples) {
            calm_ticks_[static_cast<size_t>(e)] = 0;
            --load[static_cast<size_t>(own)];
            ++load[0];
            RequestMove(e, own, 0, Decision::kCompact, delay);
          }
        }
      }
    }
    if (!profile_path_.empty() && profile_interval_ms_ > 0 &&
        MonotonicTimeNs() >= next_profile) {
      next_profile = MonotonicTimeNs() +
                     int64_t{profile_interval_ms_} * 1'000'000;
      const std::string tmp = profile_path_ + ".tmp";
      {
        std::ofstream out(tmp);
        out << ProfileJson() << "\n";
      }
      std::rename(tmp.c_str(), profile_path_.c_str());
    }
  }
}

std::string LiveScheduler::ProfileJson() const {
  const int n = static_cast<int>(executors_.size());
  const int num_workers = static_cast<int>(workers_.size());
  std::string json = "{";
  json += "\"enabled\":true";
  json += ",\"mode\":\"";
  json += SchedulingModeName(options_.mode);
  json += "\"";
  json += ",\"num_workers\":" + std::to_string(num_workers);
  json += ",\"num_executors\":" + std::to_string(n);
  json += ",\"slo_ns\":" + std::to_string(options_.compacting_slo_ns);
  json += ",\"migrations\":" +
          std::to_string(migrations_.load(std::memory_order_relaxed));
  json += ",\"workers\":[";
  for (int w = 0; w < num_workers; ++w) {
    const Worker& worker = *workers_[static_cast<size_t>(w)];
    if (w > 0) {
      json += ",";
    }
    json += "{\"busy_ns\":" +
            std::to_string(worker.busy_ns.load(std::memory_order_relaxed));
    json += ",\"park_ns\":" +
            std::to_string(worker.park_ns.load(std::memory_order_relaxed));
    json += ",\"passes\":" +
            std::to_string(worker.passes.load(std::memory_order_relaxed));
    json += ",\"parks\":" +
            std::to_string(worker.parks.load(std::memory_order_relaxed));
    json += ",\"work_items\":" +
            std::to_string(
                worker.work_items.load(std::memory_order_relaxed));
    json += ",\"executors\":[";
    bool first = true;
    for (int e = 0; e < n; ++e) {
      if (owner_[static_cast<size_t>(e)]->load(std::memory_order_relaxed) !=
          w) {
        continue;
      }
      if (!first) {
        json += ",";
      }
      first = false;
      json += std::to_string(e);
    }
    json += "]}";
  }
  json += "],\"executors\":[";
  for (int e = 0; e < n; ++e) {
    const LiveExecutor* exec = executors_[static_cast<size_t>(e)];
    if (e > 0) {
      json += ",";
    }
    json += "{\"worker\":" +
            std::to_string(owner_[static_cast<size_t>(e)]->load(
                std::memory_order_relaxed));
    json += ",\"busy_ns\":" + std::to_string(exec->busy_ns());
    json += ",\"queue_delay_ns\":" + std::to_string(exec->queue_delay_ns());
    json += ",\"wakes\":" + std::to_string(exec->GetStats().wakes);
    json += "}";
  }
  json += "]}";
  return json;
}

LiveScheduler::WorkerStats LiveScheduler::GetWorkerStats(int worker) const {
  const Worker& w = *workers_[static_cast<size_t>(worker)];
  WorkerStats s;
  s.passes = w.passes.load(std::memory_order_relaxed);
  s.work_items = w.work_items.load(std::memory_order_relaxed);
  s.busy_ns = w.busy_ns.load(std::memory_order_relaxed);
  s.park_ns = w.park_ns.load(std::memory_order_relaxed);
  s.parks = w.parks.load(std::memory_order_relaxed);
  s.migrations_in = w.migrations_in.load(std::memory_order_relaxed);
  for (const auto& p : w.passes_by_exec) {
    s.passes_by_exec.push_back(p->load(std::memory_order_relaxed));
  }
  return s;
}

std::vector<const TraceRecorder*> LiveScheduler::WorkerTracers() const {
  std::vector<const TraceRecorder*> tracers;
  for (const auto& worker : workers_) {
    if (worker->tracer != nullptr) {
      tracers.push_back(worker->tracer.get());
    }
  }
  return tracers;
}

}  // namespace snap
