#include "src/live/live_apps.h"

#include <cstring>
#include <utility>

#include "src/kernel/kstack.h"
#include "src/live/live_executor.h"
#include "src/util/logging.h"

namespace snap {

namespace {

// App-side CPU costs are modeled quantities; in live mode real cycles are
// spent, so the modeled charge is accumulated and discarded.
CpuCostSink* Sink() {
  thread_local CpuCostSink sink;
  return &sink;
}

bool Expired(int64_t deadline_ns) { return MonotonicTimeNs() > deadline_ns; }

// Longest single sleep in blocking mode: bounds staleness against wakeup
// paths that cannot ring the bell (engine-side holds, remote peers).
constexpr int64_t kBlockSliceNs = 1'000'000;

// Blocking-notify idle step: called when a full poll pass made no
// progress. The Consume at the caller's loop top latched any ring since
// the previous pass; if the bell is still quiet, sleep until rung (the
// engine rings on every completion/message delivery) or the slice ends.
void IdleWait(Doorbell* doorbell, LiveAppResult* result) {
  if (doorbell == nullptr) {
    return;  // spin-poll mode
  }
  if (doorbell->pending()) {
    return;  // rung during the pass; poll again immediately
  }
  result->waits++;
  doorbell->WaitFor(kBlockSliceNs);
}

}  // namespace

LiveAppResult RunLiveEchoServer(PonyClient* client, uint64_t reply_stream,
                                PonyAddress peer, int64_t expected,
                                int64_t deadline_ns, Doorbell* doorbell) {
  LiveAppResult result;
  int64_t echoes_sent = 0;
  while (result.messages_received < expected) {
    if (Expired(deadline_ns)) {
      result.timed_out = true;
      return result;
    }
    if (doorbell != nullptr) {
      doorbell->Consume();
    }
    result.poll_passes++;
    bool progress = false;
    if (auto msg = client->PollMessage(Sink())) {
      progress = true;
      result.messages_received++;
      result.bytes_received += msg->length;
      // Echo the payload back verbatim; retry on ring backpressure.
      while (client->SendMessage(peer, reply_stream, msg->length, msg->data,
                                 Sink()) == 0) {
        result.submit_backpressure++;
        if (Expired(deadline_ns)) {
          result.timed_out = true;
          return result;
        }
        // Let send completions drain so the command ring frees up.
        while (auto done = client->PollCompletion(Sink())) {
          result.send_completions++;
          if (done->status != PonyOpStatus::kOk) {
            result.send_errors++;
          }
        }
      }
      echoes_sent++;
    }
    while (auto done = client->PollCompletion(Sink())) {
      progress = true;
      result.send_completions++;
      if (done->status != PonyOpStatus::kOk) {
        result.send_errors++;
      }
    }
    if (!progress) {
      IdleWait(doorbell, &result);
    }
  }
  // Drain remaining send completions so the transport's work is accounted.
  while (result.send_completions < echoes_sent) {
    if (Expired(deadline_ns)) {
      result.timed_out = true;
      break;
    }
    if (doorbell != nullptr) {
      doorbell->Consume();
    }
    result.poll_passes++;
    bool progress = false;
    while (auto done = client->PollCompletion(Sink())) {
      progress = true;
      result.send_completions++;
      if (done->status != PonyOpStatus::kOk) {
        result.send_errors++;
      }
    }
    if (!progress) {
      IdleWait(doorbell, &result);
    }
  }
  return result;
}

LiveAppResult RunLiveRpcClient(PonyClient* client, uint64_t stream,
                               PonyAddress peer, int iterations,
                               int64_t message_bytes, int outstanding,
                               int64_t deadline_ns, Doorbell* doorbell) {
  SNAP_CHECK_GE(message_bytes, 16) << "payload carries seq + timestamp";
  SNAP_CHECK_GE(outstanding, 1);
  LiveAppResult result;
  result.rtt_ns.reserve(static_cast<size_t>(iterations));
  int64_t sent = 0;
  int64_t in_flight = 0;
  std::vector<uint8_t> payload(static_cast<size_t>(message_bytes), 0xa5);
  while (result.rpcs_completed < iterations) {
    if (Expired(deadline_ns)) {
      result.timed_out = true;
      break;
    }
    if (doorbell != nullptr) {
      doorbell->Consume();
    }
    result.poll_passes++;
    bool progress = false;
    // Top up the closed-loop window.
    while (in_flight < outstanding && sent < iterations) {
      uint64_t seq = static_cast<uint64_t>(sent);
      int64_t now = MonotonicTimeNs();
      std::memcpy(payload.data(), &seq, sizeof(seq));
      std::memcpy(payload.data() + 8, &now, sizeof(now));
      if (client->SendMessage(peer, stream, message_bytes, payload, Sink()) ==
          0) {
        result.submit_backpressure++;
        break;  // ring full; poll before retrying
      }
      sent++;
      in_flight++;
      progress = true;
    }
    while (auto done = client->PollCompletion(Sink())) {
      progress = true;
      result.send_completions++;
      if (done->status != PonyOpStatus::kOk) {
        result.send_errors++;
      }
    }
    while (auto msg = client->PollMessage(Sink())) {
      progress = true;
      result.messages_received++;
      result.bytes_received += msg->length;
      in_flight--;
      result.rpcs_completed++;
      if (msg->data.size() >= 16) {
        int64_t sent_at = 0;
        std::memcpy(&sent_at, msg->data.data() + 8, sizeof(sent_at));
        result.rtt_ns.push_back(MonotonicTimeNs() - sent_at);
      }
    }
    if (!progress) {
      IdleWait(doorbell, &result);
    }
  }
  return result;
}

}  // namespace snap
