#include "src/live/loopback_fabric.h"

#include "src/util/logging.h"

namespace snap {

LoopbackFabric::LoopbackFabric(int num_hosts)
    : LoopbackFabric(num_hosts, Options()) {}

LoopbackFabric::LoopbackFabric(int num_hosts, Options options)
    : num_hosts_(num_hosts), options_(options) {
  SNAP_CHECK_GT(num_hosts, 0);
  rings_.reserve(static_cast<size_t>(num_hosts) * num_hosts);
  for (int i = 0; i < num_hosts * num_hosts; ++i) {
    rings_.push_back(std::make_unique<Ring>(options_.ring_entries));
  }
  nics_.resize(num_hosts, nullptr);
  executors_.resize(num_hosts, nullptr);
  for (int i = 0; i < num_hosts; ++i) {
    delivered_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    dropped_full_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

LoopbackFabric::~LoopbackFabric() {
  // Reclaim packets still in flight (executors must already be stopped).
  for (auto& ring : rings_) {
    while (auto p = ring->TryPop()) {
      delete *p;
    }
  }
}

void LoopbackFabric::AddHost(int host_id, Nic* nic, LiveExecutor* executor) {
  SNAP_CHECK_GE(host_id, 0);
  SNAP_CHECK_LT(host_id, num_hosts_);
  SNAP_CHECK(nics_[host_id] == nullptr) << "host registered twice";
  nics_[host_id] = nic;
  executors_[host_id] = executor;
}

void LoopbackFabric::Route(PacketPtr packet, SimTime wire_time) {
  (void)wire_time;  // the wire has no modeled delay in-process
  int dst = packet->dst_host;
  if (dst < 0 || dst >= num_hosts_ || nics_[dst] == nullptr) {
    dropped_bad_address_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  int src = packet->src_host;
  SNAP_CHECK_GE(src, 0);
  SNAP_CHECK_LT(src, num_hosts_);
  if (!ring(src, dst).TryPush(packet.get())) {
    dropped_full_[src]->fetch_add(1, std::memory_order_relaxed);
    return;  // lossy fabric: the transport retransmits
  }
  packet.release();  // the ring owns it now
  executors_[dst]->Wake();
}

int LoopbackFabric::DrainTo(int dst_host) {
  int delivered = 0;
  Nic* nic = nics_[dst_host];
  for (int src = 0; src < num_hosts_; ++src) {
    Ring& r = ring(src, dst_host);
    while (auto p = r.TryPop()) {
      nic->DeliverFromWire(PacketPtr(*p));
      ++delivered;
    }
  }
  if (delivered > 0) {
    delivered_[dst_host]->fetch_add(delivered, std::memory_order_relaxed);
  }
  return delivered;
}

LoopbackFabric::Stats LoopbackFabric::GetStats() const {
  Stats s;
  for (int i = 0; i < num_hosts_; ++i) {
    s.delivered += delivered_[i]->load(std::memory_order_relaxed);
    s.dropped_ring_full += dropped_full_[i]->load(std::memory_order_relaxed);
  }
  s.dropped_bad_address =
      dropped_bad_address_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace snap
