// LiveExecutor: the live implementation of the Substrate interface — the
// per-host bundle of engines + timers + poll hook that some OS thread
// runs for real.
//
// Two ways to run one:
//  - Standalone (Start()/Stop()): the executor owns a thread that loops
//    RunPass(), spin-polls through an idle window, and parks on its
//    doorbell — the paper's dedicating-cores mode (Section 2.4) made
//    literal for a single host.
//  - Under a LiveScheduler (src/live/live_scheduler.h): scheduler worker
//    threads call RunPass() directly and the executor's wake target is
//    redirected to the worker's doorbell, so one worker can host many
//    executors (spreading/compacting modes) and executors can migrate
//    between workers at pass boundaries.
//
// The clock is CLOCK_MONOTONIC nanoseconds since a shared runtime epoch,
// so SimTime values stay small, comparable across the executors of one
// LiveRuntime, and directly usable as trace timestamps.
//
// Threading contract:
//  - Engines, the NIC, and all timers belong to whichever thread runs
//    RunPass(); exactly one thread may do so at a time, and handoffs
//    between threads must happen-before (the scheduler's migration lists
//    provide this). AddEngine / SetPollHook are setup-thread-only.
//    After start, ScheduleAt may only be called from the running thread
//    (engines re-arming their own wake timers).
//  - Wake() is callable from any thread — it is the doorbell the SPSC
//    rings ring: application submit, loopback push, UDP peer.
//  - now() (Substrate), busy_ns(), queue_delay_ns() are relaxed atomic
//    reads, callable from any thread (the compacting rebalancer samples
//    the last two as its load signal).
//
// Timers reuse the simulator's EventQueue/EventHandle machinery
// unchanged. One live-only difference: a deadline already in the past is
// clamped to "now" instead of CHECK-failing — wall clocks advance between
// computing a deadline and scheduling it, so late deadlines are normal
// here and simply fire on the next loop iteration.
#ifndef SRC_LIVE_LIVE_EXECUTOR_H_
#define SRC_LIVE_LIVE_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/substrate.h"
#include "src/snap/engine.h"
#include "src/util/doorbell.h"
#include "src/util/time_types.h"

namespace snap {

// Nanoseconds on the monotonic clock (the live time base).
int64_t MonotonicTimeNs();

// Pins the calling thread to `core` (best-effort; Linux only).
void PinThreadToCore(int core);

class LiveExecutor final : public Substrate {
 public:
  struct Options {
    std::string name = "live";
    // Core to pin the standalone thread to; -1 leaves placement to the OS.
    int cpu_affinity = -1;
    // Per-engine budget handed to Engine::Poll each pass.
    SimDuration poll_budget = 100 * kUsec;
    // Busy-poll this long after the last productive pass before parking.
    SimDuration spin_before_park = 50 * kUsec;
    // Longest single park: bounds staleness for event sources that cannot
    // ring Wake() (a UDP peer in another process).
    SimDuration max_park = 100 * kUsec;
  };

  // `epoch_ns` is the monotonic-clock origin of this executor's timeline;
  // every executor of a runtime shares one epoch so their clocks agree.
  LiveExecutor(uint64_t seed, int64_t epoch_ns, Options options);
  ~LiveExecutor() override;

  // --- Setup (before Start) ---
  void AddEngine(Engine* engine);
  // Runs once per loop iteration, before engine polls; returns the number
  // of work items it produced (fabric drains deliver inbound packets
  // here). At most one hook.
  void SetPollHook(std::function<int()> hook);

  // --- Substrate ---
  EventHandle ScheduleAt(SimTime when, EventQueue::Callback cb) override;

  // --- Standalone run control ---
  void Start();
  // Signals the thread and joins it. Idempotent.
  void Stop();
  // True while a thread (own or a scheduler worker) is driving RunPass().
  bool running() const {
    return thread_.joinable() ||
           externally_running_.load(std::memory_order_acquire);
  }

  // --- Scheduler interface (src/live/live_scheduler.h) ---
  // One full pass: advance the clock, run due timers, the poll hook, each
  // engine's mailbox + Poll, and the self-paced telemetry sample. Returns
  // the number of work items. Caller must be the (single) owning thread.
  int RunPass();
  // Nanoseconds until the next pending timer, from a FRESH clock read
  // (never the stale pass-top time — a park bound computed from stale
  // "now" oversleeps deadlines by up to one pass). -1 when no timer is
  // pending. Owning thread only (may cascade the timer wheel).
  int64_t NextTimerDelayNs();
  // The doorbell Wake() rings by default (standalone mode parks on it).
  Doorbell* doorbell() { return &doorbell_; }
  // Redirects Wake() to `target` (a scheduler worker's doorbell); nullptr
  // restores the executor's own bell. Any thread; takes effect on the
  // next Wake(). A wake already in flight to the old target is covered by
  // that worker's bounded park.
  void SetWakeTarget(Doorbell* target);
  // Scheduler bookkeeping so the setup/running-phase asserts (CreateClient
  // and friends) hold when the executor has no thread of its own.
  void MarkRunning(bool running);

  // Thread-safe doorbell: wakes whichever thread currently runs this
  // executor. Cheap when it is already running (two uncontended atomics).
  void Wake();

  const std::string& name() const { return options_.name; }
  const Options& options() const { return options_; }

  // --- Load signals (any thread, relaxed) ---
  // Wall-clock ns spent in productive passes (work > 0) since start. The
  // compacting scheduler's busy signal, in the mold of the PR 8 shard
  // profiler's busy/wait split.
  int64_t busy_ns() const {
    return busy_ns_.load(std::memory_order_relaxed);
  }
  // Max engine queueing delay observed by the latest pass — the paper's
  // Shenango-style compacting-SLO input.
  int64_t queue_delay_ns() const {
    return queue_delay_ns_.load(std::memory_order_relaxed);
  }

  struct Stats {
    int64_t loop_iterations = 0;
    int64_t work_items = 0;   // engine + hook + timer work
    int64_t timer_fires = 0;
    int64_t parks = 0;        // standalone mode: times the thread blocked
    int64_t wakes = 0;        // cross-thread Wake() calls
    int64_t busy_ns = 0;      // wall clock inside productive passes
  };
  // Loop counters are written by the running thread only; read them after
  // Stop() for exact values (mid-run reads are tearing-free but stale).
  Stats GetStats() const;

 private:
  void Run();
  int RunDueTimers(SimTime now);

  Options options_;
  int64_t epoch_ns_;
  EventQueue events_;
  std::vector<Engine*> engines_;
  std::function<int()> poll_hook_;
  std::thread thread_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> externally_running_{false};
  Doorbell doorbell_;
  std::atomic<Doorbell*> wake_target_{&doorbell_};

  std::atomic<int64_t> loop_iterations_{0};
  std::atomic<int64_t> work_items_{0};
  std::atomic<int64_t> timer_fires_{0};
  std::atomic<int64_t> parks_{0};
  std::atomic<int64_t> wakes_{0};
  std::atomic<int64_t> busy_ns_{0};
  std::atomic<int64_t> queue_delay_ns_{0};
};

}  // namespace snap

#endif  // SRC_LIVE_LIVE_EXECUTOR_H_
