// LiveExecutor: the live implementation of the Substrate interface — one
// OS thread that runs a set of engines for real.
//
// This is the "engine scheduling runtime" of the paper's dedicating-cores
// mode (Section 2.4) made literal: the thread spin-polls its engines,
// optionally pinned to a core, and parks on a condition variable after a
// configurable idle window so an idle stack costs ~0 CPU. The clock is
// CLOCK_MONOTONIC nanoseconds since a shared runtime epoch, so SimTime
// values stay small, comparable across the executors of one LiveRuntime,
// and directly usable as trace timestamps.
//
// Threading contract:
//  - Engines, the NIC, and all timers belong to the executor thread.
//    AddEngine / ScheduleAt / SetPollHook are setup-thread-only before
//    Start(); after Start(), ScheduleAt may only be called from the
//    executor thread (engines re-arming their own wake timers).
//  - Wake() is callable from any thread — it is the doorbell the SPSC
//    rings ring: application submit, loopback push, UDP peer.
//  - now() (Substrate) is a relaxed atomic read, callable from any thread.
//
// Timers reuse the simulator's EventQueue/EventHandle machinery
// unchanged. One live-only difference: a deadline already in the past is
// clamped to "now" instead of CHECK-failing — wall clocks advance between
// computing a deadline and scheduling it, so late deadlines are normal
// here and simply fire on the next loop iteration.
#ifndef SRC_LIVE_LIVE_EXECUTOR_H_
#define SRC_LIVE_LIVE_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/substrate.h"
#include "src/snap/engine.h"
#include "src/util/time_types.h"

namespace snap {

// Nanoseconds on the monotonic clock (the live time base).
int64_t MonotonicTimeNs();

class LiveExecutor final : public Substrate {
 public:
  struct Options {
    std::string name = "live";
    // Core to pin the thread to; -1 leaves placement to the OS.
    int cpu_affinity = -1;
    // Per-engine budget handed to Engine::Poll each pass.
    SimDuration poll_budget = 100 * kUsec;
    // Busy-poll this long after the last productive pass before parking.
    SimDuration spin_before_park = 50 * kUsec;
    // Longest single park: bounds staleness for event sources that cannot
    // ring Wake() (a UDP peer in another process).
    SimDuration max_park = 100 * kUsec;
  };

  // `epoch_ns` is the monotonic-clock origin of this executor's timeline;
  // every executor of a runtime shares one epoch so their clocks agree.
  LiveExecutor(uint64_t seed, int64_t epoch_ns, Options options);
  ~LiveExecutor() override;

  // --- Setup (before Start) ---
  void AddEngine(Engine* engine);
  // Runs on the executor thread once per loop iteration, before engine
  // polls; returns the number of work items it produced (fabric drains
  // deliver inbound packets here). At most one hook.
  void SetPollHook(std::function<int()> hook);

  // --- Substrate ---
  EventHandle ScheduleAt(SimTime when, EventQueue::Callback cb) override;

  // --- Run control ---
  void Start();
  // Signals the thread and joins it. Idempotent.
  void Stop();
  bool running() const { return thread_.joinable(); }

  // Thread-safe doorbell: wakes the thread if parked. Cheap when it is
  // already running (two uncontended atomic ops).
  void Wake();

  const std::string& name() const { return options_.name; }

  struct Stats {
    int64_t loop_iterations = 0;
    int64_t work_items = 0;   // engine + hook + timer work
    int64_t timer_fires = 0;
    int64_t parks = 0;        // times the thread blocked when idle
    int64_t wakes = 0;        // cross-thread Wake() calls
  };
  // Loop counters are written by the executor thread only; read them after
  // Stop() for exact values (mid-run reads are tearing-free but stale).
  Stats GetStats() const;

 private:
  void Run();
  int RunDueTimers(SimTime now);
  void Park(SimTime now);

  Options options_;
  int64_t epoch_ns_;
  EventQueue events_;
  std::vector<Engine*> engines_;
  std::function<int()> poll_hook_;
  std::thread thread_;

  std::atomic<bool> stop_{false};
  // Parking handshake (Dekker-style, seq_cst): the producer stores
  // wake_pending_ then loads parked_; the thread stores parked_ (under
  // the mutex) then loads wake_pending_. One side always observes the
  // other, so no wake is lost without taking the mutex on the fast path.
  std::atomic<bool> wake_pending_{false};
  std::atomic<bool> parked_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;

  std::atomic<int64_t> loop_iterations_{0};
  std::atomic<int64_t> work_items_{0};
  std::atomic<int64_t> timer_fires_{0};
  std::atomic<int64_t> parks_{0};
  std::atomic<int64_t> wakes_{0};
};

}  // namespace snap

#endif  // SRC_LIVE_LIVE_EXECUTOR_H_
