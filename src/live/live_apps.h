// Live application drivers: real threads talking to Pony engines over the
// SPSC command/completion rings — the paper's "applications ... spin-poll
// the completion queue" mode (Section 3.1).
//
// Streams are created in the setup phase (CreateStream mutates engine
// maps, which only the engine thread may touch once running), so each
// driver takes its pre-created stream id. Latency is measured end-to-end
// on the client thread: the send timestamp rides in the message payload
// and comes back in the echo.
#ifndef SRC_LIVE_LIVE_APPS_H_
#define SRC_LIVE_LIVE_APPS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/pony/client.h"
#include "src/pony/pony_types.h"
#include "src/util/doorbell.h"

namespace snap {

struct LiveAppResult {
  int64_t rpcs_completed = 0;       // echoes received (client)
  int64_t messages_received = 0;
  int64_t bytes_received = 0;
  int64_t send_completions = 0;
  int64_t send_errors = 0;          // completions with non-OK status
  int64_t submit_backpressure = 0;  // SendMessage returned 0 (queue full)
  int64_t poll_passes = 0;          // outer poll-loop iterations
  int64_t waits = 0;                // blocking mode: times the thread slept
  bool timed_out = false;
  std::vector<int64_t> rtt_ns;      // per-RPC round-trip (client only)
};

// Echoes `expected` incoming messages back to `peer` on `reply_stream`,
// then drains its own send completions. Sets timed_out and returns early
// if `deadline_ns` (raw MonotonicTimeNs clock) passes.
//
// With `doorbell` non-null (bind it to the client first:
// PonyClient::BindDoorbell), the thread sleeps on the bell whenever a
// full poll pass makes no progress, instead of spin-polling —
// poll_passes stays near the RPC count and waits counts the sleeps.
LiveAppResult RunLiveEchoServer(PonyClient* client, uint64_t reply_stream,
                                PonyAddress peer, int64_t expected,
                                int64_t deadline_ns,
                                Doorbell* doorbell = nullptr);

// Closed-loop RPC client: keeps up to `outstanding` messages of
// `message_bytes` (>= 16; the first 16 bytes carry seq + send timestamp)
// in flight on `stream` until `iterations` echoes return. Same optional
// blocking-notify contract as the server.
LiveAppResult RunLiveRpcClient(PonyClient* client, uint64_t stream,
                               PonyAddress peer, int iterations,
                               int64_t message_bytes, int outstanding,
                               int64_t deadline_ns,
                               Doorbell* doorbell = nullptr);

}  // namespace snap

#endif  // SRC_LIVE_LIVE_APPS_H_
