#include "src/live/live_runtime.h"

#include <algorithm>

#include "src/util/logging.h"

namespace snap {

std::unique_ptr<PonyClient> LiveHost::CreateClient(
    const std::string& app_name) {
  SNAP_CHECK(!executor_->running()) << "CreateClient is setup-phase only";
  // Same global-uniqueness scheme as PonyModule::CreateClient: stream ids
  // derive from client ids and demux at remote engines.
  uint64_t client_id =
      (static_cast<uint64_t>(host_id_ + 1) << 20) | next_client_id_++;
  auto client = std::make_unique<PonyClient>(app_name, client_id,
                                             engine_.get(), app_params_);
  engine_->AttachClient(client.get());
  return client;
}

LiveRuntime::LiveRuntime(const Options& options)
    : options_(options), epoch_ns_(MonotonicTimeNs()) {
  PacketEgress* egress = nullptr;
  if (options_.fabric == FabricKind::kLoopback) {
    SNAP_CHECK(options_.local_hosts.empty())
        << "loopback fabric is single-process; local_hosts needs UDP";
    loopback_ = std::make_unique<LoopbackFabric>(options_.num_hosts,
                                                 options_.loopback);
    egress = loopback_.get();
  } else {
    UdpFabric::Options udp = options_.udp;
    udp.local_hosts = options_.local_hosts;
    udp_ = std::make_unique<UdpFabric>(options_.num_hosts, udp);
    egress = udp_.get();
  }
  auto is_local = [this](int h) {
    if (options_.local_hosts.empty()) {
      return true;
    }
    for (int local : options_.local_hosts) {
      if (local == h) {
        return true;
      }
    }
    return false;
  };
  for (int h = 0; h < options_.num_hosts; ++h) {
    if (!is_local(h)) {
      hosts_.push_back(nullptr);
      continue;
    }
    auto host = std::unique_ptr<LiveHost>(new LiveHost());
    host->host_id_ = h;
    host->app_params_ = options_.app;
    LiveExecutor::Options exec = options_.executor;
    exec.name = "live-h" + std::to_string(h);
    host->executor_ = std::make_unique<LiveExecutor>(
        options_.seed + static_cast<uint64_t>(h), epoch_ns_, exec);
    host->nic_ = std::make_unique<Nic>(host->executor_.get(), egress, h,
                                       options_.nic);
    // Engine id is explicitly host_id + 1 (not a directory counter) so
    // every process of a cross-process run derives the same address for
    // host h without coordination.
    host->engine_ = std::make_unique<PonyEngine>(
        "pony-h" + std::to_string(h), host->executor_.get(),
        host->nic_.get(), h + 1, options_.pony, options_.timely,
        &directory_);
    host->executor_->AddEngine(host->engine_.get());
    hosts_.push_back(std::move(host));
  }
  LiveScheduler::Options sched = options_.scheduler;
  sched.spin_before_park_ns = options_.executor.spin_before_park;
  sched.max_park_ns = options_.executor.max_park;
  if (options_.pin_threads) {
    sched.pin_threads = true;
    sched.pin_base_core = options_.pin_base_core;
  }
  scheduler_ = std::make_unique<LiveScheduler>(epoch_ns_, sched);
  for (auto& host : hosts_) {
    if (host == nullptr) {
      continue;  // remote host: its process schedules it
    }
    sched_hosts_.push_back(host->host_id_);
    scheduler_->AddExecutor(host->executor_.get());
  }
}

LiveRuntime::~LiveRuntime() { Stop(); }

Status LiveRuntime::Init() {
  if (udp_ != nullptr) {
    Status bound = udp_->Init();
    if (!bound.ok()) {
      return bound;
    }
  }
  for (auto& host : hosts_) {
    if (host == nullptr) {
      continue;
    }
    int h = host->host_id_;
    Nic* nic = host->nic_.get();
    LiveExecutor* exec = host->executor_.get();
    if (loopback_ != nullptr) {
      loopback_->AddHost(h, nic, exec);
      LoopbackFabric* fabric = loopback_.get();
      exec->SetPollHook([fabric, h] { return fabric->DrainTo(h); });
    } else {
      udp_->AddHost(h, nic, exec);
      UdpFabric* fabric = udp_.get();
      exec->SetPollHook([fabric, h] { return fabric->DrainTo(h); });
    }
  }
  // Remote hosts resolve through the directory like local ones: register
  // their rendezvous-advertised wire ranges under the deterministic
  // engine id (host + 1). engine == nullptr marks them reachable only
  // over the fabric — exactly what flow-version negotiation needs.
  for (int h = 0; h < num_hosts(); ++h) {
    if (hosts_[h] != nullptr || udp_ == nullptr) {
      continue;
    }
    PonyDirectory::Entry entry;
    entry.wire_min = udp_->peer_wire_min(h);
    entry.wire_max = udp_->peer_wire_max(h);
    entry.engine = nullptr;
    directory_.Register(PonyAddress{h, static_cast<uint32_t>(h + 1)}, entry);
  }
  return OkStatus();
}

void LiveRuntime::EnableQos(const qos::TenantRegistry* tenants) {
  SNAP_CHECK(!started_) << "EnableQos is setup-phase only";
  for (auto& host : hosts_) {
    if (host == nullptr) {
      continue;
    }
    host->engine_->EnableQos(tenants);
    host->nic_->EnableQosTx(tenants);
  }
}

void LiveRuntime::EnableSeriesSampling(SimDuration bucket_width,
                                       int max_buckets) {
  SNAP_CHECK(!started_) << "EnableSeriesSampling is setup-phase only";
  for (auto& host : hosts_) {
    if (host == nullptr) {
      continue;
    }
    host->executor_->telemetry().EnableSeriesSampling(bucket_width,
                                                      max_buckets);
  }
}

void LiveRuntime::EnableTracing() {
  SNAP_CHECK(!started_) << "EnableTracing is setup-phase only";
  for (auto& host : hosts_) {
    if (host == nullptr) {
      continue;
    }
    host->tracer_ = std::make_unique<TraceRecorder>();
    host->executor_->set_tracer(host->tracer_.get());
  }
  scheduler_->EnableTracing();
}

void LiveRuntime::Start() {
  SNAP_CHECK(!started_) << "runtime already started";
  started_ = true;
  scheduler_->Start();
}

void LiveRuntime::Stop() {
  scheduler_->Stop();
  if (!started_ || stopped_) {
    return;  // publish once, on the started -> stopped transition; the
             // QoS registry may not outlive the first Stop()
  }
  stopped_ = true;
  // Threads are joined: publish each host's final engine/executor stats
  // into its registry (same shape sim scenarios export), so MergeTelemetry
  // sees the run.
  for (auto& host : hosts_) {
    if (host == nullptr) {
      continue;
    }
    Telemetry& t = host->executor_->telemetry();
    const std::string base = "live/h" + std::to_string(host->host_id_);
    const PonyEngine::Stats& es = host->engine_->stats();
    t.SetCounter(base + "/engine_tx_packets", es.tx_packets);
    t.SetCounter(base + "/engine_rx_packets", es.rx_packets);
    t.SetCounter(base + "/messages_delivered", es.messages_delivered);
    t.SetCounter(base + "/goodput_bytes", es.message_bytes_delivered);
    t.SetCounter(base + "/completions", es.completions);
    t.SetCounter(base + "/op_errors", es.op_errors);
    t.SetCounter(base + "/crc_drops", es.crc_drops);
    LiveExecutor::Stats xs = host->executor_->GetStats();
    t.SetCounter(base + "/loop_iterations", xs.loop_iterations);
    t.SetCounter(base + "/work_items", xs.work_items);
    t.SetCounter(base + "/timer_fires", xs.timer_fires);
    t.SetCounter(base + "/parks", xs.parks);
    t.SetCounter(base + "/wakes", xs.wakes);
    t.SetCounter(base + "/busy_ns", xs.busy_ns);
    host->engine_->ExportQosStats(&t, base + "/qos");
  }
  // Scheduler counters land on the first local host's registry
  // (MergeTelemetry folds every registry, so the merged view carries
  // them once).
  LiveHost* first_local = nullptr;
  for (auto& host : hosts_) {
    if (host != nullptr) {
      first_local = host.get();
      break;
    }
  }
  Telemetry& t0 = first_local->executor_->telemetry();
  t0.SetCounter("live/sched/workers", scheduler_->num_workers());
  t0.SetCounter("live/sched/migrations", scheduler_->migrations());
  for (int w = 0; w < scheduler_->num_workers(); ++w) {
    LiveScheduler::WorkerStats ws = scheduler_->GetWorkerStats(w);
    const std::string base = "live/sched/w" + std::to_string(w);
    t0.SetCounter(base + "/passes", ws.passes);
    t0.SetCounter(base + "/work_items", ws.work_items);
    t0.SetCounter(base + "/busy_ns", ws.busy_ns);
    t0.SetCounter(base + "/park_ns", ws.park_ns);
    t0.SetCounter(base + "/parks", ws.parks);
    t0.SetCounter(base + "/migrations_in", ws.migrations_in);
    for (size_t e = 0; e < ws.passes_by_exec.size(); ++e) {
      if (ws.passes_by_exec[e] > 0) {
        t0.SetCounter(
            base + "/passes_h" + std::to_string(sched_hosts_[e]),
            ws.passes_by_exec[e]);
      }
    }
  }
}

void LiveRuntime::MergeTelemetry(Telemetry* out) const {
  for (const auto& host : hosts_) {
    if (host == nullptr) {
      continue;
    }
    out->MergeFrom(host->executor_->telemetry());
  }
}

std::unique_ptr<TraceRecorder> LiveRuntime::MergedTrace() const {
  auto merged = std::make_unique<TraceRecorder>();
  struct Ref {
    SimTime ts;
    int host;
    size_t index;
  };
  // Sources: per-host tracers at their host index, then scheduler worker
  // tracers on pseudo-host tracks past the real hosts (worker w at index
  // num_hosts + w), so park/wake/migrate instants stay single-writer and
  // per-track ordered in the merge.
  std::vector<const TraceRecorder*> sources;
  for (int h = 0; h < num_hosts(); ++h) {
    sources.push_back(hosts_[h] == nullptr ? nullptr
                                           : hosts_[h]->tracer_.get());
  }
  for (const TraceRecorder* tracer : scheduler_->WorkerTracers()) {
    sources.push_back(tracer);
  }
  std::vector<Ref> refs;
  for (int s = 0; s < static_cast<int>(sources.size()); ++s) {
    if (sources[s] == nullptr) {
      continue;
    }
    const auto& events = sources[s]->events();
    for (size_t i = 0; i < events.size(); ++i) {
      refs.push_back(Ref{events[i].ts, s, i});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.host != b.host) return a.host < b.host;
    return a.index < b.index;
  });
  for (const Ref& r : refs) {
    TraceEvent event = sources[r.host]->events()[r.index];
    event.tid += r.host * kHostTrackStride;
    merged->AppendRaw(std::move(event));
  }
  return merged;
}

LiveRuntime::FabricStats LiveRuntime::GetFabricStats() const {
  FabricStats s;
  if (loopback_ != nullptr) {
    LoopbackFabric::Stats f = loopback_->GetStats();
    s.delivered = f.delivered;
    s.dropped = f.dropped_ring_full + f.dropped_bad_address;
  } else if (udp_ != nullptr) {
    UdpFabric::Stats f = udp_->GetStats();
    s.delivered = f.delivered;
    s.dropped = f.dropped_send + f.dropped_decode + f.dropped_bad_address;
  }
  return s;
}

}  // namespace snap
