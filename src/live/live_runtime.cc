#include "src/live/live_runtime.h"

#include <algorithm>

#include "src/util/logging.h"

namespace snap {

std::unique_ptr<PonyClient> LiveHost::CreateClient(
    const std::string& app_name) {
  SNAP_CHECK(!executor_->running()) << "CreateClient is setup-phase only";
  // Same global-uniqueness scheme as PonyModule::CreateClient: stream ids
  // derive from client ids and demux at remote engines.
  uint64_t client_id =
      (static_cast<uint64_t>(host_id_ + 1) << 20) | next_client_id_++;
  auto client = std::make_unique<PonyClient>(app_name, client_id,
                                             engine_.get(), app_params_);
  engine_->AttachClient(client.get());
  return client;
}

LiveRuntime::LiveRuntime(const Options& options)
    : options_(options), epoch_ns_(MonotonicTimeNs()) {
  PacketEgress* egress = nullptr;
  if (options_.fabric == FabricKind::kLoopback) {
    loopback_ = std::make_unique<LoopbackFabric>(options_.num_hosts,
                                                 options_.loopback);
    egress = loopback_.get();
  } else {
    udp_ = std::make_unique<UdpFabric>(options_.num_hosts, options_.udp);
    egress = udp_.get();
  }
  for (int h = 0; h < options_.num_hosts; ++h) {
    auto host = std::unique_ptr<LiveHost>(new LiveHost());
    host->host_id_ = h;
    host->app_params_ = options_.app;
    LiveExecutor::Options exec = options_.executor;
    exec.name = "live-h" + std::to_string(h);
    if (options_.pin_threads) {
      exec.cpu_affinity = options_.pin_base_core + h;
    }
    host->executor_ = std::make_unique<LiveExecutor>(
        options_.seed + static_cast<uint64_t>(h), epoch_ns_, exec);
    host->nic_ = std::make_unique<Nic>(host->executor_.get(), egress, h,
                                       options_.nic);
    host->engine_ = std::make_unique<PonyEngine>(
        "pony-h" + std::to_string(h), host->executor_.get(),
        host->nic_.get(), directory_.AllocateEngineId(), options_.pony,
        options_.timely, &directory_);
    host->executor_->AddEngine(host->engine_.get());
    hosts_.push_back(std::move(host));
  }
}

LiveRuntime::~LiveRuntime() { Stop(); }

Status LiveRuntime::Init() {
  if (udp_ != nullptr) {
    Status bound = udp_->Init();
    if (!bound.ok()) {
      return bound;
    }
  }
  for (auto& host : hosts_) {
    int h = host->host_id_;
    Nic* nic = host->nic_.get();
    LiveExecutor* exec = host->executor_.get();
    if (loopback_ != nullptr) {
      loopback_->AddHost(h, nic, exec);
      LoopbackFabric* fabric = loopback_.get();
      exec->SetPollHook([fabric, h] { return fabric->DrainTo(h); });
    } else {
      udp_->AddHost(h, nic, exec);
      UdpFabric* fabric = udp_.get();
      exec->SetPollHook([fabric, h] { return fabric->DrainTo(h); });
    }
  }
  return OkStatus();
}

void LiveRuntime::EnableQos(const qos::TenantRegistry* tenants) {
  SNAP_CHECK(!started_) << "EnableQos is setup-phase only";
  for (auto& host : hosts_) {
    host->engine_->EnableQos(tenants);
    host->nic_->EnableQosTx(tenants);
  }
}

void LiveRuntime::EnableSeriesSampling(SimDuration bucket_width,
                                       int max_buckets) {
  SNAP_CHECK(!started_) << "EnableSeriesSampling is setup-phase only";
  for (auto& host : hosts_) {
    host->executor_->telemetry().EnableSeriesSampling(bucket_width,
                                                      max_buckets);
  }
}

void LiveRuntime::EnableTracing() {
  SNAP_CHECK(!started_) << "EnableTracing is setup-phase only";
  for (auto& host : hosts_) {
    host->tracer_ = std::make_unique<TraceRecorder>();
    host->executor_->set_tracer(host->tracer_.get());
  }
}

void LiveRuntime::Start() {
  SNAP_CHECK(!started_) << "runtime already started";
  started_ = true;
  for (auto& host : hosts_) {
    host->executor_->Start();
  }
}

void LiveRuntime::Stop() {
  for (auto& host : hosts_) {
    host->executor_->Stop();
  }
  if (!started_ || stopped_) {
    return;  // publish once, on the started -> stopped transition; the
             // QoS registry may not outlive the first Stop()
  }
  stopped_ = true;
  // Threads are joined: publish each host's final engine/executor stats
  // into its registry (same shape sim scenarios export), so MergeTelemetry
  // sees the run.
  for (auto& host : hosts_) {
    Telemetry& t = host->executor_->telemetry();
    const std::string base = "live/h" + std::to_string(host->host_id_);
    const PonyEngine::Stats& es = host->engine_->stats();
    t.SetCounter(base + "/engine_tx_packets", es.tx_packets);
    t.SetCounter(base + "/engine_rx_packets", es.rx_packets);
    t.SetCounter(base + "/messages_delivered", es.messages_delivered);
    t.SetCounter(base + "/goodput_bytes", es.message_bytes_delivered);
    t.SetCounter(base + "/completions", es.completions);
    t.SetCounter(base + "/op_errors", es.op_errors);
    t.SetCounter(base + "/crc_drops", es.crc_drops);
    LiveExecutor::Stats xs = host->executor_->GetStats();
    t.SetCounter(base + "/loop_iterations", xs.loop_iterations);
    t.SetCounter(base + "/work_items", xs.work_items);
    t.SetCounter(base + "/timer_fires", xs.timer_fires);
    t.SetCounter(base + "/parks", xs.parks);
    t.SetCounter(base + "/wakes", xs.wakes);
    host->engine_->ExportQosStats(&t, base + "/qos");
  }
}

void LiveRuntime::MergeTelemetry(Telemetry* out) const {
  for (const auto& host : hosts_) {
    out->MergeFrom(host->executor_->telemetry());
  }
}

std::unique_ptr<TraceRecorder> LiveRuntime::MergedTrace() const {
  auto merged = std::make_unique<TraceRecorder>();
  struct Ref {
    SimTime ts;
    int host;
    size_t index;
  };
  std::vector<Ref> refs;
  for (int h = 0; h < num_hosts(); ++h) {
    const TraceRecorder* tracer = hosts_[h]->tracer_.get();
    if (tracer == nullptr) {
      continue;
    }
    const auto& events = tracer->events();
    for (size_t i = 0; i < events.size(); ++i) {
      refs.push_back(Ref{events[i].ts, h, i});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.host != b.host) return a.host < b.host;
    return a.index < b.index;
  });
  for (const Ref& r : refs) {
    TraceEvent event = hosts_[r.host]->tracer_->events()[r.index];
    event.tid += r.host * kHostTrackStride;
    merged->AppendRaw(std::move(event));
  }
  return merged;
}

LiveRuntime::FabricStats LiveRuntime::GetFabricStats() const {
  FabricStats s;
  if (loopback_ != nullptr) {
    LoopbackFabric::Stats f = loopback_->GetStats();
    s.delivered = f.delivered;
    s.dropped = f.dropped_ring_full + f.dropped_bad_address;
  } else if (udp_ != nullptr) {
    UdpFabric::Stats f = udp_->GetStats();
    s.delivered = f.delivered;
    s.dropped = f.dropped_send + f.dropped_decode + f.dropped_bad_address;
  }
  return s;
}

}  // namespace snap
