// LoopbackFabric: in-process live fabric — one model-checked SPSC ring per
// (source, destination) host pair.
//
// Route() runs on the source host's engine thread and pushes the raw
// Packet pointer into the (src, dst) ring; the destination executor's poll
// hook drains every ring addressed to it and hands packets to its NIC.
// Each ring therefore has exactly one producer thread and one consumer
// thread — the discipline the SpscRing (and its src/verify/ model
// checking) guarantees correctness for. Packets cross threads by pointer;
// the Packet allocator's freelists are thread-local, so a packet freed on
// the consumer thread never touches the producer's cache.
//
// A full ring drops the packet (the paper's lossy fabric, Section 5.4:
// no PFC — losses are repaired end-to-end by the transport), so a slow
// receiver backpressures senders through Pony Express retransmission and
// congestion control rather than by blocking the fabric.
#ifndef SRC_LIVE_LOOPBACK_FABRIC_H_
#define SRC_LIVE_LOOPBACK_FABRIC_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/live/live_executor.h"
#include "src/net/egress.h"
#include "src/net/nic.h"
#include "src/queue/spsc_ring.h"

namespace snap {

class LoopbackFabric : public PacketEgress {
 public:
  struct Options {
    // Per-(src,dst) ring capacity (rounded up to a power of two).
    int ring_entries = 1024;
  };

  explicit LoopbackFabric(int num_hosts);
  LoopbackFabric(int num_hosts, Options options);
  ~LoopbackFabric() override;

  // Setup-thread-only: registers host `host_id`'s NIC and the executor to
  // wake when packets arrive for it. All hosts must be registered before
  // any executor starts.
  void AddHost(int host_id, Nic* nic, LiveExecutor* executor);

  // PacketEgress; called on the source host's engine thread.
  void Route(PacketPtr packet, SimTime wire_time) override;

  // Drains every ring addressed to `dst_host` into its NIC. Must be called
  // from that host's executor thread (its poll hook). Returns packets
  // delivered.
  int DrainTo(int dst_host);

  int num_hosts() const { return num_hosts_; }

  struct Stats {
    int64_t delivered = 0;
    int64_t dropped_ring_full = 0;
    int64_t dropped_bad_address = 0;
  };
  // Aggregated over all hosts; exact once traffic has quiesced.
  Stats GetStats() const;

 private:
  using Ring = SpscRing<Packet*>;
  Ring& ring(int src, int dst) { return *rings_[src * num_hosts_ + dst]; }

  int num_hosts_;
  Options options_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<Nic*> nics_;
  std::vector<LiveExecutor*> executors_;
  // Per-host counters, each written by a single thread (producers drop,
  // consumers deliver); atomics make the cross-thread aggregation defined.
  std::vector<std::unique_ptr<std::atomic<int64_t>>> delivered_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> dropped_full_;
  std::atomic<int64_t> dropped_bad_address_{0};
};

}  // namespace snap

#endif  // SRC_LIVE_LOOPBACK_FABRIC_H_
