// LiveScheduler: Snap's engine scheduling modes (Section 2.4, Figure 3)
// on real OS threads. Where the sim-side EngineGroup schedules engine
// SimTasks over a modeled CPU, this schedules whole LiveExecutors (one
// per host: engines + NIC + timers) over worker threads:
//
//  - kDedicatedCores: one worker per executor (or per reserved core),
//    each spin-polling through its idle window before parking — the
//    lowest-latency mode, burning a core per engine.
//  - kSpreadingEngines: one worker per executor that parks on the
//    doorbell IMMEDIATELY when idle (no spin window) and wakes on
//    submit/packet arrival — the scale-to-zero mode.
//  - kCompactingEngines: a bounded worker pool; all executors start
//    compacted on worker 0 and a rebalancer thread scales out when an
//    executor's queueing delay exceeds the SLO (40 µs default), then
//    compacts back when load subsides — Shenango-style, using the
//    executors' busy_ns/queue_delay_ns load signals (the live analogue
//    of the PR 8 shard profiler's busy/wait split).
//
// Migration protocol (compacting): executors move between workers only
// at pass boundaries. The rebalancer is the SOLE mover: it appends a
// move command to the owning worker's mailbox (mutex-protected list +
// commands_pending flag + doorbell ring). The owning worker removes the
// executor from its local set, retargets the executor's doorbell at the
// destination worker, and hands it over through the destination's
// mailbox — so engine/NIC/timer state always passes between threads
// through a mutex (happens-before), and exactly one thread runs an
// executor at any moment. owner_[exec] (written by the receiving
// worker) vs target_[exec] (rebalancer-only) tracks moves in flight;
// the rebalancer never issues a second move for an executor whose first
// has not landed.
//
// Each worker owns a TraceRecorder (single-writer) for its park/wake
// and migration instants; LiveRuntime merges them after Stop() on
// tracks offset past the host tracks.
#ifndef SRC_LIVE_LIVE_SCHEDULER_H_
#define SRC_LIVE_LIVE_SCHEDULER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/live/live_executor.h"
#include "src/snap/engine_group.h"
#include "src/stats/trace.h"
#include "src/util/doorbell.h"
#include "src/util/time_types.h"

namespace snap {

class LiveScheduler {
 public:
  struct Options {
    SchedulingMode mode = SchedulingMode::kDedicatedCores;
    // Dedicated mode: worker count (0 = one per executor). Fewer workers
    // than executors round-robins executors over them (the paper's
    // fair-shared dedicated variant).
    int dedicated_workers = 0;
    // Cores to pin workers to (worker i -> cores[i % size]); empty = no
    // pinning.
    std::vector<int> cores;
    // Compacting mode.
    int max_workers = 4;
    int64_t compacting_slo_ns = 40'000;       // scale-out threshold
    int64_t rebalance_interval_ns = 200'000;  // rebalancer tick
    // Consecutive under-SLO ticks before compacting an executor back.
    int compact_after_samples = 8;
    // Worker idle behavior: busy-poll this long after the last productive
    // pass, then park (spreading mode forces 0 = park immediately).
    int64_t spin_before_park_ns = 50'000;
    int64_t max_park_ns = 100'000;
    bool pin_threads = false;
    int pin_base_core = 0;
  };

  // What the rebalancer did and why — exact post-stop, for tests and
  // docs-grade telemetry.
  struct Decision {
    enum Kind { kScaleOut, kCompact };
    Kind kind;
    int executor;
    int from_worker;
    int to_worker;
    int64_t observed_delay_ns;  // queueing delay that triggered it
    int64_t at_ns;              // executor-epoch timestamp
  };

  struct WorkerStats {
    int64_t passes = 0;
    int64_t work_items = 0;
    int64_t busy_ns = 0;
    int64_t park_ns = 0;
    int64_t parks = 0;
    int64_t migrations_in = 0;
    // passes_by_exec[e]: passes this worker ran executor e — the
    // engine<->core placement signal the per-mode e2e tests assert on.
    std::vector<int64_t> passes_by_exec;
  };

  LiveScheduler(int64_t epoch_ns, Options options);
  ~LiveScheduler();

  // Setup phase (before Start): registers an executor. Returns its index.
  int AddExecutor(LiveExecutor* executor);

  // Arms per-worker flight recorders (setup phase). Worker w records on
  // track base_tid (they are merged with stride later).
  void EnableTracing();

  // Periodically writes ProfileJson() to `path` (atomic tmp+rename) every
  // `interval_ms` while running — the snaptop.py --live-profile feed.
  void EnableProfileDump(const std::string& path, int interval_ms);

  void Start();
  void Stop();  // idempotent
  bool running() const { return started_ && !stopped_; }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const Options& options() const { return options_; }

  // Live view of the scheduler: mode, per-worker busy/park split,
  // executor placement, migration count. Callable while running (relaxed
  // reads; exact after Stop()).
  std::string ProfileJson() const;

  // Post-stop exact reads.
  WorkerStats GetWorkerStats(int worker) const;
  const std::vector<Decision>& decisions() const { return decisions_; }
  int64_t migrations() const {
    return migrations_.load(std::memory_order_relaxed);
  }
  // Per-worker tracers (post-stop; empty when tracing was not enabled).
  std::vector<const TraceRecorder*> WorkerTracers() const;

 private:
  struct Move {
    LiveExecutor* exec;
    int exec_index;
    int to_worker;
  };
  struct Arrival {
    LiveExecutor* exec;
    int exec_index;
  };
  struct Worker {
    int index = 0;
    std::thread thread;
    Doorbell doorbell;

    // Mailbox: rebalancer/local workers push, owner drains under mu.
    std::mutex mu;
    std::vector<Arrival> incoming;
    std::vector<Move> moves;
    std::atomic<bool> commands_pending{false};

    // Owner-thread-only running set (parallel exec-index vector).
    std::vector<LiveExecutor*> local;
    std::vector<int> local_index;

    std::unique_ptr<TraceRecorder> tracer;

    std::atomic<int64_t> passes{0};
    std::atomic<int64_t> work_items{0};
    std::atomic<int64_t> busy_ns{0};
    std::atomic<int64_t> park_ns{0};
    std::atomic<int64_t> parks{0};
    std::atomic<int64_t> migrations_in{0};
    std::vector<std::unique_ptr<std::atomic<int64_t>>> passes_by_exec;
  };

  void WorkerLoop(Worker* w);
  void DrainMailbox(Worker* w);
  void ControlLoop();
  void RequestMove(int exec_index, int from_worker, int to_worker,
                   Decision::Kind kind, int64_t observed_delay_ns);
  int InitialWorkerFor(int exec_index) const;

  Options options_;
  int64_t epoch_ns_;
  std::vector<LiveExecutor*> executors_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // owner_[e]: worker currently running executor e (written by the worker
  // that receives it); target_[e]: where the rebalancer last sent it
  // (rebalancer/setup only). owner != target => move in flight.
  std::vector<std::unique_ptr<std::atomic<int>>> owner_;
  std::vector<int> target_;
  // Consecutive under-SLO rebalancer ticks per executor (rebalancer only).
  std::vector<int> calm_ticks_;

  std::thread control_thread_;
  Doorbell control_doorbell_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
  bool tracing_ = false;

  std::string profile_path_;
  int profile_interval_ms_ = 0;

  std::vector<Decision> decisions_;  // rebalancer-only writer
  std::atomic<int64_t> migrations_{0};
};

}  // namespace snap

#endif  // SRC_LIVE_LIVE_SCHEDULER_H_
