#include "src/stats/time_series.h"

#include <algorithm>

#include "src/util/logging.h"

namespace snap {

void TimeSeries::Bucket::Fold(int64_t value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  last = value;
}

void TimeSeries::Bucket::Merge(const Bucket& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  last = other.last;  // `other` is the newer bucket (see Downsample)
}

TimeSeries::TimeSeries(SimDuration initial_bucket_width, int max_buckets)
    : bucket_width_(initial_bucket_width), max_buckets_(max_buckets) {
  SNAP_CHECK_GT(bucket_width_, 0);
  SNAP_CHECK_GE(max_buckets_, 2);
  SNAP_CHECK_EQ(max_buckets_ % 2, 0);
  buckets_.reserve(max_buckets_);
}

void TimeSeries::Record(SimTime t, int64_t value) {
  if (!started_) {
    started_ = true;
    // Align the origin down to a bucket boundary so series sampled on the
    // same cadence share bucket edges regardless of first-sample time.
    origin_ = (t / bucket_width_) * bucket_width_;
  }
  SNAP_CHECK_GE(t, origin_);
  int64_t index = (t - origin_) / bucket_width_;
  // Downsampling halves occupancy and doubles width, so each pass at
  // least halves `index`; the loop terminates.
  while (index >= max_buckets_) {
    Downsample();
    index = (t - origin_) / bucket_width_;
  }
  if (index >= static_cast<int64_t>(buckets_.size())) {
    buckets_.resize(index + 1);  // zero-fill skipped buckets
  }
  buckets_[index].Fold(value);
  ++total_count_;
  total_sum_ += value;
}

void TimeSeries::Downsample() {
  // Pairwise merge: bucket 2i and 2i+1 become new bucket i covering the
  // doubled width. `last` must come from the later of the pair when it is
  // non-empty (Merge keeps other.last, and we merge the odd — newer —
  // half into the even half).
  const size_t pairs = (buckets_.size() + 1) / 2;
  for (size_t i = 0; i < pairs; ++i) {
    Bucket merged = buckets_[2 * i];
    if (2 * i + 1 < buckets_.size()) {
      merged.Merge(buckets_[2 * i + 1]);
    }
    buckets_[i] = merged;
  }
  buckets_.resize(pairs);
  bucket_width_ *= 2;
  ++downsamples_;
}

double TimeSeries::RatePerSec(int i) const {
  return static_cast<double>(buckets_[i].sum) / ToSec(bucket_width_);
}

double TimeSeries::MaxRatePerSec() const {
  double best = 0;
  for (int i = 0; i < num_buckets(); ++i) {
    best = std::max(best, RatePerSec(i));
  }
  return best;
}

double TimeSeries::MeanRatePerSec() const {
  if (buckets_.empty()) return 0;
  double sum = 0;
  for (int i = 0; i < num_buckets(); ++i) {
    sum += RatePerSec(i);
  }
  return sum / static_cast<double>(buckets_.size());
}

std::string TimeSeries::ToJson() const {
  std::string out = "{\"width_ns\":" + std::to_string(bucket_width_) +
                    ",\"origin_ns\":" + std::to_string(origin_) +
                    ",\"downsamples\":" + std::to_string(downsamples_) +
                    ",\"buckets\":[";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (i > 0) out += ",";
    const Bucket& b = buckets_[i];
    if (b.empty()) {
      out += "{}";
      continue;
    }
    out += "{\"count\":" + std::to_string(b.count) +
           ",\"sum\":" + std::to_string(b.sum) +
           ",\"min\":" + std::to_string(b.min) +
           ",\"max\":" + std::to_string(b.max) +
           ",\"last\":" + std::to_string(b.last) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace snap
