#include "src/stats/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace snap {

namespace {

// Escapes a string for embedding in a JSON string literal. Event names are
// engine/task names we control, but quoting defensively keeps the exporter
// total.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Nanoseconds as fixed-point microseconds ("12.345"): integer arithmetic
// only, so the formatting is byte-stable across runs and platforms.
void AppendUs(std::string* out, int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  *out += buf;
}

}  // namespace

void TraceRecorder::Complete(SimTime start, SimDuration dur, int tid,
                             std::string name, const char* category,
                             std::string args) {
  TraceEvent e;
  e.phase = 'X';
  e.ts = start;
  e.dur = dur;
  e.tid = tid;
  e.name = std::move(name);
  e.category = category;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::Instant(SimTime ts, int tid, std::string name,
                            const char* category, std::string args) {
  TraceEvent e;
  e.phase = 'i';
  e.ts = ts;
  e.tid = tid;
  e.name = std::move(name);
  e.category = category;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::CounterValue(SimTime ts, std::string name,
                                 int64_t value) {
  CounterValueOnTrack(ts, kSchedTrack, std::move(name), value);
}

void TraceRecorder::CounterValueOnTrack(SimTime ts, int tid, std::string name,
                                        int64_t value) {
  TraceEvent e;
  e.phase = 'C';
  e.ts = ts;
  e.tid = tid;
  e.name = std::move(name);
  e.category = "counter";
  e.args = TraceArgInt("value", value);
  events_.push_back(std::move(e));
}

void TraceRecorder::AsyncBegin(SimTime ts, uint64_t id, std::string name,
                               const char* category, std::string args) {
  TraceEvent e;
  e.phase = 'b';
  e.ts = ts;
  e.tid = kUpgradeTrack;
  e.id = id;
  e.name = std::move(name);
  e.category = category;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::AsyncEnd(SimTime ts, uint64_t id, std::string name,
                             const char* category) {
  TraceEvent e;
  e.phase = 'e';
  e.ts = ts;
  e.tid = kUpgradeTrack;
  e.id = id;
  e.name = std::move(name);
  e.category = category;
  events_.push_back(std::move(e));
}

void TraceRecorder::FlowPoint(char phase, SimTime ts, int tid, uint64_t id,
                              std::string name, const char* category,
                              std::string args) {
  TraceEvent e;
  e.phase = phase;
  e.ts = ts;
  e.tid = tid;
  e.id = id;
  e.name = std::move(name);
  e.category = category;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

std::vector<TraceRecorder::Span> TraceRecorder::AsyncSpans(
    const std::string& name) const {
  std::vector<Span> spans;
  for (const TraceEvent& e : events_) {
    if (e.name != name) {
      continue;
    }
    if (e.phase == 'b') {
      Span s;
      s.id = e.id;
      s.begin = e.ts;
      s.args = e.args;
      spans.push_back(std::move(s));
    } else if (e.phase == 'e') {
      for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
        if (it->id == e.id && it->end < 0) {
          it->end = e.ts;
          break;
        }
      }
    }
  }
  return spans;
}

std::string TraceRecorder::ToJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"cat\":\"";
    out += e.category;
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    AppendUs(&out, e.ts);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      AppendUs(&out, e.dur);
    }
    if (e.phase == 'b' || e.phase == 'e' || e.phase == 's' ||
        e.phase == 't' || e.phase == 'f') {
      out += ",\"id\":\"";
      out += std::to_string(e.id);
      out += "\"";
    }
    if (e.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (e.phase == 'f') {
      out += ",\"bp\":\"e\"";  // bind flow end to enclosing slice
    }
    if (!e.args.empty()) {
      out += ",\"args\":";
      out += e.args;
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return false;
  }
  f << ToJson();
  return f.good();
}

std::string TraceArgInt(const char* key, int64_t value) {
  std::string out = "{\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
  out += "}";
  return out;
}

std::string TraceArgStr(const char* key, const std::string& value) {
  std::string out = "{\"";
  out += key;
  out += "\":\"";
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += "\"}";
  return out;
}

}  // namespace snap
