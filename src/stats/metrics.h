// Counter primitive plus a windowed rate tracker. Used by engines and
// benchmarks to export throughput/ops counters the way Snap's production
// dashboards do (Figure 8 of the paper reports per-minute IOPS of the
// hottest machine from such counters). Named registration lives in the
// Telemetry registry (src/stats/telemetry.h).
#ifndef SRC_STATS_METRICS_H_
#define SRC_STATS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time_types.h"

namespace snap {

class Counter {
 public:
  void Add(int64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

// Tracks a counter sampled at fixed windows, producing a rate series
// (e.g. IOPS per interval) like a production dashboard.
class RateSeries {
 public:
  explicit RateSeries(SimDuration window) : window_(window) {}

  // Feed the current cumulative count at time `now`; emits one sample per
  // complete window boundary crossed.
  //
  // Multi-window semantics: when `now` skips several window boundaries
  // since the previous sample, the counter delta is attributed uniformly
  // across every window crossed. Sampling cannot tell when within the gap
  // the counts accrued; even spreading preserves the series integral
  // (sum(rate * window) == total delta) without inventing a spurious
  // one-window burst followed by zeros.
  void Sample(SimTime now, int64_t cumulative);

  const std::vector<double>& rates_per_sec() const { return rates_; }
  double MaxRate() const;
  double MeanRate() const;

 private:
  SimDuration window_;
  SimTime window_start_ = 0;
  int64_t last_count_ = 0;
  bool started_ = false;
  std::vector<double> rates_;
};

}  // namespace snap

#endif  // SRC_STATS_METRICS_H_
