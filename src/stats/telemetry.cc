#include "src/stats/telemetry.h"

#include <cstdio>

namespace snap {

Counter* Telemetry::GetCounter(const std::string& name) {
  return &counters_[name];
}

Histogram* Telemetry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

void Telemetry::RegisterGauge(const std::string& name,
                              std::function<int64_t()> fn) {
  gauges_[name] = std::move(fn);
}

void Telemetry::UnregisterGauge(const std::string& name) {
  gauges_.erase(name);
}

void Telemetry::SetCounter(const std::string& name, int64_t value) {
  Counter* c = GetCounter(name);
  c->Reset();
  c->Add(value);
}

void Telemetry::MergeFrom(const Telemetry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].Add(counter.value());
  }
  for (const auto& [name, fn] : other.gauges_) {
    counters_[name].Add(fn());
  }
  for (const auto& [name, hist] : other.histograms_) {
    GetHistogram(name)->Merge(*hist);
  }
}

std::map<std::string, int64_t> Telemetry::SnapshotValues() const {
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter.value();
  }
  for (const auto& [name, fn] : gauges_) {
    out[name] = fn();
  }
  return out;
}

std::string Telemetry::SnapshotJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + std::to_string(counter.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, fn] : gauges_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + std::to_string(fn());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + hist->ToJson();
  }
  out += "}}\n";
  return out;
}

std::string Telemetry::DumpDashboard() const {
  std::string out;
  char line[256];
  if (!histograms_.empty()) {
    out += "-- latency/size distributions --\n";
    std::snprintf(line, sizeof(line), "%-44s %10s %10s %10s %10s %10s %10s\n",
                  "name", "count", "p50", "p90", "p99", "p999", "max");
    out += line;
    for (const auto& [name, hist] : histograms_) {
      std::snprintf(line, sizeof(line),
                    "%-44s %10lld %10lld %10lld %10lld %10lld %10lld\n",
                    name.c_str(), static_cast<long long>(hist->count()),
                    static_cast<long long>(hist->P50()),
                    static_cast<long long>(hist->P90()),
                    static_cast<long long>(hist->P99()),
                    static_cast<long long>(hist->P999()),
                    static_cast<long long>(hist->max()));
      out += line;
    }
  }
  if (!counters_.empty() || !gauges_.empty()) {
    out += "-- counters & gauges --\n";
    for (const auto& [name, counter] : counters_) {
      std::snprintf(line, sizeof(line), "%-60s %14lld\n", name.c_str(),
                    static_cast<long long>(counter.value()));
      out += line;
    }
    for (const auto& [name, fn] : gauges_) {
      std::snprintf(line, sizeof(line), "%-60s %14lld (gauge)\n",
                    name.c_str(), static_cast<long long>(fn()));
      out += line;
    }
  }
  // Per-tenant QoS rollup: counters exported as qos/tenant/<name>/<metric>
  // (PonyEngine/Nic/ShapingEngine ExportQosStats) pivot into one row per
  // tenant. The raw counters also appear above; this is the summary view.
  constexpr char kQosPrefix[] = "qos/tenant/";
  constexpr size_t kQosPrefixLen = sizeof(kQosPrefix) - 1;
  std::map<std::string, std::map<std::string, int64_t>> tenants;
  for (const auto& [name, counter] : counters_) {
    if (name.compare(0, kQosPrefixLen, kQosPrefix) != 0) {
      continue;
    }
    std::string rest = name.substr(kQosPrefixLen);
    size_t slash = rest.find('/');
    if (slash == std::string::npos) {
      continue;
    }
    tenants[rest.substr(0, slash)][rest.substr(slash + 1)] = counter.value();
  }
  if (!tenants.empty()) {
    out += "-- qos tenants --\n";
    std::snprintf(line, sizeof(line), "%-16s %10s %10s %14s %14s %12s\n",
                  "tenant", "tx_pkts", "rx_pkts", "goodput_B", "cpu_ns",
                  "nicq_ns");
    out += line;
    for (const auto& [tenant, metrics] : tenants) {
      auto metric = [&metrics](const char* key) -> long long {
        auto it = metrics.find(key);
        return it == metrics.end() ? 0 : static_cast<long long>(it->second);
      };
      std::snprintf(line, sizeof(line),
                    "%-16s %10lld %10lld %14lld %14lld %12lld\n",
                    tenant.c_str(), metric("engine_tx_packets"),
                    metric("engine_rx_packets"), metric("goodput_bytes"),
                    metric("engine_cpu_ns"),
                    metric("nic_queue_delay_mean_ns"));
      out += line;
    }
  }
  return out;
}

}  // namespace snap
