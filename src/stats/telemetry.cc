#include "src/stats/telemetry.h"

#include <cstdio>

#include "src/util/logging.h"

namespace snap {

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Slashes and any
// other byte outside that set become '_'.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void Telemetry::CheckKind(const std::string& name, Kind kind) const {
  SNAP_CHECK(kind == Kind::kCounter || counters_.find(name) == counters_.end())
      << "telemetry name registered twice with different types: \"" << name
      << "\" is already a counter";
  SNAP_CHECK(kind == Kind::kGauge || gauges_.find(name) == gauges_.end())
      << "telemetry name registered twice with different types: \"" << name
      << "\" is already a gauge";
  SNAP_CHECK(kind == Kind::kHistogram ||
             histograms_.find(name) == histograms_.end())
      << "telemetry name registered twice with different types: \"" << name
      << "\" is already a histogram";
  SNAP_CHECK(kind == Kind::kSeries || series_.find(name) == series_.end())
      << "telemetry name registered twice with different types: \"" << name
      << "\" is already a series";
}

Counter* Telemetry::GetCounter(const std::string& name) {
  CheckKind(name, Kind::kCounter);
  return &counters_[name];
}

Histogram* Telemetry::GetHistogram(const std::string& name) {
  CheckKind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

TimeSeries* Telemetry::GetSeries(const std::string& name,
                                 SimDuration bucket_width, int max_buckets) {
  CheckKind(name, Kind::kSeries);
  auto& slot = series_[name];
  if (slot == nullptr) {
    slot = std::make_unique<TimeSeries>(bucket_width, max_buckets);
  }
  return slot.get();
}

void Telemetry::RegisterGauge(const std::string& name,
                              std::function<int64_t()> fn) {
  CheckKind(name, Kind::kGauge);
  gauges_[name] = std::move(fn);
}

void Telemetry::UnregisterGauge(const std::string& name) {
  gauges_.erase(name);
}

void Telemetry::SetCounter(const std::string& name, int64_t value) {
  Counter* c = GetCounter(name);
  c->Reset();
  c->Add(value);
}

void Telemetry::MergeFrom(const Telemetry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].Add(counter.value());
  }
  for (const auto& [name, fn] : other.gauges_) {
    counters_[name].Add(fn());
  }
  for (const auto& [name, hist] : other.histograms_) {
    GetHistogram(name)->Merge(*hist);
  }
}

void Telemetry::EnableSeriesSampling(SimDuration bucket_width,
                                     int max_buckets) {
  SNAP_CHECK_GT(bucket_width, 0);
  series_sampling_enabled_ = true;
  series_bucket_width_ = bucket_width;
  series_max_buckets_ = max_buckets;
}

bool Telemetry::MaybeSampleSeries(SimTime now) {
  if (!series_sampling_enabled_ || now < next_series_sample_) {
    return false;
  }
  SampleSeriesAt(now);
  next_series_sample_ = now + series_bucket_width_;
  return true;
}

void Telemetry::SampleSeriesAt(SimTime now) {
  if (!series_sampling_enabled_) return;
  // Counters sample as deltas (bucket sum == increments inside the
  // bucket, so sum/width is a rate); gauges sample their current value.
  for (const auto& [name, counter] : counters_) {
    SampledSeries& slot = sampled_series_[name];
    if (slot.series == nullptr) {
      slot.series = std::make_unique<TimeSeries>(series_bucket_width_,
                                                 series_max_buckets_);
      slot.last_value = 0;
    }
    slot.series->Record(now, counter.value() - slot.last_value);
    slot.last_value = counter.value();
  }
  for (const auto& [name, fn] : gauges_) {
    SampledSeries& slot = sampled_series_[name];
    if (slot.series == nullptr) {
      slot.series = std::make_unique<TimeSeries>(series_bucket_width_,
                                                 series_max_buckets_);
    }
    slot.series->Record(now, fn());
  }
}

const TimeSeries* Telemetry::FindSeries(const std::string& name) const {
  auto it = series_.find(name);
  if (it != series_.end()) return it->second.get();
  auto st = sampled_series_.find(name);
  if (st != sampled_series_.end()) return st->second.series.get();
  return nullptr;
}

std::map<std::string, int64_t> Telemetry::SnapshotValues() const {
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter.value();
  }
  for (const auto& [name, fn] : gauges_) {
    out[name] = fn();
  }
  return out;
}

std::string Telemetry::SnapshotJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + std::to_string(counter.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, fn] : gauges_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + std::to_string(fn());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + hist->ToJson();
  }
  // Directly-fed and sampled series share the "series" section; the two
  // maps hold disjoint names (CheckKind guards the directly-fed ones and
  // sampled names mirror counters/gauges), and both are name-ordered, so
  // a simple ordered merge keeps the export deterministic.
  out += "},\"series\":{";
  first = true;
  auto emit = [&out, &first](const std::string& name, const TimeSeries& ts) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + ts.ToJson();
  };
  auto it = series_.begin();
  auto st = sampled_series_.begin();
  while (it != series_.end() || st != sampled_series_.end()) {
    if (st == sampled_series_.end() ||
        (it != series_.end() && it->first < st->first)) {
      emit(it->first, *it->second);
      ++it;
    } else {
      if (st->second.series != nullptr) {
        emit(st->first, *st->second.series);
      }
      ++st;
    }
  }
  out += "}}\n";
  return out;
}

std::string Telemetry::PrometheusText() const {
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::string n = SanitizeMetricName(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, fn] : gauges_) {
    std::string n = SanitizeMetricName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(fn()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    std::string n = SanitizeMetricName(name);
    out += "# TYPE " + n + " summary\n";
    static constexpr struct {
      const char* label;
      double p;
    } kQuantiles[] = {{"0.5", 50}, {"0.9", 90}, {"0.99", 99}, {"0.999", 99.9}};
    for (const auto& q : kQuantiles) {
      std::snprintf(line, sizeof(line), "%s{quantile=\"%s\"} %lld\n",
                    n.c_str(), q.label,
                    static_cast<long long>(hist->Percentile(q.p)));
      out += line;
    }
    out += n + "_count " + std::to_string(hist->count()) + "\n";
    out += n + "_max " + std::to_string(hist->max()) + "\n";
  }
  auto emit_series = [&out, &line](const std::string& name,
                                   const TimeSeries& ts) {
    std::string n = SanitizeMetricName(name);
    out += "# TYPE " + n + "_last_bucket_sum gauge\n";
    int64_t sum = 0;
    for (int i = ts.num_buckets() - 1; i >= 0; --i) {
      if (!ts.bucket(i).empty()) {
        sum = ts.bucket(i).sum;
        break;
      }
    }
    std::snprintf(line, sizeof(line), "%s_last_bucket_sum{window_ns=\"%lld\"} %lld\n",
                  n.c_str(), static_cast<long long>(ts.bucket_width()),
                  static_cast<long long>(sum));
    out += line;
  };
  for (const auto& [name, ts] : series_) {
    emit_series(name, *ts);
  }
  for (const auto& [name, slot] : sampled_series_) {
    if (slot.series != nullptr) emit_series(name, *slot.series);
  }
  return out;
}

std::string Telemetry::DumpDashboard() const {
  std::string out;
  char line[256];
  if (!histograms_.empty()) {
    out += "-- latency/size distributions --\n";
    std::snprintf(line, sizeof(line), "%-44s %10s %10s %10s %10s %10s %10s\n",
                  "name", "count", "p50", "p90", "p99", "p999", "max");
    out += line;
    for (const auto& [name, hist] : histograms_) {
      std::snprintf(line, sizeof(line),
                    "%-44s %10lld %10lld %10lld %10lld %10lld %10lld\n",
                    name.c_str(), static_cast<long long>(hist->count()),
                    static_cast<long long>(hist->P50()),
                    static_cast<long long>(hist->P90()),
                    static_cast<long long>(hist->P99()),
                    static_cast<long long>(hist->P999()),
                    static_cast<long long>(hist->max()));
      out += line;
    }
  }
  if (!counters_.empty() || !gauges_.empty()) {
    out += "-- counters & gauges --\n";
    for (const auto& [name, counter] : counters_) {
      std::snprintf(line, sizeof(line), "%-60s %14lld\n", name.c_str(),
                    static_cast<long long>(counter.value()));
      out += line;
    }
    for (const auto& [name, fn] : gauges_) {
      std::snprintf(line, sizeof(line), "%-60s %14lld (gauge)\n",
                    name.c_str(), static_cast<long long>(fn()));
      out += line;
    }
  }
  // Per-tenant QoS rollup: counters exported as qos/tenant/<name>/<metric>
  // (PonyEngine/Nic/ShapingEngine ExportQosStats) pivot into one row per
  // tenant. The raw counters also appear above; this is the summary view.
  constexpr char kQosPrefix[] = "qos/tenant/";
  constexpr size_t kQosPrefixLen = sizeof(kQosPrefix) - 1;
  std::map<std::string, std::map<std::string, int64_t>> tenants;
  for (const auto& [name, counter] : counters_) {
    if (name.compare(0, kQosPrefixLen, kQosPrefix) != 0) {
      continue;
    }
    std::string rest = name.substr(kQosPrefixLen);
    size_t slash = rest.find('/');
    if (slash == std::string::npos) {
      continue;
    }
    tenants[rest.substr(0, slash)][rest.substr(slash + 1)] = counter.value();
  }
  if (!tenants.empty()) {
    out += "-- qos tenants --\n";
    std::snprintf(line, sizeof(line), "%-16s %10s %10s %14s %14s %12s\n",
                  "tenant", "tx_pkts", "rx_pkts", "goodput_B", "cpu_ns",
                  "nicq_ns");
    out += line;
    for (const auto& [tenant, metrics] : tenants) {
      auto metric = [&metrics](const char* key) -> long long {
        auto it = metrics.find(key);
        return it == metrics.end() ? 0 : static_cast<long long>(it->second);
      };
      std::snprintf(line, sizeof(line),
                    "%-16s %10lld %10lld %14lld %14lld %12lld\n",
                    tenant.c_str(), metric("engine_tx_packets"),
                    metric("engine_rx_packets"), metric("goodput_bytes"),
                    metric("engine_cpu_ns"),
                    metric("nic_queue_delay_mean_ns"));
      out += line;
    }
  }
  return out;
}

}  // namespace snap
