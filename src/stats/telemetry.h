// Unified telemetry registry: counters, gauges, histograms, and windowed
// time-series addressed by hierarchical slash-separated names
// ("snap/engine0/poll_ns"). Components register their metrics once and
// keep the returned pointer hot — lookups never happen on the data plane.
// Gauges are pull-model (a callback read at snapshot time) so existing
// ad-hoc Stats structs can publish live values without double
// bookkeeping; the caller guarantees the gauge callback outlives the
// registry or deregisters it.
//
// A name belongs to exactly one metric type for the registry's lifetime:
// registering "x" as a counter and later as a gauge (or histogram, or
// series) is a programming error and CHECK-fails loudly instead of
// silently shadowing one export surface with another.
//
// Export surfaces:
//  - SnapshotValues(): counters + gauges as a flat name->int64 map, for
//    programmatic diffing;
//  - SnapshotJson(): everything (histograms included, full bucket data via
//    Histogram::ToJson; time-series via TimeSeries::ToJson) as one JSON
//    document benches can diff across runs;
//  - PrometheusText(): Prometheus-style text exposition (counters, gauges,
//    histogram summaries, series-rate gauges);
//  - DumpDashboard(): a fixed-width text view in the spirit of the paper's
//    Fig. 5 (latency percentiles per engine) and Fig. 8 (ops counters).
//
// Time-series sampling: EnableSeriesSampling arms a fixed-memory
// TimeSeries per counter/gauge; each SampleSeriesAt(now) folds the delta
// since the previous sample (counters) or the instantaneous value
// (gauges) into the bucket covering `now`. The caller drives the cadence
// — a scheduled periodic event in serial runs, a barrier hook in sharded
// runs (an extra scheduled event would change the epoch structure; see
// src/testing/seed_sweep.cc).
//
// Naming convention (docs/OBSERVABILITY.md): <subsystem>/<instance>/<metric>
// with units suffixed (_ns, _bytes). Iteration is over std::map, so every
// export is deterministically name-ordered.
#ifndef SRC_STATS_TELEMETRY_H_
#define SRC_STATS_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/stats/histogram.h"
#include "src/stats/time_series.h"
#include "src/util/time_types.h"

namespace snap {

// Monotonic counter. Named registration lives in Telemetry; engines and
// benchmarks keep the returned pointer hot (the paper's Figure 8 per-
// machine IOPS dashboards come from counters like these).
class Counter {
 public:
  void Add(int64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

class Telemetry {
 public:
  Telemetry() = default;

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Creates-or-returns; the pointer is stable for the registry's lifetime.
  // CHECK-fails if `name` is already registered as a different type.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Creates-or-returns a directly-fed time-series (width/max_buckets are
  // ignored when the series already exists). Distinct from the sampled
  // series EnableSeriesSampling derives from counters/gauges.
  TimeSeries* GetSeries(const std::string& name, SimDuration bucket_width,
                        int max_buckets = 64);

  // Registers (or replaces) a pull-model gauge.
  void RegisterGauge(const std::string& name, std::function<int64_t()> fn);
  void UnregisterGauge(const std::string& name);

  // Convenience for ExportStats-style publishing: overwrite the counter
  // `name` with an absolute value.
  void SetCounter(const std::string& name, int64_t value);

  // Counters + gauges as a flat map (gauges evaluated now).
  std::map<std::string, int64_t> SnapshotValues() const;

  // Deterministic merge of another registry into this one: counters are
  // summed (created if absent), histograms bucket-merged via
  // Histogram::Merge. Gauges are pull-model callbacks into the other
  // registry's components and are snapshotted into counters of the same
  // name instead of being re-registered, so the merged registry never
  // holds callbacks into state it does not own. Used by ShardedSim to
  // fold per-shard registries into one shard-count-invariant snapshot at
  // epoch barriers (all shards parked; plain single-threaded code).
  void MergeFrom(const Telemetry& other);

  // --- Fixed-memory time-series sampling (docs/OBSERVABILITY.md) ---
  // Arms per-metric TimeSeries: every counter and gauge known at sample
  // time gets one, fed by SampleSeriesAt. O(metrics * max_buckets) memory
  // regardless of run length.
  void EnableSeriesSampling(SimDuration bucket_width, int max_buckets = 64);
  bool series_sampling_enabled() const { return series_sampling_enabled_; }
  // Folds one sample per counter (delta since previous sample) and per
  // gauge (instantaneous value) into the bucket covering `now`. Sample
  // times must be non-decreasing.
  void SampleSeriesAt(SimTime now);
  // Self-pacing cadence: folds a sample iff `now` has advanced at least
  // one bucket width past the previous sample, so callers can invoke it
  // every loop iteration off any monotonic clock — the simulator drives
  // it from a scheduled event, the live substrate straight from its
  // poll loop's wall clock. Returns whether a sample was taken.
  bool MaybeSampleSeries(SimTime now);

  // {"counters":{...},"gauges":{...},"histograms":{...},"series":{...}},
  // all keys name-sorted. Sampled series export as "<name>" and directly
  // fed series (GetSeries) under their registered names.
  std::string SnapshotJson() const;

  // Prometheus text exposition: one line per sample, names sanitized
  // ([a-zA-Z0-9_:] only; '/' becomes '_'), deterministically ordered.
  // Counters emit `# TYPE <n> counter`; gauges `gauge`; histograms a
  // summary (quantile labels + _count/_max); series the most recent
  // non-empty bucket as `<n>_last_bucket_sum` with a window label.
  std::string PrometheusText() const;

  // Fixed-width text dashboard: histogram percentiles, then counters and
  // gauges.
  std::string DumpDashboard() const;

  size_t num_counters() const { return counters_.size(); }
  size_t num_histograms() const { return histograms_.size(); }
  size_t num_gauges() const { return gauges_.size(); }
  size_t num_series() const {
    return series_.size() + sampled_series_.size();
  }
  const TimeSeries* FindSeries(const std::string& name) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kSeries };
  // CHECK-fails when `name` is already registered under a different kind.
  void CheckKind(const std::string& name, Kind kind) const;

  struct SampledSeries {
    // Deferred construction: width/max set by EnableSeriesSampling.
    std::unique_ptr<TimeSeries> series;
    int64_t last_value = 0;  // counters: previous sample, for deltas
  };

  std::map<std::string, Counter> counters_;
  // unique_ptr for address stability (Histogram is large; map nodes would
  // be stable too, but this keeps the intent explicit).
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<int64_t()>> gauges_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
  std::map<std::string, SampledSeries> sampled_series_;
  bool series_sampling_enabled_ = false;
  SimDuration series_bucket_width_ = 0;
  int series_max_buckets_ = 64;
  SimTime next_series_sample_ = 0;  // MaybeSampleSeries pacing
};

}  // namespace snap

#endif  // SRC_STATS_TELEMETRY_H_
