// Unified telemetry registry: counters, gauges, and histograms addressed by
// hierarchical slash-separated names ("snap/engine0/poll_ns"). Components
// register their metrics once and keep the returned pointer hot — lookups
// never happen on the data plane. Gauges are pull-model (a callback read at
// snapshot time) so existing ad-hoc Stats structs can publish live values
// without double bookkeeping; the caller guarantees the gauge callback
// outlives the registry or deregisters it.
//
// Export surfaces:
//  - SnapshotValues(): counters + gauges as a flat name->int64 map, for
//    programmatic diffing;
//  - SnapshotJson(): everything (histograms included, full bucket data via
//    Histogram::ToJson) as one JSON document benches can diff across runs;
//  - DumpDashboard(): a fixed-width text view in the spirit of the paper's
//    Fig. 5 (latency percentiles per engine) and Fig. 8 (ops counters).
//
// Naming convention (docs/OBSERVABILITY.md): <subsystem>/<instance>/<metric>
// with units suffixed (_ns, _bytes). Iteration is over std::map, so every
// export is deterministically name-ordered.
#ifndef SRC_STATS_TELEMETRY_H_
#define SRC_STATS_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/stats/histogram.h"
#include "src/stats/metrics.h"

namespace snap {

class Telemetry {
 public:
  Telemetry() = default;

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Creates-or-returns; the pointer is stable for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Registers (or replaces) a pull-model gauge.
  void RegisterGauge(const std::string& name, std::function<int64_t()> fn);
  void UnregisterGauge(const std::string& name);

  // Convenience for ExportStats-style publishing: overwrite the counter
  // `name` with an absolute value.
  void SetCounter(const std::string& name, int64_t value);

  // Counters + gauges as a flat map (gauges evaluated now).
  std::map<std::string, int64_t> SnapshotValues() const;

  // Deterministic merge of another registry into this one: counters are
  // summed (created if absent), histograms bucket-merged via
  // Histogram::Merge. Gauges are pull-model callbacks into the other
  // registry's components and are snapshotted into counters of the same
  // name instead of being re-registered, so the merged registry never
  // holds callbacks into state it does not own. Used by ShardedSim to
  // fold per-shard registries into one shard-count-invariant snapshot at
  // epoch barriers (all shards parked; plain single-threaded code).
  void MergeFrom(const Telemetry& other);

  // {"counters":{...},"gauges":{...},"histograms":{name:{...}}}, all keys
  // name-sorted.
  std::string SnapshotJson() const;

  // Fixed-width text dashboard: histogram percentiles, then counters and
  // gauges.
  std::string DumpDashboard() const;

  size_t num_counters() const { return counters_.size(); }
  size_t num_histograms() const { return histograms_.size(); }
  size_t num_gauges() const { return gauges_.size(); }

 private:
  std::map<std::string, Counter> counters_;
  // unique_ptr for address stability (Histogram is large; map nodes would
  // be stable too, but this keeps the intent explicit).
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<int64_t()>> gauges_;
};

}  // namespace snap

#endif  // SRC_STATS_TELEMETRY_H_
