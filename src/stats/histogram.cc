#include "src/stats/histogram.h"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.h"

namespace snap {

Histogram::Histogram() : buckets_(kMagnitudes * kSubBuckets, 0) {}

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<int>(v);
  }
  // Magnitude = position of the highest set bit above the sub-bucket range;
  // shifting by it leaves the top (kSubBucketBits+1) bits, whose low
  // kSubBucketBits select the sub-bucket within the power-of-two band.
  int msb = 63 - __builtin_clzll(v);
  int magnitude = msb - kSubBucketBits;
  int sub = static_cast<int>(v >> magnitude) & (kSubBuckets - 1);
  int index = (magnitude + 1) * kSubBuckets + sub;
  if (index >= static_cast<int>(kMagnitudes * kSubBuckets)) {
    index = kMagnitudes * kSubBuckets - 1;
  }
  return index;
}

int64_t Histogram::BucketUpperBound(int index) {
  int magnitude = index / kSubBuckets - 1;
  int sub = index % kSubBuckets;
  if (magnitude < 0) {
    return sub;
  }
  uint64_t base = (static_cast<uint64_t>(kSubBuckets) | sub)
                  << magnitude;
  uint64_t width = 1ULL << magnitude;
  return static_cast<int64_t>(base + width - 1);
}

void Histogram::Record(int64_t value) { RecordN(value, 1); }

void Histogram::RecordN(int64_t value, int64_t n) {
  SNAP_CHECK_GE(n, 0);
  if (n == 0) {
    return;
  }
  if (value < 0) {
    value = 0;
  }
  buckets_[BucketIndex(value)] += n;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

void Histogram::Merge(const Histogram& other) {
  SNAP_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0;
  }
  return sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0) {
    return min_;
  }
  if (p >= 100) {
    return max_;
  }
  // Rank of the requested percentile (1-based).
  int64_t target = static_cast<int64_t>(
      (p / 100.0) * static_cast<double>(count_) + 0.5);
  if (target < 1) {
    target = 1;
  }
  if (target > count_) {
    target = count_;
  }
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      int64_t bound = BucketUpperBound(static_cast<int>(i));
      return std::min(bound, max_);
    }
  }
  return max_;
}

std::string Histogram::ToJson() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%lld,\"min\":%lld,\"max\":%lld,\"mean\":%.3f,"
                "\"p50\":%lld,\"p90\":%lld,\"p99\":%lld,\"p999\":%lld,"
                "\"buckets\":[",
                static_cast<long long>(count_),
                static_cast<long long>(min()),
                static_cast<long long>(max()), Mean(),
                static_cast<long long>(P50()), static_cast<long long>(P90()),
                static_cast<long long>(P99()),
                static_cast<long long>(P999()));
  std::string out = buf;
  bool first = true;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (!first) {
      out += ",";
    }
    first = false;
    std::snprintf(buf, sizeof(buf), "[%lld,%lld]",
                  static_cast<long long>(BucketUpperBound(static_cast<int>(i))),
                  static_cast<long long>(buckets_[i]));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string Histogram::SummaryNs() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.1fus p50=%.1fus p99=%.1fus p999=%.1fus "
                "max=%.1fus",
                static_cast<long long>(count_), Mean() / 1000.0,
                static_cast<double>(P50()) / 1000.0,
                static_cast<double>(P99()) / 1000.0,
                static_cast<double>(P999()) / 1000.0,
                static_cast<double>(max()) / 1000.0);
  return buf;
}

}  // namespace snap
