// Deterministic flight recorder: records simulation events in sim time and
// exports them as Chrome-trace-event/Perfetto-compatible JSON
// ("traceEvents" array, ts/dur in microseconds). Because every timestamp is
// simulated, the trace is an exact, replayable account of where time went —
// the attribution real host stacks approximate with sampling profilers.
//
// Determinism contract: recording draws no randomness and never feeds back
// into the simulation, so (a) the same seed yields a byte-identical trace
// and (b) enabling or disabling tracing cannot change simulation results.
// Near-zero cost when disabled: components hold a TraceRecorder* that is
// nullptr unless a recorder was attached (Simulator::set_tracer), so the
// disabled path is one pointer test. The per-packet lifecycle hooks can
// additionally be compiled out with -DSNAP_TRACE_PACKET_LIFECYCLE=OFF
// (which defines SNAP_DISABLE_PACKET_TRACE).
//
// Event vocabulary (docs/OBSERVABILITY.md):
//   Complete ("X")  task steps and engine poll passes, one track per core;
//   Instant  ("i")  scheduler decisions (wakes, rebalances, throttles) and
//                   chaos injections;
//   Counter  ("C")  evolving values (active compacting workers);
//   Async    ("b"/"e")  upgrade brownout/blackout phases, Gilbert-Elliott
//                   bad-state bursts;
//   Flow     ("s"/"t"/"f")  sampled one-in-N message lifecycles across
//                   app enqueue -> engine TX -> NIC ring -> fabric queue ->
//                   RX engine -> completion delivery.
#ifndef SRC_STATS_TRACE_H_
#define SRC_STATS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time_types.h"

namespace snap {

struct TraceEvent {
  char phase = 'X';        // Chrome trace "ph"
  SimTime ts = 0;          // ns (exported as fractional microseconds)
  SimDuration dur = 0;     // ns; complete events only
  int tid = 0;             // track: core id, or a k*Track constant
  uint64_t id = 0;         // async-span / flow binding id
  std::string name;
  const char* category = "";
  std::string args;        // pre-rendered JSON object ("{...}") or empty
};

class TraceRecorder {
 public:
  struct Options {
    // One in N Pony messages (by op id) gets packet-lifecycle flow events.
    // <= 0 disables packet-lifecycle sampling entirely.
    int packet_sample_every = 16;
  };

  // Virtual tracks for events not attributable to one simulated core.
  // Cores use their id (0..num_cores-1) as tid directly.
  static constexpr int kSchedTrack = 900;
  static constexpr int kFabricTrack = 901;
  static constexpr int kChaosTrack = 902;
  static constexpr int kUpgradeTrack = 903;
  static constexpr int kSloTrack = 904;       // tenant SLO fire/clear
  static constexpr int kProfilerTrack = 905;  // sharded-engine epoch counters

  TraceRecorder() = default;
  explicit TraceRecorder(Options options) : options_(options) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- Event emission (all timestamps are simulated ns) ---
  void Complete(SimTime start, SimDuration dur, int tid, std::string name,
                const char* category, std::string args = "");
  void Instant(SimTime ts, int tid, std::string name, const char* category,
               std::string args = "");
  void CounterValue(SimTime ts, std::string name, int64_t value);
  // Counter on an explicit track (ShardedSim's profiler puts per-shard
  // epoch counters on kProfilerTrack so the merged trace's shard-stride
  // tid remap keeps them distinct per shard).
  void CounterValueOnTrack(SimTime ts, int tid, std::string name,
                           int64_t value);
  void AsyncBegin(SimTime ts, uint64_t id, std::string name,
                  const char* category, std::string args = "");
  void AsyncEnd(SimTime ts, uint64_t id, std::string name,
                const char* category);
  // phase: 's' start, 't' step, 'f' end. Chrome binds flow arrows by
  // (category, id, name), so every point of one flow shares its name; the
  // lifecycle stage goes in args ({"point":...}).
  void FlowPoint(char phase, SimTime ts, int tid, uint64_t id,
                 std::string name, const char* category,
                 std::string args = "");

  // Deterministic one-in-N message sampling by op id (op id 0 = not a
  // Pony operation, never sampled).
  bool ShouldSampleMessage(uint64_t op_id) const {
    return op_id != 0 && options_.packet_sample_every > 0 &&
           op_id % static_cast<uint64_t>(options_.packet_sample_every) == 0;
  }

  // The core whose task step is currently executing; set by CpuScheduler
  // around SimTask::Step so nested events (engine polls) land on the right
  // track without plumbing a core id through every layer.
  void set_current_core(int core) { current_core_ = core; }
  int current_core_or(int fallback) const {
    return current_core_ >= 0 ? current_core_ : fallback;
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  // Raw event append, for deterministic cross-recorder merging
  // (ShardedSim::MergedTrace). Not an emission API: the caller is
  // responsible for timestamps and track ids making sense together.
  void AppendRaw(TraceEvent event) { events_.push_back(std::move(event)); }
  size_t size() const { return events_.size(); }
  const Options& options() const { return options_; }

  // Structured span lookup so tests can check durations without parsing
  // JSON. Matches AsyncBegin/AsyncEnd pairs by (name, id), in begin order.
  struct Span {
    uint64_t id = 0;
    SimTime begin = 0;
    SimTime end = -1;  // -1: still open
    std::string args;
  };
  std::vector<Span> AsyncSpans(const std::string& name) const;

  // Chrome trace format: {"displayTimeUnit":"ns","traceEvents":[...]}.
  // Byte-identical for identical event sequences (fixed-point timestamp
  // formatting, no floating-point round-trips).
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  Options options_;
  int current_core_ = -1;
  std::vector<TraceEvent> events_;
};

// JSON argument helpers for building TraceEvent::args.
std::string TraceArgInt(const char* key, int64_t value);
std::string TraceArgStr(const char* key, const std::string& value);

}  // namespace snap

#endif  // SRC_STATS_TRACE_H_
