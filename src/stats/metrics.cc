#include "src/stats/metrics.h"

#include <algorithm>

namespace snap {

void RateSeries::Sample(SimTime now, int64_t cumulative) {
  if (!started_) {
    started_ = true;
    window_start_ = now;
    last_count_ = cumulative;
    return;
  }
  while (now >= window_start_ + window_) {
    // Close the current window. We attribute all the delta to the closing
    // window; sub-window interpolation is unnecessary for dashboards.
    double delta = static_cast<double>(cumulative - last_count_);
    rates_.push_back(delta / ToSec(window_));
    last_count_ = cumulative;
    window_start_ += window_;
  }
}

double RateSeries::MaxRate() const {
  if (rates_.empty()) {
    return 0;
  }
  return *std::max_element(rates_.begin(), rates_.end());
}

double RateSeries::MeanRate() const {
  if (rates_.empty()) {
    return 0;
  }
  double sum = 0;
  for (double r : rates_) {
    sum += r;
  }
  return sum / static_cast<double>(rates_.size());
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  return &counters_[name];
}

std::map<std::string, int64_t> MetricRegistry::Snapshot() const {
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter.value();
  }
  return out;
}

}  // namespace snap
