#include "src/stats/metrics.h"

#include <algorithm>

namespace snap {

void RateSeries::Sample(SimTime now, int64_t cumulative) {
  if (!started_) {
    started_ = true;
    window_start_ = now;
    last_count_ = cumulative;
    return;
  }
  int64_t windows = (now - window_start_) / window_;
  if (windows <= 0) {
    return;
  }
  // Spread the delta evenly over every window crossed (see header): a
  // sample arriving after a long gap closes all intervening windows with
  // equal rates rather than one spike and a run of zeros.
  double delta = static_cast<double>(cumulative - last_count_);
  double rate = delta / ToSec(window_) / static_cast<double>(windows);
  for (int64_t i = 0; i < windows; ++i) {
    rates_.push_back(rate);
  }
  last_count_ = cumulative;
  window_start_ += windows * window_;
}

double RateSeries::MaxRate() const {
  if (rates_.empty()) {
    return 0;
  }
  return *std::max_element(rates_.begin(), rates_.end());
}

double RateSeries::MeanRate() const {
  if (rates_.empty()) {
    return 0;
  }
  double sum = 0;
  for (double r : rates_) {
    sum += r;
  }
  return sum / static_cast<double>(rates_.size());
}

}  // namespace snap
