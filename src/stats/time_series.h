// Fixed-memory time-series: a windowed ring of buckets with power-of-two
// downsampling. A TimeSeries holds at most `max_buckets` buckets no matter
// how long the run is — when an append lands past the window, adjacent
// bucket pairs are merged and the bucket width doubles, so memory stays
// O(max_buckets) while the series keeps covering the entire run at
// progressively coarser (but still uniform) resolution. This is the
// dashboard primitive ROADMAP item 5 asks for: per-metric memory is a
// small constant, independent of run length or flow count, unlike the
// retired RateSeries whose vector grew one slot per window forever.
//
// Semantics. The series is a sequence of equal-width buckets starting at
// `origin`. Record(t, v) folds v into the bucket covering t (count/sum/
// min/max/last); Observe-style cumulative counters should be fed as
// deltas by the caller (Telemetry::SampleSeries does this). Appends must
// be non-decreasing in time — feeding sim time keeps that true by
// construction. Everything is integer arithmetic on int64 sim-time
// nanoseconds; exports are deterministic (byte-identical per seed).
#ifndef SRC_STATS_TIME_SERIES_H_
#define SRC_STATS_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time_types.h"

namespace snap {

class TimeSeries {
 public:
  struct Bucket {
    int64_t count = 0;  // samples folded into this bucket
    int64_t sum = 0;    // sum of sample values
    int64_t min = 0;    // min/max only meaningful when count > 0
    int64_t max = 0;
    int64_t last = 0;   // most recent sample value

    bool empty() const { return count == 0; }
    void Fold(int64_t value);
    void Merge(const Bucket& other);
  };

  // `initial_bucket_width`: finest resolution; doubles on every
  // downsample. `max_buckets` must be an even number >= 2 so pairwise
  // merging halves the occupancy exactly.
  explicit TimeSeries(SimDuration initial_bucket_width,
                      int max_buckets = 64);

  // Folds `value` into the bucket covering `t`. Time must be
  // non-decreasing across calls.
  void Record(SimTime t, int64_t value);

  // Accessors. Buckets are returned oldest-first; index i covers
  // [origin + i*width, origin + (i+1)*width).
  SimDuration bucket_width() const { return bucket_width_; }
  SimTime origin() const { return origin_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int max_buckets() const { return max_buckets_; }
  const Bucket& bucket(int i) const { return buckets_[i]; }
  int downsamples() const { return downsamples_; }
  int64_t total_count() const { return total_count_; }
  int64_t total_sum() const { return total_sum_; }

  // sum/width for bucket i, in units-per-second (rate view for
  // delta-fed counters).
  double RatePerSec(int i) const;
  double MaxRatePerSec() const;
  double MeanRatePerSec() const;

  // {"width_ns":...,"origin_ns":...,"downsamples":N,
  //  "buckets":[{"count":..,"sum":..,"min":..,"max":..,"last":..},...]}
  // Empty buckets serialize as {} to keep snapshots small. Byte-stable.
  std::string ToJson() const;

 private:
  // Halves occupancy by merging adjacent pairs; doubles bucket_width_.
  void Downsample();

  SimDuration bucket_width_;
  int max_buckets_;
  SimTime origin_ = 0;
  bool started_ = false;
  int downsamples_ = 0;
  int64_t total_count_ = 0;
  int64_t total_sum_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace snap

#endif  // SRC_STATS_TIME_SERIES_H_
