// Log-linear histogram (HdrHistogram-style) for latency and size
// distributions. Values are bucketed with bounded relative error
// (~1/32 per bucket), supporting fast Record() on the data plane and
// percentile queries for reporting.
#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace snap {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void RecordN(int64_t value, int64_t count);

  // Merge another histogram's samples into this one.
  void Merge(const Histogram& other);

  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  double Sum() const { return sum_; }

  // Value at percentile p in [0, 100]. Returns an upper bound of the bucket
  // containing the requested rank (standard HDR convention).
  int64_t Percentile(double p) const;

  int64_t P50() const { return Percentile(50); }
  int64_t P90() const { return Percentile(90); }
  int64_t P99() const { return Percentile(99); }
  int64_t P999() const { return Percentile(99.9); }

  // Human-readable one-line summary, values interpreted as nanoseconds.
  std::string SummaryNs() const;

  // Full distribution as JSON: summary fields plus every non-empty bucket
  // as [upper_bound, count] pairs in value order. Telemetry snapshots embed
  // this so exports carry whole distributions, not just point percentiles.
  std::string ToJson() const;

 private:
  // 32 linear sub-buckets per power-of-two magnitude.
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMagnitudes = 64 - kSubBucketBits;

  static int BucketIndex(int64_t value);
  static int64_t BucketUpperBound(int index);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace snap

#endif  // SRC_STATS_HISTOGRAM_H_
