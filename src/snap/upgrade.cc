#include "src/snap/upgrade.h"

#include "src/util/logging.h"

namespace snap {

void UpgradeManager::StartUpgrade(SnapInstance* from, SnapInstance* to,
                                  std::function<void(const Result&)> done) {
  auto m = std::make_shared<Migration>();
  m->from = from;
  m->to = to;
  m->done = std::move(done);
  m->start_time = sim_->now();
  for (const auto& [name, record] : from->engines()) {
    m->pending.push_back(name);
  }
  MigrateNext(std::move(m));
}

SimDuration UpgradeManager::SerializeCost(
    const Engine::StateFootprint& fp) const {
  return params_.per_flow_cost * fp.flows +
         params_.per_stream_cost * fp.streams +
         params_.per_region_cost * fp.regions;
}

void UpgradeManager::MigrateNext(std::shared_ptr<Migration> m) {
  if (m->pending.empty()) {
    // All engines transferred: the old Snap is terminated.
    m->result.total = sim_->now() - m->start_time;
    m->result.ok = true;
    if (m->done) {
      m->done(m->result);
    }
    return;
  }
  std::string name = m->pending.front();
  m->pending.erase(m->pending.begin());

  Engine* old_engine = m->from->engine(name);
  if (old_engine == nullptr) {
    SNAP_LOG(WARNING) << "engine " << name << " vanished before migration";
    MigrateNext(std::move(m));
    return;
  }
  auto it = m->from->engines().find(name);
  std::string module_name = it->second.module_name;
  std::string group_name = it->second.group_name;

  // --- Brownout: background transfer of control connections and shared
  // memory fd handles while the old engine keeps running. ---
  Engine::StateFootprint fp = old_engine->Footprint();
  int64_t control_bytes =
      64 * 1024 + 256 * (fp.flows + fp.streams + fp.regions);
  SimDuration brownout = static_cast<SimDuration>(
      static_cast<double>(control_bytes) / params_.brownout_bytes_per_sec *
      1e9);

  uint64_t span_id = ++next_span_id_;
  if (TraceRecorder* tracer = sim_->tracer()) {
    tracer->AsyncBegin(sim_->now(), span_id, "brownout", "upgrade",
                       TraceArgStr("engine", name));
  }

  sim_->Schedule(brownout, [this, m, name, module_name, group_name, fp,
                            brownout, span_id]() mutable {
    // --- Blackout: cease packet processing, detach RX filters, serialize.
    SimTime blackout_start = sim_->now();
    if (TraceRecorder* tracer = sim_->tracer()) {
      tracer->AsyncEnd(blackout_start, span_id, "brownout", "upgrade");
    }
    std::unique_ptr<Engine> old_engine = m->from->ExtractEngine(name);
    if (old_engine == nullptr) {
      MigrateNext(std::move(m));
      return;
    }
    if (TraceRecorder* tracer = sim_->tracer()) {
      tracer->AsyncBegin(blackout_start, span_id, "blackout", "upgrade",
                         TraceArgStr("engine", name));
    }
    old_engine->Detach();
    auto writer = std::make_shared<StateWriter>();
    old_engine->SerializeState(writer.get());
    SimDuration transfer = params_.blackout_fixed + SerializeCost(fp);

    // Keep the old engine alive (quiesced) until the new engine adopts its
    // external attachments.
    auto old_holder =
        std::make_shared<std::unique_ptr<Engine>>(std::move(old_engine));
    sim_->Schedule(transfer, [this, m, name, module_name, group_name, fp,
                              brownout, writer, old_holder, blackout_start,
                              span_id]() mutable {
      Module* module = m->to->module(module_name);
      SNAP_CHECK(module != nullptr)
          << "new instance missing module " << module_name;
      StateReader reader(writer->buffer());
      std::unique_ptr<Engine> fresh =
          module->RestoreEngine(name, &reader, old_holder->get());
      fresh->Attach();
      Status st = m->to->AdoptEngine(std::move(fresh), module_name,
                                     group_name);
      SNAP_CHECK_OK(st);
      SimDuration blackout = sim_->now() - blackout_start;
      blackout_hist_.Record(blackout);
      if (TraceRecorder* tracer = sim_->tracer()) {
        tracer->AsyncEnd(sim_->now(), span_id, "blackout", "upgrade");
      }
      EngineResult er;
      er.engine_name = name;
      er.brownout = brownout;
      er.blackout = blackout;
      er.state_bytes = writer->size_bytes();
      er.footprint = fp;
      m->result.engines.push_back(er);
      old_holder->reset();
      MigrateNext(std::move(m));
    });
  });
}

}  // namespace snap
