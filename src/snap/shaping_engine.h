// A traffic-shaping engine: the non-Pony engine example from Figure 2
// ("pacing and rate limiting ('shaping') for bandwidth enforcement"). It
// pulls packets from an input ring (modeling the kernel packet-injection
// driver of Section 2: "a subset of host kernel traffic that needs
// Snap-implemented traffic shaping policies applied"), runs them through a
// Click-style pipeline (ACL -> counter -> token-bucket shaper), and
// transmits onto the NIC.
#ifndef SRC_SNAP_SHAPING_ENGINE_H_
#define SRC_SNAP_SHAPING_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/net/nic.h"
#include "src/qos/tenant.h"
#include "src/queue/spsc_ring.h"
#include "src/sim/substrate.h"
#include "src/snap/elements.h"
#include "src/snap/engine.h"

namespace snap {

class Telemetry;

class ShapingEngine : public Engine {
 public:
  struct Options {
    double rate_bytes_per_sec = 1.25e9;  // 10 Gbps default policy
    int64_t burst_bytes = 256 * 1024;
    size_t shaper_queue_packets = 1024;
    size_t input_ring_entries = 1024;
    int batch = 16;
    SimDuration per_packet_cost = 150 * kNsec;
    // QoS: classifies injected packets into tenants (src/qos/tenant.h);
    // the tag rides the packet through the NIC's per-tenant WFQ when
    // Nic::EnableQosTx is on. Null = everything stays on tenant 0.
    std::function<qos::TenantId(const Packet&)> tenant_classifier;
    // Optional, for display names in exported telemetry.
    const qos::TenantRegistry* tenants = nullptr;
  };

  ShapingEngine(std::string name, Substrate* sim, Nic* nic,
                const Options& options);

  // Producer side (kernel packet ring). Returns false when full.
  bool Inject(PacketPtr packet);

  PollResult Poll(SimTime now, SimDuration budget_ns) override;
  bool HasWork(SimTime now) const override;
  SimDuration QueueingDelay(SimTime now) const override;

  AclElement* acl() { return acl_; }
  CounterElement* counter() { return counter_; }
  RateLimiterElement* shaper() { return shaper_; }

  struct Stats {
    int64_t injected = 0;
    int64_t transmitted = 0;
    int64_t input_drops = 0;
  };
  const Stats& stats() const { return stats_; }

  // Per-tenant shaping counters (populated only when a classifier is set).
  struct TenantShapeStats {
    int64_t injected = 0;
    int64_t injected_bytes = 0;
    int64_t transmitted = 0;
    int64_t transmitted_bytes = 0;
  };
  const std::map<qos::TenantId, TenantShapeStats>& tenant_stats() const {
    return tenant_stats_;
  }
  // Emits qos counters as `<prefix>/<tenant>/shaper_*`.
  void ExportQosStats(Telemetry* telemetry, const std::string& prefix) const;

 private:
  void RecordTenantTx(qos::TenantId tenant, int64_t wire_bytes);

  Substrate* sim_;
  Nic* nic_;
  Options options_;
  EventHandle wake_timer_;
  SpscRing<PacketPtr> input_;
  Pipeline pipeline_;
  // Owned by pipeline_; cached for stats/config access.
  AclElement* acl_;
  CounterElement* counter_;
  RateLimiterElement* shaper_;
  SimTime oldest_input_ = kSimTimeNever;
  Stats stats_;
  std::map<qos::TenantId, TenantShapeStats> tenant_stats_;
};

}  // namespace snap

#endif  // SRC_SNAP_SHAPING_ENGINE_H_
