#include "src/snap/virtual_switch.h"

#include "src/util/logging.h"

namespace snap {

bool GuestVnic::Send(uint32_t dst_vm, int payload_bytes,
                     std::vector<uint8_t> data) {
  auto packet = std::make_unique<Packet>();
  packet->proto = WireProtocol::kEncap;
  packet->virt_src_vm = vm_id_;
  packet->virt_dst_vm = dst_vm;
  packet->payload_bytes = payload_bytes;
  packet->wire_bytes = payload_bytes + 64;  // inner headers
  packet->data = std::move(data);
  if (!tx_.TryPush(std::move(packet))) {
    ++stats_.tx_ring_full;
    return false;
  }
  ++stats_.tx_packets;
  if (doorbell_) {
    doorbell_();
  }
  return true;
}

PacketPtr GuestVnic::Receive() {
  auto packet = rx_.TryPop();
  if (!packet.has_value()) {
    return nullptr;
  }
  return std::move(*packet);
}

VirtualSwitchEngine::VirtualSwitchEngine(std::string name, Substrate* sim,
                                         Nic* nic, uint32_t engine_id,
                                         const Options& options)
    : Engine(std::move(name)),
      sim_(sim),
      nic_(nic),
      engine_id_(engine_id),
      options_(options) {
  rx_ = nic_->CreateRxQueue();
  rx_->DisableInterrupts();
  VirtualSwitchEngine* self = this;
  rx_->SetPollWatcher([self] { self->NotifyWork(); });
  auto acl = std::make_unique<AclElement>("guest_acl");
  acl_ = acl.get();
  policy_.Append(std::move(acl));
  Attach();
}

VirtualSwitchEngine::~VirtualSwitchEngine() {
  wake_timer_.Cancel();
  if (attached_) {
    (void)nic_->RemoveSteeringFilter(engine_id_);
  }
}

void VirtualSwitchEngine::Attach() {
  if (!attached_) {
    SNAP_CHECK_OK(nic_->InstallSteeringFilter(engine_id_, rx_));
    attached_ = true;
  }
}

void VirtualSwitchEngine::Detach() {
  if (attached_) {
    SNAP_CHECK_OK(nic_->RemoveSteeringFilter(engine_id_));
    attached_ = false;
  }
  wake_timer_.Cancel();
}

GuestVnic* VirtualSwitchEngine::AddGuest(uint32_t vm_id) {
  auto guest = std::make_unique<GuestVnic>(vm_id, options_.ring_entries);
  GuestVnic* raw = guest.get();
  VirtualSwitchEngine* self = this;
  raw->doorbell_ = [self] { self->NotifyWork(); };
  guests_[vm_id] = std::move(guest);
  if (options_.guest_rate_bytes_per_sec > 0) {
    shapers_[vm_id] = std::make_unique<RateLimiterElement>(
        "guest" + std::to_string(vm_id),
        options_.guest_rate_bytes_per_sec, options_.guest_burst_bytes,
        options_.ring_entries);
  }
  return raw;
}

void VirtualSwitchEngine::AddRoute(uint32_t vm_id, int host,
                                   uint32_t remote_engine_id) {
  routes_[vm_id] = Route{host, remote_engine_id};
}

void VirtualSwitchEngine::DeliverToGuest(uint32_t vm_id, PacketPtr packet) {
  auto it = guests_.find(vm_id);
  if (it == guests_.end()) {
    ++stats_.no_route_drops;
    return;
  }
  GuestVnic& guest = *it->second;
  if (!guest.rx_.TryPush(std::move(packet))) {
    ++guest.stats_.rx_ring_full;
    ++stats_.guest_rx_drops;
    return;
  }
  ++guest.stats_.rx_packets;
}

void VirtualSwitchEngine::SwitchPacket(PacketPtr packet, SimTime now,
                                       SimDuration* cost) {
  *cost += options_.per_packet_cost;
  // Policy: ACL on inner addresses (src/dst vm ids ride the host fields
  // for element compatibility).
  packet->src_host = static_cast<int>(packet->virt_src_vm);
  packet->dst_host = static_cast<int>(packet->virt_dst_vm);
  Pipeline::RunResult verdict = policy_.Run(now, packet);
  *cost += verdict.cpu_ns;
  if (verdict.verdict == ElementVerdict::kDrop) {
    ++stats_.acl_drops;
    return;
  }
  // Per-guest egress shaping.
  auto shaper_it = shapers_.find(packet->virt_src_vm);
  if (shaper_it != shapers_.end()) {
    ElementVerdict v = shaper_it->second->Process(now, packet);
    if (v == ElementVerdict::kDrop) {
      ++stats_.shaped_drops;
      return;
    }
    if (v == ElementVerdict::kConsume) {
      return;  // queued in the shaper; released on a later poll
    }
  }
  uint32_t dst_vm = packet->virt_dst_vm;
  if (guests_.count(dst_vm) > 0) {
    // Same-host VM-to-VM: no wire involved.
    ++stats_.switched_local;
    DeliverToGuest(dst_vm, std::move(packet));
    return;
  }
  auto route = routes_.find(dst_vm);
  if (route == routes_.end()) {
    ++stats_.no_route_drops;
    return;
  }
  // Encapsulate: outer fabric header addressed to the peer host's
  // virtual-switch engine.
  packet->src_host = nic_->host_id();
  packet->dst_host = route->second.host;
  packet->steering_hash = route->second.remote_engine;
  packet->wire_bytes += options_.encap_bytes;
  ++stats_.encapsulated;
  nic_->Transmit(std::move(packet));
}

Engine::PollResult VirtualSwitchEngine::Poll(SimTime now,
                                             SimDuration budget_ns) {
  PollResult result;
  // Fabric ingress: decapsulate and deliver to local guests.
  for (int i = 0; i < options_.batch && result.cpu_ns < budget_ns; ++i) {
    PacketPtr packet = rx_->Poll();
    if (packet == nullptr) {
      break;
    }
    result.cpu_ns += options_.per_packet_cost;
    ++result.work_items;
    packet->wire_bytes -= options_.encap_bytes;
    ++stats_.decapsulated;
    // Read the destination before the move (argument evaluation order).
    uint32_t dst_vm = packet->virt_dst_vm;
    DeliverToGuest(dst_vm, std::move(packet));
  }
  // Shaped packets whose release time arrived.
  for (auto& [vm, shaper] : shapers_) {
    result.work_items += shaper->Release(now, [&](PacketPtr released) {
      result.cpu_ns += options_.per_packet_cost;
      // Re-run the switching decision (policy already passed).
      uint32_t dst_vm = released->virt_dst_vm;
      if (guests_.count(dst_vm) > 0) {
        ++stats_.switched_local;
        DeliverToGuest(dst_vm, std::move(released));
        return;
      }
      auto route = routes_.find(dst_vm);
      if (route == routes_.end()) {
        ++stats_.no_route_drops;
        return;
      }
      released->src_host = nic_->host_id();
      released->dst_host = route->second.host;
      released->steering_hash = route->second.remote_engine;
      released->wire_bytes += options_.encap_bytes;
      ++stats_.encapsulated;
      nic_->Transmit(std::move(released));
    });
  }
  // Guest egress rings, round-robin.
  if (!guests_.empty()) {
    size_t n = guests_.size();
    auto it = guests_.begin();
    std::advance(it, guest_cursor_ % n);
    for (size_t visited = 0; visited < n && result.cpu_ns < budget_ns;
         ++visited, ++it) {
      if (it == guests_.end()) {
        it = guests_.begin();
      }
      for (int i = 0; i < options_.batch && result.cpu_ns < budget_ns;
           ++i) {
        auto packet = it->second->tx_.TryPop();
        if (!packet.has_value()) {
          break;
        }
        ++result.work_items;
        SwitchPacket(std::move(*packet), now, &result.cpu_ns);
      }
    }
    guest_cursor_ = (guest_cursor_ + 1) % n;
  }
  // Wake timer for shaped packets waiting on tokens.
  wake_timer_.Cancel();
  SimTime earliest = kSimTimeNever;
  for (auto& [vm, shaper] : shapers_) {
    earliest = std::min(earliest, shaper->NextReleaseTime());
  }
  if (earliest != kSimTimeNever && earliest > now) {
    VirtualSwitchEngine* self = this;
    wake_timer_ =
        sim_->ScheduleAt(earliest, [self] { self->NotifyWork(); });
  }
  return result;
}

bool VirtualSwitchEngine::HasWork(SimTime now) const {
  if (rx_->pending() > 0) {
    return true;
  }
  for (const auto& [vm, guest] : guests_) {
    if (!guest->tx_.empty()) {
      return true;
    }
  }
  for (const auto& [vm, shaper] : shapers_) {
    if (shaper->queued() > 0 && shaper->NextReleaseTime() <= now) {
      return true;
    }
  }
  return false;
}

SimDuration VirtualSwitchEngine::QueueingDelay(SimTime now) const {
  SimDuration worst = 0;
  SimTime oldest = rx_->OldestArrival();
  if (oldest != kSimTimeNever) {
    worst = std::max(worst, now - oldest);
  }
  for (const auto& [vm, shaper] : shapers_) {
    worst = std::max(worst, shaper->QueueingDelay(now));
  }
  return worst;
}

Engine::StateFootprint VirtualSwitchEngine::Footprint() const {
  StateFootprint fp;
  fp.flows = static_cast<int64_t>(routes_.size());
  fp.streams = static_cast<int64_t>(guests_.size());
  return fp;
}

void VirtualSwitchEngine::SerializeState(StateWriter* w) const {
  w->BeginSection("virtual_switch");
  w->PutU32(engine_id_);
  w->PutU32(static_cast<uint32_t>(routes_.size()));
  for (const auto& [vm, route] : routes_) {
    w->PutU32(vm);
    w->PutI64(route.host);
    w->PutU32(route.remote_engine);
  }
}

void VirtualSwitchEngine::DeserializeState(StateReader* r) {
  r->ExpectSection("virtual_switch");
  engine_id_ = r->GetU32();
  uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t vm = r->GetU32();
    Route route;
    route.host = static_cast<int>(r->GetI64());
    route.remote_engine = r->GetU32();
    routes_[vm] = route;
  }
}

}  // namespace snap
