// Network-virtualization engine (Figure 2: "engines are shown handling all
// guest VM I/O traffic"; the paper cites Andromeda for the dataplane).
//
// Guests attach virtual NICs (lock-free TX/RX rings in shared memory). The
// engine switches guest egress: destinations on the same host are delivered
// VM-to-VM without touching the wire; remote destinations are encapsulated
// (outer fabric header addressed to the peer host's virtual-switch engine)
// and transmitted. Per-guest policy — ACL and egress rate limiting — is
// applied with the same Click-style elements as the shaping engine.
#ifndef SRC_SNAP_VIRTUAL_SWITCH_H_
#define SRC_SNAP_VIRTUAL_SWITCH_H_

#include <map>
#include <memory>
#include <string>

#include "src/net/nic.h"
#include "src/queue/spsc_ring.h"
#include "src/sim/substrate.h"
#include "src/snap/elements.h"
#include "src/snap/engine.h"

namespace snap {

// A guest VM's virtual NIC: two rings shared with the engine.
class GuestVnic {
 public:
  GuestVnic(uint32_t vm_id, size_t ring_entries)
      : vm_id_(vm_id), tx_(ring_entries), rx_(ring_entries) {}

  uint32_t vm_id() const { return vm_id_; }

  // Guest side: send a packet to another VM on the virtual network.
  // Returns false when the TX ring is full.
  bool Send(uint32_t dst_vm, int payload_bytes,
            std::vector<uint8_t> data = {});
  // Guest side: receive the next delivered packet (nullptr when empty).
  PacketPtr Receive();
  int pending_rx() const { return static_cast<int>(rx_.size()); }

  struct Stats {
    int64_t tx_packets = 0;
    int64_t tx_ring_full = 0;
    int64_t rx_packets = 0;
    int64_t rx_ring_full = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class VirtualSwitchEngine;

  uint32_t vm_id_;
  SpscRing<PacketPtr> tx_;
  SpscRing<PacketPtr> rx_;
  std::function<void()> doorbell_;  // wakes the hosting engine
  Stats stats_;
};

class VirtualSwitchEngine : public Engine {
 public:
  struct Options {
    size_t ring_entries = 512;
    int batch = 16;
    SimDuration per_packet_cost = 220 * kNsec;  // lookup + encap/decap
    int encap_bytes = 46;                       // outer headers
    // Per-guest egress rate limit (0 = unlimited).
    double guest_rate_bytes_per_sec = 0;
    int64_t guest_burst_bytes = 128 * 1024;
  };

  VirtualSwitchEngine(std::string name, Substrate* sim, Nic* nic,
                      uint32_t engine_id, const Options& options);
  ~VirtualSwitchEngine() override;

  // Control plane: attaches a guest VM. The engine owns the vNIC.
  GuestVnic* AddGuest(uint32_t vm_id);
  // Control plane: vm -> (physical host, remote switch engine steering key).
  void AddRoute(uint32_t vm_id, int host, uint32_t remote_engine_id);

  uint32_t engine_id() const { return engine_id_; }

  // --- Engine interface ---
  PollResult Poll(SimTime now, SimDuration budget_ns) override;
  bool HasWork(SimTime now) const override;
  SimDuration QueueingDelay(SimTime now) const override;

  // --- Upgrade hooks ---
  void Detach() override;
  void Attach() override;
  void SerializeState(StateWriter* w) const override;
  void DeserializeState(StateReader* r) override;
  StateFootprint Footprint() const override;

  struct Stats {
    int64_t switched_local = 0;   // VM-to-VM on this host
    int64_t encapsulated = 0;     // sent onto the fabric
    int64_t decapsulated = 0;     // received from the fabric
    int64_t no_route_drops = 0;
    int64_t guest_rx_drops = 0;   // guest RX ring full
    int64_t acl_drops = 0;
    int64_t shaped_drops = 0;
  };
  const Stats& stats() const { return stats_; }
  AclElement* acl() { return acl_; }

 private:
  struct Route {
    int host = -1;
    uint32_t remote_engine = 0;
  };

  // Moves one guest-egress packet through policy + switching.
  void SwitchPacket(PacketPtr packet, SimTime now, SimDuration* cost);
  void DeliverToGuest(uint32_t vm_id, PacketPtr packet);

  Substrate* sim_;
  Nic* nic_;
  uint32_t engine_id_;
  Options options_;
  RxQueue* rx_ = nullptr;
  bool attached_ = false;
  std::map<uint32_t, std::unique_ptr<GuestVnic>> guests_;
  std::map<uint32_t, Route> routes_;
  Pipeline policy_;
  AclElement* acl_ = nullptr;
  std::map<uint32_t, std::unique_ptr<RateLimiterElement>> shapers_;
  EventHandle wake_timer_;
  size_t guest_cursor_ = 0;
  Stats stats_;
};

}  // namespace snap

#endif  // SRC_SNAP_VIRTUAL_SWITCH_H_
