// Typed state serialization for transparent upgrades (Section 4): "the
// running version of Snap serializes all state to an intermediate format
// stored in memory shared with a new version".
//
// The format is a flat, tagged, little-endian byte stream. Tags catch
// reader/writer schema skew immediately (a deliberate property: upgrades
// across incompatible state layouts must fail loudly in testing, not
// corrupt engines in production).
#ifndef SRC_SNAP_STATE_CODEC_H_
#define SRC_SNAP_STATE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/logging.h"
#include "src/util/status.h"

namespace snap {

class StateWriter {
 public:
  void PutU64(uint64_t v) { PutScalar(Tag::kU64, v); }
  void PutI64(int64_t v) { PutScalar(Tag::kI64, v); }
  void PutU32(uint32_t v) { PutScalar(Tag::kU32, v); }
  void PutU16(uint16_t v) { PutScalar(Tag::kU16, v); }
  void PutU8(uint8_t v) { PutScalar(Tag::kU8, v); }
  void PutBool(bool v) { PutScalar(Tag::kBool, static_cast<uint8_t>(v)); }
  void PutDouble(double v) { PutScalar(Tag::kDouble, v); }

  void PutString(const std::string& s) {
    PutTag(Tag::kString);
    PutRaw(static_cast<uint32_t>(s.size()));
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  void PutBytes(const std::vector<uint8_t>& b) {
    PutTag(Tag::kBytes);
    PutRaw(static_cast<uint32_t>(b.size()));
    buffer_.insert(buffer_.end(), b.begin(), b.end());
  }

  // Marks the start of a named section (aids debugging and enforces
  // structural agreement between serializer and deserializer).
  void BeginSection(const std::string& name) {
    PutTag(Tag::kSection);
    PutRaw(static_cast<uint32_t>(name.size()));
    buffer_.insert(buffer_.end(), name.begin(), name.end());
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  size_t size_bytes() const { return buffer_.size(); }

 private:
  friend class StateReader;

  enum class Tag : uint8_t {
    kU64 = 1,
    kI64,
    kU32,
    kU16,
    kU8,
    kBool,
    kDouble,
    kString,
    kBytes,
    kSection,
  };

  void PutTag(Tag t) { buffer_.push_back(static_cast<uint8_t>(t)); }

  template <typename T>
  void PutRaw(T v) {
    size_t pos = buffer_.size();
    buffer_.resize(pos + sizeof(T));
    std::memcpy(buffer_.data() + pos, &v, sizeof(T));
  }

  template <typename T>
  void PutScalar(Tag t, T v) {
    PutTag(t);
    PutRaw(v);
  }

  std::vector<uint8_t> buffer_;
};

class StateReader {
 public:
  explicit StateReader(const std::vector<uint8_t>& buffer)
      : buffer_(buffer) {}

  uint64_t GetU64() { return GetScalar<uint64_t>(StateWriter::Tag::kU64); }
  int64_t GetI64() { return GetScalar<int64_t>(StateWriter::Tag::kI64); }
  uint32_t GetU32() { return GetScalar<uint32_t>(StateWriter::Tag::kU32); }
  uint16_t GetU16() { return GetScalar<uint16_t>(StateWriter::Tag::kU16); }
  uint8_t GetU8() { return GetScalar<uint8_t>(StateWriter::Tag::kU8); }
  bool GetBool() {
    return GetScalar<uint8_t>(StateWriter::Tag::kBool) != 0;
  }
  double GetDouble() {
    return GetScalar<double>(StateWriter::Tag::kDouble);
  }

  std::string GetString() {
    ExpectTag(StateWriter::Tag::kString);
    uint32_t len = GetRaw<uint32_t>();
    std::string s(reinterpret_cast<const char*>(Cursor(len)), len);
    pos_ += len;
    return s;
  }

  std::vector<uint8_t> GetBytes() {
    ExpectTag(StateWriter::Tag::kBytes);
    uint32_t len = GetRaw<uint32_t>();
    std::vector<uint8_t> b(Cursor(len), Cursor(len) + len);
    pos_ += len;
    return b;
  }

  void ExpectSection(const std::string& name) {
    ExpectTag(StateWriter::Tag::kSection);
    uint32_t len = GetRaw<uint32_t>();
    std::string s(reinterpret_cast<const char*>(Cursor(len)), len);
    pos_ += len;
    SNAP_CHECK_EQ(s, name) << "state section mismatch";
  }

  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  const uint8_t* Cursor(size_t need) const {
    SNAP_CHECK_LE(pos_ + need, buffer_.size()) << "state underrun";
    return buffer_.data() + pos_;
  }

  void ExpectTag(StateWriter::Tag expected) {
    uint8_t t = *Cursor(1);
    ++pos_;
    SNAP_CHECK_EQ(static_cast<int>(t), static_cast<int>(expected))
        << "state tag mismatch at offset " << pos_ - 1;
  }

  template <typename T>
  T GetRaw() {
    T v;
    std::memcpy(&v, Cursor(sizeof(T)), sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  T GetScalar(StateWriter::Tag tag) {
    ExpectTag(tag);
    return GetRaw<T>();
  }

  const std::vector<uint8_t>& buffer_;
  size_t pos_ = 0;
};

}  // namespace snap

#endif  // SRC_SNAP_STATE_CODEC_H_
