// Snap control plane (Section 2.3): modules set up control-plane services,
// instantiate engines, load them into engine groups, and proxy user setup
// interactions. Control components synchronize with engines only through
// the lock-free engine mailbox.
//
// A SnapInstance models one Snap process (one release version) on a host;
// transparent upgrade migrates engines between two instances
// (src/snap/upgrade.h).
#ifndef SRC_SNAP_CONTROL_H_
#define SRC_SNAP_CONTROL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/nic.h"
#include "src/sim/cpu.h"
#include "src/snap/engine.h"
#include "src/snap/engine_group.h"
#include "src/util/status.h"

namespace snap {

class SnapInstance;

// A Snap module (e.g. the "Pony module"): authenticates users, creates
// engines, and services control RPCs for them.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  const std::string& name() const { return name_; }

  // Creates a fresh engine.
  virtual std::unique_ptr<Engine> CreateEngine(
      const std::string& engine_name) = 0;

  // Upgrade path: creates an engine of the new version restoring serialized
  // state; `old_engine` (still quiesced in the old instance) lets the
  // module move external attachments (client channels, NIC queues).
  virtual std::unique_ptr<Engine> RestoreEngine(
      const std::string& engine_name, StateReader* state,
      Engine* old_engine) {
    auto e = CreateEngine(engine_name);
    e->DeserializeState(state);
    return e;
  }

  void set_instance(SnapInstance* instance) { instance_ = instance; }
  SnapInstance* instance() { return instance_; }

 private:
  std::string name_;
  SnapInstance* instance_ = nullptr;
};

class SnapInstance {
 public:
  struct EngineRecord {
    std::unique_ptr<Engine> engine;
    std::string module_name;
    std::string group_name;
  };

  SnapInstance(std::string version, Simulator* sim, CpuScheduler* sched,
               Nic* nic);

  // Registers a module; the instance owns it.
  Module* RegisterModule(std::unique_ptr<Module> module);
  Module* module(const std::string& name);

  // Creates an engine group with the given scheduling mode.
  EngineGroup* CreateGroup(const std::string& name,
                           const EngineGroup::Options& options);
  EngineGroup* group(const std::string& name);

  // Control RPC surface: creates an engine through `module_name` and loads
  // it into `group_name`.
  StatusOr<Engine*> CreateEngine(const std::string& module_name,
                                 const std::string& engine_name,
                                 const std::string& group_name);

  // Detaches an engine from its group and releases it to the caller
  // (used by upgrade to take ownership of a quiesced engine).
  std::unique_ptr<Engine> ExtractEngine(const std::string& engine_name);

  // Adopts an already-built engine (upgrade restore path).
  Status AdoptEngine(std::unique_ptr<Engine> engine,
                     const std::string& module_name,
                     const std::string& group_name);

  Engine* engine(const std::string& name);
  const std::map<std::string, EngineRecord>& engines() const {
    return engines_;
  }

  // Posts control work to an engine's mailbox, retrying (with backoff in
  // simulated time) while the mailbox is occupied.
  void PostToEngine(Engine* engine, EngineMailbox::WorkItem work);

  const std::string& version() const { return version_; }
  Simulator* sim() { return sim_; }
  CpuScheduler* sched() { return sched_; }
  Nic* nic() { return nic_; }

  // Total Snap CPU across all engine groups.
  int64_t TotalEngineCpuNs() const;

 private:
  void PostToEngineRetry(Engine* engine,
                         std::shared_ptr<EngineMailbox::WorkItem> work);

  std::string version_;
  Simulator* sim_;
  CpuScheduler* sched_;
  Nic* nic_;
  std::map<std::string, std::unique_ptr<Module>> modules_;
  std::map<std::string, std::unique_ptr<EngineGroup>> groups_;
  std::map<std::string, EngineRecord> engines_;
};

}  // namespace snap

#endif  // SRC_SNAP_CONTROL_H_
