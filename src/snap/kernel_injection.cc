#include "src/snap/kernel_injection.h"

namespace snap {

KernelInjectionDriver::KernelInjectionDriver(KernelStack* kstack,
                                             ShapingEngine* engine)
    : kstack_(kstack), engine_(engine), attached_(true) {
  KernelInjectionDriver* self = this;
  kstack_->SetEgressDivert([self](PacketPtr packet) {
    ++self->stats_.diverted;
    if (!self->engine_->Inject(std::move(packet))) {
      ++self->stats_.drops;
      return false;
    }
    return true;
  });
}

KernelInjectionDriver::~KernelInjectionDriver() { Detach(); }

void KernelInjectionDriver::Detach() {
  if (attached_) {
    kstack_->SetEgressDivert(nullptr);
    attached_ = false;
  }
}

}  // namespace snap
