// Click-style pluggable packet-processing elements (Section 2.2: Snap
// exposes "a library of Click-style pluggable 'elements' to construct
// packet processing pipelines").
//
// An Element processes one packet at a time and either passes it on,
// consumes it, or drops it. A Pipeline chains elements; engines embed
// pipelines between their input queues and outputs. Implemented elements
// cover the network functions the paper names: ACL enforcement, rate
// limiting / traffic shaping (BwE-style), classification, counting, and
// CRC verification.
#ifndef SRC_SNAP_ELEMENTS_H_
#define SRC_SNAP_ELEMENTS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/packet/packet.h"
#include "src/qos/token_bucket.h"
#include "src/util/time_types.h"

namespace snap {

enum class ElementVerdict {
  kPass,     // continue down the pipeline
  kDrop,     // packet dropped (freed)
  kConsume,  // element took ownership (e.g. queued for shaping)
};

class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;

  // Processes `packet`; on kPass the packet stays owned by the caller.
  virtual ElementVerdict Process(SimTime now, PacketPtr& packet) = 0;

  // Per-packet modeled CPU cost of this element.
  virtual SimDuration cost_ns() const { return 25 * kNsec; }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

// Runs a packet through a chain of elements.
class Pipeline {
 public:
  void Append(std::unique_ptr<Element> element) {
    elements_.push_back(std::move(element));
  }

  struct RunResult {
    ElementVerdict verdict = ElementVerdict::kPass;
    SimDuration cpu_ns = 0;
  };

  RunResult Run(SimTime now, PacketPtr& packet);

  size_t size() const { return elements_.size(); }
  Element* element(size_t i) { return elements_[i].get(); }

 private:
  std::vector<std::unique_ptr<Element>> elements_;
};

// Counts packets and bytes.
class CounterElement : public Element {
 public:
  explicit CounterElement(std::string name) : Element(std::move(name)) {}

  ElementVerdict Process(SimTime now, PacketPtr& packet) override {
    ++packets_;
    bytes_ += packet->wire_bytes;
    return ElementVerdict::kPass;
  }

  int64_t packets() const { return packets_; }
  int64_t bytes() const { return bytes_; }

 private:
  int64_t packets_ = 0;
  int64_t bytes_ = 0;
};

// ACL enforcement: drops packets matching deny rules (src/dst host pairs).
class AclElement : public Element {
 public:
  explicit AclElement(std::string name) : Element(std::move(name)) {}

  void Deny(int src_host, int dst_host) {
    deny_.push_back({src_host, dst_host});
  }

  ElementVerdict Process(SimTime now, PacketPtr& packet) override;
  SimDuration cost_ns() const override {
    return 20 * kNsec + 5 * kNsec * static_cast<SimDuration>(deny_.size());
  }

  int64_t dropped() const { return dropped_; }

 private:
  struct Rule {
    int src;  // -1 = wildcard
    int dst;  // -1 = wildcard
  };
  std::vector<Rule> deny_;
  int64_t dropped_ = 0;
};

// Token-bucket rate limiter ("shaping" for bandwidth enforcement). Packets
// over the rate are queued and released as tokens refill; queue overflow
// drops. The bucket arithmetic lives in qos::TokenBucket, shared with the
// per-tenant admission control in PonyClient.
class RateLimiterElement : public Element {
 public:
  RateLimiterElement(std::string name, double rate_bytes_per_sec,
                     int64_t burst_bytes, size_t max_queue_packets);

  ElementVerdict Process(SimTime now, PacketPtr& packet) override;

  // Releases packets whose transmit time has arrived; passes them to `out`.
  // Returns the number released.
  int Release(SimTime now, const std::function<void(PacketPtr)>& out);

  // Earliest time a queued packet becomes eligible (kSimTimeNever if none).
  SimTime NextReleaseTime() const;

  size_t queued() const { return queue_.size(); }
  int64_t dropped() const { return dropped_; }
  SimDuration QueueingDelay(SimTime now) const {
    return queue_.empty() ? 0 : now - queue_.front().arrival;
  }

 private:
  qos::TokenBucket bucket_;
  size_t max_queue_;
  struct Queued {
    PacketPtr packet;
    SimTime arrival;
  };
  std::deque<Queued> queue_;
  int64_t dropped_ = 0;
};

// Steers packets into classes by predicate; used for QoS class selection.
class ClassifierElement : public Element {
 public:
  using Classify = std::function<int(const Packet&)>;

  ClassifierElement(std::string name, Classify fn)
      : Element(std::move(name)), fn_(std::move(fn)) {}

  ElementVerdict Process(SimTime now, PacketPtr& packet) override {
    last_class_ = fn_(*packet);
    ++class_counts_[last_class_];
    return ElementVerdict::kPass;
  }

  int last_class() const { return last_class_; }
  int64_t class_count(int c) const {
    auto it = class_counts_.find(c);
    return it == class_counts_.end() ? 0 : it->second;
  }

 private:
  Classify fn_;
  int last_class_ = 0;
  std::map<int, int64_t> class_counts_;
};

// Verifies the end-to-end CRC of Pony packets carrying real payload bytes.
class CrcCheckElement : public Element {
 public:
  explicit CrcCheckElement(std::string name) : Element(std::move(name)) {}

  ElementVerdict Process(SimTime now, PacketPtr& packet) override;
  SimDuration cost_ns() const override { return 40 * kNsec; }

  int64_t corrupt_drops() const { return corrupt_drops_; }

 private:
  int64_t corrupt_drops_ = 0;
};

}  // namespace snap

#endif  // SRC_SNAP_ELEMENTS_H_
