// The engine abstraction (Section 2.2): "stateful, single-threaded tasks
// that are scheduled and run by a Snap engine scheduling runtime."
//
// Engines never block; they are polled by their group's scheduler and
// communicate only through lock-free queues and the depth-1 mailbox.
// The interface deliberately exposes everything the three scheduling modes
// need: HasWork() for idle detection (spreading mode blocks on it),
// QueueingDelay() for the compacting scheduler's SLO-driven rebalancing,
// and the Serialize/Detach/Attach trio for transparent upgrades.
#ifndef SRC_SNAP_ENGINE_H_
#define SRC_SNAP_ENGINE_H_

#include <functional>
#include <string>

#include "src/queue/mailbox.h"
#include "src/snap/state_codec.h"
#include "src/util/time_types.h"

namespace snap {

class Histogram;

class Engine {
 public:
  struct PollResult {
    SimDuration cpu_ns = 0;  // modeled cost of this poll pass
    int work_items = 0;      // packets/operations processed
  };

  explicit Engine(std::string name) : name_(std::move(name)) {}
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs one bounded poll pass: service inputs, advance state machines,
  // produce outputs. Must respect `budget_ns` (engines "return control to
  // the scheduler within a fixed latency budget", Section 2.4).
  virtual PollResult Poll(SimTime now, SimDuration budget_ns) = 0;

  // True if a Poll right now would make progress.
  virtual bool HasWork(SimTime now) const = 0;

  // Age of the oldest item waiting on any input (0 when idle). Drives the
  // compacting scheduler's queueing-delay SLO.
  virtual SimDuration QueueingDelay(SimTime now) const { return 0; }

  // --- Transparent upgrade hooks (Section 4). ---
  // Stops packet reception (detach NIC steering filters). Blackout begins.
  virtual void Detach() {}
  // Serializes all engine state into the intermediate format.
  virtual void SerializeState(StateWriter* w) const {}
  // Restores state in a fresh engine of the new Snap instance.
  virtual void DeserializeState(StateReader* r) {}
  // Re-installs NIC filters and resumes. Blackout ends.
  virtual void Attach() {}
  // State size in (flows, streams, regions) units for blackout modeling.
  struct StateFootprint {
    int64_t flows = 0;
    int64_t streams = 0;
    int64_t regions = 0;
  };
  virtual StateFootprint Footprint() const { return {}; }

  const std::string& name() const { return name_; }
  EngineMailbox* mailbox() { return &mailbox_; }

  // Optional per-engine poll-duration histogram (telemetry:
  // "snap/<engine>/poll_ns"); groups install it when the engine is added.
  void set_poll_histogram(Histogram* h) { poll_hist_ = h; }
  Histogram* poll_histogram() const { return poll_hist_; }

  // Hosting scheduler's wake hook; producers call NotifyWork() when they
  // make the engine runnable (NIC interrupt, application doorbell, an
  // upstream engine's output queue).
  void SetWakeHook(std::function<void()> hook) { wake_hook_ = std::move(hook); }
  void NotifyWork() {
    if (wake_hook_) {
      wake_hook_();
    }
  }

  // Runs at most one pending mailbox item (call from the engine's thread
  // at the top of Poll). Returns the modeled cost.
  SimDuration RunMailbox() {
    if (mailbox_.RunPending()) {
      return kMailboxWorkCost;
    }
    return 0;
  }

 private:
  static constexpr SimDuration kMailboxWorkCost = 250 * kNsec;

  std::string name_;
  EngineMailbox mailbox_;
  std::function<void()> wake_hook_;
  Histogram* poll_hist_ = nullptr;
};

}  // namespace snap

#endif  // SRC_SNAP_ENGINE_H_
