// Kernel packet-injection driver (Section 2): "for use cases that
// integrate with existing kernel functionality, Snap supports an
// internally-developed driver for efficiently moving packets between Snap
// and the kernel."
//
// The driver owns a pair of lock-free packet rings shared between the host
// kernel stack and a Snap engine. Kernel egress traffic that matches the
// divert policy is pushed onto the TX ring instead of the NIC; the engine
// (typically a shaping engine, Figure 2's "host kernel traffic" path)
// applies its pipeline and forwards to the NIC. The reverse ring lets an
// engine hand packets up into the kernel stack.
#ifndef SRC_SNAP_KERNEL_INJECTION_H_
#define SRC_SNAP_KERNEL_INJECTION_H_

#include <functional>

#include "src/kernel/kstack.h"
#include "src/queue/spsc_ring.h"
#include "src/snap/shaping_engine.h"

namespace snap {

class KernelInjectionDriver {
 public:
  // Diverts the kernel stack's egress through `engine` (which forwards to
  // the NIC after applying its pipeline). Packets the engine-side ring
  // cannot absorb are dropped, exactly like a full qdisc.
  KernelInjectionDriver(KernelStack* kstack, ShapingEngine* engine);
  ~KernelInjectionDriver();

  KernelInjectionDriver(const KernelInjectionDriver&) = delete;
  KernelInjectionDriver& operator=(const KernelInjectionDriver&) = delete;

  // Detaches the divert hook; kernel traffic goes straight to the NIC
  // again (used when the engine is migrated away without a successor).
  void Detach();

  struct Stats {
    int64_t diverted = 0;
    int64_t drops = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  KernelStack* kstack_;
  ShapingEngine* engine_;
  bool attached_ = false;
  Stats stats_;
};

}  // namespace snap

#endif  // SRC_SNAP_KERNEL_INJECTION_H_
