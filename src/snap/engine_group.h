// Engine groups and the three engine scheduling modes (Section 2.4,
// Figure 3):
//
//  - Dedicating cores: engines pinned to reserved hyperthreads, spin
//    polling; fair-shared round-robin when CPU constrained.
//  - Spreading engines: one MicroQuanta thread per engine that blocks on
//    interrupt notification when idle and wakes to any available core.
//  - Compacting engines: work collapsed onto as few cores as possible; a
//    rebalancer polls engine queueing delays (Shenango-style) and scales
//    out / compacts within a latency SLO.
//
// Each mode is a set of SimTasks over the shared CPU model, so all the
// paper's scheduling effects (C-state wakeups, MicroQuanta vs CFS,
// antagonist interference) apply uniformly.
#ifndef SRC_SNAP_ENGINE_GROUP_H_
#define SRC_SNAP_ENGINE_GROUP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/model_params.h"
#include "src/snap/engine.h"
#include "src/stats/histogram.h"

namespace snap {

enum class SchedulingMode {
  kDedicatedCores,
  kSpreadingEngines,
  kCompactingEngines,
};

// Canonical names shared by the sim-side EngineGroup and the live
// scheduler (src/live/live_scheduler.h) — CLI flags, telemetry labels
// and BENCH json all use these strings.
inline const char* SchedulingModeName(SchedulingMode mode) {
  switch (mode) {
    case SchedulingMode::kDedicatedCores:
      return "dedicated";
    case SchedulingMode::kSpreadingEngines:
      return "spreading";
    case SchedulingMode::kCompactingEngines:
      return "compacting";
  }
  return "unknown";
}

// Returns true and sets *mode on a recognized name ("dedicated",
// "spreading", "compacting").
inline bool SchedulingModeFromString(const std::string& name,
                                     SchedulingMode* mode) {
  if (name == "dedicated") {
    *mode = SchedulingMode::kDedicatedCores;
  } else if (name == "spreading") {
    *mode = SchedulingMode::kSpreadingEngines;
  } else if (name == "compacting") {
    *mode = SchedulingMode::kCompactingEngines;
  } else {
    return false;
  }
  return true;
}

// Abstract engine group: owns the host SimTasks for its engines.
class EngineGroup {
 public:
  struct Options {
    SchedulingMode mode = SchedulingMode::kDedicatedCores;
    // Dedicated mode: cores to reserve (one engine task per core).
    std::vector<int> dedicated_cores;
    // Spreading/compacting: MicroQuanta bandwidth per task.
    SimDuration mq_runtime = 950 * kUsec;
    SimDuration mq_period = 1 * kMsec;
    // Figure 6(d) ablation: host spreading engines on CFS threads (at the
    // given weight, e.g. nice -20) instead of the MicroQuanta class.
    bool spreading_use_cfs = false;
    double spreading_cfs_weight = 4.0;
    // Compacting mode tuning.
    SimDuration compacting_slo = 40 * kUsec;
    SimDuration rebalance_interval = 10 * kUsec;
    int max_workers = 4;
    SimDuration idle_block_after = 500 * kUsec;
  };

  virtual ~EngineGroup() = default;

  // Adds an engine to the group (must be called before or during the run;
  // engines cannot move between groups except via upgrade).
  virtual void AddEngine(Engine* engine) = 0;
  // Removes an engine (upgrade migration). The engine stops being polled.
  virtual void RemoveEngine(Engine* engine) = 0;

  virtual const std::string& name() const = 0;

  // Total CPU consumed by this group's tasks.
  virtual int64_t CpuNs() const = 0;

  // Factory.
  static std::unique_ptr<EngineGroup> Create(std::string name,
                                             Substrate* sim,
                                             CpuScheduler* sched,
                                             const Options& options);
};

}  // namespace snap

#endif  // SRC_SNAP_ENGINE_GROUP_H_
