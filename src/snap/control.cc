#include "src/snap/control.h"

#include "src/util/logging.h"

namespace snap {

SnapInstance::SnapInstance(std::string version, Simulator* sim,
                           CpuScheduler* sched, Nic* nic)
    : version_(std::move(version)), sim_(sim), sched_(sched), nic_(nic) {}

Module* SnapInstance::RegisterModule(std::unique_ptr<Module> module) {
  module->set_instance(this);
  Module* raw = module.get();
  auto [it, inserted] = modules_.emplace(module->name(), std::move(module));
  SNAP_CHECK(inserted) << "duplicate module " << raw->name();
  return raw;
}

Module* SnapInstance::module(const std::string& name) {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second.get();
}

EngineGroup* SnapInstance::CreateGroup(const std::string& name,
                                       const EngineGroup::Options& options) {
  auto group = EngineGroup::Create(version_ + "/" + name, sim_, sched_,
                                   options);
  EngineGroup* raw = group.get();
  auto [it, inserted] = groups_.emplace(name, std::move(group));
  SNAP_CHECK(inserted) << "duplicate group " << name;
  return raw;
}

EngineGroup* SnapInstance::group(const std::string& name) {
  auto it = groups_.find(name);
  return it == groups_.end() ? nullptr : it->second.get();
}

StatusOr<Engine*> SnapInstance::CreateEngine(const std::string& module_name,
                                             const std::string& engine_name,
                                             const std::string& group_name) {
  Module* m = module(module_name);
  if (m == nullptr) {
    return NotFoundError("no module " + module_name);
  }
  EngineGroup* g = group(group_name);
  if (g == nullptr) {
    return NotFoundError("no group " + group_name);
  }
  if (engines_.count(engine_name) > 0) {
    return AlreadyExistsError("engine " + engine_name);
  }
  std::unique_ptr<Engine> engine = m->CreateEngine(engine_name);
  Engine* raw = engine.get();
  g->AddEngine(raw);
  engines_[engine_name] =
      EngineRecord{std::move(engine), module_name, group_name};
  return raw;
}

std::unique_ptr<Engine> SnapInstance::ExtractEngine(
    const std::string& engine_name) {
  auto it = engines_.find(engine_name);
  if (it == engines_.end()) {
    return nullptr;
  }
  EngineGroup* g = group(it->second.group_name);
  if (g != nullptr) {
    g->RemoveEngine(it->second.engine.get());
  }
  std::unique_ptr<Engine> engine = std::move(it->second.engine);
  engines_.erase(it);
  return engine;
}

Status SnapInstance::AdoptEngine(std::unique_ptr<Engine> engine,
                                 const std::string& module_name,
                                 const std::string& group_name) {
  EngineGroup* g = group(group_name);
  if (g == nullptr) {
    return NotFoundError("no group " + group_name);
  }
  if (engines_.count(engine->name()) > 0) {
    return AlreadyExistsError("engine " + engine->name());
  }
  Engine* raw = engine.get();
  std::string name = engine->name();
  engines_[name] = EngineRecord{std::move(engine), module_name, group_name};
  g->AddEngine(raw);
  return OkStatus();
}

Engine* SnapInstance::engine(const std::string& name) {
  auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second.engine.get();
}

void SnapInstance::PostToEngine(Engine* engine,
                                EngineMailbox::WorkItem work) {
  // The mailbox has depth 1; an occupied mailbox means the control thread
  // retries from its RPC loop (non-blocking on both sides, Section 2.3).
  auto shared = std::make_shared<EngineMailbox::WorkItem>(std::move(work));
  std::function<void()> attempt = [this, engine, shared]() {
    if (engine->mailbox()->Post([shared] { (*shared)(); })) {
      engine->NotifyWork();
      return;
    }
    sim_->Schedule(5 * kUsec, [this, engine, shared] {
      PostToEngineRetry(engine, shared);
    });
  };
  attempt();
}

void SnapInstance::PostToEngineRetry(
    Engine* engine, std::shared_ptr<EngineMailbox::WorkItem> work) {
  if (engine->mailbox()->Post([work] { (*work)(); })) {
    engine->NotifyWork();
    return;
  }
  sim_->Schedule(5 * kUsec,
                 [this, engine, work] { PostToEngineRetry(engine, work); });
}

int64_t SnapInstance::TotalEngineCpuNs() const {
  int64_t total = 0;
  for (const auto& [name, group] : groups_) {
    total += group->CpuNs();
  }
  return total;
}

}  // namespace snap
