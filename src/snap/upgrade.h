// Transparent upgrade (Section 4, Figure 5): a Snap "master" launches the
// new Snap instance; the running instance connects to it and migrates
// engines one at a time, each in its entirety:
//
//  brownout  — background transfer of control-plane connections and shared
//              memory handles; minimal performance impact, the old engine
//              keeps processing packets.
//  blackout  — the old engine ceases packet processing, detaches NIC
//              receive filters, serializes remaining state into a shared
//              memory volume; the new engine attaches identical filters and
//              deserializes. Packets arriving during the gap are dropped
//              and recovered by end-to-end transports as congestion loss.
//
// Blackout duration is modeled from the engine's state footprint using
// UpgradeParams and measured into a histogram (Figure 9).
#ifndef SRC_SNAP_UPGRADE_H_
#define SRC_SNAP_UPGRADE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/model_params.h"
#include "src/snap/control.h"
#include "src/stats/histogram.h"

namespace snap {

class UpgradeManager {
 public:
  struct EngineResult {
    std::string engine_name;
    SimDuration brownout = 0;
    SimDuration blackout = 0;
    size_t state_bytes = 0;
    Engine::StateFootprint footprint;
  };

  struct Result {
    std::vector<EngineResult> engines;
    SimDuration total = 0;
    bool ok = false;
  };

  UpgradeManager(Simulator* sim, const UpgradeParams& params)
      : sim_(sim), params_(params) {}

  // Starts migrating every engine from `from` to `to`, one at a time.
  // `done` runs (in simulated time) when the last engine has moved and the
  // old instance would be terminated.
  void StartUpgrade(SnapInstance* from, SnapInstance* to,
                    std::function<void(const Result&)> done);

  // Blackout distribution across all upgrades run through this manager.
  const Histogram& blackout_histogram() const { return blackout_hist_; }

 private:
  struct Migration {
    SnapInstance* from;
    SnapInstance* to;
    std::vector<std::string> pending;  // engine names, in order
    Result result;
    std::function<void(const Result&)> done;
    SimTime start_time = 0;
  };

  void MigrateNext(std::shared_ptr<Migration> m);
  SimDuration SerializeCost(const Engine::StateFootprint& fp) const;

  Simulator* sim_;
  UpgradeParams params_;
  Histogram blackout_hist_;
  // Async-span ids for brownout/blackout trace pairs (one per migration).
  uint64_t next_span_id_ = 0;
};

}  // namespace snap

#endif  // SRC_SNAP_UPGRADE_H_
