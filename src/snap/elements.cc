#include "src/snap/elements.h"

#include <algorithm>

#include "src/packet/wire.h"
#include "src/util/logging.h"

namespace snap {

Pipeline::RunResult Pipeline::Run(SimTime now, PacketPtr& packet) {
  RunResult result;
  for (auto& element : elements_) {
    result.cpu_ns += element->cost_ns();
    result.verdict = element->Process(now, packet);
    if (result.verdict != ElementVerdict::kPass) {
      return result;
    }
  }
  result.verdict = ElementVerdict::kPass;
  return result;
}

ElementVerdict AclElement::Process(SimTime now, PacketPtr& packet) {
  for (const Rule& rule : deny_) {
    bool src_match = rule.src == -1 || rule.src == packet->src_host;
    bool dst_match = rule.dst == -1 || rule.dst == packet->dst_host;
    if (src_match && dst_match) {
      ++dropped_;
      packet.reset();
      return ElementVerdict::kDrop;
    }
  }
  return ElementVerdict::kPass;
}

RateLimiterElement::RateLimiterElement(std::string name,
                                       double rate_bytes_per_sec,
                                       int64_t burst_bytes,
                                       size_t max_queue_packets)
    : Element(std::move(name)),
      bucket_(rate_bytes_per_sec, burst_bytes),
      max_queue_(max_queue_packets) {}

ElementVerdict RateLimiterElement::Process(SimTime now, PacketPtr& packet) {
  // Refill up front (not lazily inside TryConsume) so last_refill_ — the
  // anchor NextReleaseTime extrapolates from — advances even when the
  // packet only joins the queue.
  bucket_.Refill(now);
  double need = static_cast<double>(packet->wire_bytes);
  if (queue_.empty() && bucket_.TryConsume(now, need)) {
    return ElementVerdict::kPass;
  }
  if (queue_.size() >= max_queue_) {
    ++dropped_;
    packet.reset();
    return ElementVerdict::kDrop;
  }
  queue_.push_back(Queued{std::move(packet), now});
  return ElementVerdict::kConsume;
}

int RateLimiterElement::Release(SimTime now,
                                const std::function<void(PacketPtr)>& out) {
  bucket_.Refill(now);
  int released = 0;
  while (!queue_.empty()) {
    double need = static_cast<double>(queue_.front().packet->wire_bytes);
    if (!bucket_.TryConsume(now, need)) {
      break;
    }
    out(std::move(queue_.front().packet));
    queue_.pop_front();
    ++released;
  }
  return released;
}

SimTime RateLimiterElement::NextReleaseTime() const {
  if (queue_.empty()) {
    return kSimTimeNever;
  }
  double need = static_cast<double>(queue_.front().packet->wire_bytes);
  return bucket_.AvailableAt(need);
}

ElementVerdict CrcCheckElement::Process(SimTime now, PacketPtr& packet) {
  if (packet->proto != WireProtocol::kPony || packet->data.empty()) {
    return ElementVerdict::kPass;  // nothing to verify
  }
  uint32_t expected = packet->pony.crc32;
  if (expected == 0) {
    return ElementVerdict::kPass;  // sender did not stamp a CRC
  }
  uint32_t actual = PonyPacketCrc(packet->pony, packet->data);
  if (actual != expected) {
    ++corrupt_drops_;
    packet.reset();
    return ElementVerdict::kDrop;
  }
  return ElementVerdict::kPass;
}

}  // namespace snap
