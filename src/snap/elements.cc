#include "src/snap/elements.h"

#include <algorithm>

#include "src/packet/wire.h"
#include "src/util/logging.h"

namespace snap {

Pipeline::RunResult Pipeline::Run(SimTime now, PacketPtr& packet) {
  RunResult result;
  for (auto& element : elements_) {
    result.cpu_ns += element->cost_ns();
    result.verdict = element->Process(now, packet);
    if (result.verdict != ElementVerdict::kPass) {
      return result;
    }
  }
  result.verdict = ElementVerdict::kPass;
  return result;
}

ElementVerdict AclElement::Process(SimTime now, PacketPtr& packet) {
  for (const Rule& rule : deny_) {
    bool src_match = rule.src == -1 || rule.src == packet->src_host;
    bool dst_match = rule.dst == -1 || rule.dst == packet->dst_host;
    if (src_match && dst_match) {
      ++dropped_;
      packet.reset();
      return ElementVerdict::kDrop;
    }
  }
  return ElementVerdict::kPass;
}

RateLimiterElement::RateLimiterElement(std::string name,
                                       double rate_bytes_per_sec,
                                       int64_t burst_bytes,
                                       size_t max_queue_packets)
    : Element(std::move(name)),
      rate_(rate_bytes_per_sec),
      burst_(burst_bytes),
      max_queue_(max_queue_packets),
      tokens_(static_cast<double>(burst_bytes)) {}

void RateLimiterElement::Refill(SimTime now) {
  if (now <= last_refill_) {
    return;
  }
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + rate_ * ToSec(now - last_refill_));
  last_refill_ = now;
}

ElementVerdict RateLimiterElement::Process(SimTime now, PacketPtr& packet) {
  Refill(now);
  double need = static_cast<double>(packet->wire_bytes);
  if (queue_.empty() && tokens_ >= need) {
    tokens_ -= need;
    return ElementVerdict::kPass;
  }
  if (queue_.size() >= max_queue_) {
    ++dropped_;
    packet.reset();
    return ElementVerdict::kDrop;
  }
  queue_.push_back(Queued{std::move(packet), now});
  return ElementVerdict::kConsume;
}

int RateLimiterElement::Release(SimTime now,
                                const std::function<void(PacketPtr)>& out) {
  Refill(now);
  int released = 0;
  while (!queue_.empty()) {
    double need = static_cast<double>(queue_.front().packet->wire_bytes);
    if (tokens_ < need) {
      break;
    }
    tokens_ -= need;
    out(std::move(queue_.front().packet));
    queue_.pop_front();
    ++released;
  }
  return released;
}

SimTime RateLimiterElement::NextReleaseTime() const {
  if (queue_.empty()) {
    return kSimTimeNever;
  }
  double need = static_cast<double>(queue_.front().packet->wire_bytes);
  if (tokens_ >= need) {
    return last_refill_;
  }
  double wait_sec = (need - tokens_) / rate_;
  return last_refill_ + static_cast<SimDuration>(wait_sec * 1e9);
}

ElementVerdict CrcCheckElement::Process(SimTime now, PacketPtr& packet) {
  if (packet->proto != WireProtocol::kPony || packet->data.empty()) {
    return ElementVerdict::kPass;  // nothing to verify
  }
  uint32_t expected = packet->pony.crc32;
  if (expected == 0) {
    return ElementVerdict::kPass;  // sender did not stamp a CRC
  }
  uint32_t actual = PonyPacketCrc(packet->pony, packet->data);
  if (actual != expected) {
    ++corrupt_drops_;
    packet.reset();
    return ElementVerdict::kDrop;
  }
  return ElementVerdict::kPass;
}

}  // namespace snap
