#include "src/snap/engine_group.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>

#include "src/util/logging.h"

namespace snap {

namespace {

// Cost of one rebalancer pass (queue-delay estimation reads shared
// variables; decisions message affected threads).
constexpr SimDuration kRebalanceBaseCost = 400 * kNsec;
constexpr SimDuration kRebalancePerEngineCost = 80 * kNsec;

// Records one engine poll pass into its telemetry histogram and (when a
// recorder is attached) as a trace slice. `poll_start` is the reconstructed
// intra-step start time: sim time is frozen during a task step, so passes
// are laid out by accumulated modeled cost to nest under the task slice.
inline void NotePollPass(Substrate* sim, Engine* e, SimTime poll_start,
                         SimDuration cpu_ns) {
  if (cpu_ns <= 0) {
    return;  // idle passes would drown the distribution in zeros
  }
  if (Histogram* h = e->poll_histogram()) {
    h->Record(cpu_ns);
  }
  if (TraceRecorder* tracer = sim->tracer()) {
    tracer->Complete(poll_start, cpu_ns,
                     tracer->current_core_or(TraceRecorder::kSchedTrack),
                     e->name(), "poll");
  }
}

// Polls `engines` round-robin starting at *cursor until budget exhausts or
// nothing makes progress. Shared by all three modes.
Engine::PollResult PollEngines(Substrate* sim, std::vector<Engine*>& engines,
                               size_t* cursor, SimTime now,
                               SimDuration budget) {
  Engine::PollResult total;
  if (engines.empty()) {
    return total;
  }
  size_t n = engines.size();
  size_t idle_streak = 0;
  size_t i = *cursor;
  while (total.cpu_ns < budget && idle_streak < n) {
    Engine* e = engines[i % n];
    SimDuration mailbox_cost = e->RunMailbox();
    total.cpu_ns += mailbox_cost;
    SimTime poll_start = now + total.cpu_ns;
    Engine::PollResult r = e->Poll(now, budget - total.cpu_ns);
    NotePollPass(sim, e, poll_start, r.cpu_ns);
    total.cpu_ns += r.cpu_ns;
    total.work_items += r.work_items;
    if (r.work_items == 0 && mailbox_cost == 0) {
      ++idle_streak;
    } else {
      idle_streak = 0;
    }
    ++i;
  }
  *cursor = i % n;
  return total;
}

// Installs the per-engine poll-duration histogram when the engine joins a
// group ("snap/<engine>/poll_ns").
inline void InstallPollHistogram(Substrate* sim, Engine* engine) {
  engine->set_poll_histogram(
      sim->telemetry().GetHistogram("snap/" + engine->name() + "/poll_ns"));
}

// Installs the per-task scheduling-delay histogram
// ("snap/<task>/sched_delay_ns") measuring wake-to-run latency.
inline void InstallSchedDelayHistogram(Substrate* sim, SimTask* task) {
  task->set_sched_latency_histogram(sim->telemetry().GetHistogram(
      "snap/" + task->name() + "/sched_delay_ns"));
}

// ---------------------------------------------------------------------------
// Dedicating cores (Section 2.4, "Dedicating cores"): engines pinned to
// reserved hyperthreads, spin polling, fair-shared round-robin.
// ---------------------------------------------------------------------------
class DedicatedGroup : public EngineGroup {
 public:
  DedicatedGroup(std::string name, Substrate* sim, CpuScheduler* sched,
                 const Options& options)
      : name_(std::move(name)), sim_(sim), sched_(sched) {
    SNAP_CHECK(!options.dedicated_cores.empty())
        << "dedicated mode requires reserved cores";
    for (int core : options.dedicated_cores) {
      auto task = std::make_unique<CoreTask>(
          name_ + "/core" + std::to_string(core), sim_);
      sched_->AddTask(task.get());
      InstallSchedDelayHistogram(sim_, task.get());
      sched_->ReserveCore(task.get(), core);
      sched_->Wake(task.get(), /*remote=*/false);
      tasks_.push_back(std::move(task));
    }
  }

  void AddEngine(Engine* engine) override {
    // Assign to the least-loaded core task.
    CoreTask* best = tasks_.front().get();
    for (auto& t : tasks_) {
      if (t->engines.size() < best->engines.size()) {
        best = t.get();
      }
    }
    best->engines.push_back(engine);
    InstallPollHistogram(sim_, engine);
    CoreTask* task = best;
    CpuScheduler* sched = sched_;
    engine->SetWakeHook([sched, task] { sched->Wake(task, false); });
    // An adopted engine may arrive with pending work (upgrade restore
    // queues retransmissions); make sure it gets polled.
    sched_->Wake(task, /*remote=*/false);
  }

  void RemoveEngine(Engine* engine) override {
    for (auto& t : tasks_) {
      auto& v = t->engines;
      v.erase(std::remove(v.begin(), v.end(), engine), v.end());
    }
    engine->SetWakeHook(nullptr);
  }

  const std::string& name() const override { return name_; }

  int64_t CpuNs() const override {
    const_cast<CpuScheduler*>(sched_)->FlushSpinAccounting();
    int64_t total = 0;
    for (const auto& t : tasks_) {
      total += t->cpu_consumed_ns();
    }
    return total;
  }

 private:
  class CoreTask : public SimTask {
   public:
    CoreTask(std::string name, Substrate* sim)
        : SimTask(std::move(name), SchedClass::kDedicated), sim_(sim) {
      set_container("snap");
    }

    StepResult Step(SimTime now, SimDuration budget_ns) override {
      Engine::PollResult r =
          PollEngines(sim_, engines, &cursor_, now, budget_ns);
      StepResult out;
      out.cpu_ns = r.cpu_ns;
      out.next = (r.work_items > 0) ? StepResult::Next::kYield
                                    : StepResult::Next::kSpin;
      return out;
    }

    std::vector<Engine*> engines;

   private:
    Substrate* sim_;
    size_t cursor_ = 0;
  };

  std::string name_;
  Substrate* sim_;
  CpuScheduler* sched_;
  std::vector<std::unique_ptr<CoreTask>> tasks_;
};

// ---------------------------------------------------------------------------
// Spreading engines: one MicroQuanta thread per engine; blocks on
// notification when idle, schedules with priority to an available core.
// ---------------------------------------------------------------------------
class SpreadingGroup : public EngineGroup {
 public:
  SpreadingGroup(std::string name, Substrate* sim, CpuScheduler* sched,
                 const Options& options)
      : name_(std::move(name)),
        sim_(sim),
        sched_(sched),
        options_(options) {}

  void AddEngine(Engine* engine) override {
    auto task = std::make_unique<EngineTask>(
        name_ + "/" + engine->name(), sim_, engine,
        options_.spreading_use_cfs ? SchedClass::kCfs
                                   : SchedClass::kMicroQuanta,
        options_.spreading_cfs_weight);
    sched_->AddTask(task.get());
    InstallPollHistogram(sim_, engine);
    // Spreading wakes pay a scheduling delay per wake (Fig. 6(d)'s tail
    // driver); record it under the engine's own name.
    task->set_sched_latency_histogram(sim_->telemetry().GetHistogram(
        "snap/" + engine->name() + "/sched_delay_ns"));
    if (!options_.spreading_use_cfs) {
      sched_->SetMicroQuantaBandwidth(task.get(), options_.mq_runtime,
                                      options_.mq_period);
    }
    EngineTask* raw = task.get();
    CpuScheduler* sched = sched_;
    engine->SetWakeHook([sched, raw] { sched->Wake(raw, /*remote=*/true); });
    tasks_.push_back(std::move(task));
    // Poll once immediately: adopted engines may carry pending work.
    sched_->Wake(raw, /*remote=*/false);
  }

  void RemoveEngine(Engine* engine) override {
    for (auto& t : tasks_) {
      if (t->engine() == engine) {
        t->Retire();
      }
    }
    engine->SetWakeHook(nullptr);
  }

  const std::string& name() const override { return name_; }

  int64_t CpuNs() const override {
    int64_t total = 0;
    for (const auto& t : tasks_) {
      total += t->cpu_consumed_ns();
    }
    return total;
  }

 private:
  class EngineTask : public SimTask {
   public:
    EngineTask(std::string name, Substrate* sim, Engine* engine,
               SchedClass sched_class, double weight)
        : SimTask(std::move(name), sched_class, weight),
          sim_(sim),
          engine_(engine) {
      set_container("snap");
    }

    Engine* engine() const { return engine_; }
    void Retire() { retired_ = true; }

    StepResult Step(SimTime now, SimDuration budget_ns) override {
      StepResult out;
      if (retired_) {
        out.next = StepResult::Next::kBlock;
        return out;
      }
      out.cpu_ns += engine_->RunMailbox();
      SimTime poll_start = now + out.cpu_ns;
      Engine::PollResult r = engine_->Poll(now, budget_ns - out.cpu_ns);
      NotePollPass(sim_, engine_, poll_start, r.cpu_ns);
      out.cpu_ns += r.cpu_ns;
      if (r.work_items > 0 || engine_->HasWork(now)) {
        out.next = StepResult::Next::kYield;
        // A zero-cost yield would livelock the scheduler; charge the poll.
        if (out.cpu_ns == 0) {
          out.cpu_ns = 50 * kNsec;
        }
      } else {
        out.next = StepResult::Next::kBlock;
      }
      return out;
    }

   private:
    Substrate* sim_;
    Engine* engine_;
    bool retired_ = false;
  };

  std::string name_;
  Substrate* sim_;
  CpuScheduler* sched_;
  Options options_;
  std::vector<std::unique_ptr<EngineTask>> tasks_;
};

// ---------------------------------------------------------------------------
// Compacting engines: engines multiplexed onto as few threads as possible;
// a rebalancer (run from the primary worker) polls engine queueing delays
// against an SLO and scales out / compacts / swaps (Section 2.4).
// ---------------------------------------------------------------------------
class CompactingGroup : public EngineGroup {
 public:
  CompactingGroup(std::string name, Substrate* sim, CpuScheduler* sched,
                  const Options& options)
      : name_(std::move(name)),
        sim_(sim),
        sched_(sched),
        options_(options) {
    SNAP_CHECK_GT(options.max_workers, 0);
    for (int i = 0; i < options.max_workers; ++i) {
      auto w = std::make_unique<Worker>(
          name_ + "/worker" + std::to_string(i), this, i);
      sched_->AddTask(w.get());
      InstallSchedDelayHistogram(sim_, w.get());
      sched_->SetMicroQuantaBandwidth(w.get(), options_.mq_runtime,
                                      options_.mq_period);
      workers_.push_back(std::move(w));
    }
    // The primary spin-polls by default.
    sched_->Wake(workers_.front().get(), /*remote=*/false);
  }

  void AddEngine(Engine* engine) override {
    workers_.front()->engines.push_back(engine);
    InstallPollHistogram(sim_, engine);
    owner_[engine] = 0;
    CompactingGroup* group = this;
    engine->SetWakeHook([group, engine] { group->OnEngineWork(engine); });
    sched_->Wake(workers_.front().get(), /*remote=*/false);
  }

  void RemoveEngine(Engine* engine) override {
    for (auto& w : workers_) {
      auto& v = w->engines;
      v.erase(std::remove(v.begin(), v.end(), engine), v.end());
    }
    owner_.erase(engine);
    engine->SetWakeHook(nullptr);
  }

  const std::string& name() const override { return name_; }

  int64_t CpuNs() const override {
    const_cast<CpuScheduler*>(sched_)->FlushSpinAccounting();
    int64_t total = 0;
    for (const auto& w : workers_) {
      total += w->cpu_consumed_ns();
    }
    return total;
  }

  int active_workers() const {
    int n = 0;
    for (const auto& w : workers_) {
      if (!w->engines.empty()) {
        ++n;
      }
    }
    return n;
  }

  int64_t rebalance_scale_outs() const { return scale_outs_; }
  int64_t rebalance_compactions() const { return compactions_; }

 private:
  class Worker : public SimTask {
   public:
    Worker(std::string name, CompactingGroup* group, int index)
        : SimTask(std::move(name), SchedClass::kMicroQuanta),
          group_(group),
          index_(index) {
      set_container("snap");
    }

    StepResult Step(SimTime now, SimDuration budget_ns) override {
      StepResult out;
      Engine::PollResult r =
          PollEngines(group_->sim_, engines, &cursor_, now, budget_ns);
      out.cpu_ns = r.cpu_ns;
      // The primary interleaves rebalancing with engine execution.
      if (index_ == 0 && now >= next_rebalance_) {
        out.cpu_ns += group_->Rebalance(now);
        next_rebalance_ = now + group_->options_.rebalance_interval;
      }
      if (r.work_items > 0) {
        last_work_ = now;
        out.next = StepResult::Next::kYield;
        return out;
      }
      // Idle: the primary spins (its most-compacted state, Section 5.3);
      // secondaries spin briefly, then block to scale down.
      bool keep_spinning =
          index_ == 0 ||
          (!engines.empty() &&
           now - last_work_ < group_->options_.idle_block_after);
      out.next = keep_spinning ? StepResult::Next::kSpin
                               : StepResult::Next::kBlock;
      return out;
    }

    std::vector<Engine*> engines;

   private:
    friend class CompactingGroup;
    CompactingGroup* group_;
    int index_;
    size_t cursor_ = 0;
    SimTime next_rebalance_ = 0;
    SimTime last_work_ = 0;
  };

  void OnEngineWork(Engine* engine) {
    auto it = owner_.find(engine);
    if (it == owner_.end()) {
      return;
    }
    sched_->Wake(workers_[it->second].get(), /*remote=*/true);
  }

  // One rebalancer pass; returns its modeled CPU cost.
  SimDuration Rebalance(SimTime now) {
    SimDuration cost = kRebalanceBaseCost +
                       kRebalancePerEngineCost *
                           static_cast<SimDuration>(owner_.size());
    // Find the engine with the worst queueing delay.
    Engine* worst = nullptr;
    SimDuration worst_delay = 0;
    SimDuration total_delay = 0;
    for (auto& [engine, worker] : owner_) {
      SimDuration d = engine->QueueingDelay(now);
      total_delay += d;
      if (d > worst_delay) {
        worst_delay = d;
        worst = engine;
      }
    }
    if (worst != nullptr && worst_delay > options_.compacting_slo) {
      // Scale out: move the worst engine off a shared worker to the
      // emptiest other worker (waking it if necessary).
      int from = owner_[worst];
      if (workers_[from]->engines.size() > 1) {
        int to = -1;
        size_t fewest = SIZE_MAX;
        for (int i = 0; i < static_cast<int>(workers_.size()); ++i) {
          if (i == from) {
            continue;
          }
          if (workers_[i]->engines.size() < fewest) {
            fewest = workers_[i]->engines.size();
            to = i;
          }
        }
        if (to >= 0 && fewest < workers_[from]->engines.size()) {
          MoveEngine(worst, from, to);
          ++scale_outs_;
          NoteRebalance(now, "scale_out", worst);
          sched_->Wake(workers_[to].get(), /*remote=*/true);
        }
      }
      idle_rounds_ = 0;
      return cost;
    }
    // Compaction: after consecutive low-load rounds, migrate an engine from
    // the busiest secondary back toward the primary.
    if (total_delay < options_.compacting_slo / 4) {
      if (++idle_rounds_ >= 4) {
        idle_rounds_ = 0;
        for (int i = static_cast<int>(workers_.size()) - 1; i >= 1; --i) {
          if (!workers_[i]->engines.empty()) {
            Engine* moved = workers_[i]->engines.back();
            MoveEngine(moved, i, 0);
            ++compactions_;
            NoteRebalance(now, "compaction", moved);
            break;
          }
        }
      }
    } else {
      idle_rounds_ = 0;
    }
    return cost;
  }

  // Publishes one rebalancer decision: telemetry counter, trace instant,
  // and the evolving active-worker count as a trace counter series.
  void NoteRebalance(SimTime now, const char* kind, Engine* engine) {
    sim_->telemetry()
        .GetCounter("snap/" + name_ + "/rebalance/" + kind + "s")
        ->Increment();
    if (TraceRecorder* tracer = sim_->tracer()) {
      tracer->Instant(now, TraceRecorder::kSchedTrack,
                      std::string("rebalance_") + kind + ":" + engine->name(),
                      "sched");
      tracer->CounterValue(now, name_ + "/active_workers", active_workers());
    }
  }

  void MoveEngine(Engine* engine, int from, int to) {
    auto& src = workers_[from]->engines;
    src.erase(std::remove(src.begin(), src.end(), engine), src.end());
    workers_[to]->engines.push_back(engine);
    owner_[engine] = to;
  }

  std::string name_;
  Substrate* sim_;
  CpuScheduler* sched_;
  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<Engine*, int> owner_;
  int idle_rounds_ = 0;
  int64_t scale_outs_ = 0;
  int64_t compactions_ = 0;
};

}  // namespace

std::unique_ptr<EngineGroup> EngineGroup::Create(std::string name,
                                                 Substrate* sim,
                                                 CpuScheduler* sched,
                                                 const Options& options) {
  switch (options.mode) {
    case SchedulingMode::kDedicatedCores:
      return std::make_unique<DedicatedGroup>(std::move(name), sim, sched,
                                              options);
    case SchedulingMode::kSpreadingEngines:
      return std::make_unique<SpreadingGroup>(std::move(name), sim, sched,
                                              options);
    case SchedulingMode::kCompactingEngines:
      return std::make_unique<CompactingGroup>(std::move(name), sim, sched,
                                               options);
  }
  return nullptr;
}

}  // namespace snap
