#include "src/snap/shaping_engine.h"

#include <utility>

#include "src/stats/telemetry.h"

namespace snap {

ShapingEngine::ShapingEngine(std::string name, Substrate* sim, Nic* nic,
                             const Options& options)
    : Engine(std::move(name)),
      sim_(sim),
      nic_(nic),
      options_(options),
      input_(options.input_ring_entries) {
  auto acl = std::make_unique<AclElement>("acl");
  auto counter = std::make_unique<CounterElement>("counter");
  auto shaper = std::make_unique<RateLimiterElement>(
      "shaper", options.rate_bytes_per_sec, options.burst_bytes,
      options.shaper_queue_packets);
  acl_ = acl.get();
  counter_ = counter.get();
  shaper_ = shaper.get();
  pipeline_.Append(std::move(acl));
  pipeline_.Append(std::move(counter));
  pipeline_.Append(std::move(shaper));
}

bool ShapingEngine::Inject(PacketPtr packet) {
  packet->enqueue_time = 0;  // stamped by the NIC on transmit
  if (options_.tenant_classifier) {
    packet->tenant = options_.tenant_classifier(*packet);
  }
  qos::TenantId tenant = packet->tenant;
  int64_t wire_bytes = packet->wire_bytes;
  if (!input_.TryPush(std::move(packet))) {
    ++stats_.input_drops;
    return false;
  }
  ++stats_.injected;
  if (options_.tenant_classifier) {
    TenantShapeStats& tstats = tenant_stats_[tenant];
    ++tstats.injected;
    tstats.injected_bytes += wire_bytes;
  }
  NotifyWork();
  return true;
}

Engine::PollResult ShapingEngine::Poll(SimTime now, SimDuration budget_ns) {
  PollResult result;
  // Release any packets the shaper has accumulated tokens for.
  int released = shaper_->Release(now, [this](PacketPtr p) {
    qos::TenantId tenant = p->tenant;
    int64_t wire_bytes = p->wire_bytes;
    if (nic_->Transmit(std::move(p))) {
      ++stats_.transmitted;
      RecordTenantTx(tenant, wire_bytes);
    }
  });
  if (released > 0) {
    result.cpu_ns += released * options_.per_packet_cost;
    result.work_items += released;
  }
  // Pull a batch from the input ring through the pipeline.
  for (int i = 0; i < options_.batch && result.cpu_ns < budget_ns; ++i) {
    auto popped = input_.TryPop();
    if (!popped.has_value()) {
      break;
    }
    PacketPtr packet = std::move(*popped);
    result.cpu_ns += options_.per_packet_cost;
    ++result.work_items;
    Pipeline::RunResult run = pipeline_.Run(now, packet);
    result.cpu_ns += run.cpu_ns;
    if (run.verdict == ElementVerdict::kPass) {
      qos::TenantId tenant = packet->tenant;
      int64_t wire_bytes = packet->wire_bytes;
      if (nic_->Transmit(std::move(packet))) {
        ++stats_.transmitted;
        RecordTenantTx(tenant, wire_bytes);
      }
    }
    // kDrop / kConsume: the pipeline took care of the packet.
  }
  // Tokens refill with time, not events: if shaped packets are waiting,
  // arm a timer so blocking/parking schedulers resume us at release time.
  wake_timer_.Cancel();
  SimTime next_release = shaper_->NextReleaseTime();
  if (next_release != kSimTimeNever && next_release > now) {
    ShapingEngine* self = this;
    wake_timer_ = sim_->ScheduleAt(next_release,
                                   [self] { self->NotifyWork(); });
  }
  return result;
}

void ShapingEngine::RecordTenantTx(qos::TenantId tenant, int64_t wire_bytes) {
  if (!options_.tenant_classifier) {
    return;  // untagged mode: keep the map empty (and iteration costs zero)
  }
  TenantShapeStats& tstats = tenant_stats_[tenant];
  ++tstats.transmitted;
  tstats.transmitted_bytes += wire_bytes;
}

void ShapingEngine::ExportQosStats(Telemetry* telemetry,
                                   const std::string& prefix) const {
  for (const auto& [tenant, tstats] : tenant_stats_) {
    std::string name = options_.tenants != nullptr
                           ? options_.tenants->DisplayName(tenant)
                           : "t" + std::to_string(tenant);
    const std::string base = prefix + "/" + name;
    telemetry->SetCounter(base + "/shaper_injected", tstats.injected);
    telemetry->SetCounter(base + "/shaper_injected_bytes",
                          tstats.injected_bytes);
    telemetry->SetCounter(base + "/shaper_transmitted", tstats.transmitted);
    telemetry->SetCounter(base + "/shaper_transmitted_bytes",
                          tstats.transmitted_bytes);
  }
}

bool ShapingEngine::HasWork(SimTime now) const {
  if (!input_.empty()) {
    return true;
  }
  return shaper_->queued() > 0 && shaper_->NextReleaseTime() <= now;
}

SimDuration ShapingEngine::QueueingDelay(SimTime now) const {
  return shaper_->QueueingDelay(now);
}

}  // namespace snap
