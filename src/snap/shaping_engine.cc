#include "src/snap/shaping_engine.h"

#include <utility>

namespace snap {

ShapingEngine::ShapingEngine(std::string name, Simulator* sim, Nic* nic,
                             const Options& options)
    : Engine(std::move(name)),
      sim_(sim),
      nic_(nic),
      options_(options),
      input_(options.input_ring_entries) {
  auto acl = std::make_unique<AclElement>("acl");
  auto counter = std::make_unique<CounterElement>("counter");
  auto shaper = std::make_unique<RateLimiterElement>(
      "shaper", options.rate_bytes_per_sec, options.burst_bytes,
      options.shaper_queue_packets);
  acl_ = acl.get();
  counter_ = counter.get();
  shaper_ = shaper.get();
  pipeline_.Append(std::move(acl));
  pipeline_.Append(std::move(counter));
  pipeline_.Append(std::move(shaper));
}

bool ShapingEngine::Inject(PacketPtr packet) {
  packet->enqueue_time = 0;  // stamped by the NIC on transmit
  if (!input_.TryPush(std::move(packet))) {
    ++stats_.input_drops;
    return false;
  }
  ++stats_.injected;
  NotifyWork();
  return true;
}

Engine::PollResult ShapingEngine::Poll(SimTime now, SimDuration budget_ns) {
  PollResult result;
  // Release any packets the shaper has accumulated tokens for.
  int released = shaper_->Release(now, [this, &result](PacketPtr p) {
    if (nic_->Transmit(std::move(p))) {
      ++stats_.transmitted;
    }
  });
  if (released > 0) {
    result.cpu_ns += released * options_.per_packet_cost;
    result.work_items += released;
  }
  // Pull a batch from the input ring through the pipeline.
  for (int i = 0; i < options_.batch && result.cpu_ns < budget_ns; ++i) {
    auto popped = input_.TryPop();
    if (!popped.has_value()) {
      break;
    }
    PacketPtr packet = std::move(*popped);
    result.cpu_ns += options_.per_packet_cost;
    ++result.work_items;
    Pipeline::RunResult run = pipeline_.Run(now, packet);
    result.cpu_ns += run.cpu_ns;
    if (run.verdict == ElementVerdict::kPass) {
      if (nic_->Transmit(std::move(packet))) {
        ++stats_.transmitted;
      }
    }
    // kDrop / kConsume: the pipeline took care of the packet.
  }
  // Tokens refill with time, not events: if shaped packets are waiting,
  // arm a timer so blocking/parking schedulers resume us at release time.
  wake_timer_.Cancel();
  SimTime next_release = shaper_->NextReleaseTime();
  if (next_release != kSimTimeNever && next_release > now) {
    ShapingEngine* self = this;
    wake_timer_ = sim_->ScheduleAt(next_release,
                                   [self] { self->NotifyWork(); });
  }
  return result;
}

bool ShapingEngine::HasWork(SimTime now) const {
  if (!input_.empty()) {
    return true;
  }
  return shaper_->queued() > 0 && shaper_->NextReleaseTime() <= now;
}

SimDuration ShapingEngine::QueueingDelay(SimTime now) const {
  return shaper_->QueueingDelay(now);
}

}  // namespace snap
