#include "src/packet/packet.h"

namespace snap {

namespace {

// Singly-linked freelist threaded through the recycled blocks themselves.
// thread_local: the simulator is single-threaded, but benchmarks and tests
// may run several simulators on different threads; per-thread lists need
// no locking and a block freed on another thread simply lands there.
struct FreeBlock {
  FreeBlock* next;
};

constexpr int kMaxFreeBlocks = 4096;

thread_local FreeBlock* t_free_list = nullptr;
thread_local int t_free_count = 0;

// Payload-buffer cache: cleared vectors that keep their heap capacity.
// Bounded both in count and per-buffer capacity so a rare jumbo payload
// cannot pin memory forever.
constexpr int kMaxCachedBuffers = 1024;
constexpr size_t kMaxCachedCapacity = 64 * 1024;

thread_local std::vector<std::vector<uint8_t>> t_buffer_cache;

}  // namespace

std::vector<uint8_t> TakePayloadBuffer() {
  if (t_buffer_cache.empty()) {
    return {};
  }
  std::vector<uint8_t> buf = std::move(t_buffer_cache.back());
  t_buffer_cache.pop_back();
  return buf;
}

void StashPayloadBuffer(std::vector<uint8_t> buf) {
  if (buf.capacity() == 0 || buf.capacity() > kMaxCachedCapacity ||
      t_buffer_cache.size() >= kMaxCachedBuffers) {
    return;
  }
  buf.clear();
  t_buffer_cache.push_back(std::move(buf));
}

Packet::Packet() : data(TakePayloadBuffer()) {}

Packet::~Packet() { StashPayloadBuffer(std::move(data)); }

void* Packet::operator new(std::size_t size) {
  if (size == sizeof(Packet) && t_free_list != nullptr) {
    FreeBlock* block = t_free_list;
    t_free_list = block->next;
    --t_free_count;
    return block;
  }
  return ::operator new(size);
}

void Packet::operator delete(void* p) noexcept {
  if (p == nullptr) {
    return;
  }
  if (t_free_count < kMaxFreeBlocks) {
    auto* block = static_cast<FreeBlock*>(p);
    block->next = t_free_list;
    t_free_list = block;
    ++t_free_count;
    return;
  }
  ::operator delete(p);
}

void Packet::operator delete(void* p, std::size_t) noexcept {
  Packet::operator delete(p);
}

}  // namespace snap
