#include "src/packet/crc32.h"

#include <cstring>

#if defined(__x86_64__)
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace snap {

namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
// Built at compile time: a function-local static here would put a guarded
// magic-static check on one of the simulator's hottest leaves, and with
// sharded simulations many worker threads hit it concurrently.
struct Crc32cTable {
  uint32_t entries[256];

  constexpr Crc32cTable() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

constexpr Crc32cTable kCrc32cTable;

uint32_t Crc32cSoftware(const uint8_t* bytes, size_t len, uint32_t crc) {
  for (size_t i = 0; i < len; ++i) {
    crc = kCrc32cTable.entries[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__)
// The SSE4.2 crc32 instruction implements exactly this reflected CRC32C,
// ~20x faster than the table loop. Every packet is CRC'd (and re-CRC'd on
// corruption checks), making this one of the simulator's hottest leaves.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    const uint8_t* bytes, size_t len, uint32_t crc) {
  uint64_t crc64 = crc;
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    bytes += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  if (len >= 4) {
    uint32_t chunk;
    std::memcpy(&chunk, bytes, 4);
    crc = _mm_crc32_u32(crc, chunk);
    bytes += 4;
    len -= 4;
  }
  while (len > 0) {
    crc = _mm_crc32_u8(crc, *bytes);
    ++bytes;
    --len;
  }
  return crc;
}

bool CpuHasSse42() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    return false;
  }
  return (ecx & bit_SSE4_2) != 0;
}

const bool kUseHardwareCrc = CpuHasSse42();
#endif  // __x86_64__

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
#if defined(__x86_64__)
  if (kUseHardwareCrc) {
    return ~Crc32cHardware(bytes, len, crc);
  }
#endif
  return ~Crc32cSoftware(bytes, len, crc);
}

}  // namespace snap
