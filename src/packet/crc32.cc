#include "src/packet/crc32.h"

namespace snap {

namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
struct Crc32cTable {
  uint32_t entries[256];

  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const Crc32cTable& table = Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace snap
