// Packet representation shared by every transport in the simulation.
//
// A Packet models one fabric frame. Header fields are first-class struct
// members (the simulation routes on them); the Pony Express header
// additionally has a real byte-level wire encoding (src/packet/wire.h) used
// for version negotiation and CRC coverage tests.
//
// Payloads can be carried two ways:
//  - `data` holds real bytes (correctness tests, one-sided reads), or
//  - `payload_bytes` alone describes a synthetic payload of that size
//    (throughput benchmarks; no memory traffic in the simulator).
#ifndef SRC_PACKET_PACKET_H_
#define SRC_PACKET_PACKET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/time_types.h"

namespace snap {

enum class WireProtocol : uint8_t {
  kTcp = 6,
  kEncap = 47,  // virtualization encapsulation (GRE-like)
  kPony = 253,  // experimental protocol number
};

enum class PonyPacketType : uint8_t {
  kData = 0,        // two-sided message fragment
  kAck = 1,         // pure acknowledgment
  kOpRequest = 2,   // one-sided operation request
  kOpResponse = 3,  // one-sided operation response
  kCredit = 4,      // flow-control credit grant
  kSetup = 5,       // wire-version negotiation handshake
};

enum class PonyOpCode : uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kIndirectRead = 3,
  kScanAndRead = 4,
};

// Pony Express wire header (Section 3.1: custom, versioned wire protocol).
struct PonyHeader {
  uint16_t version = 1;
  uint64_t flow_id = 0;
  uint64_t seq = 0;        // per-flow packet sequence number
  uint64_t ack = 0;        // cumulative ack (highest contiguously received)
  PonyPacketType type = PonyPacketType::kData;
  PonyOpCode op = PonyOpCode::kNone;
  uint64_t op_id = 0;      // initiator-assigned operation id
  uint64_t stream_id = 0;  // message stream (two-sided ops)
  uint32_t msg_offset = 0; // byte offset of this fragment within the message
  uint32_t msg_length = 0; // total message length
  uint64_t region_id = 0;  // one-sided target region
  uint64_t region_offset = 0;
  uint32_t op_length = 0;  // one-sided access length
  uint16_t batch = 0;      // indirections in a batched indirect read
  uint32_t credit = 0;     // credit grant (kCredit)
  uint16_t status = 0;     // op response status (0 = OK)
  // Transmit timestamp for RTT measurement (Timely congestion control uses
  // NIC hardware timestamps; Section 3.1) and its echo on the reverse path.
  int64_t tx_timestamp = 0;
  int64_t ts_echo = 0;
  uint32_t crc32 = 0;      // end-to-end invariant CRC over header+payload
};

// Kernel TCP segment header (the baseline stack).
struct TcpSegment {
  uint64_t conn_id = 0;
  uint16_t dst_port = 0;   // listener demux (SYN only)
  uint64_t seq = 0;        // byte sequence
  uint64_t ack = 0;        // cumulative byte ack
  uint32_t window = 0;     // receiver window in bytes
  bool syn = false;
  bool fin = false;
  bool is_ack = false;
};

struct Packet {
  // Fabric addressing.
  int src_host = -1;
  int dst_host = -1;
  // Steering key: selects the destination NIC RX queue.
  uint32_t steering_hash = 0;

  WireProtocol proto = WireProtocol::kPony;
  PonyHeader pony;
  TcpSegment tcp;
  // Virtualization inner addressing (kEncap and VM-to-VM traffic).
  uint32_t virt_src_vm = 0;
  uint32_t virt_dst_vm = 0;

  // Synthetic payload size (bytes); `data` may carry the real bytes.
  int32_t payload_bytes = 0;
  std::vector<uint8_t> data;

  // Total size on the wire (headers + payload), set by the sender.
  int32_t wire_bytes = 0;

  // Simulation bookkeeping.
  SimTime enqueue_time = 0;  // when it entered the TX path
  SimTime rx_time = 0;       // when the destination NIC received it
  // QoS tenant tag (src/qos/tenant.h); 0 = untagged / default tenant.
  // Bookkeeping, not a wire field: it is outside the CRC-covered
  // PonyHeader, the way a production stack would derive it from the flow.
  uint32_t tenant = 0;

  // Set by fault injection (src/testing/chaos.h) when the packet's CRC-
  // covered bytes were flipped in flight. Receivers must never consume such
  // a packet: the end-to-end CRC is expected to catch it, and the chaos
  // harness asserts it did.
  bool chaos_corrupted = false;

  // Packets are created and destroyed at fabric line rate, so both
  // allocations a packet needs are recycled transparently:
  //  - a class-level freelist recycles the fixed-size Packet block
  //    (operator new/delete below);
  //  - construction adopts a previously used payload buffer (empty, but
  //    with capacity) and destruction returns `data`'s buffer to that
  //    cache, so the `p->data = record.data` copy in the TX path reuses
  //    capacity instead of hitting malloc.
  // Neither changes observable behavior: a fresh packet still starts with
  // an empty `data` and default header fields.
  Packet();
  ~Packet();
  Packet(const Packet&) = default;
  Packet(Packet&&) = default;
  Packet& operator=(const Packet&) = default;
  Packet& operator=(Packet&&) = default;

  static void* operator new(std::size_t size);
  static void operator delete(void* p) noexcept;
  static void operator delete(void* p, std::size_t) noexcept;
};

using PacketPtr = std::unique_ptr<Packet>;

// The thread-local payload-buffer cache behind Packet's constructor /
// destructor, exposed so other per-packet payload carriers (e.g. the
// transport's TX records) can recycle through the same pool. Take returns
// an EMPTY vector that may already own capacity; Stash clears the vector
// and keeps its allocation for the next Take.
std::vector<uint8_t> TakePayloadBuffer();
void StashPayloadBuffer(std::vector<uint8_t> buf);

}  // namespace snap

#endif  // SRC_PACKET_PACKET_H_
