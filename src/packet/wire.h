// Byte-level wire encoding of the Pony Express header.
//
// Section 3.1: "we periodically extend and change our internal wire
// protocol while maintaining compatibility with prior versions... We use an
// out-of-band mechanism to advertise the wire protocol versions available
// when connecting to a remote engine, and select the least common
// denominator."
//
// Two versions exist here:
//  - v1: base header.
//  - v2: adds the TX timestamp + echo used for RTT measurement (Timely) and
//    the batched-indirection count; v1 peers ignore both (the transport
//    falls back to software timestamps and unbatched reads).
//
// Encoding is little-endian, fixed layout per version. The CRC field covers
// the header (with the CRC field itself zeroed) plus the payload.
#ifndef SRC_PACKET_WIRE_H_
#define SRC_PACKET_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/packet/packet.h"
#include "src/util/status.h"

namespace snap {

inline constexpr uint16_t kPonyWireVersionMin = 1;
inline constexpr uint16_t kPonyWireVersionMax = 2;

// Encoded sizes (bytes) per version.
int PonyHeaderWireSize(uint16_t version);

// Serializes `header` at wire version `header.version` into `out`
// (overwritten). Fails on unsupported versions.
Status EncodePonyHeader(const PonyHeader& header, std::vector<uint8_t>* out);

// Parses a header from `data`; the version is read from the first two
// bytes. Fails on truncation or unsupported versions.
StatusOr<PonyHeader> DecodePonyHeader(const uint8_t* data, size_t len);

// Computes the end-to-end CRC over an encoded header (crc field zeroed)
// plus payload bytes.
uint32_t PonyPacketCrc(const PonyHeader& header,
                       const std::vector<uint8_t>& payload);

// True if `header.crc32` matches the CRC recomputed over header + payload.
bool VerifyPonyPacketCrc(const PonyHeader& header,
                         const std::vector<uint8_t>& payload);

// Negotiates the wire version between two peers advertising inclusive
// ranges; returns the highest mutually supported version, or an error when
// the ranges do not overlap.
StatusOr<uint16_t> NegotiateWireVersion(uint16_t local_min, uint16_t local_max,
                                        uint16_t remote_min,
                                        uint16_t remote_max);

// --- Full-frame codec (live mode, src/live/udp_fabric.h) ------------------
//
// Serializes a whole Pony Packet — fabric addressing, header at its own
// wire version, real payload bytes — into one datagram-sized frame so the
// live UDP fabric can put real packets on a real wire. Simulation-only
// bookkeeping (enqueue/rx times, chaos flags) intentionally does not
// travel: the receiver stamps its own times.

// Frames start with this magic so stray datagrams are rejected cheaply.
inline constexpr uint32_t kWireFrameMagic = 0x534e5046;  // "SNPF"

// Encodes `packet` into `out` (overwritten). Only WireProtocol::kPony
// packets have a wire encoding; anything else is an error.
Status EncodeWireFrame(const Packet& packet, std::vector<uint8_t>* out);

// Parses a frame; fails on bad magic, truncation, or unsupported versions.
StatusOr<PacketPtr> DecodeWireFrame(const uint8_t* data, size_t len);

// --- Control-plane frames (rendezvous, src/live/udp_fabric.h) -------------
//
// The out-of-band channel of Section 3.1: before any data frame flows
// between processes, hosts exchange control frames with a directory to
// learn each other's (address, port) endpoints and advertised wire-version
// ranges. Control frames share the UDP sockets with data frames and are
// told apart by their own magic in the first four bytes; they are
// versioned independently of both the data-frame layout and the Pony
// header.

inline constexpr uint32_t kControlFrameMagic = 0x534e5043;  // "SNPC"

enum class ControlFrameType : uint8_t {
  kAnnounce = 1,  // member -> directory: here are my local hosts
  kTable = 2,     // directory -> member: the complete endpoint table
  kTableAck = 3,  // member -> directory: table received, stop resending
};

// One host's endpoint plus its advertised Pony wire-version range (the
// rendezvous doubles as the version-advertisement channel, so remote
// peers can negotiate before the first data frame).
struct ControlEntry {
  int32_t host_id = -1;
  uint32_t ipv4_be = 0;  // network byte order, as in sockaddr_in
  uint16_t port = 0;     // host byte order
  uint16_t wire_min = kPonyWireVersionMin;
  uint16_t wire_max = kPonyWireVersionMax;
};

struct ControlFrame {
  ControlFrameType type = ControlFrameType::kAnnounce;
  // Sender identity: the announcing member's first local host id, or -1
  // from the directory.
  int32_t sender = -1;
  std::vector<ControlEntry> entries;
};

// True when `data` starts with the control-frame magic (cheap dispatch in
// the shared-socket receive path).
bool IsControlFrame(const uint8_t* data, size_t len);

Status EncodeControlFrame(const ControlFrame& frame,
                          std::vector<uint8_t>* out);
StatusOr<ControlFrame> DecodeControlFrame(const uint8_t* data, size_t len);

}  // namespace snap

#endif  // SRC_PACKET_WIRE_H_
