#include "src/packet/wire.h"

#include <cstring>

#include "src/packet/crc32.h"

namespace snap {

namespace {

constexpr int kV1Size = 2 + 8 + 8 + 8 + 1 + 1 + 8 + 8 + 4 + 4 + 8 + 8 + 4 +
                        4 + 2 + 4;  // = 82
constexpr int kV2Extra = 8 + 8 + 2;  // tx_timestamp + ts_echo + batch
constexpr int kV2Size = kV1Size + kV2Extra;

// Writes into a caller-provided buffer of at least kV2Size bytes. CRC
// computation encodes every header twice per packet (tx stamp + rx
// verify), so this path must not touch the heap.
class Writer {
 public:
  explicit Writer(uint8_t* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(out_ + pos_, &value, sizeof(T));
    pos_ += sizeof(T);
  }

  size_t pos() const { return pos_; }

 private:
  uint8_t* out_;
  size_t pos_ = 0;
};

// Encodes into `out` (>= kV2Size bytes); returns the encoded length.
size_t EncodePonyHeaderRaw(const PonyHeader& h, uint8_t* out) {
  Writer w(out);
  w.Put<uint16_t>(h.version);
  w.Put<uint64_t>(h.flow_id);
  w.Put<uint64_t>(h.seq);
  w.Put<uint64_t>(h.ack);
  w.Put<uint8_t>(static_cast<uint8_t>(h.type));
  w.Put<uint8_t>(static_cast<uint8_t>(h.op));
  w.Put<uint64_t>(h.op_id);
  w.Put<uint64_t>(h.stream_id);
  w.Put<uint32_t>(h.msg_offset);
  w.Put<uint32_t>(h.msg_length);
  w.Put<uint64_t>(h.region_id);
  w.Put<uint64_t>(h.region_offset);
  w.Put<uint32_t>(h.op_length);
  w.Put<uint32_t>(h.credit);
  w.Put<uint16_t>(h.status);
  w.Put<uint32_t>(h.crc32);
  if (h.version >= 2) {
    w.Put<int64_t>(h.tx_timestamp);
    w.Put<int64_t>(h.ts_echo);
    w.Put<uint16_t>(h.batch);
  }
  return w.pos();
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  template <typename T>
  bool Get(T* value) {
    if (pos_ + sizeof(T) > len_) {
      return false;
    }
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  // Advances past `n` bytes, returning their start (nullptr if truncated).
  const uint8_t* Skip(size_t n) {
    if (pos_ + n > len_) {
      return nullptr;
    }
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace

int PonyHeaderWireSize(uint16_t version) {
  return version >= 2 ? kV2Size : kV1Size;
}

Status EncodePonyHeader(const PonyHeader& h, std::vector<uint8_t>* out) {
  if (h.version < kPonyWireVersionMin || h.version > kPonyWireVersionMax) {
    return InvalidArgumentError("unsupported wire version");
  }
  out->resize(PonyHeaderWireSize(h.version));
  EncodePonyHeaderRaw(h, out->data());
  return OkStatus();
}

StatusOr<PonyHeader> DecodePonyHeader(const uint8_t* data, size_t len) {
  Reader r(data, len);
  PonyHeader h;
  if (!r.Get(&h.version)) {
    return InvalidArgumentError("truncated header: version");
  }
  if (h.version < kPonyWireVersionMin || h.version > kPonyWireVersionMax) {
    return InvalidArgumentError("unsupported wire version");
  }
  uint8_t type = 0;
  uint8_t op = 0;
  bool ok = r.Get(&h.flow_id) && r.Get(&h.seq) && r.Get(&h.ack) &&
            r.Get(&type) && r.Get(&op) && r.Get(&h.op_id) &&
            r.Get(&h.stream_id) && r.Get(&h.msg_offset) &&
            r.Get(&h.msg_length) && r.Get(&h.region_id) &&
            r.Get(&h.region_offset) && r.Get(&h.op_length) &&
            r.Get(&h.credit) && r.Get(&h.status) && r.Get(&h.crc32);
  if (!ok) {
    return InvalidArgumentError("truncated header");
  }
  h.type = static_cast<PonyPacketType>(type);
  h.op = static_cast<PonyOpCode>(op);
  if (h.version >= 2) {
    if (!r.Get(&h.tx_timestamp) || !r.Get(&h.ts_echo) || !r.Get(&h.batch)) {
      return InvalidArgumentError("truncated v2 header");
    }
  }
  return h;
}

uint32_t PonyPacketCrc(const PonyHeader& header,
                       const std::vector<uint8_t>& payload) {
  if (header.version < kPonyWireVersionMin ||
      header.version > kPonyWireVersionMax) {
    return 0;
  }
  PonyHeader copy = header;
  copy.crc32 = 0;
  uint8_t encoded[kV2Size];
  size_t len = EncodePonyHeaderRaw(copy, encoded);
  uint32_t crc = Crc32c(encoded, len);
  if (!payload.empty()) {
    crc = Crc32c(payload.data(), payload.size(), crc);
  }
  return crc;
}

bool VerifyPonyPacketCrc(const PonyHeader& header,
                         const std::vector<uint8_t>& payload) {
  return header.crc32 == PonyPacketCrc(header, payload);
}

StatusOr<uint16_t> NegotiateWireVersion(uint16_t local_min, uint16_t local_max,
                                        uint16_t remote_min,
                                        uint16_t remote_max) {
  uint16_t lo = std::max(local_min, remote_min);
  uint16_t hi = std::min(local_max, remote_max);
  if (lo > hi) {
    return FailedPreconditionError("no common wire version");
  }
  return hi;
}

namespace {
// Frame layout version, independent of the Pony header version it carries.
constexpr uint16_t kWireFrameVersion = 1;
}  // namespace

Status EncodeWireFrame(const Packet& packet, std::vector<uint8_t>* out) {
  if (packet.proto != WireProtocol::kPony) {
    return InvalidArgumentError("only Pony packets have a frame encoding");
  }
  uint8_t header[kV2Size];
  if (packet.pony.version < kPonyWireVersionMin ||
      packet.pony.version > kPonyWireVersionMax) {
    return InvalidArgumentError("unsupported wire version");
  }
  size_t header_len = EncodePonyHeaderRaw(packet.pony, header);
  out->clear();
  out->reserve(4 + 2 + 4 + 4 + 4 + 4 + 4 + 4 + 2 + header_len + 4 +
               packet.data.size());
  auto put = [out](const auto& value) {
    const auto* p = reinterpret_cast<const uint8_t*>(&value);
    out->insert(out->end(), p, p + sizeof(value));
  };
  put(kWireFrameMagic);
  put(kWireFrameVersion);
  put(static_cast<int32_t>(packet.src_host));
  put(static_cast<int32_t>(packet.dst_host));
  put(packet.steering_hash);
  put(packet.tenant);
  put(packet.payload_bytes);
  put(packet.wire_bytes);
  put(static_cast<uint16_t>(header_len));
  out->insert(out->end(), header, header + header_len);
  put(static_cast<uint32_t>(packet.data.size()));
  out->insert(out->end(), packet.data.begin(), packet.data.end());
  return OkStatus();
}

StatusOr<PacketPtr> DecodeWireFrame(const uint8_t* data, size_t len) {
  Reader r(data, len);
  uint32_t magic = 0;
  uint16_t frame_version = 0;
  if (!r.Get(&magic) || magic != kWireFrameMagic) {
    return InvalidArgumentError("bad frame magic");
  }
  if (!r.Get(&frame_version) || frame_version != kWireFrameVersion) {
    return InvalidArgumentError("unsupported frame version");
  }
  auto packet = std::make_unique<Packet>();
  int32_t src = 0;
  int32_t dst = 0;
  uint16_t header_len = 0;
  bool ok = r.Get(&src) && r.Get(&dst) && r.Get(&packet->steering_hash) &&
            r.Get(&packet->tenant) && r.Get(&packet->payload_bytes) &&
            r.Get(&packet->wire_bytes) && r.Get(&header_len);
  if (!ok) {
    return InvalidArgumentError("truncated frame");
  }
  packet->src_host = src;
  packet->dst_host = dst;
  const uint8_t* header = r.Skip(header_len);
  if (header == nullptr) {
    return InvalidArgumentError("truncated frame header");
  }
  StatusOr<PonyHeader> decoded = DecodePonyHeader(header, header_len);
  if (!decoded.ok()) {
    return decoded.status();
  }
  packet->pony = *decoded;
  uint32_t data_len = 0;
  if (!r.Get(&data_len)) {
    return InvalidArgumentError("truncated frame payload length");
  }
  const uint8_t* payload = r.Skip(data_len);
  if (payload == nullptr) {
    return InvalidArgumentError("truncated frame payload");
  }
  packet->data.assign(payload, payload + data_len);
  return packet;
}

namespace {
constexpr uint16_t kControlFrameVersion = 1;
// A table never exceeds the rendezvous group; anything larger is a
// corrupt or hostile frame.
constexpr uint32_t kMaxControlEntries = 4096;
}  // namespace

bool IsControlFrame(const uint8_t* data, size_t len) {
  uint32_t magic = 0;
  if (len < sizeof(magic)) {
    return false;
  }
  std::memcpy(&magic, data, sizeof(magic));
  return magic == kControlFrameMagic;
}

Status EncodeControlFrame(const ControlFrame& frame,
                          std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(4 + 2 + 1 + 4 + 4 + frame.entries.size() * 14);
  auto put = [out](const auto& value) {
    const auto* p = reinterpret_cast<const uint8_t*>(&value);
    out->insert(out->end(), p, p + sizeof(value));
  };
  put(kControlFrameMagic);
  put(kControlFrameVersion);
  put(static_cast<uint8_t>(frame.type));
  put(frame.sender);
  put(static_cast<uint32_t>(frame.entries.size()));
  for (const ControlEntry& e : frame.entries) {
    put(e.host_id);
    put(e.ipv4_be);
    put(e.port);
    put(e.wire_min);
    put(e.wire_max);
  }
  return OkStatus();
}

StatusOr<ControlFrame> DecodeControlFrame(const uint8_t* data, size_t len) {
  Reader r(data, len);
  uint32_t magic = 0;
  uint16_t version = 0;
  if (!r.Get(&magic) || magic != kControlFrameMagic) {
    return InvalidArgumentError("bad control magic");
  }
  if (!r.Get(&version) || version != kControlFrameVersion) {
    return InvalidArgumentError("unsupported control version");
  }
  ControlFrame frame;
  uint8_t type = 0;
  uint32_t count = 0;
  if (!r.Get(&type) || !r.Get(&frame.sender) || !r.Get(&count)) {
    return InvalidArgumentError("truncated control frame");
  }
  if (type < static_cast<uint8_t>(ControlFrameType::kAnnounce) ||
      type > static_cast<uint8_t>(ControlFrameType::kTableAck)) {
    return InvalidArgumentError("unknown control frame type");
  }
  if (count > kMaxControlEntries) {
    return InvalidArgumentError("oversized control table");
  }
  frame.type = static_cast<ControlFrameType>(type);
  frame.entries.resize(count);
  for (ControlEntry& e : frame.entries) {
    if (!r.Get(&e.host_id) || !r.Get(&e.ipv4_be) || !r.Get(&e.port) ||
        !r.Get(&e.wire_min) || !r.Get(&e.wire_max)) {
      return InvalidArgumentError("truncated control entry");
    }
  }
  return frame;
}

}  // namespace snap
