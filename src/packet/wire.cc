#include "src/packet/wire.h"

#include <cstring>

#include "src/packet/crc32.h"

namespace snap {

namespace {

constexpr int kV1Size = 2 + 8 + 8 + 8 + 1 + 1 + 8 + 8 + 4 + 4 + 8 + 8 + 4 +
                        4 + 2 + 4;  // = 82
constexpr int kV2Extra = 8 + 8 + 2;  // tx_timestamp + ts_echo + batch
constexpr int kV2Size = kV1Size + kV2Extra;

// Writes into a caller-provided buffer of at least kV2Size bytes. CRC
// computation encodes every header twice per packet (tx stamp + rx
// verify), so this path must not touch the heap.
class Writer {
 public:
  explicit Writer(uint8_t* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(out_ + pos_, &value, sizeof(T));
    pos_ += sizeof(T);
  }

  size_t pos() const { return pos_; }

 private:
  uint8_t* out_;
  size_t pos_ = 0;
};

// Encodes into `out` (>= kV2Size bytes); returns the encoded length.
size_t EncodePonyHeaderRaw(const PonyHeader& h, uint8_t* out) {
  Writer w(out);
  w.Put<uint16_t>(h.version);
  w.Put<uint64_t>(h.flow_id);
  w.Put<uint64_t>(h.seq);
  w.Put<uint64_t>(h.ack);
  w.Put<uint8_t>(static_cast<uint8_t>(h.type));
  w.Put<uint8_t>(static_cast<uint8_t>(h.op));
  w.Put<uint64_t>(h.op_id);
  w.Put<uint64_t>(h.stream_id);
  w.Put<uint32_t>(h.msg_offset);
  w.Put<uint32_t>(h.msg_length);
  w.Put<uint64_t>(h.region_id);
  w.Put<uint64_t>(h.region_offset);
  w.Put<uint32_t>(h.op_length);
  w.Put<uint32_t>(h.credit);
  w.Put<uint16_t>(h.status);
  w.Put<uint32_t>(h.crc32);
  if (h.version >= 2) {
    w.Put<int64_t>(h.tx_timestamp);
    w.Put<int64_t>(h.ts_echo);
    w.Put<uint16_t>(h.batch);
  }
  return w.pos();
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  template <typename T>
  bool Get(T* value) {
    if (pos_ + sizeof(T) > len_) {
      return false;
    }
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace

int PonyHeaderWireSize(uint16_t version) {
  return version >= 2 ? kV2Size : kV1Size;
}

Status EncodePonyHeader(const PonyHeader& h, std::vector<uint8_t>* out) {
  if (h.version < kPonyWireVersionMin || h.version > kPonyWireVersionMax) {
    return InvalidArgumentError("unsupported wire version");
  }
  out->resize(PonyHeaderWireSize(h.version));
  EncodePonyHeaderRaw(h, out->data());
  return OkStatus();
}

StatusOr<PonyHeader> DecodePonyHeader(const uint8_t* data, size_t len) {
  Reader r(data, len);
  PonyHeader h;
  if (!r.Get(&h.version)) {
    return InvalidArgumentError("truncated header: version");
  }
  if (h.version < kPonyWireVersionMin || h.version > kPonyWireVersionMax) {
    return InvalidArgumentError("unsupported wire version");
  }
  uint8_t type = 0;
  uint8_t op = 0;
  bool ok = r.Get(&h.flow_id) && r.Get(&h.seq) && r.Get(&h.ack) &&
            r.Get(&type) && r.Get(&op) && r.Get(&h.op_id) &&
            r.Get(&h.stream_id) && r.Get(&h.msg_offset) &&
            r.Get(&h.msg_length) && r.Get(&h.region_id) &&
            r.Get(&h.region_offset) && r.Get(&h.op_length) &&
            r.Get(&h.credit) && r.Get(&h.status) && r.Get(&h.crc32);
  if (!ok) {
    return InvalidArgumentError("truncated header");
  }
  h.type = static_cast<PonyPacketType>(type);
  h.op = static_cast<PonyOpCode>(op);
  if (h.version >= 2) {
    if (!r.Get(&h.tx_timestamp) || !r.Get(&h.ts_echo) || !r.Get(&h.batch)) {
      return InvalidArgumentError("truncated v2 header");
    }
  }
  return h;
}

uint32_t PonyPacketCrc(const PonyHeader& header,
                       const std::vector<uint8_t>& payload) {
  if (header.version < kPonyWireVersionMin ||
      header.version > kPonyWireVersionMax) {
    return 0;
  }
  PonyHeader copy = header;
  copy.crc32 = 0;
  uint8_t encoded[kV2Size];
  size_t len = EncodePonyHeaderRaw(copy, encoded);
  uint32_t crc = Crc32c(encoded, len);
  if (!payload.empty()) {
    crc = Crc32c(payload.data(), payload.size(), crc);
  }
  return crc;
}

bool VerifyPonyPacketCrc(const PonyHeader& header,
                         const std::vector<uint8_t>& payload) {
  return header.crc32 == PonyPacketCrc(header, payload);
}

StatusOr<uint16_t> NegotiateWireVersion(uint16_t local_min, uint16_t local_max,
                                        uint16_t remote_min,
                                        uint16_t remote_max) {
  uint16_t lo = std::max(local_min, remote_min);
  uint16_t hi = std::min(local_max, remote_max);
  if (lo > hi) {
    return FailedPreconditionError("no common wire version");
  }
  return hi;
}

}  // namespace snap
