#include "src/packet/packet_pool.h"

#include "src/stats/telemetry.h"

namespace snap {

void PacketPool::ExportStats(Telemetry* telemetry,
                             const std::string& prefix) const {
  auto set = [&](const char* name, int64_t v) {
    telemetry->SetCounter(prefix + "/" + name, v);
  };
  set("allocated", stats_.allocated);
  set("peak_allocated", stats_.peak_allocated);
  set("total_allocs", stats_.total_allocs);
  set("failed_allocs", stats_.failed_allocs);
  set("fresh_allocs", stats_.fresh_allocs);
  set("recycled", stats_.recycled);
  set("recycled_with_capacity", stats_.recycled_with_capacity);
}

}  // namespace snap
