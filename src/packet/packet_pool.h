// Bounded packet allocator. Pony Express "implements custom memory
// allocators to optimize the dynamic creation and management of state"
// (Section 3.1); packet memory is drawn from per-engine pools that are
// charged to application memory containers (Section 2.5).
//
// The pool recycles Packet objects through per-size-class freelists and
// enforces a hard capacity so engine memory use is bounded; exhaustion
// surfaces as allocation failure (backpressure), never unbounded growth.
//
// Recycling preserves payload capacity: a freed packet keeps its `data`
// vector's heap buffer, and Allocate(payload_hint) hands it to the next
// caller of a compatible size, so steady-state traffic allocates no
// payload memory at all. Size classes keep 5kB-MTU data packets and
// ~100-byte acks from thrashing each other's buffers.
//
// Ownership: a pool belongs to exactly one shard (one engine / one
// simulation thread). Freelists and counters are deliberately unlocked —
// sharded simulations give each shard its own pool rather than sharing
// one behind a lock (docs/PARALLEL.md). Debug builds assert the
// single-thread discipline: every Allocate/Free after the first must come
// from the thread that first used the pool (call ResetOwnerThread if a
// pool legitimately migrates between phases, e.g. setup vs. run).
#ifndef SRC_PACKET_PACKET_POOL_H_
#define SRC_PACKET_PACKET_POOL_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/packet/packet.h"
#include "src/util/logging.h"

namespace snap {

class Telemetry;

class PacketPool {
 public:
  struct Stats {
    int64_t allocated = 0;      // currently outstanding
    int64_t peak_allocated = 0;
    int64_t total_allocs = 0;
    int64_t failed_allocs = 0;  // exhaustion events
    int64_t fresh_allocs = 0;   // served by make_unique (freelists empty)
    int64_t recycled = 0;       // served from a freelist
    // Recycled packets whose retained `data` capacity already covered the
    // caller's payload_hint -- i.e. recycling actually avoided a payload
    // reallocation (the point of keeping the buffers).
    int64_t recycled_with_capacity = 0;
  };

  explicit PacketPool(int64_t capacity, std::string owner = "")
      : capacity_(capacity), owner_(std::move(owner)) {}

  // Allocates a zero-initialized packet; nullptr when the pool is
  // exhausted. `payload_hint` is the payload size (bytes) the caller
  // expects to write; the pool prefers a recycled packet whose retained
  // buffer already fits it and pre-reserves the hint on a fresh packet.
  // The returned packet is indistinguishable from a fresh Packet{} except
  // for `data.capacity()`.
  PacketPtr Allocate(size_t payload_hint = 0) {
    AssertOwnerThread();
    if (stats_.allocated >= capacity_) {
      ++stats_.failed_allocs;
      return nullptr;
    }
    ++stats_.allocated;
    stats_.peak_allocated = std::max(stats_.peak_allocated, stats_.allocated);
    ++stats_.total_allocs;

    // Prefer the smallest class that fits the hint; fall back to smaller
    // classes (their buffers grow to fit) rather than allocating fresh.
    const int want = ClassForSize(payload_hint);
    for (int c = want; c < kNumClasses; ++c) {
      if (!free_lists_[c].empty()) {
        return TakeRecycled(c, payload_hint);
      }
    }
    for (int c = want - 1; c >= 0; --c) {
      if (!free_lists_[c].empty()) {
        return TakeRecycled(c, payload_hint);
      }
    }
    ++stats_.fresh_allocs;
    auto p = std::make_unique<Packet>();
    if (payload_hint > 0) {
      p->data.reserve(payload_hint);
    }
    return p;
  }

  // Returns a packet to the pool. The payload buffer is kept (cleared,
  // not shrunk) and filed by its capacity.
  void Free(PacketPtr packet) {
    AssertOwnerThread();
    if (packet == nullptr) {
      return;
    }
    --stats_.allocated;
    const int c = ClassForSize(packet->data.capacity());
    if (free_lists_[c].size() < kMaxRecycledPerClass) {
      ResetPreservingCapacity(packet.get());
      free_lists_[c].push_back(std::move(packet));
    }
  }

  int64_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }
  const std::string& owner() const { return owner_; }

  // Forgets the owning thread; the next Allocate/Free claims ownership.
  // For pools built during single-threaded setup and then handed to a
  // shard worker.
  void ResetOwnerThread() {
#ifndef NDEBUG
    owner_thread_ = std::thread::id{};
#endif
  }

  // Explicit ownership transfer: the calling thread becomes the owner
  // immediately. Unlike ResetOwnerThread (where whichever thread touches
  // the pool next wins — fine for sharded sims whose workers start in
  // lockstep), this is the handoff a live engine thread uses to claim a
  // pool the setup thread built and warmed: the claim itself asserts the
  // new discipline rather than leaving a window where any thread could.
  // The caller must guarantee no other thread touches the pool
  // concurrently with (or after) the transfer.
  void AdoptOwnerThread() {
#ifndef NDEBUG
    owner_thread_ = std::this_thread::get_id();
#endif
  }

  // Publishes pool counters as "<prefix>/allocated" etc. into the Telemetry
  // registry (defined in packet_pool.cc to keep the dependency out of line).
  void ExportStats(Telemetry* telemetry, const std::string& prefix) const;

  // Resets every field to its default while keeping `data`'s heap buffer.
  // Exposed for tests and for callers that recycle packets privately.
  static void ResetPreservingCapacity(Packet* p) {
    std::vector<uint8_t> data = std::move(p->data);
    *p = Packet{};
    data.clear();
    p->data = std::move(data);
  }

  // Size-class boundaries (payload bytes): acks/control, headers+small
  // RPCs, standard-MTU payloads, 5kB-MTU and larger.
  static constexpr size_t kClassLimit[] = {0, 128, 2048, SIZE_MAX};
  static constexpr int kNumClasses = 4;

  static int ClassForSize(size_t bytes) {
    for (int c = 0; c < kNumClasses - 1; ++c) {
      if (bytes <= kClassLimit[c]) {
        return c;
      }
    }
    return kNumClasses - 1;
  }

 private:
  static constexpr size_t kMaxRecycledPerClass = 1024;

  void AssertOwnerThread() {
#ifndef NDEBUG
    if (owner_thread_ == std::thread::id{}) {
      owner_thread_ = std::this_thread::get_id();
    }
    SNAP_CHECK(owner_thread_ == std::this_thread::get_id())
        << "PacketPool '" << owner_
        << "' used from two threads; give each shard its own pool";
#endif
  }

  PacketPtr TakeRecycled(int c, size_t payload_hint) {
    PacketPtr p = std::move(free_lists_[c].back());
    free_lists_[c].pop_back();
    ++stats_.recycled;
    if (payload_hint > 0 && p->data.capacity() >= payload_hint) {
      ++stats_.recycled_with_capacity;
    } else if (payload_hint > 0) {
      p->data.reserve(payload_hint);
    }
    return p;
  }

  int64_t capacity_;
  std::string owner_;
  Stats stats_;
  std::vector<PacketPtr> free_lists_[kNumClasses];
#ifndef NDEBUG
  std::thread::id owner_thread_{};
#endif
};

}  // namespace snap

#endif  // SRC_PACKET_PACKET_POOL_H_
