// Bounded packet allocator. Pony Express "implements custom memory
// allocators to optimize the dynamic creation and management of state"
// (Section 3.1); packet memory is drawn from per-engine pools that are
// charged to application memory containers (Section 2.5).
//
// The pool recycles Packet objects through a freelist and enforces a hard
// capacity so engine memory use is bounded; exhaustion surfaces as
// allocation failure (backpressure), never unbounded growth.
#ifndef SRC_PACKET_PACKET_POOL_H_
#define SRC_PACKET_PACKET_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/packet/packet.h"

namespace snap {

class PacketPool {
 public:
  struct Stats {
    int64_t allocated = 0;      // currently outstanding
    int64_t peak_allocated = 0;
    int64_t total_allocs = 0;
    int64_t failed_allocs = 0;  // exhaustion events
  };

  explicit PacketPool(int64_t capacity, std::string owner = "")
      : capacity_(capacity), owner_(std::move(owner)) {}

  // Allocates a zero-initialized packet; nullptr when the pool is exhausted.
  PacketPtr Allocate() {
    if (stats_.allocated >= capacity_) {
      ++stats_.failed_allocs;
      return nullptr;
    }
    ++stats_.allocated;
    stats_.peak_allocated = std::max(stats_.peak_allocated, stats_.allocated);
    ++stats_.total_allocs;
    if (!free_list_.empty()) {
      PacketPtr p = std::move(free_list_.back());
      free_list_.pop_back();
      *p = Packet{};
      return p;
    }
    return std::make_unique<Packet>();
  }

  // Returns a packet to the pool.
  void Free(PacketPtr packet) {
    if (packet == nullptr) {
      return;
    }
    --stats_.allocated;
    if (free_list_.size() < kMaxRecycled) {
      packet->data.clear();
      free_list_.push_back(std::move(packet));
    }
  }

  int64_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }
  const std::string& owner() const { return owner_; }

 private:
  static constexpr size_t kMaxRecycled = 4096;

  int64_t capacity_;
  std::string owner_;
  Stats stats_;
  std::vector<PacketPtr> free_list_;
};

}  // namespace snap

#endif  // SRC_PACKET_PACKET_POOL_H_
