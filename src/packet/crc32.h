// CRC32C (Castagnoli) implementation. Pony Express offloads "an end-to-end
// invariant CRC32 calculation over each packet" to the NIC (Section 3.4);
// the simulated NIC uses this software implementation, and tests verify
// corruption detection end-to-end.
#ifndef SRC_PACKET_CRC32_H_
#define SRC_PACKET_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace snap {

// Computes CRC32C over `data[0..len)`, seeded with `seed` (pass 0 for a
// fresh computation; chain calls to extend coverage).
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace snap

#endif  // SRC_PACKET_CRC32_H_
