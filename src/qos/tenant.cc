#include "src/qos/tenant.h"

#include <utility>

namespace snap::qos {

const char* TenantPriorityName(TenantPriority priority) {
  switch (priority) {
    case TenantPriority::kLatencySensitive:
      return "latency_sensitive";
    case TenantPriority::kNormal:
      return "normal";
    case TenantPriority::kScavenger:
      return "scavenger";
  }
  return "unknown";
}

TenantRegistry::TenantRegistry() {
  TenantSpec def;
  def.id = kDefaultTenant;
  def.name = "default";
  specs_[def.id] = std::move(def);
}

const TenantSpec& TenantRegistry::Register(TenantSpec spec) {
  if (spec.weight < 1) {
    spec.weight = 1;
  }
  TenantId id = spec.id;
  specs_[id] = std::move(spec);
  return specs_[id];
}

const TenantSpec* TenantRegistry::Find(TenantId id) const {
  auto it = specs_.find(id);
  return it == specs_.end() ? nullptr : &it->second;
}

uint32_t TenantRegistry::weight(TenantId id) const {
  const TenantSpec* spec = Find(id);
  return spec == nullptr ? 1 : spec->weight;
}

std::string TenantRegistry::DisplayName(TenantId id) const {
  const TenantSpec* spec = Find(id);
  if (spec != nullptr && !spec->name.empty()) {
    return spec->name;
  }
  std::string fallback = "t";
  fallback += std::to_string(id);
  return fallback;
}

void TenantRegistry::ForEach(
    const std::function<void(const TenantSpec&)>& fn) const {
  for (const auto& [id, spec] : specs_) {
    fn(spec);
  }
}

}  // namespace snap::qos
