// Token-bucket rate limiting, shared by the ShapingEngine's
// RateLimiterElement (src/snap/elements.h) and per-tenant client-side
// admission (PonyClient::Submit). One implementation, one set of tests;
// the arithmetic is the historical RateLimiterElement math verbatim so
// shaping traces are unchanged by the dedupe.
#ifndef SRC_QOS_TOKEN_BUCKET_H_
#define SRC_QOS_TOKEN_BUCKET_H_

#include <cstdint>

#include "src/util/time_types.h"

namespace snap::qos {

class TokenBucket {
 public:
  // Default-constructed buckets are unlimited (every TryConsume succeeds).
  TokenBucket() = default;
  // rate <= 0 also means unlimited. The bucket starts full.
  TokenBucket(double rate_bytes_per_sec, int64_t burst_bytes)
      : rate_(rate_bytes_per_sec),
        burst_(burst_bytes),
        tokens_(static_cast<double>(burst_bytes)) {}

  bool unlimited() const { return rate_ <= 0; }
  double rate_bytes_per_sec() const { return rate_; }
  int64_t burst_bytes() const { return burst_; }
  double tokens() const { return tokens_; }

  // Accrues tokens for the time since the last refill, capped at burst.
  void Refill(SimTime now) {
    if (unlimited() || now <= last_refill_) {
      return;
    }
    double accrued = tokens_ + rate_ * ToSec(now - last_refill_);
    double cap = static_cast<double>(burst_);
    tokens_ = accrued < cap ? accrued : cap;
    last_refill_ = now;
  }

  // Refills, then consumes `bytes` tokens if available.
  bool TryConsume(SimTime now, double bytes) {
    if (unlimited()) {
      return true;
    }
    Refill(now);
    if (tokens_ < bytes) {
      return false;
    }
    tokens_ -= bytes;
    return true;
  }

  // Peeks whether `bytes` tokens are available after refilling.
  bool CanConsume(SimTime now, double bytes) {
    if (unlimited()) {
      return true;
    }
    Refill(now);
    return tokens_ >= bytes;
  }

  // Returns unused tokens (e.g. a consume whose packet was then dropped).
  void Refund(double bytes) {
    if (unlimited()) {
      return;
    }
    double cap = static_cast<double>(burst_);
    tokens_ = tokens_ + bytes < cap ? tokens_ + bytes : cap;
  }

  // Earliest time `bytes` tokens will be available, extrapolating from the
  // last refill. Returns the last refill time when already available.
  SimTime AvailableAt(double bytes) const {
    if (unlimited() || tokens_ >= bytes) {
      return last_refill_;
    }
    double wait_sec = (bytes - tokens_) / rate_;
    return last_refill_ + static_cast<SimDuration>(wait_sec * 1e9);
  }

 private:
  double rate_ = 0;  // bytes per second; <= 0 disables limiting
  int64_t burst_ = 0;
  double tokens_ = 0;
  SimTime last_refill_ = 0;
};

}  // namespace snap::qos

#endif  // SRC_QOS_TOKEN_BUCKET_H_
