// Deterministic weighted-fair scheduler cores for multi-tenant QoS.
//
// DrrScheduler: deficit-weighted round robin over the set of active
// tenants. PonyEngine::Poll uses it to pick which tenant's flow list to
// service next, replacing flat flow_seq_ iteration when QoS is enabled.
//
// WfqScheduler: start-time fair queuing (SFQ) over per-tenant packet
// FIFOs. The Nic TX path uses it to drain per-tenant queues in weighted
// order when QoS is enabled.
//
// Both are plain data structures with no clocks or RNG: given the same
// call sequence they make the same decisions, so enabling QoS keeps the
// simulation bit-identical across reruns. Ties break toward the lower
// tenant id. Arithmetic is integer-only.
#ifndef SRC_QOS_SCHEDULER_H_
#define SRC_QOS_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "src/packet/packet.h"
#include "src/qos/tenant.h"

namespace snap::qos {

// Deficit round robin with per-tenant weights (DRR, Shreedhar &
// Varghese). Each pass visits every active tenant once in ascending id
// order starting from a rotating cursor; a visit replenishes the tenant's
// deficit by weight * quantum and then serves packets while the deficit
// stays positive. Deficits persist across passes: a tenant that
// overdraws (packets are indivisible) carries debt, and a pass aborted by
// an external budget resumes at the same tenant with its deficit intact —
// the "byte-deficit carryover" that makes long-run service proportional
// to weight.
class DrrScheduler {
 public:
  struct Options {
    // Bytes added per unit weight at each visit. Should be at least one
    // MTU so a weight-1 tenant can always send a full packet per pass.
    int64_t quantum_bytes = 32 * 1024;
  };

  DrrScheduler() = default;
  explicit DrrScheduler(Options options) : options_(options) {}

  // Weight used at the next replenish; unknown tenants default to 1.
  void SetWeight(TenantId id, uint32_t weight);
  uint32_t weight(TenantId id) const;

  // Active tenants are the ones with sendable work; only they are visited
  // (and replenished) by RunPass. Activation state is orthogonal to the
  // deficit, which persists across deactivate/activate.
  void Activate(TenantId id);
  void Deactivate(TenantId id);
  bool active(TenantId id) const { return active_.count(id) != 0; }
  size_t active_count() const { return active_.size(); }

  int64_t deficit(TenantId id) const;
  int64_t quantum_bytes() const { return options_.quantum_bytes; }

  // Runs one DRR pass. `serve` is called repeatedly for the tenant under
  // the cursor and returns:
  //   > 0  bytes just sent on behalf of the tenant (charged to its
  //        deficit; called again while the deficit stays positive),
  //   0    the tenant has nothing sendable right now — its unspent
  //        surplus is forfeited (classic DRR resets an emptied queue)
  //        but accumulated debt still carries; the pass moves on,
  //   < 0  abort the pass (caller ran out of CPU budget or TX slots);
  //        all deficits are preserved and the next pass resumes at the
  //        aborted tenant.
  // Returns total bytes served this pass.
  int64_t RunPass(const std::function<int64_t(TenantId)>& serve);

 private:
  struct State {
    uint32_t weight = 1;
    int64_t deficit = 0;
  };

  Options options_;
  std::map<TenantId, State> tenants_;
  std::set<TenantId> active_;
  // First tenant id to consider next pass (lower_bound into active_).
  TenantId cursor_ = 0;
};

// Start-time fair queuing over per-tenant FIFOs. Every enqueued packet
// gets a start tag max(virtual_time, tenant's last finish tag) and a
// finish tag start + wire_bytes * kWeightScale / weight; Dequeue returns
// the packet with the minimum finish tag (ties -> lower tenant id) and
// advances virtual time to that packet's start tag. When the scheduler
// drains completely all tags reset to zero, keeping values small and the
// state independent of ancient history.
class WfqScheduler {
 public:
  // Fixed-point scale for finish-tag arithmetic: tags advance by
  // bytes * kWeightScale / weight, so weight w tenants age 1/w as fast.
  static constexpr int64_t kWeightScale = 1 << 16;

  void SetWeight(TenantId id, uint32_t weight);
  uint32_t weight(TenantId id) const;

  void Enqueue(TenantId id, PacketPtr packet);
  // Removes and returns the packet with the minimum finish tag; nullptr
  // when empty.
  PacketPtr Dequeue();
  // Tenant Dequeue would serve next (meaningful only when !empty()).
  TenantId HeadTenant() const;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t queued(TenantId id) const;
  int64_t queued_bytes() const { return queued_bytes_; }
  int64_t virtual_time() const { return virtual_time_; }

 private:
  struct Entry {
    PacketPtr packet;
    int64_t start_tag = 0;
    int64_t finish_tag = 0;
  };
  struct TenantQueue {
    uint32_t weight = 1;
    int64_t last_finish = 0;
    std::deque<Entry> fifo;
  };

  // The non-empty queue with the minimum head finish tag (ascending-id
  // map scan, so ties resolve to the lower tenant id).
  std::map<TenantId, TenantQueue>::iterator MinQueue();

  std::map<TenantId, TenantQueue> queues_;
  int64_t virtual_time_ = 0;
  size_t size_ = 0;
  int64_t queued_bytes_ = 0;
};

}  // namespace snap::qos

#endif  // SRC_QOS_SCHEDULER_H_
