// Multi-tenant QoS: tenant identity and the registry of per-tenant policy
// (weight, priority class, admission rate limit).
//
// A tenant models one application sharing a Snap host (paper Section 2:
// many clients of one engine; Figure 2's "shaping" policy concern). Tenant
// ids ride on PonyCommand, Flow and Packet as plain integers; tenant 0 is
// the implicit default so untagged traffic behaves exactly as before QoS
// existed. All containers iterate in ascending tenant id so every consumer
// (DRR, WFQ, telemetry, invariant checks) is deterministic.
#ifndef SRC_QOS_TENANT_H_
#define SRC_QOS_TENANT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace snap::qos {

using TenantId = uint32_t;

// Untagged traffic. Always registered, weight 1, no rate limit.
inline constexpr TenantId kDefaultTenant = 0;

// Priority class, coarser than weights: latency-sensitive tenants sort
// ahead of normal ones at equal finish tags, scavengers behind. (The
// schedulers today use it only as a documented tie-break input; weights do
// the heavy lifting.)
enum class TenantPriority : uint8_t {
  kLatencySensitive = 0,
  kNormal = 1,
  kScavenger = 2,
};

const char* TenantPriorityName(TenantPriority priority);

struct TenantSpec {
  TenantId id = kDefaultTenant;
  std::string name = "default";
  // Relative share for DRR (engine) and WFQ (NIC TX). Must be >= 1.
  uint32_t weight = 1;
  TenantPriority priority = TenantPriority::kNormal;
  // Client-side admission token bucket (bytes/sec); <= 0 means no limit.
  // Enforced in PonyClient::Submit so an aggressor is backpressured at the
  // app boundary rather than inside the engine.
  double admission_rate_bytes_per_sec = 0;
  int64_t admission_burst_bytes = 256 * 1024;
};

// Registry of tenant specs shared by engines, NICs and clients. Built once
// at scenario setup and treated as immutable while the simulation runs, so
// raw pointers to it are safe to hand out.
class TenantRegistry {
 public:
  // Tenant 0 ("default", weight 1, unlimited) is always present.
  TenantRegistry();

  // Adds or replaces a tenant. Weight is clamped to >= 1.
  const TenantSpec& Register(TenantSpec spec);

  const TenantSpec* Find(TenantId id) const;
  // Weight for scheduling; unknown tenants get weight 1.
  uint32_t weight(TenantId id) const;
  // Display name; unknown tenants render as "t<id>".
  std::string DisplayName(TenantId id) const;
  size_t size() const { return specs_.size(); }

  // Ascending tenant id.
  void ForEach(const std::function<void(const TenantSpec&)>& fn) const;

 private:
  std::map<TenantId, TenantSpec> specs_;
};

}  // namespace snap::qos

#endif  // SRC_QOS_TENANT_H_
