#include "src/qos/scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace snap::qos {

void DrrScheduler::SetWeight(TenantId id, uint32_t weight) {
  tenants_[id].weight = weight < 1 ? 1 : weight;
}

uint32_t DrrScheduler::weight(TenantId id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? 1 : it->second.weight;
}

void DrrScheduler::Activate(TenantId id) {
  tenants_.try_emplace(id);  // default weight 1, zero deficit
  active_.insert(id);
}

void DrrScheduler::Deactivate(TenantId id) {
  if (active_.erase(id) == 0) {
    return;
  }
  // An idle tenant must not bank credit (that would let it burst far past
  // its share later); debt from an overdrawn final packet still carries.
  State& state = tenants_[id];
  state.deficit = std::min<int64_t>(state.deficit, 0);
}

int64_t DrrScheduler::deficit(TenantId id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? 0 : it->second.deficit;
}

int64_t DrrScheduler::RunPass(const std::function<int64_t(TenantId)>& serve) {
  if (active_.empty()) {
    return 0;
  }
  // Snapshot the visit order up front (ascending ids from the cursor,
  // wrapping once) so serve() callbacks may activate/deactivate tenants
  // without perturbing this pass.
  std::vector<TenantId> order;
  order.reserve(active_.size());
  auto it = active_.lower_bound(cursor_);
  for (size_t i = 0; i < active_.size(); ++i) {
    if (it == active_.end()) {
      it = active_.begin();
    }
    order.push_back(*it);
    ++it;
  }
  int64_t total = 0;
  for (TenantId id : order) {
    if (active_.count(id) == 0) {
      continue;  // deactivated mid-pass by a serve() callback
    }
    State& state = tenants_[id];
    state.deficit +=
        static_cast<int64_t>(state.weight) * options_.quantum_bytes;
    while (state.deficit > 0) {
      int64_t bytes = serve(id);
      if (bytes < 0) {
        // External budget exhausted: keep every deficit (including this
        // tenant's fresh replenish) and resume here next pass.
        cursor_ = id;
        return total;
      }
      if (bytes == 0) {
        // Nothing sendable: forfeit the surplus, carry any debt.
        state.deficit = std::min<int64_t>(state.deficit, 0);
        break;
      }
      state.deficit -= bytes;
      total += bytes;
    }
  }
  // Completed pass: start the next one just after this pass's first stop.
  cursor_ = order.front() + 1;
  return total;
}

void WfqScheduler::SetWeight(TenantId id, uint32_t weight) {
  queues_[id].weight = weight < 1 ? 1 : weight;
}

uint32_t WfqScheduler::weight(TenantId id) const {
  auto it = queues_.find(id);
  return it == queues_.end() ? 1 : it->second.weight;
}

void WfqScheduler::Enqueue(TenantId id, PacketPtr packet) {
  SNAP_CHECK(packet != nullptr);
  TenantQueue& queue = queues_[id];
  Entry entry;
  entry.start_tag = std::max(virtual_time_, queue.last_finish);
  entry.finish_tag =
      entry.start_tag + packet->wire_bytes * kWeightScale /
                            static_cast<int64_t>(queue.weight);
  queue.last_finish = entry.finish_tag;
  queued_bytes_ += packet->wire_bytes;
  entry.packet = std::move(packet);
  queue.fifo.push_back(std::move(entry));
  ++size_;
}

std::map<TenantId, WfqScheduler::TenantQueue>::iterator
WfqScheduler::MinQueue() {
  auto best = queues_.end();
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    if (it->second.fifo.empty()) {
      continue;
    }
    if (best == queues_.end() ||
        it->second.fifo.front().finish_tag <
            best->second.fifo.front().finish_tag) {
      best = it;
    }
  }
  return best;
}

PacketPtr WfqScheduler::Dequeue() {
  auto it = MinQueue();
  if (it == queues_.end()) {
    return nullptr;
  }
  Entry entry = std::move(it->second.fifo.front());
  it->second.fifo.pop_front();
  --size_;
  queued_bytes_ -= entry.packet->wire_bytes;
  virtual_time_ = std::max(virtual_time_, entry.start_tag);
  if (size_ == 0) {
    // Fully drained: reset tags so long-idle tenants do not inherit stale
    // (and ever-growing) virtual-time state.
    virtual_time_ = 0;
    queued_bytes_ = 0;
    for (auto& [id, queue] : queues_) {
      queue.last_finish = 0;
    }
  }
  return std::move(entry.packet);
}

TenantId WfqScheduler::HeadTenant() const {
  auto best = const_cast<WfqScheduler*>(this)->MinQueue();
  SNAP_CHECK(best != queues_.end()) << "HeadTenant on empty WfqScheduler";
  return best->first;
}

size_t WfqScheduler::queued(TenantId id) const {
  auto it = queues_.find(id);
  return it == queues_.end() ? 0 : it->second.fifo.size();
}

}  // namespace snap::qos
