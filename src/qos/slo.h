// Per-tenant SLO monitor with multi-window burn-rate alerting.
//
// A tenant's SLO has two parts: a latency objective ("99.9% of requests
// complete under T") and an optional goodput floor ("the tenant moves at
// least B bytes/sec"). The monitor consumes per-request latencies,
// admission-throttle events (a throttled request never completes, so it
// counts against the latency objective), and per-delivery byte counts,
// all in simulated time, and evaluates SRE-style multi-window burn-rate
// alerts at fixed slot boundaries: an alert fires only when BOTH a fast
// window (catches sudden budget burn: upgrade blackouts, brownout
// stalls) and a slow window (filters one-slot blips) exceed their burn
// thresholds, and clears only when both drop back below. Burn rate =
// bad-fraction / error-budget-fraction; a burn of 1.0 consumes the
// budget exactly at the objective's rate.
//
// Memory is O(tenants * slow_window_slots): one Slot ring per tenant,
// no per-request state. Everything is integer arithmetic on
// deterministic inputs, so for a given seed the alert sequence — event
// kinds, firing times (always slot boundaries), burn values — is
// byte-reproducible, and exports to trace (kSloTrack instants),
// Telemetry (qos/slo/<tenant>/... counters) and SnapshotJson are
// deterministic too. The monitor is pure observation: it never feeds
// back into the simulation.
#ifndef SRC_QOS_SLO_H_
#define SRC_QOS_SLO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/stats/telemetry.h"
#include "src/stats/trace.h"
#include "src/util/time_types.h"

namespace snap::qos {

using TenantId = uint32_t;

struct SloTarget {
  // A request is "bad" when its latency exceeds this (or it was
  // admission-throttled).
  SimDuration latency_threshold = 1 * kMsec;
  // Fraction of requests that must be good (0.999 => 0.1% error budget).
  double latency_objective = 0.999;
  // Goodput floor in bytes/sec; <= 0 disables the goodput SLO. A slot is
  // "bad" when the tenant moved fewer bytes than the floor pro-rated to
  // the slot width; the burn rate is the bad-slot fraction against a 5%
  // budget (the floor is expected to be met ~always).
  int64_t min_goodput_bytes_per_sec = 0;
};

struct SloAlertEvent {
  TenantId tenant = 0;
  const char* kind = "latency";  // "latency" | "goodput"
  bool firing = false;           // true = fired, false = cleared
  SimTime at = 0;                // always a slot boundary
  int64_t fast_burn_milli = 0;   // burn rate x1000 at evaluation
  int64_t slow_burn_milli = 0;
};

class SloMonitor {
 public:
  struct Options {
    SimDuration slot_width = 1 * kMsec;
    int fast_window_slots = 5;   // 5ms at the default slot width
    int slow_window_slots = 60;  // 60ms
    // Thresholds x1000. The defaults are the classic 14.4x/6x pair
    // (fast catches a full-budget burn in minutes-equivalent, slow
    // confirms it is sustained).
    int64_t fast_burn_threshold_milli = 14400;
    int64_t slow_burn_threshold_milli = 6000;
  };

  SloMonitor() : SloMonitor(Options()) {}
  explicit SloMonitor(Options options);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  // Declares a tenant worth monitoring. `name` labels trace/telemetry
  // output. Call before feeding data.
  void SetTarget(TenantId tenant, const std::string& name, SloTarget target);

  // Optional export surfaces; alerts are recorded internally either way.
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  // --- Data feeds (sim-time order; unknown tenants are ignored) ---
  void RecordLatency(TenantId tenant, SimTime now, SimDuration latency);
  // Admission throttle / brownout rejection: counts as a bad request.
  void RecordThrottle(TenantId tenant, SimTime now);
  void RecordGoodput(TenantId tenant, SimTime now, int64_t bytes);

  // Closes every slot boundary <= now and evaluates alerts. Call from a
  // periodic event (serial) or a barrier hook (sharded); cadence coarser
  // than slot_width just closes several slots at once.
  void Advance(SimTime now);

  bool latency_firing(TenantId tenant) const;
  bool goodput_firing(TenantId tenant) const;
  // Latest evaluated latency burn rates (x1000), 0 before any slot closed.
  int64_t fast_burn_milli(TenantId tenant) const;
  int64_t slow_burn_milli(TenantId tenant) const;

  // Every fire/clear transition, in order. Deterministic per seed.
  const std::vector<SloAlertEvent>& events() const { return events_; }

  // {"slot_width_ns":...,"tenants":{"<name>":{"latency_firing":...,
  //  "fast_burn_milli":...,...}}} — consumed by tools/snaptop.py.
  std::string SnapshotJson() const;

 private:
  struct Slot {
    int64_t good = 0;
    int64_t bad = 0;
    int64_t bytes = 0;
  };
  struct TenantState {
    std::string name;
    SloTarget target;
    int64_t budget_ppm = 1000;      // latency error budget, parts/million
    int64_t min_bytes_per_slot = 0;  // goodput floor pro-rated to a slot
    std::vector<Slot> ring;          // slow_window_slots closed slots
    Slot current;                    // the open slot
    int64_t closed = 0;              // slots closed since start
    bool latency_firing = false;
    bool goodput_firing = false;
    int64_t last_fast_burn_milli = 0;
    int64_t last_slow_burn_milli = 0;
    int64_t goodput_fast_milli = 0;
    int64_t goodput_slow_milli = 0;
  };

  void CloseSlot(SimTime boundary);
  // Burn x1000 over the most recent `window` closed slots.
  int64_t LatencyBurnMilli(const TenantState& ts, int window) const;
  int64_t GoodputBurnMilli(const TenantState& ts, int window) const;
  void Transition(TenantId id, TenantState* ts, const char* kind,
                  bool* firing, SimTime at, int64_t fast, int64_t slow);

  Options options_;
  TraceRecorder* tracer_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  std::map<TenantId, TenantState> tenants_;
  int64_t closed_slots_ = 0;  // global slot clock: slot k = [k*w, (k+1)*w)
  std::vector<SloAlertEvent> events_;
};

}  // namespace snap::qos

#endif  // SRC_QOS_SLO_H_
