#include "src/qos/slo.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace snap::qos {

SloMonitor::SloMonitor(Options options) : options_(options) {
  SNAP_CHECK_GT(options_.slot_width, 0);
  SNAP_CHECK_GE(options_.fast_window_slots, 1);
  SNAP_CHECK_GE(options_.slow_window_slots, options_.fast_window_slots);
}

void SloMonitor::SetTarget(TenantId tenant, const std::string& name,
                           SloTarget target) {
  TenantState& ts = tenants_[tenant];
  ts.name = name;
  ts.target = target;
  // The budget is fixed at registration so burn math is pure integer
  // arithmetic afterwards.
  ts.budget_ppm = std::max<int64_t>(
      1, std::llround((1.0 - target.latency_objective) * 1e6));
  ts.min_bytes_per_slot =
      target.min_goodput_bytes_per_sec > 0
          ? target.min_goodput_bytes_per_sec * options_.slot_width / kSec
          : 0;
  ts.ring.assign(options_.slow_window_slots, Slot{});
}

void SloMonitor::RecordLatency(TenantId tenant, SimTime now,
                               SimDuration latency) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Advance(now);
  Slot& s = it->second.current;
  if (latency > it->second.target.latency_threshold) {
    ++s.bad;
  } else {
    ++s.good;
  }
}

void SloMonitor::RecordThrottle(TenantId tenant, SimTime now) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Advance(now);
  ++it->second.current.bad;
}

void SloMonitor::RecordGoodput(TenantId tenant, SimTime now, int64_t bytes) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Advance(now);
  it->second.current.bytes += bytes;
}

void SloMonitor::Advance(SimTime now) {
  while ((closed_slots_ + 1) * options_.slot_width <= now) {
    CloseSlot((closed_slots_ + 1) * options_.slot_width);
  }
}

int64_t SloMonitor::LatencyBurnMilli(const TenantState& ts,
                                     int window) const {
  int64_t good = 0;
  int64_t bad = 0;
  const int have = static_cast<int>(
      std::min<int64_t>(ts.closed, options_.slow_window_slots));
  for (int i = 0; i < std::min(window, have); ++i) {
    const Slot& s =
        ts.ring[(ts.closed - 1 - i) % options_.slow_window_slots];
    good += s.good;
    bad += s.bad;
  }
  const int64_t total = good + bad;
  if (total == 0) return 0;
  // burn = (bad/total) / (budget_ppm/1e6), scaled x1000:
  return bad * 1000000000 / (total * ts.budget_ppm);
}

int64_t SloMonitor::GoodputBurnMilli(const TenantState& ts,
                                     int window) const {
  if (ts.min_bytes_per_slot <= 0) return 0;
  const int have = static_cast<int>(
      std::min<int64_t>(ts.closed, options_.slow_window_slots));
  const int n = std::min(window, have);
  if (n == 0) return 0;
  int64_t bad_slots = 0;
  for (int i = 0; i < n; ++i) {
    const Slot& s =
        ts.ring[(ts.closed - 1 - i) % options_.slow_window_slots];
    if (s.bytes < ts.min_bytes_per_slot) ++bad_slots;
  }
  // Bad-slot fraction against a fixed 5% budget, x1000. (A 10% budget
  // would cap the burn at 10x, below the 14.4x fast threshold — the
  // alert could never fire.)
  return bad_slots * 20000 / n;
}

void SloMonitor::Transition(TenantId id, TenantState* ts, const char* kind,
                            bool* firing, SimTime at, int64_t fast,
                            int64_t slow) {
  const bool above = fast > options_.fast_burn_threshold_milli &&
                     slow > options_.slow_burn_threshold_milli;
  const bool below = fast <= options_.fast_burn_threshold_milli &&
                     slow <= options_.slow_burn_threshold_milli;
  bool changed = false;
  if (!*firing && above) {
    *firing = true;
    changed = true;
  } else if (*firing && below) {
    *firing = false;
    changed = true;
  }
  if (!changed) return;
  SloAlertEvent event;
  event.tenant = id;
  event.kind = kind;
  event.firing = *firing;
  event.at = at;
  event.fast_burn_milli = fast;
  event.slow_burn_milli = slow;
  events_.push_back(event);
  if (telemetry_ != nullptr) {
    const std::string base = "qos/slo/" + ts->name + "/";
    if (*firing) {
      telemetry_->GetCounter(base + kind + "_alerts")->Increment();
    } else {
      telemetry_->GetCounter(base + kind + "_clears")->Increment();
    }
  }
  if (tracer_ != nullptr) {
    std::string name = (*firing ? "slo_fire:" : "slo_clear:") + ts->name +
                       "/" + kind;
    std::string args = "{\"fast_milli\":" + std::to_string(fast) +
                       ",\"slow_milli\":" + std::to_string(slow) + "}";
    tracer_->Instant(at, TraceRecorder::kSloTrack, std::move(name), "slo",
                     std::move(args));
  }
}

void SloMonitor::CloseSlot(SimTime boundary) {
  for (auto& [id, ts] : tenants_) {
    ts.ring[ts.closed % options_.slow_window_slots] = ts.current;
    ts.current = Slot{};
    ++ts.closed;
    const int64_t lat_fast = LatencyBurnMilli(ts, options_.fast_window_slots);
    const int64_t lat_slow = LatencyBurnMilli(ts, options_.slow_window_slots);
    ts.last_fast_burn_milli = lat_fast;
    ts.last_slow_burn_milli = lat_slow;
    Transition(id, &ts, "latency", &ts.latency_firing, boundary, lat_fast,
               lat_slow);
    if (ts.min_bytes_per_slot > 0) {
      const int64_t gp_fast = GoodputBurnMilli(ts, options_.fast_window_slots);
      const int64_t gp_slow = GoodputBurnMilli(ts, options_.slow_window_slots);
      ts.goodput_fast_milli = gp_fast;
      ts.goodput_slow_milli = gp_slow;
      Transition(id, &ts, "goodput", &ts.goodput_firing, boundary, gp_fast,
                 gp_slow);
    }
  }
  ++closed_slots_;
}

bool SloMonitor::latency_firing(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.latency_firing;
}

bool SloMonitor::goodput_firing(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.goodput_firing;
}

int64_t SloMonitor::fast_burn_milli(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.last_fast_burn_milli;
}

int64_t SloMonitor::slow_burn_milli(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.last_slow_burn_milli;
}

std::string SloMonitor::SnapshotJson() const {
  std::string out =
      "{\"slot_width_ns\":" + std::to_string(options_.slot_width) +
      ",\"fast_window_slots\":" + std::to_string(options_.fast_window_slots) +
      ",\"slow_window_slots\":" + std::to_string(options_.slow_window_slots) +
      ",\"tenants\":{";
  bool first = true;
  for (const auto& [id, ts] : tenants_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + ts.name + "\":{";
    out += "\"tenant_id\":" + std::to_string(id);
    out += ",\"latency_firing\":";
    out += ts.latency_firing ? "true" : "false";
    out += ",\"goodput_firing\":";
    out += ts.goodput_firing ? "true" : "false";
    out += ",\"fast_burn_milli\":" + std::to_string(ts.last_fast_burn_milli);
    out += ",\"slow_burn_milli\":" + std::to_string(ts.last_slow_burn_milli);
    out += ",\"goodput_fast_milli\":" + std::to_string(ts.goodput_fast_milli);
    out += ",\"goodput_slow_milli\":" + std::to_string(ts.goodput_slow_milli);
    out += ",\"closed_slots\":" + std::to_string(ts.closed);
    out += "}";
  }
  out += "},\"alerts\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out += ",";
    const SloAlertEvent& e = events_[i];
    out += "{\"tenant\":" + std::to_string(e.tenant);
    out += ",\"kind\":\"" + std::string(e.kind) + "\"";
    out += ",\"firing\":";
    out += e.firing ? "true" : "false";
    out += ",\"at_ns\":" + std::to_string(e.at);
    out += ",\"fast_milli\":" + std::to_string(e.fast_burn_milli);
    out += ",\"slow_milli\":" + std::to_string(e.slow_burn_milli);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace snap::qos
