#include "src/pony/pony_module.h"

#include "src/util/logging.h"

namespace snap {

std::unique_ptr<Engine> PonyModule::RestoreEngine(
    const std::string& engine_name, StateReader* state, Engine* old_engine) {
  auto* old_pony = dynamic_cast<PonyEngine*>(old_engine);
  SNAP_CHECK(old_pony != nullptr) << "restore of non-Pony engine";
  // The new engine keeps the old engine's fabric address so peers' flows
  // and the NIC steering key remain valid.
  auto fresh = std::make_unique<PonyEngine>(
      engine_name, sim_, nic_, old_pony->engine_id(), pony_params_,
      timely_params_, directory_);
  fresh->DeserializeState(state);
  // Client channels live in shared memory and survive the upgrade
  // ("authenticated application connections remain established"): rebind
  // them to the new engine and re-register their memory regions.
  PonyClient* old_sink = old_pony->default_sink();
  std::vector<PonyClient*> clients = old_pony->clients();
  for (PonyClient* client : clients) {
    client->Rebind(fresh.get());
    fresh->AttachClient(client);
  }
  if (old_sink != nullptr) {
    fresh->SetDefaultSink(old_sink);
  }
  for (PonyClient* client : clients) {
    // Region registrations are re-established from the (still-mapped)
    // shared memory segments.
    for (const auto& [region_id, region_ptr] :
         RegionsOf(client)) {
      fresh->RegisterRegion(region_ptr);
    }
  }
  return fresh;
}

std::vector<std::pair<uint64_t, MemoryRegion*>> PonyModule::RegionsOf(
    PonyClient* client) {
  std::vector<std::pair<uint64_t, MemoryRegion*>> out;
  client->ForEachRegion([&out](uint64_t id, MemoryRegion* region) {
    out.emplace_back(id, region);
  });
  return out;
}

std::unique_ptr<PonyClient> PonyModule::CreateClient(
    PonyEngine* engine, const std::string& app_name) {
  // Client ids must be globally unique: stream ids derive from them and
  // are demultiplexed at REMOTE engines, so two hosts minting the same id
  // would cross-deliver each other's messages.
  uint64_t client_id =
      (static_cast<uint64_t>(nic_->host_id() + 1) << 20) | next_client_id_++;
  auto client = std::make_unique<PonyClient>(app_name, client_id, engine,
                                             app_params_);
  engine->AttachClient(client.get());
  return client;
}

}  // namespace snap
