#include "src/pony/timely.h"

namespace snap {

void TimelyController::OnRttSample(SimDuration rtt, SimTime now) {
  if (rtt <= 0) {
    return;
  }
  if (prev_rtt_ == 0) {
    prev_rtt_ = rtt;
    return;
  }
  if (now - last_update_ < params_.update_interval) {
    return;
  }
  last_update_ = now;
  double new_diff = static_cast<double>(rtt - prev_rtt_);
  prev_rtt_ = rtt;
  rtt_diff_ = (1.0 - params_.ewma_alpha) * rtt_diff_ +
              params_.ewma_alpha * new_diff;
  double gradient = rtt_diff_ / static_cast<double>(params_.min_rtt);

  if (rtt < params_.t_low) {
    // Far from congestion: additive increase.
    increase_streak_ = 0;
    rate_ += params_.additive_increment;
  } else if (rtt > params_.t_high) {
    // Hard bound on tail latency: decrease proportional to overshoot.
    increase_streak_ = 0;
    rate_ *= 1.0 - params_.beta *
                       (1.0 - static_cast<double>(params_.t_high) /
                                  static_cast<double>(rtt));
  } else if (gradient <= 0) {
    // Queues draining: increase; repeated negatives enter
    // hyperactive-increase (HAI) mode with a larger step.
    ++increase_streak_;
    double step = params_.additive_increment;
    if (increase_streak_ >= params_.hai_threshold) {
      step *= 5;
    }
    rate_ += step;
  } else {
    // Queues building: decrease proportional to the gradient.
    increase_streak_ = 0;
    rate_ *= 1.0 - params_.beta * std::min(gradient, 1.0);
  }
  rate_ = std::clamp(rate_, params_.min_rate_bytes_per_sec,
                     params_.max_rate_bytes_per_sec);
}

}  // namespace snap
