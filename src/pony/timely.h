// Timely congestion control (Mittal et al., SIGCOMM '15) — "the congestion
// control algorithm we deploy with Pony Express is a variant of Timely"
// (Section 3.1). Rate-based control driven by the gradient of RTT samples:
// RTT below Tlow -> additive increase; above Thigh -> multiplicative
// decrease proportional to overshoot; otherwise follow the gradient
// (increase on negative, decrease proportional to positive).
#ifndef SRC_PONY_TIMELY_H_
#define SRC_PONY_TIMELY_H_

#include <algorithm>
#include <cstdint>

#include "src/util/time_types.h"

namespace snap {

struct TimelyParams {
  double min_rate_bytes_per_sec = 10e6;     // 80 Mbps floor
  double max_rate_bytes_per_sec = 12.5e9;   // 100 Gbps line rate
  double additive_increment = 200e6;        // bytes/sec per update
  double beta = 0.3;                        // multiplicative decrease factor
  double ewma_alpha = 0.46;                 // RTT-gradient EWMA weight
  // RTT here includes remote engine batching/queueing (acks are generated
  // by the engine), so the thresholds sit above the engine-loaded RTT of a
  // healthy receiver and below pathological switch-queue buildup.
  SimDuration t_low = 15 * kUsec;
  SimDuration t_high = 250 * kUsec;
  SimDuration min_rtt = 10 * kUsec;
  int hai_threshold = 5;  // consecutive gradient increases before HAI mode
  // Timely updates once per RTT of data, not per ack ("Timely" Section 4):
  // rate decisions are spaced at least this far apart.
  SimDuration update_interval = 25 * kUsec;
};

class TimelyController {
 public:
  explicit TimelyController(const TimelyParams& params)
      : params_(params), rate_(params.max_rate_bytes_per_sec) {}

  // Feeds one RTT sample observed at `now`; updates the pacing rate at
  // most once per update_interval.
  void OnRttSample(SimDuration rtt, SimTime now);

  // Severe loss signal (RTO): halve the rate.
  void OnRetransmitTimeout() {
    rate_ = std::max(params_.min_rate_bytes_per_sec, rate_ * 0.5);
  }

  double rate_bytes_per_sec() const { return rate_; }
  SimDuration last_rtt() const { return prev_rtt_; }

  // For state migration (upgrades preserve congestion state).
  void RestoreRate(double rate) {
    rate_ = std::clamp(rate, params_.min_rate_bytes_per_sec,
                       params_.max_rate_bytes_per_sec);
  }

 private:
  TimelyParams params_;
  double rate_;
  double rtt_diff_ = 0;
  SimDuration prev_rtt_ = 0;
  SimTime last_update_ = -kSec;
  int increase_streak_ = 0;
};

}  // namespace snap

#endif  // SRC_PONY_TIMELY_H_
