// A Pony Express engine (Section 3.1, Figure 4): "services incoming
// packets, interacts with applications, runs state machines to advance
// messaging and one-sided operations, and generates outgoing packets."
//
// Structure per the paper:
//  - upper layer: operation state machines (two-sided messaging with
//    streams; one-sided read/write/indirect-read/scan-and-read) and a flow
//    mapper from application connections to flows;
//  - lower layer: reliable flows with Timely congestion control
//    (src/pony/flow.h).
//
// Packets are generated just-in-time against NIC TX descriptor
// availability; RX and command queues are polled in bounded batches
// (default 16) to trade latency against bandwidth.
#ifndef SRC_PONY_PONY_ENGINE_H_
#define SRC_PONY_PONY_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/nic.h"
#include "src/pony/client.h"
#include "src/pony/flow.h"
#include "src/pony/memory_region.h"
#include "src/pony/pony_types.h"
#include "src/qos/scheduler.h"
#include "src/qos/tenant.h"
#include "src/sim/model_params.h"
#include "src/sim/substrate.h"
#include "src/snap/engine.h"

namespace snap {

class PonyDirectory;
class Telemetry;

class PonyEngine : public Engine {
 public:
  PonyEngine(std::string name, Substrate* sim, Nic* nic, uint32_t engine_id,
             const PonyParams& params, const TimelyParams& timely_params,
             PonyDirectory* directory);
  ~PonyEngine() override;

  PonyAddress address() const {
    return PonyAddress{nic_->host_id(), engine_id_};
  }
  uint32_t engine_id() const { return engine_id_; }
  SimTime now() const { return sim_->now(); }
  const PonyParams& params() const { return params_; }

  // --- Engine interface ---
  PollResult Poll(SimTime now, SimDuration budget_ns) override;
  bool HasWork(SimTime now) const override;
  SimDuration QueueingDelay(SimTime now) const override;

  // --- Upgrade hooks ---
  void Detach() override;
  void Attach() override;
  void SerializeState(StateWriter* w) const override;
  void DeserializeState(StateReader* r) override;
  StateFootprint Footprint() const override;

  // --- Client attachment (control plane) ---
  void AttachClient(PonyClient* client);
  void DetachClient(PonyClient* client);
  const std::vector<PonyClient*>& clients() const { return clients_; }
  // Incoming messages on unbound streams go to this client.
  void SetDefaultSink(PonyClient* client) { default_sink_ = client; }
  PonyClient* default_sink() { return default_sink_; }

  // --- Client-library hooks ---
  void RegisterRegion(MemoryRegion* region) { regions_.Register(region); }
  void UnregisterRegion(uint64_t id) { regions_.Unregister(id); }
  void BindStream(uint64_t stream_id, PonyClient* client, PonyAddress peer);
  void NoteMessageConsumed(PonyAddress peer, int64_t bytes);

  // Version range this engine advertises (tests exercise negotiation).
  void SetWireVersions(uint16_t min_version, uint16_t max_version);

  struct Stats {
    int64_t rx_packets = 0;
    int64_t tx_packets = 0;
    int64_t messages_delivered = 0;
    int64_t message_bytes_delivered = 0;
    int64_t ops_executed = 0;          // target-side one-sided executions
    int64_t indirections_executed = 0;
    int64_t completions = 0;
    int64_t op_errors = 0;
    int64_t crc_drops = 0;
    // Packets marked corrupted by fault injection that nevertheless passed
    // CRC verification and were consumed. Must stay 0: the end-to-end CRC
    // is the only thing standing between a flipped bit and the application.
    int64_t corrupt_accepted = 0;
    // Completed messages held back so a stream delivers in send order (a
    // later message's fragments can all arrive before an earlier message's
    // retransmitted hole fills).
    int64_t messages_held_for_order = 0;
  };
  const Stats& stats() const { return stats_; }

  Flow* FindFlow(PonyAddress peer);
  size_t flow_count() const { return flows_.size(); }
  // Read-only flow iteration (invariant checkers).
  void ForEachFlow(const std::function<void(const Flow&)>& fn) const {
    for (const auto& [key, flow] : flows_) {
      fn(flow);
    }
  }

  // --- Multi-tenant QoS (src/qos/) ---
  // Switches flow servicing from flat round-robin over flow_seq_ to
  // deficit-weighted round robin across per-tenant flow lists. Weights
  // come from `tenants` (must outlive the engine). Default off; the
  // legacy path is untouched and bit-identical.
  void EnableQos(const qos::TenantRegistry* tenants);
  bool qos_enabled() const { return qos_ != nullptr; }
  const qos::TenantRegistry* tenant_registry() const {
    return qos_ == nullptr ? nullptr : qos_->tenants;
  }
  const Nic* nic() const { return nic_; }

  struct TenantStats {
    int64_t tx_packets = 0;
    int64_t tx_bytes = 0;
    int64_t rx_packets = 0;
    int64_t rx_bytes = 0;
    int64_t messages_delivered = 0;
    int64_t message_bytes_delivered = 0;
    // Modeled engine CPU attributed to this tenant (TX packet generation
    // + RX processing), the CPU-share half of the QoS telemetry.
    int64_t cpu_ns = 0;
  };
  struct TenantSnapshot {
    qos::TenantId id = qos::kDefaultTenant;
    int64_t deficit = 0;      // current DRR deficit (may be negative debt)
    bool sendable = false;    // some flow of this tenant could TX right now
    size_t flows = 0;
    TenantStats stats;
  };
  // Per-tenant scheduling state for invariant checkers / telemetry, in
  // ascending tenant id. Empty unless QoS is enabled.
  void ForEachTenant(const std::function<void(const TenantSnapshot&)>& fn)
      const;
  // Registers per-tenant counters under "<prefix>/<tenant-name>/...".
  void ExportQosStats(Telemetry* telemetry, const std::string& prefix) const;
  // Emits a trace instant for a client-side admission block/unblock edge
  // (called by PonyClient when its token bucket starts/stops throttling).
  void TraceQosAdmission(qos::TenantId tenant, bool blocked);

 private:
  struct PendingOp {
    uint64_t client_id = 0;
    PonyCommandType type = PonyCommandType::kRead;
    SimTime submit_time = 0;
    int64_t expected_bytes = 0;
  };

  // A two-sided send in flight: completes when every fragment is acked.
  struct SendOp {
    uint64_t client_id = 0;
    SimTime submit_time = 0;
    int64_t remaining = 0;
    int64_t total = 0;
  };

  struct Assembly {
    PonyAddress from;
    uint64_t stream_id = 0;
    int64_t received = 0;
    int64_t total = 0;
    std::vector<uint8_t> data;
    SimTime first_rx = 0;
    // Highest flow seq among this message's fragments: the message may only
    // be handed to the application once the flow's cumulative receive point
    // passes it (all earlier messages on the flow are then complete too, so
    // per-stream submission order is preserved under packet reordering).
    uint64_t last_seq = 0;
  };

  struct StreamBinding {
    uint64_t client_id = 0;
    PonyAddress peer;
  };

  Flow& GetOrCreateFlow(PonyAddress peer, uint16_t wire_version_hint,
                        qos::TenantId tenant = qos::kDefaultTenant);
  // Rebuilds flow_seq_ (key-ordered Flow pointers) after a flows_ insert.
  void RebuildFlowSeq();
  // QoS bookkeeping: buckets a new flow under its tenant; retags a
  // default-tenant flow the first time tagged traffic claims it.
  void QosAddFlow(Flow* flow);
  void QosRetagFlow(Flow* flow, qos::TenantId tenant);
  bool TransmitFromFlowsQos(SimTime now, SimDuration budget,
                            SimDuration* cost, int* work);
  void InstallAckObserver(Flow* flow);
  void OnFragmentAcked(const TxRecord& record);
  void HandleRxPacket(PacketPtr packet, SimTime now, SimDuration* cost);
  void HandleDataFragment(Flow& flow, const Packet& packet, SimTime now,
                          SimDuration* cost);
  // Delivers a completed message, or appends it to stalled_messages_ when
  // the client ring is full (or earlier stalls exist — FIFO preserved).
  void DeliverOrStall(Flow& flow, PonyIncomingMessage&& msg);
  // Hands over every held message whose last_seq the flow's cumulative
  // receive point has passed, in seq order.
  void ReleaseHeldMessages(uint64_t wire_flow_id, Flow& flow);
  void HandleOpRequest(Flow& flow, const Packet& packet, SimTime now,
                       SimDuration* cost);
  void HandleOpResponse(const Packet& packet, SimTime now,
                        SimDuration* cost);
  void HandleCommand(PonyClient* client, PonyCommand cmd, SimTime now,
                     SimDuration* cost);
  PonyClient* FindClient(uint64_t client_id);
  bool TransmitFromFlows(SimTime now, SimDuration budget, SimDuration* cost,
                         int* work);
  void FlushAcksAndCredits(SimTime now, SimDuration* cost, int* work);
  void RetryPendingDeliveries(int* work);
  void UpdateWakeTimer(SimTime now);
  SimDuration RxCopyCost(int64_t bytes) const;

  std::string module_name_;
  Substrate* sim_;
  Nic* nic_;
  uint32_t engine_id_;
  PonyParams params_;
  TimelyParams timely_params_;
  PonyDirectory* directory_;
  RxQueue* rx_ = nullptr;
  bool attached_ = false;
  uint16_t wire_min_ = 1;
  uint16_t wire_max_ = 2;

  std::map<FlowKey, Flow> flows_;
  // flows_ in key order as raw pointers: the engine's poll loops walk every
  // flow several times per iteration, and map nodes are pointer-chases.
  // Valid because flows are never erased (map nodes are address-stable);
  // rebuilt on every insert. Same order as iterating flows_ directly.
  std::vector<Flow*> flow_seq_;
  // Single-entry lookup cache: RX batches land on the same flow back to
  // back, so GetOrCreateFlow is a map find per packet without it. Never
  // invalidated (flows are never erased).
  Flow* last_flow_ = nullptr;
  std::map<uint64_t, StreamBinding> streams_;
  std::map<uint64_t, PendingOp> pending_ops_;
  std::map<uint64_t, SendOp> send_ops_;
  // Reassembly of in-flight messages, keyed by (wire flow id, op id).
  std::map<std::pair<uint64_t, uint64_t>, Assembly> assemblies_;
  // Completed messages awaiting in-order release, keyed wire flow id ->
  // last fragment seq -> message (see Assembly::last_seq).
  std::map<uint64_t, std::map<uint64_t, PonyIncomingMessage>> held_;
  // Spare map nodes for assemblies_/held_ inner maps. Both maps see one
  // insert + one erase per message (op ids are monotone, so keys never
  // repeat); recycling the extracted nodes turns that churn into
  // pointer swaps. Bounded: overflow nodes are simply freed.
  static constexpr size_t kSpareNodeCap = 64;
  std::vector<std::map<std::pair<uint64_t, uint64_t>, Assembly>::node_type>
      assembly_spare_;
  std::vector<std::map<uint64_t, PonyIncomingMessage>::node_type>
      held_spare_;
  RegionRegistry regions_;
  std::vector<PonyClient*> clients_;
  PonyClient* default_sink_ = nullptr;
  // Deliveries that found the client queue full (receiver-driven flow
  // control: credits are only granted once delivery succeeds).
  std::vector<std::pair<PonyClient*, PonyIncomingMessage>> stalled_messages_;
  std::vector<std::pair<PonyClient*, PonyCompletion>> stalled_completions_;

  EventHandle wake_timer_;
  size_t flow_cursor_ = 0;
  Stats stats_;

  // QoS state (null when disabled). Flows are bucketed per tenant; the DRR
  // scheduler picks the tenant to serve and each tenant group keeps its own
  // round-robin cursor over its flow list.
  struct TenantGroup {
    std::vector<Flow*> flows;
    size_t cursor = 0;
    TenantStats stats;
  };
  struct QosState {
    const qos::TenantRegistry* tenants = nullptr;
    qos::DrrScheduler drr;
    std::map<qos::TenantId, TenantGroup> groups;
  };
  std::unique_ptr<QosState> qos_;
};

// Directory of Pony engines on the fabric: models the out-of-band TCP
// channel used to advertise wire-protocol version ranges (Section 3.1) and
// to resolve engine addresses.
class PonyDirectory {
 public:
  struct Entry {
    uint16_t wire_min = 1;
    uint16_t wire_max = 2;
    PonyEngine* engine = nullptr;
  };

  void Register(PonyAddress address, Entry entry) {
    entries_[address] = entry;
  }
  void Unregister(PonyAddress address) { entries_.erase(address); }

  const Entry* Find(PonyAddress address) const {
    auto it = entries_.find(address);
    return it == entries_.end() ? nullptr : &it->second;
  }

  uint32_t AllocateEngineId() { return next_engine_id_++; }

 private:
  std::map<PonyAddress, Entry> entries_;
  uint32_t next_engine_id_ = 1;
};

}  // namespace snap

#endif  // SRC_PONY_PONY_ENGINE_H_
