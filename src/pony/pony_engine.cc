#include "src/pony/pony_engine.h"

#include <algorithm>
#include <cstring>

#include "src/packet/wire.h"
#include "src/stats/telemetry.h"
#include "src/util/logging.h"

namespace snap {

namespace {

// Start/end points of a sampled message's lifecycle flow (the mid-flow
// packet points are emitted via TracePacketPoint in src/net/nic.h).
inline void TraceMessagePoint(Substrate* sim, char phase, uint64_t op_id,
                              const char* point) {
#ifndef SNAP_DISABLE_PACKET_TRACE
  TraceRecorder* tracer = sim->tracer();
  if (tracer == nullptr || !tracer->ShouldSampleMessage(op_id)) {
    return;
  }
  tracer->FlowPoint(phase, sim->now(),
                    tracer->current_core_or(TraceRecorder::kFabricTrack),
                    op_id, "msg", "pkt", TraceArgStr("point", point));
#else
  (void)sim;
  (void)phase;
  (void)op_id;
  (void)point;
#endif
}

}  // namespace

PonyEngine::PonyEngine(std::string name, Substrate* sim, Nic* nic,
                       uint32_t engine_id, const PonyParams& params,
                       const TimelyParams& timely_params,
                       PonyDirectory* directory)
    : Engine(std::move(name)),
      sim_(sim),
      nic_(nic),
      engine_id_(engine_id),
      params_(params),
      timely_params_(timely_params),
      directory_(directory) {
  rx_ = nic_->CreateRxQueue();
  rx_->DisableInterrupts();
  PonyEngine* self = this;
  rx_->SetPollWatcher([self] { self->NotifyWork(); });
  Attach();
  if (directory_ != nullptr) {
    directory_->Register(address(),
                         PonyDirectory::Entry{wire_min_, wire_max_, this});
  }
}

PonyEngine::~PonyEngine() {
  wake_timer_.Cancel();
  if (attached_) {
    (void)nic_->RemoveSteeringFilter(engine_id_);
  }
}

void PonyEngine::SetWireVersions(uint16_t min_version, uint16_t max_version) {
  SNAP_CHECK_LE(min_version, max_version);
  wire_min_ = min_version;
  wire_max_ = max_version;
  if (directory_ != nullptr) {
    directory_->Register(address(),
                         PonyDirectory::Entry{wire_min_, wire_max_, this});
  }
}

void PonyEngine::Attach() {
  if (!attached_) {
    SNAP_CHECK_OK(nic_->InstallSteeringFilter(engine_id_, rx_));
    attached_ = true;
  }
}

void PonyEngine::Detach() {
  if (attached_) {
    SNAP_CHECK_OK(nic_->RemoveSteeringFilter(engine_id_));
    attached_ = false;
  }
  wake_timer_.Cancel();
}

void PonyEngine::AttachClient(PonyClient* client) {
  clients_.push_back(client);
  if (default_sink_ == nullptr) {
    default_sink_ = client;
  }
}

void PonyEngine::DetachClient(PonyClient* client) {
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
  if (default_sink_ == client) {
    default_sink_ = clients_.empty() ? nullptr : clients_.front();
  }
}

void PonyEngine::BindStream(uint64_t stream_id, PonyClient* client,
                            PonyAddress peer) {
  streams_[stream_id] = StreamBinding{client->client_id(), peer};
}

void PonyEngine::NoteMessageConsumed(PonyAddress peer, int64_t bytes) {
  Flow* flow = FindFlow(peer);
  if (flow != nullptr) {
    flow->NoteDelivered(bytes);
  }
}

Flow* PonyEngine::FindFlow(PonyAddress peer) {
  auto it = flows_.find(FlowKey{peer.host, peer.engine_id});
  return it == flows_.end() ? nullptr : &it->second;
}

Flow& PonyEngine::GetOrCreateFlow(PonyAddress peer,
                                  uint16_t wire_version_hint,
                                  qos::TenantId tenant) {
  FlowKey key{peer.host, peer.engine_id};
  if (last_flow_ != nullptr && last_flow_->key() == key) {
    if (tenant != qos::kDefaultTenant &&
        last_flow_->tenant() == qos::kDefaultTenant) {
      QosRetagFlow(last_flow_, tenant);
    }
    return *last_flow_;
  }
  auto it = flows_.find(key);
  if (it != flows_.end()) {
    last_flow_ = &it->second;
    if (tenant != qos::kDefaultTenant &&
        it->second.tenant() == qos::kDefaultTenant) {
      QosRetagFlow(&it->second, tenant);
    }
    return it->second;
  }
  // Version negotiation over the out-of-band channel: highest version both
  // ends support. A hint from an arriving packet pins the version the peer
  // already chose.
  uint16_t version = wire_version_hint;
  if (version == 0) {
    version = wire_max_;
    if (directory_ != nullptr) {
      const PonyDirectory::Entry* remote = directory_->Find(peer);
      if (remote != nullptr) {
        auto negotiated = NegotiateWireVersion(
            wire_min_, wire_max_, remote->wire_min, remote->wire_max);
        SNAP_CHECK(negotiated.ok()) << "no common wire version with peer";
        version = *negotiated;
      }
    }
  }
  auto [fit, inserted] = flows_.emplace(
      key, Flow(key, nic_->host_id(), engine_id_, version, timely_params_,
                &params_));
  fit->second.set_tenant(tenant);
  InstallAckObserver(&fit->second);
  RebuildFlowSeq();
  QosAddFlow(&fit->second);
  last_flow_ = &fit->second;
  return fit->second;
}

void PonyEngine::EnableQos(const qos::TenantRegistry* tenants) {
  if (qos_ != nullptr) {
    return;
  }
  qos_ = std::make_unique<QosState>();
  qos_->tenants = tenants;
  if (tenants != nullptr) {
    tenants->ForEach([this](const qos::TenantSpec& spec) {
      qos_->drr.SetWeight(spec.id, spec.weight);
    });
  }
  // Flows that predate the switch (e.g. deserialized state) keep their
  // serialized tenant tags; bucket them now.
  for (Flow* flow : flow_seq_) {
    QosAddFlow(flow);
  }
}

void PonyEngine::QosAddFlow(Flow* flow) {
  if (qos_ == nullptr) {
    return;
  }
  qos_->groups[flow->tenant()].flows.push_back(flow);
}

void PonyEngine::QosRetagFlow(Flow* flow, qos::TenantId tenant) {
  qos::TenantId old_tenant = flow->tenant();
  flow->set_tenant(tenant);
  if (qos_ == nullptr || old_tenant == tenant) {
    return;
  }
  TenantGroup& from = qos_->groups[old_tenant];
  auto& flows = from.flows;
  flows.erase(std::remove(flows.begin(), flows.end(), flow), flows.end());
  if (from.cursor >= flows.size()) {
    from.cursor = 0;
  }
  qos_->groups[tenant].flows.push_back(flow);
}

void PonyEngine::RebuildFlowSeq() {
  flow_seq_.clear();
  flow_seq_.reserve(flows_.size());
  for (auto& [key, flow] : flows_) {
    flow_seq_.push_back(&flow);
  }
}

void PonyEngine::InstallAckObserver(Flow* flow) {
  PonyEngine* self = this;
  flow->set_ack_observer(
      [self](const TxRecord& record) { self->OnFragmentAcked(record); });
}

void PonyEngine::OnFragmentAcked(const TxRecord& record) {
  if (record.header.type != PonyPacketType::kData) {
    return;
  }
  auto it = send_ops_.find(record.header.op_id);
  if (it == send_ops_.end()) {
    return;
  }
  SendOp& op = it->second;
  op.remaining -= record.payload_bytes;
  if (op.remaining > 0) {
    return;
  }
  // Reliable delivery achieved: complete the send to the application.
  PonyClient* client = FindClient(op.client_id);
  if (client != nullptr) {
    PonyCompletion completion;
    completion.op_id = it->first;
    completion.status = PonyOpStatus::kOk;
    completion.length = op.total;
    completion.submit_time = op.submit_time;
    completion.complete_time = sim_->now();
    ++stats_.completions;
    if (!client->DeliverCompletion(std::move(completion))) {
      stalled_completions_.emplace_back(client, std::move(completion));
    }
  }
  send_ops_.erase(it);
}

SimDuration PonyEngine::RxCopyCost(int64_t bytes) const {
  if (params_.ioat_copy_offload) {
    // The copy engine moves the bytes; the core pays only descriptor setup.
    return params_.ioat_setup_cost;
  }
  return static_cast<SimDuration>(params_.rx_copy_ns_per_byte *
                                  static_cast<double>(bytes));
}

// ---------------------------------------------------------------------------
// Poll loop
// ---------------------------------------------------------------------------

Engine::PollResult PonyEngine::Poll(SimTime now, SimDuration budget_ns) {
  PollResult result;
  result.cpu_ns += params_.poll_overhead;

  // 1. RX batch (default 16 packets, Section 3.1).
  for (int i = 0; i < params_.rx_batch && result.cpu_ns < budget_ns; ++i) {
    PacketPtr p = rx_->Poll();
    if (p == nullptr) {
      break;
    }
    ++result.work_items;
    HandleRxPacket(std::move(p), now, &result.cpu_ns);
  }

  // 2. Application command queues.
  for (PonyClient* client : clients_) {
    for (int i = 0; i < params_.cmd_batch && result.cpu_ns < budget_ns;
         ++i) {
      auto cmd = client->command_queue().TryPop();
      if (!cmd.has_value()) {
        break;
      }
      ++result.work_items;
      result.cpu_ns += params_.per_op_cost;
      HandleCommand(client, std::move(*cmd), now, &result.cpu_ns);
    }
  }

  // 3. Deliveries that previously hit full client queues.
  RetryPendingDeliveries(&result.work_items);

  // 4. Timers (RTO) and just-in-time packet generation: deficit-weighted
  // round robin across per-tenant flow lists when QoS is on, flat
  // round-robin over flow_seq_ otherwise.
  if (qos_ != nullptr) {
    TransmitFromFlowsQos(now, budget_ns, &result.cpu_ns,
                         &result.work_items);
  } else {
    TransmitFromFlows(now, budget_ns, &result.cpu_ns, &result.work_items);
  }

  // 5. Acks and credit grants for flows touched this pass.
  FlushAcksAndCredits(now, &result.cpu_ns, &result.work_items);

  // 6. If future work exists (pacing gaps, RTOs), arm a wake timer so
  // blocking schedulers resume us.
  UpdateWakeTimer(now);
  return result;
}

void PonyEngine::HandleRxPacket(PacketPtr packet, SimTime now,
                                SimDuration* cost) {
  ++stats_.rx_packets;
  TracePacketPoint(sim_, *packet, "rx_engine");
  SimDuration rx_cost;
  if (packet->pony.type == PonyPacketType::kAck ||
      packet->pony.type == PonyPacketType::kCredit) {
    // Header-only control packets take a short path through the engine.
    rx_cost = 100 * kNsec;
  } else {
    rx_cost = params_.per_packet_cost +
              static_cast<SimDuration>(params_.proc_ns_per_byte *
                                       static_cast<double>(
                                           packet->payload_bytes));
  }
  *cost += rx_cost;
  // End-to-end CRC verification (offloaded on real NICs; Section 3.4).
  // Every packet built by a Flow carries a CRC over header + payload;
  // crc32 == 0 marks hand-built test packets that opted out.
  if (packet->pony.crc32 != 0 &&
      !VerifyPonyPacketCrc(packet->pony, packet->data)) {
    ++stats_.crc_drops;
    return;
  }
  if (packet->chaos_corrupted) {
    // Fault injection flipped CRC-covered bytes yet verification passed:
    // a corrupt packet is about to be consumed. Must never happen.
    ++stats_.corrupt_accepted;
  }
  PonyAddress peer{packet->src_host,
                   static_cast<uint32_t>(packet->pony.flow_id >> 32)};
  // RX-created flows inherit the arriving packet's tenant tag, so a
  // server-side engine attributes its reverse flows correctly.
  Flow& flow = GetOrCreateFlow(peer, packet->pony.version, packet->tenant);
  if (qos_ != nullptr) {
    TenantStats& tstats = qos_->groups[flow.tenant()].stats;
    ++tstats.rx_packets;
    tstats.rx_bytes += packet->wire_bytes;
    tstats.cpu_ns += rx_cost;
  }
  Flow::RxResult rx = flow.OnReceive(*packet, now);
  if (!rx.deliver) {
    return;
  }
  switch (packet->pony.type) {
    case PonyPacketType::kData:
      HandleDataFragment(flow, *packet, now, cost);
      break;
    case PonyPacketType::kOpRequest:
      HandleOpRequest(flow, *packet, now, cost);
      break;
    case PonyPacketType::kOpResponse:
      HandleOpResponse(*packet, now, cost);
      break;
    default:
      break;
  }
  if (packet->pony.seq != 0) {
    // A sequenced packet may have filled a receive hole; completed messages
    // parked behind that hole are now releasable.
    ReleaseHeldMessages(packet->pony.flow_id, flow);
  }
}

void PonyEngine::HandleDataFragment(Flow& flow, const Packet& packet,
                                    SimTime now, SimDuration* cost) {
  const PonyHeader& h = packet.pony;
  auto key = std::make_pair(h.flow_id, h.op_id);
  auto ait = assemblies_.find(key);
  if (ait == assemblies_.end()) {
    if (!assembly_spare_.empty()) {
      auto node = std::move(assembly_spare_.back());
      assembly_spare_.pop_back();
      node.key() = key;
      node.mapped() = Assembly{};
      ait = assemblies_.insert(std::move(node)).position;
    } else {
      ait = assemblies_.try_emplace(key).first;
    }
  }
  Assembly& assembly = ait->second;
  if (assembly.total == 0) {
    assembly.from = PonyAddress{packet.src_host,
                                static_cast<uint32_t>(h.flow_id >> 32)};
    assembly.stream_id = h.stream_id;
    assembly.total = h.msg_length;
    assembly.first_rx = now;
  }
  assembly.last_seq = std::max(assembly.last_seq, h.seq);
  // Copy fragment payload into the application-visible buffer. The buffer
  // is sized lazily on the first fragment that carries real bytes (pure
  // synthetic payloads never allocate).
  *cost += RxCopyCost(packet.payload_bytes);
  if (!packet.data.empty()) {
    if (assembly.data.size() < h.msg_length) {
      assembly.data.resize(h.msg_length);
    }
    size_t end = std::min<size_t>(assembly.data.size(),
                                  h.msg_offset + packet.data.size());
    if (end > h.msg_offset) {
      std::copy(packet.data.begin(),
                packet.data.begin() + (end - h.msg_offset),
                assembly.data.begin() + h.msg_offset);
    }
  }
  assembly.received += packet.payload_bytes;
  if (assembly.received < assembly.total) {
    return;
  }
  // Message complete. It is handed over only once the flow's cumulative
  // receive point passes its last fragment (ReleaseHeldMessages, called by
  // HandleRxPacket after every sequenced packet): per-stream fragment seqs
  // are monotone across messages, so this restores submission order when
  // fragments of a later message overtake an earlier message's hole. The
  // in-order arrival case releases on this very packet.
  PonyIncomingMessage msg;
  msg.from = assembly.from;
  msg.stream_id = assembly.stream_id;
  msg.op_id = h.op_id;
  msg.length = assembly.total;
  msg.data = std::move(assembly.data);
  msg.receive_time = now;
  uint64_t release_seq = assembly.last_seq;
  {
    auto node = assemblies_.extract(ait);
    if (assembly_spare_.size() < kSpareNodeCap) {
      assembly_spare_.push_back(std::move(node));
    }
  }
  if (flow.rcv_nxt() <= release_seq) {
    ++stats_.messages_held_for_order;
  }
  auto& by_seq = held_[h.flow_id];
  auto hit = by_seq.find(release_seq);
  if (hit != by_seq.end()) {
    // Duplicate completion (retransmitted fragments): overwrite, matching
    // the old operator[] semantics.
    hit->second = std::move(msg);
  } else if (!held_spare_.empty()) {
    auto node = std::move(held_spare_.back());
    held_spare_.pop_back();
    node.key() = release_seq;
    node.mapped() = std::move(msg);
    by_seq.insert(std::move(node));
  } else {
    by_seq.emplace(release_seq, std::move(msg));
  }
}

void PonyEngine::ReleaseHeldMessages(uint64_t wire_flow_id, Flow& flow) {
  auto hit = held_.find(wire_flow_id);
  if (hit == held_.end()) {
    return;
  }
  auto& by_seq = hit->second;
  while (!by_seq.empty() && by_seq.begin()->first < flow.rcv_nxt()) {
    PonyIncomingMessage msg = std::move(by_seq.begin()->second);
    auto node = by_seq.extract(by_seq.begin());
    if (held_spare_.size() < kSpareNodeCap) {
      held_spare_.push_back(std::move(node));
    }
    DeliverOrStall(flow, std::move(msg));
  }
  // A drained inner map stays in held_ (flow ids are long-lived and
  // bounded); serialization and Footprint() already skip empty entries.
}

void PonyEngine::DeliverOrStall(Flow& flow, PonyIncomingMessage&& msg) {
  PonyClient* target = default_sink_;
  auto sit = streams_.find(msg.stream_id);
  if (sit != streams_.end()) {
    PonyClient* bound = FindClient(sit->second.client_id);
    if (bound != nullptr) {
      target = bound;
    }
  }
  if (target == nullptr) {
    return;  // no application attached; drop (credits never granted)
  }
  int64_t len = msg.length;
  uint64_t op_id = msg.op_id;
  // Earlier stalled deliveries must drain first or they would be overtaken.
  if (stalled_messages_.empty() && target->DeliverMessage(std::move(msg))) {
    TraceMessagePoint(sim_, 'f', op_id, "deliver");
    ++stats_.messages_delivered;
    stats_.message_bytes_delivered += len;
    if (qos_ != nullptr) {
      TenantStats& tstats = qos_->groups[flow.tenant()].stats;
      ++tstats.messages_delivered;
      tstats.message_bytes_delivered += len;
    }
    // Receiver-driven flow control: delivering into the application's
    // posted receive ring frees pool buffers; grant credit back. Large
    // (posted-buffer) messages never consumed pool credit.
    if (len <= params_.credit_message_threshold) {
      flow.NoteDelivered(len);
    }
  } else {
    stalled_messages_.emplace_back(target, std::move(msg));
  }
}

void PonyEngine::HandleOpRequest(Flow& flow, const Packet& packet,
                                 SimTime now, SimDuration* cost) {
  const PonyHeader& h = packet.pony;
  ++stats_.ops_executed;
  *cost += params_.onesided_exec_cost;

  TxRecord reply;
  reply.header.type = PonyPacketType::kOpResponse;
  reply.header.op = h.op;
  reply.header.op_id = h.op_id;
  reply.header.status = static_cast<uint16_t>(PonyOpStatus::kOk);
  reply.uses_credit = false;

  MemoryRegion* region = regions_.Find(h.region_id);
  auto fail = [&](PonyOpStatus status) {
    ++stats_.op_errors;
    reply.header.status = static_cast<uint16_t>(status);
    reply.payload_bytes = 0;
  };

  if (region == nullptr) {
    fail(PonyOpStatus::kNoSuchRegion);
  } else {
    switch (h.op) {
      case PonyOpCode::kRead: {
        if (h.region_offset + h.op_length > region->data.size()) {
          fail(PonyOpStatus::kOutOfBounds);
          break;
        }
        reply.payload_bytes = static_cast<int32_t>(h.op_length);
        if (!region->data.empty() && h.op_length <= (1 << 16)) {
          reply.data.assign(
              region->data.begin() + h.region_offset,
              region->data.begin() + h.region_offset + h.op_length);
        }
        break;
      }
      case PonyOpCode::kWrite: {
        if (h.region_offset + h.op_length > region->data.size()) {
          fail(PonyOpStatus::kOutOfBounds);
          break;
        }
        if (!region->allow_remote_write) {
          fail(PonyOpStatus::kPermissionDenied);
          break;
        }
        if (!packet.data.empty()) {
          std::copy(packet.data.begin(), packet.data.end(),
                    region->data.begin() + h.region_offset);
        }
        *cost += RxCopyCost(h.op_length);
        reply.payload_bytes = 0;
        reply.header.op_length = h.op_length;
        break;
      }
      case PonyOpCode::kIndirectRead: {
        // The indirection table holds u64 byte-offsets into the same
        // region; entry i of the request batch is table index
        // (region_offset + i). Each indirection fetches op_length bytes.
        uint16_t batch = std::max<uint16_t>(1, h.batch);
        uint64_t table_end = (h.region_offset + batch) * 8;
        if (table_end > region->data.size()) {
          fail(PonyOpStatus::kOutOfBounds);
          break;
        }
        int64_t total = 0;
        bool ok = true;
        for (uint16_t i = 0; i < batch && ok; ++i) {
          *cost += params_.indirection_cost;
          ++stats_.indirections_executed;
          uint64_t entry_off = (h.region_offset + i) * 8;
          uint64_t target = 0;
          std::memcpy(&target, region->data.data() + entry_off, 8);
          if (target + h.op_length > region->data.size()) {
            fail(PonyOpStatus::kOutOfBounds);
            ok = false;
            break;
          }
          if (h.op_length <= (1 << 16)) {
            reply.data.insert(
                reply.data.end(), region->data.begin() + target,
                region->data.begin() + target + h.op_length);
          }
          total += h.op_length;
        }
        if (ok) {
          reply.payload_bytes = static_cast<int32_t>(total);
          reply.header.batch = batch;
        }
        break;
      }
      case PonyOpCode::kScanAndRead: {
        // Region layout: (key u64, offset u64) pairs; match the key, fetch
        // op_length bytes at the associated offset.
        size_t pairs = region->data.size() / 16;
        bool found = false;
        for (size_t i = 0; i < pairs; ++i) {
          *cost += 5 * kNsec;  // per-entry scan cost
          uint64_t entry_key = 0;
          std::memcpy(&entry_key, region->data.data() + i * 16, 8);
          if (entry_key == h.region_offset) {
            uint64_t target = 0;
            std::memcpy(&target, region->data.data() + i * 16 + 8, 8);
            if (target + h.op_length > region->data.size()) {
              fail(PonyOpStatus::kOutOfBounds);
            } else {
              reply.payload_bytes = static_cast<int32_t>(h.op_length);
              if (h.op_length <= (1 << 16)) {
                reply.data.assign(
                    region->data.begin() + target,
                    region->data.begin() + target + h.op_length);
              }
            }
            found = true;
            break;
          }
        }
        if (!found) {
          fail(PonyOpStatus::kNoMatch);
        }
        break;
      }
      default:
        fail(PonyOpStatus::kAborted);
        break;
    }
  }
  flow.QueueTx(std::move(reply));
}

void PonyEngine::HandleOpResponse(const Packet& packet, SimTime now,
                                  SimDuration* cost) {
  const PonyHeader& h = packet.pony;
  auto it = pending_ops_.find(h.op_id);
  if (it == pending_ops_.end()) {
    return;  // duplicate response after completion
  }
  PendingOp op = it->second;
  pending_ops_.erase(it);
  PonyClient* client = FindClient(op.client_id);
  if (client == nullptr) {
    return;
  }
  *cost += RxCopyCost(packet.payload_bytes);
  PonyCompletion completion;
  completion.op_id = h.op_id;
  completion.status = static_cast<PonyOpStatus>(h.status);
  completion.length = packet.payload_bytes;
  completion.data = packet.data;
  completion.submit_time = op.submit_time;
  completion.complete_time = now;
  ++stats_.completions;
  if (!client->DeliverCompletion(std::move(completion))) {
    stalled_completions_.emplace_back(client, std::move(completion));
  }
}

void PonyEngine::HandleCommand(PonyClient* client, PonyCommand cmd,
                               SimTime now, SimDuration* cost) {
  Flow& flow = GetOrCreateFlow(cmd.peer, 0, cmd.tenant);
  switch (cmd.type) {
    case PonyCommandType::kSendMessage: {
      TraceMessagePoint(sim_, 's', cmd.op_id, "app_enqueue");
      // Fragment the message across MTU-sized packets; all fragments share
      // the op id for reassembly. TX is zero-copy (Section 6.2).
      int64_t length = std::max<int64_t>(
          cmd.length, static_cast<int64_t>(cmd.data.size()));
      if (length == 0) {
        length = 1;  // zero-length messages still occupy one packet
      }
      // Small messages draw on the credit-managed shared pool; large ones
      // use receiver-driven buffer posting and bypass credits.
      bool uses_credit = length <= params_.credit_message_threshold;
      int64_t offset = 0;
      while (offset < length) {
        int64_t chunk =
            std::min<int64_t>(params_.mtu_payload, length - offset);
        TxRecord rec;
        rec.header.type = PonyPacketType::kData;
        rec.header.op_id = cmd.op_id;
        rec.header.stream_id = cmd.stream_id;
        rec.header.msg_offset = static_cast<uint32_t>(offset);
        rec.header.msg_length = static_cast<uint32_t>(length);
        rec.payload_bytes = static_cast<int32_t>(chunk);
        rec.uses_credit = uses_credit;
        // Real payload bytes may cover only a prefix of the (synthetic)
        // message length — e.g. an RPC header riding a larger request.
        if (offset < static_cast<int64_t>(cmd.data.size())) {
          int64_t data_end = std::min<int64_t>(
              static_cast<int64_t>(cmd.data.size()), offset + chunk);
          rec.data.assign(cmd.data.begin() + offset,
                          cmd.data.begin() + data_end);
        }
        flow.QueueTx(std::move(rec));
        offset += chunk;
      }
      // The send completes when every fragment has been acked (reliable
      // delivery), throttling applications to transport progress.
      SendOp op;
      op.client_id = client->client_id();
      op.submit_time = cmd.submit_time;
      op.remaining = length;
      op.total = length;
      send_ops_[cmd.op_id] = op;
      break;
    }
    case PonyCommandType::kRead:
    case PonyCommandType::kWrite:
    case PonyCommandType::kIndirectRead:
    case PonyCommandType::kScanAndRead: {
      TxRecord rec;
      rec.header.type = PonyPacketType::kOpRequest;
      rec.header.op_id = cmd.op_id;
      rec.header.region_id = cmd.region_id;
      rec.uses_credit = false;
      switch (cmd.type) {
        case PonyCommandType::kRead:
          rec.header.op = PonyOpCode::kRead;
          rec.header.region_offset = cmd.region_offset;
          rec.header.op_length = static_cast<uint32_t>(cmd.length);
          break;
        case PonyCommandType::kWrite:
          rec.header.op = PonyOpCode::kWrite;
          rec.header.region_offset = cmd.region_offset;
          rec.header.op_length = static_cast<uint32_t>(
              std::max<int64_t>(cmd.length,
                                static_cast<int64_t>(cmd.data.size())));
          rec.payload_bytes = static_cast<int32_t>(rec.header.op_length);
          rec.data = std::move(cmd.data);
          break;
        case PonyCommandType::kIndirectRead:
          rec.header.op = PonyOpCode::kIndirectRead;
          rec.header.region_offset = cmd.region_offset;  // first table index
          rec.header.op_length = static_cast<uint32_t>(cmd.length);
          rec.header.batch = cmd.batch;
          break;
        case PonyCommandType::kScanAndRead:
          rec.header.op = PonyOpCode::kScanAndRead;
          rec.header.region_offset = cmd.scan_match;  // value to match
          rec.header.op_length = static_cast<uint32_t>(cmd.length);
          break;
        default:
          break;
      }
      PendingOp pending;
      pending.client_id = client->client_id();
      pending.type = cmd.type;
      pending.submit_time = cmd.submit_time;
      pending.expected_bytes = cmd.length;
      pending_ops_[cmd.op_id] = pending;
      flow.QueueTx(std::move(rec));
      break;
    }
  }
}

PonyClient* PonyEngine::FindClient(uint64_t client_id) {
  for (PonyClient* c : clients_) {
    if (c->client_id() == client_id) {
      return c;
    }
  }
  return nullptr;
}

bool PonyEngine::TransmitFromFlows(SimTime now, SimDuration budget,
                                   SimDuration* cost, int* work) {
  if (flows_.empty()) {
    return false;
  }
  bool sent_any = false;
  // Round-robin across flows for fairness; just-in-time generation bounded
  // by NIC TX descriptor availability.
  size_t n = flow_seq_.size();
  size_t start = flow_cursor_ % n;
  for (size_t visited = 0; visited < n; ++visited) {
    Flow& flow = *flow_seq_[(start + visited) % n];
    // An inert flow's visit is a no-op (OnTimerCheck does nothing and
    // BuildNextPacket returns nullptr), but the budget break below must
    // still run: the poll can arrive here already over budget.
    if (!flow.inert()) {
      flow.OnTimerCheck(now);
      while (*cost < budget && nic_->TxSlotsAvailable() > 0) {
        PacketPtr p = flow.BuildNextPacket(now);
        if (p == nullptr) {
          break;
        }
        *cost += params_.per_packet_cost +
                 static_cast<SimDuration>(params_.proc_ns_per_byte *
                                          static_cast<double>(
                                              p->payload_bytes));
        ++stats_.tx_packets;
        ++(*work);
        sent_any = true;
        TracePacketPoint(sim_, *p, "engine_tx");
        nic_->Transmit(std::move(p));
      }
    }
    if (*cost >= budget) {
      break;
    }
  }
  flow_cursor_ = (flow_cursor_ + 1) % n;
  return sent_any;
}

bool PonyEngine::TransmitFromFlowsQos(SimTime now, SimDuration budget,
                                      SimDuration* cost, int* work) {
  if (flows_.empty()) {
    return false;
  }
  // Timer checks run in the legacy visit order (flow key order) for every
  // flow, so RTO-driven retransmits are queued independently of how the
  // tenant schedule unfolds below.
  for (Flow* flow : flow_seq_) {
    if (!flow->inert()) {
      flow->OnTimerCheck(now);
    }
  }
  // Only tenants with sendable work participate in (and are replenished
  // by) the DRR pass; an idle tenant banking credit would defeat
  // isolation.
  for (auto& [tenant, group] : qos_->groups) {
    bool sendable = false;
    for (Flow* flow : group.flows) {
      if (!flow->inert() && flow->CanSend(now)) {
        sendable = true;
        break;
      }
    }
    if (sendable) {
      qos_->drr.Activate(tenant);
    } else {
      qos_->drr.Deactivate(tenant);
    }
  }
  bool sent_any = false;
  // Serves one packet per call: round-robin across the tenant's flows via
  // the group cursor, deficit charged with the actual wire bytes.
  auto serve = [&](qos::TenantId tenant) -> int64_t {
    if (*cost >= budget || nic_->TxSlotsAvailable() <= 0) {
      return -1;  // out of budget / TX slots: abort the pass
    }
    TenantGroup& group = qos_->groups[tenant];
    size_t n = group.flows.size();
    for (size_t i = 0; i < n; ++i) {
      size_t idx = (group.cursor + i) % n;
      Flow& flow = *group.flows[idx];
      if (flow.inert()) {
        continue;
      }
      PacketPtr p = flow.BuildNextPacket(now);
      if (p == nullptr) {
        continue;
      }
      group.cursor = (idx + 1) % n;
      SimDuration pkt_cost =
          params_.per_packet_cost +
          static_cast<SimDuration>(params_.proc_ns_per_byte *
                                   static_cast<double>(p->payload_bytes));
      *cost += pkt_cost;
      int64_t wire = p->wire_bytes;
      ++stats_.tx_packets;
      ++(*work);
      sent_any = true;
      ++group.stats.tx_packets;
      group.stats.tx_bytes += wire;
      group.stats.cpu_ns += pkt_cost;
      TracePacketPoint(sim_, *p, "engine_tx");
      nic_->Transmit(std::move(p));
      return wire;
    }
    return 0;  // nothing sendable right now
  };
  qos_->drr.RunPass(serve);
  return sent_any;
}

void PonyEngine::ForEachTenant(
    const std::function<void(const TenantSnapshot&)>& fn) const {
  if (qos_ == nullptr) {
    return;
  }
  SimTime now = sim_->now();
  for (const auto& [tenant, group] : qos_->groups) {
    TenantSnapshot snap;
    snap.id = tenant;
    snap.deficit = qos_->drr.deficit(tenant);
    snap.flows = group.flows.size();
    snap.stats = group.stats;
    for (const Flow* flow : group.flows) {
      if (!flow->inert() && flow->CanSend(now)) {
        snap.sendable = true;
        break;
      }
    }
    fn(snap);
  }
}

void PonyEngine::ExportQosStats(Telemetry* telemetry,
                                const std::string& prefix) const {
  if (qos_ == nullptr) {
    return;
  }
  for (const auto& [tenant, group] : qos_->groups) {
    std::string tname = qos_->tenants != nullptr
                            ? qos_->tenants->DisplayName(tenant)
                            : "t" + std::to_string(tenant);
    const std::string base = prefix + "/" + tname;
    telemetry->SetCounter(base + "/engine_tx_packets",
                          group.stats.tx_packets);
    telemetry->SetCounter(base + "/engine_tx_bytes", group.stats.tx_bytes);
    telemetry->SetCounter(base + "/engine_rx_packets",
                          group.stats.rx_packets);
    telemetry->SetCounter(base + "/engine_rx_bytes", group.stats.rx_bytes);
    telemetry->SetCounter(base + "/messages_delivered",
                          group.stats.messages_delivered);
    telemetry->SetCounter(base + "/goodput_bytes",
                          group.stats.message_bytes_delivered);
    telemetry->SetCounter(base + "/engine_cpu_ns", group.stats.cpu_ns);
  }
}

void PonyEngine::TraceQosAdmission(qos::TenantId tenant, bool blocked) {
  TraceRecorder* tracer = sim_->tracer();
  if (tracer == nullptr) {
    return;
  }
  tracer->Instant(sim_->now(), TraceRecorder::kSchedTrack,
                  blocked ? "qos_admission_block" : "qos_admission_unblock",
                  "qos",
                  TraceArgInt("tenant", static_cast<int64_t>(tenant)));
}

void PonyEngine::FlushAcksAndCredits(SimTime now, SimDuration* cost,
                                     int* work) {
  for (Flow* flow_ptr : flow_seq_) {
    Flow& flow = *flow_ptr;
    if (flow.inert()) {
      continue;
    }
    if (nic_->TxSlotsAvailable() <= 0) {
      break;
    }
    PacketPtr credit = flow.MaybeBuildCreditGrant(now);
    if (credit != nullptr) {
      *cost += 100 * kNsec;
      ++stats_.tx_packets;
      ++(*work);
      nic_->Transmit(std::move(credit));
    }
    PacketPtr ack = flow.MaybeBuildAck(now);
    if (ack != nullptr) {
      *cost += 100 * kNsec;
      ++stats_.tx_packets;
      ++(*work);
      nic_->Transmit(std::move(ack));
    }
  }
}

void PonyEngine::RetryPendingDeliveries(int* work) {
  while (!stalled_completions_.empty()) {
    auto& [client, completion] = stalled_completions_.front();
    if (!client->DeliverCompletion(std::move(completion))) {
      break;  // still full; retry next poll
    }
    stalled_completions_.erase(stalled_completions_.begin());
    ++(*work);
  }
  while (!stalled_messages_.empty()) {
    auto& [client, message] = stalled_messages_.front();
    PonyAddress from = message.from;
    int64_t len = message.length;
    uint64_t op_id = message.op_id;
    if (!client->DeliverMessage(std::move(message))) {
      break;
    }
    TraceMessagePoint(sim_, 'f', op_id, "deliver");
    stalled_messages_.erase(stalled_messages_.begin());
    ++stats_.messages_delivered;
    stats_.message_bytes_delivered += len;
    if (qos_ != nullptr) {
      Flow* src = FindFlow(from);
      qos::TenantId tenant =
          src != nullptr ? src->tenant() : qos::kDefaultTenant;
      TenantStats& tstats = qos_->groups[tenant].stats;
      ++tstats.messages_delivered;
      tstats.message_bytes_delivered += len;
    }
    if (len <= params_.credit_message_threshold) {
      Flow* flow = FindFlow(from);
      if (flow != nullptr) {
        flow->NoteDelivered(len);
      }
    }
    ++(*work);
  }
}

void PonyEngine::UpdateWakeTimer(SimTime now) {
  SimTime earliest = kSimTimeNever;
  for (const Flow* flow : flow_seq_) {
    if (flow->inert()) {
      continue;  // all three deadlines are kSimTimeNever
    }
    earliest = std::min(earliest, flow->NextSendTime());
    earliest = std::min(earliest, flow->rto_deadline());
    earliest = std::min(earliest, flow->AckDeadline());
  }
  wake_timer_.Cancel();
  if (earliest == kSimTimeNever) {
    return;
  }
  if (earliest <= now) {
    return;  // immediate work; HasWork() reports it
  }
  if (HasWork(now)) {
    return;  // the host will poll again anyway; avoid timer churn
  }
  PonyEngine* self = this;
  wake_timer_ = sim_->ScheduleAt(earliest, [self] { self->NotifyWork(); });
}

bool PonyEngine::HasWork(SimTime now) const {
  if (rx_->pending() > 0) {
    return true;
  }
  for (PonyClient* client : clients_) {
    if (!client->command_queue().empty()) {
      return true;
    }
  }
  if (!stalled_messages_.empty() || !stalled_completions_.empty()) {
    return true;
  }
  for (const Flow* flow : flow_seq_) {
    if (flow->inert()) {
      continue;  // cannot send, no ack owed, no deadline due
    }
    if (flow->CanSend(now) || flow->ack_pending()) {
      return true;
    }
    if (flow->rto_deadline() <= now || flow->AckDeadline() <= now) {
      return true;
    }
  }
  return false;
}

SimDuration PonyEngine::QueueingDelay(SimTime now) const {
  SimDuration worst = 0;
  SimTime oldest_rx = rx_->OldestArrival();
  if (oldest_rx != kSimTimeNever) {
    worst = std::max(worst, now - oldest_rx);
  }
  for (PonyClient* client : clients_) {
    SimTime oldest_cmd = client->OldestCommandTime();
    if (oldest_cmd != kSimTimeNever) {
      worst = std::max(worst, now - oldest_cmd);
    }
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Upgrade serialization (Section 4)
// ---------------------------------------------------------------------------

Engine::StateFootprint PonyEngine::Footprint() const {
  StateFootprint fp;
  fp.flows = static_cast<int64_t>(flows_.size());
  fp.streams = static_cast<int64_t>(streams_.size() + assemblies_.size() +
                                    pending_ops_.size() + send_ops_.size());
  for (const auto& [flow_id, by_seq] : held_) {
    fp.streams += static_cast<int64_t>(by_seq.size());
  }
  fp.regions = static_cast<int64_t>(regions_.size());
  return fp;
}

void PonyEngine::SerializeState(StateWriter* w) const {
  w->BeginSection("pony_engine");
  w->PutU32(engine_id_);
  w->PutU16(wire_min_);
  w->PutU16(wire_max_);
  w->PutU32(static_cast<uint32_t>(flows_.size()));
  for (const auto& [key, flow] : flows_) {
    flow.Serialize(w);
  }
  w->PutU32(static_cast<uint32_t>(streams_.size()));
  for (const auto& [stream_id, binding] : streams_) {
    w->PutU64(stream_id);
    w->PutU64(binding.client_id);
    w->PutI64(binding.peer.host);
    w->PutU32(binding.peer.engine_id);
  }
  w->PutU32(static_cast<uint32_t>(pending_ops_.size()));
  for (const auto& [op_id, op] : pending_ops_) {
    w->PutU64(op_id);
    w->PutU64(op.client_id);
    w->PutU8(static_cast<uint8_t>(op.type));
    w->PutI64(op.submit_time);
    w->PutI64(op.expected_bytes);
  }
  w->PutU32(static_cast<uint32_t>(send_ops_.size()));
  for (const auto& [op_id, op] : send_ops_) {
    w->PutU64(op_id);
    w->PutU64(op.client_id);
    w->PutI64(op.submit_time);
    w->PutI64(op.remaining);
    w->PutI64(op.total);
  }
  w->PutU32(static_cast<uint32_t>(assemblies_.size()));
  for (const auto& [key, assembly] : assemblies_) {
    w->PutU64(key.first);
    w->PutU64(key.second);
    w->PutI64(assembly.from.host);
    w->PutU32(assembly.from.engine_id);
    w->PutU64(assembly.stream_id);
    w->PutI64(assembly.received);
    w->PutI64(assembly.total);
    w->PutBytes(assembly.data);
    w->PutU64(assembly.last_seq);
  }
  uint32_t held_flows = 0;
  for (const auto& [flow_id, by_seq] : held_) {
    held_flows += by_seq.empty() ? 0 : 1;
  }
  w->PutU32(held_flows);
  for (const auto& [flow_id, by_seq] : held_) {
    if (by_seq.empty()) {
      continue;
    }
    w->PutU64(flow_id);
    w->PutU32(static_cast<uint32_t>(by_seq.size()));
    for (const auto& [seq, msg] : by_seq) {
      w->PutU64(seq);
      w->PutI64(msg.from.host);
      w->PutU32(msg.from.engine_id);
      w->PutU64(msg.stream_id);
      w->PutU64(msg.op_id);
      w->PutI64(msg.length);
      w->PutBytes(msg.data);
      w->PutI64(msg.receive_time);
    }
  }
}

void PonyEngine::DeserializeState(StateReader* r) {
  r->ExpectSection("pony_engine");
  engine_id_ = r->GetU32();
  wire_min_ = r->GetU16();
  wire_max_ = r->GetU16();
  uint32_t n_flows = r->GetU32();
  for (uint32_t i = 0; i < n_flows; ++i) {
    Flow flow = Flow::Deserialize(r, nic_->host_id(), engine_id_,
                                  timely_params_, &params_);
    auto [it, inserted] = flows_.emplace(flow.key(), std::move(flow));
    InstallAckObserver(&it->second);
    if (inserted) {
      QosAddFlow(&it->second);  // tenant tag round-trips with the flow
    }
  }
  RebuildFlowSeq();
  uint32_t n_streams = r->GetU32();
  for (uint32_t i = 0; i < n_streams; ++i) {
    uint64_t stream_id = r->GetU64();
    StreamBinding binding;
    binding.client_id = r->GetU64();
    binding.peer.host = static_cast<int>(r->GetI64());
    binding.peer.engine_id = r->GetU32();
    streams_[stream_id] = binding;
  }
  uint32_t n_ops = r->GetU32();
  for (uint32_t i = 0; i < n_ops; ++i) {
    uint64_t op_id = r->GetU64();
    PendingOp op;
    op.client_id = r->GetU64();
    op.type = static_cast<PonyCommandType>(r->GetU8());
    op.submit_time = r->GetI64();
    op.expected_bytes = r->GetI64();
    pending_ops_[op_id] = op;
  }
  uint32_t n_sends = r->GetU32();
  for (uint32_t i = 0; i < n_sends; ++i) {
    uint64_t op_id = r->GetU64();
    SendOp op;
    op.client_id = r->GetU64();
    op.submit_time = r->GetI64();
    op.remaining = r->GetI64();
    op.total = r->GetI64();
    send_ops_[op_id] = op;
  }
  uint32_t n_asm = r->GetU32();
  for (uint32_t i = 0; i < n_asm; ++i) {
    uint64_t k1 = r->GetU64();
    uint64_t k2 = r->GetU64();
    Assembly assembly;
    assembly.from.host = static_cast<int>(r->GetI64());
    assembly.from.engine_id = r->GetU32();
    assembly.stream_id = r->GetU64();
    assembly.received = r->GetI64();
    assembly.total = r->GetI64();
    assembly.data = r->GetBytes();
    assembly.last_seq = r->GetU64();
    assemblies_[std::make_pair(k1, k2)] = std::move(assembly);
  }
  uint32_t n_held_flows = r->GetU32();
  for (uint32_t i = 0; i < n_held_flows; ++i) {
    uint64_t flow_id = r->GetU64();
    uint32_t n_msgs = r->GetU32();
    for (uint32_t j = 0; j < n_msgs; ++j) {
      uint64_t seq = r->GetU64();
      PonyIncomingMessage msg;
      msg.from.host = static_cast<int>(r->GetI64());
      msg.from.engine_id = r->GetU32();
      msg.stream_id = r->GetU64();
      msg.op_id = r->GetU64();
      msg.length = r->GetI64();
      msg.data = r->GetBytes();
      msg.receive_time = r->GetI64();
      held_[flow_id][seq] = std::move(msg);
    }
  }
}

}  // namespace snap
