// The "Pony module" (Section 2.3, Figure 2): sets up control-plane RPC
// services for Pony Express, authenticates users, bootstraps shared memory
// client channels (the Unix-domain-socket handshake), creates engines, and
// implements the upgrade restore path that moves an engine — flows,
// streams, pending ops — into a new Snap instance while client channels
// (shared memory) survive untouched.
#ifndef SRC_PONY_PONY_MODULE_H_
#define SRC_PONY_PONY_MODULE_H_

#include <memory>
#include <utility>
#include <string>
#include <vector>

#include "src/pony/client.h"
#include "src/pony/pony_engine.h"
#include "src/sim/model_params.h"
#include "src/snap/control.h"

namespace snap {

class PonyModule : public Module {
 public:
  PonyModule(Substrate* sim, Nic* nic, PonyDirectory* directory,
             const PonyParams& pony_params, const TimelyParams& timely_params,
             const AppParams& app_params)
      : Module("pony"),
        sim_(sim),
        nic_(nic),
        directory_(directory),
        pony_params_(pony_params),
        timely_params_(timely_params),
        app_params_(app_params) {}

  std::unique_ptr<Engine> CreateEngine(
      const std::string& engine_name) override {
    return std::make_unique<PonyEngine>(engine_name, sim_, nic_,
                                        directory_->AllocateEngineId(),
                                        pony_params_, timely_params_,
                                        directory_);
  }

  std::unique_ptr<Engine> RestoreEngine(const std::string& engine_name,
                                        StateReader* state,
                                        Engine* old_engine) override;

  // Application bootstrap (Section 3.1): authenticates the app and sets up
  // command/completion queues in shared memory. The caller owns the client.
  std::unique_ptr<PonyClient> CreateClient(PonyEngine* engine,
                                           const std::string& app_name);

  const PonyParams& pony_params() const { return pony_params_; }

 private:
  static std::vector<std::pair<uint64_t, MemoryRegion*>> RegionsOf(
      PonyClient* client);

  Substrate* sim_;
  Nic* nic_;
  PonyDirectory* directory_;
  PonyParams pony_params_;
  TimelyParams timely_params_;
  AppParams app_params_;
  uint64_t next_client_id_ = 1;
};

}  // namespace snap

#endif  // SRC_PONY_PONY_MODULE_H_
