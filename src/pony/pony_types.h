// Shared Pony Express types: addressing, the asynchronous operation-level
// command/completion interface (Section 3: "The application interface to
// Pony Express is based on asynchronous operation-level commands and
// completions, as opposed to a packet-level or byte-streaming sockets
// interface").
#ifndef SRC_PONY_PONY_TYPES_H_
#define SRC_PONY_PONY_TYPES_H_

#include <cstdint>
#include <vector>

#include "src/packet/packet.h"
#include "src/util/time_types.h"

namespace snap {

// Address of a Pony Express engine on the fabric.
struct PonyAddress {
  int host = -1;
  uint32_t engine_id = 0;

  friend bool operator==(const PonyAddress& a, const PonyAddress& b) {
    return a.host == b.host && a.engine_id == b.engine_id;
  }
  friend bool operator<(const PonyAddress& a, const PonyAddress& b) {
    if (a.host != b.host) {
      return a.host < b.host;
    }
    return a.engine_id < b.engine_id;
  }
};

enum class PonyCommandType : uint8_t {
  kSendMessage,
  kRead,
  kWrite,
  kIndirectRead,
  kScanAndRead,
};

// One entry in an application's command queue.
struct PonyCommand {
  PonyCommandType type = PonyCommandType::kSendMessage;
  uint64_t op_id = 0;
  PonyAddress peer;
  uint64_t stream_id = 0;   // kSendMessage
  int64_t length = 0;       // message or access length (synthetic payloads)
  std::vector<uint8_t> data;  // real payload (messages / writes), optional
  uint64_t region_id = 0;     // one-sided target region
  uint64_t region_offset = 0;
  uint16_t batch = 1;         // kIndirectRead: number of indirections
  uint64_t scan_match = 0;    // kScanAndRead: value to match
  SimTime submit_time = 0;
  uint32_t tenant = 0;        // qos::TenantId of the submitting client
};

enum class PonyOpStatus : uint16_t {
  kOk = 0,
  kNoSuchRegion = 1,
  kOutOfBounds = 2,
  kPermissionDenied = 3,
  kNoMatch = 4,
  kAborted = 5,
};

// One entry in an application's completion queue.
struct PonyCompletion {
  uint64_t op_id = 0;
  PonyOpStatus status = PonyOpStatus::kOk;
  int64_t length = 0;         // bytes read/written/sent
  std::vector<uint8_t> data;  // read results (when real payloads in use)
  SimTime submit_time = 0;
  SimTime complete_time = 0;
};

// A fully reassembled incoming two-sided message.
struct PonyIncomingMessage {
  PonyAddress from;
  uint64_t stream_id = 0;
  uint64_t op_id = 0;
  int64_t length = 0;
  std::vector<uint8_t> data;
  SimTime receive_time = 0;
};

}  // namespace snap

#endif  // SRC_PONY_PONY_TYPES_H_
