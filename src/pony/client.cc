#include "src/pony/client.h"

#include <algorithm>

#include "src/pony/pony_engine.h"
#include "src/util/logging.h"

namespace snap {

namespace {
constexpr size_t kCommandQueueEntries = 1024;
constexpr size_t kCompletionQueueEntries = 2048;
constexpr size_t kMessageQueueEntries = 1024;
}  // namespace

PonyClient::PonyClient(std::string app_name, uint64_t client_id,
                       PonyEngine* engine, const AppParams& params)
    : app_name_(std::move(app_name)),
      client_id_(client_id),
      engine_(engine),
      params_(params),
      commands_(kCommandQueueEntries),
      completions_(kCompletionQueueEntries),
      messages_(kMessageQueueEntries) {}

PonyClient::~PonyClient() = default;

void PonyClient::SetTenant(const qos::TenantSpec& spec) {
  tenant_ = spec.id;
  admission_limited_ = spec.admission_rate_bytes_per_sec > 0;
  if (admission_limited_) {
    admission_ = qos::TokenBucket(spec.admission_rate_bytes_per_sec,
                                  spec.admission_burst_bytes);
  }
}

uint64_t PonyClient::Submit(PonyCommand cmd, CpuCostSink* cost) {
  cost->Charge(params_.submit_cost);
  cmd.tenant = tenant_;
  if (admission_limited_) {
    if (commands_.full()) {
      return 0;  // queue full either way; don't burn tokens
    }
    int64_t bytes = std::max<int64_t>(
        {cmd.length, static_cast<int64_t>(cmd.data.size()), 1});
    if (!admission_.TryConsume(engine_->now(), static_cast<double>(bytes))) {
      ++admission_throttled_;
      if (!admission_blocked_) {
        admission_blocked_ = true;
        engine_->TraceQosAdmission(tenant_, /*blocked=*/true);
      }
      return 0;  // backpressure at the app boundary; the application retries
    }
    if (admission_blocked_) {
      admission_blocked_ = false;
      engine_->TraceQosAdmission(tenant_, /*blocked=*/false);
    }
  }
  // Op ids are globally unique per initiating engine: client id in the
  // upper bits, per-client sequence below.
  uint64_t op_id = (client_id_ << 32) | next_op_;
  cmd.op_id = op_id;
  cmd.submit_time = engine_->now();
  if (!commands_.TryPush(std::move(cmd))) {
    return 0;  // queue full; the application retries
  }
  ++next_op_;
  // Doorbell: make the engine runnable (a syscall under the spreading
  // scheduler; a shared-memory flag noticed by polling otherwise — the CPU
  // model charges the appropriate wakeup cost).
  engine_->NotifyWork();
  return op_id;
}

uint64_t PonyClient::SendMessage(PonyAddress peer, uint64_t stream_id,
                                 int64_t bytes, std::vector<uint8_t> data,
                                 CpuCostSink* cost) {
  PonyCommand cmd;
  cmd.type = PonyCommandType::kSendMessage;
  cmd.peer = peer;
  cmd.stream_id = stream_id;
  cmd.length = bytes;
  cmd.data = std::move(data);
  return Submit(std::move(cmd), cost);
}

uint64_t PonyClient::Read(PonyAddress peer, uint64_t region_id,
                          uint64_t offset, int64_t length,
                          CpuCostSink* cost) {
  PonyCommand cmd;
  cmd.type = PonyCommandType::kRead;
  cmd.peer = peer;
  cmd.region_id = region_id;
  cmd.region_offset = offset;
  cmd.length = length;
  return Submit(std::move(cmd), cost);
}

uint64_t PonyClient::Write(PonyAddress peer, uint64_t region_id,
                           uint64_t offset, int64_t length,
                           std::vector<uint8_t> data, CpuCostSink* cost) {
  PonyCommand cmd;
  cmd.type = PonyCommandType::kWrite;
  cmd.peer = peer;
  cmd.region_id = region_id;
  cmd.region_offset = offset;
  cmd.length = length;
  cmd.data = std::move(data);
  return Submit(std::move(cmd), cost);
}

uint64_t PonyClient::IndirectRead(PonyAddress peer, uint64_t table_region_id,
                                  uint64_t first_index, uint16_t batch,
                                  int64_t length, CpuCostSink* cost) {
  PonyCommand cmd;
  cmd.type = PonyCommandType::kIndirectRead;
  cmd.peer = peer;
  cmd.region_id = table_region_id;
  cmd.region_offset = first_index;  // index into the indirection table
  cmd.batch = batch;
  cmd.length = length;              // bytes per indirection
  return Submit(std::move(cmd), cost);
}

uint64_t PonyClient::ScanAndRead(PonyAddress peer, uint64_t region_id,
                                 uint64_t match_value, int64_t length,
                                 CpuCostSink* cost) {
  PonyCommand cmd;
  cmd.type = PonyCommandType::kScanAndRead;
  cmd.peer = peer;
  cmd.region_id = region_id;
  cmd.scan_match = match_value;
  cmd.length = length;
  return Submit(std::move(cmd), cost);
}

std::optional<PonyCompletion> PonyClient::PollCompletion(CpuCostSink* cost) {
  cost->Charge(params_.completion_cost);
  bool was_full = completions_.full();
  auto completion = completions_.TryPop();
  if (was_full && completion.has_value()) {
    // The engine may be holding stalled deliveries for this ring; ring
    // space is the doorbell that resumes them.
    engine_->NotifyWork();
  }
  return completion;
}

std::optional<PonyIncomingMessage> PonyClient::PollMessage(
    CpuCostSink* cost) {
  cost->Charge(params_.completion_cost);
  bool was_full = messages_.full();
  auto msg = messages_.TryPop();
  if (was_full && msg.has_value()) {
    engine_->NotifyWork();
  }
  return msg;
}

void PonyClient::ArmCompletionNotify(std::function<void()> cb,
                                     CpuCostSink* cost) {
  cost->Charge(params_.notify_arm_cost);
  completion_notify_ = std::move(cb);
  if (!completions_.empty() && completion_notify_) {
    auto cb2 = std::move(completion_notify_);
    completion_notify_ = nullptr;
    cb2();
  }
}

void PonyClient::ArmMessageNotify(std::function<void()> cb,
                                  CpuCostSink* cost) {
  cost->Charge(params_.notify_arm_cost);
  message_notify_ = std::move(cb);
  if (!messages_.empty() && message_notify_) {
    auto cb2 = std::move(message_notify_);
    message_notify_ = nullptr;
    cb2();
  }
}

uint64_t PonyClient::RegisterRegion(size_t bytes, bool allow_remote_write) {
  uint64_t id = (client_id_ << 32) | next_region_++;
  auto region = std::make_unique<MemoryRegion>();
  region->id = id;
  region->owner_client = client_id_;
  region->allow_remote_write = allow_remote_write;
  region->data.resize(bytes);
  MemoryRegion* raw = region.get();
  regions_[id] = std::move(region);
  engine_->RegisterRegion(raw);
  return id;
}

MemoryRegion* PonyClient::region(uint64_t id) {
  auto it = regions_.find(id);
  return it == regions_.end() ? nullptr : it->second.get();
}

uint64_t PonyClient::CreateStream(PonyAddress peer) {
  uint64_t stream_id = (client_id_ << 32) | next_stream_++;
  engine_->BindStream(stream_id, this, peer);
  return stream_id;
}

bool PonyClient::DeliverCompletion(PonyCompletion&& completion) {
  if (completions_.full()) {
    return false;
  }
  completions_.TryPush(std::move(completion));
  if (completion_notify_) {
    auto cb = std::move(completion_notify_);
    completion_notify_ = nullptr;
    cb();
  }
  if (doorbell_ != nullptr) {
    doorbell_->Ring();
  }
  return true;
}

bool PonyClient::DeliverMessage(PonyIncomingMessage&& message) {
  if (messages_.full()) {
    return false;
  }
  if (delivery_observer_) {
    delivery_observer_(message);
  }
  messages_.TryPush(std::move(message));
  if (message_notify_) {
    auto cb = std::move(message_notify_);
    message_notify_ = nullptr;
    cb();
  }
  if (doorbell_ != nullptr) {
    doorbell_->Ring();
  }
  return true;
}

SimTime PonyClient::OldestCommandTime() const {
  const PonyCommand* head = commands_.Peek();
  return head == nullptr ? kSimTimeNever : head->submit_time;
}

}  // namespace snap
