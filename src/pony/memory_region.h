// Application-shared memory regions for one-sided operations (Section 3.2:
// "since the one-sided logic executes in the address space of Snap,
// applications must explicitly share remotely-accessible memory").
//
// Regions are owned by the application (client); engines hold a registry of
// references with permissions and validate every remote access (bounds and
// write permission), since engines "do work on behalf of potentially
// multiple applications with differing levels of trust" (Section 2.6).
#ifndef SRC_PONY_MEMORY_REGION_H_
#define SRC_PONY_MEMORY_REGION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace snap {

struct MemoryRegion {
  uint64_t id = 0;
  uint64_t owner_client = 0;
  bool allow_remote_write = false;
  std::vector<uint8_t> data;
};

// Engine-side registry of remotely accessible regions.
class RegionRegistry {
 public:
  void Register(MemoryRegion* region) { regions_[region->id] = region; }
  void Unregister(uint64_t id) { regions_.erase(id); }

  MemoryRegion* Find(uint64_t id) {
    auto it = regions_.find(id);
    return it == regions_.end() ? nullptr : it->second;
  }

  size_t size() const { return regions_.size(); }
  const std::map<uint64_t, MemoryRegion*>& regions() const {
    return regions_;
  }

 private:
  std::map<uint64_t, MemoryRegion*> regions_;
};

}  // namespace snap

#endif  // SRC_PONY_MEMORY_REGION_H_
