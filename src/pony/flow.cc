#include "src/pony/flow.h"

#include <algorithm>

#include "src/packet/wire.h"
#include "src/util/logging.h"

namespace snap {

namespace {

// Bound on in-flight packets per flow (memory and loss-recovery bound).
constexpr size_t kMaxUnackedPackets = 1024;
// Ack coalescing: one ack per this many received packets...
constexpr int kAckEvery = 8;
// ...or once this much time has passed since the first unacked arrival.
constexpr SimDuration kAckDelay = 20 * kUsec;
// Pacing burst allowance: a flow that fell behind its pacing schedule may
// catch up with a burst of this many packets (paced NICs and Snap's
// just-in-time generation both emit short line-rate bursts).
constexpr int kPacingBurstPackets = 16;

}  // namespace

Flow::Flow(FlowKey key, int local_host, uint32_t local_engine,
           uint16_t wire_version, const TimelyParams& timely_params,
           const PonyParams* pony_params)
    : key_(key),
      local_host_(local_host),
      local_engine_(local_engine),
      wire_version_(wire_version),
      params_(pony_params),
      timely_(timely_params),
      credit_(kInitialCreditBytes) {}

void Flow::QueueTx(TxRecord record) {
  if (record.uses_credit) {
    uint64_t stream = record.header.stream_id;
    auto [qit, inserted] = msg_queues_.try_emplace(stream);
    if (qit->second.empty()) {
      msg_rr_.push_back(&*qit);
    }
    qit->second.push_back(std::move(record));
    ++msg_backlog_;
    MarkMsgReadyDirty();
  } else {
    op_queue_.push_back(std::move(record));
  }
  RecomputeInert();
}

bool Flow::StreamEligible(const MsgQueueEntry* entry) const {
  const TxRecord& head = entry->second.front();
  if (started_streams_.count(entry->first) > 0) {
    // Reserved at start: the invariant credit_ >= reserved_ guarantees
    // this fragment is covered.
    return true;
  }
  // Starting a new message requires unreserved credit for all of it.
  return credit_ - reserved_ >=
         static_cast<int64_t>(head.header.msg_length);
}

bool Flow::ComputeMsgReady() const {
  for (const MsgQueueEntry* entry : msg_rr_) {
    if (StreamEligible(entry)) {
      return true;
    }
  }
  return false;
}

bool Flow::MsgReady() const {
  if (msg_ready_dirty_) {
    msg_ready_cache_ = ComputeMsgReady();
    msg_ready_dirty_ = false;
  }
  return msg_ready_cache_;
}

bool Flow::AnythingSendable() const {
  return MsgReady() || !op_queue_.empty();
}

TxRecord Flow::PopNextRecord() {
  bool msg_ready = MsgReady();
  bool op_ready = !op_queue_.empty();
  bool take_op = op_ready && (!msg_ready || prefer_op_);
  prefer_op_ = !prefer_op_;
  if (take_op) {
    TxRecord record = std::move(op_queue_.front());
    op_queue_.pop_front();
    return record;
  }
  // Round-robin across streams: rotate to the next eligible stream and
  // send one fragment of its head message.
  for (size_t i = 0; i < msg_rr_.size(); ++i) {
    if (StreamEligible(msg_rr_.front())) {
      break;
    }
    msg_rr_.push_back(msg_rr_.front());
    msg_rr_.pop_front();
  }
  MsgQueueEntry* entry = msg_rr_.front();
  msg_rr_.pop_front();
  uint64_t stream = entry->first;
  TxRecord record = std::move(entry->second.front());
  entry->second.pop_front();
  --msg_backlog_;
  // Credit reservation bookkeeping.
  if (started_streams_.count(stream) == 0) {
    started_streams_.insert(stream);
    reserved_ += record.header.msg_length;
  }
  reserved_ -= record.payload_bytes;
  if (record.header.msg_offset + record.payload_bytes >=
      record.header.msg_length) {
    started_streams_.erase(stream);  // message complete
  }
  if (!entry->second.empty()) {
    msg_rr_.push_back(entry);
  }
  // A drained queue stays in msg_queues_ (it just leaves msg_rr_, which is
  // what the eligibility scans walk): stream ids are long-lived bindings,
  // so the same stream sends again soon and reuses the deque's buffer
  // instead of re-allocating map node + deque block per message.
  MarkMsgReadyDirty();
  return record;
}

void Flow::RebuildCreditReservations() {
  started_streams_.clear();
  reserved_ = 0;
  for (const auto& [stream, queue] : msg_queues_) {
    if (queue.empty()) {
      continue;  // drained queue kept for buffer reuse
    }
    const TxRecord& head = queue.front();
    if (head.header.msg_offset > 0) {
      // Mid-message after a restore: the remainder stays reserved.
      started_streams_.insert(stream);
      reserved_ += head.header.msg_length - head.header.msg_offset;
    }
  }
  MarkMsgReadyDirty();
}

bool Flow::CanSend(SimTime now) const {
  if (unacked_.size() >= kMaxUnackedPackets) {
    return false;
  }
  if (!retx_queue_.empty()) {
    return true;  // retransmits bypass pacing
  }
  if (!AnythingSendable()) {
    return false;
  }
  return now >= next_send_time_;
}

SimTime Flow::NextSendTime() const {
  if (unacked_.size() >= kMaxUnackedPackets) {
    return kSimTimeNever;  // unblocked by an ack, not by time
  }
  if (!retx_queue_.empty()) {
    return 0;
  }
  if (!AnythingSendable()) {
    return kSimTimeNever;  // unblocked by a credit grant or new work
  }
  return next_send_time_;
}

PacketPtr Flow::MakePacket(const TxRecord& record, SimTime now,
                           uint64_t seq) {
  auto p = std::make_unique<Packet>();
  p->src_host = local_host_;
  p->dst_host = key_.remote_host;
  p->steering_hash = key_.remote_engine;
  p->proto = WireProtocol::kPony;
  p->pony = record.header;
  p->pony.version = wire_version_;
  p->pony.flow_id = WireFlowId();
  p->pony.seq = seq;
  p->pony.ack = rcv_nxt_ - 1;
  if (wire_version_ >= 2) {
    p->pony.tx_timestamp = now;
    // One-shot echo: a received timestamp is echoed by exactly one
    // outgoing packet (the batch ack). Later packets (e.g. credit grants
    // delayed by application consumption) must not re-echo stale values or
    // Timely sees phantom RTT inflation.
    p->pony.ts_echo = ts_echo_;
    ts_echo_ = 0;
  }
  // Every outgoing packet carries this side's cumulative credit grant: a
  // lost kCredit packet would otherwise leak its bytes from the sender's
  // pool forever (grants are unsequenced and never retransmitted); the
  // cumulative count makes any later packet heal the loss.
  p->pony.credit = granted_total_;
  p->payload_bytes = record.payload_bytes;
  p->data = record.data;  // copy retained for retransmission
  p->wire_bytes = record.payload_bytes + params_->header_bytes;
  p->tenant = tenant_;  // QoS bookkeeping tag, outside the CRC-covered header
  ack_pending_ = false;  // piggybacked
  unacked_rx_ = 0;
  first_unacked_rx_ = kSimTimeNever;
  // End-to-end CRC over the final wire header + payload (recomputed per
  // transmission: seq/ack/timestamps differ across retransmits). Header-
  // only packets are covered too: a flipped ack, seq, or credit field is as
  // dangerous as a flipped payload byte.
  p->pony.crc32 = 0;
  p->pony.crc32 = PonyPacketCrc(p->pony, p->data);
  return p;
}

PacketPtr Flow::BuildNextPacket(SimTime now) {
  PacketPtr p = BuildNextPacketImpl(now);
  // Even a nullptr return may have mutated state (stale retransmission
  // entries reaped below), so re-derive on every path.
  RecomputeInert();
  return p;
}

PacketPtr Flow::BuildNextPacketImpl(SimTime now) {
  // Retransmissions first; they bypass pacing.
  while (!retx_queue_.empty()) {
    uint64_t seq = retx_queue_.front();
    auto it = unacked_.find(seq);
    if (it == unacked_.end()) {
      retx_queue_.pop_front();  // acked since being queued
      continue;
    }
    retx_queue_.pop_front();
    NoteSentAtDisturbed(it->second.sent_at);
    it->second.sent_at = now;
    ++it->second.transmissions;
    it->second.last_retx_at = now;
    ++stats_.retransmits;
    return MakePacket(it->second.record, now, seq);
  }
  if (!CanSend(now)) {
    return nullptr;
  }
  TxRecord record = PopNextRecord();
  if (record.uses_credit) {
    credit_ -= record.payload_bytes;
    MarkMsgReadyDirty();
  }
  uint64_t seq = next_seq_++;
  PacketPtr p = MakePacket(record, now, seq);
  // Pace at the Timely rate, allowing a bounded catch-up burst.
  double rate = timely_.rate_bytes_per_sec();
  SimDuration gap = static_cast<SimDuration>(
      static_cast<double>(p->wire_bytes) / rate * 1e9);
  SimTime base = std::max(next_send_time_, now - kPacingBurstPackets * gap);
  next_send_time_ = base + gap;
  ++stats_.data_packets_sent;
  unacked_[seq] = Unacked{std::move(record), now};
  NoteSentAtInserted(now);
  return p;
}

SimTime Flow::AckDeadline() const {
  if (unacked_rx_ == 0) {
    return kSimTimeNever;
  }
  if (ack_pending_) {
    return 0;  // due now
  }
  return first_unacked_rx_ + kAckDelay;
}

PacketPtr Flow::MaybeBuildAck(SimTime now) {
  if (unacked_rx_ > 0 && now >= first_unacked_rx_ + kAckDelay) {
    // No RecomputeInert() needed for this write alone: it requires
    // unacked_rx_ > 0, which already makes the flow non-inert.
    ack_pending_ = true;
  }
  if (!ack_pending_) {
    return nullptr;
  }
  TxRecord record;
  record.header.type = PonyPacketType::kAck;
  PacketPtr p = MakePacket(record, now, /*seq=*/0);  // acks are unsequenced
  ++stats_.acks_sent;
  RecomputeInert();  // MakePacket cleared the ack-owed state
  return p;
}

PacketPtr Flow::MaybeBuildCreditGrant(SimTime now) {
  if (pending_grant_ < kCreditGrantThreshold) {
    return nullptr;
  }
  int64_t grant = std::min<int64_t>(pending_grant_, INT32_MAX);
  pending_grant_ -= grant;
  // Fold into the cumulative count; MakePacket stamps it on this packet
  // (and on every later one, healing this grant if it gets lost).
  granted_total_ += static_cast<uint32_t>(grant);
  TxRecord record;
  record.header.type = PonyPacketType::kCredit;
  PacketPtr p = MakePacket(record, now, /*seq=*/0);
  RecomputeInert();  // the grant drained; ack-owed state cleared
  return p;
}

Flow::RxResult Flow::OnReceive(const Packet& packet, SimTime now) {
  RxResult result = OnReceiveImpl(packet, now);
  RecomputeInert();
  return result;
}

Flow::RxResult Flow::OnReceiveImpl(const Packet& packet, SimTime now) {
  RxResult result;
  const PonyHeader& h = packet.pony;

  // RTT sample: prefer the hardware-timestamp echo (v2 wire); fall back to
  // software send-time lookup on cumulative-ack advance for v1 peers.
  if (h.ts_echo != 0) {
    timely_.OnRttSample(now - h.ts_echo, now);
    ++stats_.rtt_samples;
  }

  // Credit processing (every packet carries the peer's cumulative grant;
  // see granted_total() in flow.h). Serial arithmetic: a reordered packet
  // carrying an older cumulative value yields a delta >= 2^31 and is
  // ignored (applying it would inflate the pool catastrophically).
  uint32_t credit_delta = h.credit - last_credit_seen_;
  if (credit_delta != 0 && credit_delta < 0x80000000u) {
    credit_ += credit_delta;
    last_credit_seen_ = h.credit;
    MarkMsgReadyDirty();
  }

  // Ack processing (every packet carries the peer's cumulative ack).
  uint64_t ack = h.ack;
  if (ack > last_ack_seen_) {
    SimTime newest_sent = -1;
    auto it = unacked_.begin();
    while (it != unacked_.end() && it->first <= ack) {
      newest_sent = std::max(newest_sent, it->second.sent_at);
      if (it->second.transmissions > 1 &&
          now - it->second.last_retx_at < params_->spurious_rtt_floor) {
        // The ack arrived before the retransmit could have plausibly
        // round-tripped: the original was never lost.
        ++stats_.spurious_retransmits;
      }
      if (ack_observer_) {
        ack_observer_(it->second.record);
      }
      NoteSentAtDisturbed(it->second.sent_at);
      it = unacked_.erase(it);
    }
    if (h.ts_echo == 0 && newest_sent >= 0) {
      timely_.OnRttSample(now - newest_sent, now);
      ++stats_.rtt_samples;
    }
    last_ack_seen_ = ack;
    dup_acks_ = 0;
  } else if (ack == last_ack_seen_ && !unacked_.empty() &&
             h.type == PonyPacketType::kAck) {
    if (++dup_acks_ == 3) {
      // Fast retransmit the first hole.
      uint64_t missing = ack + 1;
      if (unacked_.count(missing) > 0) {
        retx_queue_.push_back(missing);
      }
      dup_acks_ = 0;
    }
  }

  if (h.type == PonyPacketType::kCredit) {
    return result;  // control only; the grant was applied above
  }
  if (h.type == PonyPacketType::kAck) {
    return result;  // pure ack: no sequenced payload
  }

  // Sequenced packet: dedup, advance cumulative state, schedule an ack.
  uint64_t seq = h.seq;
  ++unacked_rx_;
  if (first_unacked_rx_ == kSimTimeNever) {
    first_unacked_rx_ = now;
  }
  if (unacked_rx_ >= kAckEvery) {
    ack_pending_ = true;
  }
  if (h.tx_timestamp != 0) {
    ts_echo_ = h.tx_timestamp;
  }
  if (seq < rcv_nxt_ || ooo_.count(seq) > 0) {
    ++stats_.duplicates_received;
    ack_pending_ = true;  // duplicate: re-ack immediately
    result.duplicate = true;
    return result;
  }
  if (seq == rcv_nxt_) {
    ++rcv_nxt_;
    auto it = ooo_.begin();
    while (it != ooo_.end() && *it == rcv_nxt_) {
      ++rcv_nxt_;
      it = ooo_.erase(it);
    }
  } else {
    ooo_.insert(seq);
    ack_pending_ = true;  // out of order: dup-ack for fast retransmit
  }
  result.deliver = true;
  return result;
}

SimTime Flow::rto_deadline() const {
  if (unacked_.empty()) {
    return kSimTimeNever;
  }
  if (!oldest_sent_valid_) {
    SimTime oldest = kSimTimeNever;
    for (const auto& [seq, u] : unacked_) {
      oldest = std::min(oldest, u.sent_at);
    }
    oldest_sent_ = oldest;
    oldest_sent_valid_ = true;
  }
  return oldest_sent_ + params_->min_rto;
}

bool Flow::OnTimerCheck(SimTime now) {
  if (unacked_.empty()) {
    return false;
  }
  if (rto_deadline() > now) {
    return false;  // earliest deadline not reached: nothing can fire
  }
  bool fired = false;
  for (auto& [seq, u] : unacked_) {
    if (u.sent_at + params_->min_rto <= now) {
      // Retransmit the expired packet; mark as freshly sent so it does not
      // immediately re-expire while queued.
      if (std::find(retx_queue_.begin(), retx_queue_.end(), seq) ==
          retx_queue_.end()) {
        retx_queue_.push_back(seq);
        NoteSentAtDisturbed(u.sent_at);
        u.sent_at = now;
        fired = true;
      }
    }
  }
  if (fired) {
    ++stats_.rto_events;
    timely_.OnRetransmitTimeout();
  }
  return fired;
}

void Flow::Serialize(StateWriter* w) const {
  w->BeginSection("flow");
  w->PutI64(key_.remote_host);
  w->PutU32(key_.remote_engine);
  w->PutU16(wire_version_);
  w->PutU32(tenant_);
  w->PutU64(next_seq_);
  w->PutU64(last_ack_seen_);
  w->PutU64(rcv_nxt_);
  w->PutI64(credit_);
  w->PutI64(pending_grant_);
  w->PutU32(granted_total_);
  w->PutU32(last_credit_seen_);
  w->PutDouble(timely_.rate_bytes_per_sec());
  w->PutU32(static_cast<uint32_t>(ooo_.size()));
  for (uint64_t seq : ooo_) {
    w->PutU64(seq);
  }
  // Unacked + untransmitted data moves so nothing in flight is lost beyond
  // what end-to-end retransmission recovers.
  auto put_record = [w](const TxRecord& r) {
    w->PutU8(static_cast<uint8_t>(r.header.type));
    w->PutU8(static_cast<uint8_t>(r.header.op));
    w->PutU64(r.header.op_id);
    w->PutU64(r.header.stream_id);
    w->PutU32(r.header.msg_offset);
    w->PutU32(r.header.msg_length);
    w->PutU64(r.header.region_id);
    w->PutU64(r.header.region_offset);
    w->PutU32(r.header.op_length);
    w->PutU16(r.header.batch);
    w->PutU16(r.header.status);
    w->PutI64(r.payload_bytes);
    w->PutBool(r.uses_credit);
    w->PutBytes(r.data);
  };
  w->PutU32(static_cast<uint32_t>(unacked_.size()));
  for (const auto& [seq, u] : unacked_) {
    w->PutU64(seq);
    put_record(u.record);
  }
  w->PutU32(static_cast<uint32_t>(msg_backlog_ + op_queue_.size()));
  for (const auto& [stream, queue] : msg_queues_) {
    for (const TxRecord& r : queue) {
      put_record(r);
    }
  }
  for (const TxRecord& r : op_queue_) {
    put_record(r);
  }
}

Flow Flow::Deserialize(StateReader* r, int local_host, uint32_t local_engine,
                       const TimelyParams& timely_params,
                       const PonyParams* pony_params) {
  r->ExpectSection("flow");
  FlowKey key;
  key.remote_host = static_cast<int>(r->GetI64());
  key.remote_engine = r->GetU32();
  uint16_t wire_version = r->GetU16();
  Flow flow(key, local_host, local_engine, wire_version, timely_params,
            pony_params);
  flow.tenant_ = r->GetU32();
  flow.next_seq_ = r->GetU64();
  flow.last_ack_seen_ = r->GetU64();
  flow.rcv_nxt_ = r->GetU64();
  flow.credit_ = r->GetI64();
  flow.pending_grant_ = r->GetI64();
  flow.granted_total_ = r->GetU32();
  flow.last_credit_seen_ = r->GetU32();
  flow.timely_.RestoreRate(r->GetDouble());
  uint32_t n_ooo = r->GetU32();
  for (uint32_t i = 0; i < n_ooo; ++i) {
    flow.ooo_.insert(r->GetU64());
  }
  auto get_record = [r]() {
    TxRecord rec;
    rec.header.type = static_cast<PonyPacketType>(r->GetU8());
    rec.header.op = static_cast<PonyOpCode>(r->GetU8());
    rec.header.op_id = r->GetU64();
    rec.header.stream_id = r->GetU64();
    rec.header.msg_offset = r->GetU32();
    rec.header.msg_length = r->GetU32();
    rec.header.region_id = r->GetU64();
    rec.header.region_offset = r->GetU64();
    rec.header.op_length = r->GetU32();
    rec.header.batch = r->GetU16();
    rec.header.status = r->GetU16();
    rec.payload_bytes = static_cast<int32_t>(r->GetI64());
    rec.uses_credit = r->GetBool();
    rec.data = r->GetBytes();
    return rec;
  };
  uint32_t n_unacked = r->GetU32();
  for (uint32_t i = 0; i < n_unacked; ++i) {
    uint64_t seq = r->GetU64();
    // In-flight packets at blackout are treated as lost and queued for
    // immediate retransmission by the new engine.
    flow.unacked_[seq] = Unacked{get_record(), 0};
    flow.retx_queue_.push_back(seq);
  }
  uint32_t n_queued = r->GetU32();
  for (uint32_t i = 0; i < n_queued; ++i) {
    flow.QueueTx(get_record());
  }
  flow.RebuildCreditReservations();
  flow.RecomputeInert();
  return flow;
}

}  // namespace snap
