// The Pony Express lower transport layer (Section 3.1): "the lower layer
// implements reliable flows between a pair of engines across the network...
// only responsible for reliably delivering individual packets whereas the
// upper layer handles reordering, reassembly, and semantics associated with
// specific operations."
//
// A Flow provides: per-packet sequencing with cumulative acks and duplicate
// suppression, fast retransmit on dup-acks, a retransmission timeout,
// Timely-paced transmission, and credit-based flow control for two-sided
// message data (one-sided operations intentionally bypass credits and fall
// back to congestion control + CPU scheduling, Section 3.3).
#ifndef SRC_PONY_FLOW_H_
#define SRC_PONY_FLOW_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/packet/packet.h"
#include "src/pony/timely.h"
#include "src/sim/model_params.h"
#include "src/snap/state_codec.h"
#include "src/util/time_types.h"

namespace snap {

struct FlowKey {
  int remote_host = -1;
  uint32_t remote_engine = 0;

  friend bool operator<(const FlowKey& a, const FlowKey& b) {
    if (a.remote_host != b.remote_host) {
      return a.remote_host < b.remote_host;
    }
    return a.remote_engine < b.remote_engine;
  }
  friend bool operator==(const FlowKey& a, const FlowKey& b) {
    return a.remote_host == b.remote_host &&
           a.remote_engine == b.remote_engine;
  }
};

// A packet queued for (re)transmission; headers are completed (seq, ack,
// timestamps) when the packet goes on the wire.
struct TxRecord {
  PonyHeader header;
  int32_t payload_bytes = 0;
  std::vector<uint8_t> data;
  bool uses_credit = false;  // two-sided message fragments
};

class Flow {
 public:
  // Initial two-sided message credit granted by a new peer.
  static constexpr int64_t kInitialCreditBytes = 1024 * 1024;

  Flow(FlowKey key, int local_host, uint32_t local_engine,
       uint16_t wire_version, const TimelyParams& timely_params,
       const PonyParams* pony_params);

  const FlowKey& key() const { return key_; }
  uint16_t wire_version() const { return wire_version_; }

  // --- Transmit side ---
  // Message data (uses_credit) queues per stream and is serviced
  // round-robin so one large message cannot head-of-line block others
  // (Section 3.3's stream semantics); one-sided ops queue separately and
  // bypass credit flow control entirely.
  void QueueTx(TxRecord record);
  size_t tx_backlog() const {
    return msg_backlog_ + op_queue_.size() + retx_queue_.size();
  }
  // True if BuildNextPacket would produce a packet now.
  bool CanSend(SimTime now) const;
  // Earliest future time a queued packet becomes sendable (pacing);
  // kSimTimeNever when nothing is queued or the window is full.
  SimTime NextSendTime() const;
  // Builds the next wire packet (assigns seq, piggybacks ack, stamps
  // timestamps, paces). nullptr when nothing is sendable.
  PacketPtr BuildNextPacket(SimTime now);

  // Pure ack / credit-grant generation (bypass pacing). Acks coalesce:
  // one per kAckEvery received packets, or when the ack deadline passes,
  // or immediately on out-of-order arrival (fast-retransmit signal).
  bool ack_pending() const { return ack_pending_; }
  // Earliest time a coalesced ack must go out; kSimTimeNever if none owed.
  SimTime AckDeadline() const;
  PacketPtr MaybeBuildAck(SimTime now);
  PacketPtr MaybeBuildCreditGrant(SimTime now);

  // --- Receive side ---
  struct RxResult {
    bool duplicate = false;
    bool deliver = false;  // hand the packet to the upper layer
  };
  RxResult OnReceive(const Packet& packet, SimTime now);

  // --- Timers ---
  // Earliest deadline needing service (RTO); kSimTimeNever if none.
  SimTime rto_deadline() const;
  // Services expired timers; returns true if a retransmit was queued.
  bool OnTimerCheck(SimTime now);

  // --- Two-sided credit flow control ---
  bool HasCredit(int64_t bytes) const { return credit_ >= bytes; }
  // Receiver side: the application consumed `bytes` of delivered messages.
  void NoteDelivered(int64_t bytes) { pending_grant_ += bytes; }

  TimelyController& timely() { return timely_; }
  int64_t credit() const { return credit_; }
  size_t unacked_packets() const { return unacked_.size(); }

  // --- Introspection (invariant checkers, src/testing/invariants.h) ---
  uint64_t rcv_nxt() const { return rcv_nxt_; }
  uint64_t last_ack_seen() const { return last_ack_seen_; }
  int64_t pending_grant() const { return pending_grant_; }
  int64_t reserved() const { return reserved_; }
  size_t retx_queue_size() const { return retx_queue_.size(); }
  // Cumulative credit granted by this side / observed from the peer. Credit
  // grants ride every outgoing packet as a cumulative count (mod 2^32) so a
  // lost kCredit packet is healed by any later packet: the receiver applies
  // the serial-arithmetic delta against last_credit_seen().
  uint32_t granted_total() const { return granted_total_; }
  uint32_t last_credit_seen() const { return last_credit_seen_; }

  // Invoked once per packet when the peer's cumulative ack covers it (the
  // upper layer completes send operations on reliable delivery).
  void set_ack_observer(std::function<void(const TxRecord&)> observer) {
    ack_observer_ = std::move(observer);
  }

  struct Stats {
    int64_t data_packets_sent = 0;
    int64_t acks_sent = 0;
    int64_t retransmits = 0;
    int64_t rto_events = 0;
    int64_t duplicates_received = 0;
    int64_t rtt_samples = 0;
    // Retransmits of packets that were never lost: the covering ack arrived
    // sooner after the retransmit left than the fabric's minimum RTT, so it
    // was triggered by the original transmission (reordering-induced
    // dup-acks or an early RTO, not loss).
    int64_t spurious_retransmits = 0;
  };
  const Stats& stats() const { return stats_; }

  // --- Upgrade serialization (Section 4): the entire flow state moves. ---
  void Serialize(StateWriter* w) const;
  static Flow Deserialize(StateReader* r, int local_host,
                          uint32_t local_engine,
                          const TimelyParams& timely_params,
                          const PonyParams* pony_params);

 private:
  struct Unacked {
    TxRecord record;
    SimTime sent_at = 0;
    int transmissions = 1;          // 1 = original only
    SimTime last_retx_at = kSimTimeNever;
  };

  PacketPtr MakePacket(const TxRecord& record, SimTime now, uint64_t seq);
  // True if any stream's head fragment may be sent under the credit
  // reservation rules.
  bool MsgReady() const;
  bool StreamEligible(uint64_t stream) const;
  // Rebuilds started/reserved bookkeeping from queue contents (restore).
  void RebuildCreditReservations();
  // Pops the next sendable record (stream round-robin vs op alternation).
  TxRecord PopNextRecord();
  bool AnythingSendable() const;
  uint64_t WireFlowId() const {
    return (static_cast<uint64_t>(local_engine_) << 32) |
           static_cast<uint64_t>(key_.remote_engine);
  }

  FlowKey key_;
  int local_host_;
  uint32_t local_engine_;
  uint16_t wire_version_;
  const PonyParams* params_;
  TimelyController timely_;

  // TX.
  // Credit-gated message fragments, one queue per stream, serviced in
  // round-robin order (msg_rr_ holds the active stream ids). Starting a
  // message RESERVES its full length against the credit pool, so every
  // in-progress message is guaranteed to finish (otherwise round-robin
  // could strand more partial messages than the pool can complete and the
  // receiver would never grant credit back — deadlock).
  std::map<uint64_t, std::deque<TxRecord>> msg_queues_;
  std::deque<uint64_t> msg_rr_;
  std::set<uint64_t> started_streams_;  // head message mid-transmission
  int64_t reserved_ = 0;  // unsent bytes of started messages
  size_t msg_backlog_ = 0;
  std::deque<TxRecord> op_queue_;   // one-sided ops, acks-with-payload
  bool prefer_op_ = false;          // alternation when both are ready
  std::deque<uint64_t> retx_queue_;  // seqs to retransmit (from unacked_)
  std::map<uint64_t, Unacked> unacked_;
  uint64_t next_seq_ = 1;
  int dup_acks_ = 0;
  uint64_t last_ack_seen_ = 0;
  SimTime next_send_time_ = 0;
  int64_t credit_;

  // RX.
  std::function<void(const TxRecord&)> ack_observer_;
  uint64_t rcv_nxt_ = 1;  // next expected seq (all below received)
  std::set<uint64_t> ooo_;
  bool ack_pending_ = false;
  int unacked_rx_ = 0;          // packets received since our last ack
  SimTime first_unacked_rx_ = kSimTimeNever;
  int64_t ts_echo_ = 0;   // tx_timestamp of the newest received packet
  int64_t pending_grant_ = 0;
  // Cumulative credit handshake (see granted_total() / last_credit_seen()).
  uint32_t granted_total_ = 0;     // total bytes this side has granted
  uint32_t last_credit_seen_ = 0;  // newest cumulative grant from the peer

  Stats stats_;
};

}  // namespace snap

#endif  // SRC_PONY_FLOW_H_
