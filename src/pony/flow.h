// The Pony Express lower transport layer (Section 3.1): "the lower layer
// implements reliable flows between a pair of engines across the network...
// only responsible for reliably delivering individual packets whereas the
// upper layer handles reordering, reassembly, and semantics associated with
// specific operations."
//
// A Flow provides: per-packet sequencing with cumulative acks and duplicate
// suppression, fast retransmit on dup-acks, a retransmission timeout,
// Timely-paced transmission, and credit-based flow control for two-sided
// message data (one-sided operations intentionally bypass credits and fall
// back to congestion control + CPU scheduling, Section 3.3).
#ifndef SRC_PONY_FLOW_H_
#define SRC_PONY_FLOW_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/packet/packet.h"
#include "src/pony/timely.h"
#include "src/sim/model_params.h"
#include "src/snap/state_codec.h"
#include "src/util/time_types.h"

namespace snap {

struct FlowKey {
  int remote_host = -1;
  uint32_t remote_engine = 0;

  friend bool operator<(const FlowKey& a, const FlowKey& b) {
    if (a.remote_host != b.remote_host) {
      return a.remote_host < b.remote_host;
    }
    return a.remote_engine < b.remote_engine;
  }
  friend bool operator==(const FlowKey& a, const FlowKey& b) {
    return a.remote_host == b.remote_host &&
           a.remote_engine == b.remote_engine;
  }
};

// A packet queued for (re)transmission; headers are completed (seq, ack,
// timestamps) when the packet goes on the wire.
struct TxRecord {
  PonyHeader header;
  int32_t payload_bytes = 0;
  std::vector<uint8_t> data;
  bool uses_credit = false;  // two-sided message fragments

  // One record is built per transmitted fragment; recycling `data`'s
  // buffer through the shared payload cache (see packet.h) keeps record
  // construction off malloc. Behavior is unchanged: data starts empty.
  TxRecord() : data(TakePayloadBuffer()) {}
  ~TxRecord() { StashPayloadBuffer(std::move(data)); }
  TxRecord(const TxRecord&) = default;
  TxRecord(TxRecord&&) = default;
  TxRecord& operator=(const TxRecord&) = default;
  TxRecord& operator=(TxRecord&&) = default;
};

class Flow {
 public:
  // Initial two-sided message credit granted by a new peer.
  static constexpr int64_t kInitialCreditBytes = 1024 * 1024;
  // Receiver grants accumulated credit once it crosses this threshold.
  static constexpr int64_t kCreditGrantThreshold = 32 * 1024;

  Flow(FlowKey key, int local_host, uint32_t local_engine,
       uint16_t wire_version, const TimelyParams& timely_params,
       const PonyParams* pony_params);

  const FlowKey& key() const { return key_; }
  uint16_t wire_version() const { return wire_version_; }

  // QoS tenant owning this flow (src/qos/tenant.h). Assigned by the engine
  // from the creating command (or inherited from the first arriving tagged
  // packet), stamped into every outgoing packet, and round-tripped through
  // Serialize/Deserialize. Does not affect inert(): the tag changes who is
  // charged, never whether work exists.
  uint32_t tenant() const { return tenant_; }
  void set_tenant(uint32_t tenant) { tenant_ = tenant; }

  // --- Transmit side ---
  // Message data (uses_credit) queues per stream and is serviced
  // round-robin so one large message cannot head-of-line block others
  // (Section 3.3's stream semantics); one-sided ops queue separately and
  // bypass credit flow control entirely.
  void QueueTx(TxRecord record);
  size_t tx_backlog() const {
    return msg_backlog_ + op_queue_.size() + retx_queue_.size();
  }
  // True iff the flow is a provable no-op for every per-poll engine query:
  // BuildNextPacket returns nullptr, OnTimerCheck / MaybeBuildAck /
  // MaybeBuildCreditGrant do nothing, CanSend is false and every deadline
  // is kSimTimeNever — independent of `now`. The engine polls each flow
  // many times per iteration; inert flows can be skipped with bit-identical
  // results. The answer is cached as one flag (the full predicate reads
  // seven fields across several cache lines): every mutating method ends
  // with RecomputeInert(), so the flag is always exact.
  bool inert() const { return inert_; }
  // True if BuildNextPacket would produce a packet now.
  bool CanSend(SimTime now) const;
  // Earliest future time a queued packet becomes sendable (pacing);
  // kSimTimeNever when nothing is queued or the window is full.
  SimTime NextSendTime() const;
  // Builds the next wire packet (assigns seq, piggybacks ack, stamps
  // timestamps, paces). nullptr when nothing is sendable.
  PacketPtr BuildNextPacket(SimTime now);

  // Pure ack / credit-grant generation (bypass pacing). Acks coalesce:
  // one per kAckEvery received packets, or when the ack deadline passes,
  // or immediately on out-of-order arrival (fast-retransmit signal).
  bool ack_pending() const { return ack_pending_; }
  // Earliest time a coalesced ack must go out; kSimTimeNever if none owed.
  SimTime AckDeadline() const;
  PacketPtr MaybeBuildAck(SimTime now);
  PacketPtr MaybeBuildCreditGrant(SimTime now);

  // --- Receive side ---
  struct RxResult {
    bool duplicate = false;
    bool deliver = false;  // hand the packet to the upper layer
  };
  RxResult OnReceive(const Packet& packet, SimTime now);

  // --- Timers ---
  // Earliest deadline needing service (RTO); kSimTimeNever if none.
  SimTime rto_deadline() const;
  // Services expired timers; returns true if a retransmit was queued.
  bool OnTimerCheck(SimTime now);

  // --- Two-sided credit flow control ---
  bool HasCredit(int64_t bytes) const { return credit_ >= bytes; }
  // Receiver side: the application consumed `bytes` of delivered messages.
  void NoteDelivered(int64_t bytes) {
    pending_grant_ += bytes;
    RecomputeInert();
  }

  TimelyController& timely() { return timely_; }
  int64_t credit() const { return credit_; }
  size_t unacked_packets() const { return unacked_.size(); }

  // --- Introspection (invariant checkers, src/testing/invariants.h) ---
  uint64_t rcv_nxt() const { return rcv_nxt_; }
  uint64_t last_ack_seen() const { return last_ack_seen_; }
  int64_t pending_grant() const { return pending_grant_; }
  int64_t reserved() const { return reserved_; }
  size_t retx_queue_size() const { return retx_queue_.size(); }
  // Cumulative credit granted by this side / observed from the peer. Credit
  // grants ride every outgoing packet as a cumulative count (mod 2^32) so a
  // lost kCredit packet is healed by any later packet: the receiver applies
  // the serial-arithmetic delta against last_credit_seen().
  uint32_t granted_total() const { return granted_total_; }
  uint32_t last_credit_seen() const { return last_credit_seen_; }

  // Invoked once per packet when the peer's cumulative ack covers it (the
  // upper layer completes send operations on reliable delivery).
  void set_ack_observer(std::function<void(const TxRecord&)> observer) {
    ack_observer_ = std::move(observer);
  }

  struct Stats {
    int64_t data_packets_sent = 0;
    int64_t acks_sent = 0;
    int64_t retransmits = 0;
    int64_t rto_events = 0;
    int64_t duplicates_received = 0;
    int64_t rtt_samples = 0;
    // Retransmits of packets that were never lost: the covering ack arrived
    // sooner after the retransmit left than the fabric's minimum RTT, so it
    // was triggered by the original transmission (reordering-induced
    // dup-acks or an early RTO, not loss).
    int64_t spurious_retransmits = 0;
  };
  const Stats& stats() const { return stats_; }

  // --- Upgrade serialization (Section 4): the entire flow state moves. ---
  void Serialize(StateWriter* w) const;
  static Flow Deserialize(StateReader* r, int local_host,
                          uint32_t local_engine,
                          const TimelyParams& timely_params,
                          const PonyParams* pony_params);

 private:
  struct Unacked {
    TxRecord record;
    SimTime sent_at = 0;
    int transmissions = 1;          // 1 = original only
    SimTime last_retx_at = kSimTimeNever;
  };

  PacketPtr MakePacket(const TxRecord& record, SimTime now, uint64_t seq);
  // Bodies of the public mutators; the public wrappers re-derive inert_
  // on every exit path.
  PacketPtr BuildNextPacketImpl(SimTime now);
  RxResult OnReceiveImpl(const Packet& packet, SimTime now);
  // True if any stream's head fragment may be sent under the credit
  // reservation rules.
  bool MsgReady() const;
  bool StreamEligible(
      const std::pair<const uint64_t, std::deque<TxRecord>>* entry) const;
  // Rebuilds started/reserved bookkeeping from queue contents (restore).
  void RebuildCreditReservations();
  // Pops the next sendable record (stream round-robin vs op alternation).
  TxRecord PopNextRecord();
  bool AnythingSendable() const;
  uint64_t WireFlowId() const {
    return (static_cast<uint64_t>(local_engine_) << 32) |
           static_cast<uint64_t>(key_.remote_engine);
  }

  // Cache of min(sent_at) over unacked_. rto_deadline() and OnTimerCheck()
  // are polled every engine iteration; without the cache each poll scans
  // the whole retransmission window. Invariant when oldest_sent_valid_:
  // unacked_ is non-empty and oldest_sent_ == min sent_at. The cache is
  // exact (never stale), so timer behavior is bit-identical to a scan.
  void NoteSentAtInserted(SimTime sent) {
    if (oldest_sent_valid_ && sent < oldest_sent_) {
      oldest_sent_ = sent;
    }
  }
  // Call BEFORE raising or erasing an entry's sent_at; drops the cache
  // only if that entry could be the current minimum.
  void NoteSentAtDisturbed(SimTime sent) {
    if (oldest_sent_valid_ && sent <= oldest_sent_) {
      oldest_sent_valid_ = false;
    }
  }

  // MsgReady() is polled by the engine every iteration (via CanSend /
  // NextSendTime) but its inputs — the stream queues, the credit pool and
  // the reservation bookkeeping — only change when a packet is queued,
  // built, or received. Every mutation site marks the cache dirty, so the
  // cached answer is always exactly what a fresh scan would return.
  bool ComputeMsgReady() const;
  void MarkMsgReadyDirty() { msg_ready_dirty_ = true; }

  // Re-derives inert_ from the fields it summarizes (see inert()). Each
  // conjunct guards one engine query: empty tx queues (nothing to send),
  // empty unacked_ (no RTO), no ack owed, no grant ripe.
  void RecomputeInert() {
    inert_ = msg_backlog_ == 0 && op_queue_.empty() &&
             retx_queue_.empty() && unacked_.empty() && !ack_pending_ &&
             unacked_rx_ == 0 && pending_grant_ < kCreditGrantThreshold;
  }

  FlowKey key_;
  int local_host_;
  uint32_t local_engine_;
  uint16_t wire_version_;
  uint32_t tenant_ = 0;  // qos::kDefaultTenant
  const PonyParams* params_;
  TimelyController timely_;

  // TX.
  // Credit-gated message fragments, one queue per stream, serviced in
  // round-robin order (msg_rr_ holds pointers to the active map entries —
  // map nodes are address-stable and never erased, so the rotation and the
  // eligibility scans touch no map lookups). Starting a message RESERVES
  // its full length against the credit pool, so every in-progress message
  // is guaranteed to finish (otherwise round-robin could strand more
  // partial messages than the pool can complete and the receiver would
  // never grant credit back — deadlock).
  using MsgQueueMap = std::map<uint64_t, std::deque<TxRecord>>;
  using MsgQueueEntry = MsgQueueMap::value_type;
  MsgQueueMap msg_queues_;
  std::deque<MsgQueueEntry*> msg_rr_;
  std::set<uint64_t> started_streams_;  // head message mid-transmission
  int64_t reserved_ = 0;  // unsent bytes of started messages
  size_t msg_backlog_ = 0;
  std::deque<TxRecord> op_queue_;   // one-sided ops, acks-with-payload
  bool prefer_op_ = false;          // alternation when both are ready
  mutable bool msg_ready_cache_ = false;   // see MarkMsgReadyDirty()
  mutable bool msg_ready_dirty_ = true;
  bool inert_ = true;  // see RecomputeInert(); a fresh flow is inert
  std::deque<uint64_t> retx_queue_;  // seqs to retransmit (from unacked_)
  std::map<uint64_t, Unacked> unacked_;
  mutable SimTime oldest_sent_ = 0;        // see NoteSentAtInserted()
  mutable bool oldest_sent_valid_ = false;
  uint64_t next_seq_ = 1;
  int dup_acks_ = 0;
  uint64_t last_ack_seen_ = 0;
  SimTime next_send_time_ = 0;
  int64_t credit_;

  // RX.
  std::function<void(const TxRecord&)> ack_observer_;
  uint64_t rcv_nxt_ = 1;  // next expected seq (all below received)
  std::set<uint64_t> ooo_;
  bool ack_pending_ = false;
  int unacked_rx_ = 0;          // packets received since our last ack
  SimTime first_unacked_rx_ = kSimTimeNever;
  int64_t ts_echo_ = 0;   // tx_timestamp of the newest received packet
  int64_t pending_grant_ = 0;
  // Cumulative credit handshake (see granted_total() / last_credit_seen()).
  uint32_t granted_total_ = 0;     // total bytes this side has granted
  uint32_t last_credit_seen_ = 0;  // newest cumulative grant from the peer

  Stats stats_;
};

}  // namespace snap

#endif  // SRC_PONY_FLOW_H_
