// Pony Express client library (Section 3.1): applications bootstrap shared
// memory with Snap over a Unix domain socket, then interact exclusively
// through lock-free command/completion queues. "Application threads can
// then either spin-poll the completion queue, or can request to receive a
// thread notification when a completion is written."
//
// All methods return their modeled application-side CPU cost through a
// CpuCostSink so calling SimTasks charge the right cores.
#ifndef SRC_PONY_CLIENT_H_
#define SRC_PONY_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/kernel/kstack.h"  // CpuCostSink
#include "src/pony/memory_region.h"
#include "src/pony/pony_types.h"
#include "src/qos/tenant.h"
#include "src/qos/token_bucket.h"
#include "src/queue/spsc_ring.h"
#include "src/sim/model_params.h"
#include "src/util/doorbell.h"

namespace snap {

class PonyEngine;

class PonyClient {
 public:
  PonyClient(std::string app_name, uint64_t client_id, PonyEngine* engine,
             const AppParams& params);
  ~PonyClient();

  PonyClient(const PonyClient&) = delete;
  PonyClient& operator=(const PonyClient&) = delete;

  // --- Command submission (async; completion arrives later). Returns the
  // op id, or 0 if the command queue is full. ---
  uint64_t SendMessage(PonyAddress peer, uint64_t stream_id, int64_t bytes,
                       std::vector<uint8_t> data, CpuCostSink* cost);
  uint64_t Read(PonyAddress peer, uint64_t region_id, uint64_t offset,
                int64_t length, CpuCostSink* cost);
  uint64_t Write(PonyAddress peer, uint64_t region_id, uint64_t offset,
                 int64_t length, std::vector<uint8_t> data,
                 CpuCostSink* cost);
  uint64_t IndirectRead(PonyAddress peer, uint64_t table_region_id,
                        uint64_t first_index, uint16_t batch, int64_t length,
                        CpuCostSink* cost);
  uint64_t ScanAndRead(PonyAddress peer, uint64_t region_id,
                       uint64_t match_value, int64_t length,
                       CpuCostSink* cost);

  // --- Completion / receive queues ---
  std::optional<PonyCompletion> PollCompletion(CpuCostSink* cost);
  std::optional<PonyIncomingMessage> PollMessage(CpuCostSink* cost);

  // One-shot notification instead of spinning (edge-triggered).
  void ArmCompletionNotify(std::function<void()> cb, CpuCostSink* cost);
  void ArmMessageNotify(std::function<void()> cb, CpuCostSink* cost);

  // Live blocking-notify path (Section 3.1 "receive a thread notification
  // when a completion is written"): once bound (setup phase only), every
  // completion or message delivered into the app-visible rings rings the
  // doorbell, so an app thread can sleep in Doorbell::WaitFor instead of
  // spin-polling. Level-style: the bell latches until consumed, so a
  // delivery racing the poll loop is never lost. At most one app thread
  // may wait on it (the Doorbell contract).
  void BindDoorbell(Doorbell* doorbell) { doorbell_ = doorbell; }
  Doorbell* doorbell() const { return doorbell_; }

  // --- Memory registration (proxied through the control plane) ---
  uint64_t RegisterRegion(size_t bytes, bool allow_remote_write);
  MemoryRegion* region(uint64_t id);
  // Iterates registered regions (upgrade re-registration path).
  void ForEachRegion(
      const std::function<void(uint64_t, MemoryRegion*)>& fn) const {
    for (const auto& [id, region] : regions_) {
      fn(id, region.get());
    }
  }

  // Creates a message stream to `peer` (Section 3.3: streams avoid
  // head-of-line blocking between independent messages).
  uint64_t CreateStream(PonyAddress peer);

  uint64_t client_id() const { return client_id_; }
  const std::string& app_name() const { return app_name_; }
  PonyEngine* engine() { return engine_; }

  // --- QoS (src/qos/) ---
  // Binds this client to a tenant: every submitted command carries the
  // tenant id, and if the spec sets admission_rate_bytes_per_sec > 0 a
  // token bucket gates Submit so an aggressor is backpressured at the app
  // boundary (Submit returns 0, the same signal as a full command queue).
  void SetTenant(const qos::TenantSpec& spec);
  qos::TenantId tenant() const { return tenant_; }
  // Submissions rejected by the admission bucket (not queue-full).
  int64_t admission_throttled() const { return admission_throttled_; }

  // Upgrade support: shared memory (rings, regions) survives; only the
  // engine pointer is swapped (Section 4: "authenticated application
  // connections remain established").
  void Rebind(PonyEngine* engine) { engine_ = engine; }

  // Observes every message that reaches the application-visible ring
  // (invariant checkers, src/testing/invariants.h). Fires after the push
  // succeeds; never fires for messages the engine is still holding.
  void SetDeliveryObserver(
      std::function<void(const PonyIncomingMessage&)> observer) {
    delivery_observer_ = std::move(observer);
  }

  // --- Engine-side interface ---
  SpscRing<PonyCommand>& command_queue() { return commands_; }
  // Deliver into the app-visible rings. Return false WITHOUT consuming the
  // argument when the ring is full (receiver-driven flow control: the
  // engine holds the item and the sender's credits stay unreplenished).
  bool DeliverCompletion(PonyCompletion&& completion);
  bool DeliverMessage(PonyIncomingMessage&& message);
  // Oldest unserviced command's submit time (engine queueing-delay metric).
  SimTime OldestCommandTime() const;

 private:
  uint64_t Submit(PonyCommand cmd, CpuCostSink* cost);

  std::string app_name_;
  uint64_t client_id_;
  PonyEngine* engine_;
  AppParams params_;
  SpscRing<PonyCommand> commands_;
  SpscRing<PonyCompletion> completions_;
  SpscRing<PonyIncomingMessage> messages_;
  std::map<uint64_t, std::unique_ptr<MemoryRegion>> regions_;
  std::function<void()> completion_notify_;
  std::function<void()> message_notify_;
  Doorbell* doorbell_ = nullptr;
  std::function<void(const PonyIncomingMessage&)> delivery_observer_;
  uint64_t next_op_ = 1;
  uint64_t next_region_ = 1;
  uint64_t next_stream_ = 1;
  qos::TenantId tenant_ = qos::kDefaultTenant;
  qos::TokenBucket admission_;
  bool admission_limited_ = false;
  bool admission_blocked_ = false;  // tracing edge state
  int64_t admission_throttled_ = 0;
};

}  // namespace snap

#endif  // SRC_PONY_CLIENT_H_
