// Lock-free single-producer/single-consumer ring buffer.
//
// This is the communication primitive Snap uses everywhere on the data
// plane: application command/completion queues, engine-to-engine links,
// packet rings shared with the kernel packet-injection driver, and NIC
// descriptor rings all map onto bounded SPSC rings over shared memory
// (Section 2.2: "lock-free communication occurs over memory-mapped regions
// shared with the input or output").
//
// The implementation is a standard power-of-two ring with cached
// head/tail indices to minimize cross-core cache traffic. It is safe for
// exactly one producer thread and one consumer thread.
//
// The ring is parameterized over an atomics policy (see atomics_policy.h)
// so the model checker in src/verify/ can exhaustively explore its
// interleavings; production code uses the default StdAtomics policy and is
// unchanged.
#ifndef SRC_QUEUE_SPSC_RING_H_
#define SRC_QUEUE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "src/queue/atomics_policy.h"
#include "src/util/logging.h"

namespace snap {

template <typename T, typename Policy = StdAtomics>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two; the ring holds up to
  // `capacity` elements.
  explicit SpscRing(size_t capacity) {
    SNAP_CHECK_GT(capacity, 0u);
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Producer side. Returns false when full.
  bool TryPush(T value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) {
        return false;
      }
    }
    slots_[tail & mask_].Set(std::move(value));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt when empty.
  std::optional<T> TryPop() {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) {
        return std::nullopt;
      }
    }
    T value = slots_[head & mask_].Take();
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  // Consumer side: peek without consuming.
  const T* Peek() const {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) {
      return nullptr;
    }
    return &slots_[head & mask_].Get();
  }

  // Approximate size; exact when called from either endpoint's thread
  // between operations.
  size_t size() const {
    size_t tail = tail_.load(std::memory_order_acquire);
    size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool empty() const { return size() == 0; }
  bool full() const { return size() > mask_; }

 private:
  template <typename U>
  using Atomic = typename Policy::template Atomic<U>;
  using Slot = typename Policy::template Cell<T>;

  std::vector<Slot> slots_;
  size_t mask_ = 0;

  alignas(64) Atomic<size_t> head_{0};
  alignas(64) size_t cached_tail_ = 0;   // consumer-local
  alignas(64) Atomic<size_t> tail_{0};
  alignas(64) size_t cached_head_ = 0;   // producer-local
};

}  // namespace snap

#endif  // SRC_QUEUE_SPSC_RING_H_
