// Atomics policy for the lock-free queue templates.
//
// Snap's dataplane rests on three lock-free shared-memory primitives
// (SpscRing, MpscQueue, EngineMailbox). Their correctness depends on a
// handful of memory_order annotations that no amount of ordinary testing
// can exhaustively exercise. To make them *model-checkable*, each queue is
// parameterized over an atomics policy:
//
//   - `StdAtomics` (this header, the default): `Atomic<T>` is plain
//     `std::atomic<T>` and `Cell<T>` is a zero-cost wrapper around plain
//     storage. Production code instantiates this policy and compiles to
//     exactly the code the un-templated queues produced.
//   - `verify::ModelAtomics` (src/verify/model_atomic.h): every atomic
//     access becomes a scheduling point in a deterministic model-checking
//     runtime that enumerates thread interleavings and weak-memory
//     outcomes, and every Cell access is race-checked with vector clocks.
//
// A policy provides:
//   template <typename T> using Atomic = ...;   // std::atomic-compatible
//   template <typename T> class Cell { Set / Take / Get };  // plain data
//
// Cell<T> marks non-atomic payload slots whose safety is supposed to be
// guaranteed by the surrounding acquire/release protocol — exactly the
// accesses a missing `memory_order_release` turns into data races.
#ifndef SRC_QUEUE_ATOMICS_POLICY_H_
#define SRC_QUEUE_ATOMICS_POLICY_H_

#include <atomic>
#include <utility>

namespace snap {

// Default policy: real atomics, plain payload storage. Zero overhead — all
// Cell methods are trivial inline forwarders.
struct StdAtomics {
  template <typename T>
  using Atomic = std::atomic<T>;

  template <typename T>
  class Cell {
   public:
    void Set(T value) { value_ = std::move(value); }
    T Take() { return std::move(value_); }
    const T& Get() const { return value_; }

   private:
    T value_;
  };
};

}  // namespace snap

#endif  // SRC_QUEUE_ATOMICS_POLICY_H_
