// Engine mailbox (Section 2.3): a depth-1, lock-free queue on which control
// components post short sections of work for synchronous execution *on the
// engine's thread*, non-blocking with respect to the engine.
//
// Control plane: Post() returns false while a previous item is pending
// (callers retry from their RPC loop). Engine: RunPending() executes at most
// one posted closure per call, from the engine's own Poll loop.
//
// Parameterized over an atomics policy (see atomics_policy.h) so the model
// checker in src/verify/ can exhaustively explore its interleavings; the
// `EngineMailbox` alias below is the production instantiation and is
// unchanged. The work slot is a Policy::Cell because its safety depends
// entirely on the state-machine's acquire/release edges.
#ifndef SRC_QUEUE_MAILBOX_H_
#define SRC_QUEUE_MAILBOX_H_

#include <atomic>
#include <functional>
#include <utility>

#include "src/queue/atomics_policy.h"

namespace snap {

template <typename Policy>
class BasicEngineMailbox {
 public:
  using WorkItem = std::function<void()>;

  BasicEngineMailbox() = default;
  BasicEngineMailbox(const BasicEngineMailbox&) = delete;
  BasicEngineMailbox& operator=(const BasicEngineMailbox&) = delete;

  // Control-plane side: posts `work` for the engine thread. Returns false
  // if the mailbox already holds a pending item.
  bool Post(WorkItem work) {
    State expected = State::kEmpty;
    if (!state_.compare_exchange_strong(expected, State::kWriting,
                                        std::memory_order_acquire)) {
      return false;
    }
    work_.Set(std::move(work));
    state_.store(State::kReady, std::memory_order_release);
    return true;
  }

  // Engine side: runs the pending item if any. Returns true if work ran.
  bool RunPending() {
    State expected = State::kReady;
    if (!state_.compare_exchange_strong(expected, State::kRunning,
                                        std::memory_order_acquire)) {
      return false;
    }
    WorkItem work = work_.Take();
    work_.Set(nullptr);
    state_.store(State::kEmpty, std::memory_order_release);
    work();
    return true;
  }

  bool pending() const {
    return state_.load(std::memory_order_acquire) == State::kReady;
  }

 private:
  enum class State : int { kEmpty, kWriting, kReady, kRunning };

  typename Policy::template Atomic<State> state_{State::kEmpty};
  typename Policy::template Cell<WorkItem> work_;
};

// Production instantiation (real std::atomic).
using EngineMailbox = BasicEngineMailbox<StdAtomics>;

}  // namespace snap

#endif  // SRC_QUEUE_MAILBOX_H_
