// Engine mailbox (Section 2.3): a depth-1, lock-free queue on which control
// components post short sections of work for synchronous execution *on the
// engine's thread*, non-blocking with respect to the engine.
//
// Control plane: Post() returns false while a previous item is pending
// (callers retry from their RPC loop). Engine: RunPending() executes at most
// one posted closure per call, from the engine's own Poll loop.
#ifndef SRC_QUEUE_MAILBOX_H_
#define SRC_QUEUE_MAILBOX_H_

#include <atomic>
#include <functional>
#include <utility>

namespace snap {

class EngineMailbox {
 public:
  using WorkItem = std::function<void()>;

  EngineMailbox() = default;
  EngineMailbox(const EngineMailbox&) = delete;
  EngineMailbox& operator=(const EngineMailbox&) = delete;

  // Control-plane side: posts `work` for the engine thread. Returns false
  // if the mailbox already holds a pending item.
  bool Post(WorkItem work) {
    State expected = State::kEmpty;
    if (!state_.compare_exchange_strong(expected, State::kWriting,
                                        std::memory_order_acquire)) {
      return false;
    }
    work_ = std::move(work);
    state_.store(State::kReady, std::memory_order_release);
    return true;
  }

  // Engine side: runs the pending item if any. Returns true if work ran.
  bool RunPending() {
    State expected = State::kReady;
    if (!state_.compare_exchange_strong(expected, State::kRunning,
                                        std::memory_order_acquire)) {
      return false;
    }
    WorkItem work = std::move(work_);
    work_ = nullptr;
    state_.store(State::kEmpty, std::memory_order_release);
    work();
    return true;
  }

  bool pending() const {
    return state_.load(std::memory_order_acquire) == State::kReady;
  }

 private:
  enum class State : int { kEmpty, kWriting, kReady, kRunning };

  std::atomic<State> state_{State::kEmpty};
  WorkItem work_;
};

}  // namespace snap

#endif  // SRC_QUEUE_MAILBOX_H_
