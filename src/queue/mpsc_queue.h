// Lock-free multi-producer/single-consumer intrusive queue (Vyukov-style).
// Used where multiple control threads or support threads feed one engine
// (e.g. load-balancing messages between engine-group scheduler threads,
// Section 2.4: "a message passing mechanism similar to the engine mailbox,
// but non-blocking on both sides").
//
// Parameterized over an atomics policy (see atomics_policy.h) so the model
// checker in src/verify/ can exhaustively explore its interleavings; the
// `MpscQueue` / `MpscNode` aliases below are the production instantiation
// and are unchanged.
#ifndef SRC_QUEUE_MPSC_QUEUE_H_
#define SRC_QUEUE_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>

#include "src/queue/atomics_policy.h"

namespace snap {

// Node type to embed in queued objects.
template <typename Policy>
struct BasicMpscNode {
  typename Policy::template Atomic<BasicMpscNode<Policy>*> next{nullptr};
};

// Intrusive MPSC queue. Push is lock-free and safe from any thread;
// Pop must be called from a single consumer thread. Objects must outlive
// their time in the queue; the queue does not own them.
template <typename Policy>
class BasicMpscQueue {
 public:
  using Node = BasicMpscNode<Policy>;

  BasicMpscQueue() : head_(&stub_), tail_(&stub_) {
    stub_.next.store(nullptr, std::memory_order_relaxed);
  }

  BasicMpscQueue(const BasicMpscQueue&) = delete;
  BasicMpscQueue& operator=(const BasicMpscQueue&) = delete;

  // Producer: enqueue `node`. Wait-free.
  void Push(Node* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  // Consumer: dequeue one node, or nullptr if empty (or momentarily
  // inconsistent while a producer is mid-push — caller retries later).
  Node* Pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        return nullptr;
      }
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    Node* head = head_.load(std::memory_order_acquire);
    if (tail != head) {
      return nullptr;  // producer mid-push; retry later
    }
    Push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;
  }

  bool empty() const {
    return tail_ == &stub_ &&
           stub_.next.load(std::memory_order_acquire) == nullptr &&
           head_.load(std::memory_order_acquire) == &stub_;
  }

 private:
  typename Policy::template Atomic<Node*> head_;
  Node* tail_;  // consumer-owned
  Node stub_;
};

// Production instantiations (real std::atomic).
using MpscNode = BasicMpscNode<StdAtomics>;
using MpscQueue = BasicMpscQueue<StdAtomics>;

}  // namespace snap

#endif  // SRC_QUEUE_MPSC_QUEUE_H_
