// Lock-free multi-producer/single-consumer intrusive queue (Vyukov-style).
// Used where multiple control threads or support threads feed one engine
// (e.g. load-balancing messages between engine-group scheduler threads,
// Section 2.4: "a message passing mechanism similar to the engine mailbox,
// but non-blocking on both sides").
#ifndef SRC_QUEUE_MPSC_QUEUE_H_
#define SRC_QUEUE_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>

namespace snap {

// Node type to embed in queued objects.
struct MpscNode {
  std::atomic<MpscNode*> next{nullptr};
};

// Intrusive MPSC queue. Push is lock-free and safe from any thread;
// Pop must be called from a single consumer thread. Objects must outlive
// their time in the queue; the queue does not own them.
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {
    stub_.next.store(nullptr, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Producer: enqueue `node`. Wait-free.
  void Push(MpscNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  // Consumer: dequeue one node, or nullptr if empty (or momentarily
  // inconsistent while a producer is mid-push — caller retries later).
  MpscNode* Pop() {
    MpscNode* tail = tail_;
    MpscNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        return nullptr;
      }
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    MpscNode* head = head_.load(std::memory_order_acquire);
    if (tail != head) {
      return nullptr;  // producer mid-push; retry later
    }
    Push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;
  }

  bool empty() const {
    return tail_ == &stub_ &&
           stub_.next.load(std::memory_order_acquire) == nullptr &&
           head_.load(std::memory_order_acquire) == &stub_;
  }

 private:
  std::atomic<MpscNode*> head_;
  MpscNode* tail_;  // consumer-owned
  MpscNode stub_;
};

}  // namespace snap

#endif  // SRC_QUEUE_MPSC_QUEUE_H_
