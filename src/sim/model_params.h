// Central registry of simulation cost-model constants.
//
// Every magnitude below is either (a) taken from the Snap paper's own
// numbers, (b) a widely published microarchitectural cost for the Skylake /
// Broadwell era the paper evaluates on, or (c) calibrated so the paper's
// headline shapes reproduce (a note marks which). Benchmarks never hardcode
// costs; they construct or tweak one of these structs.
#ifndef SRC_SIM_MODEL_PARAMS_H_
#define SRC_SIM_MODEL_PARAMS_H_

#include "src/util/time_types.h"

namespace snap {

// ---------------------------------------------------------------------------
// CPU scheduling model (Section 2.4 / 2.4.1 of the paper).
// ---------------------------------------------------------------------------
struct CpuParams {
  int num_cores = 8;

  // Preemption granularity: a runnable higher-priority task waits at most
  // this long for the current step to finish (unless the core is inside a
  // non-preemptible kernel section).
  SimDuration max_step = 4 * kUsec;

  // Cost of picking the next task and switching to it.
  SimDuration dispatch_cost = 300 * kNsec;
  // Additional cost when the switch crosses address spaces.
  SimDuration ctx_switch_cost = 800 * kNsec;
  // Inter-processor interrupt (remote wakeup signal) delivery latency.
  SimDuration ipi_cost = 500 * kNsec;
  // Interrupt entry/exit overhead charged on the interrupted core.
  SimDuration irq_overhead = 400 * kNsec;

  // CFS model: a running task holds the core for up to `cfs_slice` against
  // equal-weight competition; preemption opportunities occur at sched-tick
  // boundaries. These produce the millisecond-scale tail latencies the
  // paper's Figure 6(d) attributes to CFS (calibrated).
  SimDuration cfs_slice = 3 * kMsec;
  SimDuration cfs_tick = 1 * kMsec;
  // A waking CFS task preempts at the next tick if its weight exceeds the
  // running task's by this factor (models wakeup preemption + nice -20).
  double cfs_wakeup_preempt_ratio = 1.5;

  // MicroQuanta class (Section 2.4.1): runtime out of every period, with
  // microsecond-scale preemption of CFS tasks.
  SimDuration mq_default_runtime = 900 * kUsec;
  SimDuration mq_default_period = 1 * kMsec;
  // Fair-share turn length between competing MicroQuanta tasks on a core
  // ("the scheduler attempts to fair-share CPU time between engines").
  SimDuration mq_slice = 50 * kUsec;

  // A spin-polling task notices new work within this long of it arriving
  // (half a poll-loop iteration on average).
  SimDuration spin_detect_latency = 150 * kNsec;

  // C-state model (Figure 7(a)). An idle core descends through sleep states;
  // waking from deeper states costs more. Exit latencies are in the range
  // Intel publishes for Skylake server C-states.
  bool enable_cstates = true;
  SimDuration c1_exit_latency = 1 * kUsec;
  SimDuration c1e_entry_after = 60 * kUsec;
  SimDuration c1e_exit_latency = 12 * kUsec;
  SimDuration c6_entry_after = 600 * kUsec;
  SimDuration c6_exit_latency = 85 * kUsec;
};

// ---------------------------------------------------------------------------
// NIC and fabric model (shared by the kernel stack and Snap engines).
// ---------------------------------------------------------------------------
struct NicParams {
  // Link speed in bits per simulated second.
  double link_gbps = 100.0;
  // One-way propagation through the ToR switch (same-rack).
  SimDuration propagation_delay = 1 * kUsec;
  // Optional two-level topology: hosts come in clusters of
  // `hosts_per_cluster` consecutive ids (0 = flat rack, every pair one
  // switch hop apart). A packet crossing clusters pays
  // `inter_cluster_extra_delay` on top of `propagation_delay` (an
  // aggregation-switch hop). Besides modeling pod-style racks, the gap
  // between intra- and inter-cluster latency is what gives the sharded
  // engine a per-shard-pair lookahead larger than the base delay.
  int hosts_per_cluster = 0;
  SimDuration inter_cluster_extra_delay = 0;
  // Fixed per-packet PCIe/NIC pipeline traversal (each direction).
  SimDuration nic_pipeline_delay = 1400 * kNsec;
  // RX/TX descriptor ring size, in packets.
  int rx_ring_entries = 1024;
  int tx_ring_entries = 1024;
  // Egress-port queue capacity at the switch, in bytes. Overflow drops
  // (lossy fabric; Section 5.4 relies on congestion control, not pauses).
  int64_t port_queue_bytes = 2 * 1024 * 1024;
  // Interrupt moderation: fire immediately when idle; under load coalesce
  // until `itr_max_wait` or `itr_max_frames` packets (adaptive, like ixgbe).
  SimDuration itr_max_wait = 10 * kUsec;
  int itr_max_frames = 64;
  // Simulator-internal optimization (no effect on modeled behavior): a
  // burst crossing an egress port schedules one drain event instead of one
  // event per packet; each packet is still delivered at its exact modeled
  // time. OFF reverts to per-packet events for A/B benchmarking.
  bool batched_delivery = true;

  int cluster_of(int host) const {
    return hosts_per_cluster > 0 ? host / hosts_per_cluster : 0;
  }
  // One-way propagation between two specific hosts under the (possibly
  // two-level) topology above.
  SimDuration propagation_between(int src_host, int dst_host) const {
    return cluster_of(src_host) == cluster_of(dst_host)
               ? propagation_delay
               : propagation_delay + inter_cluster_extra_delay;
  }
  // The largest propagation_between() over any host pair.
  SimDuration max_propagation_delay() const {
    return hosts_per_cluster > 0
               ? propagation_delay + inter_cluster_extra_delay
               : propagation_delay;
  }
};

// ---------------------------------------------------------------------------
// Kernel TCP stack cost model (the paper's baseline, Sections 5.1-5.3).
// Calibrated so Neper-style runs land near Table 1's kernel rows:
// 22 Gbps / 1.17 cores single stream, degrading with 200 streams.
// ---------------------------------------------------------------------------
struct KernelStackParams {
  // Ring-switch cost of any system call (post-Meltdown KPTI era).
  SimDuration syscall_cost = 1200 * kNsec;
  // Per-byte cost of copying between user and kernel buffers.
  double copy_ns_per_byte = 0.050;
  // Per-packet softirq RX processing (driver poll, IP, TCP, demux).
  SimDuration softirq_per_packet = 500 * kNsec;
  // Extra per-packet cost as flow/socket state stops fitting in cache:
  // socket-lock ping-pong, skb cache misses, flow-table walks. The penalty
  // ramps linearly from `cold_flow_threshold` active flows to the full
  // value at `cold_flow_saturation` (calibrated to Table 1 row 2's 200
  // streams without over-penalizing a rack with a few dozen flows).
  SimDuration softirq_cold_penalty = 2000 * kNsec;
  int cold_flow_threshold = 16;
  int cold_flow_saturation = 192;
  // TCP transmit path per packet (segmentation, header build, qdisc).
  SimDuration tx_per_packet = 260 * kNsec;
  // Socket wakeup: softirq -> blocked reader (scheduling handoff is modeled
  // by the CPU scheduler; this is the sk_data_ready bookkeeping itself).
  SimDuration socket_wakeup_cost = 500 * kNsec;
  // epoll_wait dispatch overhead per returned event.
  SimDuration epoll_per_event = 350 * kNsec;
  // Extra per-receive cost when many sockets are active and their state no
  // longer fits in cache (calibrated to Table 1's 200-stream row).
  SimDuration recv_cold_penalty = 900 * kNsec;
  // Default socket buffer (bounds a single stream's window; calibrated so
  // one stream rides at ~22 Gbps with same-rack RTT).
  int64_t socket_buffer_bytes = 96 * 1024;
  // MTU payload bytes per TCP segment ("large MTU" config at Google: 4096).
  int mss_bytes = 4096;
  // Busy-polling sockets (SO_BUSY_POLL) skip interrupt+wakeup on RX.
  bool busy_poll = false;
};

// ---------------------------------------------------------------------------
// Snap / Pony Express engine cost model (Sections 3, 5.1).
// Calibrated against Table 1: 38.5 / 67.5 / 82.2 Gbps single-core rows.
// ---------------------------------------------------------------------------
struct PonyParams {
  // Fixed per-packet engine cost: ring descriptor handling, flow lookup,
  // transport state machine, header build/parse.
  SimDuration per_packet_cost = 285 * kNsec;
  // Per-byte protocol processing (CRC32 offloaded to NIC; this is metadata
  // touching + allocator work that scales with payload).
  double proc_ns_per_byte = 0.020;
  // Per-byte RX copy from packet memory into application buffers (TX is
  // zero-copy; Section 6.2).
  double rx_copy_ns_per_byte = 0.040;
  // With the I/OAT copy engine, the RX copy leaves the core; the engine
  // pays only the descriptor setup per packet (Section 3.4).
  bool ioat_copy_offload = false;
  SimDuration ioat_setup_cost = 92 * kNsec;
  // Engine poll loop: cost of one empty poll sweep over inputs.
  SimDuration poll_overhead = 80 * kNsec;
  // Command/completion queue interaction per op (application side cost is
  // separate; this is the engine side).
  SimDuration per_op_cost = 180 * kNsec;
  // One-sided op execution (memory region validation + access).
  SimDuration onesided_exec_cost = 150 * kNsec;
  // Each indirection of a (batched) indirect read: table lookup + fetch.
  SimDuration indirection_cost = 120 * kNsec;
  // Packet batch limit per NIC poll (paper default: 16).
  int rx_batch = 16;
  // Command queue batch limit per poll.
  int cmd_batch = 16;
  // MTU payload bytes per Pony packet (default fabric MTU 2048 era; the
  // 5000-byte experiments override this).
  int mtu_payload = 1984;
  // Wire header bytes (versioned Pony header + fabric encap).
  int header_bytes = 64;
  // Messages up to this size ride the credit-managed shared buffer pool;
  // larger messages use receiver-driven buffer posting and bypass credits
  // (Section 3.3: "a mix of receiver-driven buffer posting as well as a
  // shared buffer pool managed using credits, for smaller messages").
  int64_t credit_message_threshold = 256 * 1024;
  // Retransmission timeout floor.
  SimDuration min_rto = 400 * kUsec;
  // Spurious-retransmit detection floor: an ack that arrives sooner than
  // this after a retransmit left cannot have been triggered by it (the
  // fabric's minimum RTT is ~2x propagation + 2x NIC pipeline ≈ 4.8 us), so
  // the original packet was never lost and the retransmit was spurious.
  SimDuration spurious_rtt_floor = 4 * kUsec;
};

// ---------------------------------------------------------------------------
// Application-side costs (shared-memory client library).
// ---------------------------------------------------------------------------
struct AppParams {
  // Writing a command + doorbell check.
  SimDuration submit_cost = 150 * kNsec;
  // Completion queue poll (hit).
  SimDuration completion_cost = 120 * kNsec;
  // Thread-notification wakeup request instead of spinning.
  SimDuration notify_arm_cost = 200 * kNsec;
};

// ---------------------------------------------------------------------------
// Transparent upgrade model (Section 4, Figure 9).
// ---------------------------------------------------------------------------
struct UpgradeParams {
  // Fixed blackout floor: detach RX filters, fd/queue handoff, reattach.
  SimDuration blackout_fixed = 45 * kMsec;
  // Serialization + deserialization cost per unit of engine state.
  SimDuration per_flow_cost = 1700 * kNsec;
  SimDuration per_stream_cost = 700 * kNsec;
  SimDuration per_region_cost = 400 * kNsec;
  // Brownout background transfer rate (control-plane connections etc.).
  double brownout_bytes_per_sec = 2e9;
};

}  // namespace snap

#endif  // SRC_SIM_MODEL_PARAMS_H_
