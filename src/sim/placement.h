// Host-to-shard placement for the sharded simulator.
//
// Where a host lives decides whether its packets cross a shard boundary
// (ring handoff + barrier) or stay local (direct delivery, no sync). The
// TrafficMatrix records who talks to whom — either declared up front by the
// workload harness (the hint API used by bench/sharded_rack.h) or filled
// from a profiling pre-run — and Placement::TrafficAware greedily
// graph-partitions hosts onto shards to minimize cross-shard traffic under
// a load-balance bound. Every constructor is deterministic, and simulation
// digests are byte-identical across placements (gated in placement_test /
// determinism_test): placement is a pure performance knob.
#ifndef SRC_SIM_PLACEMENT_H_
#define SRC_SIM_PLACEMENT_H_

#include <cstdint>
#include <vector>

namespace snap {

// Symmetric host-to-host traffic weights. Units are whatever the caller
// declares (bytes, packets) — only relative magnitudes matter to the
// partitioner.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(int num_hosts);

  int num_hosts() const { return n_; }

  // Accumulates `weight` onto the (a, b) pair, both directions (the
  // partitioner cares about coupling, not direction). Self-traffic is
  // ignored. weight >= 0.
  void Add(int a, int b, int64_t weight);

  int64_t weight(int a, int b) const { return w_[a * n_ + b]; }

  // Total coupling of `host` to everyone else.
  int64_t total_weight(int host) const;

 private:
  int n_;
  std::vector<int64_t> w_;
};

// A host -> shard assignment. Everything that builds a sharded topology
// (bench/sharded_rack.h, seed_sweep) takes one of these; all constructors
// map every host into [0, num_shards).
struct Placement {
  int num_shards = 1;
  std::vector<int> shard_of_host;

  int shard(int host) const { return shard_of_host[host]; }
  int num_hosts() const { return static_cast<int>(shard_of_host.size()); }

  // host % num_shards — the legacy striping, adversarial for
  // cluster-local traffic (neighbors always land apart).
  static Placement RoundRobin(int num_hosts, int num_shards);

  // Blocks of ceil(num_hosts / num_shards) consecutive hosts — ideal when
  // traffic is cluster-local and clusters align with the block size,
  // adversarial tie-breaking exercise otherwise.
  static Placement Contiguous(int num_hosts, int num_shards);

  // Greedy graph partition: hosts in decreasing total-traffic order (id
  // ascending on ties) are assigned to the shard they have the most
  // already-placed traffic with, subject to the balance bound
  //   shard size <= ceil(num_hosts / num_shards * balance_slack).
  // Ties pick the smaller shard, then the lower shard id. Deterministic.
  static Placement TrafficAware(const TrafficMatrix& traffic, int num_shards,
                                double balance_slack = 1.2);

  // Total traffic weight crossing shard boundaries under this placement
  // (each unordered pair counted once).
  int64_t CrossShardWeight(const TrafficMatrix& traffic) const;

  int max_shard_size() const;
};

}  // namespace snap

#endif  // SRC_SIM_PLACEMENT_H_
