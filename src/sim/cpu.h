// Simulated multicore CPU with three scheduling classes:
//
//  - kCfs: a CFS-like fair class. A running task holds the core for up to a
//    slice; equal-priority preemption happens at slice expiry, and a waking
//    task with a much larger weight (nice -20) preempts at the next sched
//    tick. This reproduces the millisecond-scale scheduling tails the paper
//    measures for kernel TCP and CFS-hosted Snap (Figure 6(d)).
//  - kMicroQuanta: the paper's custom kernel class (Section 2.4.1). Runs
//    with priority over CFS, preempting within the bounded step granularity,
//    subject to a runtime/period bandwidth cap enforced with per-CPU
//    high-resolution timers.
//  - kDedicated: the task owns a reserved core (Snap "dedicating cores"
//    engine scheduling mode).
//
// Execution model: when scheduled, a task's Step() performs up to budget_ns
// of simulated work. Steps are atomic (non-preemptible for their duration),
// which models preemption granularity; antagonists that enter long
// non-preemptible kernel sections simply return oversized steps flagged
// non_preemptible (Figure 7(b)).
//
// Idle cores descend through C-states; wakeups from deeper states pay higher
// exit latency (Figure 7(a)). Wake placement prefers the task's previous
// core, then any idle core, then queues behind running tasks.
#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/model_params.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/util/logging.h"
#include "src/util/time_types.h"

namespace snap {

class CpuScheduler;

enum class SchedClass : int {
  kCfs = 0,
  kMicroQuanta = 1,
  kDedicated = 2,
};

struct StepResult {
  enum class Next {
    kYield,  // more work available; reschedulable
    kBlock,  // no work; sleep until woken
    kSpin,   // no work, but keep polling (charge CPU)
  };

  SimDuration cpu_ns = 0;
  Next next = Next::kBlock;
  // When true, cpu_ns may exceed the offered budget: the task is inside a
  // non-preemptible kernel section for the whole step.
  bool non_preemptible = false;
};

// A schedulable entity. Subclasses implement Step(); the scheduler owns all
// run-state bookkeeping in `sched` (treated as private to CpuScheduler).
class SimTask {
 public:
  SimTask(std::string name, SchedClass sched_class, double weight = 1.0)
      : name_(std::move(name)), sched_class_(sched_class), weight_(weight) {}
  virtual ~SimTask() = default;

  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;

  // Performs up to `budget_ns` of simulated work starting at `now`.
  virtual StepResult Step(SimTime now, SimDuration budget_ns) = 0;

  const std::string& name() const { return name_; }
  SchedClass sched_class() const { return sched_class_; }
  double weight() const { return weight_; }

  // Accounting container this task's CPU is charged to (Section 2.5).
  void set_container(std::string container) {
    container_ = std::move(container);
  }
  const std::string& container() const { return container_; }

  int64_t cpu_consumed_ns() const { return sched.cpu_ns; }

  // Optional: record wake-to-run scheduling latency into this histogram.
  void set_sched_latency_histogram(Histogram* h) { sched.latency_hist = h; }

  // --- Scheduler-internal state. Only CpuScheduler mutates this. ---
  struct SchedState {
    enum class RunState { kBlocked, kRunnable, kRunning, kThrottled };
    RunState state = RunState::kBlocked;
    int pinned_core = -1;  // -1 = migratable
    int queued_core = -1;  // core whose runqueue holds us (when kRunnable)
    int last_core = -1;
    // MicroQuanta bandwidth control.
    SimDuration mq_runtime = 0;
    SimDuration mq_period = 0;
    SimDuration mq_used = 0;
    SimTime mq_period_start = 0;
    // Metrics.
    int64_t cpu_ns = 0;
    SimTime wake_time = 0;
    bool latency_pending = false;
    bool wake_pending = false;  // Wake() arrived while kRunning
    Histogram* latency_hist = nullptr;
  };
  SchedState sched;

 private:
  std::string name_;
  SchedClass sched_class_;
  double weight_;
  std::string container_;
};

class CpuScheduler {
 public:
  CpuScheduler(Simulator* sim, const CpuParams& params);

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  // Registers a task. Tasks start blocked; call Wake() to start them.
  // Dedicated-class tasks must be pinned with ReserveCore() first.
  void AddTask(SimTask* task);

  // Pins `task` to `core` (it will only ever run there).
  void PinTask(SimTask* task, int core);

  // Reserves `core` exclusively for `task` and pins it there.
  void ReserveCore(SimTask* task, int core);

  // Releases a reservation made by ReserveCore (used when an upgrade
  // retires an engine's dedicated core).
  void ReleaseCore(int core);

  // Overrides the MicroQuanta bandwidth for one task.
  void SetMicroQuantaBandwidth(SimTask* task, SimDuration runtime,
                               SimDuration period);

  // Makes a blocked task runnable. `remote` wakeups (interrupts, cross-core
  // doorbells) pay IPI + interrupt-entry costs. No-op if already runnable.
  void Wake(SimTask* task, bool remote = true);

  // Schedules a Wake at absolute time `when`; cancellable.
  EventHandle WakeAt(SimTask* task, SimTime when, bool remote = false);

  // Total CPU consumed across all tasks in `container`.
  int64_t ContainerCpuNs(const std::string& container) const;
  // Total CPU consumed across every task.
  int64_t TotalCpuNs() const;
  // CPU consumed in scheduler/IRQ overhead (not attributed to any task).
  int64_t OverheadNs() const { return overhead_ns_; }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  const CpuParams& params() const { return params_; }
  Simulator* sim() { return sim_; }

  // Trace track (tid) for one of this scheduler's cores. Each scheduler
  // gets its own contiguous range from the simulator, so cores of
  // different hosts never share a track.
  int trace_track(int core) const { return trace_track_base_ + core; }

  // True if the given core currently has a running or queued task.
  bool CoreBusy(int core) const;

  // Flushes lazily-accounted spin-poll CPU time up to now into the parked
  // tasks' counters. Call before reading CPU accounting mid-run.
  void FlushSpinAccounting();

 private:
  struct Core {
    int id = 0;
    SimTask* current = nullptr;
    SimTask* last_task = nullptr;     // for context-switch cost
    SimTask* reserved_for = nullptr;  // dedicated reservation
    bool step_in_progress = false;
    bool waking = false;      // dispatch event pending (idle -> running)
    // Spin-park: the current task is busy-polling with no work. No events
    // are simulated; a Wake dispatches immediately and the polling CPU time
    // is charged lazily on unpark.
    bool spin_parked = false;
    SimTime spin_park_start = 0;
    SimTime idle_since = 0;
    SimTime np_until = 0;     // inside non-preemptible section until
    SimTime busy_until = 0;   // current step completes at
    SimTime turn_start = 0;   // when `current` was last switched in
    SimDuration pending_switch_cost = 0;
    std::deque<SimTask*> mq_queue;
    std::deque<SimTask*> cfs_queue;
  };

  // Picks the best core for a waking task; returns core id.
  int PlaceTask(SimTask* task);
  // Enqueues a runnable task on a core and kicks dispatch if it is idle.
  void EnqueueTask(Core& core, SimTask* task, SimDuration extra_delay);
  // Dispatch loop entry: selects and starts the next task on an idle core.
  void Dispatch(Core& core);
  // Picks the next runnable task for a core (nullptr if none; may steal).
  SimTask* PickNext(Core& core);
  // Runs one step of core.current.
  void StepOnce(Core& core);
  void FinishStep(Core& core, SimTask* task, StepResult result,
                  SimDuration charged);
  // C-state exit latency given how long the core has been idle.
  SimDuration CStateExitLatency(const Core& core) const;
  // MicroQuanta: refresh the period window; returns remaining budget.
  SimDuration MqRemainingBudget(SimTask* task);
  void ThrottleMq(Core& core, SimTask* task);
  // True if the core should switch away from `current` given waiters.
  bool ShouldSwitch(const Core& core, const SimTask& current) const;
  // Tries to steal a migratable task from another core's queue.
  SimTask* TrySteal(Core& thief);
  void RemoveFromQueues(Core& core, SimTask* task);
  void ParkSpin(Core& core);
  // Charges parked spin time and resumes stepping the parked task.
  void UnparkSpin(Core& core, SimDuration detect_latency);

  Simulator* sim_;
  CpuParams params_;
  int trace_track_base_ = 0;
  std::vector<Core> cores_;
  std::vector<SimTask*> tasks_;
  int64_t overhead_ns_ = 0;
  int rr_cursor_ = 0;  // round-robin start point for idle-core search
};

}  // namespace snap

#endif  // SRC_SIM_CPU_H_
