// Conservative parallel discrete-event simulation across shards.
//
// A ShardedSim owns N independent Simulators ("shards"); a partitioned
// model assigns every host (and its NIC, engines, telemetry) to exactly
// one shard, so a shard's event queue only ever touches shard-local
// state. Shards synchronize with classic conservative epochs driven by a
// per-shard-pair lookahead matrix: L(s, d) is the minimum model-time
// delay before work produced on shard s can take effect on shard d (for
// fabric workloads, the minimum propagation delay between any host of s
// and any host of d — shard_net.h computes it from the topology). The
// engine closes the matrix under chaining (min-plus shortest paths,
// Floyd-Warshall): D(s, d) also bounds s's effect on d through relays —
// an event on s can wake shard e, whose immediate response reaches d no
// sooner than L(s, e) + L(e, d) — and the diagonal D(d, d) is the
// shortest cycle through d, bounding how soon d's own work can boomerang
// back via a neighbor. Each destination shard d then gets its own
// horizon
//
//   H(d) = min over all s of  next(s) + D(s, d)
//
// where next(s) is s's earliest pending event; d may run freely to
// H(d) - 1 without ever observing a message from the past. Same-shard
// traffic is delivered eagerly by the router (never crosses a barrier),
// so there is no direct diagonal term — and a single-shard run needs no
// barriers at all (H = never; one epoch per RunUntil). At each epoch
// barrier all shards are parked, the registered barrier hooks run on the
// coordinating thread (this is where src/net/shard_net.h drains the
// inter-shard rings and stages arrivals in canonical order), and new
// horizons are computed from the post-exchange event set.
//
// Safety: any future arrival at d descends from a chain rooted at some
// currently-pending event, so it lands at or beyond next(s) + D(s, d) >=
// H(d) — past every clock the epoch grants d. The closure's triangle
// inequality makes each destination's horizon non-decreasing across
// epochs (next-epoch events are themselves bounded below through D), so
// the grant stays safe even for shards that ran far ahead while others
// idled; the one-hop matrix alone would not be (an idle shard woken by a
// neighbor could answer below the far-ahead shard's clock).
// Progress: every horizon exceeds the global minimum event time by at
// least the smallest lookahead, so barrier time strictly advances; the
// `next(s)` form (rather than `now + L`) lets quiescent stretches (RTO
// waits, drained runs) advance in one epoch instead of millions of empty
// lookahead-sized steps.
//
// The horizons are a pure function of the pending event times and the
// lookahead matrix, so the epoch structure is identical no matter how
// many worker threads execute the shards — with `num_threads <= 1` the
// shards run round-robin on the caller's thread and results are
// bit-identical to the threaded run by construction. Results are also
// byte-identical to the serial single-Simulator engine for every shard
// count and host placement (the epoch/exchange *counts* differ across
// shard counts — fewer barriers is the point — but the simulated outcome
// does not); docs/PARALLEL.md has the full determinism contract.
#ifndef SRC_SIM_SHARDED_SIM_H_
#define SRC_SIM_SHARDED_SIM_H_

#include <atomic>
#include <barrier>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/time_types.h"

namespace snap {

class ShardedSim {
 public:
  struct Options {
    int num_shards = 1;
    uint64_t seed = 1;
    EventQueueKind queue_kind = kDefaultEventQueueKind;
    // Default conservative lookahead, used for every shard pair until
    // set_pair_lookahead overrides it (shard_net.h installs per-pair
    // values derived from the fabric topology). Must be <= the minimum
    // cross-shard propagation delay.
    SimDuration lookahead = 1 * kUsec;
    // Worker threads executing shards; <= 1 runs every shard round-robin
    // on the caller's thread (bit-identical results either way).
    int num_threads = 0;
  };

  explicit ShardedSim(const Options& options);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  int num_shards() const { return static_cast<int>(sims_.size()); }
  Simulator* sim(int shard) { return sims_[shard].get(); }
  const Simulator* sim(int shard) const { return sims_[shard].get(); }
  SimDuration lookahead() const { return options_.lookahead; }

  // The one-hop lookahead matrix: minimum model-time delay from work on
  // `src` to any direct effect on `dst`. Larger values mean longer
  // epochs between that pair; correctness requires value <= the true
  // minimum cross-shard latency. The diagonal is ignored (same-shard
  // work never crosses a barrier; the engine derives the diagonal bound
  // as the shortest cycle when it closes the matrix). Set before or
  // between Run* calls.
  void set_pair_lookahead(int src, int dst, SimDuration lookahead);
  SimDuration pair_lookahead(int src, int dst) const {
    return pair_lookahead_[src * num_shards() + dst];
  }

  // Barrier (= global simulated) time: every shard has executed all its
  // events strictly before now(), and none at or after it except during
  // the final inclusive chunk of a RunUntil (mirroring Simulator::RunUntil,
  // whose clock lands exactly on `until` with events at `until` executed).
  SimTime now() const { return now_; }

  // Registers a hook that runs on the coordinating thread at every epoch
  // barrier, with all shards parked. Hooks run in registration order;
  // cross-shard exchanges and barrier-time sampling live here. Register
  // before the first Run* call.
  void AddBarrierHook(std::function<void()> hook) {
    barrier_hooks_.push_back(std::move(hook));
  }

  // Conservative epoch execution to `until` (inclusive, like
  // Simulator::RunUntil). Returns with now() == until and all staged
  // cross-shard work exchanged.
  void RunUntil(SimTime until);
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Earliest pending event time across all shards (kSimTimeNever if idle).
  SimTime NextEventTime() const;

  struct Progress {
    int64_t epochs = 0;
    int64_t events_fired = 0;  // total across shards
    // Sum over epochs of the busiest shard's events that epoch: the
    // events on the parallel critical path. events_fired /
    // critical_path_events is the speedup an ideal machine with one core
    // per shard would see (bench_sim_speed records it as
    // speedup_critical_path; measured wall-clock numbers sit next to it).
    int64_t critical_path_events = 0;
  };
  const Progress& progress() const { return progress_; }

  // --- Wall-clock engine profiler (docs/OBSERVABILITY.md) ---
  //
  // Per-shard accounting of where wall-clock time goes while the engine
  // runs: busy (inside Simulator::RunUntil), wait (parked while other
  // shards finish the epoch — barrier wait in threaded mode, run-queue
  // wait in round-robin mode), and the coordinator's exchange/hook time.
  // Wall-clock numbers are inherently nondeterministic, so they live ONLY
  // in this struct and ProfileJson(): they are never written to Telemetry
  // or the trace. The deterministic side of the profiler — per-shard
  // per-epoch event counts and the epoch-imbalance ratio — goes into each
  // shard's Telemetry registry (sim/shard/<s>/...) and, when tracing is
  // on, onto per-shard kProfilerTrack counter tracks in the merged trace.
  // With profiling disabled nothing is recorded and every output is
  // byte-identical to a build without the profiler (the determinism gate
  // covers this).
  struct ShardProfile {
    int64_t busy_ns = 0;          // wall time executing this shard's events
    int64_t wait_ns = 0;          // epoch wall time minus busy time
    int64_t events = 0;           // deterministic: events fired (per shard)
    int64_t max_epoch_events = 0; // deterministic: busiest single epoch
  };
  struct Profile {
    bool enabled = false;
    int64_t epoch_wall_ns = 0;     // wall time inside RunShardsToTargets
    int64_t exchange_wall_ns = 0;  // coordinator wall time in barrier hooks
    std::vector<ShardProfile> shards;
  };
  // Arms the profiler; call before the first Run*. Idempotent.
  void EnableProfiling();
  bool profiling_enabled() const { return profile_.enabled; }
  const Profile& profile() const { return profile_; }
  // {"enabled":...,"epochs":N,"epoch_wall_ns":...,"exchange_wall_ns":...,
  //  "shards":[{"busy_ns":...,"wait_ns":...,"events":...,
  //             "max_epoch_events":...},...]}
  std::string ProfileJson() const;

  // Arms fixed-memory time-series sampling on every shard's Telemetry
  // registry, driven from the epoch barrier (a scheduled sampling event
  // would change the epoch structure with shard count; the barrier hook
  // is free). Samples land at barrier time whenever at least `cadence`
  // of simulated time has passed since the previous sample. Call before
  // the first Run*.
  void EnableSeriesSampling(SimDuration cadence,
                            SimDuration bucket_width = 0,
                            int max_buckets = 64);

  // Deterministic merge of every shard's telemetry registry: counters and
  // gauges summed into one name-ordered map (shards register disjoint
  // per-host metric names, so the merge is a union; shared names sum).
  std::map<std::string, int64_t> MergedTelemetryValues() const;

  // Flight recording across shards. EnableTracing (call before building
  // hosts) attaches one TraceRecorder per shard; MergedTrace folds them
  // into a single deterministic trace: events interleaved by timestamp
  // (ties broken by shard, then per-shard emission order) with every
  // track id remapped to shard * kShardTrackStride + tid, so per-shard
  // tracks — including the virtual scheduler/fabric/chaos tracks — stay
  // distinct and stable. Which track a host's cores land on depends on
  // its shard, so traces are comparable between runs of the same
  // placement; the simulation itself is unaffected (pure observation).
  static constexpr int kShardTrackStride = 100000;
  void EnableTracing();
  bool tracing_enabled() const { return !tracers_.empty(); }
  TraceRecorder* shard_tracer(int shard) { return tracers_[shard].get(); }
  std::unique_ptr<TraceRecorder> MergedTrace() const;

 private:
  void RunShardsToTargets();
  void RunBarrierHooks();
  void RecordEpochProfile();
  void RefreshLookaheadClosure();
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(int worker_index);

  Options options_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<SimDuration> pair_lookahead_;  // num_shards^2, row = src
  // Min-plus closure of pair_lookahead_ (diagonal = shortest cycle);
  // entries >= kLookaheadInf mean "unreachable". Rebuilt lazily.
  std::vector<SimDuration> closed_lookahead_;
  bool closure_dirty_ = true;
  std::vector<std::function<void()>> barrier_hooks_;
  std::vector<std::unique_ptr<TraceRecorder>> tracers_;
  SimTime now_ = 0;
  Progress progress_;
  Profile profile_;
  // Per-shard Telemetry counters registered by EnableProfiling; each is
  // written only at barriers (all shards parked).
  std::vector<Counter*> prof_epoch_events_;
  std::vector<Counter*> prof_epochs_;
  // Per-shard wall busy accumulator for the current epoch, written by the
  // thread executing that shard and read by the coordinator after the
  // done barrier (the barrier provides the happens-before edge).
  std::vector<int64_t> busy_scratch_ns_;
  std::vector<int64_t> delta_scratch_;  // per-epoch fired deltas (profiling)
  SimDuration series_cadence_ = 0;
  SimTime last_series_sample_ = -1;
  std::vector<int64_t> fired_at_epoch_start_;
  std::vector<SimTime> next_scratch_;
  std::vector<SimTime> horizon_scratch_;

  // Worker-pool state (threaded mode only). `targets_` is written by the
  // coordinator strictly between the two barriers, so workers read it
  // race-free; the barriers provide all ordering.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> start_barrier_;
  std::unique_ptr<std::barrier<>> done_barrier_;
  std::vector<SimTime> targets_;
  int num_worker_threads_ = 0;
  std::atomic<bool> stop_{false};
  bool workers_started_ = false;
};

}  // namespace snap

#endif  // SRC_SIM_SHARDED_SIM_H_
