// Conservative parallel discrete-event simulation across shards.
//
// A ShardedSim owns N independent Simulators ("shards"); a partitioned
// model assigns every host (and its NIC, engines, telemetry) to exactly
// one shard, so a shard's event queue only ever touches shard-local
// state. Shards synchronize with classic conservative epochs driven by a
// per-shard-pair lookahead matrix: L(s, d) is the minimum model-time
// delay before work produced on shard s can take effect on shard d (for
// fabric workloads, the minimum propagation delay between any host of s
// and any host of d — shard_net.h computes it from the topology). The
// engine closes the matrix under chaining (min-plus shortest paths,
// Floyd-Warshall): D(s, d) also bounds s's effect on d through relays —
// an event on s can wake shard e, whose immediate response reaches d no
// sooner than L(s, e) + L(e, d) — and the diagonal D(d, d) is the
// shortest cycle through d, bounding how soon d's own work can boomerang
// back via a neighbor. Each destination shard d then gets its own
// horizon
//
//   H(d) = min over all s of  next(s) + D(s, d)
//
// where next(s) is s's earliest pending event; d may run freely to
// H(d) - 1 without ever observing a message from the past. Same-shard
// traffic is delivered eagerly by the router (never crosses a barrier),
// so there is no direct diagonal term — and a single-shard run needs no
// barriers at all (H = never; one epoch per RunUntil). At each epoch
// barrier all shards are parked, the registered barrier hooks run on the
// coordinating thread (this is where src/net/shard_net.h drains the
// inter-shard rings and stages arrivals in canonical order), and new
// horizons are computed from the post-exchange event set.
//
// Safety: any future arrival at d descends from a chain rooted at some
// currently-pending event, so it lands at or beyond next(s) + D(s, d) >=
// H(d) — past every clock the epoch grants d. The closure's triangle
// inequality makes each destination's horizon non-decreasing across
// epochs (next-epoch events are themselves bounded below through D), so
// the grant stays safe even for shards that ran far ahead while others
// idled; the one-hop matrix alone would not be (an idle shard woken by a
// neighbor could answer below the far-ahead shard's clock).
// Progress: every horizon exceeds the global minimum event time by at
// least the smallest lookahead, so barrier time strictly advances; the
// `next(s)` form (rather than `now + L`) lets quiescent stretches (RTO
// waits, drained runs) advance in one epoch instead of millions of empty
// lookahead-sized steps.
//
// The horizons are a pure function of the pending event times and the
// lookahead matrix, so the epoch structure is identical no matter how
// many worker threads execute the shards — with `num_threads <= 1` the
// shards run round-robin on the caller's thread and results are
// bit-identical to the threaded run by construction. Results are also
// byte-identical to the serial single-Simulator engine for every shard
// count and host placement (the epoch/exchange *counts* differ across
// shard counts — fewer barriers is the point — but the simulated outcome
// does not); docs/PARALLEL.md has the full determinism contract.
#ifndef SRC_SIM_SHARDED_SIM_H_
#define SRC_SIM_SHARDED_SIM_H_

#include <atomic>
#include <barrier>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/time_types.h"

namespace snap {

class ShardedSim {
 public:
  struct Options {
    int num_shards = 1;
    uint64_t seed = 1;
    EventQueueKind queue_kind = kDefaultEventQueueKind;
    // Default conservative lookahead, used for every shard pair until
    // set_pair_lookahead overrides it (shard_net.h installs per-pair
    // values derived from the fabric topology). Must be <= the minimum
    // cross-shard propagation delay.
    SimDuration lookahead = 1 * kUsec;
    // Worker threads executing shards; <= 1 runs every shard round-robin
    // on the caller's thread (bit-identical results either way).
    int num_threads = 0;
  };

  explicit ShardedSim(const Options& options);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  int num_shards() const { return static_cast<int>(sims_.size()); }
  Simulator* sim(int shard) { return sims_[shard].get(); }
  const Simulator* sim(int shard) const { return sims_[shard].get(); }
  SimDuration lookahead() const { return options_.lookahead; }

  // The one-hop lookahead matrix: minimum model-time delay from work on
  // `src` to any direct effect on `dst`. Larger values mean longer
  // epochs between that pair; correctness requires value <= the true
  // minimum cross-shard latency. The diagonal is ignored (same-shard
  // work never crosses a barrier; the engine derives the diagonal bound
  // as the shortest cycle when it closes the matrix). Set before or
  // between Run* calls.
  void set_pair_lookahead(int src, int dst, SimDuration lookahead);
  SimDuration pair_lookahead(int src, int dst) const {
    return pair_lookahead_[src * num_shards() + dst];
  }

  // Barrier (= global simulated) time: every shard has executed all its
  // events strictly before now(), and none at or after it except during
  // the final inclusive chunk of a RunUntil (mirroring Simulator::RunUntil,
  // whose clock lands exactly on `until` with events at `until` executed).
  SimTime now() const { return now_; }

  // Registers a hook that runs on the coordinating thread at every epoch
  // barrier, with all shards parked. Hooks run in registration order;
  // cross-shard exchanges and barrier-time sampling live here. Register
  // before the first Run* call.
  void AddBarrierHook(std::function<void()> hook) {
    barrier_hooks_.push_back(std::move(hook));
  }

  // Conservative epoch execution to `until` (inclusive, like
  // Simulator::RunUntil). Returns with now() == until and all staged
  // cross-shard work exchanged.
  void RunUntil(SimTime until);
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Earliest pending event time across all shards (kSimTimeNever if idle).
  SimTime NextEventTime() const;

  struct Progress {
    int64_t epochs = 0;
    int64_t events_fired = 0;  // total across shards
    // Sum over epochs of the busiest shard's events that epoch: the
    // events on the parallel critical path. events_fired /
    // critical_path_events is the speedup an ideal machine with one core
    // per shard would see (bench_sim_speed records it as
    // speedup_critical_path; measured wall-clock numbers sit next to it).
    int64_t critical_path_events = 0;
  };
  const Progress& progress() const { return progress_; }

  // Deterministic merge of every shard's telemetry registry: counters and
  // gauges summed into one name-ordered map (shards register disjoint
  // per-host metric names, so the merge is a union; shared names sum).
  std::map<std::string, int64_t> MergedTelemetryValues() const;

  // Flight recording across shards. EnableTracing (call before building
  // hosts) attaches one TraceRecorder per shard; MergedTrace folds them
  // into a single deterministic trace: events interleaved by timestamp
  // (ties broken by shard, then per-shard emission order) with every
  // track id remapped to shard * kShardTrackStride + tid, so per-shard
  // tracks — including the virtual scheduler/fabric/chaos tracks — stay
  // distinct and stable. Which track a host's cores land on depends on
  // its shard, so traces are comparable between runs of the same
  // placement; the simulation itself is unaffected (pure observation).
  static constexpr int kShardTrackStride = 100000;
  void EnableTracing();
  bool tracing_enabled() const { return !tracers_.empty(); }
  TraceRecorder* shard_tracer(int shard) { return tracers_[shard].get(); }
  std::unique_ptr<TraceRecorder> MergedTrace() const;

 private:
  void RunShardsToTargets();
  void RefreshLookaheadClosure();
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(int worker_index);

  Options options_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<SimDuration> pair_lookahead_;  // num_shards^2, row = src
  // Min-plus closure of pair_lookahead_ (diagonal = shortest cycle);
  // entries >= kLookaheadInf mean "unreachable". Rebuilt lazily.
  std::vector<SimDuration> closed_lookahead_;
  bool closure_dirty_ = true;
  std::vector<std::function<void()>> barrier_hooks_;
  std::vector<std::unique_ptr<TraceRecorder>> tracers_;
  SimTime now_ = 0;
  Progress progress_;
  std::vector<int64_t> fired_at_epoch_start_;
  std::vector<SimTime> next_scratch_;
  std::vector<SimTime> horizon_scratch_;

  // Worker-pool state (threaded mode only). `targets_` is written by the
  // coordinator strictly between the two barriers, so workers read it
  // race-free; the barriers provide all ordering.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> start_barrier_;
  std::unique_ptr<std::barrier<>> done_barrier_;
  std::vector<SimTime> targets_;
  int num_worker_threads_ = 0;
  std::atomic<bool> stop_{false};
  bool workers_started_ = false;
};

}  // namespace snap

#endif  // SRC_SIM_SHARDED_SIM_H_
