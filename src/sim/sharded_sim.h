// Conservative parallel discrete-event simulation across shards.
//
// A ShardedSim owns N independent Simulators ("shards"); a partitioned
// model assigns every host (and its NIC, engines, telemetry) to exactly
// one shard, so a shard's event queue only ever touches shard-local
// state. Shards synchronize with classic conservative epochs: if the
// earliest pending event anywhere is at time `next`, and any work one
// shard produces for another cannot take effect before `lookahead` has
// elapsed (the fabric's propagation delay), then every shard may run
// freely to the horizon `next + lookahead` without ever observing a
// message from the past. At each epoch barrier all shards are parked,
// the registered barrier hooks run on the coordinating thread (this is
// where src/net/shard_net.h drains the inter-shard SpscRings and
// schedules arrival events in canonical order), and the next horizon is
// computed from the new global event set.
//
// Because the horizon is a pure function of the global set of pending
// event times, the epoch structure — and therefore every exchange — is
// identical no matter how many worker threads execute the shards. With
// `num_threads <= 1` the shards run round-robin on the caller's thread
// and the results are bit-identical to the threaded run by construction;
// tests exploit this to pin the threaded backend against the sequential
// one, and the chaos-sweep digest tests pin both against the serial
// single-Simulator engine (docs/PARALLEL.md).
//
// The idle skip-ahead in the horizon computation (`next + lookahead`
// rather than `now + lookahead`) matters: quiescent stretches (RTO
// waits, drained chaos sweeps) advance in one epoch instead of millions
// of empty lookahead-sized steps.
#ifndef SRC_SIM_SHARDED_SIM_H_
#define SRC_SIM_SHARDED_SIM_H_

#include <atomic>
#include <barrier>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/time_types.h"

namespace snap {

class ShardedSim {
 public:
  struct Options {
    int num_shards = 1;
    uint64_t seed = 1;
    EventQueueKind queue_kind = kDefaultEventQueueKind;
    // Conservative synchronization horizon: the minimum model-time delay
    // before work produced on one shard can take effect on another. For
    // fabric workloads this is NicParams::propagation_delay (the model
    // enforces lookahead <= propagation_delay in shard_net.h).
    SimDuration lookahead = 1 * kUsec;
    // Worker threads executing shards; <= 1 runs every shard round-robin
    // on the caller's thread (bit-identical results either way).
    int num_threads = 0;
  };

  explicit ShardedSim(const Options& options);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  int num_shards() const { return static_cast<int>(sims_.size()); }
  Simulator* sim(int shard) { return sims_[shard].get(); }
  const Simulator* sim(int shard) const { return sims_[shard].get(); }
  SimDuration lookahead() const { return options_.lookahead; }

  // Barrier (= global simulated) time: every shard has executed all its
  // events strictly before now(), and none at or after it except during
  // the final inclusive chunk of a RunUntil (mirroring Simulator::RunUntil,
  // whose clock lands exactly on `until` with events at `until` executed).
  SimTime now() const { return now_; }

  // Registers a hook that runs on the coordinating thread at every epoch
  // barrier, with all shards parked. Hooks run in registration order;
  // cross-shard exchanges and barrier-time sampling live here. Register
  // before the first Run* call.
  void AddBarrierHook(std::function<void()> hook) {
    barrier_hooks_.push_back(std::move(hook));
  }

  // Conservative epoch execution to `until` (inclusive, like
  // Simulator::RunUntil). Returns with now() == until and all staged
  // cross-shard work exchanged.
  void RunUntil(SimTime until);
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Earliest pending event time across all shards (kSimTimeNever if idle).
  SimTime NextEventTime() const;

  struct Progress {
    int64_t epochs = 0;
    int64_t events_fired = 0;  // total across shards
    // Sum over epochs of the busiest shard's events that epoch: the
    // events on the parallel critical path. events_fired /
    // critical_path_events is the speedup an ideal machine with one core
    // per shard would see (bench_sim_speed records it as
    // speedup_critical_path; measured wall-clock numbers sit next to it).
    int64_t critical_path_events = 0;
  };
  const Progress& progress() const { return progress_; }

  // Deterministic merge of every shard's telemetry registry: counters and
  // gauges summed into one name-ordered map (shards register disjoint
  // per-host metric names, so the merge is a union; shared names sum).
  std::map<std::string, int64_t> MergedTelemetryValues() const;

 private:
  void RunShardsTo(SimTime target);
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(int worker_index);

  Options options_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::function<void()>> barrier_hooks_;
  SimTime now_ = 0;
  Progress progress_;
  std::vector<int64_t> fired_at_epoch_start_;

  // Worker-pool state (threaded mode only). `target_` is written by the
  // coordinator strictly between the two barriers, so workers read it
  // race-free; the barriers provide all ordering.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> start_barrier_;
  std::unique_ptr<std::barrier<>> done_barrier_;
  SimTime target_ = 0;
  int num_worker_threads_ = 0;
  std::atomic<bool> stop_{false};
  bool workers_started_ = false;
};

}  // namespace snap

#endif  // SRC_SIM_SHARDED_SIM_H_
