// Discrete-event queue: time-ordered callbacks with stable FIFO ordering
// for equal timestamps and O(1) cancellation via generation-checked handles.
//
// Two interchangeable implementations sit behind the EventQueue facade:
//
//  - TimerWheelEventQueue (default): a hierarchical timer wheel. Events
//    live in slab-allocated, generation-counted records; a near wheel of
//    256 x 64ns slots covers the current ~16us block, a far wheel of 256
//    block-sized slots covers the next ~4.2ms, and genuinely distant
//    events (RTOs, app timers) overflow into a small binary heap that
//    cascades back through the wheels as simulated time advances.
//    Scheduling and popping are O(1) amortized and allocation-free for
//    callbacks whose captures fit EventCallback's inline buffer.
//
//  - LegacyHeapEventQueue: the pre-timer-wheel binary heap (a per-event
//    shared_ptr<bool> liveness flag, a heap-allocated callback box, and
//    O(log n) sift costs). Kept for one release behind the
//    SNAP_EVENTQ_HEAP CMake option as a determinism cross-check and as
//    the baseline for bench/bench_sim_speed; the old implementation's
//    const_cast move out of std::priority_queue::top() (UB) is gone --
//    this version uses push_heap/pop_heap on a plain vector.
//
// Both implementations execute events in the identical total order
// (time, then schedule sequence), so a simulation produces bit-identical
// results regardless of which queue backs it; tests/determinism_test.cc
// enforces this over the chaos seed sweep.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/logging.h"
#include "src/util/time_types.h"

namespace snap {

class Telemetry;
class TimerWheelEventQueue;

// Which implementation backs an EventQueue. The compile-time default is
// the timer wheel; configuring with -DSNAP_EVENTQ_HEAP=ON flips the
// default back to the legacy heap (tests and benches can always pick
// either at runtime).
enum class EventQueueKind {
  kTimerWheel,
  kLegacyHeap,
};

#ifdef SNAP_EVENTQ_HEAP
inline constexpr EventQueueKind kDefaultEventQueueKind =
    EventQueueKind::kLegacyHeap;
#else
inline constexpr EventQueueKind kDefaultEventQueueKind =
    EventQueueKind::kTimerWheel;
#endif

const char* EventQueueKindName(EventQueueKind kind);

// --------------------------------------------------------------------------
// EventCallback: a move-only type-erased void() callable with inline
// storage. The dominant simulation callbacks capture a `this` pointer and
// a couple of scalars; those construct, move and destroy without touching
// the allocator. Larger captures fall back to the heap (counted in
// EventQueueStats::callback_heap_allocs). Unlike std::function it accepts
// move-only captures (e.g. a PacketPtr), which lets packet-carrying
// events own their packet instead of juggling raw pointers.
// --------------------------------------------------------------------------
class EventCallback {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT: implicit by design, like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ptr_ = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(&other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { Reset(); }

  void operator()() { ops_->invoke(this); }
  explicit operator bool() const { return ops_ != nullptr; }
  // True when the callable lives in the inline buffer (no allocation).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(EventCallback*);
    // Move-constructs src's callable into raw dst storage, destroying src.
    void (*move)(EventCallback* dst, EventCallback* src);
    void (*destroy)(EventCallback*);
    bool inline_storage;
  };

  // Declared before the Ops tables below: static-member initializers are
  // not a complete-class context, so the lambdas there need these members
  // already visible.
  const Ops* ops_ = nullptr;
  union {
    void* ptr_;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  };

  template <typename Fn>
  Fn* inline_target() {
    return std::launder(reinterpret_cast<Fn*>(buf_));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](EventCallback* self) { (*self->inline_target<Fn>())(); },
      /*move=*/
      [](EventCallback* dst, EventCallback* src) {
        ::new (static_cast<void*>(dst->buf_))
            Fn(std::move(*src->inline_target<Fn>()));
        src->inline_target<Fn>()->~Fn();
      },
      /*destroy=*/[](EventCallback* self) { self->inline_target<Fn>()->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      /*invoke=*/
      [](EventCallback* self) { (*static_cast<Fn*>(self->ptr_))(); },
      /*move=*/
      [](EventCallback* dst, EventCallback* src) { dst->ptr_ = src->ptr_; },
      /*destroy=*/[](EventCallback* self) { delete static_cast<Fn*>(self->ptr_); },
      /*inline_storage=*/false,
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }
  void MoveFrom(EventCallback* other) {
    ops_ = other->ops_;
    if (ops_ != nullptr) {
      ops_->move(this, other);
      other->ops_ = nullptr;
    }
  }
};

// --------------------------------------------------------------------------
// EventHandle: cancellable reference to a scheduled event. Copyable; cheap.
// For the timer wheel it is a (queue, slot, generation) triple -- stale
// handles (the slot was reused after the event fired) are detected by the
// generation check. For the legacy heap it holds the per-event liveness
// flag. Handles must not outlive the EventQueue they came from (every
// handle in the tree is owned by an object whose lifetime is nested
// inside its Simulator's).
// --------------------------------------------------------------------------
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Idempotent; a stale handle
  // (event already fired, slot since reused) is a no-op.
  inline void Cancel();
  inline bool pending() const;

 private:
  friend class EventQueue;
  friend class TimerWheelEventQueue;
  friend class LegacyHeapEventQueue;

  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  EventHandle(TimerWheelEventQueue* wheel, uint32_t index, uint32_t gen)
      : wheel_(wheel), index_(index), gen_(gen) {}

  std::shared_ptr<bool> alive_;          // legacy heap
  TimerWheelEventQueue* wheel_ = nullptr;  // timer wheel
  uint32_t index_ = 0;
  uint32_t gen_ = 0;
};

// Hot-path instrumentation shared by both implementations (the legacy
// heap fills only the first block of fields). Exported into snap_stats
// via EventQueue::ExportStats.
struct EventQueueStats {
  int64_t scheduled = 0;
  int64_t fired = 0;
  int64_t cancelled = 0;
  // Callbacks whose captures exceeded EventCallback's inline buffer.
  int64_t callback_heap_allocs = 0;

  // Timer wheel only.
  int64_t near_inserts = 0;      // landed in the current 16us block
  int64_t far_inserts = 0;       // landed within the next ~4.2ms
  int64_t overflow_inserts = 0;  // distant events, parked in the heap
  int64_t ready_inserts = 0;     // landed below the harvest boundary
  int64_t cascades = 0;          // far-slot -> near-wheel redistributions
  int64_t block_jumps = 0;       // near-wheel rebasing steps
  int64_t slab_high_water = 0;   // peak live slab records
};

// --------------------------------------------------------------------------
// TimerWheelEventQueue
// --------------------------------------------------------------------------
class TimerWheelEventQueue {
 public:
  // Near wheel: 256 slots of 64ns cover one 16.4us block exactly.
  static constexpr int kGranularityBits = 6;
  static constexpr int kNearBits = 8;
  static constexpr int kNearSlots = 1 << kNearBits;
  // Far wheel: 256 block-sized slots cover the next ~4.19ms.
  static constexpr int kFarBits = 8;
  static constexpr int kFarSlots = 1 << kFarBits;

  TimerWheelEventQueue() {
    near_head_.assign(kNearSlots, kNil);
    far_head_.assign(kFarSlots, kNil);
    // Records are ~100 bytes; growing the slab move-copies every live
    // callback, so start at a size that absorbs typical populations.
    slab_.reserve(4096);
  }
  TimerWheelEventQueue(const TimerWheelEventQueue&) = delete;
  TimerWheelEventQueue& operator=(const TimerWheelEventQueue&) = delete;

  // Rvalue-ref on purpose: callbacks are scheduled millions of times per
  // simulated second, and every by-value hop through the facade is a
  // type-erased move; this way the only move is into the slab record.
  EventHandle ScheduleAt(SimTime when, EventCallback&& cb) {
    SNAP_CHECK_GE(when, 0);
    uint32_t idx = AllocRecord();
    Record& r = slab_[idx];
    r.when = when;
    r.seq = next_seq_++;
    r.cb = std::move(cb);
    ++live_;
    ++stats_.scheduled;
    if (!r.cb.is_inline() && r.cb) {
      ++stats_.callback_heap_allocs;
    }
    stats_.slab_high_water =
        std::max(stats_.slab_high_water, static_cast<int64_t>(live_));
    File(idx, when);
    return EventHandle(this, idx, r.gen);
  }

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  // Time of the earliest live event; kSimTimeNever when empty. Lazily
  // reaps cancelled records and advances the wheels, hence non-const.
  SimTime NextEventTime() {
    if (!EnsureReady()) {
      return kSimTimeNever;
    }
    return slab_[ready_[ready_pos_]].when;
  }

  // Pops the earliest live event WITHOUT running it. Returns false when
  // empty. The caller advances its clock before invoking the callback so
  // that work scheduled from inside the callback sees the correct time.
  bool PopNext(SimTime* when, EventCallback* cb) {
    if (!EnsureReady()) {
      return false;
    }
    uint32_t idx = ready_[ready_pos_++];
    Record& r = slab_[idx];
    *when = r.when;
    *cb = std::move(r.cb);
    --live_;
    ++stats_.fired;
    FreeRecord(idx);
    if (ready_pos_ == ready_.size()) {
      ready_.clear();
      ready_pos_ = 0;
    }
    return true;
  }

  void Cancel(uint32_t index, uint32_t gen) {
    if (index >= slab_.size()) {
      return;
    }
    Record& r = slab_[index];
    if (r.gen != gen || !r.scheduled || r.cancelled) {
      return;
    }
    r.cancelled = true;
    --live_;
    ++stats_.cancelled;
  }

  bool Pending(uint32_t index, uint32_t gen) const {
    if (index >= slab_.size()) {
      return false;
    }
    const Record& r = slab_[index];
    return r.gen == gen && r.scheduled && !r.cancelled;
  }

  const EventQueueStats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Record {
    SimTime when = 0;
    uint64_t seq = 0;
    uint32_t next = kNil;  // slot-chain / freelist link
    uint32_t gen = 0;
    bool scheduled = false;
    bool cancelled = false;
    EventCallback cb;
  };

  struct OverflowEntry {
    SimTime when;
    uint64_t seq;
    uint32_t index;
  };
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  uint32_t AllocRecord() {
    if (free_head_ != kNil) {
      uint32_t idx = free_head_;
      free_head_ = slab_[idx].next;
      slab_[idx].next = kNil;
      slab_[idx].scheduled = true;
      slab_[idx].cancelled = false;
      return idx;
    }
    SNAP_CHECK_LT(slab_.size(), static_cast<size_t>(kNil));
    slab_.emplace_back();
    slab_.back().scheduled = true;
    return static_cast<uint32_t>(slab_.size() - 1);
  }

  // Retires a record: invalidates outstanding handles and releases the
  // callback's resources. The caller has already removed it from every
  // slot chain / the ready buffer.
  void FreeRecord(uint32_t idx) {
    Record& r = slab_[idx];
    ++r.gen;
    r.scheduled = false;
    r.cancelled = false;
    r.cb = EventCallback();
    r.next = free_head_;
    free_head_ = idx;
  }

  bool KeyLess(uint32_t a, uint32_t b) const {
    const Record& ra = slab_[a];
    const Record& rb = slab_[b];
    if (ra.when != rb.when) {
      return ra.when < rb.when;
    }
    return ra.seq < rb.seq;
  }

  // Files a record into the ready buffer, a wheel, or the overflow heap
  // according to its deadline. Shared by ScheduleAt and cascading.
  void File(uint32_t idx, SimTime when) {
    if (when < harvest_time_) {
      InsertReady(idx);
      ++stats_.ready_inserts;
      return;
    }
    int64_t slot = when >> kGranularityBits;
    int64_t block = slot >> kNearBits;
    if (block == cur_block_) {
      int s = static_cast<int>(slot & (kNearSlots - 1));
      slab_[idx].next = near_head_[s];
      near_head_[s] = idx;
      near_bits_[s >> 6] |= 1ull << (s & 63);
      ++stats_.near_inserts;
    } else if (block - cur_block_ <= kFarSlots) {
      int f = static_cast<int>(block & (kFarSlots - 1));
      slab_[idx].next = far_head_[f];
      far_head_[f] = idx;
      far_bits_[f >> 6] |= 1ull << (f & 63);
      ++stats_.far_inserts;
    } else {
      overflow_.push_back(OverflowEntry{when, slab_[idx].seq, idx});
      std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      ++stats_.overflow_inserts;
    }
  }

  void InsertReady(uint32_t idx) {
    auto it = std::lower_bound(
        ready_.begin() + static_cast<ptrdiff_t>(ready_pos_), ready_.end(),
        idx, [this](uint32_t a, uint32_t b) { return KeyLess(a, b); });
    ready_.insert(it, idx);
  }

  // Makes ready_[ready_pos_] the earliest live event. Returns false when
  // no live events remain. Reaps cancelled records it passes over.
  bool EnsureReady() {
    while (true) {
      while (ready_pos_ < ready_.size()) {
        uint32_t idx = ready_[ready_pos_];
        if (!slab_[idx].cancelled) {
          return true;
        }
        FreeRecord(idx);
        ++ready_pos_;
      }
      ready_.clear();
      ready_pos_ = 0;
      if (live_ == 0) {
        return false;
      }
      AdvanceAndHarvest();
    }
  }

  // Cold path, in event_queue.cc: advances to the next populated near
  // slot (rebasing across blocks / cascading the far wheel / pulling the
  // overflow heap as needed) and moves that slot's records into ready_.
  void AdvanceAndHarvest();
  void AdvanceBlock();
  int FindNearBit(int from) const;
  int FarScanDistance() const;

  std::vector<Record> slab_;
  uint32_t free_head_ = kNil;

  std::vector<uint32_t> near_head_;
  std::vector<uint32_t> far_head_;
  uint64_t near_bits_[kNearSlots / 64] = {};
  uint64_t far_bits_[kFarSlots / 64] = {};

  std::vector<OverflowEntry> overflow_;  // min-heap by (when, seq)

  // Sorted (by (when, seq)) indices of every pending record with
  // when < harvest_time_; consumed from ready_pos_.
  std::vector<uint32_t> ready_;
  size_t ready_pos_ = 0;

  int64_t cur_block_ = 0;     // absolute block number (slot >> kNearBits)
  int next_slot_ = 0;         // next unharvested slot within cur_block_
  SimTime harvest_time_ = 0;  // start time of the next unharvested slot

  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  EventQueueStats stats_;
};

// --------------------------------------------------------------------------
// LegacyHeapEventQueue (pre-timer-wheel baseline; see file comment)
// --------------------------------------------------------------------------
class LegacyHeapEventQueue {
 public:
  EventHandle ScheduleAt(SimTime when, EventCallback&& cb) {
    auto alive = std::make_shared<bool>(true);
    ++stats_.scheduled;
    if (!cb.is_inline() && cb) {
      ++stats_.callback_heap_allocs;
    }
    heap_.push_back(Event{when, next_seq_++, alive, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return EventHandle(std::move(alive));
  }

  bool empty() const {
    // Matches the wheel's "live events" semantics: a queue holding only
    // cancelled events is empty (they are reaped on the next query).
    const_cast<LegacyHeapEventQueue*>(this)->PruneDead();
    return heap_.empty();
  }
  size_t size() const { return heap_.size(); }

  SimTime NextEventTime() {
    PruneDead();
    return heap_.empty() ? kSimTimeNever : heap_.front().when;
  }

  bool PopNext(SimTime* when, EventCallback* cb) {
    PruneDead();
    if (heap_.empty()) {
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    // Fired events are no longer pending (matches the wheel's generation
    // semantics; the original heap left the flag true after fire, so a
    // handle could not distinguish "fired" from "armed").
    *ev.alive = false;
    *when = ev.when;
    *cb = std::move(ev.cb);
    ++stats_.fired;
    return true;
  }

  const EventQueueStats& stats() const { return stats_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::shared_ptr<bool> alive;
    EventCallback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void PruneDead() {
    while (!heap_.empty() && !*heap_.front().alive) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      ++stats_.cancelled;
    }
  }

  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
  EventQueueStats stats_;
};

// --------------------------------------------------------------------------
// EventQueue facade: one of the two implementations, picked at
// construction. Hot calls are a single predictable branch; no virtual
// dispatch, no allocation.
// --------------------------------------------------------------------------
class EventQueue {
 public:
  using Callback = EventCallback;

  explicit EventQueue(EventQueueKind kind = kDefaultEventQueueKind)
      : kind_(kind) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to run at absolute time `when`. Events at the same time
  // fire in scheduling order. Takes the callback by rvalue reference so
  // the facade hop costs nothing (see TimerWheelEventQueue::ScheduleAt).
  EventHandle ScheduleAt(SimTime when, Callback&& cb) {
    return wheel() ? wheel_.ScheduleAt(when, std::move(cb))
                   : heap_.ScheduleAt(when, std::move(cb));
  }

  bool empty() const { return wheel() ? wheel_.empty() : heap_.empty(); }
  size_t size() const { return wheel() ? wheel_.size() : heap_.size(); }

  // Time of the earliest live event; kSimTimeNever when empty.
  SimTime NextEventTime() {
    return wheel() ? wheel_.NextEventTime() : heap_.NextEventTime();
  }

  // Pops the earliest live event WITHOUT running it. Returns false when
  // empty.
  bool PopNext(SimTime* when, Callback* cb) {
    return wheel() ? wheel_.PopNext(when, cb) : heap_.PopNext(when, cb);
  }

  EventQueueKind kind() const { return kind_; }
  const EventQueueStats& stats() const {
    return wheel() ? wheel_.stats() : heap_.stats();
  }

  // Publishes the queue's counters as "<prefix>/scheduled" etc. into the
  // Telemetry registry (src/stats/telemetry.h). In event_queue.cc.
  void ExportStats(Telemetry* telemetry, const std::string& prefix) const;

 private:
  bool wheel() const { return kind_ == EventQueueKind::kTimerWheel; }

  EventQueueKind kind_;
  TimerWheelEventQueue wheel_;
  LegacyHeapEventQueue heap_;
};

inline void EventHandle::Cancel() {
  if (alive_ != nullptr) {
    *alive_ = false;
  } else if (wheel_ != nullptr) {
    wheel_->Cancel(index_, gen_);
  }
}

inline bool EventHandle::pending() const {
  if (alive_ != nullptr) {
    return *alive_;
  }
  return wheel_ != nullptr && wheel_->Pending(index_, gen_);
}

}  // namespace snap

#endif  // SRC_SIM_EVENT_QUEUE_H_
