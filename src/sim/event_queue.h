// Discrete-event queue: a time-ordered heap of callbacks with stable
// FIFO ordering for equal timestamps and O(1) cancellation via handles.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/util/time_types.h"

namespace snap {

// Cancellable reference to a scheduled event. Copyable; cheap.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Idempotent.
  void Cancel() {
    if (alive_) {
      *alive_ = false;
    }
  }

  bool pending() const { return alive_ && *alive_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}

  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` to run at absolute time `when`. Events at the same time
  // fire in scheduling order.
  EventHandle ScheduleAt(SimTime when, Callback cb) {
    auto alive = std::make_shared<bool>(true);
    heap_.push(Event{when, next_seq_++, alive, std::move(cb)});
    return EventHandle(std::move(alive));
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; kSimTimeNever when empty.
  SimTime NextEventTime() const {
    return heap_.empty() ? kSimTimeNever : heap_.top().when;
  }

  // Pops the earliest live event WITHOUT running it. Returns false when
  // empty. The caller advances its clock before invoking the callback so
  // that work scheduled from inside the callback sees the correct time.
  bool PopNext(SimTime* when, Callback* cb) {
    while (!heap_.empty()) {
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      if (!*ev.alive) {
        continue;
      }
      *when = ev.when;
      *cb = std::move(ev.cb);
      return true;
    }
    return false;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::shared_ptr<bool> alive;
    Callback cb;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace snap

#endif  // SRC_SIM_EVENT_QUEUE_H_
