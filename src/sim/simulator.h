// The global discrete-event simulator: a clock plus an event queue.
// Every run with the same seed is bit-identical; there is no wall-clock
// dependence anywhere in the simulation.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>

#include "src/sim/event_queue.h"
#include "src/stats/telemetry.h"
#include "src/stats/trace.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/time_types.h"

namespace snap {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1,
                     EventQueueKind queue_kind = kDefaultEventQueueKind)
      : events_(queue_kind), rng_(seed), seed_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }
  // The seed this simulation was constructed with. Components that need
  // per-object deterministic randomness independent of global draw order
  // (e.g. the fabric's hashed packet drop) key their hashes off this.
  uint64_t seed() const { return seed_; }

  // Schedules `cb` to run `delay` from now (delay >= 0).
  EventHandle Schedule(SimDuration delay, EventQueue::Callback cb) {
    SNAP_CHECK_GE(delay, 0);
    return events_.ScheduleAt(now_ + delay, std::move(cb));
  }

  EventHandle ScheduleAt(SimTime when, EventQueue::Callback cb) {
    SNAP_CHECK_GE(when, now_);
    return events_.ScheduleAt(when, std::move(cb));
  }

  // Runs events until the queue is empty or the clock passes `until`.
  // The clock ends at min(until, last event time). Events exactly at
  // `until` do run. The clock advances before each callback runs, so
  // callbacks always observe now() == their scheduled time.
  void RunUntil(SimTime until) {
    SimTime when = 0;
    EventQueue::Callback cb;
    while (!events_.empty() && events_.NextEventTime() <= until) {
      if (!events_.PopNext(&when, &cb)) {
        break;
      }
      SNAP_CHECK_GE(when, now_);
      now_ = when;
      cb();
    }
    if (now_ < until) {
      now_ = until;
    }
  }

  // Runs `duration` more simulated time.
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Runs all pending events (caller must guarantee termination).
  void RunAll() {
    SimTime when = 0;
    EventQueue::Callback cb;
    while (events_.PopNext(&when, &cb)) {
      SNAP_CHECK_GE(when, now_);
      now_ = when;
      cb();
    }
  }

  size_t pending_events() const { return events_.size(); }

  // Earliest pending event time (kSimTimeNever when idle). Non-const
  // because the timer-wheel backend may cascade buckets to answer.
  SimTime NextEventTime() { return events_.NextEventTime(); }

  // The backing event queue (stats, implementation kind).
  const EventQueue& event_queue() const { return events_; }

  // Unified metric registry shared by every component of this simulation.
  Telemetry& telemetry() { return telemetry_; }
  const Telemetry& telemetry() const { return telemetry_; }

  // Flight recorder; nullptr (the default) disables tracing. Recording is
  // pure observation: attaching a recorder never changes simulation
  // results. The recorder must outlive its attachment.
  TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }

  // Hands out contiguous trace-track (tid) ranges so cores of different
  // hosts land on distinct tracks in multi-host simulations. Allocation
  // order is construction order, hence deterministic.
  int AllocateTraceTracks(int count) {
    int base = next_trace_track_;
    next_trace_track_ += count;
    return base;
  }

 private:
  SimTime now_ = 0;
  EventQueue events_;
  Rng rng_;
  uint64_t seed_ = 1;
  Telemetry telemetry_;
  TraceRecorder* tracer_ = nullptr;
  int next_trace_track_ = 0;
};

}  // namespace snap

#endif  // SRC_SIM_SIMULATOR_H_
