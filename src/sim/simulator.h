// The global discrete-event simulator: a clock plus an event queue.
// Every run with the same seed is bit-identical; there is no wall-clock
// dependence anywhere in the simulation. This is the deterministic
// implementation of the Substrate interface (src/sim/substrate.h); the
// live substrate (src/live/) runs the same engines on real threads.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>
#include <utility>

#include "src/sim/event_queue.h"
#include "src/sim/substrate.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/time_types.h"

namespace snap {

// `final` so calls through a concrete Simulator* devirtualize: the sim hot
// path pays nothing for the substrate split.
class Simulator final : public Substrate {
 public:
  explicit Simulator(uint64_t seed = 1,
                     EventQueueKind queue_kind = kDefaultEventQueueKind)
      : Substrate(seed), events_(queue_kind), rng_(seed) {}

  Rng& rng() { return rng_; }

  EventHandle ScheduleAt(SimTime when, EventQueue::Callback cb) override {
    SNAP_CHECK_GE(when, now());
    return events_.ScheduleAt(when, std::move(cb));
  }

  // Runs events until the queue is empty or the clock passes `until`.
  // The clock ends at min(until, last event time). Events exactly at
  // `until` do run. The clock advances before each callback runs, so
  // callbacks always observe now() == their scheduled time.
  void RunUntil(SimTime until) {
    SimTime when = 0;
    EventQueue::Callback cb;
    while (!events_.empty() && events_.NextEventTime() <= until) {
      if (!events_.PopNext(&when, &cb)) {
        break;
      }
      SNAP_CHECK_GE(when, now());
      set_now(when);
      cb();
    }
    if (now() < until) {
      set_now(until);
    }
  }

  // Runs `duration` more simulated time.
  void RunFor(SimDuration duration) { RunUntil(now() + duration); }

  // Runs all pending events (caller must guarantee termination).
  void RunAll() {
    SimTime when = 0;
    EventQueue::Callback cb;
    while (events_.PopNext(&when, &cb)) {
      SNAP_CHECK_GE(when, now());
      set_now(when);
      cb();
    }
  }

  size_t pending_events() const { return events_.size(); }

  // Earliest pending event time (kSimTimeNever when idle). Non-const
  // because the timer-wheel backend may cascade buckets to answer.
  SimTime NextEventTime() { return events_.NextEventTime(); }

  // The backing event queue (stats, implementation kind).
  const EventQueue& event_queue() const { return events_; }

 private:
  EventQueue events_;
  Rng rng_;
};

}  // namespace snap

#endif  // SRC_SIM_SIMULATOR_H_
