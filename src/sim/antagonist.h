// Antagonist workloads from the paper's evaluation:
//
//  - CpuHogTask models the Figure 6(d) antagonists: reduced-priority
//    processes that "continually wake threads to perform MD5 computations",
//    placing pressure on the scheduler with frequent wakeups and bursts of
//    compute.
//  - KernelSectionTask models the Figure 7(b) antagonist: threads that
//    repeatedly mmap()/munmap() large buffers, spending long stretches in
//    kernel code that cannot be preempted by any userspace process (not even
//    a MicroQuanta thread).
#ifndef SRC_SIM_ANTAGONIST_H_
#define SRC_SIM_ANTAGONIST_H_

#include <string>

#include "src/sim/cpu.h"
#include "src/util/rng.h"

namespace snap {

class CpuHogTask : public SimTask {
 public:
  struct Options {
    // Compute burst per wakeup (one MD5-ish work item).
    SimDuration burst_mean = 40 * kUsec;
    // Sleep between wakeups (exponential); small => constant wakeup churn.
    SimDuration sleep_mean = 20 * kUsec;
    // CFS weight; antagonists run at reduced priority (weight < 1).
    double weight = 0.5;
  };

  CpuHogTask(std::string name, CpuScheduler* sched, Rng* rng,
             const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  // Begins the wake/compute/sleep cycle.
  void Start();

 private:
  CpuScheduler* sched_;
  Rng* rng_;
  Options options_;
  SimDuration work_remaining_ = 0;
};

class KernelSectionTask : public SimTask {
 public:
  struct Options {
    // User-mode work between kernel sections.
    SimDuration user_work = 3 * kUsec;
    // Non-preemptible kernel section length (uniform range); mmap/munmap of
    // a 50MB buffer with page-table teardown lands in this range.
    SimDuration np_min = 50 * kUsec;
    SimDuration np_max = 900 * kUsec;
    // Pause between iterations.
    SimDuration sleep_mean = 30 * kUsec;
    double weight = 1.0;
  };

  KernelSectionTask(std::string name, CpuScheduler* sched, Rng* rng,
                    const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  void Start();

 private:
  enum class Phase { kUser, kKernel };

  CpuScheduler* sched_;
  Rng* rng_;
  Options options_;
  Phase phase_ = Phase::kUser;
  SimDuration user_remaining_ = 0;
};

}  // namespace snap

#endif  // SRC_SIM_ANTAGONIST_H_
