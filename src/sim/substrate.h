// The execution-substrate interface: the minimal contract engines, NICs
// and QoS elements need from whatever is running them — a clock, deferred
// work (timers), telemetry, and an optional flight recorder.
//
// Two implementations exist:
//  - Simulator (src/sim/simulator.h): discrete-event time; the clock
//    advances event by event and every run is bit-identical per seed.
//  - LiveExecutor (src/live/live_executor.h): one pinned OS thread per
//    engine; the clock is CLOCK_MONOTONIC nanoseconds since runtime start
//    and timers fire from the engine thread's poll loop.
//
// The split keeps the dataplane substrate-agnostic ("one codebase,
// simulated and real", ROADMAP item 2): PonyEngine, RxQueue/Nic, the
// engine-group schedulers and the shaping/virtual-switch elements hold a
// Substrate* and cannot tell which world they run in.
//
// Hot-path contract: now() is a relaxed atomic load (a plain load on
// x86) so application threads may read the clock concurrently with the
// engine thread advancing it; only ScheduleAt is virtual, and Simulator
// is `final` so sim-side calls through a concrete Simulator* devirtualize.
// Timer callbacks always run on the substrate's execution thread.
#ifndef SRC_SIM_SUBSTRATE_H_
#define SRC_SIM_SUBSTRATE_H_

#include <atomic>
#include <cstdint>
#include <utility>

#include "src/sim/event_queue.h"
#include "src/stats/telemetry.h"
#include "src/stats/trace.h"
#include "src/util/logging.h"
#include "src/util/time_types.h"

namespace snap {

class Substrate {
 public:
  virtual ~Substrate() = default;

  Substrate(const Substrate&) = delete;
  Substrate& operator=(const Substrate&) = delete;

  // Current time in nanoseconds: simulated time since simulation start, or
  // monotonic wall-clock time since runtime start. Safe to call from any
  // thread (applications poll the clock while the engine thread runs).
  SimTime now() const { return now_.load(std::memory_order_relaxed); }

  // The seed this substrate was constructed with. Components that need
  // per-object deterministic randomness independent of global draw order
  // (e.g. the fabric's hashed packet drop) key their hashes off this.
  uint64_t seed() const { return seed_; }

  // Schedules `cb` to run at absolute time `when` on the substrate's
  // execution thread. Callers must be on that thread (or, before the
  // substrate starts running, the setup thread). Implementations may clamp
  // `when` to the current time but never run the callback synchronously.
  virtual EventHandle ScheduleAt(SimTime when, EventQueue::Callback cb) = 0;

  // Schedules `cb` to run `delay` from now (delay >= 0).
  EventHandle Schedule(SimDuration delay, EventQueue::Callback cb) {
    SNAP_CHECK_GE(delay, 0);
    return ScheduleAt(now() + delay, std::move(cb));
  }

  // Unified metric registry shared by every component on this substrate.
  Telemetry& telemetry() { return telemetry_; }
  const Telemetry& telemetry() const { return telemetry_; }

  // Flight recorder; nullptr (the default) disables tracing. Recording is
  // pure observation: attaching a recorder never changes results. The
  // recorder must outlive its attachment. Live substrates record
  // wall-clock (monotonic, runtime-epoch) timestamps.
  TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(TraceRecorder* tracer) { tracer_ = tracer; }

  // Hands out contiguous trace-track (tid) ranges so cores of different
  // hosts land on distinct tracks in multi-host runs. Allocation order is
  // construction order, hence deterministic.
  int AllocateTraceTracks(int count) {
    int base = next_trace_track_;
    next_trace_track_ += count;
    return base;
  }

 protected:
  explicit Substrate(uint64_t seed) : seed_(seed) {}

  // Advances the clock. Only the substrate's execution thread stores.
  void set_now(SimTime t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<SimTime> now_{0};
  uint64_t seed_;
  Telemetry telemetry_;
  TraceRecorder* tracer_ = nullptr;
  int next_trace_track_ = 0;
};

}  // namespace snap

#endif  // SRC_SIM_SUBSTRATE_H_
