#include "src/sim/antagonist.h"

#include <algorithm>

namespace snap {

CpuHogTask::CpuHogTask(std::string name, CpuScheduler* sched, Rng* rng,
                       const Options& options)
    : SimTask(std::move(name), SchedClass::kCfs, options.weight),
      sched_(sched),
      rng_(rng),
      options_(options) {
  set_container("antagonist");
}

void CpuHogTask::Start() {
  sched_->AddTask(this);
  sched_->Wake(this, /*remote=*/false);
}

StepResult CpuHogTask::Step(SimTime now, SimDuration budget_ns) {
  if (work_remaining_ == 0) {
    // Woken: draw the next compute burst.
    work_remaining_ = std::max<SimDuration>(
        1 * kUsec,
        static_cast<SimDuration>(rng_->NextExponential(
            static_cast<double>(options_.burst_mean))));
  }
  SimDuration used = std::min(work_remaining_, budget_ns);
  work_remaining_ -= used;
  StepResult result;
  result.cpu_ns = used;
  if (work_remaining_ > 0) {
    result.next = StepResult::Next::kYield;
    return result;
  }
  // Burst done: sleep, then wake again.
  SimDuration sleep = std::max<SimDuration>(
      1 * kUsec, static_cast<SimDuration>(rng_->NextExponential(
                     static_cast<double>(options_.sleep_mean))));
  sched_->WakeAt(this, now + used + sleep, /*remote=*/false);
  result.next = StepResult::Next::kBlock;
  return result;
}

KernelSectionTask::KernelSectionTask(std::string name, CpuScheduler* sched,
                                     Rng* rng, const Options& options)
    : SimTask(std::move(name), SchedClass::kCfs, options.weight),
      sched_(sched),
      rng_(rng),
      options_(options) {
  set_container("antagonist");
}

void KernelSectionTask::Start() {
  sched_->AddTask(this);
  sched_->Wake(this, /*remote=*/false);
}

StepResult KernelSectionTask::Step(SimTime now, SimDuration budget_ns) {
  StepResult result;
  if (phase_ == Phase::kUser) {
    if (user_remaining_ == 0) {
      user_remaining_ = options_.user_work;
    }
    SimDuration used = std::min(user_remaining_, budget_ns);
    user_remaining_ -= used;
    result.cpu_ns = used;
    if (user_remaining_ == 0) {
      phase_ = Phase::kKernel;
    }
    result.next = StepResult::Next::kYield;
    return result;
  }
  // Kernel phase: one long, non-preemptible section (mmap/munmap teardown).
  SimDuration np = rng_->NextInt(options_.np_min, options_.np_max);
  result.cpu_ns = np;
  result.non_preemptible = true;
  phase_ = Phase::kUser;
  SimDuration sleep = std::max<SimDuration>(
      1 * kUsec, static_cast<SimDuration>(rng_->NextExponential(
                     static_cast<double>(options_.sleep_mean))));
  sched_->WakeAt(this, now + np + sleep, /*remote=*/false);
  result.next = StepResult::Next::kBlock;
  return result;
}

}  // namespace snap
