#include "src/sim/placement.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"

namespace snap {

TrafficMatrix::TrafficMatrix(int num_hosts) : n_(num_hosts) {
  SNAP_CHECK_GE(num_hosts, 0);
  w_.assign(static_cast<size_t>(n_) * n_, 0);
}

void TrafficMatrix::Add(int a, int b, int64_t weight) {
  SNAP_CHECK_GE(a, 0);
  SNAP_CHECK_LT(a, n_);
  SNAP_CHECK_GE(b, 0);
  SNAP_CHECK_LT(b, n_);
  SNAP_CHECK_GE(weight, 0);
  if (a == b) {
    return;
  }
  w_[a * n_ + b] += weight;
  w_[b * n_ + a] += weight;
}

int64_t TrafficMatrix::total_weight(int host) const {
  const int64_t* row = &w_[static_cast<size_t>(host) * n_];
  return std::accumulate(row, row + n_, int64_t{0});
}

Placement Placement::RoundRobin(int num_hosts, int num_shards) {
  SNAP_CHECK_GE(num_shards, 1);
  Placement p;
  p.num_shards = num_shards;
  p.shard_of_host.resize(num_hosts);
  for (int h = 0; h < num_hosts; ++h) {
    p.shard_of_host[h] = h % num_shards;
  }
  return p;
}

Placement Placement::Contiguous(int num_hosts, int num_shards) {
  SNAP_CHECK_GE(num_shards, 1);
  Placement p;
  p.num_shards = num_shards;
  p.shard_of_host.resize(num_hosts);
  int block = (num_hosts + num_shards - 1) / num_shards;
  block = std::max(block, 1);
  for (int h = 0; h < num_hosts; ++h) {
    p.shard_of_host[h] = std::min(h / block, num_shards - 1);
  }
  return p;
}

Placement Placement::TrafficAware(const TrafficMatrix& traffic, int num_shards,
                                  double balance_slack) {
  SNAP_CHECK_GE(num_shards, 1);
  SNAP_CHECK_GE(balance_slack, 1.0);
  const int n = traffic.num_hosts();
  Placement p;
  p.num_shards = num_shards;
  p.shard_of_host.assign(n, -1);

  // Balance bound: never let a shard exceed ceil(n / k * slack) hosts (and
  // never below ceil(n / k), or a perfectly even split would be illegal).
  const int even = (n + num_shards - 1) / std::max(num_shards, 1);
  const int cap = std::max(
      even, static_cast<int>(static_cast<double>(n) / num_shards *
                                 balance_slack +
                             0.999999));

  // Heaviest talkers first: they anchor the partitions their peers then
  // join. Ties break on host id for determinism.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return traffic.total_weight(a) > traffic.total_weight(b);
  });

  std::vector<int> shard_size(num_shards, 0);
  // affinity[s] = traffic between the candidate host and hosts already on s.
  std::vector<int64_t> affinity(num_shards);
  for (int h : order) {
    std::fill(affinity.begin(), affinity.end(), 0);
    for (int other = 0; other < n; ++other) {
      if (p.shard_of_host[other] >= 0) {
        affinity[p.shard_of_host[other]] += traffic.weight(h, other);
      }
    }
    int best = -1;
    for (int s = 0; s < num_shards; ++s) {
      if (shard_size[s] >= cap) {
        continue;
      }
      if (best < 0 || affinity[s] > affinity[best] ||
          (affinity[s] == affinity[best] &&
           shard_size[s] < shard_size[best])) {
        best = s;
      }
    }
    SNAP_CHECK_GE(best, 0);  // cap * num_shards >= n, so a slot always exists
    p.shard_of_host[h] = best;
    ++shard_size[best];
  }

  // Refinement: the greedy pass can strand the tail of a cluster on the
  // wrong shard — a host joins the open shard its few cross edges point at
  // before its own cluster has anchored elsewhere, and once that shard
  // fills, later cluster members cascade onto the next one. Sweep hosts in
  // id order and move any host whose affinity to another non-full shard
  // strictly beats its affinity to its current shard. Each move strictly
  // increases total intra-shard weight, so the loop terminates; fixed sweep
  // order and tie-breaks keep the result deterministic.
  for (bool improved = true; improved;) {
    improved = false;
    for (int h = 0; h < n; ++h) {
      std::fill(affinity.begin(), affinity.end(), 0);
      for (int other = 0; other < n; ++other) {
        affinity[p.shard_of_host[other]] += traffic.weight(h, other);
      }
      const int cur = p.shard_of_host[h];
      int best = cur;
      for (int s = 0; s < num_shards; ++s) {
        if (s == cur || shard_size[s] >= cap) {
          continue;
        }
        if (affinity[s] > affinity[best]) {
          best = s;
        }
      }
      if (best != cur) {
        p.shard_of_host[h] = best;
        --shard_size[cur];
        ++shard_size[best];
        improved = true;
      }
    }
  }
  return p;
}

int64_t Placement::CrossShardWeight(const TrafficMatrix& traffic) const {
  const int n = std::min(num_hosts(), traffic.num_hosts());
  int64_t cross = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (shard_of_host[a] != shard_of_host[b]) {
        cross += traffic.weight(a, b);
      }
    }
  }
  return cross;
}

int Placement::max_shard_size() const {
  std::vector<int> size(num_shards, 0);
  int max_size = 0;
  for (int s : shard_of_host) {
    max_size = std::max(max_size, ++size[s]);
  }
  return max_size;
}

}  // namespace snap
