#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/stats/telemetry.h"

namespace snap {

const char* EventQueueKindName(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kTimerWheel:
      return "timer_wheel";
    case EventQueueKind::kLegacyHeap:
      return "legacy_heap";
  }
  return "unknown";
}

int TimerWheelEventQueue::FindNearBit(int from) const {
  if (from >= kNearSlots) {
    return -1;
  }
  int w = from >> 6;
  uint64_t word = near_bits_[w] & (~0ull << (from & 63));
  while (true) {
    if (word != 0) {
      return (w << 6) + __builtin_ctzll(word);
    }
    if (++w >= kNearSlots / 64) {
      return -1;
    }
    word = near_bits_[w];
  }
}

// Distance in blocks (1..kFarSlots) from cur_block_ to the first populated
// far cell, or 0 if the far wheel is empty. Within the valid window every
// populated cell maps to exactly one block (blocks in (cur_block_,
// cur_block_ + kFarSlots] hit distinct cells), so cell order == block order.
int TimerWheelEventQueue::FarScanDistance() const {
  const int start = static_cast<int>((cur_block_ + 1) & (kFarSlots - 1));
  for (int d = 0; d < kFarSlots; ++d) {
    const int cell = (start + d) & (kFarSlots - 1);
    if (far_bits_[cell >> 6] & (1ull << (cell & 63))) {
      return d + 1;
    }
  }
  return 0;
}

// Rebase the near wheel onto the next block holding work: jump cur_block_
// to the earlier of (first populated far cell, overflow heap top), cascade
// that far cell into the near wheel, and pull any overflow records whose
// block has come into range.
void TimerWheelEventQueue::AdvanceBlock() {
  ++stats_.block_jumps;

  const int far_dist = FarScanDistance();
  int64_t target = far_dist > 0 ? cur_block_ + far_dist : INT64_MAX;
  if (!overflow_.empty()) {
    const int64_t overflow_block =
        overflow_.front().when >> (kGranularityBits + kNearBits);
    target = std::min(target, std::max(overflow_block, cur_block_ + 1));
  }
  // Callers guarantee at least one live record remains, and the near wheel
  // and ready buffer are exhausted -- it must be in the far wheel or the
  // overflow heap.
  SNAP_CHECK_NE(target, INT64_MAX);

  cur_block_ = target;
  next_slot_ = 0;
  harvest_time_ = (cur_block_ << kNearBits) << kGranularityBits;

  // Cascade this block's far cell into the near wheel.
  const int cell = static_cast<int>(cur_block_ & (kFarSlots - 1));
  uint32_t idx = far_head_[cell];
  if (idx != kNil) {
    ++stats_.cascades;
    far_head_[cell] = kNil;
    far_bits_[cell >> 6] &= ~(1ull << (cell & 63));
    while (idx != kNil) {
      const uint32_t next = slab_[idx].next;
      slab_[idx].next = kNil;
      if (slab_[idx].cancelled) {
        FreeRecord(idx);
      } else {
        File(idx, slab_[idx].when);
      }
      idx = next;
    }
  }

  // Pull overflow records whose block is now current.
  while (!overflow_.empty() &&
         (overflow_.front().when >> (kGranularityBits + kNearBits)) <=
             cur_block_) {
    std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    const OverflowEntry e = overflow_.back();
    overflow_.pop_back();
    if (slab_[e.index].cancelled) {
      FreeRecord(e.index);
    } else {
      File(e.index, e.when);
    }
  }
}

// Advance to the next populated near slot (rebasing blocks as needed) and
// move its live records, sorted by (when, seq), into the ready buffer.
// Preconditions: ready_ is empty and at least one live record exists.
void TimerWheelEventQueue::AdvanceAndHarvest() {
  while (true) {
    const int s = FindNearBit(next_slot_);
    if (s < 0) {
      AdvanceBlock();
      continue;
    }
    next_slot_ = s + 1;
    harvest_time_ =
        ((cur_block_ << kNearBits) + next_slot_) << kGranularityBits;

    uint32_t idx = near_head_[s];
    near_head_[s] = kNil;
    near_bits_[s >> 6] &= ~(1ull << (s & 63));
    while (idx != kNil) {
      const uint32_t next = slab_[idx].next;
      slab_[idx].next = kNil;
      if (slab_[idx].cancelled) {
        FreeRecord(idx);
      } else {
        ready_.push_back(idx);
      }
      idx = next;
    }
    if (!ready_.empty()) {
      std::sort(ready_.begin(), ready_.end(),
                [this](uint32_t a, uint32_t b) { return KeyLess(a, b); });
      return;
    }
  }
}

void EventQueue::ExportStats(Telemetry* telemetry,
                             const std::string& prefix) const {
  const EventQueueStats& s = stats();
  auto set = [&](const char* name, int64_t v) {
    telemetry->SetCounter(prefix + "/" + name, v);
  };
  set("scheduled", s.scheduled);
  set("fired", s.fired);
  set("cancelled", s.cancelled);
  set("callback_heap_allocs", s.callback_heap_allocs);
  set("near_inserts", s.near_inserts);
  set("far_inserts", s.far_inserts);
  set("overflow_inserts", s.overflow_inserts);
  set("ready_inserts", s.ready_inserts);
  set("cascades", s.cascades);
  set("block_jumps", s.block_jumps);
  set("slab_high_water", s.slab_high_water);
}

}  // namespace snap
