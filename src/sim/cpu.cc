#include "src/sim/cpu.h"

#include <algorithm>

namespace snap {

CpuScheduler::CpuScheduler(Simulator* sim, const CpuParams& params)
    : sim_(sim),
      params_(params),
      trace_track_base_(sim->AllocateTraceTracks(params.num_cores)) {
  SNAP_CHECK_GT(params.num_cores, 0);
  cores_.resize(params.num_cores);
  for (int i = 0; i < params.num_cores; ++i) {
    cores_[i].id = i;
  }
}

void CpuScheduler::AddTask(SimTask* task) {
  SNAP_CHECK(task != nullptr);
  task->sched.state = SimTask::SchedState::RunState::kBlocked;
  if (task->sched_class() == SchedClass::kMicroQuanta &&
      task->sched.mq_period == 0) {
    task->sched.mq_runtime = params_.mq_default_runtime;
    task->sched.mq_period = params_.mq_default_period;
  }
  tasks_.push_back(task);
}

void CpuScheduler::PinTask(SimTask* task, int core) {
  SNAP_CHECK_GE(core, 0);
  SNAP_CHECK_LT(core, num_cores());
  task->sched.pinned_core = core;
}

void CpuScheduler::ReserveCore(SimTask* task, int core) {
  SNAP_CHECK_GE(core, 0);
  SNAP_CHECK_LT(core, num_cores());
  SNAP_CHECK(cores_[core].reserved_for == nullptr ||
             cores_[core].reserved_for == task)
      << "core " << core << " already reserved";
  cores_[core].reserved_for = task;
  PinTask(task, core);
}

void CpuScheduler::ReleaseCore(int core) {
  SNAP_CHECK_GE(core, 0);
  SNAP_CHECK_LT(core, num_cores());
  cores_[core].reserved_for = nullptr;
}

void CpuScheduler::SetMicroQuantaBandwidth(SimTask* task, SimDuration runtime,
                                           SimDuration period) {
  SNAP_CHECK_GT(period, 0);
  SNAP_CHECK_GT(runtime, 0);
  SNAP_CHECK_LE(runtime, period);
  task->sched.mq_runtime = runtime;
  task->sched.mq_period = period;
}

SimDuration CpuScheduler::CStateExitLatency(const Core& core) const {
  if (!params_.enable_cstates) {
    return 0;
  }
  SimDuration idle = sim_->now() - core.idle_since;
  if (idle >= params_.c6_entry_after) {
    return params_.c6_exit_latency;
  }
  if (idle >= params_.c1e_entry_after) {
    return params_.c1e_exit_latency;
  }
  return params_.c1_exit_latency;
}

SimDuration CpuScheduler::MqRemainingBudget(SimTask* task) {
  auto& s = task->sched;
  SimTime now = sim_->now();
  if (now >= s.mq_period_start + s.mq_period) {
    s.mq_period_start = now;
    s.mq_used = 0;
  }
  return s.mq_runtime - s.mq_used;
}

void CpuScheduler::Wake(SimTask* task, bool remote) {
  using RunState = SimTask::SchedState::RunState;
  auto& s = task->sched;
  switch (s.state) {
    case RunState::kRunning: {
      s.wake_pending = true;
      // If the task is spin-parked, new work resumes it immediately.
      int core_id = s.last_core;
      if (core_id >= 0 && cores_[core_id].current == task &&
          cores_[core_id].spin_parked) {
        UnparkSpin(cores_[core_id], params_.spin_detect_latency);
      }
      return;
    }
    case RunState::kRunnable:
    case RunState::kThrottled:
      return;
    case RunState::kBlocked:
      break;
  }
  s.state = RunState::kRunnable;
  s.wake_time = sim_->now();
  s.latency_pending = true;
  int core_id = PlaceTask(task);
  if (TraceRecorder* tracer = sim_->tracer()) {
    tracer->Instant(sim_->now(), TraceRecorder::kSchedTrack,
                    "wake:" + task->name(), "sched",
                    TraceArgInt("core", trace_track(core_id)));
  }
  SimDuration extra = remote ? params_.ipi_cost : 0;
  EnqueueTask(cores_[core_id], task, extra);
}

EventHandle CpuScheduler::WakeAt(SimTask* task, SimTime when, bool remote) {
  return sim_->ScheduleAt(when, [this, task, remote] { Wake(task, remote); });
}

int CpuScheduler::PlaceTask(SimTask* task) {
  auto& s = task->sched;
  if (s.pinned_core >= 0) {
    return s.pinned_core;
  }
  auto usable = [&](const Core& c) {
    return c.reserved_for == nullptr || c.reserved_for == task;
  };
  auto idle = [&](const Core& c) {
    return c.current == nullptr && !c.step_in_progress && !c.waking &&
           c.mq_queue.empty() && c.cfs_queue.empty();
  };
  // Prefer the previous core for cache locality.
  if (s.last_core >= 0 && usable(cores_[s.last_core]) &&
      idle(cores_[s.last_core])) {
    return s.last_core;
  }
  // Any idle core, round-robin to spread interrupt load.
  int n = num_cores();
  for (int i = 0; i < n; ++i) {
    int id = (rr_cursor_ + i) % n;
    if (usable(cores_[id]) && idle(cores_[id])) {
      rr_cursor_ = (id + 1) % n;
      return id;
    }
  }
  // No idle core: queue on the least-loaded usable core, penalizing cores
  // stuck in non-preemptible sections and (for MicroQuanta wakers) cores
  // already running MicroQuanta work.
  SimTime now = sim_->now();
  int best = -1;
  int64_t best_score = INT64_MAX;
  for (int id = 0; id < n; ++id) {
    Core& c = cores_[id];
    if (!usable(c)) {
      continue;
    }
    int64_t score =
        static_cast<int64_t>(c.mq_queue.size() + c.cfs_queue.size()) *
        1000000;
    if (c.np_until > now) {
      score += c.np_until - now;
    }
    if (task->sched_class() == SchedClass::kMicroQuanta && c.current &&
        c.current->sched_class() != SchedClass::kCfs) {
      score += 500000;
    }
    if (score < best_score) {
      best_score = score;
      best = id;
    }
  }
  SNAP_CHECK_GE(best, 0) << "no usable core for task " << task->name();
  return best;
}

void CpuScheduler::EnqueueTask(Core& core, SimTask* task,
                               SimDuration extra_delay) {
  task->sched.queued_core = core.id;
  if (task->sched_class() == SchedClass::kCfs) {
    core.cfs_queue.push_back(task);
  } else {
    core.mq_queue.push_back(task);
  }
  if (core.spin_parked) {
    // A busy-polling task shares dispatch decisions at poll granularity.
    UnparkSpin(core, params_.spin_detect_latency);
    return;
  }
  if (core.current == nullptr && !core.step_in_progress && !core.waking) {
    core.waking = true;
    SimDuration delay = extra_delay + CStateExitLatency(core) +
                        params_.irq_overhead;
    overhead_ns_ += params_.irq_overhead;
    int core_id = core.id;
    sim_->Schedule(delay, [this, core_id] {
      cores_[core_id].waking = false;
      Dispatch(cores_[core_id]);
    });
  }
}

SimTask* CpuScheduler::PickNext(Core& core) {
  using RunState = SimTask::SchedState::RunState;
  // Reserved cores only run their reserved task.
  if (core.reserved_for != nullptr) {
    if (!core.mq_queue.empty()) {
      SimTask* t = core.mq_queue.front();
      core.mq_queue.pop_front();
      return t;
    }
    if (!core.cfs_queue.empty()) {
      SimTask* t = core.cfs_queue.front();
      core.cfs_queue.pop_front();
      return t;
    }
    return nullptr;
  }
  while (!core.mq_queue.empty()) {
    SimTask* t = core.mq_queue.front();
    core.mq_queue.pop_front();
    if (t->sched_class() == SchedClass::kMicroQuanta &&
        MqRemainingBudget(t) <= 0) {
      ThrottleMq(core, t);
      continue;
    }
    return t;
  }
  if (!core.cfs_queue.empty()) {
    // Pick the heaviest waiter (approximates vruntime order under mixed
    // nice levels without per-task vruntime bookkeeping).
    auto it = std::max_element(
        core.cfs_queue.begin(), core.cfs_queue.end(),
        [](const SimTask* a, const SimTask* b) {
          return a->weight() < b->weight();
        });
    SimTask* t = *it;
    core.cfs_queue.erase(it);
    return t;
  }
  SimTask* stolen = TrySteal(core);
  if (stolen != nullptr) {
    return stolen;
  }
  (void)RunState::kRunnable;
  return nullptr;
}

SimTask* CpuScheduler::TrySteal(Core& thief) {
  // Steal runnable, migratable work from busy cores; MicroQuanta first.
  for (int pass = 0; pass < 2; ++pass) {
    for (Core& victim : cores_) {
      if (victim.id == thief.id) {
        continue;
      }
      bool victim_busy = victim.current != nullptr || victim.step_in_progress;
      if (!victim_busy) {
        continue;
      }
      auto& queue = (pass == 0) ? victim.mq_queue : victim.cfs_queue;
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        SimTask* t = *it;
        if (t->sched.pinned_core >= 0) {
          continue;
        }
        if (thief.reserved_for != nullptr && thief.reserved_for != t) {
          continue;
        }
        queue.erase(it);
        t->sched.queued_core = thief.id;
        return t;
      }
    }
  }
  return nullptr;
}

void CpuScheduler::Dispatch(Core& core) {
  if (core.current != nullptr || core.step_in_progress) {
    return;
  }
  SimTask* next = PickNext(core);
  if (next == nullptr) {
    core.idle_since = sim_->now();
    return;
  }
  core.current = next;
  core.turn_start = sim_->now();
  next->sched.state = SimTask::SchedState::RunState::kRunning;
  next->sched.queued_core = -1;
  next->sched.last_core = core.id;
  core.pending_switch_cost = params_.dispatch_cost;
  if (core.last_task != next) {
    core.pending_switch_cost += params_.ctx_switch_cost;
  }
  core.last_task = next;
  StepOnce(core);
}

void CpuScheduler::StepOnce(Core& core) {
  SimTask* task = core.current;
  SNAP_CHECK(task != nullptr);
  SimTime now = sim_->now();
  auto& s = task->sched;
  if (s.latency_pending) {
    s.latency_pending = false;
    if (s.latency_hist != nullptr) {
      s.latency_hist->Record(now - s.wake_time);
    }
  }
  SimDuration budget = params_.max_step;
  if (task->sched_class() == SchedClass::kMicroQuanta) {
    SimDuration rem = MqRemainingBudget(task);
    if (rem <= 0) {
      ThrottleMq(core, task);
      core.current = nullptr;
      Dispatch(core);
      return;
    }
    budget = std::min(budget, rem);
  }
  TraceRecorder* tracer = sim_->tracer();
  if (tracer != nullptr) {
    tracer->set_current_core(trace_track(core.id));
  }
  StepResult result = task->Step(now, budget);
  if (tracer != nullptr) {
    tracer->set_current_core(-1);
  }
  SimDuration charged = result.cpu_ns;
  SNAP_CHECK_GE(charged, 0);
  if (!result.non_preemptible && charged > budget) {
    charged = budget;
  }
  if (charged == 0 && core.pending_switch_cost == 0) {
    // Nothing consumed: resolve the outcome without simulating time.
    if (result.next == StepResult::Next::kSpin) {
      ParkSpin(core);
      return;
    }
    SNAP_CHECK(result.next == StepResult::Next::kBlock)
        << "task " << task->name() << " yielded without consuming CPU";
    FinishStep(core, task, result, 0);
    return;
  }
  SimDuration total = charged + core.pending_switch_cost;
  if (tracer != nullptr && total > 0) {
    tracer->Complete(now, total, trace_track(core.id), task->name(), "task");
  }
  overhead_ns_ += core.pending_switch_cost;
  core.pending_switch_cost = 0;
  core.step_in_progress = true;
  core.busy_until = now + total;
  core.np_until = result.non_preemptible ? core.busy_until : 0;
  int core_id = core.id;
  sim_->Schedule(total, [this, core_id, task, result, charged] {
    FinishStep(cores_[core_id], task, result, charged);
  });
}

void CpuScheduler::FinishStep(Core& core, SimTask* task, StepResult result,
                              SimDuration charged) {
  using RunState = SimTask::SchedState::RunState;
  core.step_in_progress = false;
  auto& s = task->sched;
  s.cpu_ns += charged;
  if (task->sched_class() == SchedClass::kMicroQuanta) {
    s.mq_used += charged;
  }

  if (result.next == StepResult::Next::kBlock) {
    if (s.wake_pending) {
      // A wakeup raced with the decision to block; stay runnable (Snap
      // engines re-check their queues before sleeping for the same reason).
      s.wake_pending = false;
    } else {
      s.state = RunState::kBlocked;
      core.current = nullptr;
      Dispatch(core);
      return;
    }
  }
  if (result.next == StepResult::Next::kSpin && s.wake_pending) {
    // Work arrived during the step: poll again instead of parking.
    result.next = StepResult::Next::kYield;
  }
  s.wake_pending = false;

  // Bandwidth enforcement for MicroQuanta tasks.
  if (task->sched_class() == SchedClass::kMicroQuanta &&
      MqRemainingBudget(task) <= 0) {
    ThrottleMq(core, task);
    core.current = nullptr;
    Dispatch(core);
    return;
  }

  if (ShouldSwitch(core, *task)) {
    s.state = RunState::kRunnable;
    s.queued_core = core.id;
    if (task->sched_class() == SchedClass::kCfs) {
      core.cfs_queue.push_back(task);
    } else {
      core.mq_queue.push_back(task);
    }
    core.current = nullptr;
    Dispatch(core);
    return;
  }

  if (result.next == StepResult::Next::kSpin) {
    ParkSpin(core);
    return;
  }
  StepOnce(core);
}

bool CpuScheduler::ShouldSwitch(const Core& core, const SimTask& current) const {
  if (core.reserved_for == &current) {
    return false;
  }
  SimTime now = sim_->now();
  SimDuration turn = now - core.turn_start;
  switch (current.sched_class()) {
    case SchedClass::kDedicated:
      return false;
    case SchedClass::kMicroQuanta:
      // Fair-share between engines at mq_slice granularity.
      return !core.mq_queue.empty() && turn >= params_.mq_slice;
    case SchedClass::kCfs: {
      if (!core.mq_queue.empty()) {
        return true;  // MicroQuanta has priority over CFS.
      }
      if (core.cfs_queue.empty()) {
        return false;
      }
      if (turn >= params_.cfs_slice) {
        return true;
      }
      // Wakeup preemption at tick granularity for much-heavier waiters.
      if (turn >= params_.cfs_tick) {
        double max_weight = 0;
        for (const SimTask* t : core.cfs_queue) {
          max_weight = std::max(max_weight, t->weight());
        }
        if (max_weight >= params_.cfs_wakeup_preempt_ratio * current.weight()) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

void CpuScheduler::ThrottleMq(Core& core, SimTask* task) {
  using RunState = SimTask::SchedState::RunState;
  if (TraceRecorder* tracer = sim_->tracer()) {
    tracer->Instant(sim_->now(), TraceRecorder::kSchedTrack,
                    "mq_throttle:" + task->name(), "sched",
                    TraceArgInt("core", core.id));
  }
  auto& s = task->sched;
  s.state = RunState::kThrottled;
  s.queued_core = -1;
  SimTime refill = s.mq_period_start + s.mq_period;
  if (refill <= sim_->now()) {
    refill = sim_->now() + 1;
  }
  sim_->ScheduleAt(refill, [this, task] {
    auto& ts = task->sched;
    if (ts.state != SimTask::SchedState::RunState::kThrottled) {
      return;
    }
    ts.mq_period_start = sim_->now();
    ts.mq_used = 0;
    ts.state = SimTask::SchedState::RunState::kBlocked;
    Wake(task, /*remote=*/false);
  });
}

void CpuScheduler::ParkSpin(Core& core) {
  SNAP_CHECK(core.current != nullptr);
  core.spin_parked = true;
  core.spin_park_start = sim_->now();
}

void CpuScheduler::UnparkSpin(Core& core, SimDuration detect_latency) {
  SNAP_CHECK(core.spin_parked);
  SNAP_CHECK(core.current != nullptr);
  core.spin_parked = false;
  SimTask* task = core.current;
  SimDuration spun = sim_->now() - core.spin_park_start;
  task->sched.cpu_ns += spun;
  if (task->sched_class() == SchedClass::kMicroQuanta) {
    task->sched.mq_used += spun;
  }
  // Resume stepping after the poll loop notices the new work. Model the
  // detection latency as a (charged) step so time passes on this core.
  core.step_in_progress = true;
  int core_id = core.id;
  sim_->Schedule(detect_latency, [this, core_id, task, detect_latency] {
    StepResult r;
    r.cpu_ns = 0;
    r.next = StepResult::Next::kYield;
    FinishStep(cores_[core_id], task, r, detect_latency);
  });
}

void CpuScheduler::RemoveFromQueues(Core& core, SimTask* task) {
  auto erase = [task](std::deque<SimTask*>& q) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == task) {
        q.erase(it);
        return;
      }
    }
  };
  erase(core.mq_queue);
  erase(core.cfs_queue);
}

bool CpuScheduler::CoreBusy(int core) const {
  const Core& c = cores_[core];
  return c.current != nullptr || !c.mq_queue.empty() || !c.cfs_queue.empty();
}

void CpuScheduler::FlushSpinAccounting() {
  for (Core& core : cores_) {
    if (core.spin_parked && core.current != nullptr) {
      SimDuration spun = sim_->now() - core.spin_park_start;
      core.current->sched.cpu_ns += spun;
      if (core.current->sched_class() == SchedClass::kMicroQuanta) {
        core.current->sched.mq_used += spun;
      }
      core.spin_park_start = sim_->now();
    }
  }
}

int64_t CpuScheduler::ContainerCpuNs(const std::string& container) const {
  int64_t total = 0;
  for (const SimTask* t : tasks_) {
    if (t->container() == container) {
      total += t->sched.cpu_ns;
    }
  }
  // Include live spin time of parked tasks in the container.
  for (const Core& core : cores_) {
    if (core.spin_parked && core.current != nullptr &&
        core.current->container() == container) {
      total += sim_->now() - core.spin_park_start;
    }
  }
  return total;
}

int64_t CpuScheduler::TotalCpuNs() const {
  int64_t total = 0;
  for (const SimTask* t : tasks_) {
    total += t->sched.cpu_ns;
  }
  for (const Core& core : cores_) {
    if (core.spin_parked && core.current != nullptr) {
      total += sim_->now() - core.spin_park_start;
    }
  }
  return total;
}

}  // namespace snap
