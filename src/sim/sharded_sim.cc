#include "src/sim/sharded_sim.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/util/logging.h"

namespace snap {

namespace {
// "Unreachable" sentinel for the closed lookahead matrix, far enough from
// kSimTimeNever that next + distance cannot overflow.
constexpr SimDuration kLookaheadInf = kSimTimeNever / 4;

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ShardedSim::ShardedSim(const Options& options) : options_(options) {
  SNAP_CHECK_GE(options_.num_shards, 1);
  SNAP_CHECK_GT(options_.lookahead, 0);
  sims_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    sims_.push_back(
        std::make_unique<Simulator>(options_.seed, options_.queue_kind));
  }
  const int n = options_.num_shards;
  pair_lookahead_.assign(static_cast<size_t>(n) * n, options_.lookahead);
  fired_at_epoch_start_.resize(n, 0);
  next_scratch_.resize(n);
  horizon_scratch_.resize(n);
  targets_.resize(n, 0);
}

ShardedSim::~ShardedSim() { StopWorkers(); }

void ShardedSim::set_pair_lookahead(int src, int dst, SimDuration lookahead) {
  SNAP_CHECK_GE(src, 0);
  SNAP_CHECK_LT(src, num_shards());
  SNAP_CHECK_GE(dst, 0);
  SNAP_CHECK_LT(dst, num_shards());
  SNAP_CHECK_GT(lookahead, 0);
  pair_lookahead_[src * num_shards() + dst] = lookahead;
  closure_dirty_ = true;
}

void ShardedSim::RefreshLookaheadClosure() {
  closure_dirty_ = false;
  const int n = num_shards();
  closed_lookahead_.assign(static_cast<size_t>(n) * n, kLookaheadInf);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) closed_lookahead_[s * n + d] = pair_lookahead_[s * n + d];
    }
  }
  // Floyd-Warshall min-plus closure. With the diagonal initialized to
  // infinity, closed[d][d] converges to the shortest cycle through d —
  // the earliest a shard's own work can come back at it via a relay.
  for (int k = 0; k < n; ++k) {
    for (int s = 0; s < n; ++s) {
      const SimDuration sk = closed_lookahead_[s * n + k];
      if (sk >= kLookaheadInf) continue;
      for (int d = 0; d < n; ++d) {
        const SimDuration kd = closed_lookahead_[k * n + d];
        if (kd >= kLookaheadInf) continue;
        SimDuration& sd = closed_lookahead_[s * n + d];
        sd = std::min(sd, sk + kd);
      }
    }
  }
}

SimTime ShardedSim::NextEventTime() const {
  SimTime next = kSimTimeNever;
  for (const auto& sim : sims_) {
    next = std::min(next, sim->NextEventTime());
  }
  return next;
}

void ShardedSim::RunBarrierHooks() {
  if (!profile_.enabled) {
    for (auto& hook : barrier_hooks_) hook();
  } else {
    const int64_t t0 = WallNowNs();
    for (auto& hook : barrier_hooks_) hook();
    profile_.exchange_wall_ns += WallNowNs() - t0;
  }
  // Barrier-driven time-series cadence: sample every shard's registry
  // whenever barrier time has advanced a full cadence past the previous
  // sample. Pure observation on the coordinator with all shards parked.
  if (series_cadence_ > 0 &&
      (last_series_sample_ < 0 ||
       now_ >= last_series_sample_ + series_cadence_)) {
    for (auto& sim : sims_) {
      sim->telemetry().SampleSeriesAt(now_);
    }
    last_series_sample_ = now_;
  }
}

void ShardedSim::RunUntil(SimTime until) {
  SNAP_CHECK_GE(until, now_);
  const int n = num_shards();
  while (true) {
    // Barrier point: all shards are parked. Exchange staged cross-shard
    // work (hooks schedule arrival events), then compute per-destination
    // horizons from the post-exchange event set.
    RunBarrierHooks();
    if (closure_dirty_) RefreshLookaheadClosure();
    for (int s = 0; s < n; ++s) {
      next_scratch_[s] = sims_[s]->NextEventTime();
    }
    SimTime min_horizon = kSimTimeNever;
    for (int d = 0; d < n; ++d) {
      SimTime h = kSimTimeNever;
      for (int s = 0; s < n; ++s) {
        if (next_scratch_[s] == kSimTimeNever) continue;
        const SimDuration dist = closed_lookahead_[s * n + d];
        if (dist >= kLookaheadInf) continue;
        h = std::min(h, next_scratch_[s] + dist);
      }
      horizon_scratch_[d] = h;
      min_horizon = std::min(min_horizon, h);
    }
    if (min_horizon >= until) {
      // Final chunk: run inclusive to `until`, mirroring
      // Simulator::RunUntil semantics so a sharded run observes the same
      // clock landings (and the same events-at-until execution) as the
      // serial engine at every RunFor boundary. With one shard — or all
      // shards idle — this is the only epoch.
      for (int d = 0; d < n; ++d) targets_[d] = until;
      RunShardsToTargets();
      now_ = until;
      if (profile_.enabled) RecordEpochProfile();
      // One more exchange so work staged during the final chunk is
      // delivered (its arrivals land at > until and run next time).
      RunBarrierHooks();
      return;
    }
    // Interior epoch: destination d may run events strictly before its
    // own horizon. A handoff staged by shard s during this epoch has
    // wire_time >= next(s), hence arrival >= next(s) + L(s, d) >= H(d) —
    // beyond every target granted here — so the barrier-time exchange
    // never rewinds a shard's clock. Per-shard horizons are not monotone
    // across epochs (a previously idle shard can pull one back in), but
    // Simulator::RunUntil treats a stale lower target as a no-op and the
    // safety bound above is per-epoch, so that is harmless.
    for (int d = 0; d < n; ++d) {
      targets_[d] = horizon_scratch_[d] == kSimTimeNever
                        ? until
                        : std::min(horizon_scratch_[d] - 1, until);
    }
    RunShardsToTargets();
    now_ = min_horizon;  // strictly increases: every H > global next
    if (profile_.enabled) RecordEpochProfile();
  }
}

void ShardedSim::RunShardsToTargets() {
  ++progress_.epochs;
  for (int i = 0; i < num_shards(); ++i) {
    fired_at_epoch_start_[i] = sims_[i]->event_queue().stats().fired;
  }
  const bool prof = profile_.enabled;
  int64_t epoch_t0 = 0;
  if (prof) {
    std::fill(busy_scratch_ns_.begin(), busy_scratch_ns_.end(), 0);
    epoch_t0 = WallNowNs();
  }
  int threads = std::min(options_.num_threads, num_shards());
  if (threads <= 1) {
    for (int i = 0; i < num_shards(); ++i) {
      if (prof) {
        const int64_t t0 = WallNowNs();
        sims_[i]->RunUntil(targets_[i]);
        busy_scratch_ns_[i] = WallNowNs() - t0;
      } else {
        sims_[i]->RunUntil(targets_[i]);
      }
    }
  } else {
    if (!workers_started_) StartWorkers();
    start_barrier_->arrive_and_wait();
    done_barrier_->arrive_and_wait();
  }
  const int64_t epoch_wall =
      prof ? std::max<int64_t>(WallNowNs() - epoch_t0, 0) : 0;
  int64_t max_delta = 0;
  for (int i = 0; i < num_shards(); ++i) {
    int64_t delta =
        sims_[i]->event_queue().stats().fired - fired_at_epoch_start_[i];
    progress_.events_fired += delta;
    max_delta = std::max(max_delta, delta);
    if (prof) {
      // busy_scratch_ns_[i] was written by whichever thread executed
      // shard i; the done barrier ordered that write before this read.
      ShardProfile& sp = profile_.shards[i];
      sp.busy_ns += busy_scratch_ns_[i];
      sp.wait_ns += std::max<int64_t>(epoch_wall - busy_scratch_ns_[i], 0);
      sp.events += delta;
      sp.max_epoch_events = std::max(sp.max_epoch_events, delta);
      delta_scratch_[i] = delta;
    }
  }
  progress_.critical_path_events += max_delta;
  if (prof) profile_.epoch_wall_ns += epoch_wall;
}

// Deterministic per-epoch profiler outputs, recorded on the coordinator
// at the barrier time the epoch just reached (now_). Wall-clock numbers
// never flow through here — only event counts, which are a pure function
// of the (deterministic) epoch structure.
void ShardedSim::RecordEpochProfile() {
  const int n = num_shards();
  int64_t total = 0;
  int64_t max_delta = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t delta = delta_scratch_[i];
    total += delta;
    max_delta = std::max(max_delta, delta);
    prof_epochs_[i]->Increment();
    prof_epoch_events_[i]->Add(delta);
    if (!tracers_.empty() && delta > 0) {
      tracers_[i]->CounterValueOnTrack(now_, TraceRecorder::kProfilerTrack,
                                       "prof/epoch_events", delta);
    }
  }
  if (!tracers_.empty() && total > 0 && n > 1) {
    // Imbalance of this epoch: busiest shard's share of the work relative
    // to a perfectly even split (100 = balanced, n*100 = one shard did
    // everything). Integer arithmetic keeps the trace byte-stable.
    tracers_[0]->CounterValueOnTrack(now_, TraceRecorder::kProfilerTrack,
                                     "prof/epoch_imbalance_pct",
                                     max_delta * 100 * n / total);
  }
}

void ShardedSim::EnableProfiling() {
  if (profile_.enabled) return;
  profile_.enabled = true;
  const int n = num_shards();
  profile_.shards.resize(n);
  busy_scratch_ns_.assign(n, 0);
  delta_scratch_.assign(n, 0);
  prof_epoch_events_.resize(n);
  prof_epochs_.resize(n);
  for (int s = 0; s < n; ++s) {
    Telemetry& t = sims_[s]->telemetry();
    const std::string base = "sim/shard/" + std::to_string(s);
    prof_epoch_events_[s] = t.GetCounter(base + "/epoch_events");
    prof_epochs_[s] = t.GetCounter(base + "/epochs");
    // Deterministic gauge: the busiest single epoch this shard has run.
    t.RegisterGauge(base + "/max_epoch_events", [this, s]() -> int64_t {
      return profile_.shards[s].max_epoch_events;
    });
  }
}

void ShardedSim::EnableSeriesSampling(SimDuration cadence,
                                      SimDuration bucket_width,
                                      int max_buckets) {
  SNAP_CHECK_GT(cadence, 0);
  series_cadence_ = cadence;
  if (bucket_width <= 0) bucket_width = cadence;
  for (auto& sim : sims_) {
    sim->telemetry().EnableSeriesSampling(bucket_width, max_buckets);
  }
}

std::string ShardedSim::ProfileJson() const {
  std::string out = "{\"enabled\":";
  out += profile_.enabled ? "true" : "false";
  out += ",\"num_shards\":" + std::to_string(num_shards());
  out += ",\"num_threads\":" +
         std::to_string(std::min(options_.num_threads, num_shards()));
  out += ",\"epochs\":" + std::to_string(progress_.epochs);
  out += ",\"events_fired\":" + std::to_string(progress_.events_fired);
  out += ",\"critical_path_events\":" +
         std::to_string(progress_.critical_path_events);
  out += ",\"epoch_wall_ns\":" + std::to_string(profile_.epoch_wall_ns);
  out += ",\"exchange_wall_ns\":" + std::to_string(profile_.exchange_wall_ns);
  out += ",\"shards\":[";
  for (size_t i = 0; i < profile_.shards.size(); ++i) {
    if (i > 0) out += ",";
    const ShardProfile& sp = profile_.shards[i];
    out += "{\"busy_ns\":" + std::to_string(sp.busy_ns) +
           ",\"wait_ns\":" + std::to_string(sp.wait_ns) +
           ",\"events\":" + std::to_string(sp.events) +
           ",\"max_epoch_events\":" + std::to_string(sp.max_epoch_events) +
           "}";
  }
  out += "]}";
  return out;
}

void ShardedSim::StartWorkers() {
  num_worker_threads_ = std::min(options_.num_threads, num_shards());
  start_barrier_ = std::make_unique<std::barrier<>>(num_worker_threads_ + 1);
  done_barrier_ = std::make_unique<std::barrier<>>(num_worker_threads_ + 1);
  workers_.reserve(num_worker_threads_);
  for (int w = 0; w < num_worker_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  workers_started_ = true;
}

void ShardedSim::StopWorkers() {
  if (!workers_started_) return;
  stop_.store(true, std::memory_order_relaxed);
  start_barrier_->arrive_and_wait();
  for (auto& t : workers_) t.join();
  workers_.clear();
  workers_started_ = false;
}

void ShardedSim::WorkerLoop(int worker_index) {
  // profile_.enabled is set (if ever) before the first Run*, which is
  // before StartWorkers, so reading it here is race-free.
  const bool prof = profile_.enabled;
  while (true) {
    start_barrier_->arrive_and_wait();
    if (stop_.load(std::memory_order_relaxed)) return;
    for (int i = worker_index; i < num_shards(); i += num_worker_threads_) {
      if (prof) {
        const int64_t t0 = WallNowNs();
        sims_[i]->RunUntil(targets_[i]);
        busy_scratch_ns_[i] = WallNowNs() - t0;
      } else {
        sims_[i]->RunUntil(targets_[i]);
      }
    }
    done_barrier_->arrive_and_wait();
  }
}

std::map<std::string, int64_t> ShardedSim::MergedTelemetryValues() const {
  std::map<std::string, int64_t> merged;
  for (const auto& sim : sims_) {
    for (const auto& [name, value] : sim->telemetry().SnapshotValues()) {
      merged[name] += value;
    }
  }
  return merged;
}

void ShardedSim::EnableTracing() {
  if (!tracers_.empty()) return;
  tracers_.reserve(sims_.size());
  for (auto& sim : sims_) {
    tracers_.push_back(std::make_unique<TraceRecorder>());
    sim->set_tracer(tracers_.back().get());
  }
}

std::unique_ptr<TraceRecorder> ShardedSim::MergedTrace() const {
  auto merged = std::make_unique<TraceRecorder>();
  struct Ref {
    SimTime ts;
    int shard;
    size_t index;
  };
  std::vector<Ref> refs;
  for (int s = 0; s < static_cast<int>(tracers_.size()); ++s) {
    const auto& events = tracers_[s]->events();
    for (size_t i = 0; i < events.size(); ++i) {
      refs.push_back(Ref{events[i].ts, s, i});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.index < b.index;
  });
  for (const Ref& r : refs) {
    TraceEvent event = tracers_[r.shard]->events()[r.index];
    event.tid += r.shard * kShardTrackStride;
    merged->AppendRaw(std::move(event));
  }
  return merged;
}

}  // namespace snap
