#include "src/sim/sharded_sim.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace snap {

ShardedSim::ShardedSim(const Options& options) : options_(options) {
  SNAP_CHECK_GE(options_.num_shards, 1);
  SNAP_CHECK_GT(options_.lookahead, 0);
  sims_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    sims_.push_back(
        std::make_unique<Simulator>(options_.seed, options_.queue_kind));
  }
  fired_at_epoch_start_.resize(options_.num_shards, 0);
}

ShardedSim::~ShardedSim() { StopWorkers(); }

SimTime ShardedSim::NextEventTime() const {
  SimTime next = kSimTimeNever;
  for (const auto& sim : sims_) {
    next = std::min(next, sim->NextEventTime());
  }
  return next;
}

void ShardedSim::RunUntil(SimTime until) {
  SNAP_CHECK_GE(until, now_);
  while (true) {
    // Barrier point: all shards are parked at now_. Exchange staged
    // cross-shard work (hooks schedule arrival events), then compute the
    // next conservative horizon from the post-exchange event set.
    for (auto& hook : barrier_hooks_) hook();
    SimTime next = NextEventTime();
    if (next == kSimTimeNever || next + options_.lookahead >= until) {
      // Final chunk: run inclusive to `until`, mirroring
      // Simulator::RunUntil semantics so a sharded run observes the same
      // clock landings (and the same events-at-until execution) as the
      // serial engine at every RunFor boundary.
      RunShardsTo(until);
      now_ = until;
      // One more exchange so work staged during the final chunk is
      // delivered (its arrivals land at > until and run next time).
      for (auto& hook : barrier_hooks_) hook();
      return;
    }
    // Interior epoch: every shard may run events strictly before
    // next + lookahead. Any handoff staged during this epoch has
    // wire_time >= next, hence arrival >= next + lookahead, so scheduling
    // it at the barrier never rewinds any shard's clock.
    SimTime end = next + options_.lookahead;
    RunShardsTo(end - 1);
    now_ = end;
  }
}

void ShardedSim::RunShardsTo(SimTime target) {
  ++progress_.epochs;
  for (int i = 0; i < num_shards(); ++i) {
    fired_at_epoch_start_[i] = sims_[i]->event_queue().stats().fired;
  }
  int threads = std::min(options_.num_threads, num_shards());
  if (threads <= 1) {
    for (auto& sim : sims_) sim->RunUntil(target);
  } else {
    if (!workers_started_) StartWorkers();
    target_ = target;
    start_barrier_->arrive_and_wait();
    done_barrier_->arrive_and_wait();
  }
  int64_t max_delta = 0;
  for (int i = 0; i < num_shards(); ++i) {
    int64_t delta =
        sims_[i]->event_queue().stats().fired - fired_at_epoch_start_[i];
    progress_.events_fired += delta;
    max_delta = std::max(max_delta, delta);
  }
  progress_.critical_path_events += max_delta;
}

void ShardedSim::StartWorkers() {
  num_worker_threads_ = std::min(options_.num_threads, num_shards());
  start_barrier_ = std::make_unique<std::barrier<>>(num_worker_threads_ + 1);
  done_barrier_ = std::make_unique<std::barrier<>>(num_worker_threads_ + 1);
  workers_.reserve(num_worker_threads_);
  for (int w = 0; w < num_worker_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  workers_started_ = true;
}

void ShardedSim::StopWorkers() {
  if (!workers_started_) return;
  stop_.store(true, std::memory_order_relaxed);
  start_barrier_->arrive_and_wait();
  for (auto& t : workers_) t.join();
  workers_.clear();
  workers_started_ = false;
}

void ShardedSim::WorkerLoop(int worker_index) {
  while (true) {
    start_barrier_->arrive_and_wait();
    if (stop_.load(std::memory_order_relaxed)) return;
    for (int i = worker_index; i < num_shards(); i += num_worker_threads_) {
      sims_[i]->RunUntil(target_);
    }
    done_barrier_->arrive_and_wait();
  }
}

std::map<std::string, int64_t> ShardedSim::MergedTelemetryValues() const {
  std::map<std::string, int64_t> merged;
  for (const auto& sim : sims_) {
    for (const auto& [name, value] : sim->telemetry().SnapshotValues()) {
      merged[name] += value;
    }
  }
  return merged;
}

}  // namespace snap
