// Minimal Status / StatusOr error-propagation types, in the style of
// absl::Status. Used throughout the Snap reproduction instead of exceptions:
// data-plane code must never throw, and control-plane errors are values.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace snap {

enum class StatusCode : int {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kAlreadyExists = 6,
  kPermissionDenied = 7,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kAborted = 10,
  kOutOfRange = 11,
  kUnimplemented = 12,
  kInternal = 13,
  kUnavailable = 14,
};

std::string_view StatusCodeToString(StatusCode code);

// A success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status PermissionDeniedError(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status AbortedError(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status CancelledError(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}

// A value or an error. Accessing value() on an error aborts, mirroring
// absl::StatusOr's CHECK semantics.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : rep_(value) {}                   // NOLINT
  StatusOr(T&& value) : rep_(std::move(value)) {}             // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {}        // NOLINT
  StatusOr(StatusCode code, std::string msg)
      : rep_(Status(code, std::move(msg))) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<Status, T> rep_;
};

[[noreturn]] void StatusOrValueAbort(const Status& status);

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!ok()) {
    StatusOrValueAbort(std::get<Status>(rep_));
  }
}

#define SNAP_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::snap::Status _st = (expr);          \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

#define SNAP_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                               \
  if (!var.ok()) {                                  \
    return var.status();                            \
  }                                                 \
  lhs = std::move(var).value()

#define SNAP_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SNAP_ASSIGN_OR_RETURN_NAME(x, y) SNAP_ASSIGN_OR_RETURN_CONCAT(x, y)
#define SNAP_ASSIGN_OR_RETURN(lhs, rexpr) \
  SNAP_ASSIGN_OR_RETURN_IMPL(             \
      SNAP_ASSIGN_OR_RETURN_NAME(_statusor_, __LINE__), lhs, rexpr)

}  // namespace snap

#endif  // SRC_UTIL_STATUS_H_
