// Deterministic pseudo-random number generation for the simulator.
// xoshiro256++ seeded via SplitMix64: fast, high quality, and fully
// reproducible across platforms (no dependence on libstdc++ distribution
// implementations for the distributions we provide ourselves).
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/util/logging.h"

namespace snap {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform in [0, 2^64).
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    SNAP_CHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection method.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    SNAP_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed with the given mean (inter-arrival times of a
  // Poisson process).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace snap

#endif  // SRC_UTIL_RNG_H_
