#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace snap {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void StatusOrValueAbort(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace snap
