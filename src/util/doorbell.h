// Doorbell: a Dekker-style park/wake handshake between one waiter thread
// and any number of ringer threads — the cross-thread wakeup primitive of
// live mode (src/live/), factored out of LiveExecutor so the same audited
// handshake serves executor parking, scheduler-worker parking, and the
// application blocking-notify path (PonyClient::BindDoorbell).
//
// The lost-wakeup window this closes: a ringer that publishes work and
// rings between the waiter's "is there work?" check and its park must not
// be missed. The handshake is two seq_cst flags:
//
//   ringer:  pending_ = true  (seq_cst)        waiter:  waiting_ = true
//            if (waiting_) { lock; unlock; }            if (!pending_)
//            notify                                         sleep
//
// The waiter stores waiting_ and tests pending_ while holding the mutex
// (the condition_variable predicate); the ringer stores pending_ then
// loads waiting_. In the seq_cst total order one side always observes the
// other: either the waiter's predicate sees pending_ and never sleeps, or
// the ringer sees waiting_ and serializes on the mutex, so its notify
// lands after the waiter is actually waiting. The fast path (no waiter)
// costs the ringer one store + one load, no lock. The same flag protocol
// inside LiveExecutor survived the PR 10 lost-wakeup audit; the TSan
// stress in tests/live_doorbell_test.cc pins the ordering.
//
// Contract: at most ONE thread waits (notify_one); any thread may ring.
// Consume() and WaitFor() belong to the waiter. A Ring with no waiter is
// remembered in pending_ until consumed — edge-triggered, never lost.
#ifndef SRC_UTIL_DOORBELL_H_
#define SRC_UTIL_DOORBELL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace snap {

class Doorbell {
 public:
  Doorbell() = default;
  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  // Any thread: ring the bell. Wakes the waiter if one is parked; the
  // ring is latched in pending_ otherwise.
  void Ring() {
    rings_.fetch_add(1, std::memory_order_relaxed);
    pending_.store(true, std::memory_order_seq_cst);
    if (waiting_.load(std::memory_order_seq_cst)) {
      // Empty critical section: serialize with the waiter entering wait so
      // the notify cannot land between its predicate check and the wait.
      { std::lock_guard<std::mutex> lock(mutex_); }
      cv_.notify_one();
    }
  }

  // Waiter: clears the latch; returns whether it was set. Call at the top
  // of the poll loop so anything rung after this point triggers another
  // pass instead of being absorbed by the current one.
  bool Consume() { return pending_.exchange(false, std::memory_order_seq_cst); }

  bool pending() const { return pending_.load(std::memory_order_seq_cst); }

  // Waiter: blocks until rung or `timeout_ns` elapses. Returns the latch
  // state on exit (true = rung; does NOT consume — the waiter's loop-top
  // Consume() does). Returns immediately when already rung.
  bool WaitFor(int64_t timeout_ns) {
    if (timeout_ns <= 0 || pending()) {
      return pending();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    waiting_.store(true, std::memory_order_seq_cst);
    waits_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns), [this] {
      return pending_.load(std::memory_order_seq_cst);
    });
    waiting_.store(false, std::memory_order_seq_cst);
    return pending_.load(std::memory_order_seq_cst);
  }

  // Counters (relaxed; exact once the threads have quiesced).
  int64_t rings() const { return rings_.load(std::memory_order_relaxed); }
  int64_t waits() const { return waits_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> pending_{false};
  std::atomic<bool> waiting_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<int64_t> rings_{0};
  std::atomic<int64_t> waits_{0};
};

}  // namespace snap

#endif  // SRC_UTIL_DOORBELL_H_
