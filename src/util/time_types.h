// Simulated-time units. All simulation time is int64 nanoseconds; these
// helpers keep magnitudes readable at call sites (e.g. `5 * kUsec`).
#ifndef SRC_UTIL_TIME_TYPES_H_
#define SRC_UTIL_TIME_TYPES_H_

#include <cstdint>

namespace snap {

// Absolute simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;
// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNsec = 1;
inline constexpr SimDuration kUsec = 1000;
inline constexpr SimDuration kMsec = 1000 * kUsec;
inline constexpr SimDuration kSec = 1000 * kMsec;

inline constexpr SimTime kSimTimeNever = INT64_MAX;

inline constexpr double ToUsec(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kUsec);
}
inline constexpr double ToMsec(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMsec);
}
inline constexpr double ToSec(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSec);
}

}  // namespace snap

#endif  // SRC_UTIL_TIME_TYPES_H_
