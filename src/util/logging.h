// Lightweight logging and assertion macros. Severity-filtered stderr logging
// plus CHECK macros that abort with file:line context. Data-plane code keeps
// logging out of hot paths; CHECKs guard invariants that must never break.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace snap {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum severity; messages below it are dropped. Default: kInfo.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the log statement is disabled.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace snap

#define SNAP_LOG_SEVERITY_DEBUG ::snap::LogSeverity::kDebug
#define SNAP_LOG_SEVERITY_INFO ::snap::LogSeverity::kInfo
#define SNAP_LOG_SEVERITY_WARNING ::snap::LogSeverity::kWarning
#define SNAP_LOG_SEVERITY_ERROR ::snap::LogSeverity::kError
#define SNAP_LOG_SEVERITY_FATAL ::snap::LogSeverity::kFatal

#define SNAP_LOG(severity)                                             \
  (SNAP_LOG_SEVERITY_##severity < ::snap::MinLogSeverity())            \
      ? (void)0                                                        \
      : ::snap::LogMessageVoidify() &                                  \
            ::snap::LogMessage(SNAP_LOG_SEVERITY_##severity, __FILE__, \
                               __LINE__)                               \
                .stream()

#define SNAP_CHECK(cond)                                                      \
  (cond) ? (void)0                                                           \
         : ::snap::LogMessageVoidify() &                                     \
               ::snap::LogMessage(::snap::LogSeverity::kFatal, __FILE__,     \
                                  __LINE__)                                  \
                   .stream()                                                 \
               << "Check failed: " #cond " "

#define SNAP_CHECK_OP(op, a, b)                                            \
  ((a)op(b)) ? (void)0                                                     \
             : ::snap::LogMessageVoidify() &                               \
                   ::snap::LogMessage(::snap::LogSeverity::kFatal,         \
                                      __FILE__, __LINE__)                  \
                       .stream()                                           \
                   << "Check failed: " #a " " #op " " #b " (" << (a)       \
                   << " vs " << (b) << ") "

#define SNAP_CHECK_EQ(a, b) SNAP_CHECK_OP(==, a, b)
#define SNAP_CHECK_NE(a, b) SNAP_CHECK_OP(!=, a, b)
#define SNAP_CHECK_LT(a, b) SNAP_CHECK_OP(<, a, b)
#define SNAP_CHECK_LE(a, b) SNAP_CHECK_OP(<=, a, b)
#define SNAP_CHECK_GT(a, b) SNAP_CHECK_OP(>, a, b)
#define SNAP_CHECK_GE(a, b) SNAP_CHECK_OP(>=, a, b)

#define SNAP_CHECK_OK(expr)                                    \
  do {                                                         \
    ::snap::Status _st = (expr);                               \
    SNAP_CHECK(_st.ok()) << _st.ToString();                    \
  } while (0)

#endif  // SRC_UTIL_LOGGING_H_
