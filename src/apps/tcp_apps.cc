#include "src/apps/tcp_apps.h"

#include <algorithm>

#include "src/util/logging.h"

namespace snap {

TcpAppTask::TcpAppTask(std::string name, CpuScheduler* sched,
                       KernelStack* kstack)
    : SimTask(std::move(name), SchedClass::kCfs), sched_(sched),
      kstack_(kstack) {
  set_container("app");
}

void TcpAppTask::WatchSocket(TcpSocket* socket) {
  TcpAppTask* self = this;
  socket->SetReadableCallback([self] { self->WakeSelf(); });
  socket->SetWritableCallback([self] { self->WakeSelf(); });
  socket->SetEstablishedCallback([self] { self->WakeSelf(); });
}

// ---------------------------------------------------------------------------
// Stream throughput
// ---------------------------------------------------------------------------

TcpStreamSenderTask::TcpStreamSenderTask(std::string name,
                                         CpuScheduler* sched,
                                         KernelStack* kstack,
                                         const Options& options)
    : TcpAppTask(std::move(name), sched, kstack), options_(options) {}

StepResult TcpStreamSenderTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  if (!connected_) {
    for (int i = 0; i < options_.num_streams; ++i) {
      TcpSocket* sock =
          kstack_->Connect(options_.dst_host, options_.port, &cost);
      WatchSocket(sock);
      sockets_.push_back(sock);
    }
    connected_ = true;
  }
  bool any_progress = true;
  while (any_progress && cost.ns < budget_ns) {
    any_progress = false;
    for (size_t i = 0; i < sockets_.size() && cost.ns < budget_ns; ++i) {
      TcpSocket* sock = sockets_[(cursor_ + i) % sockets_.size()];
      if (sock->state() != TcpSocket::State::kEstablished) {
        continue;
      }
      int64_t space = sock->send_space();
      if (space <= 0) {
        continue;
      }
      int64_t sent =
          sock->Send(std::min(space, options_.write_chunk), &cost);
      if (sent > 0) {
        bytes_sent_ += sent;
        any_progress = true;
      }
    }
    cursor_ = (cursor_ + 1) % std::max<size_t>(1, sockets_.size());
  }
  result.cpu_ns = cost.ns;
  // All send buffers full (or handshakes pending): wait for acks.
  result.next = StepResult::Next::kBlock;
  if (cost.ns >= budget_ns) {
    result.next = StepResult::Next::kYield;
  }
  return result;
}

TcpStreamReceiverTask::TcpStreamReceiverTask(std::string name,
                                             CpuScheduler* sched,
                                             KernelStack* kstack,
                                             uint16_t port)
    : TcpAppTask(std::move(name), sched, kstack) {
  TcpStreamReceiverTask* self = this;
  kstack_->Listen(port, [self](TcpSocket* sock) {
    self->WatchSocket(sock);
    self->sockets_.push_back(sock);
    self->WakeSelf();
  });
}

StepResult TcpStreamReceiverTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  bool progress = true;
  while (progress && cost.ns < budget_ns) {
    progress = false;
    for (TcpSocket* sock : sockets_) {
      if (sock->readable_bytes() <= 0) {
        continue;
      }
      // epoll_wait returned this socket as ready.
      cost.Charge(kstack_->params().epoll_per_event);
      int64_t got = sock->Recv(INT64_MAX / 2, &cost);
      if (got > 0) {
        bytes_received_ += got;
        progress = true;
      }
      if (cost.ns >= budget_ns) {
        break;
      }
    }
  }
  result.cpu_ns = cost.ns;
  result.next = cost.ns >= budget_ns ? StepResult::Next::kYield
                                     : StepResult::Next::kBlock;
  return result;
}

// ---------------------------------------------------------------------------
// TCP_RR
// ---------------------------------------------------------------------------

TcpRRServerTask::TcpRRServerTask(std::string name, CpuScheduler* sched,
                                 KernelStack* kstack, const Options& options)
    : TcpAppTask(std::move(name), sched, kstack), options_(options) {
  TcpRRServerTask* self = this;
  kstack_->Listen(options.port, [self](TcpSocket* sock) {
    self->WatchSocket(sock);
    self->sockets_.push_back(sock);
    self->WakeSelf();
  });
}

StepResult TcpRRServerTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  // Answer requests received last step: their processing time has elapsed.
  for (TcpSocket* sock : pending_replies_) {
    sock->Send(options_.response_bytes, &cost);
  }
  pending_replies_.clear();
  if (options_.busy_poll) {
    kstack_->BusyPollRx(&cost);
  }
  for (TcpSocket* sock : sockets_) {
    while (sock->readable_bytes() >= options_.request_bytes) {
      sock->Recv(options_.request_bytes, &cost);
      pending_replies_.push_back(sock);
    }
  }
  result.cpu_ns = cost.ns;
  if (!pending_replies_.empty()) {
    result.next = StepResult::Next::kYield;
  } else {
    result.next = options_.busy_poll ? StepResult::Next::kYield
                                     : StepResult::Next::kBlock;
  }
  if (result.next == StepResult::Next::kYield && result.cpu_ns == 0) {
    result.cpu_ns = 100;
  }
  return result;
}

TcpRRClientTask::TcpRRClientTask(std::string name, CpuScheduler* sched,
                                 KernelStack* kstack, const Options& options)
    : TcpAppTask(std::move(name), sched, kstack), options_(options) {}

StepResult TcpRRClientTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  if (socket_ == nullptr) {
    socket_ = kstack_->Connect(options_.dst_host, options_.port, &cost);
    WatchSocket(socket_);
  }
  if (options_.busy_poll) {
    kstack_->BusyPollRx(&cost);
  }
  if (socket_->state() == TcpSocket::State::kEstablished) {
    bool progress = true;
    while (progress && cost.ns < budget_ns &&
           completed_ < options_.iterations) {
      progress = false;
      if (!request_outstanding_ && now >= next_issue_) {
        socket_->Send(options_.request_bytes, &cost);
        sent_at_ = now;
        next_issue_ = now + options_.interval;
        request_outstanding_ = true;
        resp_remaining_ = options_.response_bytes;
        progress = true;
      }
      if (socket_->readable_bytes() > 0) {
        int64_t got = socket_->Recv(resp_remaining_, &cost);
        resp_remaining_ -= got;
        if (got > 0 && resp_remaining_ == 0) {
          latency_.Record(now - sent_at_);
          ++completed_;
          request_outstanding_ = false;
          progress = true;
        }
      }
    }
  }
  result.cpu_ns = cost.ns;
  if (completed_ >= options_.iterations) {
    result.next = StepResult::Next::kBlock;
    return result;
  }
  if (!request_outstanding_ && now < next_issue_) {
    issue_timer_.Cancel();
    issue_timer_ = sched_->WakeAt(this, next_issue_, /*remote=*/false);
  }
  // Busy-poll clients spin on the NIC queue; others block on sk_data_ready.
  result.next = options_.busy_poll ? StepResult::Next::kYield
                                   : StepResult::Next::kBlock;
  if (options_.busy_poll && result.cpu_ns == 0) {
    result.cpu_ns = 100;  // poll loop iteration
  }
  return result;
}

// ---------------------------------------------------------------------------
// Open-loop RPC over TCP
// ---------------------------------------------------------------------------

TcpRpcServerTask::TcpRpcServerTask(std::string name, CpuScheduler* sched,
                                   KernelStack* kstack, uint16_t port,
                                   TcpRpcContext* ctx)
    : TcpAppTask(std::move(name), sched, kstack), ctx_(ctx) {
  TcpRpcServerTask* self = this;
  kstack_->Listen(port, [self](TcpSocket* sock) {
    self->WatchSocket(sock);
    self->conns_.push_back(Conn{sock, 0, 0});
    self->WakeSelf();
  });
}

StepResult TcpRpcServerTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  for (Conn& conn : conns_) {
    if (cost.ns >= budget_ns) {
      break;
    }
    // Drain queued response bytes first (responses exceed socket buffers).
    if (conn.write_backlog > 0) {
      int64_t sent = conn.socket->Send(conn.write_backlog, &cost);
      conn.write_backlog -= sent;
    }
    // Accept new requests (one outstanding per connection by protocol).
    while (conn.socket->readable_bytes() >= ctx_->request_bytes &&
           conn.write_backlog == 0 && cost.ns < budget_ns) {
      cost.Charge(kstack_->params().epoll_per_event);
      conn.socket->Recv(ctx_->request_bytes, &cost);
      auto it = ctx_->response_bytes.find(conn.socket->id());
      int64_t resp = it != ctx_->response_bytes.end() ? it->second : 64;
      ++requests_served_;
      int64_t sent = conn.socket->Send(resp, &cost);
      conn.write_backlog = resp - sent;
    }
  }
  result.cpu_ns = cost.ns;
  result.next = cost.ns >= budget_ns ? StepResult::Next::kYield
                                     : StepResult::Next::kBlock;
  return result;
}

TcpRpcClientTask::TcpRpcClientTask(std::string name, CpuScheduler* sched,
                                   KernelStack* kstack, TcpRpcContext* ctx,
                                   const Options& options)
    : TcpAppTask(std::move(name), sched, kstack), options_(options),
      ctx_(ctx), rng_(options.rng_seed) {
  SNAP_CHECK(!options.peer_hosts.empty());
}

TcpRpcClientTask::Conn* TcpRpcClientTask::AcquireConn(int host,
                                                      CpuCostSink* cost) {
  auto& pool = pools_[host];
  for (auto& conn : pool) {
    if (conn->established && !conn->busy) {
      return conn.get();
    }
  }
  if (static_cast<int>(pool.size()) < options_.max_conns_per_peer) {
    auto conn = std::make_unique<Conn>();
    conn->socket = kstack_->Connect(host, options_.port, cost);
    WatchSocket(conn->socket);
    Conn* raw = conn.get();
    TcpRpcClientTask* self = this;
    conn->socket->SetEstablishedCallback([self, raw] {
      raw->established = true;
      self->WakeSelf();
    });
    pool.push_back(std::move(conn));
  }
  return nullptr;  // connection warming up or pool exhausted
}

void TcpRpcClientTask::StartRpc(Conn* conn, SimTime arrival,
                                CpuCostSink* cost) {
  conn->busy = true;
  conn->issued_at = arrival;
  conn->resp_remaining = options_.response_bytes;
  ctx_->response_bytes[conn->socket->id()] = options_.response_bytes;
  int64_t sent = conn->socket->Send(ctx_->request_bytes, cost);
  conn->request_backlog = ctx_->request_bytes - sent;
  bytes_transferred_ += ctx_->request_bytes;
}

StepResult TcpRpcClientTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  // Progress in-flight RPCs.
  for (auto& [host, pool] : pools_) {
    for (auto& conn : pool) {
      if (!conn->busy) {
        continue;
      }
      if (conn->request_backlog > 0) {
        int64_t sent = conn->socket->Send(conn->request_backlog, &cost);
        conn->request_backlog -= sent;
      }
      if (conn->socket->readable_bytes() > 0) {
        cost.Charge(kstack_->params().epoll_per_event);
        int64_t got = conn->socket->Recv(conn->resp_remaining, &cost);
        conn->resp_remaining -= got;
        bytes_transferred_ += got;
        if (conn->resp_remaining == 0) {
          latency_.Record(now - conn->issued_at);
          ++rpcs_completed_;
          conn->busy = false;
        }
      }
    }
  }
  // Open-loop arrivals (including any deferred while all conns were busy).
  if (next_arrival_ == 0) {
    next_arrival_ = now + static_cast<SimDuration>(
        rng_.NextExponential(1e9 / options_.rpcs_per_sec));
  }
  while (now >= next_arrival_) {
    deferred_.push_back(next_arrival_);
    next_arrival_ += static_cast<SimDuration>(
        rng_.NextExponential(1e9 / options_.rpcs_per_sec));
  }
  while (!deferred_.empty() && cost.ns < budget_ns) {
    int host = options_.peer_hosts[rng_.NextBounded(
        options_.peer_hosts.size())];
    Conn* conn = AcquireConn(host, &cost);
    if (conn == nullptr) {
      break;  // wait for a connection to free up or establish
    }
    StartRpc(conn, deferred_.front(), &cost);
    deferred_.pop_front();
  }
  arrival_timer_.Cancel();
  arrival_timer_ = sched_->WakeAt(this, std::max(next_arrival_, now + 1),
                                  /*remote=*/false);
  result.cpu_ns = cost.ns;
  result.next = cost.ns >= budget_ns ? StepResult::Next::kYield
                                     : StepResult::Next::kBlock;
  return result;
}

}  // namespace snap
