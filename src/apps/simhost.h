// SimHost: one simulated machine — its cores (a CpuScheduler), NIC, kernel
// TCP stack, and a Snap instance with a Pony module. Benchmarks, tests and
// examples assemble racks of SimHosts on a shared Fabric.
#ifndef SRC_APPS_SIMHOST_H_
#define SRC_APPS_SIMHOST_H_

#include <memory>
#include <string>

#include "src/kernel/kstack.h"
#include "src/net/fabric.h"
#include "src/pony/pony_module.h"
#include "src/sim/cpu.h"
#include "src/snap/control.h"

namespace snap {

struct SimHostOptions {
  CpuParams cpu;
  KernelStackParams kernel;
  PonyParams pony;
  TimelyParams timely;
  AppParams app;
  // Default engine group configuration.
  EngineGroup::Options group;
  bool start_kernel_stack = true;
};

class SimHost {
 public:
  SimHost(Simulator* sim, Fabric* fabric, PonyDirectory* directory,
          const SimHostOptions& options);

  // Creates a Pony engine in the default group.
  PonyEngine* CreatePonyEngine(const std::string& name);
  // Bootstraps an application client channel on `engine`.
  std::unique_ptr<PonyClient> CreateClient(PonyEngine* engine,
                                           const std::string& app_name);

  int host_id() const { return nic_->host_id(); }
  Simulator* sim() { return sim_; }
  CpuScheduler* cpu() { return cpu_.get(); }
  Nic* nic() { return nic_; }
  KernelStack* kstack() { return kstack_.get(); }
  SnapInstance* snap() { return snap_.get(); }
  PonyModule* pony_module() { return pony_module_; }
  EngineGroup* default_group() { return default_group_; }
  const SimHostOptions& options() const { return options_; }

  // Per-host CPU totals (for Gbps/core style reporting).
  int64_t SnapCpuNs() const { return snap_->TotalEngineCpuNs(); }
  int64_t KernelCpuNs() const { return cpu_->ContainerCpuNs("kernel"); }
  int64_t AppCpuNs() const { return cpu_->ContainerCpuNs("app"); }

 private:
  Simulator* sim_;
  SimHostOptions options_;
  Nic* nic_;
  std::unique_ptr<CpuScheduler> cpu_;
  std::unique_ptr<KernelStack> kstack_;
  std::unique_ptr<SnapInstance> snap_;
  PonyModule* pony_module_ = nullptr;
  EngineGroup* default_group_ = nullptr;
  int next_engine_ = 0;
};

}  // namespace snap

#endif  // SRC_APPS_SIMHOST_H_
