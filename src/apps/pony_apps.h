// Application workload tasks over Pony Express, mirroring the paper's
// benchmarks: single-thread stream throughput (Table 1), small-message
// ping-pong with optional app spin-polling and one-sided access
// (Figure 6(a)), open-loop Poisson RPC clients/servers and latency probers
// (Figures 6(b)-(d), 7), and closed-loop one-sided load (Figure 8).
//
// Every task is a SimTask: application CPU (submit, completion poll, copies)
// is charged to the simulated core the task runs on, and waiting is either
// spin-polling (kSpin: burns the core, minimal wake latency) or blocking
// (kBlock: pays scheduler wakeup costs).
#ifndef SRC_APPS_PONY_APPS_H_
#define SRC_APPS_PONY_APPS_H_

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/pony/client.h"
#include "src/pony/pony_engine.h"
#include "src/sim/cpu.h"
#include "src/stats/histogram.h"
#include "src/util/rng.h"

namespace snap {

// Base for Pony app tasks: wake plumbing and notify-arm helpers.
class PonyAppTask : public SimTask {
 public:
  PonyAppTask(std::string name, CpuScheduler* sched, PonyClient* client,
              bool spin);

  void Start() {
    sched_->AddTask(this);
    sched_->Wake(this, /*remote=*/false);
  }

 protected:
  // Arms completion+message notifications that wake this task, then
  // returns the appropriate idle outcome (spin or block).
  StepResult::Next IdleOutcome(CpuCostSink* cost);
  void WakeSelf() { sched_->Wake(this, /*remote=*/true); }

  CpuScheduler* sched_;
  PonyClient* client_;
  bool spin_;
};

// --- Table 1: single-application-thread stream throughput ---------------

class PonyStreamSenderTask : public PonyAppTask {
 public:
  struct Options {
    PonyAddress peer;
    int num_streams = 1;
    int64_t message_bytes = 64 * 1024;
    int max_outstanding = 64;  // commands in flight
    bool spin = false;
  };

  PonyStreamSenderTask(std::string name, CpuScheduler* sched,
                       PonyClient* client, const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  int64_t bytes_submitted() const { return bytes_submitted_; }

 private:
  Options options_;
  std::vector<uint64_t> streams_;
  int outstanding_ = 0;
  size_t next_stream_ = 0;
  int64_t bytes_submitted_ = 0;
};

class PonyStreamReceiverTask : public PonyAppTask {
 public:
  PonyStreamReceiverTask(std::string name, CpuScheduler* sched,
                         PonyClient* client, bool spin = false);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  int64_t bytes_received() const { return bytes_received_; }
  int64_t messages_received() const { return messages_received_; }

 private:
  int64_t bytes_received_ = 0;
  int64_t messages_received_ = 0;
};

// --- Figure 6(a): two-sided ping-pong and one-sided read latency --------

class PonyEchoServerTask : public PonyAppTask {
 public:
  PonyEchoServerTask(std::string name, CpuScheduler* sched,
                     PonyClient* client, bool spin = false);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

 private:
  std::map<PonyAddress, uint64_t> reply_streams_;
};

class PonyPingTask : public PonyAppTask {
 public:
  struct Options {
    PonyAddress peer;
    int64_t message_bytes = 64;
    int iterations = 1000;
    bool spin = false;  // app thread spin-polls the completion queue
    // One-sided mode: latency of a remote Read instead of message RTT.
    bool one_sided = false;
    uint64_t region_id = 0;
    // Minimum time between ping issues (0 = closed loop). A 1 ms interval
    // gives the Figure 7(a) low-QPS prober its idle gaps.
    SimDuration interval = 0;
  };

  PonyPingTask(std::string name, CpuScheduler* sched, PonyClient* client,
               const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  const Histogram& latency() const { return latency_; }
  bool done() const { return completed_ >= options_.iterations; }

 private:
  void IssueNext(SimTime now, CpuCostSink* cost);

  Options options_;
  uint64_t stream_ = 0;
  int completed_ = 0;
  bool in_flight_ = false;
  SimTime sent_at_ = 0;
  SimTime next_issue_ = 0;
  EventHandle issue_timer_;
  Histogram latency_;
};

// --- Figures 6(b)-(d), 7: open-loop Poisson RPC ------------------------

// Serves RPCs: every incoming request message asks for a response of the
// size encoded in its payload; the server sends it back on the same stream.
class PonyRpcServerTask : public PonyAppTask {
 public:
  PonyRpcServerTask(std::string name, CpuScheduler* sched,
                    PonyClient* client, bool spin = false);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  int64_t requests_served() const { return requests_served_; }

 private:
  int64_t requests_served_ = 0;
};

// Open-loop Poisson generator: issues RPCs to random peers at a fixed
// rate, records response latency, counts bidirectional bytes.
class PonyRpcClientTask : public PonyAppTask {
 public:
  struct Options {
    std::vector<PonyAddress> peers;
    double rpcs_per_sec = 100.0;
    int64_t request_bytes = 64;
    int64_t response_bytes = 1 << 20;
    bool spin = false;
    uint64_t rng_seed = 1;
    // Closed-loop cap: arrivals are skipped (not deferred) while this many
    // RPCs are outstanding, and a failed send is not counted as issued.
    // 0 = pure open loop, the historical behavior. QoS overload scenarios
    // use the cap so a 4x-overload aggressor keeps the fabric saturated
    // without queuing unbounded message memory.
    int64_t max_outstanding = 0;
  };

  PonyRpcClientTask(std::string name, CpuScheduler* sched,
                    PonyClient* client, const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  const Histogram& latency() const { return latency_; }
  int64_t bytes_transferred() const { return bytes_transferred_; }
  int64_t rpcs_completed() const { return rpcs_completed_; }
  int64_t rpcs_issued() const { return rpcs_issued_; }

  // Observer invoked at each RPC completion with (completion time, measured
  // latency, response bytes). Pure observation — SLO monitors and tests hang
  // off this; it must never feed back into the workload.
  using CompletionListener =
      std::function<void(SimTime, SimDuration, int64_t)>;
  void set_completion_listener(CompletionListener listener) {
    completion_listener_ = std::move(listener);
  }
  void ResetStats() {
    latency_.Reset();
    bytes_transferred_ = 0;
    rpcs_completed_ = 0;
    rpcs_issued_ = 0;
  }

 private:
  void IssueRpc(SimTime now, CpuCostSink* cost);

  Options options_;
  Rng rng_;
  std::map<PonyAddress, uint64_t> streams_;  // stream per peer
  std::map<uint64_t, SimTime> pending_;      // correlation -> send time
  uint64_t next_corr_ = 1;
  SimTime next_arrival_ = 0;
  EventHandle arrival_timer_;
  Histogram latency_;
  int64_t bytes_transferred_ = 0;
  int64_t rpcs_completed_ = 0;
  int64_t rpcs_issued_ = 0;
  CompletionListener completion_listener_;
};

// --- Figure 8: closed-loop one-sided operation load ---------------------

class OneSidedLoadTask : public PonyAppTask {
 public:
  enum class Mode { kRead, kIndirectRead, kScanAndRead };

  struct Options {
    PonyAddress peer;
    Mode mode = Mode::kIndirectRead;
    uint64_t region_id = 0;
    uint16_t batch = 8;         // indirections per op (Section 5.4)
    int64_t read_bytes = 64;    // bytes per access
    int max_outstanding = 32;
    uint64_t table_entries = 1024;
    bool spin = true;
    uint64_t rng_seed = 7;
  };

  OneSidedLoadTask(std::string name, CpuScheduler* sched, PonyClient* client,
                   const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  // Remote memory accesses completed (indirections count individually).
  int64_t accesses_completed() const { return accesses_completed_; }
  int64_t ops_completed() const { return ops_completed_; }
  const Histogram& latency() const { return latency_; }
  void ResetStats() {
    accesses_completed_ = 0;
    ops_completed_ = 0;
    latency_.Reset();
  }

 private:
  bool IssueOp(SimTime now, CpuCostSink* cost);

  Options options_;
  Rng rng_;
  int outstanding_ = 0;
  int64_t accesses_completed_ = 0;
  int64_t ops_completed_ = 0;
  Histogram latency_;
};

// Encodes/decodes the RPC request payload: [response_bytes u64][corr u64].
std::vector<uint8_t> EncodeRpcRequest(int64_t response_bytes, uint64_t corr);
bool DecodeRpcRequest(const std::vector<uint8_t>& data,
                      int64_t* response_bytes, uint64_t* corr);
std::vector<uint8_t> EncodeRpcResponseHeader(uint64_t corr);
bool DecodeRpcResponseHeader(const std::vector<uint8_t>& data,
                             uint64_t* corr);

}  // namespace snap

#endif  // SRC_APPS_PONY_APPS_H_
