#include "src/apps/pony_apps.h"

#include <algorithm>

#include "src/util/logging.h"

namespace snap {

std::vector<uint8_t> EncodeRpcRequest(int64_t response_bytes,
                                      uint64_t corr) {
  std::vector<uint8_t> data(16);
  std::memcpy(data.data(), &response_bytes, 8);
  std::memcpy(data.data() + 8, &corr, 8);
  return data;
}

bool DecodeRpcRequest(const std::vector<uint8_t>& data,
                      int64_t* response_bytes, uint64_t* corr) {
  if (data.size() < 16) {
    return false;
  }
  std::memcpy(response_bytes, data.data(), 8);
  std::memcpy(corr, data.data() + 8, 8);
  return true;
}

std::vector<uint8_t> EncodeRpcResponseHeader(uint64_t corr) {
  std::vector<uint8_t> data(8);
  std::memcpy(data.data(), &corr, 8);
  return data;
}

bool DecodeRpcResponseHeader(const std::vector<uint8_t>& data,
                             uint64_t* corr) {
  if (data.size() < 8) {
    return false;
  }
  std::memcpy(corr, data.data(), 8);
  return true;
}

// ---------------------------------------------------------------------------
// PonyAppTask
// ---------------------------------------------------------------------------

PonyAppTask::PonyAppTask(std::string name, CpuScheduler* sched,
                         PonyClient* client, bool spin)
    : SimTask(std::move(name), SchedClass::kCfs), sched_(sched),
      client_(client), spin_(spin) {
  set_container("app");
}

StepResult::Next PonyAppTask::IdleOutcome(CpuCostSink* cost) {
  // Arm notifications so the engine wakes us; for spin mode the same
  // mechanism models the poll loop noticing the completion-queue write
  // (the CPU model charges spin time against this core while parked).
  PonyAppTask* self = this;
  client_->ArmCompletionNotify([self] { self->WakeSelf(); }, cost);
  client_->ArmMessageNotify([self] { self->WakeSelf(); }, cost);
  return spin_ ? StepResult::Next::kSpin : StepResult::Next::kBlock;
}

// ---------------------------------------------------------------------------
// Stream throughput (Table 1)
// ---------------------------------------------------------------------------

PonyStreamSenderTask::PonyStreamSenderTask(std::string name,
                                           CpuScheduler* sched,
                                           PonyClient* client,
                                           const Options& options)
    : PonyAppTask(std::move(name), sched, client, options.spin),
      options_(options) {
  for (int i = 0; i < options.num_streams; ++i) {
    streams_.push_back(client_->CreateStream(options.peer));
  }
}

StepResult PonyStreamSenderTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  // Reap send completions.
  while (cost.ns < budget_ns) {
    auto c = client_->PollCompletion(&cost);
    if (!c.has_value()) {
      break;
    }
    --outstanding_;
  }
  // Keep the pipe full.
  bool queue_full = false;
  while (outstanding_ < options_.max_outstanding && cost.ns < budget_ns) {
    uint64_t stream = streams_[next_stream_++ % streams_.size()];
    uint64_t id = client_->SendMessage(options_.peer, stream,
                                       options_.message_bytes, {}, &cost);
    if (id == 0) {
      queue_full = true;
      break;
    }
    ++outstanding_;
    bytes_submitted_ += options_.message_bytes;
  }
  result.cpu_ns = cost.ns;
  if (outstanding_ < options_.max_outstanding && !queue_full) {
    result.next = StepResult::Next::kYield;
  } else {
    result.next = IdleOutcome(&cost);
    result.cpu_ns = cost.ns;
  }
  return result;
}

PonyStreamReceiverTask::PonyStreamReceiverTask(std::string name,
                                               CpuScheduler* sched,
                                               PonyClient* client, bool spin)
    : PonyAppTask(std::move(name), sched, client, spin) {}

StepResult PonyStreamReceiverTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  while (cost.ns < budget_ns) {
    auto msg = client_->PollMessage(&cost);
    if (!msg.has_value()) {
      break;
    }
    bytes_received_ += msg->length;
    ++messages_received_;
  }
  // Drain stray completions (none expected on a pure receiver).
  while (cost.ns < budget_ns) {
    auto c = client_->PollCompletion(&cost);
    if (!c.has_value()) {
      break;
    }
  }
  result.next = IdleOutcome(&cost);
  result.cpu_ns = cost.ns;
  return result;
}

// ---------------------------------------------------------------------------
// Ping-pong (Figure 6(a))
// ---------------------------------------------------------------------------

PonyEchoServerTask::PonyEchoServerTask(std::string name, CpuScheduler* sched,
                                       PonyClient* client, bool spin)
    : PonyAppTask(std::move(name), sched, client, spin) {}

StepResult PonyEchoServerTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  while (cost.ns < budget_ns) {
    auto msg = client_->PollMessage(&cost);
    if (!msg.has_value()) {
      break;
    }
    // Echo back on the same stream (bound at the initiator's engine).
    client_->SendMessage(msg->from, msg->stream_id, msg->length, {}, &cost);
  }
  while (true) {
    auto c = client_->PollCompletion(&cost);
    if (!c.has_value()) {
      break;
    }
  }
  result.next = IdleOutcome(&cost);
  result.cpu_ns = cost.ns;
  return result;
}

PonyPingTask::PonyPingTask(std::string name, CpuScheduler* sched,
                           PonyClient* client, const Options& options)
    : PonyAppTask(std::move(name), sched, client, options.spin),
      options_(options) {
  if (!options.one_sided) {
    stream_ = client_->CreateStream(options.peer);
  }
}

void PonyPingTask::IssueNext(SimTime now, CpuCostSink* cost) {
  if (options_.one_sided) {
    client_->Read(options_.peer, options_.region_id, 0,
                  options_.message_bytes, cost);
  } else {
    client_->SendMessage(options_.peer, stream_, options_.message_bytes, {},
                         cost);
  }
  sent_at_ = now;
  next_issue_ = now + options_.interval;
  in_flight_ = true;
}

StepResult PonyPingTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  if (!in_flight_ && completed_ < options_.iterations &&
      now >= next_issue_) {
    IssueNext(now, &cost);
  }
  while (in_flight_) {
    if (options_.one_sided) {
      auto c = client_->PollCompletion(&cost);
      if (!c.has_value()) {
        break;
      }
      if (c->status != PonyOpStatus::kOk) {
        SNAP_LOG(WARNING) << "one-sided ping failed: "
                          << static_cast<int>(c->status);
      }
      latency_.Record(now - sent_at_);
      in_flight_ = false;
      ++completed_;
    } else {
      // Drain the send completion, then wait for the echoed message.
      auto c = client_->PollCompletion(&cost);
      auto msg = client_->PollMessage(&cost);
      if (msg.has_value()) {
        latency_.Record(now - sent_at_);
        in_flight_ = false;
        ++completed_;
      } else if (!c.has_value()) {
        break;
      }
    }
  }
  if (!in_flight_ && completed_ < options_.iterations &&
      now >= next_issue_) {
    IssueNext(now, &cost);
  }
  result.cpu_ns = cost.ns;
  if (completed_ >= options_.iterations && !in_flight_) {
    result.next = StepResult::Next::kBlock;  // done
    return result;
  }
  if (!in_flight_ && now < next_issue_) {
    // Paced prober waiting for its next issue slot.
    issue_timer_.Cancel();
    issue_timer_ = sched_->WakeAt(this, next_issue_, /*remote=*/false);
  }
  result.next = IdleOutcome(&cost);
  result.cpu_ns = cost.ns;
  return result;
}

// ---------------------------------------------------------------------------
// Open-loop RPC (Figures 6(b)-(d), 7)
// ---------------------------------------------------------------------------

PonyRpcServerTask::PonyRpcServerTask(std::string name, CpuScheduler* sched,
                                     PonyClient* client, bool spin)
    : PonyAppTask(std::move(name), sched, client, spin) {}

StepResult PonyRpcServerTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  while (cost.ns < budget_ns) {
    auto msg = client_->PollMessage(&cost);
    if (!msg.has_value()) {
      break;
    }
    int64_t response_bytes = msg->length;
    uint64_t corr = 0;
    DecodeRpcRequest(msg->data, &response_bytes, &corr);
    client_->SendMessage(msg->from, msg->stream_id, response_bytes,
                         EncodeRpcResponseHeader(corr), &cost);
    ++requests_served_;
  }
  while (true) {
    auto c = client_->PollCompletion(&cost);
    if (!c.has_value()) {
      break;
    }
  }
  result.next = IdleOutcome(&cost);
  result.cpu_ns = cost.ns;
  return result;
}

PonyRpcClientTask::PonyRpcClientTask(std::string name, CpuScheduler* sched,
                                     PonyClient* client,
                                     const Options& options)
    : PonyAppTask(std::move(name), sched, client, options.spin),
      options_(options),
      rng_(options.rng_seed) {
  SNAP_CHECK(!options.peers.empty());
  for (const PonyAddress& peer : options.peers) {
    streams_[peer] = client_->CreateStream(peer);
  }
}

void PonyRpcClientTask::IssueRpc(SimTime now, CpuCostSink* cost) {
  const PonyAddress& peer =
      options_.peers[rng_.NextBounded(options_.peers.size())];
  uint64_t corr = next_corr_++;
  uint64_t op =
      client_->SendMessage(peer, streams_[peer], options_.request_bytes,
                           EncodeRpcRequest(options_.response_bytes, corr),
                           cost);
  if (options_.max_outstanding > 0 && op == 0) {
    return;  // closed-loop mode: a rejected send is not outstanding
  }
  pending_[corr] = now;
  ++rpcs_issued_;
  bytes_transferred_ += options_.request_bytes;
}

StepResult PonyRpcClientTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  // Completions of our own sends: discard.
  while (true) {
    auto c = client_->PollCompletion(&cost);
    if (!c.has_value()) {
      break;
    }
  }
  // Responses.
  while (cost.ns < budget_ns) {
    auto msg = client_->PollMessage(&cost);
    if (!msg.has_value()) {
      break;
    }
    uint64_t corr = 0;
    if (DecodeRpcResponseHeader(msg->data, &corr)) {
      auto it = pending_.find(corr);
      if (it != pending_.end()) {
        latency_.Record(now - it->second);
        if (completion_listener_) {
          completion_listener_(now, now - it->second, msg->length);
        }
        pending_.erase(it);
        ++rpcs_completed_;
      }
    }
    bytes_transferred_ += msg->length;
  }
  // Open-loop arrivals.
  if (next_arrival_ == 0) {
    next_arrival_ = now + static_cast<SimDuration>(
        rng_.NextExponential(1e9 / options_.rpcs_per_sec));
  }
  while (now >= next_arrival_ && cost.ns < budget_ns) {
    if (options_.max_outstanding == 0 ||
        static_cast<int64_t>(pending_.size()) < options_.max_outstanding) {
      IssueRpc(now, &cost);
    }
    next_arrival_ += static_cast<SimDuration>(
        rng_.NextExponential(1e9 / options_.rpcs_per_sec));
  }
  arrival_timer_.Cancel();
  arrival_timer_ = sched_->WakeAt(this, std::max(next_arrival_, now + 1),
                                  /*remote=*/false);
  result.next = IdleOutcome(&cost);
  result.cpu_ns = cost.ns;
  return result;
}

// ---------------------------------------------------------------------------
// One-sided load (Figure 8)
// ---------------------------------------------------------------------------

OneSidedLoadTask::OneSidedLoadTask(std::string name, CpuScheduler* sched,
                                   PonyClient* client,
                                   const Options& options)
    : PonyAppTask(std::move(name), sched, client, options.spin),
      options_(options),
      rng_(options.rng_seed) {}

bool OneSidedLoadTask::IssueOp(SimTime now, CpuCostSink* cost) {
  uint64_t id = 0;
  switch (options_.mode) {
    case Mode::kRead:
      id = client_->Read(options_.peer, options_.region_id,
                         rng_.NextBounded(options_.table_entries) *
                             options_.read_bytes,
                         options_.read_bytes, cost);
      break;
    case Mode::kIndirectRead: {
      uint64_t first = rng_.NextBounded(
          std::max<uint64_t>(1, options_.table_entries - options_.batch));
      id = client_->IndirectRead(options_.peer, options_.region_id, first,
                                 options_.batch, options_.read_bytes, cost);
      break;
    }
    case Mode::kScanAndRead:
      id = client_->ScanAndRead(options_.peer, options_.region_id,
                                rng_.NextBounded(options_.table_entries),
                                options_.read_bytes, cost);
      break;
  }
  if (id == 0) {
    return false;
  }
  ++outstanding_;
  return true;
}

StepResult OneSidedLoadTask::Step(SimTime now, SimDuration budget_ns) {
  CpuCostSink cost;
  StepResult result;
  while (cost.ns < budget_ns) {
    auto c = client_->PollCompletion(&cost);
    if (!c.has_value()) {
      break;
    }
    --outstanding_;
    ++ops_completed_;
    latency_.Record(now - c->submit_time);
    if (c->status == PonyOpStatus::kOk) {
      accesses_completed_ +=
          options_.mode == Mode::kIndirectRead ? options_.batch : 1;
    }
  }
  bool queue_full = false;
  while (outstanding_ < options_.max_outstanding && cost.ns < budget_ns) {
    if (!IssueOp(now, &cost)) {
      queue_full = true;
      break;
    }
  }
  result.cpu_ns = cost.ns;
  if (outstanding_ < options_.max_outstanding && !queue_full) {
    result.next = StepResult::Next::kYield;
    return result;
  }
  result.next = IdleOutcome(&cost);
  result.cpu_ns = cost.ns;
  return result;
}

}  // namespace snap
