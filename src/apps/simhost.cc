#include "src/apps/simhost.h"

#include "src/util/logging.h"

namespace snap {

SimHost::SimHost(Simulator* sim, Fabric* fabric, PonyDirectory* directory,
                 const SimHostOptions& options)
    : sim_(sim), options_(options) {
  nic_ = fabric->AddHost();
  cpu_ = std::make_unique<CpuScheduler>(sim, options.cpu);
  kstack_ = std::make_unique<KernelStack>(sim, cpu_.get(), nic_,
                                          options.kernel);
  if (options.start_kernel_stack) {
    kstack_->Start();
  }
  snap_ = std::make_unique<SnapInstance>(
      "snap-host" + std::to_string(nic_->host_id()), sim, cpu_.get(), nic_);
  auto module = std::make_unique<PonyModule>(sim, nic_, directory,
                                             options.pony, options.timely,
                                             options.app);
  pony_module_ = module.get();
  snap_->RegisterModule(std::move(module));
  default_group_ = snap_->CreateGroup("default", options.group);
}

PonyEngine* SimHost::CreatePonyEngine(const std::string& name) {
  auto result = snap_->CreateEngine("pony", name, "default");
  SNAP_CHECK(result.ok()) << result.status();
  return static_cast<PonyEngine*>(*result);
}

std::unique_ptr<PonyClient> SimHost::CreateClient(
    PonyEngine* engine, const std::string& app_name) {
  return pony_module_->CreateClient(engine, app_name);
}

}  // namespace snap
