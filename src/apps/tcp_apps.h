// Application workload tasks over the kernel TCP stack — the paper's
// baselines: Neper-style stream throughput with 1..200 streams (Table 1),
// TCP_RR ping-pong with optional SO_BUSY_POLL (Figure 6(a)), and open-loop
// Poisson RPC with latency probers (Figures 6(b)-(d), 7).
#ifndef SRC_APPS_TCP_APPS_H_
#define SRC_APPS_TCP_APPS_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kstack.h"
#include "src/sim/cpu.h"
#include "src/stats/histogram.h"
#include "src/util/rng.h"

namespace snap {

class TcpAppTask : public SimTask {
 public:
  TcpAppTask(std::string name, CpuScheduler* sched, KernelStack* kstack);

  void Start() {
    sched_->AddTask(this);
    sched_->Wake(this, /*remote=*/false);
  }

 protected:
  void WakeSelf() { sched_->Wake(this, /*remote=*/true); }
  // Installs readable/writable callbacks that wake this task.
  void WatchSocket(TcpSocket* socket);

  CpuScheduler* sched_;
  KernelStack* kstack_;
};

// --- Table 1: Neper-style stream throughput -----------------------------

class TcpStreamSenderTask : public TcpAppTask {
 public:
  struct Options {
    int dst_host = 1;
    uint16_t port = 5001;
    int num_streams = 1;
    int64_t write_chunk = 128 * 1024;
  };

  TcpStreamSenderTask(std::string name, CpuScheduler* sched,
                      KernelStack* kstack, const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  int64_t bytes_sent() const { return bytes_sent_; }

 private:
  Options options_;
  bool connected_ = false;
  std::vector<TcpSocket*> sockets_;
  size_t cursor_ = 0;
  int64_t bytes_sent_ = 0;
};

class TcpStreamReceiverTask : public TcpAppTask {
 public:
  TcpStreamReceiverTask(std::string name, CpuScheduler* sched,
                        KernelStack* kstack, uint16_t port);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  int64_t bytes_received() const { return bytes_received_; }
  int num_connections() const { return static_cast<int>(sockets_.size()); }

 private:
  std::vector<TcpSocket*> sockets_;
  int64_t bytes_received_ = 0;
};

// --- Figure 6(a): TCP_RR -------------------------------------------------

class TcpRRServerTask : public TcpAppTask {
 public:
  struct Options {
    uint16_t port = 5002;
    int64_t request_bytes = 64;
    int64_t response_bytes = 64;
    bool busy_poll = false;
  };

  TcpRRServerTask(std::string name, CpuScheduler* sched, KernelStack* kstack,
                  const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

 private:
  Options options_;
  std::vector<TcpSocket*> sockets_;
  // Requests received but not yet answered: the response goes out on the
  // next step, after the receive-side processing cost has elapsed.
  std::vector<TcpSocket*> pending_replies_;
};

class TcpRRClientTask : public TcpAppTask {
 public:
  struct Options {
    int dst_host = 1;
    uint16_t port = 5002;
    int64_t request_bytes = 64;
    int64_t response_bytes = 64;
    int iterations = 1000;
    bool busy_poll = false;  // SO_BUSY_POLL: app core polls the NIC
    // Minimum time between requests (0 = closed loop).
    SimDuration interval = 0;
  };

  TcpRRClientTask(std::string name, CpuScheduler* sched, KernelStack* kstack,
                  const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  const Histogram& latency() const { return latency_; }
  bool done() const { return completed_ >= options_.iterations; }

 private:
  Options options_;
  TcpSocket* socket_ = nullptr;
  bool request_outstanding_ = false;
  int64_t resp_remaining_ = 0;
  SimTime sent_at_ = 0;
  SimTime next_issue_ = 0;
  EventHandle issue_timer_;
  int completed_ = 0;
  Histogram latency_;
};

// --- Figures 6(b)-(d), 7: open-loop RPC over TCP ------------------------

// Side channel aligning response sizes with connections (the simulated TCP
// stream carries byte counts, not content). One outstanding RPC per
// connection keeps the mapping unambiguous.
struct TcpRpcContext {
  std::map<uint64_t, int64_t> response_bytes;  // conn id -> pending size
  int64_t request_bytes = 64;
};

class TcpRpcServerTask : public TcpAppTask {
 public:
  TcpRpcServerTask(std::string name, CpuScheduler* sched,
                   KernelStack* kstack, uint16_t port, TcpRpcContext* ctx);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  int64_t requests_served() const { return requests_served_; }

 private:
  struct Conn {
    TcpSocket* socket = nullptr;
    int64_t request_pending = 0;  // unread request bytes
    int64_t write_backlog = 0;    // response bytes not yet accepted
  };

  TcpRpcContext* ctx_;
  std::vector<Conn> conns_;
  int64_t requests_served_ = 0;
};

class TcpRpcClientTask : public TcpAppTask {
 public:
  struct Options {
    std::vector<int> peer_hosts;
    uint16_t port = 5003;
    double rpcs_per_sec = 100.0;
    int64_t response_bytes = 1 << 20;
    int max_conns_per_peer = 4;
    uint64_t rng_seed = 1;
  };

  TcpRpcClientTask(std::string name, CpuScheduler* sched,
                   KernelStack* kstack, TcpRpcContext* ctx,
                   const Options& options);

  StepResult Step(SimTime now, SimDuration budget_ns) override;

  const Histogram& latency() const { return latency_; }
  int64_t bytes_transferred() const { return bytes_transferred_; }
  int64_t rpcs_completed() const { return rpcs_completed_; }
  void ResetStats() {
    latency_.Reset();
    bytes_transferred_ = 0;
    rpcs_completed_ = 0;
  }

 private:
  struct Conn {
    TcpSocket* socket = nullptr;
    bool busy = false;
    bool established = false;
    int64_t request_backlog = 0;  // request bytes not yet accepted
    int64_t resp_remaining = 0;
    SimTime issued_at = 0;        // arrival time (queueing included)
  };

  // Finds a free established connection to `host`, creating one if the
  // pool has room. nullptr when all are busy.
  Conn* AcquireConn(int host, CpuCostSink* cost);
  void StartRpc(Conn* conn, SimTime arrival, CpuCostSink* cost);

  Options options_;
  TcpRpcContext* ctx_;
  Rng rng_;
  std::map<int, std::vector<std::unique_ptr<Conn>>> pools_;
  std::deque<SimTime> deferred_;  // arrivals waiting for a free connection
  SimTime next_arrival_ = 0;
  EventHandle arrival_timer_;
  Histogram latency_;
  int64_t bytes_transferred_ = 0;
  int64_t rpcs_completed_ = 0;
};

}  // namespace snap

#endif  // SRC_APPS_TCP_APPS_H_
