// Model-checked stand-ins for std::atomic and plain payload cells, used by
// instantiating the queue templates with the verify::ModelAtomics policy
// (see src/queue/atomics_policy.h for the policy contract and
// src/verify/model.h for the runtime).
//
// ModelAtomic<T> keeps the full history of stores to the location. A load
// is a scheduling point, and may observe *any* historical store that
// coherence (per-thread monotone observation) and happens-before (vector
// clocks) allow — the operational equivalent of per-thread store buffers
// draining late. Acquire loads that observe release stores join the
// releaser's clock; read-modify-writes always observe the newest store
// (atomicity) and carry release sequences forward. Relaxed stores publish
// no clock, which is precisely how a missing memory_order_release becomes
// detectable: the payload access it was supposed to order turns into a
// vector-clock data race on a ModelCell.
//
// ModelCell<T> is plain storage plus FastTrack-style race detection:
// every Set/Take/Get checks the access against the last write and the
// last reads under the current thread's clock and reports a "data race"
// violation (with a replayable schedule) when they are unordered.
#ifndef SRC_VERIFY_MODEL_ATOMIC_H_
#define SRC_VERIFY_MODEL_ATOMIC_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/logging.h"
#include "src/verify/model.h"

namespace snap {
namespace verify {

namespace internal {

inline bool IsAcquire(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst ||
         order == std::memory_order_consume;
}

inline bool IsRelease(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

// Failure ordering of the single-order compare_exchange form.
inline bool FailureIsAcquire(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst ||
         order == std::memory_order_consume;
}

inline const char* OrderName(std::memory_order order) {
  switch (order) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cns";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "ar";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

template <typename T>
std::string FormatValue(const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    return v ? "true" : "false";
  } else if constexpr (std::is_integral_v<T>) {
    return std::to_string(static_cast<long long>(v));
  } else if constexpr (std::is_enum_v<T>) {
    return std::to_string(static_cast<long long>(
        static_cast<std::underlying_type_t<T>>(v)));
  } else if constexpr (std::is_pointer_v<T>) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%p", static_cast<const void*>(v));
    return buf;
  } else {
    return "<value>";
  }
}

inline Runtime* RequireRuntime(const char* what) {
  Runtime* rt = Current();
  SNAP_CHECK(rt != nullptr)
      << what << " used outside verify::Explore — model-checked types only "
      << "work inside an exploration body";
  return rt;
}

}  // namespace internal

template <typename T>
class ModelAtomic {
 public:
  ModelAtomic() : ModelAtomic(T{}) {}

  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::atomic init.
  ModelAtomic(T init) {
    Runtime* rt = internal::RequireRuntime("ModelAtomic");
    name_ = rt->RegisterLocation('A');
    StoreRec rec;
    rec.value = init;
    rec.writer = rt->current_thread();
    rec.tick = rt->Tick();
    rec.seq = rt->NextStoreSeq();
    rec.has_sync = false;
    observed_[rec.writer] = rec.seq;
    hist_.push_back(std::move(rec));
  }

  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    Runtime* rt = internal::RequireRuntime("ModelAtomic::load");
    rt->SchedulePoint();
    const int me = rt->current_thread();
    rt->Tick();
    VectorClock& clk = rt->CurrentClock();
    // Coherence + happens-before floor: the oldest store this thread may
    // still legally observe.
    uint64_t floor = observed_[me];
    for (const StoreRec& s : hist_) {
      if (s.writer == me || clk.Covers(s.writer, s.tick)) {
        floor = std::max(floor, s.seq);
      }
    }
    size_t first = hist_.size();
    while (first > 0 && hist_[first - 1].seq >= floor) --first;
    const int eligible = static_cast<int>(hist_.size() - first);
    // Branch over which store the load observes (0 = newest, i.e. the
    // sequentially-consistent outcome is explored first).
    int back = eligible > 1 ? rt->ChooseAlternative(eligible) : 0;
    const StoreRec& s = hist_[hist_.size() - 1 - back];
    observed_[me] = s.seq;
    if (internal::IsAcquire(order) && s.has_sync) {
      clk.Join(s.sync);
    }
    if (rt->logging()) {
      rt->LogEvent("t" + std::to_string(me) + " " + name_ + ".load(" +
                   internal::OrderName(order) + ") = " +
                   internal::FormatValue(s.value) +
                   (back > 0 ? " [stale -" + std::to_string(back) + "]" : ""));
    }
    return s.value;
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    Runtime* rt = internal::RequireRuntime("ModelAtomic::store");
    rt->SchedulePoint();
    const int me = rt->current_thread();
    StoreRec rec;
    rec.value = std::move(v);
    rec.writer = me;
    rec.tick = rt->Tick();
    rec.seq = rt->NextStoreSeq();
    rec.has_sync = internal::IsRelease(order);
    if (rec.has_sync) rec.sync = rt->CurrentClock();
    if (rt->logging()) {
      rt->LogEvent("t" + std::to_string(me) + " " + name_ + ".store(" +
                   internal::FormatValue(rec.value) + ", " +
                   internal::OrderName(order) + ")");
    }
    observed_[me] = rec.seq;
    hist_.push_back(std::move(rec));
  }

  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
    Runtime* rt = internal::RequireRuntime("ModelAtomic::exchange");
    rt->SchedulePoint();
    const int me = rt->current_thread();
    const uint32_t tick = rt->Tick();
    VectorClock& clk = rt->CurrentClock();
    // RMW atomicity: always observes the newest store.
    const StoreRec prev = hist_.back();
    observed_[me] = prev.seq;
    if (internal::IsAcquire(order) && prev.has_sync) clk.Join(prev.sync);
    StoreRec rec;
    rec.value = std::move(v);
    rec.writer = me;
    rec.tick = tick;
    rec.seq = rt->NextStoreSeq();
    // An RMW continues the release sequence of the store it replaces.
    rec.has_sync = prev.has_sync || internal::IsRelease(order);
    if (prev.has_sync) rec.sync.Join(prev.sync);
    if (internal::IsRelease(order)) rec.sync.Join(clk);
    if (rt->logging()) {
      rt->LogEvent("t" + std::to_string(me) + " " + name_ + ".exchange(" +
                   internal::FormatValue(rec.value) + ", " +
                   internal::OrderName(order) + ") = " +
                   internal::FormatValue(prev.value));
    }
    observed_[me] = rec.seq;
    hist_.push_back(std::move(rec));
    return prev.value;
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    Runtime* rt =
        internal::RequireRuntime("ModelAtomic::compare_exchange_strong");
    rt->SchedulePoint();
    const int me = rt->current_thread();
    const uint32_t tick = rt->Tick();
    VectorClock& clk = rt->CurrentClock();
    const StoreRec prev = hist_.back();
    observed_[me] = prev.seq;
    if (prev.value == expected) {
      if (internal::IsAcquire(order) && prev.has_sync) clk.Join(prev.sync);
      StoreRec rec;
      rec.value = std::move(desired);
      rec.writer = me;
      rec.tick = tick;
      rec.seq = rt->NextStoreSeq();
      rec.has_sync = prev.has_sync || internal::IsRelease(order);
      if (prev.has_sync) rec.sync.Join(prev.sync);
      if (internal::IsRelease(order)) rec.sync.Join(clk);
      if (rt->logging()) {
        rt->LogEvent("t" + std::to_string(me) + " " + name_ + ".cas(" +
                     internal::FormatValue(expected) + "->" +
                     internal::FormatValue(rec.value) + ", " +
                     internal::OrderName(order) + ") ok");
      }
      observed_[me] = rec.seq;
      hist_.push_back(std::move(rec));
      return true;
    }
    if (internal::FailureIsAcquire(order) && prev.has_sync) {
      clk.Join(prev.sync);
    }
    if (rt->logging()) {
      rt->LogEvent("t" + std::to_string(me) + " " + name_ + ".cas(" +
                   internal::FormatValue(expected) + ", " +
                   internal::OrderName(order) + ") failed, saw " +
                   internal::FormatValue(prev.value));
    }
    expected = prev.value;
    return false;
  }

 private:
  struct StoreRec {
    T value{};
    int writer = 0;
    uint32_t tick = 0;
    uint64_t seq = 0;
    bool has_sync = false;   // carries a release (or release-sequence) clock
    VectorClock sync;
  };

  mutable std::vector<StoreRec> hist_;
  // Newest store seq each thread has observed (coherence floor).
  mutable std::array<uint64_t, kMaxThreads> observed_{};
  std::string name_;
};

// Plain payload slot with vector-clock race detection. Not a scheduling
// point (races are detected from the clocks regardless of interleaving
// granularity), so instrumenting payloads does not blow up the schedule
// tree.
template <typename T>
class ModelCell {
 public:
  ModelCell() {
    Runtime* rt = internal::RequireRuntime("ModelCell");
    name_ = rt->RegisterLocation('C');
  }

  ModelCell(const ModelCell&) = delete;
  ModelCell& operator=(const ModelCell&) = delete;
  // Movable so std::vector can size slot arrays; slots are only moved
  // during container setup, before any concurrent access.
  ModelCell(ModelCell&&) = default;
  ModelCell& operator=(ModelCell&&) = default;

  void Set(T value) {
    WriteCheck("Set");
    value_ = std::move(value);
  }

  T Take() {
    WriteCheck("Take");
    return std::move(value_);
  }

  const T& Get() const {
    ReadCheck("Get");
    return value_;
  }

 private:
  void WriteCheck(const char* op) const {
    Runtime* rt = internal::RequireRuntime("ModelCell");
    const int me = rt->current_thread();
    const VectorClock& clk = rt->CurrentClock();
    if (last_writer_ >= 0 && last_writer_ != me &&
        !clk.Covers(last_writer_, last_write_tick_)) {
      rt->ReportViolation(
          "data race",
          "cell " + name_ + ": " + op + " by t" + std::to_string(me) +
              " is unordered with a write by t" +
              std::to_string(last_writer_) +
              " (missing release/acquire edge)");
    }
    for (int u = 0; u < kMaxThreads; ++u) {
      if (u != me && read_ticks_[u] != 0 &&
          !clk.Covers(u, read_ticks_[u])) {
        rt->ReportViolation(
            "data race",
            "cell " + name_ + ": " + op + " by t" + std::to_string(me) +
                " is unordered with a read by t" + std::to_string(u) +
                " (missing release/acquire edge)");
      }
    }
    last_writer_ = me;
    last_write_tick_ = rt->Tick();
    read_ticks_.fill(0);
    if (rt->logging()) {
      rt->LogEvent("t" + std::to_string(me) + " " + name_ + "." + op);
    }
  }

  void ReadCheck(const char* op) const {
    Runtime* rt = internal::RequireRuntime("ModelCell");
    const int me = rt->current_thread();
    const VectorClock& clk = rt->CurrentClock();
    if (last_writer_ >= 0 && last_writer_ != me &&
        !clk.Covers(last_writer_, last_write_tick_)) {
      rt->ReportViolation(
          "data race",
          "cell " + name_ + ": " + op + " by t" + std::to_string(me) +
              " is unordered with a write by t" +
              std::to_string(last_writer_) +
              " (missing release/acquire edge)");
    }
    read_ticks_[me] = rt->Tick();
    if (rt->logging()) {
      rt->LogEvent("t" + std::to_string(me) + " " + name_ + "." + op);
    }
  }

  T value_{};
  mutable int last_writer_ = -1;
  mutable uint32_t last_write_tick_ = 0;
  mutable std::array<uint32_t, kMaxThreads> read_ticks_{};
  std::string name_;
};

// Atomics policy plugging the model-checked types into the queue
// templates (see src/queue/atomics_policy.h).
struct ModelAtomics {
  template <typename T>
  using Atomic = ModelAtomic<T>;

  template <typename T>
  using Cell = ModelCell<T>;
};

}  // namespace verify
}  // namespace snap

#endif  // SRC_VERIFY_MODEL_ATOMIC_H_
