// Deterministic schedule-exploration harness ("loom-style" model checker)
// for Snap's lock-free queues.
//
// The checker runs a test body many times. Each run executes the body's
// virtual threads *one at a time* under a strict cooperative handoff, with
// a scheduling point before every instrumented atomic operation. At each
// point where more than one continuation is possible — which runnable
// thread executes next, or which store an atomic load is allowed to
// observe under the C++11 memory model — the runtime consults a DFS
// choice stack. After each run it backtracks to the deepest choice point
// with an unexplored alternative, so the full (bounded) interleaving tree
// is enumerated exactly once.
//
// Two bounds keep the tree tractable:
//   - max_preemptions: schedules may contain at most N involuntary
//     context switches (switching away from a runnable thread). This is
//     classic iterative context bounding: almost all real concurrency
//     bugs manifest with <= 2 preemptions.
//   - max_schedules / max_steps_per_schedule: hard safety caps.
//
// Weak memory is modeled operationally: every ModelAtomic location keeps
// the history of stores made to it (a generalized per-thread store
// buffer), and a load may observe *any* store that coherence and
// happens-before (tracked with vector clocks) do not forbid — so the
// checker manufactures the stale reads and reorderings that on real
// hardware only appear under rare timing on weakly-ordered machines.
// Acquire loads that observe release stores join the releaser's vector
// clock, and ModelCell data accesses are race-checked against those
// clocks: a missing release/acquire edge surfaces deterministically as a
// reported data race with a replayable schedule.
//
// Usage:
//   verify::Options opts;
//   verify::Result r = verify::Explore(opts, [] {
//     SpscRing<int, verify::ModelAtomics> ring(2);
//     verify::Spawn([&] { ring.TryPush(1); });
//     verify::Spawn([&] { ring.TryPop(); });
//     verify::JoinAll();   // required before the body's locals die
//   });
//   ASSERT_TRUE(r.ok) << r.message;  // r.trace replays the failure
#ifndef SRC_VERIFY_MODEL_H_
#define SRC_VERIFY_MODEL_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace snap {
namespace verify {

// Maximum virtual threads per exploration (body + spawned).
inline constexpr int kMaxThreads = 8;

// Vector clock over virtual-thread ids.
struct VectorClock {
  std::array<uint32_t, kMaxThreads> c{};

  void Join(const VectorClock& o) {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }
  // True if the event (thread, tick) is visible to (happens-before) a
  // thread holding this clock.
  bool Covers(int thread, uint32_t tick) const { return c[thread] >= tick; }
};

struct Options {
  // Involuntary context switches allowed per schedule (0 = cooperative
  // schedules only). 2 is the classic sweet spot.
  int max_preemptions = 2;
  // Safety caps; exploration reports exhausted=false when one is hit.
  long max_schedules = 2'000'000;
  long max_steps_per_schedule = 100'000;
  // When non-empty, run exactly one schedule: the given Result::trace
  // string from a previous run (counterexample replay).
  std::string replay;
};

struct Result {
  bool ok = true;
  // True when every schedule within the preemption bound was explored.
  bool exhausted = false;
  long schedules = 0;  // executions run
  // On violation: replayable schedule string (feed to Options::replay).
  std::string trace;
  // On violation: human-readable report (kind, location, event log tail).
  std::string message;
};

// Explore all interleavings of `body` within bounds. The body runs once
// per schedule on the calling thread (virtual thread 0); it may call
// Spawn/JoinAll/Yield/ModelAssert and must JoinAll before returning.
Result Explore(const Options& opts, const std::function<void()>& body);
Result Explore(const std::function<void()>& body);

// --- callable from inside an exploration body ----------------------------

// Start a virtual thread. It inherits the spawner's vector clock (the
// fork happens-before edge).
void Spawn(std::function<void()> fn);

// Block virtual thread 0 until all spawned threads finish, then join
// their clocks (the join happens-before edge).
void JoinAll();

// Voluntary scheduling point: deprioritizes the calling thread until
// another runnable thread has run (so bounded spin loops make progress
// without burning the preemption budget).
void Yield();

// Record a violation (with the current schedule trace) if !cond.
void ModelAssert(bool cond, const std::string& msg);

// Thrown to unwind virtual threads when a violation aborts a schedule.
// Caught internally; test bodies should not catch it.
struct BugFound {};

class Runtime;
// The runtime driving the current exploration (null outside Explore).
Runtime* Current();

// --- internals shared with ModelAtomic / ModelCell -----------------------

class Runtime {
 public:
  explicit Runtime(const Options& opts);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // One full exploration (the implementation behind verify::Explore).
  Result Run(const std::function<void()>& body);

  // Scheduling point: may hand execution to a different virtual thread.
  // With yield=true the current thread is deprioritized and the switch is
  // free (no preemption charged).
  void SchedulePoint(bool yield = false);

  // Branch over `n` possible outcomes that are not thread choices (e.g.
  // which store a weak load observes). Returns the index to take.
  int ChooseAlternative(int n);

  // Record a violation and abort the current schedule (throws BugFound).
  [[noreturn]] void ReportViolation(const std::string& kind,
                                    const std::string& detail);

  // Current virtual thread id / clock; Tick() advances the thread's own
  // clock component and returns the new tick (an event timestamp).
  int current_thread() const { return active_; }
  VectorClock& clock(int thread) { return threads_[thread].clock; }
  VectorClock& CurrentClock() { return threads_[active_].clock; }
  uint32_t Tick();

  // Monotonic id for stores (coherence / modification order).
  uint64_t NextStoreSeq() { return ++store_seq_; }

  // Event logging is off during bulk exploration (string building would
  // dominate checker throughput); the violating schedule is deterministic,
  // so it is re-run once with logging on to enrich the counterexample.
  bool logging() const { return events_enabled_; }

  // Per-execution location naming: "A0", "A1", ... in construction order.
  std::string RegisterLocation(char kind);

  void LogEvent(std::string ev);

  // Implementation detail of Spawn/JoinAll/Yield/ModelAssert.
  void DoSpawn(std::function<void()> fn);
  void DoJoinAll();
  void DoAssert(bool cond, const std::string& msg);

 private:
  // Per-schedule logical state of a virtual thread.
  struct ThreadState {
    VectorClock clock;
    bool finished = false;
    bool yielded = false;
    bool blocked_join = false;   // vthread 0 waiting in JoinAll
  };

  // Persistent OS worker backing a virtual-thread slot. Workers are
  // created on first use and reused across every schedule of the
  // exploration — spawning fresh std::threads per schedule would dominate
  // the checker's runtime (and crawl under TSan in CI).
  struct Worker {
    std::thread os;
    std::function<void()> fn;
    bool has_work = false;
  };

  // DFS choice stack entry: at this point `num` alternatives existed and
  // `chosen` was taken.
  struct Choice {
    int chosen;
    int num;
  };

  // Consume the next choice (replaying the stack prefix, then extending
  // it with first-alternative 0).
  int Choose(int n);
  // Advance the stack to the next unexplored schedule; false = done.
  bool NextSchedule();
  std::string TraceString() const;
  void ParseReplay(const std::string& trace);

  // Pick the next thread to run. `current_runnable` is false when the
  // caller is finishing or blocking. Returns the chosen thread id, or -1
  // if nothing is runnable (deadlock — reported).
  int PickNext(bool current_runnable, bool voluntary);
  // Hand execution to `next` and block until rescheduled (or aborted).
  void SwitchTo(int next, std::unique_lock<std::mutex>& lk);

  void RunOneSchedule(const std::function<void()>& body);
  void WorkerMain(int id);
  void FinishThread(int id);
  void ResetExecutionState();

  const Options opts_;

  // Persistent across schedules within one exploration:
  std::vector<Choice> stack_;
  size_t stack_pos_ = 0;
  bool replay_mode_ = false;
  bool events_enabled_ = false;

  // Violation state (first violation wins; sticky across the abort).
  bool violated_ = false;
  std::string violation_message_;
  std::string violation_trace_;

  // Per-schedule execution state:
  std::vector<ThreadState> threads_;
  std::array<Worker, kMaxThreads> workers_;  // persistent, index = thread id
  std::mutex mu_;
  // One condvar per virtual-thread slot (slot 0 = the body): a handoff
  // wakes exactly the target thread instead of every parked worker, which
  // matters when the checker runs hundreds of thousands of schedules.
  std::array<std::condition_variable, kMaxThreads> cv_;
  // Wake every parked/waiting thread (abort, shutdown).
  void WakeAll();
  int active_ = 0;
  bool abort_ = false;
  bool shutdown_ = false;
  long steps_ = 0;
  int preemptions_used_ = 0;
  uint64_t store_seq_ = 0;
  int next_loc_id_ = 0;
  std::vector<std::string> events_;
};

}  // namespace verify
}  // namespace snap

#endif  // SRC_VERIFY_MODEL_H_
