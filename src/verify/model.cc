#include "src/verify/model.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/util/logging.h"

namespace snap {
namespace verify {

namespace {
thread_local Runtime* tls_runtime = nullptr;
}  // namespace

Runtime* Current() { return tls_runtime; }

// --- free-function facade -------------------------------------------------

Result Explore(const Options& opts, const std::function<void()>& body) {
  Runtime rt(opts);
  return rt.Run(body);
}

Result Explore(const std::function<void()>& body) {
  return Explore(Options{}, body);
}

void Spawn(std::function<void()> fn) {
  SNAP_CHECK(Current() != nullptr)
      << "verify::Spawn called outside verify::Explore";
  Current()->DoSpawn(std::move(fn));
}

void JoinAll() {
  SNAP_CHECK(Current() != nullptr)
      << "verify::JoinAll called outside verify::Explore";
  Current()->DoJoinAll();
}

void Yield() {
  SNAP_CHECK(Current() != nullptr)
      << "verify::Yield called outside verify::Explore";
  Current()->SchedulePoint(/*yield=*/true);
}

void ModelAssert(bool cond, const std::string& msg) {
  SNAP_CHECK(Current() != nullptr)
      << "verify::ModelAssert called outside verify::Explore";
  Current()->DoAssert(cond, msg);
}

// --- Runtime: exploration driver ------------------------------------------

Runtime::Runtime(const Options& opts) : opts_(opts) {}

void Runtime::WakeAll() {
  for (auto& cv : cv_) cv.notify_all();
}

Runtime::~Runtime() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    shutdown_ = true;
    WakeAll();
  }
  for (Worker& w : workers_) {
    if (w.os.joinable()) w.os.join();
  }
}

Result Runtime::Run(const std::function<void()>& body) {
  Result result;
  if (!opts_.replay.empty()) {
    ParseReplay(opts_.replay);
    replay_mode_ = true;
    events_enabled_ = true;
    RunOneSchedule(body);
    result.schedules = 1;
    result.exhausted = false;
    result.ok = !violated_;
    result.trace = violation_trace_;
    result.message = violation_message_;
    return result;
  }
  for (;;) {
    ++result.schedules;
    RunOneSchedule(body);
    if (violated_) {
      // Re-run the violating schedule (the DFS stack still encodes it)
      // with event logging enabled so the report shows what happened.
      const std::string trace = violation_trace_;
      const std::string message = violation_message_;
      violated_ = false;
      violation_message_.clear();
      events_enabled_ = true;
      RunOneSchedule(body);
      events_enabled_ = false;
      result.ok = false;
      if (violated_ && violation_trace_ == trace) {
        result.trace = violation_trace_;
        result.message = violation_message_;
      } else {
        // Should not happen (schedules are deterministic); fall back to
        // the original eventless report.
        result.trace = trace;
        result.message = message;
        violated_ = true;
      }
      return result;
    }
    if (result.schedules >= opts_.max_schedules) {
      result.ok = true;
      result.exhausted = false;
      return result;
    }
    if (!NextSchedule()) {
      result.ok = true;
      result.exhausted = true;
      return result;
    }
  }
}

void Runtime::ResetExecutionState() {
  threads_.clear();
  threads_.reserve(kMaxThreads);
  threads_.emplace_back();  // virtual thread 0 = the body
  active_ = 0;
  abort_ = false;
  steps_ = 0;
  preemptions_used_ = 0;
  store_seq_ = 0;
  next_loc_id_ = 0;
  events_.clear();
  stack_pos_ = 0;
}

void Runtime::RunOneSchedule(const std::function<void()>& body) {
  ResetExecutionState();
  tls_runtime = this;
  try {
    body();
  } catch (const BugFound&) {
    // Violation already recorded; fall through to release the others.
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    bool all_done = true;
    for (size_t i = 1; i < threads_.size(); ++i) {
      if (!threads_[i].finished) all_done = false;
    }
    if (!all_done && !violated_) {
      violated_ = true;
      violation_trace_ = TraceString();
      violation_message_ =
          "exploration body returned while spawned virtual threads were "
          "still live; call verify::JoinAll() before the body's locals are "
          "destroyed";
    }
    abort_ = true;
    WakeAll();
    // Wait for every worker to park (finished + back in its wait loop)
    // before the body's locals are torn down or the next schedule starts.
    cv_[0].wait(lk, [&] {
      for (size_t i = 1; i < threads_.size(); ++i) {
        if (!threads_[i].finished) return false;
      }
      return true;
    });
  }
  tls_runtime = nullptr;
}

// --- DFS choice stack -----------------------------------------------------

int Runtime::Choose(int n) {
  if (n <= 1) return 0;
  if (stack_pos_ < stack_.size()) {
    const Choice& c = stack_[stack_pos_++];
    return std::min(c.chosen, n - 1);
  }
  stack_.push_back(Choice{0, n});
  stack_pos_ = stack_.size();
  return 0;
}

int Runtime::ChooseAlternative(int n) { return Choose(n); }

bool Runtime::NextSchedule() {
  while (!stack_.empty()) {
    Choice& top = stack_.back();
    if (top.chosen + 1 < top.num) {
      ++top.chosen;
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

std::string Runtime::TraceString() const {
  std::ostringstream os;
  for (size_t i = 0; i < stack_pos_ && i < stack_.size(); ++i) {
    if (i > 0) os << '.';
    os << stack_[i].chosen;
  }
  return os.str();
}

void Runtime::ParseReplay(const std::string& trace) {
  stack_.clear();
  std::istringstream is(trace);
  std::string tok;
  while (std::getline(is, tok, '.')) {
    if (tok.empty()) continue;
    stack_.push_back(Choice{std::atoi(tok.c_str()), 1 << 30});
  }
}

// --- scheduling ------------------------------------------------------------

uint32_t Runtime::Tick() {
  VectorClock& clk = threads_[active_].clock;
  return ++clk.c[active_];
}

std::string Runtime::RegisterLocation(char kind) {
  return std::string(1, kind) + std::to_string(next_loc_id_++);
}

void Runtime::LogEvent(std::string ev) {
  if (!events_enabled_) return;
  if (events_.size() >= 8192) {
    events_.erase(events_.begin(), events_.begin() + 4096);
  }
  events_.push_back(std::move(ev));
}

int Runtime::PickNext(bool current_runnable, bool voluntary) {
  const int me = active_;
  auto runnable = [&](int t) {
    const ThreadState& ts = threads_[t];
    return !ts.finished && !ts.blocked_join;
  };
  std::vector<int> all;
  for (int t = 0; t < static_cast<int>(threads_.size()); ++t) {
    if (!runnable(t)) continue;
    if (t == me && !current_runnable) continue;
    all.push_back(t);
  }
  if (all.empty()) return -1;
  bool have_fresh = false;
  for (int t : all) {
    if (!threads_[t].yielded) have_fresh = true;
  }
  std::vector<int> cands;
  // Current-thread-first ordering: DFS explores "keep running" before any
  // context switch, so the simplest schedules come first.
  if (current_runnable &&
      (!threads_[me].yielded || !have_fresh)) {
    cands.push_back(me);
  }
  for (int t : all) {
    if (t == me) continue;
    if (threads_[t].yielded && have_fresh) continue;
    cands.push_back(t);
  }
  if (cands.empty()) {
    // Everyone else is deprioritized and the current thread yielded: let
    // the yielded set compete.
    cands = all;
  }
  if (cands.size() == 1) return cands[0];
  // Iterative context bounding: once the budget is spent, an involuntary
  // switch away from a runnable thread is no longer offered.
  if (current_runnable && !voluntary &&
      preemptions_used_ >= opts_.max_preemptions) {
    return me;
  }
  int next = cands[Choose(static_cast<int>(cands.size()))];
  if (current_runnable && !voluntary && next != me) {
    ++preemptions_used_;
  }
  return next;
}

void Runtime::SwitchTo(int next, std::unique_lock<std::mutex>& lk) {
  const int me = active_;
  active_ = next;
  threads_[next].yielded = false;
  cv_[next].notify_one();
  cv_[me].wait(lk, [&] { return active_ == me || abort_; });
  if (abort_) throw BugFound{};
  threads_[me].yielded = false;
}

void Runtime::SchedulePoint(bool yield) {
  std::unique_lock<std::mutex> lk(mu_);
  if (abort_) throw BugFound{};
  if (++steps_ > opts_.max_steps_per_schedule) {
    lk.unlock();
    ReportViolation(
        "step budget exceeded",
        "a schedule ran past max_steps_per_schedule; this usually means an "
        "unbounded spin loop (use bounded retries with verify::Yield)");
  }
  const int me = active_;
  if (yield) threads_[me].yielded = true;
  int next = PickNext(/*current_runnable=*/true, /*voluntary=*/yield);
  SNAP_CHECK_GE(next, 0);
  if (next != me) {
    SwitchTo(next, lk);
  } else {
    threads_[me].yielded = false;
  }
}

void Runtime::DoSpawn(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    int id = static_cast<int>(threads_.size());
    if (id >= kMaxThreads) {
      lk.unlock();
      ReportViolation("too many threads",
                      "verify supports at most " +
                          std::to_string(kMaxThreads - 1) +
                          " spawned virtual threads");
    }
    threads_.emplace_back();
    threads_.back().clock = threads_[active_].clock;  // fork h-b edge
    Worker& w = workers_[id];
    w.fn = std::move(fn);
    w.has_work = true;
    if (!w.os.joinable()) {
      w.os = std::thread(&Runtime::WorkerMain, this, id);
    }
    // No wake needed: the worker only runs once a handoff makes it active,
    // and SwitchTo/FinishThread notify its condvar then.
  }
  // The new thread is runnable: branch over whether it runs right away.
  SchedulePoint();
}

void Runtime::WorkerMain(int id) {
  tls_runtime = this;
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_[id].wait(lk, [&] {
        return shutdown_ ||
               (workers_[id].has_work && (active_ == id || abort_));
      });
      if (shutdown_) return;
      workers_[id].has_work = false;
      if (abort_) {
        threads_[id].finished = true;
        cv_[0].notify_one();  // RunOneSchedule waits for all-parked
        continue;
      }
      fn = std::move(workers_[id].fn);
    }
    try {
      fn();
    } catch (const BugFound&) {
      // Recorded (or triggered) elsewhere; just unwind this thread.
    }
    // Destroy the closure before parking so capture destructors never run
    // concurrently with the next schedule.
    fn = nullptr;
    FinishThread(id);
  }
}

void Runtime::FinishThread(int id) {
  std::unique_lock<std::mutex> lk(mu_);
  threads_[id].finished = true;
  if (abort_) {
    cv_[0].notify_one();  // RunOneSchedule waits for all-parked
    return;
  }
  bool all_done = true;
  for (size_t i = 1; i < threads_.size(); ++i) {
    if (!threads_[i].finished) all_done = false;
  }
  if (all_done && threads_[0].blocked_join) {
    threads_[0].blocked_join = false;
  }
  int next = PickNext(/*current_runnable=*/false, /*voluntary=*/false);
  if (next < 0) {
    // Structurally unreachable (the body can only block in JoinAll, which
    // is released above); fail safe instead of hanging.
    if (!violated_) {
      violated_ = true;
      violation_trace_ = TraceString();
      violation_message_ = "deadlock: no runnable virtual thread";
    }
    abort_ = true;
    WakeAll();
    return;
  }
  active_ = next;
  threads_[next].yielded = false;
  cv_[next].notify_one();
}

void Runtime::DoJoinAll() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (abort_) throw BugFound{};
    bool all_done = true;
    for (size_t i = 1; i < threads_.size(); ++i) {
      if (!threads_[i].finished) all_done = false;
    }
    if (all_done) break;
    threads_[0].blocked_join = true;
    int next = PickNext(/*current_runnable=*/false, /*voluntary=*/false);
    SNAP_CHECK_GE(next, 0);
    SwitchTo(next, lk);
  }
  threads_[0].blocked_join = false;
  // Join happens-before edge from every finished child.
  for (size_t i = 1; i < threads_.size(); ++i) {
    threads_[0].clock.Join(threads_[i].clock);
  }
}

void Runtime::DoAssert(bool cond, const std::string& msg) {
  if (cond) return;
  ReportViolation("assertion failed", msg);
}

void Runtime::ReportViolation(const std::string& kind,
                              const std::string& detail) {
  std::ostringstream os;
  os << kind << ": " << detail << "\n  schedule: \"" << TraceString()
     << "\" (replay via verify::Options::replay)\n  last events:";
  size_t start = events_.size() > 40 ? events_.size() - 40 : 0;
  for (size_t i = start; i < events_.size(); ++i) {
    os << "\n    " << events_[i];
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!violated_) {
      violated_ = true;
      violation_trace_ = TraceString();
      violation_message_ = os.str();
    }
    abort_ = true;
    WakeAll();
  }
  throw BugFound{};
}

}  // namespace verify
}  // namespace snap
