// Baseline kernel TCP/IP stack cost model (the paper's comparison point).
//
// This models the Linux TCP data path at the granularity the paper's
// evaluation is sensitive to:
//  - system-call and copy costs on the application side,
//  - softirq RX processing on a kernel thread woken by NIC interrupts
//    (whose CPU is stolen from whatever runs on that core — the accounting
//    problem Section 2.5 cites),
//  - window-based flow control (socket buffers), NewReno-style congestion
//    control with fast retransmit and RTO,
//  - per-flow cache pressure when many streams are active (Table 1's
//    200-stream degradation),
//  - SO_BUSY_POLL-style busy polling (Figure 6(a)'s 18us TCP_RR point).
//
// Applications are SimTasks; every socket call returns the CPU cost the
// caller must charge to its current step, so all kernel time lands on the
// right simulated core.
#ifndef SRC_KERNEL_KSTACK_H_
#define SRC_KERNEL_KSTACK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/net/fabric.h"
#include "src/net/nic.h"
#include "src/sim/cpu.h"
#include "src/sim/model_params.h"
#include "src/util/status.h"

namespace snap {

class KernelStack;

// Accumulates CPU cost to charge to the calling task's current step.
struct CpuCostSink {
  SimDuration ns = 0;
  void Charge(SimDuration d) { ns += d; }
};

// A TCP socket endpoint. Non-blocking API: Send/Recv move what they can and
// return the CPU cost; readable/writable callbacks provide edge-triggered
// wakeups (epoll-style).
class TcpSocket {
 public:
  enum class State { kConnecting, kEstablished, kClosed };

  // Sends up to `bytes` (synthetic payload). Returns bytes accepted into
  // the send buffer (0 if full).
  int64_t Send(int64_t bytes, CpuCostSink* cost);

  // Receives up to `max_bytes` from the receive buffer.
  int64_t Recv(int64_t max_bytes, CpuCostSink* cost);

  int64_t readable_bytes() const { return rx_available_; }
  int64_t send_space() const;
  State state() const { return state_; }
  uint64_t id() const { return conn_id_; }

  // Edge-triggered: invoked when the socket becomes readable / writable /
  // established. Invoked from kernel (softirq) context.
  void SetReadableCallback(std::function<void()> cb) {
    readable_cb_ = std::move(cb);
  }
  void SetWritableCallback(std::function<void()> cb) {
    writable_cb_ = std::move(cb);
  }
  void SetEstablishedCallback(std::function<void()> cb) {
    established_cb_ = std::move(cb);
  }

  struct Stats {
    int64_t bytes_sent = 0;      // accepted from the application
    int64_t bytes_delivered = 0; // handed to the application
    int64_t retransmits = 0;
    int64_t rto_events = 0;
    int64_t fast_retransmits = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class KernelStack;

  TcpSocket(KernelStack* stack, uint64_t conn_id, int peer_host);

  KernelStack* stack_;
  uint64_t conn_id_;
  int peer_host_;
  State state_ = State::kConnecting;

  // Sender state (byte sequences).
  int64_t snd_una_ = 0;    // oldest unacknowledged
  int64_t snd_nxt_ = 0;    // next to transmit
  int64_t write_seq_ = 0;  // end of data the app has written
  int64_t cwnd_ = 0;
  int64_t ssthresh_ = 0;
  int64_t peer_rwnd_ = 0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  int64_t recovery_end_ = 0;
  EventHandle rto_timer_;

  // Receiver state.
  int64_t rcv_nxt_ = 0;
  int64_t rx_available_ = 0;  // contiguous bytes ready for the app
  // Out-of-order segments: (start, end) byte ranges.
  std::map<int64_t, int64_t> ooo_;
  int64_t last_window_update_ = 0;

  std::function<void()> readable_cb_;
  std::function<void()> writable_cb_;
  std::function<void()> established_cb_;
  bool ack_pending_ = false;
  Stats stats_;
};

// Per-host kernel stack instance.
class KernelStack {
 public:
  using AcceptCallback = std::function<void(TcpSocket*)>;

  KernelStack(Simulator* sim, CpuScheduler* sched, Nic* nic,
              const KernelStackParams& params);
  ~KernelStack();

  // Starts the softirq processing task (call once after construction).
  void Start();

  // Egress divert hook (the Snap kernel packet-injection driver,
  // Section 2): when set, outgoing packets are handed to the hook instead
  // of the NIC. The hook returns false to drop (full ring == full qdisc).
  void SetEgressDivert(std::function<bool(PacketPtr)> hook) {
    egress_divert_ = std::move(hook);
  }

  // Listens on `port`; `cb` runs (kernel context) for each accepted socket.
  void Listen(uint16_t port, AcceptCallback cb);

  // Opens a connection; the returned socket completes the handshake
  // asynchronously (SetEstablishedCallback to observe).
  TcpSocket* Connect(int dst_host, uint16_t port, CpuCostSink* cost);

  // SO_BUSY_POLL: the application polls the NIC queue directly, processing
  // packets inline and bypassing interrupt + softirq wakeup. Returns the
  // number of packets processed.
  int BusyPollRx(CpuCostSink* cost);

  const KernelStackParams& params() const { return params_; }
  int host_id() const { return nic_->host_id(); }
  SimTask* softirq_task();

  // Total CPU consumed by kernel-context processing (softirq task).
  int64_t SoftirqCpuNs() const;

 private:
  friend class TcpSocket;

  class SoftirqTask;

  // Shared RX processing used by both softirq and busy-poll paths.
  // Returns the cost of processing one packet.
  void ProcessRxPacket(PacketPtr packet, CpuCostSink* cost);
  void HandleData(TcpSocket* sock, const TcpSegment& seg, int32_t payload,
                  CpuCostSink* cost);
  void HandleAck(TcpSocket* sock, const TcpSegment& seg, CpuCostSink* cost);
  // Emits data packets while window and TX ring allow.
  void TryTransmit(TcpSocket* sock, CpuCostSink* cost);
  void SendAck(TcpSocket* sock, CpuCostSink* cost);
  void SendControl(TcpSocket* sock, bool syn, bool ack, uint16_t dst_port,
                   CpuCostSink* cost);
  // All kernel egress funnels through here (NIC or the divert hook).
  bool Output(PacketPtr packet);
  void ArmRto(TcpSocket* sock);
  void OnRto(TcpSocket* sock);
  void FlushPendingAcks(CpuCostSink* cost);
  int64_t EffectiveRwnd(const TcpSocket* sock) const;
  SimDuration PerPacketSoftirqCost() const;
  // 0..1 cache-pressure ramp with active flow count.
  double ColdFactor() const;
  uint64_t NextConnId();

  Simulator* sim_;
  CpuScheduler* sched_;
  Nic* nic_;
  KernelStackParams params_;
  std::unique_ptr<SoftirqTask> softirq_;
  std::map<uint64_t, std::unique_ptr<TcpSocket>> conns_;
  std::map<uint16_t, AcceptCallback> listeners_;
  std::function<bool(PacketPtr)> egress_divert_;
  std::vector<TcpSocket*> ack_batch_;  // acks coalesced within one RX batch
  std::deque<TcpSocket*> rto_work_;    // retransmissions deferred to softirq
  uint64_t next_conn_ = 1;
  int active_flows_ = 0;
};

}  // namespace snap

#endif  // SRC_KERNEL_KSTACK_H_
