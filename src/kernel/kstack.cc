#include "src/kernel/kstack.h"

#include <algorithm>

#include "src/util/logging.h"

namespace snap {

namespace {

constexpr int kTcpHeaderBytes = 66;   // eth + ip + tcp + timestamps
constexpr SimDuration kTcpRto = 5 * kMsec;
constexpr int64_t kRxSlackBytes = 64 * 1024;

}  // namespace

// --------------------------------------------------------------------------
// TcpSocket
// --------------------------------------------------------------------------

TcpSocket::TcpSocket(KernelStack* stack, uint64_t conn_id, int peer_host)
    : stack_(stack), conn_id_(conn_id), peer_host_(peer_host) {
  const auto& p = stack->params();
  cwnd_ = 10 * p.mss_bytes;
  ssthresh_ = INT64_MAX / 2;
  peer_rwnd_ = p.socket_buffer_bytes;
}

int64_t TcpSocket::send_space() const {
  int64_t used = write_seq_ - snd_una_;
  return std::max<int64_t>(
      0, stack_->params().socket_buffer_bytes - used);
}

int64_t TcpSocket::Send(int64_t bytes, CpuCostSink* cost) {
  const auto& p = stack_->params();
  cost->Charge(p.syscall_cost);
  if (state_ != State::kEstablished) {
    return 0;
  }
  int64_t accepted = std::min(bytes, send_space());
  if (accepted <= 0) {
    return 0;
  }
  // Copy user data into kernel socket buffer.
  cost->Charge(static_cast<SimDuration>(p.copy_ns_per_byte *
                                        static_cast<double>(accepted)));
  write_seq_ += accepted;
  stats_.bytes_sent += accepted;
  stack_->TryTransmit(this, cost);
  return accepted;
}

int64_t TcpSocket::Recv(int64_t max_bytes, CpuCostSink* cost) {
  const auto& p = stack_->params();
  cost->Charge(p.syscall_cost);
  cost->Charge(static_cast<SimDuration>(
      stack_->ColdFactor() * static_cast<double>(p.recv_cold_penalty)));
  int64_t taken = std::min(max_bytes, rx_available_);
  if (taken <= 0) {
    return 0;
  }
  cost->Charge(static_cast<SimDuration>(p.copy_ns_per_byte *
                                        static_cast<double>(taken)));
  rx_available_ -= taken;
  stats_.bytes_delivered += taken;
  // Window update when substantial space opens up.
  int64_t rwnd = p.socket_buffer_bytes - rx_available_;
  if (rwnd - last_window_update_ >= p.socket_buffer_bytes / 2) {
    stack_->SendAck(this, cost);
  }
  return taken;
}

// --------------------------------------------------------------------------
// Softirq task
// --------------------------------------------------------------------------

class KernelStack::SoftirqTask : public SimTask {
 public:
  SoftirqTask(KernelStack* stack, const std::string& name)
      : SimTask(name, SchedClass::kMicroQuanta), stack_(stack) {
    set_container("kernel");
    // Softirq processing is not bandwidth-capped.
    sched.mq_runtime = 1 * kMsec;
    sched.mq_period = 1 * kMsec;
  }

  StepResult Step(SimTime now, SimDuration budget_ns) override {
    CpuCostSink cost;
    bool any = false;
    // Deferred retransmission work (RTO fired).
    while (!stack_->rto_work_.empty() && cost.ns < budget_ns) {
      TcpSocket* sock = stack_->rto_work_.front();
      stack_->rto_work_.pop_front();
      cost.Charge(stack_->params_.tx_per_packet);
      stack_->TryTransmit(sock, &cost);
      stack_->ArmRto(sock);
      any = true;
    }
    RxQueue* q = stack_->nic_->default_queue();
    while (cost.ns < budget_ns) {
      PacketPtr p = q->Poll();
      if (p == nullptr) {
        break;
      }
      any = true;
      stack_->ProcessRxPacket(std::move(p), &cost);
    }
    stack_->FlushPendingAcks(&cost);
    StepResult result;
    result.cpu_ns = cost.ns;
    if (q->pending() > 0 || !stack_->rto_work_.empty()) {
      result.next = StepResult::Next::kYield;
    } else {
      // Nothing left: re-enable interrupts and sleep. Rearm() fires
      // immediately if a packet raced in, which sets wake_pending.
      q->Rearm();
      result.next = StepResult::Next::kBlock;
    }
    if (!any && result.cpu_ns == 0) {
      result.next = StepResult::Next::kBlock;
    }
    return result;
  }

 private:
  KernelStack* stack_;
};

// --------------------------------------------------------------------------
// KernelStack
// --------------------------------------------------------------------------

KernelStack::KernelStack(Simulator* sim, CpuScheduler* sched, Nic* nic,
                         const KernelStackParams& params)
    : sim_(sim), sched_(sched), nic_(nic), params_(params) {}

KernelStack::~KernelStack() = default;

void KernelStack::Start() {
  softirq_ = std::make_unique<SoftirqTask>(
      this, "softirq/host" + std::to_string(host_id()));
  sched_->AddTask(softirq_.get());
  if (params_.busy_poll) {
    nic_->default_queue()->DisableInterrupts();
  } else {
    // RSS steers the IRQ to the softirq thread's own core, so the wakeup
    // is local (no IPI).
    nic_->default_queue()->SetInterruptHandler(
        [this] { sched_->Wake(softirq_.get(), /*remote=*/false); });
  }
}

SimTask* KernelStack::softirq_task() { return softirq_.get(); }

int64_t KernelStack::SoftirqCpuNs() const {
  return softirq_ == nullptr ? 0 : softirq_->cpu_consumed_ns();
}

void KernelStack::Listen(uint16_t port, AcceptCallback cb) {
  listeners_[port] = std::move(cb);
}

uint64_t KernelStack::NextConnId() {
  return (static_cast<uint64_t>(host_id()) << 32) | next_conn_++;
}

TcpSocket* KernelStack::Connect(int dst_host, uint16_t port,
                                CpuCostSink* cost) {
  cost->Charge(params_.syscall_cost);
  uint64_t id = NextConnId();
  auto sock = std::unique_ptr<TcpSocket>(new TcpSocket(this, id, dst_host));
  TcpSocket* raw = sock.get();
  conns_[id] = std::move(sock);
  ++active_flows_;
  SendControl(raw, /*syn=*/true, /*ack=*/false, port, cost);
  return raw;
}

bool KernelStack::Output(PacketPtr packet) {
  if (egress_divert_) {
    return egress_divert_(std::move(packet));
  }
  return nic_->Transmit(std::move(packet));
}

void KernelStack::SendControl(TcpSocket* sock, bool syn, bool ack,
                              uint16_t dst_port, CpuCostSink* cost) {
  auto p = std::make_unique<Packet>();
  p->src_host = host_id();
  p->dst_host = sock->peer_host_;
  p->proto = WireProtocol::kTcp;
  p->tcp.conn_id = sock->conn_id_;
  p->tcp.dst_port = dst_port;
  p->tcp.syn = syn;
  p->tcp.is_ack = ack;
  p->tcp.ack = sock->rcv_nxt_;
  p->tcp.window = static_cast<uint32_t>(EffectiveRwnd(sock));
  p->wire_bytes = kTcpHeaderBytes;
  cost->Charge(params_.tx_per_packet);
  Output(std::move(p));
}

int64_t KernelStack::EffectiveRwnd(const TcpSocket* sock) const {
  return std::max<int64_t>(
      0, params_.socket_buffer_bytes - sock->rx_available_);
}

double KernelStack::ColdFactor() const {
  if (active_flows_ <= params_.cold_flow_threshold) {
    return 0;
  }
  double span = static_cast<double>(params_.cold_flow_saturation -
                                    params_.cold_flow_threshold);
  return std::min(
      1.0, static_cast<double>(active_flows_ -
                               params_.cold_flow_threshold) / span);
}

SimDuration KernelStack::PerPacketSoftirqCost() const {
  return params_.softirq_per_packet +
         static_cast<SimDuration>(
             ColdFactor() *
             static_cast<double>(params_.softirq_cold_penalty));
}

void KernelStack::TryTransmit(TcpSocket* sock, CpuCostSink* cost) {
  if (sock->state_ != TcpSocket::State::kEstablished) {
    return;
  }
  int64_t window = std::min(sock->cwnd_, sock->peer_rwnd_);
  while (sock->snd_nxt_ < sock->write_seq_ &&
         sock->snd_nxt_ - sock->snd_una_ < window &&
         nic_->TxSlotsAvailable() > 0) {
    int64_t payload = std::min<int64_t>(
        params_.mss_bytes, sock->write_seq_ - sock->snd_nxt_);
    payload = std::min(payload,
                       window - (sock->snd_nxt_ - sock->snd_una_));
    if (payload <= 0) {
      break;
    }
    auto p = std::make_unique<Packet>();
    p->src_host = host_id();
    p->dst_host = sock->peer_host_;
    p->proto = WireProtocol::kTcp;
    p->tcp.conn_id = sock->conn_id_;
    p->tcp.seq = static_cast<uint64_t>(sock->snd_nxt_);
    p->tcp.window = static_cast<uint32_t>(EffectiveRwnd(sock));
    p->tcp.ack = sock->rcv_nxt_;
    p->payload_bytes = static_cast<int32_t>(payload);
    p->wire_bytes = static_cast<int32_t>(payload) + kTcpHeaderBytes;
    cost->Charge(params_.tx_per_packet);
    if (!Output(std::move(p))) {
      break;
    }
    sock->snd_nxt_ += payload;
  }
  ArmRto(sock);
}

void KernelStack::ArmRto(TcpSocket* sock) {
  if (sock->snd_una_ >= sock->snd_nxt_) {
    sock->rto_timer_.Cancel();
    return;
  }
  if (sock->rto_timer_.pending()) {
    return;
  }
  sock->rto_timer_ = sim_->Schedule(kTcpRto, [this, sock] { OnRto(sock); });
}

void KernelStack::OnRto(TcpSocket* sock) {
  if (sock->snd_una_ >= sock->snd_nxt_) {
    return;
  }
  ++sock->stats_.rto_events;
  ++sock->stats_.retransmits;
  // Go-back-N from the oldest unacked byte; collapse the window.
  sock->snd_nxt_ = sock->snd_una_;
  sock->ssthresh_ = std::max<int64_t>(
      (sock->write_seq_ - sock->snd_una_) / 2, 2 * params_.mss_bytes);
  sock->cwnd_ = params_.mss_bytes;
  sock->dup_acks_ = 0;
  sock->in_recovery_ = false;
  rto_work_.push_back(sock);
  sched_->Wake(softirq_.get(), /*remote=*/true);
}

void KernelStack::SendAck(TcpSocket* sock, CpuCostSink* cost) {
  auto p = std::make_unique<Packet>();
  p->src_host = host_id();
  p->dst_host = sock->peer_host_;
  p->proto = WireProtocol::kTcp;
  p->tcp.conn_id = sock->conn_id_;
  p->tcp.is_ack = true;
  p->tcp.ack = static_cast<uint64_t>(sock->rcv_nxt_);
  p->tcp.seq = static_cast<uint64_t>(sock->snd_nxt_);
  p->tcp.window = static_cast<uint32_t>(EffectiveRwnd(sock));
  p->wire_bytes = kTcpHeaderBytes;
  sock->last_window_update_ = EffectiveRwnd(sock);
  sock->ack_pending_ = false;
  cost->Charge(params_.tx_per_packet);
  Output(std::move(p));
}

void KernelStack::FlushPendingAcks(CpuCostSink* cost) {
  for (TcpSocket* sock : ack_batch_) {
    if (sock->ack_pending_) {
      SendAck(sock, cost);
    }
  }
  ack_batch_.clear();
}

int KernelStack::BusyPollRx(CpuCostSink* cost) {
  // Busy-polling socket read: one sk_busy_loop iteration — a syscall that
  // repeatedly invokes the driver poll routine until data or timeout.
  cost->Charge(1500 * kNsec);
  RxQueue* q = nic_->default_queue();
  int processed = 0;
  while (processed < 16) {
    PacketPtr p = q->Poll();
    if (p == nullptr) {
      break;
    }
    ProcessRxPacket(std::move(p), cost);
    ++processed;
  }
  FlushPendingAcks(cost);
  return processed;
}

void KernelStack::ProcessRxPacket(PacketPtr packet, CpuCostSink* cost) {
  if (packet->proto != WireProtocol::kTcp) {
    // Unclaimed protocol (e.g. Pony packets arriving during an upgrade
    // blackout, after the engine's steering filter was detached): dropped.
    // End-to-end transports recover via retransmission (Section 4).
    return;
  }
  cost->Charge(PerPacketSoftirqCost());
  const TcpSegment& seg = packet->tcp;
  auto it = conns_.find(seg.conn_id);
  if (it == conns_.end()) {
    if (seg.syn && !seg.is_ack) {
      // Passive open.
      auto lit = listeners_.find(seg.dst_port);
      if (lit == listeners_.end()) {
        return;  // RST in a real stack; silently drop here
      }
      auto sock = std::unique_ptr<TcpSocket>(
          new TcpSocket(this, seg.conn_id, packet->src_host));
      sock->state_ = TcpSocket::State::kEstablished;
      sock->peer_rwnd_ = seg.window;
      TcpSocket* raw = sock.get();
      conns_[seg.conn_id] = std::move(sock);
      ++active_flows_;
      SendControl(raw, /*syn=*/true, /*ack=*/true, 0, cost);
      lit->second(raw);
    }
    return;
  }
  TcpSocket* sock = it->second.get();
  if (seg.syn && seg.is_ack &&
      sock->state_ == TcpSocket::State::kConnecting) {
    sock->state_ = TcpSocket::State::kEstablished;
    sock->peer_rwnd_ = seg.window;
    if (sock->established_cb_) {
      sock->established_cb_();
    }
    // Data may already be buffered from before the handshake completed.
    TryTransmit(sock, cost);
    return;
  }
  if (packet->payload_bytes > 0) {
    HandleData(sock, seg, packet->payload_bytes, cost);
  }
  if (seg.is_ack || seg.ack > 0) {
    HandleAck(sock, seg, cost);
  }
}

void KernelStack::HandleData(TcpSocket* sock, const TcpSegment& seg,
                             int32_t payload, CpuCostSink* cost) {
  int64_t start = static_cast<int64_t>(seg.seq);
  int64_t end = start + payload;
  // Receiver overload: past the buffer (plus in-flight slack), drop.
  if (sock->rx_available_ + payload >
      params_.socket_buffer_bytes + kRxSlackBytes) {
    return;
  }
  if (end <= sock->rcv_nxt_) {
    // Duplicate; ack again.
  } else if (start <= sock->rcv_nxt_) {
    int64_t advance = end - sock->rcv_nxt_;
    sock->rcv_nxt_ = end;
    // Absorb any out-of-order segments now contiguous.
    auto it = sock->ooo_.begin();
    while (it != sock->ooo_.end() && it->first <= sock->rcv_nxt_) {
      if (it->second > sock->rcv_nxt_) {
        advance += it->second - sock->rcv_nxt_;
        sock->rcv_nxt_ = it->second;
      }
      it = sock->ooo_.erase(it);
    }
    sock->rx_available_ += advance;
    if (sock->readable_cb_) {
      cost->Charge(params_.socket_wakeup_cost);
      sock->readable_cb_();
    }
  } else {
    // Out of order: remember the range.
    auto [it, inserted] = sock->ooo_.emplace(start, end);
    if (!inserted) {
      it->second = std::max(it->second, end);
    }
  }
  if (!sock->ack_pending_) {
    sock->ack_pending_ = true;
    ack_batch_.push_back(sock);
  }
}

void KernelStack::HandleAck(TcpSocket* sock, const TcpSegment& seg,
                            CpuCostSink* cost) {
  int64_t ack = static_cast<int64_t>(seg.ack);
  sock->peer_rwnd_ = seg.window;
  if (ack > sock->snd_una_) {
    int64_t acked = ack - sock->snd_una_;
    sock->snd_una_ = ack;
    sock->dup_acks_ = 0;
    if (sock->in_recovery_ && ack >= sock->recovery_end_) {
      sock->in_recovery_ = false;
    }
    // Congestion control: slow start then AIMD.
    if (sock->cwnd_ < sock->ssthresh_) {
      sock->cwnd_ += acked;
    } else {
      sock->cwnd_ += std::max<int64_t>(
          1, params_.mss_bytes * params_.mss_bytes / sock->cwnd_);
    }
    sock->rto_timer_.Cancel();
    ArmRto(sock);
    if (sock->writable_cb_ && sock->send_space() > 0) {
      sock->writable_cb_();
    }
  } else if (ack == sock->snd_una_ && sock->snd_nxt_ > sock->snd_una_) {
    ++sock->dup_acks_;
    if (sock->dup_acks_ == 3 && !sock->in_recovery_) {
      // Fast retransmit one MSS from snd_una.
      ++sock->stats_.fast_retransmits;
      ++sock->stats_.retransmits;
      sock->in_recovery_ = true;
      sock->recovery_end_ = sock->snd_nxt_;
      sock->ssthresh_ = std::max<int64_t>(
          (sock->snd_nxt_ - sock->snd_una_) / 2, 2 * params_.mss_bytes);
      sock->cwnd_ = sock->ssthresh_;
      int64_t payload = std::min<int64_t>(
          params_.mss_bytes, sock->write_seq_ - sock->snd_una_);
      if (payload > 0 && nic_->TxSlotsAvailable() > 0) {
        auto p = std::make_unique<Packet>();
        p->src_host = host_id();
        p->dst_host = sock->peer_host_;
        p->proto = WireProtocol::kTcp;
        p->tcp.conn_id = sock->conn_id_;
        p->tcp.seq = static_cast<uint64_t>(sock->snd_una_);
        p->tcp.window = static_cast<uint32_t>(EffectiveRwnd(sock));
        p->payload_bytes = static_cast<int32_t>(payload);
        p->wire_bytes = static_cast<int32_t>(payload) + kTcpHeaderBytes;
        cost->Charge(params_.tx_per_packet);
        Output(std::move(p));
      }
    }
  }
  TryTransmit(sock, cost);
}

}  // namespace snap
