// Network chaos injection for the simulated fabric.
//
// A ChaosLink interposes on packets routed toward one destination host
// (Fabric::SetDeliveryHook) and subjects them, in order, to:
//   1. Gilbert-Elliott bursty loss (two-state Markov chain: a good state
//      with low loss and a bad state with high loss, so drops arrive in
//      bursts like real fabric congestion/link flaps);
//   2. duplication (a clean copy re-delivered after a delay);
//   3. bit-flip corruption of CRC-covered bytes (payload or header), which
//      the end-to-end Pony CRC must catch — the packet is tagged
//      chaos_corrupted so receivers can prove they never consumed one;
//   4. bounded reordering (hold a packet until `reorder_span` later packets
//      have passed, or a timeout) and uniform latency jitter.
//
// All randomness comes from the link's own Rng, seeded from the profile, so
// a run is bit-identical for the same seed regardless of other simulator
// RNG consumers.
#ifndef SRC_TESTING_CHAOS_H_
#define SRC_TESTING_CHAOS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/net/fabric.h"
#include "src/packet/packet.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace snap {

struct ChaosProfile {
  std::string name = "none";

  // Gilbert-Elliott loss model. Per-packet state transitions; stationary
  // bad-state fraction is p_good_to_bad / (p_good_to_bad + p_bad_to_good),
  // mean burst length (packets) is 1 / p_bad_to_good.
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;
  double loss_bad = 0.0;

  // Reordering: with this probability a packet is held until reorder_span
  // later packets have passed it (bounded displacement), or until
  // reorder_max_hold elapses, whichever comes first.
  double reorder_probability = 0.0;
  int reorder_span = 8;
  SimDuration reorder_max_hold = 2 * kMsec;

  // Duplication: a clean (uncorrupted) copy is delivered duplicate_delay
  // after the original.
  double duplicate_probability = 0.0;
  SimDuration duplicate_delay = 5 * kUsec;

  // Corruption: flip one CRC-covered bit (payload if present, else a header
  // field). Only applied to Pony packets that carry a CRC, so every
  // corruption is detectable — and must be detected.
  double corrupt_probability = 0.0;

  // Extra per-packet delivery delay, uniform in [0, jitter_max].
  SimDuration jitter_max = 0;

  uint64_t seed = 1;
};

class ChaosLink {
 public:
  // Downstream delivery: (packet, wire_time), normally
  // Fabric::EnqueueAtPort.
  using DeliverFn = std::function<void(PacketPtr, SimTime)>;

  ChaosLink(Simulator* sim, const ChaosProfile& profile, DeliverFn deliver);
  ~ChaosLink();

  ChaosLink(const ChaosLink&) = delete;
  ChaosLink& operator=(const ChaosLink&) = delete;

  // Creates a link delivering into `fabric`'s port queue for `dst_host` and
  // installs it as that host's delivery hook. The link's RNG seed is
  // derived from profile.seed and dst_host so each direction of a
  // conversation sees independent (but reproducible) chaos.
  static std::unique_ptr<ChaosLink> AttachToFabric(
      Fabric* fabric, int dst_host, const ChaosProfile& profile);

  // Entry point: takes ownership, eventually forwards or drops.
  void Process(PacketPtr packet, SimTime wire_time);

  // Releases every held (reordering) packet immediately.
  void FlushHeld();

  struct Stats {
    int64_t processed = 0;       // originals entering the link
    int64_t forwarded = 0;       // originals handed downstream
    int64_t dropped = 0;         // Gilbert-Elliott losses
    int64_t duplicated = 0;      // clean clones injected
    int64_t corrupted = 0;       // bit-flips applied
    int64_t reordered = 0;       // packets held for reordering
    int64_t reorder_timeouts = 0;
    int64_t jittered = 0;
    int64_t bad_state_packets = 0;  // packets seen while in the bad state
  };
  const Stats& stats() const { return stats_; }
  int64_t held_now() const { return static_cast<int64_t>(held_.size()); }
  const ChaosProfile& profile() const { return profile_; }

  // Per-tenant fault attribution (keyed by Packet::tenant), for the
  // per-tenant packet-conservation invariant. Always maintained; untagged
  // traffic all lands on tenant 0.
  struct TenantChaosStats {
    int64_t dropped = 0;
    int64_t duplicated = 0;
  };
  const std::map<uint32_t, TenantChaosStats>& tenant_stats() const {
    return tenant_stats_;
  }
  // Packets currently held for reordering, by tenant.
  std::map<uint32_t, int64_t> HeldNowByTenant() const;

 private:
  struct Held {
    PacketPtr packet;
    int remaining = 0;  // forwarded packets until release
    EventHandle timeout;
  };

  void Forward(PacketPtr packet, SimTime wire_time);
  void ReleaseHeld(int64_t id, bool timed_out);
  void Corrupt(Packet* packet);

  Simulator* sim_;
  ChaosProfile profile_;
  DeliverFn deliver_;
  Rng rng_;
  bool bad_state_ = false;
  // Open "ge_bad" trace span id (0 = none). Ids are derived from the link's
  // seed so spans from different links never collide in the trace.
  uint64_t ge_span_id_ = 0;
  uint64_t ge_spans_started_ = 0;
  std::map<int64_t, Held> held_;
  int64_t next_held_id_ = 0;
  Stats stats_;
  std::map<uint32_t, TenantChaosStats> tenant_stats_;
};

}  // namespace snap

#endif  // SRC_TESTING_CHAOS_H_
