// Seed-sweep harness: runs a deterministic two-host Pony Express echo
// workload under a grid of chaos profiles x RNG seeds, checking every
// invariant (src/testing/invariants.h) and — optionally — that a same-seed
// replay produces a bit-identical packet trace.
//
// The scenario per run: host A opens N streams to host B and sends M
// self-verifying messages per stream; B echoes every message back on the
// same stream; both directions traverse a ChaosLink. The run drains to
// quiesce and then CheckFinal() audits delivery, ordering, credit and
// packet conservation.
#ifndef SRC_TESTING_SEED_SWEEP_H_
#define SRC_TESTING_SEED_SWEEP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/testing/chaos.h"
#include "src/testing/invariants.h"
#include "src/util/time_types.h"

namespace snap {

struct SeedSweepOptions {
  int num_seeds = 32;
  uint64_t first_seed = 1;
  // Chaos profiles to sweep; empty means SeedSweepRunner::DefaultProfiles().
  std::vector<ChaosProfile> profiles;

  int num_streams = 2;
  int messages_per_stream = 8;
  int64_t message_bytes = 1200;
  SimDuration send_interval = 20 * kUsec;
  SimDuration echo_poll_interval = 20 * kUsec;
  SimDuration sample_period = 100 * kUsec;
  // Sim-time cap per run; a run that cannot complete by then fails the
  // completeness invariant.
  SimDuration run_limit = 2 * kSec;
  // Run every (seed, profile) cell twice and require identical traces.
  bool check_replay = true;
  // Event-queue implementation backing each run's Simulator. Sweeping the
  // same (seed, profile) grid under both kinds and comparing trace digests
  // proves the implementations are observably identical.
  EventQueueKind queue_kind = kDefaultEventQueueKind;
  // Attach a TraceRecorder to every run's Simulator. Tracing is pure
  // observation, so sweeping with this on and off must yield identical
  // trace digests (covered by determinism_test). Sharded runs attach one
  // recorder per shard (ShardedSim::EnableTracing) and fold them into one
  // deterministic trace (SweepRunResult::merged_trace_json).
  bool enable_trace = false;

  // Number of simulation shards. 1 (the default) runs the exact legacy
  // single-Simulator path; > 1 runs host A on shard 0 and host B on shard
  // 1 % shards over a ShardedFabricGroup with conservative epoch sync.
  // Trace digests are bit-identical to the serial engine for any shard
  // count (the parallel-vs-serial determinism gate).
  int shards = 1;
  // Worker threads for the sharded path; <= 1 executes shards round-robin
  // on the calling thread with bit-identical results.
  int shard_threads = 0;
  // Sharded runs: explicit shard for each of the two hosts (A, B); empty
  // keeps the default {0, 1 % shards}. Digests must not depend on this
  // (the placement axis of the parity gate; placement_test sweeps it).
  std::vector<int> shard_of_host;
  // Arms the sharded engine's deterministic profiler surfaces
  // (ShardedSim::EnableProfiling + ShardedFabricGroup::EnableProfiling)
  // and barrier-driven series sampling. Pure observation: the simulated
  // outcome must be identical with this on or off; with tracing enabled
  // the profiled trace additionally carries kProfilerTrack counters, so
  // profiled digests are compared against profiled digests only
  // (determinism_test gates both directions). Ignored in serial runs.
  bool enable_profiling = false;
  // Fabric-level hashed random drop (Fabric::set_random_drop_probability),
  // applied identically in serial and sharded runs — the drop decision is
  // a per-packet hash, not an RNG draw, so digests stay comparable across
  // engines with loss enabled.
  double fabric_drop_probability = 0;

  // QoS aggressor-tenant mode: the echo client becomes a weight-3
  // "victim" tenant, a second client on host A floods a second engine on
  // host B as a weight-1 "aggressor" tenant, DRR/WFQ scheduling is enabled
  // on every engine and on host A's NIC, and the per-tenant invariants
  // (packet/credit conservation, no-starvation) audit the run. Default
  // off: no extra objects are created and trace digests are unchanged.
  bool qos_aggressor = false;
  int aggressor_messages = 64;
  int64_t aggressor_message_bytes = 4096;
  SimDuration aggressor_send_interval = 5 * kUsec;
};

struct SweepRunResult {
  uint64_t seed = 0;
  std::string profile;
  bool ok = false;          // no invariant violations
  bool completed = false;   // every message and echo arrived in time
  bool replay_identical = true;
  std::vector<Violation> violations;
  uint64_t trace_digest = 0;
  SimTime finish_time = 0;
  int64_t delivered_messages = 0;
  int64_t chaos_dropped = 0;
  int64_t chaos_duplicated = 0;
  int64_t chaos_corrupted = 0;
  int64_t chaos_reordered = 0;
  int64_t crc_drops = 0;
  int64_t retransmits = 0;
  int64_t spurious_retransmits = 0;
  int64_t messages_held_for_order = 0;
  // Final telemetry snapshot: the per-Simulator registry in serial runs,
  // the deterministic merge of every shard's registry in sharded runs.
  // Identical for identical workloads regardless of shard count.
  std::map<std::string, int64_t> telemetry;
  // Sharded runs only (0 otherwise): epoch/exchange accounting.
  int64_t epochs = 0;
  int64_t exchange_handoffs = 0;
  int64_t exchange_cross_shard = 0;
  // enable_trace runs only: the full flight-recorder JSON — the serial
  // recorder's, or the deterministic cross-shard merge
  // (ShardedSim::MergedTrace) in sharded runs. Byte-identical across
  // reruns of the same (seed, profile, shards, placement).
  std::string merged_trace_json;
};

class SeedSweepRunner {
 public:
  explicit SeedSweepRunner(SeedSweepOptions options);

  // The five standard profiles: bursty loss, bounded reordering,
  // duplication, corruption, and everything combined.
  static std::vector<ChaosProfile> DefaultProfiles();

  // Chaos profile for qos_aggressor sweeps: light bursty loss, mild
  // reordering and jitter — enough churn to stress DRR/WFQ bookkeeping
  // under retransmission without making runs take forever to quiesce.
  static ChaosProfile AggressorTenantProfile();

  // One deterministic echo scenario under (seed, profile).
  SweepRunResult RunOne(uint64_t seed, const ChaosProfile& profile);

  // The full grid (num_seeds x profiles); with check_replay every cell runs
  // twice and replay_identical reports whether the traces matched.
  std::vector<SweepRunResult> RunAll();

  // Per-profile aggregate table (for test logs / bench output).
  static std::string SummaryTable(const std::vector<SweepRunResult>& results);

  const SeedSweepOptions& options() const { return options_; }

 private:
  SeedSweepOptions options_;
};

}  // namespace snap

#endif  // SRC_TESTING_SEED_SWEEP_H_
