// Invariant checking for Pony Express under chaos.
//
// The InvariantChecker observes a running simulation through passive hooks
// (NIC taps, client delivery observers, flow introspection accessors) and
// records violations of properties that must hold no matter what the
// network does to packets:
//
//  - exactly-once, in-order delivery per stream (payloads carry a
//    self-verifying sequence pattern);
//  - no corrupted payload ever reaches an application (the end-to-end CRC
//    must catch every chaos bit-flip);
//  - cumulative acks and receive points only move forward;
//  - credit conservation: at quiesce, every byte of a flow pair's credit
//    pool is accounted for (sender pool + receiver pending grant + grants
//    still on the wire == the initial pool) — a leak here is the kind of
//    bug that turns into a silent throughput collapse or deadlock;
//  - fabric packet conservation: every transmitted packet is delivered or
//    shows up in exactly one drop counter (chaos, queue overflow, CRC).
//
// It also records a per-packet RX trace whose digest is bit-identical
// across same-seed runs (determinism / replay checking).
//
// Sharded simulations: observation state is partitioned by writer so the
// checker can watch a multi-threaded ShardedSim without locks. NIC taps
// write per-host buffers (a host's NIC fires only on its own shard's
// thread), delivery observers write per-watch buffers (a client lives on
// one shard), and everything else — sampling, final checks, digesting —
// runs on the coordinator with all shards parked at a barrier. The trace
// digest is computed over the canonical order (time, then host id, with
// per-host arrival order preserved), which is identical for serial and
// sharded runs of the same workload (docs/PARALLEL.md).
#ifndef SRC_TESTING_INVARIANTS_H_
#define SRC_TESTING_INVARIANTS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/net/fabric.h"
#include "src/pony/client.h"
#include "src/pony/flow.h"
#include "src/pony/pony_engine.h"
#include "src/sim/simulator.h"
#include "src/testing/chaos.h"

namespace snap {

struct Violation {
  std::string check;   // which invariant, e.g. "duplicate-delivery"
  std::string detail;  // human-readable specifics
};

// --- Self-verifying payloads -----------------------------------------------
// Layout: [magic u32][length u32][stream_id u64][index u64][pattern bytes].
// The pattern is a SplitMix64 keystream keyed by (stream_id, index), so any
// surviving bit-flip anywhere in the payload is detected at delivery.
inline constexpr int64_t kChaosPayloadMinBytes = 24;

std::vector<uint8_t> EncodeChaosPayload(uint64_t stream_id, uint64_t index,
                                        int64_t length);
// Returns false (with *error set) when `data` is not an intact chaos
// payload; fills *stream_id and *index on success.
bool DecodeChaosPayload(const std::vector<uint8_t>& data, uint64_t* stream_id,
                        uint64_t* index, std::string* error);

// One received packet, as seen at a destination NIC.
struct TraceRecord {
  SimTime t = 0;
  int host = -1;
  uint64_t flow_id = 0;
  uint64_t seq = 0;
  uint8_t type = 0;
  uint32_t crc = 0;
  int32_t wire_bytes = 0;

  friend bool operator==(const TraceRecord& a, const TraceRecord& b) {
    return a.t == b.t && a.host == b.host && a.flow_id == b.flow_id &&
           a.seq == b.seq && a.type == b.type && a.crc == b.crc &&
           a.wire_bytes == b.wire_bytes;
  }
};

class InvariantChecker {
 public:
  explicit InvariantChecker(Simulator* sim) : sim_(sim) {}
  ~InvariantChecker() { sample_timer_.Cancel(); }

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Installs RX taps on every local NIC currently on the fabric (trace
  // recording) and remembers the fabric for conservation checks. Call
  // after all hosts exist. May be called once per shard fabric in a
  // sharded simulation; conservation checks then sum across fabrics.
  void AttachFabric(Fabric* fabric);

  // Includes a chaos link's drops/duplicates in packet conservation.
  void AttachChaos(ChaosLink* link) { chaos_.push_back(link); }

  // Source of engines for flow/credit checks; re-queried on every check so
  // transparent upgrades (engine replacement) are followed naturally.
  void SetEngineLister(std::function<std::vector<const PonyEngine*>()> fn) {
    engine_lister_ = std::move(fn);
  }

  // Installs a delivery observer on `client`; every message that reaches
  // its ring is checked for exactly-once in-order delivery and payload
  // integrity, tracked per (label, stream).
  void WatchClient(PonyClient* client, const std::string& label);

  // CheckFinal fails unless exactly `count` messages were delivered for
  // (label, stream_id).
  void ExpectDeliveries(const std::string& label, uint64_t stream_id,
                        int64_t count);
  int64_t delivered(const std::string& label, uint64_t stream_id) const;
  int64_t total_delivered() const;

  // Periodic flow sampling (ack/rcv_nxt monotonicity, credit bounds),
  // driven by a self-rescheduling event on sim_ (serial runs).
  void StartSampling(SimDuration period);
  void StopSampling() { sample_timer_.Cancel(); }

  // Sharded alternative: no event is scheduled (that would perturb the
  // epoch structure relative to shard count); instead the driver calls
  // SampleAtBarrier from a ShardedSim barrier hook and sampling happens
  // on the coordinator whenever at least `period` has elapsed.
  void StartBarrierSampling(SimDuration period) {
    barrier_sample_period_ = period;
    barrier_sample_due_ = period;
  }
  void SampleAtBarrier(SimTime now) {
    if (barrier_sample_period_ <= 0 || now < barrier_sample_due_) {
      return;
    }
    SampleFlowsNow();
    SampleTenantsNow();
    barrier_sample_due_ = now + barrier_sample_period_;
  }

  // --- Individual predicates (public so unit tests can drive them with
  // hand-built violations) ---
  void OnDelivery(const std::string& label, const PonyIncomingMessage& msg);
  // Feeds one (cumulative ack, receive point) observation for a flow;
  // flags regressions against the previous observation.
  void NoteFlowSample(const std::string& flow_label, uint64_t ack,
                      uint64_t rcv_nxt);
  // Credit conservation for one direction: `sender` is the flow that
  // spends credit, `receiver` its peer that grants it. Only meaningful at
  // quiesce (no message bytes in flight, everything delivered). Returns
  // the leaked byte count (0 when conserved) so callers can roll leaks up
  // per tenant.
  int64_t CheckCreditConservation(const Flow& sender, const Flow& receiver,
                                  const std::string& label);
  // Samples every flow of every listed engine now.
  void SampleFlowsNow();
  // Samples per-tenant scheduling progress on every QoS-enabled engine:
  // a tenant that stays sendable with positive deficit but makes no TX
  // progress across kStarvationSamples consecutive samples (while the NIC
  // has free TX slots) is flagged as starved.
  void SampleTenantsNow();
  static constexpr int kStarvationSamples = 3;

  // End-of-run checks: completeness, packet conservation, CRC accounting,
  // credit conservation, corruption acceptance. `require_quiesce` also
  // flags flows that still have unacked packets or queued transmissions
  // (the caller promised the run drained).
  void CheckFinal(bool require_quiesce = true);

  // Records a violation found by coordinator-side code (sampling, final
  // checks, tests). Shard-side observers use their own buffers; see
  // ClientWatch.
  void AddViolation(const std::string& check, const std::string& detail);
  bool ok() const;
  // All violations: coordinator-side first, then each watch's in watch
  // creation order. Rebuilt on every call (the backing buffers are
  // per-writer); do not hold the reference across checker mutations.
  const std::vector<Violation>& violations() const;
  std::string ViolationSummary() const;

  // The RX trace in canonical order: sorted by (time, host id) with each
  // host's arrival order preserved. Identical for serial and sharded runs
  // of the same workload.
  std::vector<TraceRecord> CanonicalTrace() const;
  uint64_t TraceDigest() const;

  // Per-tenant packet tallies observed at the NIC taps (TX claimed via
  // Nic::SetTxTap by AttachFabric; RX shares the trace tap), aggregated
  // across hosts.
  struct TenantPackets {
    int64_t tx = 0;
    int64_t rx = 0;
  };
  std::map<uint32_t, TenantPackets> tenant_packets() const;

 private:
  // Observations made at one host's NIC. Written only by that host's
  // shard thread; read by the coordinator with shards parked.
  struct PerHost {
    Simulator* sim = nullptr;  // the host's shard clock
    std::vector<TraceRecord> trace;
    std::map<uint32_t, TenantPackets> tenant;
  };

  // Observations made through one client's delivery observer. Written
  // only by that client's shard thread.
  struct ClientWatch {
    std::string label;
    std::map<uint64_t, uint64_t> next_index;  // per stream
    std::map<uint64_t, int64_t> delivered;    // per stream
    int64_t total_delivered = 0;
    std::vector<Violation> violations;
    int64_t suppressed = 0;
  };

  void RecordTrace(PerHost* host_obs, int host, const Packet& packet);
  void OnDeliveryToWatch(ClientWatch* watch, const PonyIncomingMessage& msg);
  static void AddWatchViolation(ClientWatch* watch, const std::string& check,
                                const std::string& detail);
  ClientWatch* FindOrCreateWatch(const std::string& label);

  Simulator* sim_;
  std::vector<Fabric*> fabrics_;
  std::vector<ChaosLink*> chaos_;
  std::function<std::vector<const PonyEngine*>()> engine_lister_;

  // deque: taps and observers capture element addresses, which must
  // survive later attachments.
  std::map<int, PerHost> hosts_;
  std::deque<ClientWatch> watches_;

  std::map<std::pair<std::string, uint64_t>, int64_t> expected_;

  // Per flow label: last observed (ack, rcv_nxt).
  std::map<std::string, std::pair<uint64_t, uint64_t>> flow_samples_;

  // Per-tenant starvation-progress state, keyed by (engine label, tenant).
  struct TenantProgress {
    int64_t last_tx_packets = -1;
    int stalled_samples = 0;
  };
  std::map<std::pair<std::string, uint32_t>, TenantProgress>
      tenant_progress_;

  std::vector<Violation> violations_;
  int64_t suppressed_violations_ = 0;
  mutable std::vector<Violation> merged_violations_;
  EventHandle sample_timer_;
  SimDuration sample_period_ = 0;
  SimDuration barrier_sample_period_ = 0;
  SimTime barrier_sample_due_ = 0;
};

}  // namespace snap

#endif  // SRC_TESTING_INVARIANTS_H_
