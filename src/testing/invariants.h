// Invariant checking for Pony Express under chaos.
//
// The InvariantChecker observes a running simulation through passive hooks
// (NIC taps, client delivery observers, flow introspection accessors) and
// records violations of properties that must hold no matter what the
// network does to packets:
//
//  - exactly-once, in-order delivery per stream (payloads carry a
//    self-verifying sequence pattern);
//  - no corrupted payload ever reaches an application (the end-to-end CRC
//    must catch every chaos bit-flip);
//  - cumulative acks and receive points only move forward;
//  - credit conservation: at quiesce, every byte of a flow pair's credit
//    pool is accounted for (sender pool + receiver pending grant + grants
//    still on the wire == the initial pool) — a leak here is the kind of
//    bug that turns into a silent throughput collapse or deadlock;
//  - fabric packet conservation: every transmitted packet is delivered or
//    shows up in exactly one drop counter (chaos, queue overflow, CRC).
//
// It also records a per-packet RX trace whose digest is bit-identical
// across same-seed runs (determinism / replay checking).
#ifndef SRC_TESTING_INVARIANTS_H_
#define SRC_TESTING_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/net/fabric.h"
#include "src/pony/client.h"
#include "src/pony/flow.h"
#include "src/pony/pony_engine.h"
#include "src/sim/simulator.h"
#include "src/testing/chaos.h"

namespace snap {

struct Violation {
  std::string check;   // which invariant, e.g. "duplicate-delivery"
  std::string detail;  // human-readable specifics
};

// --- Self-verifying payloads -----------------------------------------------
// Layout: [magic u32][length u32][stream_id u64][index u64][pattern bytes].
// The pattern is a SplitMix64 keystream keyed by (stream_id, index), so any
// surviving bit-flip anywhere in the payload is detected at delivery.
inline constexpr int64_t kChaosPayloadMinBytes = 24;

std::vector<uint8_t> EncodeChaosPayload(uint64_t stream_id, uint64_t index,
                                        int64_t length);
// Returns false (with *error set) when `data` is not an intact chaos
// payload; fills *stream_id and *index on success.
bool DecodeChaosPayload(const std::vector<uint8_t>& data, uint64_t* stream_id,
                        uint64_t* index, std::string* error);

// One received packet, as seen at a destination NIC.
struct TraceRecord {
  SimTime t = 0;
  int host = -1;
  uint64_t flow_id = 0;
  uint64_t seq = 0;
  uint8_t type = 0;
  uint32_t crc = 0;
  int32_t wire_bytes = 0;

  friend bool operator==(const TraceRecord& a, const TraceRecord& b) {
    return a.t == b.t && a.host == b.host && a.flow_id == b.flow_id &&
           a.seq == b.seq && a.type == b.type && a.crc == b.crc &&
           a.wire_bytes == b.wire_bytes;
  }
};

class InvariantChecker {
 public:
  explicit InvariantChecker(Simulator* sim) : sim_(sim) {}
  ~InvariantChecker() { sample_timer_.Cancel(); }

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Installs RX taps on every NIC currently on the fabric (trace recording)
  // and remembers the fabric for conservation checks. Call after all hosts
  // exist.
  void AttachFabric(Fabric* fabric);

  // Includes a chaos link's drops/duplicates in packet conservation.
  void AttachChaos(ChaosLink* link) { chaos_.push_back(link); }

  // Source of engines for flow/credit checks; re-queried on every check so
  // transparent upgrades (engine replacement) are followed naturally.
  void SetEngineLister(std::function<std::vector<const PonyEngine*>()> fn) {
    engine_lister_ = std::move(fn);
  }

  // Installs a delivery observer on `client`; every message that reaches
  // its ring is checked for exactly-once in-order delivery and payload
  // integrity, tracked per (label, stream).
  void WatchClient(PonyClient* client, const std::string& label);

  // CheckFinal fails unless exactly `count` messages were delivered for
  // (label, stream_id).
  void ExpectDeliveries(const std::string& label, uint64_t stream_id,
                        int64_t count);
  int64_t delivered(const std::string& label, uint64_t stream_id) const;
  int64_t total_delivered() const { return total_delivered_; }

  // Periodic flow sampling (ack/rcv_nxt monotonicity, credit bounds).
  void StartSampling(SimDuration period);
  void StopSampling() { sample_timer_.Cancel(); }

  // --- Individual predicates (public so unit tests can drive them with
  // hand-built violations) ---
  void OnDelivery(const std::string& label, const PonyIncomingMessage& msg);
  // Feeds one (cumulative ack, receive point) observation for a flow;
  // flags regressions against the previous observation.
  void NoteFlowSample(const std::string& flow_label, uint64_t ack,
                      uint64_t rcv_nxt);
  // Credit conservation for one direction: `sender` is the flow that
  // spends credit, `receiver` its peer that grants it. Only meaningful at
  // quiesce (no message bytes in flight, everything delivered). Returns
  // the leaked byte count (0 when conserved) so callers can roll leaks up
  // per tenant.
  int64_t CheckCreditConservation(const Flow& sender, const Flow& receiver,
                                  const std::string& label);
  // Samples every flow of every listed engine now.
  void SampleFlowsNow();
  // Samples per-tenant scheduling progress on every QoS-enabled engine:
  // a tenant that stays sendable with positive deficit but makes no TX
  // progress across kStarvationSamples consecutive samples (while the NIC
  // has free TX slots) is flagged as starved.
  void SampleTenantsNow();
  static constexpr int kStarvationSamples = 3;

  // End-of-run checks: completeness, packet conservation, CRC accounting,
  // credit conservation, corruption acceptance. `require_quiesce` also
  // flags flows that still have unacked packets or queued transmissions
  // (the caller promised the run drained).
  void CheckFinal(bool require_quiesce = true);

  void AddViolation(const std::string& check, const std::string& detail);
  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::string ViolationSummary() const;

  const std::vector<TraceRecord>& trace() const { return trace_; }
  uint64_t TraceDigest() const;

  // Per-tenant packet tallies observed at the NIC taps (TX claimed via
  // Nic::SetTxTap by AttachFabric; RX shares the trace tap).
  struct TenantPackets {
    int64_t tx = 0;
    int64_t rx = 0;
  };
  const std::map<uint32_t, TenantPackets>& tenant_packets() const {
    return tenant_packets_;
  }

 private:
  void RecordTrace(int host, const Packet& packet);

  Simulator* sim_;
  Fabric* fabric_ = nullptr;
  std::vector<ChaosLink*> chaos_;
  std::function<std::vector<const PonyEngine*>()> engine_lister_;

  // Per (label, stream): next expected payload index and delivered count.
  std::map<std::pair<std::string, uint64_t>, uint64_t> next_index_;
  std::map<std::pair<std::string, uint64_t>, int64_t> delivered_;
  std::map<std::pair<std::string, uint64_t>, int64_t> expected_;
  int64_t total_delivered_ = 0;

  // Per flow label: last observed (ack, rcv_nxt).
  std::map<std::string, std::pair<uint64_t, uint64_t>> flow_samples_;

  // Per-tenant accounting and starvation-progress state.
  std::map<uint32_t, TenantPackets> tenant_packets_;
  struct TenantProgress {
    int64_t last_tx_packets = -1;
    int stalled_samples = 0;
  };
  // Keyed by (engine label, tenant id).
  std::map<std::pair<std::string, uint32_t>, TenantProgress>
      tenant_progress_;

  std::vector<TraceRecord> trace_;
  std::vector<Violation> violations_;
  int64_t suppressed_violations_ = 0;
  EventHandle sample_timer_;
  SimDuration sample_period_ = 0;
};

}  // namespace snap

#endif  // SRC_TESTING_INVARIANTS_H_
