#include "src/testing/chaos.h"

#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace snap {

namespace {

// SplitMix64 step: derives per-port seeds so two links built from the same
// profile (one per direction) draw independent streams.
uint64_t DeriveSeed(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Marks one injected fault on the chaos track. Pure observation: reads no
// RNG and never feeds back into the simulation, so traces on/off cannot
// change chaos-sweep digests.
void ChaosInstant(Simulator* sim, SimTime ts, const char* what) {
  if (TraceRecorder* tracer = sim->tracer()) {
    tracer->Instant(ts, TraceRecorder::kChaosTrack, what, "chaos");
  }
}

}  // namespace

ChaosLink::ChaosLink(Simulator* sim, const ChaosProfile& profile,
                     DeliverFn deliver)
    : sim_(sim),
      profile_(profile),
      deliver_(std::move(deliver)),
      rng_(profile.seed) {
  SNAP_CHECK(deliver_ != nullptr);
  SNAP_CHECK_GT(profile_.reorder_span, 0);
}

ChaosLink::~ChaosLink() {
  for (auto& [id, held] : held_) {
    held.timeout.Cancel();
  }
}

std::unique_ptr<ChaosLink> ChaosLink::AttachToFabric(
    Fabric* fabric, int dst_host, const ChaosProfile& profile) {
  ChaosProfile derived = profile;
  derived.seed = DeriveSeed(profile.seed, static_cast<uint64_t>(dst_host));
  auto link = std::make_unique<ChaosLink>(
      fabric->sim(), derived, [fabric](PacketPtr p, SimTime wire_time) {
        fabric->EnqueueAtPort(std::move(p), wire_time);
      });
  ChaosLink* raw = link.get();
  fabric->SetDeliveryHook(dst_host, [raw](PacketPtr p, SimTime wire_time) {
    raw->Process(std::move(p), wire_time);
  });
  return link;
}

void ChaosLink::Process(PacketPtr packet, SimTime wire_time) {
  ++stats_.processed;

  // 1. Gilbert-Elliott loss: advance the channel state, then draw against
  // the state's loss rate.
  if (bad_state_) {
    if (rng_.NextBernoulli(profile_.p_bad_to_good)) {
      bad_state_ = false;
      if (TraceRecorder* tracer = sim_->tracer(); tracer && ge_span_id_) {
        tracer->AsyncEnd(wire_time, ge_span_id_, "ge_bad", "chaos");
        ge_span_id_ = 0;
      }
    }
  } else {
    if (rng_.NextBernoulli(profile_.p_good_to_bad)) {
      bad_state_ = true;
      if (TraceRecorder* tracer = sim_->tracer()) {
        ge_span_id_ = profile_.seed + ++ge_spans_started_;
        tracer->AsyncBegin(wire_time, ge_span_id_, "ge_bad", "chaos");
      }
    }
  }
  if (bad_state_) {
    ++stats_.bad_state_packets;
  }
  double loss = bad_state_ ? profile_.loss_bad : profile_.loss_good;
  if (loss > 0 && rng_.NextBernoulli(loss)) {
    ++stats_.dropped;
    ++tenant_stats_[packet->tenant].dropped;
    ChaosInstant(sim_, wire_time, "chaos_drop");
    return;
  }

  // 2. Duplication: clone BEFORE corruption so the duplicate is clean (a
  // corrupted duplicate would just be dropped by CRC; a clean one actually
  // exercises the receiver's duplicate suppression).
  if (profile_.duplicate_probability > 0 &&
      rng_.NextBernoulli(profile_.duplicate_probability)) {
    ++stats_.duplicated;
    ++tenant_stats_[packet->tenant].duplicated;
    ChaosInstant(sim_, wire_time, "chaos_duplicate");
    auto clone = std::make_unique<Packet>(*packet);
    Packet* raw = clone.release();
    sim_->Schedule(profile_.duplicate_delay, [this, raw] {
      deliver_(PacketPtr(raw), sim_->now());
    });
  }

  // 3. Corruption: only packets that carry a CRC (every flow-built Pony
  // packet does), so the flip is always detectable end-to-end.
  if (profile_.corrupt_probability > 0 &&
      packet->proto == WireProtocol::kPony && packet->pony.crc32 != 0 &&
      rng_.NextBernoulli(profile_.corrupt_probability)) {
    Corrupt(packet.get());
  }

  // 4. Reordering: hold until reorder_span later packets have passed.
  if (profile_.reorder_probability > 0 &&
      rng_.NextBernoulli(profile_.reorder_probability)) {
    ++stats_.reordered;
    ChaosInstant(sim_, wire_time, "chaos_hold");
    int64_t id = next_held_id_++;
    Held held;
    held.packet = std::move(packet);
    held.remaining = profile_.reorder_span;
    held.timeout = sim_->Schedule(profile_.reorder_max_hold, [this, id] {
      ReleaseHeld(id, /*timed_out=*/true);
    });
    held_.emplace(id, std::move(held));
    return;
  }

  Forward(std::move(packet), wire_time);
}

void ChaosLink::Forward(PacketPtr packet, SimTime wire_time) {
  // Every packet that passes counts down the held packets' displacement.
  std::vector<int64_t> due;
  for (auto& [id, held] : held_) {
    if (--held.remaining <= 0) {
      due.push_back(id);
    }
  }

  ++stats_.forwarded;
  if (profile_.jitter_max > 0) {
    SimDuration delay = static_cast<SimDuration>(
        rng_.NextBounded(static_cast<uint64_t>(profile_.jitter_max) + 1));
    if (delay > 0) {
      ++stats_.jittered;
      Packet* raw = packet.release();
      sim_->Schedule(delay, [this, raw] {
        deliver_(PacketPtr(raw), sim_->now());
      });
    } else {
      deliver_(std::move(packet), wire_time);
    }
  } else {
    deliver_(std::move(packet), wire_time);
  }

  for (int64_t id : due) {
    ReleaseHeld(id, /*timed_out=*/false);
  }
}

void ChaosLink::ReleaseHeld(int64_t id, bool timed_out) {
  auto it = held_.find(id);
  if (it == held_.end()) {
    return;
  }
  PacketPtr packet = std::move(it->second.packet);
  it->second.timeout.Cancel();
  held_.erase(it);
  if (timed_out) {
    ++stats_.reorder_timeouts;
    ChaosInstant(sim_, sim_->now(), "chaos_reorder_timeout");
  }
  ++stats_.forwarded;
  deliver_(std::move(packet), sim_->now());
}

std::map<uint32_t, int64_t> ChaosLink::HeldNowByTenant() const {
  std::map<uint32_t, int64_t> held;
  for (const auto& [id, h] : held_) {
    ++held[h.packet->tenant];
  }
  return held;
}

void ChaosLink::FlushHeld() {
  while (!held_.empty()) {
    ReleaseHeld(held_.begin()->first, /*timed_out=*/false);
  }
}

void ChaosLink::Corrupt(Packet* packet) {
  ++stats_.corrupted;
  ChaosInstant(sim_, sim_->now(), "chaos_corrupt");
  packet->chaos_corrupted = true;
  if (!packet->data.empty()) {
    // Flip one payload bit.
    uint64_t bit = rng_.NextBounded(packet->data.size() * 8);
    packet->data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    return;
  }
  // Header-only packet (ack, credit grant, synthetic payload): flip a bit
  // in a CRC-covered header field. A flipped ack/seq/credit is every bit as
  // dangerous as a flipped payload byte.
  switch (rng_.NextBounded(3)) {
    case 0:
      packet->pony.seq ^= 1ull << rng_.NextBounded(64);
      break;
    case 1:
      packet->pony.ack ^= 1ull << rng_.NextBounded(48);
      break;
    default:
      packet->pony.credit ^= 1u << rng_.NextBounded(32);
      break;
  }
}

}  // namespace snap
