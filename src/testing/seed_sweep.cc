#include "src/testing/seed_sweep.h"

#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "src/apps/simhost.h"
#include "src/net/shard_net.h"
#include "src/qos/tenant.h"
#include "src/sim/sharded_sim.h"
#include "src/util/logging.h"

namespace snap {

namespace {

// Self-rescheduling simulation event; fn returning false stops the chain.
class Periodic {
 public:
  Periodic(Simulator* sim, SimDuration period, std::function<bool()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~Periodic() { handle_.Cancel(); }

  void Start() { Arm(); }
  void Stop() { handle_.Cancel(); }

 private:
  void Arm() {
    handle_ = sim_->Schedule(period_, [this] {
      if (fn_()) {
        Arm();
      }
    });
  }

  Simulator* sim_;
  SimDuration period_;
  std::function<bool()> fn_;
  EventHandle handle_;
};

}  // namespace

SeedSweepRunner::SeedSweepRunner(SeedSweepOptions options)
    : options_(std::move(options)) {
  if (options_.profiles.empty()) {
    options_.profiles = DefaultProfiles();
  }
  SNAP_CHECK_GE(options_.message_bytes, kChaosPayloadMinBytes);
}

std::vector<ChaosProfile> SeedSweepRunner::DefaultProfiles() {
  std::vector<ChaosProfile> profiles;

  // ~5% loss arriving in bursts of ~4 packets (stationary bad-state
  // fraction 0.02/0.27 ~= 7.4%, loss_bad 0.5).
  ChaosProfile burst;
  burst.name = "burst-loss-5";
  burst.p_good_to_bad = 0.02;
  burst.p_bad_to_good = 0.25;
  burst.loss_good = 0.005;
  burst.loss_bad = 0.5;
  profiles.push_back(burst);

  ChaosProfile reorder;
  reorder.name = "reorder-k8";
  reorder.reorder_probability = 0.08;
  reorder.reorder_span = 8;
  profiles.push_back(reorder);

  ChaosProfile dup;
  dup.name = "dup-2";
  dup.duplicate_probability = 0.02;
  profiles.push_back(dup);

  ChaosProfile corrupt;
  corrupt.name = "corrupt-1";
  corrupt.corrupt_probability = 0.01;
  profiles.push_back(corrupt);

  ChaosProfile combined;
  combined.name = "combined";
  combined.p_good_to_bad = 0.01;
  combined.p_bad_to_good = 0.3;
  combined.loss_good = 0.002;
  combined.loss_bad = 0.4;
  combined.reorder_probability = 0.04;
  combined.reorder_span = 8;
  combined.duplicate_probability = 0.01;
  combined.corrupt_probability = 0.005;
  combined.jitter_max = 3 * kUsec;
  profiles.push_back(combined);

  return profiles;
}

ChaosProfile SeedSweepRunner::AggressorTenantProfile() {
  ChaosProfile profile;
  profile.name = "aggressor-tenant";
  profile.p_good_to_bad = 0.01;
  profile.p_bad_to_good = 0.3;
  profile.loss_good = 0.002;
  profile.loss_bad = 0.3;
  profile.reorder_probability = 0.02;
  profile.reorder_span = 8;
  profile.jitter_max = 2 * kUsec;
  return profile;
}

SweepRunResult SeedSweepRunner::RunOne(uint64_t seed,
                                       const ChaosProfile& profile) {
  const SeedSweepOptions& opt = options_;
  const bool sharded_mode = opt.shards > 1;
  const NicParams nic_params{};

  // Exactly one of (serial simulator + fabric) or (sharded sim + fabric
  // group) exists; the rest of the scenario is written against sim_a/sim_b
  // and fabric_a/fabric_b so both paths share one construction order.
  std::optional<Simulator> serial_sim;
  std::optional<Fabric> serial_fabric;
  std::optional<ShardedSim> sharded;
  std::optional<ShardedFabricGroup> shard_group;
  TraceRecorder trace_recorder;
  if (!sharded_mode) {
    serial_sim.emplace(seed, opt.queue_kind);
    if (opt.enable_trace) {
      serial_sim->set_tracer(&trace_recorder);
    }
    serial_fabric.emplace(&*serial_sim, nic_params);
    serial_fabric->set_random_drop_probability(opt.fabric_drop_probability);
  } else {
    ShardedSim::Options shard_options;
    shard_options.num_shards = opt.shards;
    shard_options.seed = seed;
    shard_options.queue_kind = opt.queue_kind;
    shard_options.lookahead = nic_params.propagation_delay;
    shard_options.num_threads = opt.shard_threads;
    sharded.emplace(shard_options);
    if (opt.enable_trace) {
      sharded->EnableTracing();
    }
    if (opt.enable_profiling) {
      sharded->EnableProfiling();
      sharded->EnableSeriesSampling(opt.sample_period);
    }
    shard_group.emplace(&*sharded, nic_params);
    if (opt.enable_profiling) {
      shard_group->EnableProfiling();
    }
    for (int s = 0; s < sharded->num_shards(); ++s) {
      shard_group->fabric(s)->set_random_drop_probability(
          opt.fabric_drop_probability);
    }
  }
  PonyDirectory directory;

  SimHostOptions host_options;
  host_options.group.mode = SchedulingMode::kDedicatedCores;
  host_options.group.dedicated_cores = {0};
  const bool placed = sharded_mode && opt.shard_of_host.size() >= 2;
  const int shard_a = placed ? opt.shard_of_host[0] : 0;
  const int shard_b =
      sharded_mode ? (placed ? opt.shard_of_host[1] : 1 % opt.shards) : 0;
  Simulator* sim_a = sharded_mode ? sharded->sim(shard_a) : &*serial_sim;
  Simulator* sim_b = sharded_mode ? sharded->sim(shard_b) : &*serial_sim;
  Fabric* fabric_a =
      sharded_mode ? shard_group->fabric(shard_a) : &*serial_fabric;
  Fabric* fabric_b =
      sharded_mode ? shard_group->fabric(shard_b) : &*serial_fabric;
  SimHost a(sim_a, fabric_a, &directory, host_options);
  SimHost b(sim_b, fabric_b, &directory, host_options);
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "chaosA");
  auto cb = b.CreateClient(eb, "chaosB");

  // QoS aggressor-tenant mode: a second engine on B receives bulk traffic
  // from a second client on A, so ea schedules two tenants (victim flow
  // vs. aggressor flow) via DRR and A's NIC runs per-tenant WFQ. Fully
  // gated: with qos_aggressor off nothing below allocates or schedules.
  qos::TenantRegistry registry;
  PonyEngine* eb2 = nullptr;
  std::unique_ptr<PonyClient> ca2;
  std::unique_ptr<PonyClient> cb2;
  if (opt.qos_aggressor) {
    qos::TenantSpec victim;
    victim.id = 1;
    victim.name = "victim";
    victim.weight = 3;
    qos::TenantSpec aggressor;
    aggressor.id = 2;
    aggressor.name = "aggressor";
    aggressor.weight = 1;
    // Throttle the aggressor's submissions through the client-side token
    // bucket as well, so sweeps exercise admission control under chaos
    // (generous enough that the run still completes).
    aggressor.admission_rate_bytes_per_sec = 4e8;
    aggressor.admission_burst_bytes = 32 * 1024;
    registry.Register(victim);
    registry.Register(aggressor);
    eb2 = b.CreatePonyEngine("eb2");
    ca2 = a.CreateClient(ea, "aggrA");
    cb2 = b.CreateClient(eb2, "aggrB");
    ca->SetTenant(victim);
    ca2->SetTenant(aggressor);
    ea->EnableQos(&registry);
    eb->EnableQos(&registry);
    eb2->EnableQos(&registry);
    a.nic()->EnableQosTx(&registry);
  }

  ChaosProfile seeded = profile;
  seeded.seed = seed;
  // Chaos links attach to the destination host's own fabric: in a sharded
  // run the link then lives on that host's shard and processes arrivals
  // in the arrival time frame (same absolute delivery times as serial).
  auto chaos_to_a = ChaosLink::AttachToFabric(fabric_a, a.host_id(), seeded);
  auto chaos_to_b = ChaosLink::AttachToFabric(fabric_b, b.host_id(), seeded);

  InvariantChecker checker(sim_a);
  if (sharded_mode) {
    for (int s = 0; s < sharded->num_shards(); ++s) {
      checker.AttachFabric(shard_group->fabric(s));
    }
  } else {
    checker.AttachFabric(&*serial_fabric);
  }
  checker.AttachChaos(chaos_to_a.get());
  checker.AttachChaos(chaos_to_b.get());
  std::vector<const PonyEngine*> engines{ea, eb};
  if (eb2 != nullptr) {
    engines.push_back(eb2);
  }
  checker.SetEngineLister([engines] { return engines; });
  checker.WatchClient(ca.get(), "A");
  checker.WatchClient(cb.get(), "B");
  if (opt.qos_aggressor) {
    checker.WatchClient(cb2.get(), "AGG");
  }

  // One CPU-cost sink per host so each sink is written by exactly one
  // shard. The sinks are write-only accumulators, so the split does not
  // change any simulation observable in the serial path either.
  CpuCostSink sink_a;
  CpuCostSink sink_b;
  std::vector<uint64_t> streams;
  for (int s = 0; s < opt.num_streams; ++s) {
    uint64_t id = ca->CreateStream(eb->address());
    streams.push_back(id);
    checker.ExpectDeliveries("B", id, opt.messages_per_stream);
    checker.ExpectDeliveries("A", id, opt.messages_per_stream);  // echoes
  }
  const int64_t total = static_cast<int64_t>(opt.num_streams) *
                        opt.messages_per_stream;
  uint64_t aggressor_stream = 0;
  if (opt.qos_aggressor) {
    aggressor_stream = ca2->CreateStream(eb2->address());
    checker.ExpectDeliveries("AGG", aggressor_stream,
                             opt.aggressor_messages);
  }

  // Sender: one message per tick, round-robin across streams. Drivers run
  // on their host's simulator, so in a sharded run each one executes on
  // its host's shard thread.
  int64_t sent = 0;
  Periodic sender(sim_a, opt.send_interval, [&]() -> bool {
    if (sent >= total) {
      return false;
    }
    int s = static_cast<int>(sent % opt.num_streams);
    uint64_t index = static_cast<uint64_t>(sent / opt.num_streams);
    auto payload =
        EncodeChaosPayload(streams[s], index, opt.message_bytes);
    if (ca->SendMessage(eb->address(), streams[s], 0, std::move(payload),
                        &sink_a) == 0) {
      return true;  // command queue full; retry next tick
    }
    ++sent;
    return true;
  });
  sender.Start();

  // Echo server on B: drain the message ring, bounce every payload back on
  // the stream it arrived on (bound at A, so the echo lands in ca's ring).
  bool stop_echo = false;
  std::deque<std::pair<uint64_t, std::vector<uint8_t>>> echo_retry;
  Periodic echo(sim_b, opt.echo_poll_interval, [&]() -> bool {
    if (stop_echo) {
      return false;
    }
    while (!echo_retry.empty()) {
      auto& [stream_id, data] = echo_retry.front();
      if (cb->SendMessage(ea->address(), stream_id, 0, data, &sink_b) == 0) {
        return true;
      }
      echo_retry.pop_front();
    }
    while (true) {
      auto msg = cb->PollMessage(&sink_b);
      if (!msg.has_value()) {
        break;
      }
      if (cb->SendMessage(ea->address(), msg->stream_id, 0, msg->data,
                          &sink_b) == 0) {
        echo_retry.emplace_back(msg->stream_id, std::move(msg->data));
      }
    }
    return true;
  });
  echo.Start();

  // Aggressor tenant: floods eb2 with bulk messages; a drain loop on cb2
  // keeps its message ring from stalling deliveries.
  int64_t aggr_sent = 0;
  Periodic aggressor_sender(
      sim_a, opt.aggressor_send_interval, [&]() -> bool {
        if (aggr_sent >= opt.aggressor_messages) {
          return false;
        }
        auto payload = EncodeChaosPayload(aggressor_stream,
                                          static_cast<uint64_t>(aggr_sent),
                                          opt.aggressor_message_bytes);
        if (ca2->SendMessage(eb2->address(), aggressor_stream, 0,
                             std::move(payload), &sink_a) == 0) {
          return true;  // queue full or admission-throttled; retry
        }
        ++aggr_sent;
        return true;
      });
  // Runs through the quiesce drain too (polling never blocks quiesce).
  Periodic aggressor_drain(sim_b, opt.echo_poll_interval, [&]() -> bool {
    while (cb2->PollMessage(&sink_b).has_value()) {
    }
    return true;
  });
  if (opt.qos_aggressor) {
    aggressor_sender.Start();
    aggressor_drain.Start();
  }

  if (sharded_mode) {
    // No sampling event: an extra scheduled event would change the epoch
    // structure with shard count. The checker samples on the coordinator
    // at epoch barriers instead (same invariants, coarser cadence).
    checker.StartBarrierSampling(opt.sample_period);
    ShardedSim* sharded_ptr = &*sharded;
    sharded->AddBarrierHook([&checker, sharded_ptr] {
      checker.SampleAtBarrier(sharded_ptr->now());
    });
  } else {
    checker.StartSampling(opt.sample_period);
  }

  auto run_for = [&](SimDuration d) {
    if (sharded_mode) {
      sharded->RunFor(d);
    } else {
      serial_sim->RunFor(d);
    }
  };
  auto now = [&]() -> SimTime {
    return sharded_mode ? sharded->now() : serial_sim->now();
  };

  auto all_done = [&]() -> bool {
    int64_t at_a = 0;
    int64_t at_b = 0;
    for (uint64_t id : streams) {
      at_a += checker.delivered("A", id);
      at_b += checker.delivered("B", id);
    }
    if (opt.qos_aggressor &&
        checker.delivered("AGG", aggressor_stream) <
            opt.aggressor_messages) {
      return false;
    }
    return at_a >= total && at_b >= total;
  };
  while (now() < opt.run_limit && !all_done()) {
    run_for(1 * kMsec);
  }
  SweepRunResult result;
  result.completed = all_done();
  stop_echo = true;

  // Drain to quiesce: reorder holds time out (<= reorder_max_hold), lost
  // tail packets retransmit (RTO 400us), final acks and credit grants
  // flush. Fixed-step deterministic loop.
  auto quiesced = [&]() -> bool {
    if (chaos_to_a->held_now() > 0 || chaos_to_b->held_now() > 0) {
      return false;
    }
    bool idle = true;
    for (const PonyEngine* e : engines) {
      e->ForEachFlow([&idle](const Flow& f) {
        if (f.unacked_packets() > 0 || f.tx_backlog() > 0) {
          idle = false;
        }
      });
    }
    return idle;
  };
  run_for(10 * kMsec);
  for (int i = 0; i < 100 && !quiesced(); ++i) {
    run_for(10 * kMsec);
  }
  checker.StopSampling();
  checker.CheckFinal(/*require_quiesce=*/true);

  result.seed = seed;
  result.profile = profile.name;
  result.ok = checker.ok();
  result.violations = checker.violations();
  result.trace_digest = checker.TraceDigest();
  result.finish_time = now();
  result.delivered_messages = checker.total_delivered();
  for (const ChaosLink* link : {chaos_to_a.get(), chaos_to_b.get()}) {
    result.chaos_dropped += link->stats().dropped;
    result.chaos_duplicated += link->stats().duplicated;
    result.chaos_corrupted += link->stats().corrupted;
    result.chaos_reordered += link->stats().reordered;
  }
  for (const PonyEngine* e : engines) {
    result.crc_drops += e->stats().crc_drops;
    result.messages_held_for_order += e->stats().messages_held_for_order;
    e->ForEachFlow([&result](const Flow& f) {
      result.retransmits += f.stats().retransmits;
      result.spurious_retransmits += f.stats().spurious_retransmits;
    });
  }
  if (sharded_mode) {
    result.telemetry = sharded->MergedTelemetryValues();
    result.epochs = sharded->progress().epochs;
    ShardedFabricGroup::ExchangeStats xs = shard_group->exchange_stats();
    result.exchange_handoffs = xs.handoffs;
    result.exchange_cross_shard = xs.cross_shard;
    if (opt.enable_trace) {
      result.merged_trace_json = sharded->MergedTrace()->ToJson();
    }
  } else {
    result.telemetry = serial_sim->telemetry().SnapshotValues();
    if (opt.enable_trace) {
      result.merged_trace_json = trace_recorder.ToJson();
    }
  }
  return result;
}

std::vector<SweepRunResult> SeedSweepRunner::RunAll() {
  std::vector<SweepRunResult> results;
  for (const ChaosProfile& profile : options_.profiles) {
    for (int i = 0; i < options_.num_seeds; ++i) {
      uint64_t seed = options_.first_seed + static_cast<uint64_t>(i);
      SweepRunResult result = RunOne(seed, profile);
      if (options_.check_replay) {
        SweepRunResult replay = RunOne(seed, profile);
        result.replay_identical =
            replay.trace_digest == result.trace_digest &&
            replay.delivered_messages == result.delivered_messages &&
            replay.violations.size() == result.violations.size();
      }
      results.push_back(std::move(result));
    }
  }
  return results;
}

std::string SeedSweepRunner::SummaryTable(
    const std::vector<SweepRunResult>& results) {
  struct Agg {
    int runs = 0;
    int failed = 0;
    int incomplete = 0;
    int replay_mismatch = 0;
    int64_t delivered = 0;
    int64_t dropped = 0;
    int64_t duplicated = 0;
    int64_t corrupted = 0;
    int64_t reordered = 0;
    int64_t crc_drops = 0;
    int64_t retransmits = 0;
    int64_t spurious = 0;
    int64_t held = 0;
  };
  std::map<std::string, Agg> by_profile;
  std::vector<std::string> order;
  for (const SweepRunResult& r : results) {
    if (by_profile.find(r.profile) == by_profile.end()) {
      order.push_back(r.profile);
    }
    Agg& agg = by_profile[r.profile];
    ++agg.runs;
    if (!r.ok) ++agg.failed;
    if (!r.completed) ++agg.incomplete;
    if (!r.replay_identical) ++agg.replay_mismatch;
    agg.delivered += r.delivered_messages;
    agg.dropped += r.chaos_dropped;
    agg.duplicated += r.chaos_duplicated;
    agg.corrupted += r.chaos_corrupted;
    agg.reordered += r.chaos_reordered;
    agg.crc_drops += r.crc_drops;
    agg.retransmits += r.retransmits;
    agg.spurious += r.spurious_retransmits;
    agg.held += r.messages_held_for_order;
  }
  std::ostringstream os;
  os << "profile        runs fail incompl replay! delivered  drop  dup "
        "corrupt crc-drop  retx spur-retx held\n";
  for (const std::string& name : order) {
    const Agg& agg = by_profile[name];
    os.width(14);
    os << std::left << name << std::right << " ";
    os.width(4);
    os << agg.runs << " ";
    os.width(4);
    os << agg.failed << " ";
    os.width(7);
    os << agg.incomplete << " ";
    os.width(7);
    os << agg.replay_mismatch << " ";
    os.width(9);
    os << agg.delivered << " ";
    os.width(5);
    os << agg.dropped << " ";
    os.width(4);
    os << agg.duplicated << " ";
    os.width(7);
    os << agg.corrupted << " ";
    os.width(8);
    os << agg.crc_drops << " ";
    os.width(5);
    os << agg.retransmits << " ";
    os.width(9);
    os << agg.spurious << " ";
    os.width(4);
    os << agg.held << "\n";
  }
  return os.str();
}

}  // namespace snap
