#include "src/testing/invariants.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/util/logging.h"

namespace snap {

namespace {

constexpr uint32_t kPayloadMagic = 0x43484F53;  // "CHOS"
constexpr size_t kPayloadHeader = 4 + 4 + 8 + 8;
constexpr size_t kMaxViolations = 200;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t PatternSeed(uint64_t stream_id, uint64_t index) {
  return stream_id * 0x9E3779B97F4A7C15ULL ^ (index + 1);
}

template <typename T>
void PutLe(std::vector<uint8_t>* out, T value) {
  size_t pos = out->size();
  out->resize(pos + sizeof(T));
  std::memcpy(out->data() + pos, &value, sizeof(T));
}

template <typename T>
T GetLe(const std::vector<uint8_t>& in, size_t pos) {
  T value;
  std::memcpy(&value, in.data() + pos, sizeof(T));
  return value;
}

}  // namespace

std::vector<uint8_t> EncodeChaosPayload(uint64_t stream_id, uint64_t index,
                                        int64_t length) {
  SNAP_CHECK_GE(length, kChaosPayloadMinBytes);
  std::vector<uint8_t> out;
  out.reserve(static_cast<size_t>(length));
  PutLe<uint32_t>(&out, kPayloadMagic);
  PutLe<uint32_t>(&out, static_cast<uint32_t>(length));
  PutLe<uint64_t>(&out, stream_id);
  PutLe<uint64_t>(&out, index);
  uint64_t state = PatternSeed(stream_id, index);
  uint64_t word = 0;
  int bits = 0;
  while (out.size() < static_cast<size_t>(length)) {
    if (bits == 0) {
      word = SplitMix64(&state);
      bits = 64;
    }
    out.push_back(static_cast<uint8_t>(word));
    word >>= 8;
    bits -= 8;
  }
  return out;
}

bool DecodeChaosPayload(const std::vector<uint8_t>& data, uint64_t* stream_id,
                        uint64_t* index, std::string* error) {
  if (data.size() < kPayloadHeader) {
    *error = "payload shorter than chaos header";
    return false;
  }
  if (GetLe<uint32_t>(data, 0) != kPayloadMagic) {
    *error = "bad magic (header bytes corrupted)";
    return false;
  }
  uint32_t length = GetLe<uint32_t>(data, 4);
  if (length != data.size()) {
    *error = "length field mismatch";
    return false;
  }
  *stream_id = GetLe<uint64_t>(data, 8);
  *index = GetLe<uint64_t>(data, 16);
  uint64_t state = PatternSeed(*stream_id, *index);
  uint64_t word = 0;
  int bits = 0;
  for (size_t i = kPayloadHeader; i < data.size(); ++i) {
    if (bits == 0) {
      word = SplitMix64(&state);
      bits = 64;
    }
    if (data[i] != static_cast<uint8_t>(word)) {
      std::ostringstream os;
      os << "pattern mismatch at byte " << i;
      *error = os.str();
      return false;
    }
    word >>= 8;
    bits -= 8;
  }
  return true;
}

void InvariantChecker::AttachFabric(Fabric* fabric) {
  fabrics_.push_back(fabric);
  for (int h = 0; h < fabric->num_hosts(); ++h) {
    if (!fabric->host_is_local(h)) {
      continue;  // this host's NIC taps are installed on its own shard
    }
    PerHost& obs = hosts_[h];
    obs.sim = fabric->sim();
    PerHost* obs_ptr = &obs;
    fabric->nic(h)->SetRxTap([this, obs_ptr, h](const Packet& p) {
      RecordTrace(obs_ptr, h, p);
    });
    // TX tap: per-tenant conservation needs the send-side tally too.
    fabric->nic(h)->SetTxTap(
        [obs_ptr](const Packet& p) { ++obs_ptr->tenant[p.tenant].tx; });
  }
}

void InvariantChecker::RecordTrace(PerHost* host_obs, int host,
                                   const Packet& packet) {
  TraceRecord rec;
  rec.t = host_obs->sim->now();
  rec.host = host;
  rec.flow_id = packet.pony.flow_id;
  rec.seq = packet.pony.seq;
  rec.type = static_cast<uint8_t>(packet.pony.type);
  rec.crc = packet.pony.crc32;
  rec.wire_bytes = packet.wire_bytes;
  host_obs->trace.push_back(rec);
  ++host_obs->tenant[packet.tenant].rx;
}

std::vector<TraceRecord> InvariantChecker::CanonicalTrace() const {
  std::vector<TraceRecord> all;
  size_t total = 0;
  for (const auto& [host, obs] : hosts_) {
    total += obs.trace.size();
  }
  all.reserve(total);
  for (const auto& [host, obs] : hosts_) {
    all.insert(all.end(), obs.trace.begin(), obs.trace.end());
  }
  // stable_sort by (t, host): same-(t, host) records keep the host's
  // arrival order (they came from one per-host buffer, already in order).
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.host < b.host;
                   });
  return all;
}

uint64_t InvariantChecker::TraceDigest() const {
  // FNV-1a over every field of every record, in canonical order.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (const TraceRecord& r : CanonicalTrace()) {
    mix(static_cast<uint64_t>(r.t));
    mix(static_cast<uint64_t>(r.host));
    mix(r.flow_id);
    mix(r.seq);
    mix(r.type);
    mix(r.crc);
    mix(static_cast<uint64_t>(r.wire_bytes));
  }
  return h;
}

std::map<uint32_t, InvariantChecker::TenantPackets>
InvariantChecker::tenant_packets() const {
  std::map<uint32_t, TenantPackets> out;
  for (const auto& [host, obs] : hosts_) {
    for (const auto& [tenant, counts] : obs.tenant) {
      out[tenant].tx += counts.tx;
      out[tenant].rx += counts.rx;
    }
  }
  return out;
}

InvariantChecker::ClientWatch* InvariantChecker::FindOrCreateWatch(
    const std::string& label) {
  for (ClientWatch& watch : watches_) {
    if (watch.label == label) {
      return &watch;
    }
  }
  watches_.emplace_back();
  watches_.back().label = label;
  return &watches_.back();
}

void InvariantChecker::WatchClient(PonyClient* client,
                                   const std::string& label) {
  // The watch pointer is captured once, at attach time: the observer then
  // only ever touches its own watch, so concurrent deliveries on
  // different shards never share state.
  ClientWatch* watch = FindOrCreateWatch(label);
  client->SetDeliveryObserver(
      [this, watch](const PonyIncomingMessage& msg) {
        OnDeliveryToWatch(watch, msg);
      });
}

void InvariantChecker::ExpectDeliveries(const std::string& label,
                                        uint64_t stream_id, int64_t count) {
  expected_[{label, stream_id}] = count;
}

int64_t InvariantChecker::delivered(const std::string& label,
                                    uint64_t stream_id) const {
  int64_t total = 0;
  for (const ClientWatch& watch : watches_) {
    if (watch.label != label) {
      continue;
    }
    auto it = watch.delivered.find(stream_id);
    if (it != watch.delivered.end()) {
      total += it->second;
    }
  }
  return total;
}

int64_t InvariantChecker::total_delivered() const {
  int64_t total = 0;
  for (const ClientWatch& watch : watches_) {
    total += watch.total_delivered;
  }
  return total;
}

void InvariantChecker::OnDelivery(const std::string& label,
                                  const PonyIncomingMessage& msg) {
  OnDeliveryToWatch(FindOrCreateWatch(label), msg);
}

void InvariantChecker::OnDeliveryToWatch(ClientWatch* watch,
                                         const PonyIncomingMessage& msg) {
  const std::string& label = watch->label;
  ++watch->total_delivered;
  ++watch->delivered[msg.stream_id];
  uint64_t stream_id = 0;
  uint64_t index = 0;
  std::string error;
  if (!DecodeChaosPayload(msg.data, &stream_id, &index, &error)) {
    std::ostringstream os;
    os << label << " stream " << msg.stream_id
       << ": corrupt/unverifiable payload delivered to application ("
       << error << ")";
    AddWatchViolation(watch, "payload-integrity", os.str());
    return;
  }
  if (stream_id != msg.stream_id) {
    std::ostringstream os;
    os << label << ": payload encoded for stream " << stream_id
       << " arrived on stream " << msg.stream_id;
    AddWatchViolation(watch, "stream-mismatch", os.str());
    return;
  }
  uint64_t& next = watch->next_index[msg.stream_id];
  if (index < next) {
    std::ostringstream os;
    os << label << " stream " << msg.stream_id << ": message " << index
       << " delivered again (next expected " << next << ")";
    AddWatchViolation(watch, "duplicate-delivery", os.str());
  } else if (index > next) {
    std::ostringstream os;
    os << label << " stream " << msg.stream_id << ": message " << index
       << " overtook message " << next;
    AddWatchViolation(watch, "out-of-order-delivery", os.str());
  }
  next = std::max(next, index + 1);
}

void InvariantChecker::NoteFlowSample(const std::string& flow_label,
                                      uint64_t ack, uint64_t rcv_nxt) {
  auto it = flow_samples_.find(flow_label);
  if (it != flow_samples_.end()) {
    if (ack < it->second.first) {
      std::ostringstream os;
      os << flow_label << ": cumulative ack regressed " << it->second.first
         << " -> " << ack;
      AddViolation("ack-monotonicity", os.str());
    }
    if (rcv_nxt < it->second.second) {
      std::ostringstream os;
      os << flow_label << ": receive point regressed " << it->second.second
         << " -> " << rcv_nxt;
      AddViolation("rcv-monotonicity", os.str());
    }
  }
  flow_samples_[flow_label] = {ack, rcv_nxt};
}

void InvariantChecker::SampleFlowsNow() {
  if (!engine_lister_) {
    return;
  }
  for (const PonyEngine* engine : engine_lister_()) {
    engine->ForEachFlow([this, engine](const Flow& flow) {
      std::ostringstream os;
      os << "h" << engine->address().host << ":e"
         << engine->address().engine_id << "->h" << flow.key().remote_host
         << ":e" << flow.key().remote_engine;
      std::string label = os.str();
      NoteFlowSample(label, flow.last_ack_seen(), flow.rcv_nxt());
      if (flow.credit() < 0 || flow.credit() > Flow::kInitialCreditBytes) {
        std::ostringstream v;
        v << label << ": credit pool " << flow.credit()
          << " outside [0, " << Flow::kInitialCreditBytes << "]";
        AddViolation("credit-bounds", v.str());
      }
      if (flow.pending_grant() < 0) {
        AddViolation("credit-bounds", label + ": negative pending grant");
      }
      if (flow.stats().spurious_retransmits > flow.stats().retransmits) {
        std::ostringstream v;
        v << label << ": spurious retransmits ("
          << flow.stats().spurious_retransmits << ") exceed retransmits ("
          << flow.stats().retransmits << ")";
        AddViolation("spurious-accounting", v.str());
      }
    });
  }
}

void InvariantChecker::SampleTenantsNow() {
  if (!engine_lister_) {
    return;
  }
  for (const PonyEngine* engine : engine_lister_()) {
    if (!engine->qos_enabled()) {
      continue;
    }
    std::ostringstream os;
    os << "h" << engine->address().host << ":e"
       << engine->address().engine_id;
    std::string engine_label = os.str();
    // A saturated NIC ring is legitimate global backpressure, not a
    // scheduling failure; skip the sample entirely.
    bool nic_full =
        engine->nic() != nullptr && engine->nic()->TxSlotsAvailable() <= 0;
    engine->ForEachTenant([&](const PonyEngine::TenantSnapshot& snap) {
      TenantProgress& progress =
          tenant_progress_[{engine_label, snap.id}];
      bool made_progress =
          snap.stats.tx_packets != progress.last_tx_packets;
      progress.last_tx_packets = snap.stats.tx_packets;
      if (made_progress || !snap.sendable || snap.deficit <= 0 ||
          nic_full) {
        progress.stalled_samples = 0;
        return;
      }
      if (++progress.stalled_samples >= kStarvationSamples) {
        std::ostringstream v;
        v << engine_label << " tenant " << snap.id << ": sendable with "
          << snap.deficit << " deficit bytes but no TX progress across "
          << progress.stalled_samples << " samples";
        AddViolation("tenant-starvation", v.str());
        progress.stalled_samples = 0;  // rate-limit repeats
      }
    });
  }
}

void InvariantChecker::StartSampling(SimDuration period) {
  sample_period_ = period;
  sample_timer_.Cancel();
  sample_timer_ = sim_->Schedule(period, [this] {
    SampleFlowsNow();
    SampleTenantsNow();
    StartSampling(sample_period_);
  });
}

int64_t InvariantChecker::CheckCreditConservation(const Flow& sender,
                                                  const Flow& receiver,
                                                  const std::string& label) {
  // Grants issued by the receiver that the sender has not applied yet
  // (lost-and-not-yet-healed or genuinely in flight at non-quiesce).
  int64_t on_wire = static_cast<int64_t>(static_cast<uint32_t>(
      receiver.granted_total() - sender.last_credit_seen()));
  int64_t total = sender.credit() + receiver.pending_grant() + on_wire;
  int64_t leak = Flow::kInitialCreditBytes - total;
  if (leak != 0) {
    std::ostringstream os;
    os << label << ": credit pool leaks " << std::showpos << leak
       << std::noshowpos << " bytes (sender pool " << sender.credit()
       << " + pending grant " << receiver.pending_grant() << " + on-wire "
       << on_wire << " != " << Flow::kInitialCreditBytes << ")";
    AddViolation("credit-conservation", os.str());
  }
  return leak;
}

void InvariantChecker::CheckFinal(bool require_quiesce) {
  // 1. Completeness: every expected (label, stream) delivered exactly.
  for (const auto& [key, count] : expected_) {
    int64_t got = delivered(key.first, key.second);
    if (got != count) {
      std::ostringstream os;
      os << key.first << " stream " << key.second << ": delivered " << got
         << " of " << count << " expected messages";
      AddViolation("completeness", os.str());
    }
  }

  // 2. Engine-level accounting.
  int64_t crc_drops = 0;
  int64_t corrupt_accepted = 0;
  std::vector<const PonyEngine*> engines;
  if (engine_lister_) {
    engines = engine_lister_();
  }
  for (const PonyEngine* engine : engines) {
    crc_drops += engine->stats().crc_drops;
    corrupt_accepted += engine->stats().corrupt_accepted;
  }
  if (corrupt_accepted != 0) {
    std::ostringstream os;
    os << corrupt_accepted
       << " corrupted packet(s) passed CRC verification and were consumed";
    AddViolation("corruption-accepted", os.str());
  }

  // 3. Flow-level checks (monotonicity state, bounds, quiesce, credit).
  SampleFlowsNow();
  SampleTenantsNow();
  std::map<uint32_t, int64_t> tenant_credit_leak;
  std::map<PonyAddress, const PonyEngine*> by_addr;
  for (const PonyEngine* engine : engines) {
    by_addr[engine->address()] = engine;
  }
  for (const PonyEngine* engine : engines) {
    engine->ForEachFlow([&](const Flow& flow) {
      std::ostringstream os;
      os << "h" << engine->address().host << ":e"
         << engine->address().engine_id << "->h" << flow.key().remote_host
         << ":e" << flow.key().remote_engine;
      std::string label = os.str();
      if (require_quiesce &&
          (flow.unacked_packets() > 0 || flow.tx_backlog() > 0)) {
        std::ostringstream v;
        v << label << ": not quiesced (" << flow.unacked_packets()
          << " unacked, backlog " << flow.tx_backlog() << ")";
        AddViolation("not-quiesced", v.str());
      }
      PonyAddress peer{flow.key().remote_host, flow.key().remote_engine};
      auto pit = by_addr.find(peer);
      if (pit == by_addr.end()) {
        return;
      }
      const Flow* reverse = nullptr;
      pit->second->ForEachFlow([&](const Flow& r) {
        if (r.key().remote_host == engine->address().host &&
            r.key().remote_engine == engine->address().engine_id) {
          reverse = &r;
        }
      });
      if (reverse != nullptr && require_quiesce) {
        tenant_credit_leak[flow.tenant()] +=
            CheckCreditConservation(flow, *reverse, label);
      }
    });
  }
  // 3b. Per-tenant credit rollup: attribute any leak to the sending
  // flow's tenant so a multi-tenant run pinpoints whose pool broke.
  for (const auto& [tenant, leak] : tenant_credit_leak) {
    if (leak != 0) {
      std::ostringstream os;
      os << "tenant " << tenant << ": credit pools leak " << std::showpos
         << leak << std::noshowpos << " bytes in aggregate";
      AddViolation("tenant-credit-conservation", os.str());
    }
  }

  // 4. Fabric packet conservation, summed across shard fabrics (one
  // fabric total in serial runs).
  if (!fabrics_.empty()) {
    int64_t tx = 0;
    int64_t rx = 0;
    int64_t ring_drops = 0;
    int64_t no_filter = 0;
    Fabric::Stats fs;
    for (Fabric* fabric : fabrics_) {
      const Fabric::Stats& s = fabric->stats();
      fs.delivered += s.delivered;
      fs.dropped_queue_full += s.dropped_queue_full;
      fs.dropped_random += s.dropped_random;
      fs.dropped_bad_address += s.dropped_bad_address;
      fs.drain_events += s.drain_events;
      for (int h = 0; h < fabric->num_hosts(); ++h) {
        if (!fabric->host_is_local(h)) {
          continue;
        }
        Nic* nic = fabric->nic(h);
        tx += nic->stats().tx_packets;
        rx += nic->stats().rx_packets;
        no_filter += nic->stats().rx_no_filter_drops;
        for (int q = 0; q < nic->num_queues(); ++q) {
          ring_drops += nic->queue(q)->stats().dropped_ring_full;
        }
      }
    }
    int64_t chaos_dropped = 0;
    int64_t chaos_duplicated = 0;
    int64_t chaos_corrupted = 0;
    int64_t chaos_held = 0;
    for (const ChaosLink* link : chaos_) {
      chaos_dropped += link->stats().dropped;
      chaos_duplicated += link->stats().duplicated;
      chaos_corrupted += link->stats().corrupted;
      chaos_held += link->held_now();
    }
    if (fs.delivered != rx) {
      std::ostringstream os;
      os << "fabric delivered " << fs.delivered << " != NIC rx " << rx;
      AddViolation("delivery-accounting", os.str());
    }
    if (require_quiesce) {
      int64_t sent = tx + chaos_duplicated;
      int64_t accounted = fs.delivered + fs.dropped_queue_full +
                          fs.dropped_random + fs.dropped_bad_address +
                          chaos_dropped + chaos_held;
      if (sent != accounted) {
        std::ostringstream os;
        os << "packet conservation: tx " << tx << " + dup "
           << chaos_duplicated << " = " << sent << " but accounted "
           << accounted << " (delivered " << fs.delivered << ", queue-drop "
           << fs.dropped_queue_full << ", random-drop " << fs.dropped_random
           << ", bad-addr " << fs.dropped_bad_address << ", chaos-drop "
           << chaos_dropped << ", chaos-held " << chaos_held << ")";
        AddViolation("packet-conservation", os.str());
      }
    }

    // 4b. Per-tenant packet conservation: when no queue anywhere dropped a
    // packet (so the only sinks are per-tenant-attributable chaos faults),
    // each tenant's NIC TX count plus its clean duplicates must equal its
    // RX count plus its chaos drops and held packets.
    if (require_quiesce && fs.dropped_queue_full == 0 &&
        fs.dropped_random == 0 && fs.dropped_bad_address == 0 &&
        ring_drops == 0 && no_filter == 0) {
      std::map<uint32_t, ChaosLink::TenantChaosStats> chaos_by_tenant;
      std::map<uint32_t, int64_t> held_by_tenant;
      for (const ChaosLink* link : chaos_) {
        for (const auto& [tenant, tstats] : link->tenant_stats()) {
          chaos_by_tenant[tenant].dropped += tstats.dropped;
          chaos_by_tenant[tenant].duplicated += tstats.duplicated;
        }
        for (const auto& [tenant, held] : link->HeldNowByTenant()) {
          held_by_tenant[tenant] += held;
        }
      }
      for (const auto& [tenant, packets] : tenant_packets()) {
        int64_t sent = packets.tx + chaos_by_tenant[tenant].duplicated;
        int64_t accounted = packets.rx + chaos_by_tenant[tenant].dropped +
                            held_by_tenant[tenant];
        if (sent != accounted) {
          std::ostringstream os;
          os << "tenant " << tenant << ": tx " << packets.tx << " + dup "
             << chaos_by_tenant[tenant].duplicated << " = " << sent
             << " but accounted " << accounted << " (rx " << packets.rx
             << ", chaos-drop " << chaos_by_tenant[tenant].dropped
             << ", chaos-held " << held_by_tenant[tenant] << ")";
          AddViolation("tenant-packet-conservation", os.str());
        }
      }
    }

    // 5. CRC accounting: drops can only come from injected corruption, and
    // when nothing was lost after injection, every corruption is caught.
    if (crc_drops > chaos_corrupted) {
      std::ostringstream os;
      os << crc_drops << " CRC drops but only " << chaos_corrupted
         << " injected corruptions";
      AddViolation("crc-accounting", os.str());
    }
    if (require_quiesce && fs.dropped_queue_full == 0 && ring_drops == 0 &&
        no_filter == 0 && chaos_held == 0 && crc_drops != chaos_corrupted) {
      std::ostringstream os;
      os << "injected " << chaos_corrupted << " corruptions but CRC caught "
         << crc_drops;
      AddViolation("crc-accounting", os.str());
    }
  }
}

void InvariantChecker::AddViolation(const std::string& check,
                                    const std::string& detail) {
  if (violations_.size() >= kMaxViolations) {
    ++suppressed_violations_;
    return;
  }
  violations_.push_back(Violation{check, detail});
}

void InvariantChecker::AddWatchViolation(ClientWatch* watch,
                                         const std::string& check,
                                         const std::string& detail) {
  if (watch->violations.size() >= kMaxViolations) {
    ++watch->suppressed;
    return;
  }
  watch->violations.push_back(Violation{check, detail});
}

bool InvariantChecker::ok() const {
  if (!violations_.empty()) {
    return false;
  }
  for (const ClientWatch& watch : watches_) {
    if (!watch.violations.empty()) {
      return false;
    }
  }
  return true;
}

const std::vector<Violation>& InvariantChecker::violations() const {
  merged_violations_.clear();
  merged_violations_.insert(merged_violations_.end(), violations_.begin(),
                            violations_.end());
  for (const ClientWatch& watch : watches_) {
    merged_violations_.insert(merged_violations_.end(),
                              watch.violations.begin(),
                              watch.violations.end());
  }
  return merged_violations_;
}

std::string InvariantChecker::ViolationSummary() const {
  const std::vector<Violation>& all = violations();
  int64_t suppressed = suppressed_violations_;
  for (const ClientWatch& watch : watches_) {
    suppressed += watch.suppressed;
  }
  std::ostringstream os;
  size_t shown = std::min<size_t>(all.size(), 10);
  for (size_t i = 0; i < shown; ++i) {
    os << "[" << all[i].check << "] " << all[i].detail << "\n";
  }
  if (all.size() > shown) {
    os << "... and " << (all.size() - shown + suppressed) << " more\n";
  }
  return os.str();
}

}  // namespace snap
