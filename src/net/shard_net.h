// Shard-aware fabric: one Fabric per ShardedSim shard, cross-shard packet
// hand-off over the model-checked SpscRing, canonical arrival ordering at
// epoch barriers.
//
// Topology. Host ids are global: every AddHost() on any shard's fabric
// reserves the same id on every other shard (placeholder port, nullptr
// NIC), so Packet::dst_host indexes the same tables everywhere. Each
// shard's Fabric routes every wire departure to this group's
// RouteFromShard, which stages a Handoff in the SPSC ring for the
// (source shard, destination shard) channel — including same-shard
// traffic, so the delivery pipeline is identical no matter where the two
// hosts live.
//
// Exchange. At every epoch barrier (all shard threads parked) the
// coordinator drains each destination's inbound channels and sorts the
// handoffs by the canonical key (wire_time, src_host, seq), where seq is
// a per-source-shard staging counter. Equal (wire_time, src_host) implies
// the same source shard, so seq reproduces the source's emission order;
// across sources, the key is a pure function of the simulated traffic.
// Arrival events are then scheduled in that order at wire_time +
// propagation_delay — the event queue breaks same-time ties by insertion
// order, so execution order is canonical too. This is what makes trace
// digests invariant across shard counts and equal to the serial engine's
// (docs/PARALLEL.md spells out the argument and its edge cases).
//
// Safety. The conservative horizon (ShardedSim) guarantees every handoff
// staged during an epoch has arrival >= the epoch's end, so barrier-time
// ScheduleAt never rewinds a destination shard's clock. The group CHECKs
// lookahead <= propagation_delay at construction.
//
// Time frame. Delivery hooks (chaos links) and port contention run on the
// destination shard at the switch-arrival time, so per-shard fabrics are
// switched into arrival-time mode: EnqueueAtPort must not add propagation
// a second time. Chaos links schedule everything relative to now() and
// work unchanged.
#ifndef SRC_NET_SHARD_NET_H_
#define SRC_NET_SHARD_NET_H_

#include <memory>
#include <vector>

#include "src/net/fabric.h"
#include "src/queue/spsc_ring.h"
#include "src/sim/model_params.h"
#include "src/sim/sharded_sim.h"

namespace snap {

class ShardedFabricGroup : public ShardRouter {
 public:
  ShardedFabricGroup(ShardedSim* sharded, const NicParams& params);
  ~ShardedFabricGroup() override;

  ShardedFabricGroup(const ShardedFabricGroup&) = delete;
  ShardedFabricGroup& operator=(const ShardedFabricGroup&) = delete;

  int num_shards() const { return static_cast<int>(fabrics_.size()); }
  Fabric* fabric(int shard) { return fabrics_[shard].get(); }
  int num_hosts() const { return static_cast<int>(host_shard_.size()); }

  int shard_of_host(int host) const { return host_shard_[host]; }
  Fabric* host_fabric(int host) { return fabrics_[host_shard_[host]].get(); }
  Simulator* host_sim(int host) { return sharded_->sim(host_shard_[host]); }

  // ShardRouter interface (called by the per-shard Fabrics).
  void OnAddHost(Fabric* adder) override;
  void RouteFromShard(Fabric* src, PacketPtr packet,
                      SimTime wire_time) override;

  // Sum of every shard fabric's delivery/drop counters.
  Fabric::Stats AggregateStats() const;

  struct ExchangeStats {
    int64_t handoffs = 0;       // packets staged through the barriers
    int64_t cross_shard = 0;    // staged toward a different shard
    int64_t ring_overflow = 0;  // staged via the spill path (ring full)
    int64_t exchanges = 0;      // barrier exchanges that moved packets
  };
  ExchangeStats exchange_stats() const;

 private:
  // One staged packet. The pointer is released from its unique_ptr so the
  // Handoff is trivially copyable through the ring; ownership transfers to
  // the arrival event at exchange (or back to ~ShardedFabricGroup).
  struct Handoff {
    SimTime wire_time = 0;
    int src_host = -1;
    uint64_t seq = 0;
    Packet* packet = nullptr;
  };

  // Directed (src shard -> dst shard) channel. The ring is SPSC: the
  // source shard's thread produces during the epoch, the coordinator
  // consumes at the barrier. Overflow spills to a source-owned vector;
  // once the ring fills it stays full until the barrier, so every spilled
  // handoff was staged after every ringed one and per-channel FIFO order
  // survives (the canonical sort re-establishes total order anyway).
  struct Channel {
    explicit Channel(size_t capacity) : ring(capacity) {}
    SpscRing<Handoff> ring;
    std::vector<Handoff> spill;
  };

  // Per-source-shard mutable state, cache-line separated so shard threads
  // never share a line.
  struct alignas(64) PerSource {
    uint64_t next_seq = 0;
    int64_t handoffs = 0;
    int64_t cross_shard = 0;
    int64_t ring_overflow = 0;
  };

  Channel& channel(int src, int dst) {
    return *channels_[src * num_shards() + dst];
  }

  // Runs at every epoch barrier: drain, sort, schedule arrivals.
  void Exchange();

  ShardedSim* sharded_;
  NicParams params_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<PerSource> per_source_;
  std::vector<int> host_shard_;
  std::vector<Handoff> scratch_;  // coordinator-only sort buffer
  int64_t exchanges_ = 0;
};

}  // namespace snap

#endif  // SRC_NET_SHARD_NET_H_
