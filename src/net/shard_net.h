// Shard-aware fabric: one Fabric per ShardedSim shard, cross-shard packet
// hand-off in fixed-size batches over the model-checked SpscRing, canonical
// arrival ordering via the per-port sequencer.
//
// Topology. Host ids are global: every AddHost() on any shard's fabric
// reserves the same id on every other shard (placeholder port, nullptr
// NIC), so Packet::dst_host indexes the same tables everywhere. Each
// shard's Fabric routes every wire departure to this group's
// RouteFromShard. Same-shard traffic is delivered eagerly: it is staged
// straight onto the destination port's arrival sequencer
// (Fabric::StageArrival) at its exact arrival time, never touching a ring
// or a barrier — which both removes it from the exchange entirely and
// frees the conservative horizon from the intra-shard propagation delay
// (ShardedSim's per-destination horizon skips the diagonal).
//
// Exchange. Cross-shard departures accumulate in a per-(src,dst)-channel
// staging batch (kHandoffBatchSize handoffs); full batches go through the
// SPSC ring — one push per batch instead of per packet — produced by the
// shard thread during the epoch and consumed by the coordinator at the
// barrier. A full ring spills whole batches to a source-owned vector, and
// the coordinator also reads the final partial staging batch directly (the
// epoch barriers provide the happens-before in both directions), so
// per-channel order is ring, then spill, then staging = exact emission
// order. At each barrier the coordinator drains every destination's
// inbound channels, sorts by the canonical key (wire_time, src_host, seq)
// — seq is a per-source-shard staging counter, so equal (wire_time,
// src_host) ties reproduce the source's emission order and the key is a
// pure function of the simulated traffic — and stages each handoff on the
// destination fabric's arrival sequencer at wire_time + propagation
// between the two hosts. The sequencer re-sorts same-(port, instant)
// arrivals by the same canonical key at delivery, so tie order is
// identical no matter how hosts are placed or how many shards exist; this
// is what makes trace digests invariant across shard counts and
// placements, and equal to the serial engine's (docs/PARALLEL.md).
//
// Lookahead. The group derives ShardedSim's per-pair lookahead matrix from
// the topology: L(s, d) = propagation_delay if shards s and d own hosts in
// a common cluster, else propagation_delay + inter_cluster_extra_delay
// (the minimum latency between any host of s and any host of d). Shard
// pairs coupled only across clusters run longer epochs with fewer
// barriers. The matrix is recomputed lazily at the first exchange after a
// host is added.
//
// Safety. The conservative horizon (ShardedSim) guarantees every handoff
// staged during an epoch has arrival >= the destination's horizon, so
// barrier-time staging never rewinds a destination shard's clock. The
// group CHECKs lookahead <= propagation_delay at construction.
//
// Time frame. Delivery hooks (chaos links) and port contention run on the
// destination shard at the switch-arrival time, so per-shard fabrics are
// switched into arrival-time mode: EnqueueAtPort must not add propagation
// a second time. Chaos links schedule everything relative to now() and
// work unchanged.
#ifndef SRC_NET_SHARD_NET_H_
#define SRC_NET_SHARD_NET_H_

#include <memory>
#include <vector>

#include "src/net/fabric.h"
#include "src/queue/spsc_ring.h"
#include "src/sim/model_params.h"
#include "src/sim/sharded_sim.h"

namespace snap {

class ShardedFabricGroup : public ShardRouter {
 public:
  ShardedFabricGroup(ShardedSim* sharded, const NicParams& params);
  ~ShardedFabricGroup() override;

  ShardedFabricGroup(const ShardedFabricGroup&) = delete;
  ShardedFabricGroup& operator=(const ShardedFabricGroup&) = delete;

  int num_shards() const { return static_cast<int>(fabrics_.size()); }
  Fabric* fabric(int shard) { return fabrics_[shard].get(); }
  int num_hosts() const { return static_cast<int>(host_shard_.size()); }

  int shard_of_host(int host) const { return host_shard_[host]; }
  Fabric* host_fabric(int host) { return fabrics_[host_shard_[host]].get(); }
  Simulator* host_sim(int host) { return sharded_->sim(host_shard_[host]); }

  // ShardRouter interface (called by the per-shard Fabrics).
  void OnAddHost(Fabric* adder) override;
  void RouteFromShard(Fabric* src, PacketPtr packet,
                      SimTime wire_time) override;

  // Sum of every shard fabric's delivery/drop counters.
  Fabric::Stats AggregateStats() const;

  struct ExchangeStats {
    int64_t handoffs = 0;      // packets routed through the group
    int64_t local_direct = 0;  // same-shard, delivered eagerly (no barrier)
    int64_t cross_shard = 0;   // staged toward a different shard
    int64_t ring_overflow = 0;  // batches spilled (ring full)
    int64_t exchanges = 0;      // barrier exchanges that moved packets
    // Profiling only (0 otherwise): deepest single-channel ring drain and
    // largest per-destination inbound handoff burst seen at any barrier.
    int64_t max_ring_batches = 0;
    int64_t max_inbound_handoffs = 0;
  };
  ExchangeStats exchange_stats() const;

  // Arms deterministic handoff-depth instrumentation: per-destination
  // inbound-handoff counters and ring-occupancy gauges in each shard's
  // Telemetry registry (net/shard/<d>/...), plus kProfilerTrack counter
  // events in per-shard traces when tracing is on. Counts only — no wall
  // clock — so output stays deterministic per seed; off by default so
  // digests are unchanged from pre-profiler builds. Call before Run*.
  void EnableProfiling();

  // Cross-shard handoffs per batch pushed through a ring.
  static constexpr int kHandoffBatchSize = 16;

 private:
  // One staged packet. The pointer is released from its unique_ptr so the
  // Handoff is trivially copyable through the ring; ownership transfers to
  // the destination port's sequencer at exchange (or back to
  // ~ShardedFabricGroup).
  struct Handoff {
    SimTime wire_time = 0;
    int src_host = -1;
    uint64_t seq = 0;
    Packet* packet = nullptr;
  };

  struct HandoffBatch {
    int32_t count = 0;
    Handoff items[kHandoffBatchSize];
  };

  // Directed (src shard -> dst shard) channel. The ring is SPSC: the
  // source shard's thread produces full batches during the epoch, the
  // coordinator consumes at the barrier. Overflow spills whole batches to
  // a source-owned vector; once the ring fills it stays full until the
  // barrier, so every spilled batch was staged after every ringed one and
  // per-channel FIFO order survives (the canonical sort re-establishes
  // total order anyway). `staging` is the producer's partial batch; the
  // coordinator reads and resets it at the barrier, which is race-free for
  // the same reason the spill vector is (the epoch barriers order every
  // producer write before the coordinator's read, and the reset before the
  // producer resumes).
  struct Channel {
    explicit Channel(size_t capacity) : ring(capacity) {}
    SpscRing<HandoffBatch> ring;
    std::vector<HandoffBatch> spill;
    HandoffBatch staging;
  };

  // Per-source-shard mutable state, cache-line separated so shard threads
  // never share a line.
  struct alignas(64) PerSource {
    uint64_t next_seq = 0;
    int64_t handoffs = 0;
    int64_t local_direct = 0;
    int64_t cross_shard = 0;
    int64_t ring_overflow = 0;
  };

  Channel& channel(int src, int dst) {
    return *channels_[src * num_shards() + dst];
  }

  // Runs at every epoch barrier: drain, sort, stage arrivals.
  void Exchange();
  // Recomputes the per-pair lookahead matrix from each shard's cluster
  // footprint (lazy, after host additions).
  void RefreshPairLookaheads();

  ShardedSim* sharded_;
  NicParams params_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<PerSource> per_source_;
  std::vector<int> host_shard_;
  std::vector<Handoff> scratch_;  // coordinator-only sort buffer
  int64_t exchanges_ = 0;
  bool lookahead_dirty_ = false;

  // Profiling state (EnableProfiling), written only at barriers.
  bool profiling_ = false;
  std::vector<Counter*> prof_inbound_;     // per dst shard
  std::vector<int64_t> max_ring_batches_;  // per dst, running max
  std::vector<int64_t> max_inbound_;       // per dst, running max
};

}  // namespace snap

#endif  // SRC_NET_SHARD_NET_H_
