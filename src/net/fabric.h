// Simulated datacenter fabric: hosts attached to a switch, with per-
// destination egress port queues that drain at line rate. The egress queue
// is where congestion appears: incast traffic inflates queueing delay
// (which Timely's RTT-gradient congestion control reacts to) and overflows
// drop (the lossy fabric of Section 5.4: no PFC pauses; losses are handled
// end-to-end).
#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/net/egress.h"
#include "src/net/nic.h"
#include "src/packet/packet.h"
#include "src/sim/model_params.h"
#include "src/sim/simulator.h"

namespace snap {

class Fabric;

// Routes packets between per-shard Fabrics in a sharded simulation
// (src/net/shard_net.h). A Fabric with a shard router installed hands it
// every routed packet instead of queueing locally; the router stages the
// packet for delivery on the destination host's shard at the next epoch
// barrier.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;
  // Called at the top of Fabric::AddHost on `adder`, before the host id is
  // assigned, so the router can pad every other shard's host table and
  // keep host ids global across shards.
  virtual void OnAddHost(Fabric* adder) = 0;
  // Takes ownership of a packet leaving `src`'s wire at `wire_time`.
  virtual void RouteFromShard(Fabric* src, PacketPtr packet,
                              SimTime wire_time) = 0;
};

class Fabric : public PacketEgress {
 public:
  Fabric(Simulator* sim, const NicParams& params);

  // Creates a new host with one NIC attached to the fabric; hosts are
  // numbered densely from 0 (globally, across shards, when a shard router
  // is installed).
  Nic* AddHost();

  // Records a host that lives on another shard's fabric: reserves its id
  // locally (nullptr NIC, placeholder port) so host ids index the same
  // tables on every shard. Only shard routers call this.
  void AddRemoteHost();

  // nullptr when the host lives on another shard's fabric.
  Nic* nic(int host) { return nics_[host].get(); }
  bool host_is_local(int host) const {
    return host >= 0 && host < num_hosts() && nics_[host] != nullptr;
  }
  int num_hosts() const { return static_cast<int>(nics_.size()); }

  // Called by a NIC when a packet finishes serializing onto its uplink at
  // time `wire_time`. Routes through the destination's egress port.
  void Route(PacketPtr packet, SimTime wire_time) override;

  // Second half of Route: contend for the destination's egress port queue
  // and schedule delivery. Public so delivery hooks can re-inject packets
  // they intercepted (possibly delayed/cloned/corrupted). The time
  // argument is the source wire time normally, or the switch-arrival time
  // when arrival-time mode is on (see set_arrival_time_mode).
  void EnqueueAtPort(PacketPtr packet, SimTime wire_time);

  // Delivery entry point used by shard routers at epoch barriers: the
  // packet has already crossed the fabric (switch_arrival = wire_time +
  // propagation), so this runs the delivery hook / port contention in the
  // arrival time frame.
  void DeliverAtSwitch(PacketPtr packet, SimTime switch_arrival);

  // Canonically ordered arrival staging (arrival-time-mode fabrics only).
  // The packet is parked on its destination port and delivered — via
  // DeliverAtSwitch — by a per-port sequencer event at `arrival`; arrivals
  // sharing a (port, arrival) pair are delivered in (wire_time, src_host,
  // seq) order no matter what order they were staged in. This is what
  // makes same-instant tie order placement- and shard-count-invariant:
  // cross-shard packets are staged here at epoch barriers while same-shard
  // packets are staged eagerly at route time, and both meet in one
  // canonical queue. `arrival` must be >= the owning simulator's clock.
  void StageArrival(PacketPtr packet, SimTime arrival, SimTime wire_time,
                    int src_host, uint64_t seq);

  // Installs the cross-shard router; this fabric then owns only shard
  // `shard_id`'s hosts and forwards every routed packet to the router.
  void set_shard_router(ShardRouter* router, int shard_id) {
    router_ = router;
    shard_id_ = shard_id;
  }
  int shard_id() const { return shard_id_; }

  // In arrival-time mode, EnqueueAtPort's time argument is interpreted as
  // the switch-arrival time (propagation already elapsed) instead of the
  // source wire time. Sharded fabrics run this way: their delivery hooks
  // (chaos links) execute on the destination shard at wire + propagation,
  // so re-injected packets must not pay propagation twice.
  void set_arrival_time_mode(bool on) { arrival_time_mode_ = on; }

  // Fault injection: drop each packet independently with this probability.
  // The decision is a deterministic per-packet hash of (simulation seed,
  // src, dst, per-source departure sequence) rather than an RNG draw: a
  // host's departures are totally ordered by its own timeline, so the
  // sequence numbers — and hence the drop pattern — are identical no
  // matter how hosts are sharded or placed, which keeps drop_probability >
  // 0 digest-comparable between serial and sharded runs.
  void set_random_drop_probability(double p) { drop_probability_ = p; }
  double random_drop_probability() const { return drop_probability_; }
  void CountRandomDrop() { ++stats_.dropped_random; }

  // Interposes on every packet routed toward `dst_host`, after the random-
  // drop stage and before port queueing. The hook owns the packet; it
  // delivers (or drops) via EnqueueAtPort. Used by src/testing/chaos.h.
  void SetDeliveryHook(int dst_host,
                       std::function<void(PacketPtr, SimTime)> hook) {
    if (dst_host >= static_cast<int>(delivery_hooks_.size())) {
      delivery_hooks_.resize(dst_host + 1);
    }
    delivery_hooks_[dst_host] = std::move(hook);
  }

  struct Stats {
    int64_t delivered = 0;
    int64_t dropped_queue_full = 0;
    int64_t dropped_random = 0;
    int64_t dropped_bad_address = 0;
    // Drain events fired (batched path); delivered / drain_events is the
    // mean delivery batch size.
    int64_t drain_events = 0;
  };
  const Stats& stats() const { return stats_; }

  // Instantaneous queue depth (bytes) at a destination's egress port.
  int64_t PortQueueBytes(int host) const;

  Simulator* sim() { return sim_; }
  const NicParams& params() const { return params_; }

 private:
  // A packet in flight toward a port's NIC with its exact modeled delivery
  // time. `pending` stays sorted by `at` because a port's busy_until (and
  // so each successive delivery time) is monotonically nondecreasing.
  struct PendingDelivery {
    SimTime at;
    PacketPtr packet;
  };
  // An arrival staged by StageArrival, waiting for the port sequencer.
  struct StagedArrival {
    SimTime at;
    SimTime wire_time;
    int src_host;
    uint64_t seq;
    PacketPtr packet;
  };
  struct Port {
    SimTime busy_until = 0;
    int64_t queued_bytes = 0;
    std::deque<PendingDelivery> pending;
    // Exactly one drain event is in flight per port while pending is
    // non-empty; it fires at pending.front().at.
    bool drain_armed = false;
    // Arrival sequencer state (arrival-time mode): staged arrivals not yet
    // handed to DeliverAtSwitch, and the one armed sequencer event
    // (rearmed earlier whenever an earlier arrival is staged).
    std::vector<StagedArrival> staged;
    SimTime sequencer_armed_at = -1;
    EventHandle sequencer_event;
  };

  // Delivers every pending packet whose time has come, then re-arms at the
  // next pending delivery time (batched path).
  void DrainPort(int dst);
  void DeliverOne(int dst, PacketPtr packet);
  // Port sequencer: delivers every staged arrival due now in canonical
  // (wire_time, src_host, seq) order, then re-arms at the next staged time.
  void DrainArrivals(int dst);
  // Deterministic hashed drop decision for a packet leaving `src_host`.
  bool DropsPacket(const Packet& packet);

  Simulator* sim_;
  NicParams params_;
  std::vector<std::unique_ptr<Nic>> nics_;
  // deque: Port holds a move-only pending queue and must not relocate.
  std::deque<Port> ports_;
  std::vector<std::function<void(PacketPtr, SimTime)>> delivery_hooks_;
  double drop_probability_ = 0;
  // Per-source-host departure counters feeding the hashed drop decision.
  std::vector<uint64_t> drop_seq_;
  ShardRouter* router_ = nullptr;
  int shard_id_ = 0;
  bool arrival_time_mode_ = false;
  Stats stats_;
};

}  // namespace snap

#endif  // SRC_NET_FABRIC_H_
