// Simulated datacenter fabric: hosts attached to a switch, with per-
// destination egress port queues that drain at line rate. The egress queue
// is where congestion appears: incast traffic inflates queueing delay
// (which Timely's RTT-gradient congestion control reacts to) and overflows
// drop (the lossy fabric of Section 5.4: no PFC pauses; losses are handled
// end-to-end).
#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <memory>
#include <vector>

#include "src/net/nic.h"
#include "src/packet/packet.h"
#include "src/sim/model_params.h"
#include "src/sim/simulator.h"

namespace snap {

class Fabric {
 public:
  Fabric(Simulator* sim, const NicParams& params);

  // Creates a new host with one NIC attached to the fabric; hosts are
  // numbered densely from 0.
  Nic* AddHost();

  Nic* nic(int host) { return nics_[host].get(); }
  int num_hosts() const { return static_cast<int>(nics_.size()); }

  // Called by a NIC when a packet finishes serializing onto its uplink at
  // time `wire_time`. Routes through the destination's egress port.
  void Route(PacketPtr packet, SimTime wire_time);

  // Fault injection: drop each packet independently with this probability.
  void set_random_drop_probability(double p) { drop_probability_ = p; }

  struct Stats {
    int64_t delivered = 0;
    int64_t dropped_queue_full = 0;
    int64_t dropped_random = 0;
    int64_t dropped_bad_address = 0;
  };
  const Stats& stats() const { return stats_; }

  // Instantaneous queue depth (bytes) at a destination's egress port.
  int64_t PortQueueBytes(int host) const;

  Simulator* sim() { return sim_; }
  const NicParams& params() const { return params_; }

 private:
  struct Port {
    SimTime busy_until = 0;
    int64_t queued_bytes = 0;
  };

  Simulator* sim_;
  NicParams params_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<Port> ports_;
  double drop_probability_ = 0;
  Stats stats_;
};

// Nanoseconds to serialize `bytes` at `gbps`.
inline SimDuration SerializationDelay(int64_t bytes, double gbps) {
  return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 / gbps);
}

}  // namespace snap

#endif  // SRC_NET_FABRIC_H_
