#include "src/net/shard_net.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace snap {

namespace {
// Ring capacity per directed shard pair, in batches (so
// kChannelBatches * kHandoffBatchSize packets). Sized for a burst of one
// epoch's traffic between two shards; overflow degrades to the spill
// vector, not to loss.
constexpr size_t kChannelBatches = 64;
}  // namespace

ShardedFabricGroup::ShardedFabricGroup(ShardedSim* sharded,
                                       const NicParams& params)
    : sharded_(sharded), params_(params) {
  // Conservative sync is only sound if nothing crosses shards faster than
  // the lookahead the coordinator runs epochs with. propagation_delay is
  // the topology's minimum hop; RefreshPairLookaheads raises individual
  // pairs when their hosts are provably further apart.
  SNAP_CHECK_LE(sharded_->lookahead(), params_.propagation_delay);
  int n = sharded_->num_shards();
  fabrics_.reserve(n);
  for (int s = 0; s < n; ++s) {
    auto fabric = std::make_unique<Fabric>(sharded_->sim(s), params_);
    fabric->set_shard_router(this, s);
    fabric->set_arrival_time_mode(true);
    fabrics_.push_back(std::move(fabric));
  }
  channels_.reserve(static_cast<size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) {
    channels_.push_back(std::make_unique<Channel>(kChannelBatches));
  }
  per_source_.resize(n);
  sharded_->AddBarrierHook([this] { Exchange(); });
}

ShardedFabricGroup::~ShardedFabricGroup() {
  // Profiling gauges capture `this`; pull them before the callbacks
  // dangle (the group usually dies before its ShardedSim).
  if (profiling_) {
    for (int d = 0; d < num_shards(); ++d) {
      Telemetry& t = sharded_->sim(d)->telemetry();
      const std::string base = "net/shard/" + std::to_string(d);
      t.UnregisterGauge(base + "/handoff_ring_max_batches");
      t.UnregisterGauge(base + "/handoff_max_inbound");
    }
  }
  // Reclaim packets still staged (simulation torn down mid-flight).
  for (auto& ch : channels_) {
    while (auto b = ch->ring.TryPop()) {
      for (int i = 0; i < b->count; ++i) delete b->items[i].packet;
    }
    for (auto& b : ch->spill) {
      for (int i = 0; i < b.count; ++i) delete b.items[i].packet;
    }
    ch->spill.clear();
    for (int i = 0; i < ch->staging.count; ++i) {
      delete ch->staging.items[i].packet;
    }
    ch->staging.count = 0;
  }
}

void ShardedFabricGroup::OnAddHost(Fabric* adder) {
  host_shard_.push_back(adder->shard_id());
  lookahead_dirty_ = true;
  for (auto& fabric : fabrics_) {
    if (fabric.get() != adder) {
      fabric->AddRemoteHost();
    }
  }
}

void ShardedFabricGroup::RefreshPairLookaheads() {
  lookahead_dirty_ = false;
  const int n = num_shards();
  if (n <= 1) return;
  // Which clusters each shard owns hosts in.
  std::vector<std::vector<int>> clusters(n);
  for (int h = 0; h < num_hosts(); ++h) {
    auto& mine = clusters[host_shard_[h]];
    int c = params_.cluster_of(h);
    if (std::find(mine.begin(), mine.end(), c) == mine.end()) {
      mine.push_back(c);
    }
  }
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      bool share_cluster = false;
      for (int c : clusters[s]) {
        if (std::find(clusters[d].begin(), clusters[d].end(), c) !=
            clusters[d].end()) {
          share_cluster = true;
          break;
        }
      }
      // Minimum latency from any host of s to any host of d. An empty
      // shard conservatively gets the flat minimum only when it shares a
      // cluster, which it never does, so it lands on the (still sound)
      // maximum — it has no hosts to send from anyway.
      sharded_->set_pair_lookahead(s, d,
                                   share_cluster
                                       ? params_.propagation_delay
                                       : params_.max_propagation_delay());
    }
  }
}

void ShardedFabricGroup::RouteFromShard(Fabric* src, PacketPtr packet,
                                        SimTime wire_time) {
  const int s = src->shard_id();
  const int d = host_shard_[packet->dst_host];
  const int src_host = packet->src_host;
  const int dst_host = packet->dst_host;
  PerSource& ps = per_source_[s];
  ++ps.handoffs;
  const uint64_t seq = ps.next_seq++;
  if (s == d) {
    // Same-shard traffic bypasses rings and barriers entirely: stage it
    // on our own destination port's sequencer at its exact arrival time.
    // The sequencer orders same-instant ties by the same canonical key
    // the exchange sorts by, so the delivery order matches what a
    // barrier crossing would have produced.
    ++ps.local_direct;
    src->StageArrival(std::move(packet),
                      wire_time + params_.propagation_between(src_host,
                                                              dst_host),
                      wire_time, src_host, seq);
    return;
  }
  ++ps.cross_shard;
  Channel& ch = channel(s, d);
  HandoffBatch& batch = ch.staging;
  batch.items[batch.count++] =
      Handoff{wire_time, src_host, seq, packet.release()};
  if (batch.count == kHandoffBatchSize) {
    if (!ch.ring.TryPush(batch)) {
      ch.spill.push_back(batch);
      ++ps.ring_overflow;
    }
    batch.count = 0;
  }
}

void ShardedFabricGroup::Exchange() {
  if (lookahead_dirty_) RefreshPairLookaheads();
  int n = num_shards();
  bool moved = false;
  for (int dst = 0; dst < n; ++dst) {
    scratch_.clear();
    for (int src = 0; src < n; ++src) {
      if (src == dst) continue;  // same-shard traffic never staged here
      Channel& ch = channel(src, dst);
      int64_t ring_batches = 0;
      while (auto b = ch.ring.TryPop()) {
        ++ring_batches;
        for (int i = 0; i < b->count; ++i) scratch_.push_back(b->items[i]);
      }
      if (profiling_) {
        max_ring_batches_[dst] =
            std::max(max_ring_batches_[dst], ring_batches);
      }
      for (const HandoffBatch& b : ch.spill) {
        for (int i = 0; i < b.count; ++i) scratch_.push_back(b.items[i]);
      }
      ch.spill.clear();
      for (int i = 0; i < ch.staging.count; ++i) {
        scratch_.push_back(ch.staging.items[i]);
      }
      ch.staging.count = 0;
    }
    if (profiling_ && !scratch_.empty()) {
      const int64_t inbound = static_cast<int64_t>(scratch_.size());
      prof_inbound_[dst]->Add(inbound);
      max_inbound_[dst] = std::max(max_inbound_[dst], inbound);
      if (sharded_->tracing_enabled()) {
        // Deterministic: inbound depth is a pure function of the traffic
        // and the (deterministic) epoch structure; the timestamp is the
        // barrier's simulated time.
        sharded_->shard_tracer(dst)->CounterValueOnTrack(
            sharded_->now(), TraceRecorder::kProfilerTrack,
            "handoff/inbound", inbound);
      }
    }
    if (scratch_.empty()) continue;
    moved = true;
    // Canonical order: a pure function of the traffic, independent of the
    // shard layout. seq ties only arise within one source shard, where it
    // reproduces emission order. (Same-instant arrival ties are
    // re-canonicalized by the port sequencer; sorting here keeps the
    // staging near-ordered so sequencers rarely re-arm.)
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Handoff& a, const Handoff& b) {
                if (a.wire_time != b.wire_time) {
                  return a.wire_time < b.wire_time;
                }
                if (a.src_host != b.src_host) {
                  return a.src_host < b.src_host;
                }
                return a.seq < b.seq;
              });
    Fabric* dfab = fabrics_[dst].get();
    for (Handoff& h : scratch_) {
      PacketPtr p(h.packet);
      h.packet = nullptr;
      SimTime arrival =
          h.wire_time + params_.propagation_between(h.src_host, p->dst_host);
      dfab->StageArrival(std::move(p), arrival, h.wire_time, h.src_host,
                         h.seq);
    }
  }
  if (moved) ++exchanges_;
}

Fabric::Stats ShardedFabricGroup::AggregateStats() const {
  Fabric::Stats total;
  for (const auto& fabric : fabrics_) {
    const Fabric::Stats& s = fabric->stats();
    total.delivered += s.delivered;
    total.dropped_queue_full += s.dropped_queue_full;
    total.dropped_random += s.dropped_random;
    total.dropped_bad_address += s.dropped_bad_address;
    total.drain_events += s.drain_events;
  }
  return total;
}

ShardedFabricGroup::ExchangeStats ShardedFabricGroup::exchange_stats() const {
  ExchangeStats out;
  for (const PerSource& ps : per_source_) {
    out.handoffs += ps.handoffs;
    out.local_direct += ps.local_direct;
    out.cross_shard += ps.cross_shard;
    out.ring_overflow += ps.ring_overflow;
  }
  out.exchanges = exchanges_;
  for (int64_t v : max_ring_batches_) {
    out.max_ring_batches = std::max(out.max_ring_batches, v);
  }
  for (int64_t v : max_inbound_) {
    out.max_inbound_handoffs = std::max(out.max_inbound_handoffs, v);
  }
  return out;
}

void ShardedFabricGroup::EnableProfiling() {
  if (profiling_) return;
  profiling_ = true;
  const int n = num_shards();
  prof_inbound_.resize(n);
  max_ring_batches_.assign(n, 0);
  max_inbound_.assign(n, 0);
  for (int d = 0; d < n; ++d) {
    Telemetry& t = sharded_->sim(d)->telemetry();
    const std::string base = "net/shard/" + std::to_string(d);
    prof_inbound_[d] = t.GetCounter(base + "/handoff_in");
    t.RegisterGauge(base + "/handoff_ring_max_batches",
                    [this, d]() -> int64_t { return max_ring_batches_[d]; });
    t.RegisterGauge(base + "/handoff_max_inbound",
                    [this, d]() -> int64_t { return max_inbound_[d]; });
  }
}

}  // namespace snap
