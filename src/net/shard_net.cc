#include "src/net/shard_net.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace snap {

namespace {
// Ring capacity per directed shard pair. Sized for a burst of one epoch's
// traffic between two shards; overflow degrades to the spill vector, not
// to loss.
constexpr size_t kChannelCapacity = 1024;
}  // namespace

ShardedFabricGroup::ShardedFabricGroup(ShardedSim* sharded,
                                       const NicParams& params)
    : sharded_(sharded), params_(params) {
  // Conservative sync is only sound if nothing crosses shards faster than
  // the lookahead the coordinator runs epochs with.
  SNAP_CHECK_LE(sharded_->lookahead(), params_.propagation_delay);
  int n = sharded_->num_shards();
  fabrics_.reserve(n);
  for (int s = 0; s < n; ++s) {
    auto fabric = std::make_unique<Fabric>(sharded_->sim(s), params_);
    fabric->set_shard_router(this, s);
    fabric->set_arrival_time_mode(true);
    fabrics_.push_back(std::move(fabric));
  }
  channels_.reserve(static_cast<size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) {
    channels_.push_back(std::make_unique<Channel>(kChannelCapacity));
  }
  per_source_.resize(n);
  sharded_->AddBarrierHook([this] { Exchange(); });
}

ShardedFabricGroup::~ShardedFabricGroup() {
  // Reclaim packets still staged (simulation torn down mid-flight).
  for (auto& ch : channels_) {
    while (auto h = ch->ring.TryPop()) delete h->packet;
    for (auto& h : ch->spill) delete h.packet;
    ch->spill.clear();
  }
}

void ShardedFabricGroup::OnAddHost(Fabric* adder) {
  host_shard_.push_back(adder->shard_id());
  for (auto& fabric : fabrics_) {
    if (fabric.get() != adder) {
      fabric->AddRemoteHost();
    }
  }
}

void ShardedFabricGroup::RouteFromShard(Fabric* src, PacketPtr packet,
                                        SimTime wire_time) {
  // Random drop runs at route time on the source shard (its rng), keeping
  // the serial path's semantics. Note: nonzero drop probability consumes
  // per-shard rng draws in shard-dependent order, so exact serial digest
  // parity is only promised at drop_probability == 0 (chaos links do
  // their loss injection with their own per-link rngs and stay parity-
  // exact; see docs/PARALLEL.md).
  if (src->random_drop_probability() > 0 &&
      src->sim()->rng().NextBernoulli(src->random_drop_probability())) {
    src->CountRandomDrop();
    return;
  }
  int s = src->shard_id();
  int d = host_shard_[packet->dst_host];
  PerSource& ps = per_source_[s];
  Handoff h{wire_time, packet->src_host, ps.next_seq++, packet.release()};
  Channel& ch = channel(s, d);
  if (!ch.ring.TryPush(h)) {
    ch.spill.push_back(h);
    ++ps.ring_overflow;
  }
  ++ps.handoffs;
  if (s != d) ++ps.cross_shard;
}

void ShardedFabricGroup::Exchange() {
  int n = num_shards();
  bool moved = false;
  for (int dst = 0; dst < n; ++dst) {
    scratch_.clear();
    for (int src = 0; src < n; ++src) {
      Channel& ch = channel(src, dst);
      while (auto h = ch.ring.TryPop()) {
        scratch_.push_back(*h);
      }
      for (const Handoff& h : ch.spill) {
        scratch_.push_back(h);
      }
      ch.spill.clear();
    }
    if (scratch_.empty()) continue;
    moved = true;
    // Canonical order: a pure function of the traffic, independent of the
    // shard layout. seq ties only arise within one source shard, where it
    // reproduces emission order.
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Handoff& a, const Handoff& b) {
                if (a.wire_time != b.wire_time) {
                  return a.wire_time < b.wire_time;
                }
                if (a.src_host != b.src_host) {
                  return a.src_host < b.src_host;
                }
                return a.seq < b.seq;
              });
    Fabric* dfab = fabrics_[dst].get();
    Simulator* dsim = sharded_->sim(dst);
    for (Handoff& h : scratch_) {
      SimTime arrival = h.wire_time + params_.propagation_delay;
      dsim->ScheduleAt(arrival,
                       [dfab, arrival, p = PacketPtr(h.packet)]() mutable {
                         dfab->DeliverAtSwitch(std::move(p), arrival);
                       });
      h.packet = nullptr;
    }
  }
  if (moved) ++exchanges_;
}

Fabric::Stats ShardedFabricGroup::AggregateStats() const {
  Fabric::Stats total;
  for (const auto& fabric : fabrics_) {
    const Fabric::Stats& s = fabric->stats();
    total.delivered += s.delivered;
    total.dropped_queue_full += s.dropped_queue_full;
    total.dropped_random += s.dropped_random;
    total.dropped_bad_address += s.dropped_bad_address;
    total.drain_events += s.drain_events;
  }
  return total;
}

ShardedFabricGroup::ExchangeStats ShardedFabricGroup::exchange_stats() const {
  ExchangeStats out;
  for (const PerSource& ps : per_source_) {
    out.handoffs += ps.handoffs;
    out.cross_shard += ps.cross_shard;
    out.ring_overflow += ps.ring_overflow;
  }
  out.exchanges = exchanges_;
  return out;
}

}  // namespace snap
