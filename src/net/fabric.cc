#include "src/net/fabric.h"

#include "src/net/nic.h"
#include "src/util/logging.h"

namespace snap {

Fabric::Fabric(Simulator* sim, const NicParams& params)
    : sim_(sim), params_(params) {}

Nic* Fabric::AddHost() {
  // Let the shard router pad the other shards' host tables first so host
  // ids stay global: the id this fabric assigns below is the same id every
  // other shard reserves as a remote placeholder.
  if (router_ != nullptr) {
    router_->OnAddHost(this);
  }
  int id = static_cast<int>(nics_.size());
  nics_.push_back(std::make_unique<Nic>(sim_, this, id, params_));
  ports_.emplace_back();
  return nics_.back().get();
}

void Fabric::AddRemoteHost() {
  nics_.push_back(nullptr);
  ports_.emplace_back();
}

void Fabric::Route(PacketPtr packet, SimTime wire_time) {
  if (packet->dst_host < 0 || packet->dst_host >= num_hosts()) {
    ++stats_.dropped_bad_address;
    return;
  }
  if (router_ != nullptr) {
    // Sharded path: the router stages the packet toward the destination
    // host's shard; random drop, delivery hooks and port contention all
    // run on that shard (DeliverAtSwitch) at the next epoch barrier.
    router_->RouteFromShard(this, std::move(packet), wire_time);
    return;
  }
  if (drop_probability_ > 0 &&
      sim_->rng().NextBernoulli(drop_probability_)) {
    ++stats_.dropped_random;
    return;
  }
  if (packet->dst_host < static_cast<int>(delivery_hooks_.size())) {
    auto& hook = delivery_hooks_[packet->dst_host];
    if (hook) {
      hook(std::move(packet), wire_time);
      return;
    }
  }
  EnqueueAtPort(std::move(packet), wire_time);
}

void Fabric::DeliverAtSwitch(PacketPtr packet, SimTime switch_arrival) {
  if (packet->dst_host < static_cast<int>(delivery_hooks_.size())) {
    auto& hook = delivery_hooks_[packet->dst_host];
    if (hook) {
      hook(std::move(packet), switch_arrival);
      return;
    }
  }
  EnqueueAtPort(std::move(packet), switch_arrival);
}

void Fabric::EnqueueAtPort(PacketPtr packet, SimTime wire_time) {
  TracePacketPoint(sim_, *packet, "fabric_enq");
  // Propagate to the switch, then contend for the destination egress port.
  // In arrival-time mode the caller's timestamp already includes the
  // propagation hop (sharded fabrics deliver in the arrival frame).
  SimTime switch_arrival =
      arrival_time_mode_ ? wire_time : wire_time + params_.propagation_delay;
  Port& port = ports_[packet->dst_host];
  if (port.queued_bytes + packet->wire_bytes > params_.port_queue_bytes) {
    ++stats_.dropped_queue_full;
    return;
  }
  port.queued_bytes += packet->wire_bytes;
  SimTime start = std::max(switch_arrival, port.busy_until);
  SimTime done =
      start + SerializationDelay(packet->wire_bytes, params_.link_gbps);
  port.busy_until = done;
  int dst = packet->dst_host;
  // Delivery at the destination NIC after the final hop + NIC pipeline.
  SimTime delivery = done + params_.nic_pipeline_delay;

  if (!params_.batched_delivery) {
    // Per-packet event (pre-batching behavior, kept for A/B benchmarks).
    // The event owns the packet, so packets in flight when a simulation is
    // torn down are reclaimed with the queue.
    sim_->ScheduleAt(delivery,
                     [this, dst, p = std::move(packet)]() mutable {
                       DeliverOne(dst, std::move(p));
                     });
    return;
  }

  // Batched path: park the packet on the port (delivery times are
  // monotone per port, so push_back keeps `pending` time-sorted) and make
  // sure one drain event is armed at the earliest pending delivery.
  port.pending.push_back(PendingDelivery{delivery, std::move(packet)});
  if (!port.drain_armed) {
    port.drain_armed = true;
    sim_->ScheduleAt(port.pending.front().at, [this, dst] { DrainPort(dst); });
  }
}

void Fabric::DeliverOne(int dst, PacketPtr packet) {
  ports_[dst].queued_bytes -= packet->wire_bytes;
  ++stats_.delivered;
  nics_[dst]->DeliverFromWire(std::move(packet));
}

void Fabric::DrainPort(int dst) {
  Port& port = ports_[dst];
  port.drain_armed = false;
  ++stats_.drain_events;
  const SimTime now = sim_->now();
  while (!port.pending.empty() && port.pending.front().at <= now) {
    // Every packet drained here has at == now exactly: the drain event is
    // always armed at pending.front().at, and later entries are later.
    PacketPtr p = std::move(port.pending.front().packet);
    port.pending.pop_front();
    DeliverOne(dst, std::move(p));
  }
  if (!port.pending.empty() && !port.drain_armed) {
    port.drain_armed = true;
    sim_->ScheduleAt(port.pending.front().at, [this, dst] { DrainPort(dst); });
  }
}

int64_t Fabric::PortQueueBytes(int host) const {
  return ports_[host].queued_bytes;
}

}  // namespace snap
