#include "src/net/fabric.h"

#include "src/util/logging.h"

namespace snap {

Fabric::Fabric(Simulator* sim, const NicParams& params)
    : sim_(sim), params_(params) {}

Nic* Fabric::AddHost() {
  int id = static_cast<int>(nics_.size());
  nics_.push_back(std::make_unique<Nic>(sim_, this, id, params_));
  ports_.emplace_back();
  return nics_.back().get();
}

void Fabric::Route(PacketPtr packet, SimTime wire_time) {
  if (packet->dst_host < 0 || packet->dst_host >= num_hosts()) {
    ++stats_.dropped_bad_address;
    return;
  }
  if (drop_probability_ > 0 &&
      sim_->rng().NextBernoulli(drop_probability_)) {
    ++stats_.dropped_random;
    return;
  }
  if (packet->dst_host < static_cast<int>(delivery_hooks_.size())) {
    auto& hook = delivery_hooks_[packet->dst_host];
    if (hook) {
      hook(std::move(packet), wire_time);
      return;
    }
  }
  EnqueueAtPort(std::move(packet), wire_time);
}

void Fabric::EnqueueAtPort(PacketPtr packet, SimTime wire_time) {
  // Propagate to the switch, then contend for the destination egress port.
  SimTime switch_arrival = wire_time + params_.propagation_delay;
  Port& port = ports_[packet->dst_host];
  if (port.queued_bytes + packet->wire_bytes > params_.port_queue_bytes) {
    ++stats_.dropped_queue_full;
    return;
  }
  port.queued_bytes += packet->wire_bytes;
  SimTime start = std::max(switch_arrival, port.busy_until);
  SimTime done =
      start + SerializationDelay(packet->wire_bytes, params_.link_gbps);
  port.busy_until = done;
  int64_t bytes = packet->wire_bytes;
  int dst = packet->dst_host;
  Packet* raw = packet.release();
  // Delivery at the destination NIC after the final hop + NIC pipeline.
  SimTime delivery = done + params_.nic_pipeline_delay;
  sim_->ScheduleAt(delivery, [this, raw, bytes, dst] {
    ports_[dst].queued_bytes -= bytes;
    ++stats_.delivered;
    nics_[dst]->DeliverFromWire(PacketPtr(raw));
  });
}

int64_t Fabric::PortQueueBytes(int host) const {
  return ports_[host].queued_bytes;
}

}  // namespace snap
