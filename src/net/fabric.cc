#include "src/net/fabric.h"

#include <algorithm>

#include "src/net/nic.h"
#include "src/util/logging.h"

namespace snap {

namespace {

// SplitMix64 finalizer (same constants as src/util/rng.h): full-avalanche
// mixing so consecutive departure sequence numbers decorrelate.
uint64_t MixDropHash(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Fabric::Fabric(Simulator* sim, const NicParams& params)
    : sim_(sim), params_(params) {}

Nic* Fabric::AddHost() {
  // Let the shard router pad the other shards' host tables first so host
  // ids stay global: the id this fabric assigns below is the same id every
  // other shard reserves as a remote placeholder.
  if (router_ != nullptr) {
    router_->OnAddHost(this);
  }
  int id = static_cast<int>(nics_.size());
  nics_.push_back(std::make_unique<Nic>(sim_, this, id, params_));
  ports_.emplace_back();
  return nics_.back().get();
}

void Fabric::AddRemoteHost() {
  nics_.push_back(nullptr);
  ports_.emplace_back();
}

void Fabric::Route(PacketPtr packet, SimTime wire_time) {
  if (packet->dst_host < 0 || packet->dst_host >= num_hosts()) {
    ++stats_.dropped_bad_address;
    return;
  }
  // Hashed random drop runs on the source's fabric before any shard
  // routing, so the drop pattern — a pure function of (seed, src, dst,
  // departure seq) — is the same on the serial engine and on every
  // sharding/placement of the same workload.
  if (drop_probability_ > 0 && DropsPacket(*packet)) {
    ++stats_.dropped_random;
    return;
  }
  if (router_ != nullptr) {
    // Sharded path: the router stages the packet toward the destination
    // host's shard; delivery hooks and port contention run on that shard
    // (DeliverAtSwitch) in the arrival time frame.
    router_->RouteFromShard(this, std::move(packet), wire_time);
    return;
  }
  if (packet->dst_host < static_cast<int>(delivery_hooks_.size())) {
    auto& hook = delivery_hooks_[packet->dst_host];
    if (hook) {
      hook(std::move(packet), wire_time);
      return;
    }
  }
  EnqueueAtPort(std::move(packet), wire_time);
}

bool Fabric::DropsPacket(const Packet& packet) {
  const int src = packet.src_host >= 0 ? packet.src_host : 0;
  if (src >= static_cast<int>(drop_seq_.size())) {
    drop_seq_.resize(src + 1, 0);
  }
  const uint64_t seq = drop_seq_[src]++;
  uint64_t x = sim_->seed();
  x = MixDropHash(x ^ (static_cast<uint64_t>(src) + 1));
  x = MixDropHash(x ^ (static_cast<uint64_t>(packet.dst_host) + 1));
  x = MixDropHash(x ^ seq);
  // Top 53 bits -> uniform double in [0, 1), same scheme as Rng::NextDouble.
  return static_cast<double>(x >> 11) * 0x1.0p-53 < drop_probability_;
}

void Fabric::DeliverAtSwitch(PacketPtr packet, SimTime switch_arrival) {
  if (packet->dst_host < static_cast<int>(delivery_hooks_.size())) {
    auto& hook = delivery_hooks_[packet->dst_host];
    if (hook) {
      hook(std::move(packet), switch_arrival);
      return;
    }
  }
  EnqueueAtPort(std::move(packet), switch_arrival);
}

void Fabric::EnqueueAtPort(PacketPtr packet, SimTime wire_time) {
  TracePacketPoint(sim_, *packet, "fabric_enq");
  // Propagate to the switch, then contend for the destination egress port.
  // In arrival-time mode the caller's timestamp already includes the
  // propagation hop (sharded fabrics deliver in the arrival frame).
  SimTime switch_arrival =
      arrival_time_mode_
          ? wire_time
          : wire_time +
                params_.propagation_between(packet->src_host, packet->dst_host);
  Port& port = ports_[packet->dst_host];
  if (port.queued_bytes + packet->wire_bytes > params_.port_queue_bytes) {
    ++stats_.dropped_queue_full;
    return;
  }
  port.queued_bytes += packet->wire_bytes;
  SimTime start = std::max(switch_arrival, port.busy_until);
  SimTime done =
      start + SerializationDelay(packet->wire_bytes, params_.link_gbps);
  port.busy_until = done;
  int dst = packet->dst_host;
  // Delivery at the destination NIC after the final hop + NIC pipeline.
  SimTime delivery = done + params_.nic_pipeline_delay;

  if (!params_.batched_delivery) {
    // Per-packet event (pre-batching behavior, kept for A/B benchmarks).
    // The event owns the packet, so packets in flight when a simulation is
    // torn down are reclaimed with the queue.
    sim_->ScheduleAt(delivery,
                     [this, dst, p = std::move(packet)]() mutable {
                       DeliverOne(dst, std::move(p));
                     });
    return;
  }

  // Batched path: park the packet on the port (delivery times are
  // monotone per port, so push_back keeps `pending` time-sorted) and make
  // sure one drain event is armed at the earliest pending delivery.
  port.pending.push_back(PendingDelivery{delivery, std::move(packet)});
  if (!port.drain_armed) {
    port.drain_armed = true;
    sim_->ScheduleAt(port.pending.front().at, [this, dst] { DrainPort(dst); });
  }
}

void Fabric::StageArrival(PacketPtr packet, SimTime arrival,
                          SimTime wire_time, int src_host, uint64_t seq) {
  SNAP_CHECK(arrival_time_mode_);
  const int dst = packet->dst_host;
  Port& port = ports_[dst];
  port.staged.push_back(
      StagedArrival{arrival, wire_time, src_host, seq, std::move(packet)});
  if (port.sequencer_armed_at < 0 || arrival < port.sequencer_armed_at) {
    // An earlier arrival than the armed one: rearm. (Cancel is a no-op on
    // a default-constructed or spent handle.)
    port.sequencer_event.Cancel();
    port.sequencer_armed_at = arrival;
    port.sequencer_event =
        sim_->ScheduleAt(arrival, [this, dst] { DrainArrivals(dst); });
  }
}

void Fabric::DrainArrivals(int dst) {
  Port& port = ports_[dst];
  port.sequencer_armed_at = -1;
  const SimTime now = sim_->now();
  // Split off everything due now. The staged set is small: packets in
  // flight toward one port within one propagation window.
  std::vector<StagedArrival> due;
  size_t keep = 0;
  for (size_t i = 0; i < port.staged.size(); ++i) {
    if (port.staged[i].at == now) {
      due.push_back(std::move(port.staged[i]));
    } else {
      if (keep != i) {
        port.staged[keep] = std::move(port.staged[i]);
      }
      ++keep;
    }
  }
  port.staged.resize(keep);
  std::sort(due.begin(), due.end(),
            [](const StagedArrival& a, const StagedArrival& b) {
              if (a.wire_time != b.wire_time) return a.wire_time < b.wire_time;
              if (a.src_host != b.src_host) return a.src_host < b.src_host;
              return a.seq < b.seq;
            });
  for (StagedArrival& a : due) {
    DeliverAtSwitch(std::move(a.packet), now);
  }
  if (!port.staged.empty() && port.sequencer_armed_at < 0) {
    SimTime next_at = port.staged.front().at;
    for (const StagedArrival& a : port.staged) {
      next_at = std::min(next_at, a.at);
    }
    port.sequencer_armed_at = next_at;
    port.sequencer_event =
        sim_->ScheduleAt(next_at, [this, dst] { DrainArrivals(dst); });
  }
}

void Fabric::DeliverOne(int dst, PacketPtr packet) {
  ports_[dst].queued_bytes -= packet->wire_bytes;
  ++stats_.delivered;
  nics_[dst]->DeliverFromWire(std::move(packet));
}

void Fabric::DrainPort(int dst) {
  Port& port = ports_[dst];
  port.drain_armed = false;
  ++stats_.drain_events;
  const SimTime now = sim_->now();
  while (!port.pending.empty() && port.pending.front().at <= now) {
    // Every packet drained here has at == now exactly: the drain event is
    // always armed at pending.front().at, and later entries are later.
    PacketPtr p = std::move(port.pending.front().packet);
    port.pending.pop_front();
    DeliverOne(dst, std::move(p));
  }
  if (!port.pending.empty() && !port.drain_armed) {
    port.drain_armed = true;
    sim_->ScheduleAt(port.pending.front().at, [this, dst] { DrainPort(dst); });
  }
}

int64_t Fabric::PortQueueBytes(int host) const {
  return ports_[host].queued_bytes;
}

}  // namespace snap
