#include "src/net/nic.h"

#include "src/net/egress.h"
#include "src/stats/telemetry.h"
#include "src/util/logging.h"

namespace snap {

namespace {
// Shared empty map for NICs without QoS TX state. Namespace-scope (not a
// function-local static) so concurrent shard threads never touch a
// magic-static guard.
const std::map<uint32_t, Nic::TenantTxStats> kEmptyTenantTxStats;
}  // namespace

// --------------------------------------------------------------------------
// RxQueue
// --------------------------------------------------------------------------

RxQueue::RxQueue(Substrate* sim, const NicParams& params, int id)
    : sim_(sim), params_(params), id_(id) {}

PacketPtr RxQueue::Poll() {
  if (ring_.empty()) {
    return nullptr;
  }
  PacketPtr p = std::move(ring_.front());
  ring_.pop_front();
  return p;
}

void RxQueue::SetInterruptHandler(std::function<void()> handler) {
  handler_ = std::move(handler);
  has_handler_ = true;
  interrupts_armed_ = true;
}

void RxQueue::DisableInterrupts() {
  interrupts_disabled_ = true;
  interrupts_armed_ = false;
  itr_timer_.Cancel();
}

void RxQueue::Rearm() {
  if (interrupts_disabled_ || !has_handler_) {
    return;
  }
  interrupts_armed_ = true;
  if (!ring_.empty()) {
    // Packets arrived while masked: fire immediately (no lost wakeups).
    Fire();
  }
}

void RxQueue::Deliver(PacketPtr packet) {
  if (static_cast<int>(ring_.size()) >= params_.rx_ring_entries) {
    ++stats_.dropped_ring_full;
    return;
  }
  ++stats_.received;
  ring_.push_back(std::move(packet));
  MaybeInterrupt();
  last_arrival_ = sim_->now();
  if (watcher_) {
    watcher_();
  }
}

void RxQueue::MaybeInterrupt() {
  if (!interrupts_armed_ || !has_handler_) {
    return;
  }
  ++coalesced_frames_;
  SimTime now = sim_->now();
  // Adaptive moderation: an isolated packet (low rate) interrupts
  // immediately; under a burst we coalesce until the frame or time limit.
  bool low_rate = (now - last_arrival_) > 5 * kUsec;
  if (low_rate || coalesced_frames_ >= params_.itr_max_frames) {
    Fire();
    return;
  }
  if (!itr_timer_.pending()) {
    itr_timer_ = sim_->Schedule(params_.itr_max_wait, [this] { Fire(); });
  }
}

void RxQueue::Fire() {
  itr_timer_.Cancel();
  coalesced_frames_ = 0;
  // Mask until the consumer rearms (NAPI discipline).
  interrupts_armed_ = false;
  ++stats_.interrupts;
  handler_();
}

// --------------------------------------------------------------------------
// Nic
// --------------------------------------------------------------------------

Nic::Nic(Substrate* sim, PacketEgress* egress, int host_id,
         const NicParams& params)
    : sim_(sim), egress_(egress), host_id_(host_id), params_(params) {
  // Queue 0: the host kernel's default queue.
  queues_.push_back(std::make_unique<RxQueue>(sim_, params_, 0));
}

RxQueue* Nic::CreateRxQueue() {
  queues_.push_back(std::make_unique<RxQueue>(
      sim_, params_, static_cast<int>(queues_.size())));
  return queues_.back().get();
}

Status Nic::InstallSteeringFilter(uint32_t key, RxQueue* queue) {
  auto [it, inserted] = steering_.emplace(key, queue);
  if (!inserted) {
    return AlreadyExistsError("steering filter exists for key");
  }
  return OkStatus();
}

Status Nic::RemoveSteeringFilter(uint32_t key) {
  if (steering_.erase(key) == 0) {
    return NotFoundError("no steering filter for key");
  }
  return OkStatus();
}

int Nic::TxSlotsAvailable() const {
  return params_.tx_ring_entries - tx_outstanding_;
}

bool Nic::Transmit(PacketPtr packet) {
  if (tx_outstanding_ >= params_.tx_ring_entries) {
    ++stats_.tx_ring_full;
    return false;
  }
  SNAP_CHECK_GT(packet->wire_bytes, 0) << "packet must have wire_bytes set";
  SimTime now = sim_->now();
  packet->enqueue_time = now;
  ++tx_outstanding_;
  ++stats_.tx_packets;
  stats_.tx_bytes += packet->wire_bytes;
  TracePacketPoint(sim_, *packet, "nic_tx");
  if (tx_tap_) {
    tx_tap_(*packet);
  }
  if (qos_tx_ != nullptr) {
    // QoS TX: park the packet in its tenant's WFQ queue (it keeps its ring
    // slot) and make sure a drain is scheduled for when the link frees up.
    uint32_t tenant = packet->tenant;
    qos_tx_->wfq.Enqueue(tenant, std::move(packet));
    if (!qos_tx_->drain_pending) {
      ScheduleQosDrain(std::max(now, tx_busy_until_));
    }
    return true;
  }
  // Serialize onto the uplink behind any packets already queued in the
  // ring. The NIC pipeline delay is pure latency: it delays delivery but
  // does not occupy the link.
  SimTime start = std::max(now, tx_busy_until_);
  SimTime serialized =
      start + SerializationDelay(packet->wire_bytes, params_.link_gbps);
  tx_busy_until_ = serialized;
  SimTime done = serialized + params_.nic_pipeline_delay;
  // The event owns the packet (EventCallback supports move-only captures),
  // so packets still in flight when the simulation ends are reclaimed.
  sim_->ScheduleAt(done, [this, done, p = std::move(packet)]() mutable {
    --tx_outstanding_;
    egress_->Route(std::move(p), done);
  });
  return true;
}

void Nic::EnableQosTx(const qos::TenantRegistry* tenants) {
  if (qos_tx_ != nullptr) {
    return;
  }
  qos_tx_ = std::make_unique<QosTx>();
  qos_tx_->tenants = tenants;
  if (tenants != nullptr) {
    tenants->ForEach([this](const qos::TenantSpec& spec) {
      qos_tx_->wfq.SetWeight(spec.id, spec.weight);
    });
  }
}

void Nic::ScheduleQosDrain(SimTime at) {
  qos_tx_->drain_pending = true;
  sim_->ScheduleAt(std::max(at, sim_->now()), [this] { QosDrain(); });
}

void Nic::QosDrain() {
  qos_tx_->drain_pending = false;
  if (qos_tx_->wfq.empty()) {
    return;
  }
  SimTime now = sim_->now();
  if (tx_busy_until_ > now) {
    // A competing drain already claimed the link; come back when it frees.
    ScheduleQosDrain(tx_busy_until_);
    return;
  }
  // One packet per drain event: the WFQ decision is re-made at each link
  // idle edge so a latecomer high-weight tenant is never stuck behind a
  // burst that was queued first.
  PacketPtr packet = qos_tx_->wfq.Dequeue();
  TenantTxStats& tstats = qos_tx_->per_tenant[packet->tenant];
  ++tstats.tx_packets;
  tstats.tx_bytes += packet->wire_bytes;
  SimDuration queue_delay = now - packet->enqueue_time;
  tstats.queue_delay_total += queue_delay;
  tstats.queue_delay_max = std::max(tstats.queue_delay_max, queue_delay);
  SimTime serialized =
      now + SerializationDelay(packet->wire_bytes, params_.link_gbps);
  tx_busy_until_ = serialized;
  SimTime done = serialized + params_.nic_pipeline_delay;
  sim_->ScheduleAt(done, [this, done, p = std::move(packet)]() mutable {
    --tx_outstanding_;
    egress_->Route(std::move(p), done);
  });
  if (!qos_tx_->wfq.empty()) {
    ScheduleQosDrain(serialized);
  }
}

const std::map<uint32_t, Nic::TenantTxStats>& Nic::tenant_tx_stats() const {
  return qos_tx_ == nullptr ? kEmptyTenantTxStats : qos_tx_->per_tenant;
}

void Nic::ExportQosStats(Telemetry* telemetry,
                         const std::string& prefix) const {
  if (qos_tx_ == nullptr) {
    return;
  }
  for (const auto& [tenant, tstats] : qos_tx_->per_tenant) {
    std::string name = qos_tx_->tenants != nullptr
                           ? qos_tx_->tenants->DisplayName(tenant)
                           : "t" + std::to_string(tenant);
    const std::string base = prefix + "/" + name;
    telemetry->SetCounter(base + "/nic_tx_packets", tstats.tx_packets);
    telemetry->SetCounter(base + "/nic_tx_bytes", tstats.tx_bytes);
    int64_t mean_delay =
        tstats.tx_packets > 0 ? tstats.queue_delay_total / tstats.tx_packets
                              : 0;
    telemetry->SetCounter(base + "/nic_queue_delay_mean_ns", mean_delay);
    telemetry->SetCounter(base + "/nic_queue_delay_max_ns",
                          tstats.queue_delay_max);
  }
}

void Nic::DeliverFromWire(PacketPtr packet) {
  ++stats_.rx_packets;
  stats_.rx_bytes += packet->wire_bytes;
  packet->rx_time = sim_->now();
  TracePacketPoint(sim_, *packet, "nic_rx");
  if (rx_tap_) {
    rx_tap_(*packet);
  }
  auto it = steering_.find(packet->steering_hash);
  RxQueue* q = it != steering_.end() ? it->second : queues_.front().get();
  q->Deliver(std::move(packet));
}

}  // namespace snap
