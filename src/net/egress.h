// Packet egress: the one-way contract between a NIC's transmit path and
// whatever carries packets to their destination. The simulated Fabric
// (src/net/fabric.h) models a switch with per-port queues behind it; the
// live substrate (src/live/) implements it with in-process SPSC loopback
// rings or real UDP sockets. Factoring this out is what lets Nic — and
// everything above it — run unmodified on either substrate.
#ifndef SRC_NET_EGRESS_H_
#define SRC_NET_EGRESS_H_

#include "src/packet/packet.h"
#include "src/util/time_types.h"

namespace snap {

class PacketEgress {
 public:
  virtual ~PacketEgress() = default;

  // Takes ownership of a packet that finished serializing onto the source
  // NIC's uplink at `wire_time` and carries it toward packet->dst_host.
  // May drop (the fabric is lossy end-to-end; transports retransmit).
  virtual void Route(PacketPtr packet, SimTime wire_time) = 0;
};

// Nanoseconds to serialize `bytes` at `gbps`.
inline SimDuration SerializationDelay(int64_t bytes, double gbps) {
  return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 / gbps);
}

}  // namespace snap

#endif  // SRC_NET_EGRESS_H_
