// Simulated NIC: receive queues with descriptor rings, exact-match steering
// filters, adaptive interrupt moderation, and a transmit path that
// serializes onto the link.
//
// Engines interact with the NIC exactly the way Snap does with real
// hardware: they poll RX descriptor rings (OS-bypass), transmit only when
// descriptor slots are available (Section 3.1's "just-in-time generation of
// packets based on slot availability"), and install/detach steering filters
// (used by transparent upgrade to hand a queue to the new engine,
// Section 4). Interrupt-driven consumers (the kernel stack, "spreading"
// engines) arm interrupts and get woken through a handler callback.
#ifndef SRC_NET_NIC_H_
#define SRC_NET_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/egress.h"
#include "src/packet/packet.h"
#include "src/qos/scheduler.h"
#include "src/qos/tenant.h"
#include "src/sim/model_params.h"
#include "src/sim/substrate.h"
#include "src/util/status.h"

namespace snap {

class Nic;
class Telemetry;

// One NIC receive queue: a bounded descriptor ring plus interrupt state.
class RxQueue {
 public:
  RxQueue(Substrate* sim, const NicParams& params, int id);

  // Consumer side: takes the next received packet, or nullptr.
  PacketPtr Poll();
  int pending() const { return static_cast<int>(ring_.size()); }
  // RX time of the oldest undelivered packet; kSimTimeNever when empty.
  SimTime OldestArrival() const {
    return ring_.empty() ? kSimTimeNever : ring_.front()->rx_time;
  }

  // Interrupt control (NAPI-style): the handler fires once per interrupt;
  // the NIC then masks further interrupts until Rearm(). Rearm() with
  // packets still pending fires immediately (no lost wakeups).
  void SetInterruptHandler(std::function<void()> handler);
  void Rearm();
  bool interrupts_enabled() const { return interrupts_armed_; }
  // Disables interrupt generation entirely (spin-polling consumers).
  void DisableInterrupts();

  // Lightweight per-delivery notification for engine runtimes: invoked on
  // every packet arrival regardless of interrupt state. The CPU scheduler
  // models the cost of the resulting wakeup (IPI/IRQ for blocked tasks,
  // poll-loop detection latency for spinning ones).
  void SetPollWatcher(std::function<void()> watcher) {
    watcher_ = std::move(watcher);
  }

  int id() const { return id_; }

  struct Stats {
    int64_t received = 0;
    int64_t dropped_ring_full = 0;
    int64_t interrupts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class Nic;

  // NIC side: a packet arrived from the wire.
  void Deliver(PacketPtr packet);
  void MaybeInterrupt();
  void Fire();

  Substrate* sim_;
  const NicParams params_;
  int id_;
  std::deque<PacketPtr> ring_;
  std::function<void()> handler_;
  std::function<void()> watcher_;
  bool has_handler_ = false;
  bool interrupts_armed_ = false;
  bool interrupts_disabled_ = false;
  int coalesced_frames_ = 0;
  SimTime last_arrival_ = -kSec;
  EventHandle itr_timer_;
  Stats stats_;
};

class Nic {
 public:
  Nic(Substrate* sim, PacketEgress* egress, int host_id,
      const NicParams& params);

  // Creates an additional RX queue (queue 0 exists by default and is the
  // default steering target, i.e. the host kernel's queue).
  RxQueue* CreateRxQueue();
  RxQueue* default_queue() { return queues_.front().get(); }
  RxQueue* queue(int id) { return queues_[id].get(); }
  int num_queues() const { return static_cast<int>(queues_.size()); }

  // Steering: exact-match on Packet::steering_hash.
  Status InstallSteeringFilter(uint32_t key, RxQueue* queue);
  Status RemoveSteeringFilter(uint32_t key);

  // Transmit path. Returns false when no TX descriptor slots are free.
  bool Transmit(PacketPtr packet);
  int TxSlotsAvailable() const;

  // Multi-tenant QoS (src/qos/): switches the TX path from FIFO link
  // serialization to per-tenant queues drained by weighted fair queuing.
  // `tenants` supplies weights and must outlive the NIC. Default off; the
  // legacy path is untouched and event-for-event identical.
  void EnableQosTx(const qos::TenantRegistry* tenants);
  bool qos_tx_enabled() const { return qos_tx_ != nullptr; }

  struct TenantTxStats {
    int64_t tx_packets = 0;
    int64_t tx_bytes = 0;
    // Time from Transmit() to the packet winning the WFQ drain (the
    // per-tenant queue delay the scheduler is supposed to bound).
    SimDuration queue_delay_total = 0;
    SimDuration queue_delay_max = 0;
  };
  // Per-tenant TX accounting; empty unless QoS TX is enabled.
  const std::map<uint32_t, TenantTxStats>& tenant_tx_stats() const;
  // Registers per-tenant counters/gauges under
  // "<prefix>/<tenant-name>/..." (see docs/QOS.md).
  void ExportQosStats(Telemetry* telemetry, const std::string& prefix) const;

  // Fabric side: a packet arrived addressed to this host.
  void DeliverFromWire(PacketPtr packet);

  int host_id() const { return host_id_; }
  const NicParams& params() const { return params_; }

  // Observation taps (invariant checkers, src/testing/invariants.h): fire
  // for every packet the NIC accepts for transmission / receives from the
  // wire. Purely passive; never mutate delivery.
  void SetTxTap(std::function<void(const Packet&)> tap) {
    tx_tap_ = std::move(tap);
  }
  void SetRxTap(std::function<void(const Packet&)> tap) {
    rx_tap_ = std::move(tap);
  }

  struct Stats {
    int64_t tx_packets = 0;
    int64_t tx_bytes = 0;
    int64_t rx_packets = 0;
    int64_t rx_bytes = 0;
    int64_t tx_ring_full = 0;
    int64_t rx_no_filter_drops = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // QoS TX state: the WFQ holds packets that have consumed a TX ring slot
  // but not yet won the link; a self-rescheduling drain event serializes
  // the WFQ winner whenever the link goes free, so ring occupancy
  // semantics (tx_outstanding_ <= tx_ring_entries across queued +
  // in-flight packets) match the legacy path exactly.
  struct QosTx {
    const qos::TenantRegistry* tenants = nullptr;
    qos::WfqScheduler wfq;
    bool drain_pending = false;
    std::map<uint32_t, TenantTxStats> per_tenant;
  };
  void ScheduleQosDrain(SimTime at);
  void QosDrain();

  Substrate* sim_;
  PacketEgress* egress_;
  int host_id_;
  NicParams params_;
  std::vector<std::unique_ptr<RxQueue>> queues_;
  std::map<uint32_t, RxQueue*> steering_;
  // TX serialization onto the link.
  SimTime tx_busy_until_ = 0;
  int tx_outstanding_ = 0;
  std::function<void(const Packet&)> tx_tap_;
  std::function<void(const Packet&)> rx_tap_;
  std::unique_ptr<QosTx> qos_tx_;
  Stats stats_;
};

// Records one packet-lifecycle flow point for a sampled Pony message: a
// "msg" flow bound by op id, with the lifecycle stage in args ("engine_tx",
// "nic_tx", "fabric_enq", "nic_rx", ...). Pure observation on the hot path
// — one null test when tracing is disabled — and compiled out entirely with
// -DSNAP_TRACE_PACKET_LIFECYCLE=OFF.
inline void TracePacketPoint(
    Substrate* sim, const Packet& packet, const char* point,
    int fallback_track = TraceRecorder::kFabricTrack) {
#ifndef SNAP_DISABLE_PACKET_TRACE
  TraceRecorder* tracer = sim->tracer();
  if (tracer == nullptr || packet.proto != WireProtocol::kPony ||
      !tracer->ShouldSampleMessage(packet.pony.op_id)) {
    return;
  }
  tracer->FlowPoint('t', sim->now(), tracer->current_core_or(fallback_track),
                    packet.pony.op_id, "msg", "pkt",
                    TraceArgStr("point", point));
#else
  (void)sim;
  (void)packet;
  (void)point;
  (void)fallback_track;
#endif
}

}  // namespace snap

#endif  // SRC_NET_NIC_H_
