# Empty dependencies file for bench_fig6bc_scaling.
# This may be replaced when dependencies are built.
