file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6bc_scaling.dir/bench_fig6bc_scaling.cc.o"
  "CMakeFiles/bench_fig6bc_scaling.dir/bench_fig6bc_scaling.cc.o.d"
  "bench_fig6bc_scaling"
  "bench_fig6bc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6bc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
