file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_onesided_iops.dir/bench_fig8_onesided_iops.cc.o"
  "CMakeFiles/bench_fig8_onesided_iops.dir/bench_fig8_onesided_iops.cc.o.d"
  "bench_fig8_onesided_iops"
  "bench_fig8_onesided_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_onesided_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
