file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_interference.dir/bench_fig7_interference.cc.o"
  "CMakeFiles/bench_fig7_interference.dir/bench_fig7_interference.cc.o.d"
  "bench_fig7_interference"
  "bench_fig7_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
