file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6d_antagonist.dir/bench_fig6d_antagonist.cc.o"
  "CMakeFiles/bench_fig6d_antagonist.dir/bench_fig6d_antagonist.cc.o.d"
  "bench_fig6d_antagonist"
  "bench_fig6d_antagonist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6d_antagonist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
