file(REMOVE_RECURSE
  "CMakeFiles/bench_chaos_goodput.dir/bench_chaos_goodput.cc.o"
  "CMakeFiles/bench_chaos_goodput.dir/bench_chaos_goodput.cc.o.d"
  "bench_chaos_goodput"
  "bench_chaos_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chaos_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
