# Empty dependencies file for bench_chaos_goodput.
# This may be replaced when dependencies are built.
