# CMake generated Testfile for 
# Source directory: /root/repo/src/pony
# Build directory: /root/repo/build/src/pony
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
