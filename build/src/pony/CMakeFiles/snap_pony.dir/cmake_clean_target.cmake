file(REMOVE_RECURSE
  "libsnap_pony.a"
)
