# Empty dependencies file for snap_pony.
# This may be replaced when dependencies are built.
