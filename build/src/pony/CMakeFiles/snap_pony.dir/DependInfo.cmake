
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pony/client.cc" "src/pony/CMakeFiles/snap_pony.dir/client.cc.o" "gcc" "src/pony/CMakeFiles/snap_pony.dir/client.cc.o.d"
  "/root/repo/src/pony/flow.cc" "src/pony/CMakeFiles/snap_pony.dir/flow.cc.o" "gcc" "src/pony/CMakeFiles/snap_pony.dir/flow.cc.o.d"
  "/root/repo/src/pony/pony_engine.cc" "src/pony/CMakeFiles/snap_pony.dir/pony_engine.cc.o" "gcc" "src/pony/CMakeFiles/snap_pony.dir/pony_engine.cc.o.d"
  "/root/repo/src/pony/pony_module.cc" "src/pony/CMakeFiles/snap_pony.dir/pony_module.cc.o" "gcc" "src/pony/CMakeFiles/snap_pony.dir/pony_module.cc.o.d"
  "/root/repo/src/pony/timely.cc" "src/pony/CMakeFiles/snap_pony.dir/timely.cc.o" "gcc" "src/pony/CMakeFiles/snap_pony.dir/timely.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/snap_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/snap/CMakeFiles/snap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/snap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/snap_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
