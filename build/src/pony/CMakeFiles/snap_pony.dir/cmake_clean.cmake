file(REMOVE_RECURSE
  "CMakeFiles/snap_pony.dir/client.cc.o"
  "CMakeFiles/snap_pony.dir/client.cc.o.d"
  "CMakeFiles/snap_pony.dir/flow.cc.o"
  "CMakeFiles/snap_pony.dir/flow.cc.o.d"
  "CMakeFiles/snap_pony.dir/pony_engine.cc.o"
  "CMakeFiles/snap_pony.dir/pony_engine.cc.o.d"
  "CMakeFiles/snap_pony.dir/pony_module.cc.o"
  "CMakeFiles/snap_pony.dir/pony_module.cc.o.d"
  "CMakeFiles/snap_pony.dir/timely.cc.o"
  "CMakeFiles/snap_pony.dir/timely.cc.o.d"
  "libsnap_pony.a"
  "libsnap_pony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_pony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
