file(REMOVE_RECURSE
  "libsnap_apps.a"
)
