file(REMOVE_RECURSE
  "CMakeFiles/snap_apps.dir/pony_apps.cc.o"
  "CMakeFiles/snap_apps.dir/pony_apps.cc.o.d"
  "CMakeFiles/snap_apps.dir/simhost.cc.o"
  "CMakeFiles/snap_apps.dir/simhost.cc.o.d"
  "CMakeFiles/snap_apps.dir/tcp_apps.cc.o"
  "CMakeFiles/snap_apps.dir/tcp_apps.cc.o.d"
  "libsnap_apps.a"
  "libsnap_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
