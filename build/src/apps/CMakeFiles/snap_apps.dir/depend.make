# Empty dependencies file for snap_apps.
# This may be replaced when dependencies are built.
