# Empty dependencies file for snap_testing.
# This may be replaced when dependencies are built.
