file(REMOVE_RECURSE
  "CMakeFiles/snap_testing.dir/chaos.cc.o"
  "CMakeFiles/snap_testing.dir/chaos.cc.o.d"
  "CMakeFiles/snap_testing.dir/invariants.cc.o"
  "CMakeFiles/snap_testing.dir/invariants.cc.o.d"
  "CMakeFiles/snap_testing.dir/seed_sweep.cc.o"
  "CMakeFiles/snap_testing.dir/seed_sweep.cc.o.d"
  "libsnap_testing.a"
  "libsnap_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
