file(REMOVE_RECURSE
  "libsnap_testing.a"
)
