file(REMOVE_RECURSE
  "libsnap_sim.a"
)
