file(REMOVE_RECURSE
  "CMakeFiles/snap_sim.dir/antagonist.cc.o"
  "CMakeFiles/snap_sim.dir/antagonist.cc.o.d"
  "CMakeFiles/snap_sim.dir/cpu.cc.o"
  "CMakeFiles/snap_sim.dir/cpu.cc.o.d"
  "libsnap_sim.a"
  "libsnap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
