file(REMOVE_RECURSE
  "CMakeFiles/snap_net.dir/fabric.cc.o"
  "CMakeFiles/snap_net.dir/fabric.cc.o.d"
  "CMakeFiles/snap_net.dir/nic.cc.o"
  "CMakeFiles/snap_net.dir/nic.cc.o.d"
  "libsnap_net.a"
  "libsnap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
