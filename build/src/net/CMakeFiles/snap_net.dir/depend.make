# Empty dependencies file for snap_net.
# This may be replaced when dependencies are built.
