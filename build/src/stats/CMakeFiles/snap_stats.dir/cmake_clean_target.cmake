file(REMOVE_RECURSE
  "libsnap_stats.a"
)
