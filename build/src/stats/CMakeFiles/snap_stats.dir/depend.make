# Empty dependencies file for snap_stats.
# This may be replaced when dependencies are built.
