file(REMOVE_RECURSE
  "CMakeFiles/snap_stats.dir/histogram.cc.o"
  "CMakeFiles/snap_stats.dir/histogram.cc.o.d"
  "CMakeFiles/snap_stats.dir/metrics.cc.o"
  "CMakeFiles/snap_stats.dir/metrics.cc.o.d"
  "libsnap_stats.a"
  "libsnap_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
