file(REMOVE_RECURSE
  "CMakeFiles/snap_kernel.dir/kstack.cc.o"
  "CMakeFiles/snap_kernel.dir/kstack.cc.o.d"
  "libsnap_kernel.a"
  "libsnap_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
