# Empty compiler generated dependencies file for snap_kernel.
# This may be replaced when dependencies are built.
