file(REMOVE_RECURSE
  "libsnap_kernel.a"
)
