# Empty compiler generated dependencies file for snap_util.
# This may be replaced when dependencies are built.
