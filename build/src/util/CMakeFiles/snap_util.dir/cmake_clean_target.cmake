file(REMOVE_RECURSE
  "libsnap_util.a"
)
