file(REMOVE_RECURSE
  "CMakeFiles/snap_util.dir/logging.cc.o"
  "CMakeFiles/snap_util.dir/logging.cc.o.d"
  "CMakeFiles/snap_util.dir/status.cc.o"
  "CMakeFiles/snap_util.dir/status.cc.o.d"
  "libsnap_util.a"
  "libsnap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
