file(REMOVE_RECURSE
  "CMakeFiles/snap_core.dir/control.cc.o"
  "CMakeFiles/snap_core.dir/control.cc.o.d"
  "CMakeFiles/snap_core.dir/elements.cc.o"
  "CMakeFiles/snap_core.dir/elements.cc.o.d"
  "CMakeFiles/snap_core.dir/engine_group.cc.o"
  "CMakeFiles/snap_core.dir/engine_group.cc.o.d"
  "CMakeFiles/snap_core.dir/kernel_injection.cc.o"
  "CMakeFiles/snap_core.dir/kernel_injection.cc.o.d"
  "CMakeFiles/snap_core.dir/shaping_engine.cc.o"
  "CMakeFiles/snap_core.dir/shaping_engine.cc.o.d"
  "CMakeFiles/snap_core.dir/upgrade.cc.o"
  "CMakeFiles/snap_core.dir/upgrade.cc.o.d"
  "CMakeFiles/snap_core.dir/virtual_switch.cc.o"
  "CMakeFiles/snap_core.dir/virtual_switch.cc.o.d"
  "libsnap_core.a"
  "libsnap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
