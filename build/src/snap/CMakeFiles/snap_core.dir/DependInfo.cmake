
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snap/control.cc" "src/snap/CMakeFiles/snap_core.dir/control.cc.o" "gcc" "src/snap/CMakeFiles/snap_core.dir/control.cc.o.d"
  "/root/repo/src/snap/elements.cc" "src/snap/CMakeFiles/snap_core.dir/elements.cc.o" "gcc" "src/snap/CMakeFiles/snap_core.dir/elements.cc.o.d"
  "/root/repo/src/snap/engine_group.cc" "src/snap/CMakeFiles/snap_core.dir/engine_group.cc.o" "gcc" "src/snap/CMakeFiles/snap_core.dir/engine_group.cc.o.d"
  "/root/repo/src/snap/kernel_injection.cc" "src/snap/CMakeFiles/snap_core.dir/kernel_injection.cc.o" "gcc" "src/snap/CMakeFiles/snap_core.dir/kernel_injection.cc.o.d"
  "/root/repo/src/snap/shaping_engine.cc" "src/snap/CMakeFiles/snap_core.dir/shaping_engine.cc.o" "gcc" "src/snap/CMakeFiles/snap_core.dir/shaping_engine.cc.o.d"
  "/root/repo/src/snap/upgrade.cc" "src/snap/CMakeFiles/snap_core.dir/upgrade.cc.o" "gcc" "src/snap/CMakeFiles/snap_core.dir/upgrade.cc.o.d"
  "/root/repo/src/snap/virtual_switch.cc" "src/snap/CMakeFiles/snap_core.dir/virtual_switch.cc.o" "gcc" "src/snap/CMakeFiles/snap_core.dir/virtual_switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/snap_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/snap_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/snap_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
