file(REMOVE_RECURSE
  "libsnap_core.a"
)
