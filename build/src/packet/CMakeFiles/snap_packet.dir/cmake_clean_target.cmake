file(REMOVE_RECURSE
  "libsnap_packet.a"
)
