file(REMOVE_RECURSE
  "CMakeFiles/snap_packet.dir/crc32.cc.o"
  "CMakeFiles/snap_packet.dir/crc32.cc.o.d"
  "CMakeFiles/snap_packet.dir/wire.cc.o"
  "CMakeFiles/snap_packet.dir/wire.cc.o.d"
  "libsnap_packet.a"
  "libsnap_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
