# Empty compiler generated dependencies file for snap_packet.
# This may be replaced when dependencies are built.
