# Empty dependencies file for traffic_shaping.
# This may be replaced when dependencies are built.
