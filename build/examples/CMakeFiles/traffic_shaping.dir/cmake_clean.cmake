file(REMOVE_RECURSE
  "CMakeFiles/traffic_shaping.dir/traffic_shaping.cpp.o"
  "CMakeFiles/traffic_shaping.dir/traffic_shaping.cpp.o.d"
  "traffic_shaping"
  "traffic_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
