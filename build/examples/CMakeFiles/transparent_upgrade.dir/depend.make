# Empty dependencies file for transparent_upgrade.
# This may be replaced when dependencies are built.
