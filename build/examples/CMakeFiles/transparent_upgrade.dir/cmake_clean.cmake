file(REMOVE_RECURSE
  "CMakeFiles/transparent_upgrade.dir/transparent_upgrade.cpp.o"
  "CMakeFiles/transparent_upgrade.dir/transparent_upgrade.cpp.o.d"
  "transparent_upgrade"
  "transparent_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transparent_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
