file(REMOVE_RECURSE
  "CMakeFiles/tcp_apps_test.dir/tcp_apps_test.cc.o"
  "CMakeFiles/tcp_apps_test.dir/tcp_apps_test.cc.o.d"
  "tcp_apps_test"
  "tcp_apps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
