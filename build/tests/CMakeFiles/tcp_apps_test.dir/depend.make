# Empty dependencies file for tcp_apps_test.
# This may be replaced when dependencies are built.
