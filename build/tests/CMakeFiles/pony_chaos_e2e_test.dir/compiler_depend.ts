# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pony_chaos_e2e_test.
