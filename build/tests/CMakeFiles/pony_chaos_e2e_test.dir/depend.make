# Empty dependencies file for pony_chaos_e2e_test.
# This may be replaced when dependencies are built.
