file(REMOVE_RECURSE
  "CMakeFiles/pony_chaos_e2e_test.dir/pony_chaos_e2e_test.cc.o"
  "CMakeFiles/pony_chaos_e2e_test.dir/pony_chaos_e2e_test.cc.o.d"
  "pony_chaos_e2e_test"
  "pony_chaos_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pony_chaos_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
