# Empty dependencies file for pony_onesided_test.
# This may be replaced when dependencies are built.
