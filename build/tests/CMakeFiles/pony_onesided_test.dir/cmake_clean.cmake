file(REMOVE_RECURSE
  "CMakeFiles/pony_onesided_test.dir/pony_onesided_test.cc.o"
  "CMakeFiles/pony_onesided_test.dir/pony_onesided_test.cc.o.d"
  "pony_onesided_test"
  "pony_onesided_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pony_onesided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
