# Empty compiler generated dependencies file for nic_fabric_test.
# This may be replaced when dependencies are built.
