file(REMOVE_RECURSE
  "CMakeFiles/nic_fabric_test.dir/nic_fabric_test.cc.o"
  "CMakeFiles/nic_fabric_test.dir/nic_fabric_test.cc.o.d"
  "nic_fabric_test"
  "nic_fabric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
