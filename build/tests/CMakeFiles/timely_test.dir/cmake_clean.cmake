file(REMOVE_RECURSE
  "CMakeFiles/timely_test.dir/timely_test.cc.o"
  "CMakeFiles/timely_test.dir/timely_test.cc.o.d"
  "timely_test"
  "timely_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timely_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
