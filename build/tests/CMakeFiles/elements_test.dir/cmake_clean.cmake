file(REMOVE_RECURSE
  "CMakeFiles/elements_test.dir/elements_test.cc.o"
  "CMakeFiles/elements_test.dir/elements_test.cc.o.d"
  "elements_test"
  "elements_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elements_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
