file(REMOVE_RECURSE
  "CMakeFiles/state_codec_test.dir/state_codec_test.cc.o"
  "CMakeFiles/state_codec_test.dir/state_codec_test.cc.o.d"
  "state_codec_test"
  "state_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
