# Empty dependencies file for upgrade_chaos_test.
# This may be replaced when dependencies are built.
