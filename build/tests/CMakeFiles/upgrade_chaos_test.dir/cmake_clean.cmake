file(REMOVE_RECURSE
  "CMakeFiles/upgrade_chaos_test.dir/upgrade_chaos_test.cc.o"
  "CMakeFiles/upgrade_chaos_test.dir/upgrade_chaos_test.cc.o.d"
  "upgrade_chaos_test"
  "upgrade_chaos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upgrade_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
