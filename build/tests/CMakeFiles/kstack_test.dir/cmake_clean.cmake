file(REMOVE_RECURSE
  "CMakeFiles/kstack_test.dir/kstack_test.cc.o"
  "CMakeFiles/kstack_test.dir/kstack_test.cc.o.d"
  "kstack_test"
  "kstack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kstack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
