# Empty dependencies file for kstack_test.
# This may be replaced when dependencies are built.
