file(REMOVE_RECURSE
  "CMakeFiles/upgrade_test.dir/upgrade_test.cc.o"
  "CMakeFiles/upgrade_test.dir/upgrade_test.cc.o.d"
  "upgrade_test"
  "upgrade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upgrade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
