
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/upgrade_test.cc" "tests/CMakeFiles/upgrade_test.dir/upgrade_test.cc.o" "gcc" "tests/CMakeFiles/upgrade_test.dir/upgrade_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testing/CMakeFiles/snap_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/snap_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/pony/CMakeFiles/snap_pony.dir/DependInfo.cmake"
  "/root/repo/build/src/snap/CMakeFiles/snap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/snap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/snap_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/snap_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
