# Empty compiler generated dependencies file for upgrade_test.
# This may be replaced when dependencies are built.
