file(REMOVE_RECURSE
  "CMakeFiles/cpu_sched_test.dir/cpu_sched_test.cc.o"
  "CMakeFiles/cpu_sched_test.dir/cpu_sched_test.cc.o.d"
  "cpu_sched_test"
  "cpu_sched_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
