file(REMOVE_RECURSE
  "CMakeFiles/pony_flowcontrol_test.dir/pony_flowcontrol_test.cc.o"
  "CMakeFiles/pony_flowcontrol_test.dir/pony_flowcontrol_test.cc.o.d"
  "pony_flowcontrol_test"
  "pony_flowcontrol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pony_flowcontrol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
