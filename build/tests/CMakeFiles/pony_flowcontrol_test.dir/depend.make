# Empty dependencies file for pony_flowcontrol_test.
# This may be replaced when dependencies are built.
