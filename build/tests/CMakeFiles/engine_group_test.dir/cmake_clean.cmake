file(REMOVE_RECURSE
  "CMakeFiles/engine_group_test.dir/engine_group_test.cc.o"
  "CMakeFiles/engine_group_test.dir/engine_group_test.cc.o.d"
  "engine_group_test"
  "engine_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
