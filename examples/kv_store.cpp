// A distributed read-mostly key-value store over one-sided operations —
// the data-analytics pattern from Section 5.4. The server publishes a
// hash-indexed indirection table plus a value heap in a shared region;
// clients look keys up with ONE batched indirect read and zero server-side
// application involvement. A conventional two-sided GET is included for
// comparison.
//
//   ./build/examples/kv_store
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/simhost.h"

using namespace snap;

namespace {

// Server-side layout inside one shared region:
//   [ table: kBuckets u64 offsets ][ value heap: kValueSize slots ]
constexpr uint64_t kBuckets = 1024;
constexpr uint64_t kValueSize = 64;

uint64_t BucketOf(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ull;
  }
  return h % kBuckets;
}

class KvServer {
 public:
  KvServer(PonyClient* app) : app_(app) {
    region_ = app->RegisterRegion(kBuckets * 8 + kBuckets * kValueSize,
                                  /*allow_remote_write=*/false);
    mem_ = app->region(region_);
  }

  // The application fills the indirection table (Section 3.2: an
  // "application-filled indirection table").
  void Put(const std::string& key, const std::string& value) {
    uint64_t bucket = BucketOf(key);
    uint64_t slot_offset = kBuckets * 8 + bucket * kValueSize;
    std::memset(mem_->data.data() + slot_offset, 0, kValueSize);
    std::memcpy(mem_->data.data() + slot_offset, value.data(),
                std::min<size_t>(value.size(), kValueSize - 1));
    std::memcpy(mem_->data.data() + bucket * 8, &slot_offset, 8);
  }

  uint64_t region() const { return region_; }

 private:
  PonyClient* app_;
  uint64_t region_ = 0;
  MemoryRegion* mem_ = nullptr;
};

}  // namespace

int main() {
  Simulator sim(2);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  SimHost server_host(&sim, &fabric, &directory, options);
  SimHost client_host(&sim, &fabric, &directory, options);

  PonyEngine* server_engine = server_host.CreatePonyEngine("kv_engine");
  auto server_app = server_host.CreateClient(server_engine, "kv_server");
  PonyEngine* client_engine = client_host.CreatePonyEngine("cli_engine");
  auto client_app = client_host.CreateClient(client_engine, "kv_client");

  KvServer server(server_app.get());
  server.Put("snap", "a microkernel approach to host networking");
  server.Put("pony", "a reliable transport and communications stack");
  server.Put("timely", "rtt-gradient congestion control");

  CpuCostSink cost;
  // GET via one batched indirect read: table lookup + value fetch happen
  // entirely inside the remote engine.
  auto get = [&](const std::string& key) -> std::string {
    uint64_t bucket = BucketOf(key);
    client_app->IndirectRead(server_engine->address(), server.region(),
                             /*first_index=*/bucket, /*batch=*/1,
                             /*length=*/kValueSize, &cost);
    sim.RunFor(2 * kMsec);
    auto completion = client_app->PollCompletion(&cost);
    if (!completion.has_value() ||
        completion->status != PonyOpStatus::kOk) {
      return "<error>";
    }
    return std::string(
        reinterpret_cast<const char*>(completion->data.data()));
  };

  for (const std::string& key : {"snap", "pony", "timely"}) {
    std::printf("GET %-7s -> %s\n", key.c_str(), get(key).c_str());
  }

  // Batched multi-GET: adjacent buckets in one operation (the production
  // pattern: "a custom batched indirect read... a batch of eight
  // indirections locally rather than over the network").
  uint64_t first = BucketOf("snap");
  client_app->IndirectRead(server_engine->address(), server.region(), first,
                           /*batch=*/8, kValueSize, &cost);
  sim.RunFor(2 * kMsec);
  auto completion = client_app->PollCompletion(&cost);
  std::printf("batched GET of 8 buckets: status=%d, %lld bytes in one op\n",
              completion.has_value()
                  ? static_cast<int>(completion->status)
                  : -1,
              completion.has_value()
                  ? static_cast<long long>(completion->length)
                  : -1);

  std::printf(
      "server app CPU: %.3f ms (zero per-GET involvement), engine executed "
      "%lld one-sided ops (%lld indirections)\n",
      ToMsec(server_host.AppCpuNs()),
      static_cast<long long>(server_engine->stats().ops_executed),
      static_cast<long long>(server_engine->stats().indirections_executed));
  std::printf("kv_store OK\n");
  return 0;
}
