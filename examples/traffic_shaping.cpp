// Traffic shaping / bandwidth enforcement example (the non-Pony engine of
// Figure 2): host kernel traffic is injected into a Snap shaping engine
// whose Click-style pipeline applies an ACL and a token-bucket rate
// policy before the packets reach the NIC — the BwE-style enforcement the
// paper cites. Demonstrates engine composition, the compacting scheduler,
// and live policy updates through the engine mailbox.
//
//   ./build/examples/traffic_shaping
#include <cstdio>

#include "src/apps/simhost.h"
#include "src/snap/shaping_engine.h"

using namespace snap;

int main() {
  Simulator sim(4);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kCompactingEngines;
  SimHost host(&sim, &fabric, &directory, options);
  SimHost sink(&sim, &fabric, &directory, options);

  // A shaping engine enforcing a 2 Gbps policy on injected kernel traffic.
  ShapingEngine::Options shaping;
  shaping.rate_bytes_per_sec = 250e6;  // 2 Gbps
  shaping.burst_bytes = 128 * 1024;
  ShapingEngine engine("shaper", &sim, host.nic(), shaping);
  engine.acl()->Deny(/*src=*/host.host_id(), /*dst=*/99);  // dead route
  host.default_group()->AddEngine(&engine);

  // Offer 10 Gbps of 1500B kernel packets for 200 ms.
  int64_t offered_bytes = 0;
  for (int ms = 0; ms < 200; ++ms) {
    for (int i = 0; i < 833; ++i) {  // ~10 Gbps
      auto packet = std::make_unique<Packet>();
      packet->src_host = host.host_id();
      packet->dst_host = sink.host_id();
      packet->proto = WireProtocol::kTcp;  // kernel traffic
      packet->payload_bytes = 1436;
      packet->wire_bytes = 1500;
      offered_bytes += 1500;
      engine.Inject(std::move(packet));
    }
    sim.RunFor(1 * kMsec);
  }
  double shaped_gbps = static_cast<double>(engine.stats().transmitted) *
                       1500 * 8 / ToSec(sim.now()) / 1e9;
  std::printf("offered ~10.0 Gbps, policy 2.0 Gbps -> shaped %.2f Gbps\n",
              shaped_gbps);
  std::printf("  transmitted %lld, shaper queue drops %lld, input drops "
              "%lld, ACL drops %lld\n",
              static_cast<long long>(engine.stats().transmitted),
              static_cast<long long>(engine.shaper()->dropped()),
              static_cast<long long>(engine.stats().input_drops),
              static_cast<long long>(engine.acl()->dropped()));

  // Live policy update: the control plane posts to the engine mailbox; the
  // closure runs ON the engine thread, lock-free (Section 2.3).
  host.snap()->PostToEngine(&engine, [&engine] {
    engine.acl()->Deny(-1, 1);  // block everything to host 1
  });
  sim.RunFor(5 * kMsec);
  int64_t before = engine.acl()->dropped();
  for (int i = 0; i < 100; ++i) {
    auto packet = std::make_unique<Packet>();
    packet->src_host = host.host_id();
    packet->dst_host = sink.host_id();
    packet->proto = WireProtocol::kTcp;
    packet->payload_bytes = 100;
    packet->wire_bytes = 164;
    engine.Inject(std::move(packet));
  }
  sim.RunFor(10 * kMsec);
  std::printf("after mailbox ACL update: %lld newly dropped by policy\n",
              static_cast<long long>(engine.acl()->dropped() - before));
  std::printf("snap CPU for shaping: %.2f ms over %.0f ms (compacting "
              "scheduler)\n",
              ToMsec(host.SnapCpuNs()), ToMsec(sim.now()));
  std::printf("traffic_shaping OK\n");
  return 0;
}
