// Traffic shaping / bandwidth enforcement example (the non-Pony engine of
// Figure 2): host kernel traffic is injected into a Snap shaping engine
// whose Click-style pipeline applies an ACL and a token-bucket rate
// policy before the packets reach the NIC — the BwE-style enforcement the
// paper cites. Demonstrates engine composition, the compacting scheduler,
// and live policy updates through the engine mailbox.
//
// Part two adds multi-tenant QoS (src/qos/, docs/QOS.md): the shaping
// engine classifies injected packets into two tenants of unequal weight
// and the NIC's per-tenant weighted-fair queue splits a contended 10 Gbps
// uplink 3:1 between them.
//
//   ./build/examples/traffic_shaping
#include <cstdio>

#include "src/apps/simhost.h"
#include "src/qos/tenant.h"
#include "src/snap/shaping_engine.h"
#include "src/stats/telemetry.h"

using namespace snap;

namespace {

// Two tenants of unequal weight share one 10 Gbps uplink. Both dump an
// equal 500-packet backlog into the NIC at t=0; the per-tenant WFQ then
// serves them 3:1, so mid-drain the weight-3 tenant has moved ~3x the
// bytes and sees a fraction of the queueing delay.
void TwoTenantWfqDemo() {
  Simulator sim(11);
  NicParams nic_params;
  nic_params.link_gbps = 10.0;  // the contended resource
  Fabric fabric(&sim, nic_params);
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kCompactingEngines;
  SimHost host(&sim, &fabric, &directory, options);
  SimHost batch_sink(&sim, &fabric, &directory, options);
  SimHost serving_sink(&sim, &fabric, &directory, options);

  qos::TenantRegistry registry;
  registry.Register({.id = 1, .name = "batch", .weight = 1});
  registry.Register({.id = 2, .name = "serving", .weight = 3});
  host.nic()->EnableQosTx(&registry);

  // The shaping policy is wide open here (the uplink is the bottleneck
  // under study); the engine's job in this part is classification.
  ShapingEngine::Options shaping;
  shaping.rate_bytes_per_sec = 1e12;
  shaping.burst_bytes = 8 * 1024 * 1024;
  const int serving_host = serving_sink.host_id();
  shaping.tenant_classifier = [serving_host](const Packet& p) {
    return p.dst_host == serving_host ? qos::TenantId{2} : qos::TenantId{1};
  };
  shaping.tenants = &registry;
  ShapingEngine engine("classifier", &sim, host.nic(), shaping);
  host.default_group()->AddEngine(&engine);

  // 500 x 1500B per tenant, interleaved: 1.5 MB total, ~1.2 ms of wire
  // time at 10 Gbps with both tenants backlogged the whole way.
  for (int i = 0; i < 500; ++i) {
    for (SimHost* sink : {&batch_sink, &serving_sink}) {
      auto packet = std::make_unique<Packet>();
      packet->src_host = host.host_id();
      packet->dst_host = sink->host_id();
      packet->proto = WireProtocol::kTcp;
      packet->payload_bytes = 1436;
      packet->wire_bytes = 1500;
      engine.Inject(std::move(packet));
    }
  }

  sim.RunFor(600 * kUsec);  // mid-drain: both tenants still backlogged
  const auto& mid = host.nic()->tenant_tx_stats();
  std::printf("two-tenant WFQ, mid-drain (weights serving:batch = 3:1):\n");
  for (const auto& [tenant, tstats] : mid) {
    std::printf("  %-8s %6lld packets on the wire\n",
                registry.DisplayName(tenant).c_str(),
                static_cast<long long>(tstats.tx_packets));
  }

  sim.RunFor(2 * kMsec);  // drain the rest
  std::printf("after full drain:\n");
  for (const auto& [tenant, tstats] : host.nic()->tenant_tx_stats()) {
    std::printf("  %-8s %6lld packets, mean NIC queue delay %6.0f us\n",
                registry.DisplayName(tenant).c_str(),
                static_cast<long long>(tstats.tx_packets),
                tstats.tx_packets > 0
                    ? static_cast<double>(tstats.queue_delay_total) /
                          tstats.tx_packets / 1e3
                    : 0.0);
  }

  // The same numbers land in the telemetry dashboard's per-tenant rollup.
  engine.ExportQosStats(&sim.telemetry(), "qos/tenant");
  host.nic()->ExportQosStats(&sim.telemetry(), "qos/tenant");
  std::printf("%s", sim.telemetry().DumpDashboard().c_str());
}

}  // namespace

int main() {
  Simulator sim(4);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kCompactingEngines;
  SimHost host(&sim, &fabric, &directory, options);
  SimHost sink(&sim, &fabric, &directory, options);

  // A shaping engine enforcing a 2 Gbps policy on injected kernel traffic.
  ShapingEngine::Options shaping;
  shaping.rate_bytes_per_sec = 250e6;  // 2 Gbps
  shaping.burst_bytes = 128 * 1024;
  ShapingEngine engine("shaper", &sim, host.nic(), shaping);
  engine.acl()->Deny(/*src=*/host.host_id(), /*dst=*/99);  // dead route
  host.default_group()->AddEngine(&engine);

  // Offer 10 Gbps of 1500B kernel packets for 200 ms.
  int64_t offered_bytes = 0;
  for (int ms = 0; ms < 200; ++ms) {
    for (int i = 0; i < 833; ++i) {  // ~10 Gbps
      auto packet = std::make_unique<Packet>();
      packet->src_host = host.host_id();
      packet->dst_host = sink.host_id();
      packet->proto = WireProtocol::kTcp;  // kernel traffic
      packet->payload_bytes = 1436;
      packet->wire_bytes = 1500;
      offered_bytes += 1500;
      engine.Inject(std::move(packet));
    }
    sim.RunFor(1 * kMsec);
  }
  double shaped_gbps = static_cast<double>(engine.stats().transmitted) *
                       1500 * 8 / ToSec(sim.now()) / 1e9;
  std::printf("offered ~10.0 Gbps, policy 2.0 Gbps -> shaped %.2f Gbps\n",
              shaped_gbps);
  std::printf("  transmitted %lld, shaper queue drops %lld, input drops "
              "%lld, ACL drops %lld\n",
              static_cast<long long>(engine.stats().transmitted),
              static_cast<long long>(engine.shaper()->dropped()),
              static_cast<long long>(engine.stats().input_drops),
              static_cast<long long>(engine.acl()->dropped()));

  // Live policy update: the control plane posts to the engine mailbox; the
  // closure runs ON the engine thread, lock-free (Section 2.3).
  host.snap()->PostToEngine(&engine, [&engine] {
    engine.acl()->Deny(-1, 1);  // block everything to host 1
  });
  sim.RunFor(5 * kMsec);
  int64_t before = engine.acl()->dropped();
  for (int i = 0; i < 100; ++i) {
    auto packet = std::make_unique<Packet>();
    packet->src_host = host.host_id();
    packet->dst_host = sink.host_id();
    packet->proto = WireProtocol::kTcp;
    packet->payload_bytes = 100;
    packet->wire_bytes = 164;
    engine.Inject(std::move(packet));
  }
  sim.RunFor(10 * kMsec);
  std::printf("after mailbox ACL update: %lld newly dropped by policy\n",
              static_cast<long long>(engine.acl()->dropped() - before));
  std::printf("snap CPU for shaping: %.2f ms over %.0f ms (compacting "
              "scheduler)\n",
              ToMsec(host.SnapCpuNs()), ToMsec(sim.now()));

  TwoTenantWfqDemo();
  std::printf("traffic_shaping OK\n");
  return 0;
}
