// Transparent upgrade demo (Section 4): a new Snap release takes over a
// running engine — flows, streams, pending operations and client channels
// all survive — while an RPC workload keeps running. Prints the measured
// brownout/blackout and shows traffic resuming.
//
//   ./build/examples/transparent_upgrade
#include <cstdio>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/snap/upgrade.h"

using namespace snap;

int main() {
  Simulator sim(3);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  SimHost server_host(&sim, &fabric, &directory, options);
  SimHost client_host(&sim, &fabric, &directory, options);

  // A server engine ("snap-v1") with an RPC-serving app, plus a client
  // pumping RPCs at it.
  PonyEngine* server_engine = server_host.CreatePonyEngine("rpc_engine");
  auto server_app = server_host.CreateClient(server_engine, "rpc_server");
  PonyEngine* client_engine = client_host.CreatePonyEngine("cli_engine");
  auto client_app = client_host.CreateClient(client_engine, "rpc_client");

  PonyRpcServerTask server_task("server", server_host.cpu(),
                                server_app.get());
  server_task.Start();
  PonyRpcClientTask::Options client_options;
  client_options.peers = {server_engine->address()};
  client_options.rpcs_per_sec = 2000;
  client_options.request_bytes = 64;
  client_options.response_bytes = 16 * 1024;
  PonyRpcClientTask client_task("client", client_host.cpu(),
                                client_app.get(), client_options);
  client_task.Start();

  sim.RunFor(100 * kMsec);
  std::printf("before upgrade: %lld RPCs completed, p99 %.0f us\n",
              static_cast<long long>(client_task.rpcs_completed()),
              static_cast<double>(client_task.latency().P99()) / 1000.0);

  // The Snap master launches the new release on the same host: same
  // modules, same groups, new code.
  SnapInstance v2("snap-v2", &sim, server_host.cpu(), server_host.nic());
  v2.RegisterModule(std::make_unique<PonyModule>(
      &sim, server_host.nic(), &directory, server_host.options().pony,
      server_host.options().timely, server_host.options().app));
  EngineGroup::Options group_options;
  group_options.mode = SchedulingMode::kDedicatedCores;
  group_options.dedicated_cores = {1};
  v2.CreateGroup("default", group_options);

  client_task.ResetStats();
  UpgradeManager manager(&sim, UpgradeParams{});
  manager.StartUpgrade(
      server_host.snap(), &v2, [&](const UpgradeManager::Result& result) {
        for (const auto& engine : result.engines) {
          std::printf(
              "engine %-12s migrated: brownout %.1f ms (background), "
              "blackout %.1f ms (flows=%lld streams=%lld)\n",
              engine.engine_name.c_str(), ToMsec(engine.brownout),
              ToMsec(engine.blackout),
              static_cast<long long>(engine.footprint.flows),
              static_cast<long long>(engine.footprint.streams));
        }
      });
  sim.RunFor(1000 * kMsec);

  // The SAME client object keeps working — its shared-memory channel was
  // rebound to the new engine; packets lost during the blackout were
  // retransmitted by the restored flows.
  int64_t after_blip = client_task.rpcs_completed();
  sim.RunFor(200 * kMsec);
  std::printf(
      "after upgrade: engine now owned by \"%s\"; +%lld RPCs since the "
      "blip, p99 %.0f us\n",
      v2.version().c_str(),
      static_cast<long long>(client_task.rpcs_completed() - after_blip),
      static_cast<double>(client_task.latency().P99()) / 1000.0);
  std::printf("old instance engines remaining: %zu (terminated)\n",
              server_host.snap()->engines().size());
  std::printf("transparent_upgrade OK\n");
  return 0;
}
