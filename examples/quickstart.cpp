// Quickstart: bring up two simulated hosts, create a Pony Express engine
// on each, bootstrap client channels, and exchange messages and one-sided
// reads — the smallest end-to-end tour of the public API.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/apps/simhost.h"

using namespace snap;

int main() {
  // The simulation world: a deterministic clock + a rack fabric.
  Simulator sim(/*seed=*/1);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;

  // Each SimHost is one machine: cores, NIC, kernel stack, Snap instance.
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};  // pin engines to core 0
  SimHost alice(&sim, &fabric, &directory, options);
  SimHost bob(&sim, &fabric, &directory, options);

  // Create a Pony Express engine on each host (via the Snap control plane
  // and the "pony" module) and bootstrap an application channel.
  PonyEngine* alice_engine = alice.CreatePonyEngine("alice_engine");
  PonyEngine* bob_engine = bob.CreatePonyEngine("bob_engine");
  auto alice_app = alice.CreateClient(alice_engine, "alice_app");
  auto bob_app = bob.CreateClient(bob_engine, "bob_app");

  // --- Two-sided messaging -------------------------------------------------
  CpuCostSink cost;  // application-side CPU charged for each call
  uint64_t stream = alice_app->CreateStream(bob_engine->address());
  std::vector<uint8_t> hello = {'h', 'e', 'l', 'l', 'o'};
  uint64_t op = alice_app->SendMessage(bob_engine->address(), stream,
                                       /*bytes=*/0, hello, &cost);
  std::printf("alice submitted SendMessage op=%llu\n",
              static_cast<unsigned long long>(op));

  sim.RunFor(5 * kMsec);  // let engines poll, packets fly, acks return

  auto msg = bob_app->PollMessage(&cost);
  if (msg.has_value()) {
    std::printf("bob received %lld bytes from host %d: \"%.*s\"\n",
                static_cast<long long>(msg->length), msg->from.host,
                static_cast<int>(msg->data.size()),
                reinterpret_cast<const char*>(msg->data.data()));
  }
  auto completion = alice_app->PollCompletion(&cost);
  if (completion.has_value()) {
    std::printf("alice's send completed: status=%d (reliable delivery)\n",
                static_cast<int>(completion->status));
  }

  // --- One-sided operations ------------------------------------------------
  // Bob shares a memory region; Alice reads it with NO bob-side thread.
  uint64_t region = bob_app->RegisterRegion(4096, /*allow_remote_write=*/false);
  MemoryRegion* mem = bob_app->region(region);
  const char* secret = "one-sided reads bypass the remote app";
  std::copy(secret, secret + 37, mem->data.begin());

  alice_app->Read(bob_engine->address(), region, /*offset=*/0,
                  /*length=*/37, &cost);
  sim.RunFor(5 * kMsec);
  completion = alice_app->PollCompletion(&cost);
  if (completion.has_value() && completion->status == PonyOpStatus::kOk) {
    std::printf("alice one-sided read: \"%.*s\"\n",
                static_cast<int>(completion->data.size()),
                reinterpret_cast<const char*>(completion->data.data()));
  }

  // --- Observability -------------------------------------------------------
  std::printf("\nengine stats: alice tx=%lld rx=%lld | bob ops_executed=%lld\n",
              static_cast<long long>(alice_engine->stats().tx_packets),
              static_cast<long long>(alice_engine->stats().rx_packets),
              static_cast<long long>(bob_engine->stats().ops_executed));
  std::printf("snap CPU: alice %.2f ms, bob %.2f ms (dedicated cores spin)\n",
              ToMsec(alice.SnapCpuNs()), ToMsec(bob.SnapCpuNs()));
  std::printf("\nquickstart OK\n");
  return 0;
}
