// All-to-all RPC rack assembly for Figures 6(b)-(d) and 7: N machines,
// `jobs_per_host` background jobs per machine exchanging 1MB RPCs at a
// Poisson rate, plus one tiny-RPC latency prober per machine.
#ifndef BENCH_RPC_RACK_H_
#define BENCH_RPC_RACK_H_

#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace snap {

struct RpcRackConfig {
  int hosts = 8;
  int jobs_per_host = 4;
  double offered_gbps_per_host = 10.0;  // background 1MB RPC load
  int64_t response_bytes = 1 << 20;
  double prober_qps = 500.0;
  bool prober_spins = false;  // isolate app wakeup from transport wakeup
  // Background-job peer locality: > 0 restricts each job's 1MB-RPC peers
  // to jobs on hosts in its own cluster of `cluster_hosts` consecutive
  // hosts (probers stay all-to-all). Set alongside
  // nic_params.hosts_per_cluster to model a rack of racks whose bulk
  // traffic is cluster-local — the shape traffic-aware shard placement
  // (src/sim/placement.h) exploits.
  int cluster_hosts = 0;
  uint64_t seed = 7;
  SimHostOptions host_options;
  // Simulator internals under test (bench_sim_speed A/Bs these; results
  // are identical either way).
  EventQueueKind queue_kind = kDefaultEventQueueKind;
  NicParams nic_params;
  // Optional flight recorder attached to the rack's simulator
  // (bench_sim_speed --trace). Tracing never changes results, only
  // wall-clock speed, so traced runs are excluded from measurements.
  TraceRecorder* tracer = nullptr;
};

struct RpcRackResult {
  double cpu_per_machine = 0;     // mean cores per machine over the window
  double gbps_per_machine = 0;    // bidirectional application bytes
  Histogram prober_latency;       // tiny-RPC latency across all probers
  int64_t background_rpcs = 0;
  // Simulator-side totals over the whole run (bench_sim_speed divides
  // these by wall time for events/sec and packets/sec).
  int64_t sim_events = 0;         // events fired by the event queue
  int64_t fabric_packets = 0;     // packets delivered by the fabric
  SimTime sim_end_time = 0;       // total simulated time covered
  // Telemetry dashboard text, captured only for traced runs.
  std::string telemetry_dashboard;
};

// Runs the rack over Pony Express engines.
inline RpcRackResult RunPonyRpcRack(const RpcRackConfig& config,
                                    SimDuration warmup, SimDuration window) {
  Rack rack(config.seed, config.hosts, config.host_options,
            config.queue_kind, config.nic_params);
  if (config.tracer != nullptr) {
    rack.sim().set_tracer(config.tracer);
  }
  double per_job_rate =
      config.offered_gbps_per_host * 1e9 /
      (8.0 * static_cast<double>(config.response_bytes) *
       config.jobs_per_host);

  struct Job {
    PonyEngine* engine;
    std::unique_ptr<PonyClient> client_side;
    std::unique_ptr<PonyClient> server_side;
    std::unique_ptr<PonyRpcClientTask> client_task;
    std::unique_ptr<PonyRpcServerTask> server_task;
  };
  std::vector<std::vector<Job>> jobs(config.hosts);
  std::vector<PonyAddress> all_addresses;

  // Each job gets its own exclusive engine (Section 3.1); the engine's
  // default sink is the server-role channel (incoming requests), while
  // responses ride streams bound to the client-role channel.
  for (int h = 0; h < config.hosts; ++h) {
    for (int j = 0; j < config.jobs_per_host; ++j) {
      Job job;
      job.engine = rack.host(h)->CreatePonyEngine(
          "job" + std::to_string(h) + "_" + std::to_string(j));
      job.client_side = rack.host(h)->CreateClient(job.engine, "cli");
      job.server_side = rack.host(h)->CreateClient(job.engine, "srv");
      job.engine->SetDefaultSink(job.server_side.get());
      all_addresses.push_back(job.engine->address());
      jobs[h].push_back(std::move(job));
    }
  }
  // Prober engines (tiny RPCs to random jobs).
  std::vector<std::unique_ptr<PonyClient>> prober_clients;
  std::vector<std::unique_ptr<PonyRpcClientTask>> probers;
  for (int h = 0; h < config.hosts; ++h) {
    PonyEngine* pe = rack.host(h)->CreatePonyEngine(
        "prober" + std::to_string(h));
    prober_clients.push_back(rack.host(h)->CreateClient(pe, "prober"));
    PonyRpcClientTask::Options po;
    po.rpcs_per_sec = config.prober_qps;
    po.request_bytes = 64;
    po.response_bytes = 64;
    po.spin = config.prober_spins;
    po.rng_seed = config.seed + 1000 + h;
    for (const PonyAddress& addr : all_addresses) {
      if (addr.host != h) {
        po.peers.push_back(addr);
      }
    }
    probers.push_back(std::make_unique<PonyRpcClientTask>(
        "prober" + std::to_string(h), rack.host(h)->cpu(),
        prober_clients.back().get(), po));
  }
  // Background tasks.
  for (int h = 0; h < config.hosts; ++h) {
    for (int j = 0; j < config.jobs_per_host; ++j) {
      Job& job = jobs[h][j];
      job.server_task = std::make_unique<PonyRpcServerTask>(
          "rpc_srv", rack.host(h)->cpu(), job.server_side.get());
      job.server_task->Start();
      PonyRpcClientTask::Options co;
      co.rpcs_per_sec = per_job_rate;
      co.request_bytes = 64;
      co.response_bytes = config.response_bytes;
      co.rng_seed = config.seed + h * 100 + j;
      for (const PonyAddress& addr : all_addresses) {
        if (addr == job.engine->address()) {
          continue;
        }
        if (config.cluster_hosts > 0 &&
            addr.host / config.cluster_hosts != h / config.cluster_hosts) {
          continue;  // bulk traffic stays cluster-local
        }
        co.peers.push_back(addr);
      }
      job.client_task = std::make_unique<PonyRpcClientTask>(
          "rpc_cli", rack.host(h)->cpu(), job.client_side.get(), co);
      job.client_task->Start();
    }
  }
  for (auto& p : probers) {
    p->Start();
  }

  rack.sim().RunFor(warmup);
  for (auto& per_host : jobs) {
    for (auto& job : per_host) {
      job.client_task->ResetStats();
    }
  }
  for (auto& p : probers) {
    p->ResetStats();
  }
  CpuSnapshot cpu0 = CpuSnapshot::Take(rack);
  rack.sim().RunFor(window);
  CpuSnapshot cpu1 = CpuSnapshot::Take(rack);

  RpcRackResult result;
  result.cpu_per_machine = CpuSnapshot::MeanCores(cpu0, cpu1, window);
  int64_t bytes = 0;
  for (auto& per_host : jobs) {
    for (auto& job : per_host) {
      bytes += job.client_task->bytes_transferred();
      result.background_rpcs += job.client_task->rpcs_completed();
    }
  }
  // Bidirectional per machine: requests counted at initiators, responses
  // at initiators; servers see the mirror image, so per-machine
  // bidirectional traffic is 2x the initiator view divided across hosts.
  result.gbps_per_machine = static_cast<double>(bytes) * 2.0 * 8.0 /
                            ToSec(window) / 1e9 / config.hosts;
  for (auto& p : probers) {
    result.prober_latency.Merge(p->latency());
  }
  result.sim_events = rack.sim().event_queue().stats().fired;
  result.fabric_packets = rack.fabric().stats().delivered;
  result.sim_end_time = rack.sim().now();
  if (config.tracer != nullptr) {
    rack.sim().event_queue().ExportStats(&rack.sim().telemetry(),
                                         "sim/event_queue");
    result.telemetry_dashboard = rack.sim().telemetry().DumpDashboard();
  }
  return result;
}

// Runs the rack over kernel TCP.
inline RpcRackResult RunTcpRpcRack(const RpcRackConfig& config,
                                   SimDuration warmup, SimDuration window) {
  Rack rack(config.seed, config.hosts, config.host_options,
            config.queue_kind, config.nic_params);
  double per_job_rate =
      config.offered_gbps_per_host * 1e9 /
      (8.0 * static_cast<double>(config.response_bytes) *
       config.jobs_per_host);
  auto ctx = std::make_unique<TcpRpcContext>();

  std::vector<std::unique_ptr<TcpRpcServerTask>> servers;
  std::vector<std::unique_ptr<TcpRpcClientTask>> clients;
  std::vector<std::unique_ptr<TcpRpcClientTask>> probers;
  std::vector<int> all_hosts;
  for (int h = 0; h < config.hosts; ++h) {
    all_hosts.push_back(h);
  }
  for (int h = 0; h < config.hosts; ++h) {
    servers.push_back(std::make_unique<TcpRpcServerTask>(
        "rpc_srv", rack.host(h)->cpu(), rack.host(h)->kstack(), 5003,
        ctx.get()));
    servers.back()->Start();
  }
  for (int h = 0; h < config.hosts; ++h) {
    for (int j = 0; j < config.jobs_per_host; ++j) {
      TcpRpcClientTask::Options co;
      co.rpcs_per_sec = per_job_rate;
      co.response_bytes = config.response_bytes;
      co.rng_seed = config.seed + h * 100 + j;
      for (int peer : all_hosts) {
        if (peer != h) {
          co.peer_hosts.push_back(peer);
        }
      }
      clients.push_back(std::make_unique<TcpRpcClientTask>(
          "rpc_cli", rack.host(h)->cpu(), rack.host(h)->kstack(),
          ctx.get(), co));
      clients.back()->Start();
    }
    // Prober uses tiny responses on its own connections. One outstanding
    // per connection keeps the side channel coherent; tiny responses need
    // a distinct server port with distinct response size, so the prober
    // uses its own context + server.
  }
  // Prober servers on a second port with a second context.
  auto prober_ctx = std::make_unique<TcpRpcContext>();
  std::vector<std::unique_ptr<TcpRpcServerTask>> prober_servers;
  for (int h = 0; h < config.hosts; ++h) {
    prober_servers.push_back(std::make_unique<TcpRpcServerTask>(
        "prb_srv", rack.host(h)->cpu(), rack.host(h)->kstack(), 5004,
        prober_ctx.get()));
    prober_servers.back()->Start();
  }
  for (int h = 0; h < config.hosts; ++h) {
    TcpRpcClientTask::Options po;
    po.port = 5004;
    po.rpcs_per_sec = config.prober_qps;
    po.response_bytes = 64;
    po.rng_seed = config.seed + 2000 + h;
    for (int peer : all_hosts) {
      if (peer != h) {
        po.peer_hosts.push_back(peer);
      }
    }
    probers.push_back(std::make_unique<TcpRpcClientTask>(
        "prober", rack.host(h)->cpu(), rack.host(h)->kstack(),
        prober_ctx.get(), po));
    probers.back()->Start();
  }

  rack.sim().RunFor(warmup);
  for (auto& c : clients) {
    c->ResetStats();
  }
  for (auto& p : probers) {
    p->ResetStats();
  }
  CpuSnapshot cpu0 = CpuSnapshot::Take(rack);
  rack.sim().RunFor(window);
  CpuSnapshot cpu1 = CpuSnapshot::Take(rack);

  RpcRackResult result;
  result.cpu_per_machine = CpuSnapshot::MeanCores(cpu0, cpu1, window);
  int64_t bytes = 0;
  for (auto& c : clients) {
    bytes += c->bytes_transferred();
    result.background_rpcs += c->rpcs_completed();
  }
  result.gbps_per_machine = static_cast<double>(bytes) * 2.0 * 8.0 /
                            ToSec(window) / 1e9 / config.hosts;
  for (auto& p : probers) {
    result.prober_latency.Merge(p->latency());
  }
  result.sim_events = rack.sim().event_queue().stats().fired;
  result.fabric_packets = rack.fabric().stats().delivered;
  result.sim_end_time = rack.sim().now();
  return result;
}

}  // namespace snap

#endif  // BENCH_RPC_RACK_H_
