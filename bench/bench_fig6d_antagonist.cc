// Figure 6(d) reproduction: 99th-percentile prober latency on the
// all-to-all RPC rack while reduced-priority antagonists continually wake
// threads to run MD5-style compute. Compares hosting Snap's spreading
// engines on the MicroQuanta kernel class vs on CFS at nice -20.
//
// Paper shape: with antagonists, CFS-hosted engines' tails blow up into
// the hundreds of microseconds / milliseconds; MicroQuanta keeps the tail
// bounded. TCP (softirq + CFS app threads) is worst.
#include <cstdlib>

#include "bench/rpc_rack.h"

namespace snap {
namespace {

constexpr SimDuration kWarmup = 50 * kMsec;
constexpr SimDuration kWindow = 150 * kMsec;

struct AntagonistSet {
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<std::unique_ptr<CpuHogTask>> hogs;
};

// Hog setup shared by all configs: `per_host` CFS hogs per machine that
// wake constantly (the paper's MD5 antagonists run at reduced priority).
void AddAntagonists(Rack& rack, int per_host, AntagonistSet* set) {
  for (int h = 0; h < rack.size(); ++h) {
    for (int i = 0; i < per_host; ++i) {
      set->rngs.push_back(std::make_unique<Rng>(900 + h * 10 + i));
      CpuHogTask::Options options;
      options.weight = 0.5;      // reduced priority
      options.burst_mean = 100 * kUsec;
      options.sleep_mean = 10 * kUsec;  // near-continuous wake churn
      set->hogs.push_back(std::make_unique<CpuHogTask>(
          "md5_" + std::to_string(h) + "_" + std::to_string(i),
          rack.host(h)->cpu(), set->rngs.back().get(), options));
      set->hogs.back()->Start();
    }
  }
}

Histogram RunPonyWithAntagonists(bool use_cfs, int hosts, int jobs,
                                 double load_gbps, int hogs_per_host) {
  RpcRackConfig config;
  config.hosts = hosts;
  config.jobs_per_host = jobs;
  config.offered_gbps_per_host = load_gbps;
  config.host_options.group.mode = SchedulingMode::kSpreadingEngines;
  config.host_options.group.spreading_use_cfs = use_cfs;
  config.host_options.cpu.num_cores = 6;  // contended machine

  // Assemble manually so antagonists can be injected (RunPonyRpcRack owns
  // its rack): reuse the helper but wrap with antagonists by rebuilding.
  Rack rack(config.seed, config.hosts, config.host_options);
  AntagonistSet antagonists;
  AddAntagonists(rack, hogs_per_host, &antagonists);

  // Background jobs + probers (condensed version of RunPonyRpcRack).
  struct Job {
    PonyEngine* engine;
    std::unique_ptr<PonyClient> cli;
    std::unique_ptr<PonyClient> srv;
    std::unique_ptr<PonyRpcClientTask> cli_task;
    std::unique_ptr<PonyRpcServerTask> srv_task;
  };
  std::vector<Job> jobs_vec;
  std::vector<PonyAddress> addresses;
  for (int h = 0; h < config.hosts; ++h) {
    for (int j = 0; j < config.jobs_per_host; ++j) {
      Job job;
      job.engine = rack.host(h)->CreatePonyEngine(
          "job" + std::to_string(h) + "_" + std::to_string(j));
      job.cli = rack.host(h)->CreateClient(job.engine, "cli");
      job.srv = rack.host(h)->CreateClient(job.engine, "srv");
      job.engine->SetDefaultSink(job.srv.get());
      addresses.push_back(job.engine->address());
      jobs_vec.push_back(std::move(job));
    }
  }
  double per_job_rate = load_gbps * 1e9 /
                        (8.0 * (1 << 20) * config.jobs_per_host);
  size_t index = 0;
  for (int h = 0; h < config.hosts; ++h) {
    for (int j = 0; j < config.jobs_per_host; ++j, ++index) {
      Job& job = jobs_vec[index];
      job.srv_task = std::make_unique<PonyRpcServerTask>(
          "srv", rack.host(h)->cpu(), job.srv.get());
      job.srv_task->Start();
      PonyRpcClientTask::Options co;
      co.rpcs_per_sec = per_job_rate;
      co.response_bytes = 1 << 20;
      co.rng_seed = 7 + index;
      for (const PonyAddress& addr : addresses) {
        if (!(addr == job.engine->address())) {
          co.peers.push_back(addr);
        }
      }
      job.cli_task = std::make_unique<PonyRpcClientTask>(
          "cli", rack.host(h)->cpu(), job.cli.get(), co);
      job.cli_task->Start();
    }
  }
  std::vector<std::unique_ptr<PonyClient>> prober_clients;
  std::vector<std::unique_ptr<PonyRpcClientTask>> probers;
  for (int h = 0; h < config.hosts; ++h) {
    PonyEngine* pe =
        rack.host(h)->CreatePonyEngine("prober" + std::to_string(h));
    prober_clients.push_back(rack.host(h)->CreateClient(pe, "prober"));
    PonyRpcClientTask::Options po;
    po.rpcs_per_sec = 500;
    po.response_bytes = 64;
    po.spin = true;  // isolate engine-class effects from app scheduling
    po.rng_seed = 5000 + h;
    for (const PonyAddress& addr : addresses) {
      if (addr.host != h) {
        po.peers.push_back(addr);
      }
    }
    probers.push_back(std::make_unique<PonyRpcClientTask>(
        "prober", rack.host(h)->cpu(), prober_clients.back().get(), po));
    probers.back()->Start();
  }

  rack.sim().RunFor(kWarmup);
  for (auto& p : probers) {
    p->ResetStats();
  }
  rack.sim().RunFor(kWindow);
  Histogram latency;
  for (auto& p : probers) {
    latency.Merge(p->latency());
  }
  return latency;
}

}  // namespace
}  // namespace snap

int main(int argc, char** argv) {
  using namespace snap;
  int hosts = argc > 1 ? std::atoi(argv[1]) : 5;
  int jobs = argc > 2 ? std::atoi(argv[2]) : 2;
  PrintHeader(
      "Figure 6(d): prober p99 with MD5 antagonists — MicroQuanta vs CFS");
  std::printf("  rack: %d hosts x %d jobs + 10 waking antagonists/host\n",
              hosts, jobs);
  for (double load : {3.0, 8.0}) {
    Histogram mq = RunPonyWithAntagonists(false, hosts, jobs, load, 10);
    Histogram cfs = RunPonyWithAntagonists(true, hosts, jobs, load, 10);
    std::printf(
        "  load %4.0f Gbps: MicroQuanta p99 %8.0f us   CFS(-20) p99 %8.0f "
        "us   (paper: CFS tail >> MicroQuanta tail)\n",
        load, static_cast<double>(mq.P99()) / 1000.0,
        static_cast<double>(cfs.P99()) / 1000.0);
  }
  return 0;
}
