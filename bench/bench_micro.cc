// Microbenchmarks (google-benchmark) of the hot-path primitives: SPSC
// ring, engine mailbox, CRC32C, wire encode/decode, histogram recording,
// packet pool, and the discrete-event core. These are wall-clock
// benchmarks of the library code itself, not simulated time.
#include <benchmark/benchmark.h>

#include "src/packet/crc32.h"
#include "src/packet/packet_pool.h"
#include "src/packet/wire.h"
#include "src/queue/mailbox.h"
#include "src/queue/spsc_ring.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"

namespace snap {
namespace {

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v++);
    benchmark::DoNotOptimize(ring.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingBatch16(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  for (auto _ : state) {
    for (uint64_t i = 0; i < 16; ++i) {
      ring.TryPush(i);
    }
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(ring.TryPop());
    }
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpscRingBatch16);

void BM_MailboxPostRun(benchmark::State& state) {
  EngineMailbox mailbox;
  int sink = 0;
  for (auto _ : state) {
    mailbox.Post([&sink] { ++sink; });
    mailbox.RunPending();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MailboxPostRun);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(state.range(0));
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(1984)->Arg(4936);

void BM_WireEncodeDecode(benchmark::State& state) {
  PonyHeader header;
  header.version = 2;
  header.flow_id = 0x1234567890ull;
  header.seq = 42;
  header.tx_timestamp = 1234567;
  std::vector<uint8_t> buffer;
  for (auto _ : state) {
    (void)EncodePonyHeader(header, &buffer);
    auto decoded = DecodePonyHeader(buffer.data(), buffer.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireEncodeDecode);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  int64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v);
    v = (v * 2862933555777941757ull + 3037000493ull) & 0xFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  Histogram histogram;
  for (int64_t i = 0; i < 100000; ++i) {
    histogram.Record(i * 37 % 1000000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.P99());
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_PacketPoolAllocFree(benchmark::State& state) {
  PacketPool pool(1024);
  for (auto _ : state) {
    PacketPtr p = pool.Allocate();
    benchmark::DoNotOptimize(p);
    pool.Free(std::move(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolAllocFree);

void BM_SimulatorEventChurn(benchmark::State& state) {
  // Cost of scheduling + dispatching one event through the global queue.
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&fired] { ++fired; });
    }
    state.ResumeTiming();
    sim.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_PacketPoolRecycleWithPayload(benchmark::State& state) {
  // Alloc + payload write + free with a hot freelist: measures whether the
  // pool actually avoids payload reallocation (state.range is the payload
  // size, covering the ack and 5kB-MTU classes).
  const size_t payload = static_cast<size_t>(state.range(0));
  PacketPool pool(1024);
  pool.Free(pool.Allocate(payload));  // prime the size class
  for (auto _ : state) {
    PacketPtr p = pool.Allocate(payload);
    p->data.resize(payload);
    benchmark::DoNotOptimize(p->data.data());
    pool.Free(std::move(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolRecycleWithPayload)->Arg(64)->Arg(1984)->Arg(4936);

// The next three run against both event-queue implementations: arg 0 is
// the timer wheel, arg 1 the legacy binary heap.
EventQueueKind KindArg(const benchmark::State& state) {
  return state.range(0) == 0 ? EventQueueKind::kTimerWheel
                             : EventQueueKind::kLegacyHeap;
}

void BM_EventQueueScheduleFire(benchmark::State& state) {
  // Steady-state schedule+fire with a populated queue (the simulation hot
  // loop shape: each fired event schedules a successor).
  Simulator sim(1, KindArg(state));
  int64_t fired = 0;
  for (int i = 0; i < 512; ++i) {
    sim.Schedule(1 + i, [] {});
  }
  sim.RunFor(600);
  for (auto _ : state) {
    sim.Schedule(100, [&fired] { ++fired; });
    sim.RunFor(100);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(0)->Arg(1);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // Schedule-then-cancel, the RTO-timer pattern: most timers never fire.
  Simulator sim(1, KindArg(state));
  for (auto _ : state) {
    EventHandle h = sim.Schedule(1000 * kUsec, [] {});
    h.Cancel();
    sim.RunFor(1);  // let the queue reap
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(0)->Arg(1);

void BM_TimerWheelCascade(benchmark::State& state) {
  // Far-horizon timers that cascade through far wheel -> near wheel (or
  // sift through the heap) before firing: the worst case for the wheel.
  const SimDuration horizon = 2 * kMsec;  // far-wheel range, forces cascade
  Simulator sim(1, KindArg(state));
  for (auto _ : state) {
    state.PauseTiming();
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(horizon + i * 64, [&fired] { ++fired; });
    }
    state.ResumeTiming();
    sim.RunFor(horizon + 1000 * 64 + 1);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TimerWheelCascade)->Arg(0)->Arg(1);

}  // namespace
}  // namespace snap

BENCHMARK_MAIN();
