// Live-mode echo benchmark: real OS threads, real clocks — the wall-clock
// counterpart of bench_fig6a_latency. Two live hosts run a closed-loop
// echo RPC workload per case: ping-pong (window 1, exact RTTs) and
// pipelined (window 16, throughput) legs over the in-process loopback
// ring fabric and real UDP, plus one leg per scheduling mode (dedicated /
// spreading / compacting engine workers) and a blocking-notify leg where
// the app threads sleep on the completion doorbell instead of
// spin-polling.
//
// Numbers here are wall-clock on whatever machine runs this, so the JSON
// records hw_cores and per-case num_threads and the trajectory gate
// (tools/bench_trajectory.py --bench live_echo) is completeness — every
// RPC finished, zero transport errors — everywhere, with hard
// latency/throughput bars applied only on runners with enough cores to
// actually run the threads in parallel (core-starved runs warn instead).
//
// Usage:
//   bench_live_echo [--smoke] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/live/live_apps.h"
#include "src/live/live_runtime.h"
#include "src/snap/engine_group.h"
#include "src/util/doorbell.h"

namespace snap {
namespace {

struct CaseResult {
  std::string name;
  bool ran = false;
  std::string skip_reason;
  int iterations = 0;
  int64_t message_bytes = 0;
  int outstanding = 0;
  std::string mode = "dedicated";  // engine scheduling mode
  bool blocking = false;           // app threads sleep on the doorbell
  int num_threads = 0;             // scheduler workers + app threads
  bool completed = false;  // all RPCs finished before the deadline
  int64_t errors = 0;
  int64_t client_poll_passes = 0;  // blocking-notify busy-poll signal
  int64_t client_waits = 0;
  double wall_sec = 0;
  double rpcs_per_sec = 0;
  double goodput_mbps = 0;
  double p50_rtt_us = 0;
  double p99_rtt_us = 0;
  int64_t fabric_delivered = 0;
  int64_t fabric_dropped = 0;
};

double PercentileUs(std::vector<int64_t> rtts, double p) {
  if (rtts.empty()) {
    return 0;
  }
  std::sort(rtts.begin(), rtts.end());
  size_t idx = static_cast<size_t>(p / 100.0 *
                                   static_cast<double>(rtts.size() - 1));
  return static_cast<double>(rtts[idx]) / 1000.0;
}

CaseResult RunCase(const std::string& name, LiveRuntime::FabricKind fabric,
                   int iterations, int64_t message_bytes, int outstanding,
                   SchedulingMode mode = SchedulingMode::kDedicatedCores,
                   bool blocking = false) {
  CaseResult result;
  result.name = name;
  result.iterations = iterations;
  result.message_bytes = message_bytes;
  result.outstanding = outstanding;
  result.mode = SchedulingModeName(mode);
  result.blocking = blocking;

  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = fabric;
  options.scheduler.mode = mode;
  LiveRuntime runtime(options);
  Status init = runtime.Init();
  if (!init.ok()) {
    result.skip_reason = std::string(init.message());
    return result;
  }
  auto client = runtime.host(0)->CreateClient("bench-client");
  auto server = runtime.host(1)->CreateClient("bench-server");
  PonyAddress client_addr = runtime.host(0)->engine()->address();
  PonyAddress server_addr = runtime.host(1)->engine()->address();
  uint64_t ping_stream = client->CreateStream(server_addr);
  uint64_t reply_stream = server->CreateStream(client_addr);
  Doorbell client_bell, server_bell;
  if (blocking) {
    client->BindDoorbell(&client_bell);
    server->BindDoorbell(&server_bell);
  }

  runtime.Start();
  // Engine workers plus the two app threads below.
  result.num_threads = runtime.scheduler()->num_workers() + 2;
  int64_t deadline = MonotonicTimeNs() + 120LL * 1000 * 1000 * 1000;
  LiveAppResult client_result, server_result;
  std::thread server_thread([&] {
    server_result = RunLiveEchoServer(server.get(), reply_stream,
                                      client_addr, iterations, deadline,
                                      blocking ? &server_bell : nullptr);
  });
  int64_t t0 = MonotonicTimeNs();
  client_result = RunLiveRpcClient(client.get(), ping_stream, server_addr,
                                   iterations, message_bytes, outstanding,
                                   deadline,
                                   blocking ? &client_bell : nullptr);
  int64_t t1 = MonotonicTimeNs();
  server_thread.join();
  runtime.Stop();

  result.ran = true;
  result.client_poll_passes = client_result.poll_passes;
  result.client_waits = client_result.waits;
  result.completed = !client_result.timed_out && !server_result.timed_out &&
                     client_result.rpcs_completed == iterations;
  result.errors = client_result.send_errors + server_result.send_errors;
  result.wall_sec = static_cast<double>(t1 - t0) / 1e9;
  if (result.wall_sec > 0) {
    result.rpcs_per_sec =
        static_cast<double>(client_result.rpcs_completed) / result.wall_sec;
    result.goodput_mbps = static_cast<double>(client_result.bytes_received) *
                          8.0 / result.wall_sec / 1e6;
  }
  result.p50_rtt_us = PercentileUs(client_result.rtt_ns, 50);
  result.p99_rtt_us = PercentileUs(client_result.rtt_ns, 99);
  LiveRuntime::FabricStats fabric_stats = runtime.GetFabricStats();
  result.fabric_delivered = fabric_stats.delivered;
  result.fabric_dropped = fabric_stats.dropped;
  return result;
}

void PrintCase(const CaseResult& r) {
  if (!r.ran) {
    std::printf("%-20s SKIPPED (%s)\n", r.name.c_str(),
                r.skip_reason.c_str());
    return;
  }
  std::printf("%-20s %7d x %5lldB w=%-3d %s  %10.0f rpc/s  %8.1f Mbps  "
              "p50 %7.1fus  p99 %7.1fus  drops %lld\n",
              r.name.c_str(), r.iterations,
              static_cast<long long>(r.message_bytes), r.outstanding,
              r.completed && r.errors == 0 ? "ok  " : "FAIL",
              r.rpcs_per_sec, r.goodput_mbps, r.p50_rtt_us, r.p99_rtt_us,
              static_cast<long long>(r.fabric_dropped));
}

void WriteJsonCase(std::FILE* f, const CaseResult& r, bool last) {
  std::fprintf(f, "    \"%s\": {\n", r.name.c_str());
  std::fprintf(f, "      \"ran\": %s,\n", r.ran ? "true" : "false");
  if (!r.ran) {
    std::fprintf(f, "      \"skip_reason\": \"%s\"\n", r.skip_reason.c_str());
  } else {
    std::fprintf(f, "      \"iterations\": %d,\n", r.iterations);
    std::fprintf(f, "      \"message_bytes\": %lld,\n",
                 static_cast<long long>(r.message_bytes));
    std::fprintf(f, "      \"outstanding\": %d,\n", r.outstanding);
    std::fprintf(f, "      \"mode\": \"%s\",\n", r.mode.c_str());
    std::fprintf(f, "      \"blocking\": %s,\n",
                 r.blocking ? "true" : "false");
    std::fprintf(f, "      \"num_threads\": %d,\n", r.num_threads);
    std::fprintf(f, "      \"client_poll_passes\": %lld,\n",
                 static_cast<long long>(r.client_poll_passes));
    std::fprintf(f, "      \"client_waits\": %lld,\n",
                 static_cast<long long>(r.client_waits));
    std::fprintf(f, "      \"completed\": %s,\n",
                 r.completed ? "true" : "false");
    std::fprintf(f, "      \"errors\": %lld,\n",
                 static_cast<long long>(r.errors));
    std::fprintf(f, "      \"wall_sec\": %.6f,\n", r.wall_sec);
    std::fprintf(f, "      \"rpcs_per_sec\": %.1f,\n", r.rpcs_per_sec);
    std::fprintf(f, "      \"goodput_mbps\": %.3f,\n", r.goodput_mbps);
    std::fprintf(f, "      \"p50_rtt_us\": %.2f,\n", r.p50_rtt_us);
    std::fprintf(f, "      \"p99_rtt_us\": %.2f,\n", r.p99_rtt_us);
    std::fprintf(f, "      \"fabric_delivered\": %lld,\n",
                 static_cast<long long>(r.fabric_delivered));
    std::fprintf(f, "      \"fabric_dropped\": %lld\n",
                 static_cast<long long>(r.fabric_dropped));
  }
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const int lat_iters = smoke ? 200 : 2000;
  const int tput_iters = smoke ? 400 : 4000;
  const int64_t lat_bytes = 64;
  const int64_t tput_bytes = 4096;

  std::printf("live echo benchmark (%s): 2 hosts, engines on real "
              "threads\n\n", smoke ? "smoke" : "full");
  std::vector<CaseResult> results;
  results.push_back(RunCase("loopback_latency",
                            LiveRuntime::FabricKind::kLoopback, lat_iters,
                            lat_bytes, /*outstanding=*/1));
  results.push_back(RunCase("loopback_throughput",
                            LiveRuntime::FabricKind::kLoopback, tput_iters,
                            tput_bytes, /*outstanding=*/16));
  results.push_back(RunCase("udp_latency", LiveRuntime::FabricKind::kUdp,
                            lat_iters, lat_bytes, /*outstanding=*/1));
  results.push_back(RunCase("udp_throughput", LiveRuntime::FabricKind::kUdp,
                            tput_iters, tput_bytes, /*outstanding=*/16));
  // Scheduling-mode legs (Section 2.4 live) and blocking notification
  // (Section 3.1): same pipelined workload, different engine placement /
  // app wakeup policy.
  results.push_back(RunCase("loopback_spreading",
                            LiveRuntime::FabricKind::kLoopback, tput_iters,
                            tput_bytes, /*outstanding=*/16,
                            SchedulingMode::kSpreadingEngines));
  results.push_back(RunCase("loopback_compacting",
                            LiveRuntime::FabricKind::kLoopback, tput_iters,
                            tput_bytes, /*outstanding=*/16,
                            SchedulingMode::kCompactingEngines));
  results.push_back(RunCase("loopback_blocking",
                            LiveRuntime::FabricKind::kLoopback, tput_iters,
                            tput_bytes, /*outstanding=*/16,
                            SchedulingMode::kSpreadingEngines,
                            /*blocking=*/true));
  for (const CaseResult& r : results) {
    PrintCase(r);
  }

  bool ok = true;
  for (const CaseResult& r : results) {
    if (r.ran && (!r.completed || r.errors != 0)) {
      ok = false;
    }
  }
  std::printf("\n%s\n", ok ? "all live echo cases completed cleanly"
                           : "FAILURE: incomplete or errored cases");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"hw_cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"benchmarks\": {\n");
    for (size_t i = 0; i < results.size(); ++i) {
      WriteJsonCase(f, results[i], i + 1 == results.size());
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace snap

int main(int argc, char** argv) { return snap::Main(argc, argv); }
